// Analytics: concurrent aggregate queries over one fact table through
// the staged engine — first query-at-a-time, then with shared scans —
// showing how the scan stage amortizes one physical pass over a whole
// batch of queries (claim C7).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"hydra/internal/core"
	"hydra/internal/staged"
	"hydra/internal/workload"
)

const (
	rows    = 20000
	clients = 12
	queries = 4 // per client
)

func main() {
	engine, err := core.Open(core.Scalable())
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()
	if _, err := workload.SetupMicro(engine, rows, 0, 0, 16); err != nil {
		log.Fatal(err)
	}
	facts, err := engine.Table("micro_kv")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fact table: %d rows; %d clients x %d aggregate queries each\n\n", rows, clients, queries)
	for _, shared := range []bool{false, true} {
		se := staged.New(engine, staged.Options{SharedScans: shared})
		start := time.Now()
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for q := 0; q < queries; q++ {
					res, err := se.Execute(staged.Query{
						Table:  facts,
						Filter: func(t staged.Tuple) bool { return t.Key%2 == 0 },
					})
					if err != nil {
						log.Printf("client %d: %v", c, err)
						return
					}
					if res.Count != rows/2 {
						log.Printf("client %d: saw %d rows, want %d", c, res.Count, rows/2)
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := se.StatsSnapshot()
		mode := "query-at-a-time"
		if shared {
			mode = "shared scans   "
		}
		fmt.Printf("%s: %d queries in %7v  (%5.1f q/s), %3d physical table scans\n",
			mode, st.Queries, elapsed.Round(time.Millisecond),
			float64(st.Queries)/elapsed.Seconds(), st.PhysicalScans)
	}
	// Group-by on the shared engine: one pass, per-group aggregates.
	se := staged.New(engine, staged.Options{SharedScans: true})
	res, err := se.Execute(staged.Query{
		Table:   facts,
		GroupBy: func(t staged.Tuple) uint64 { return t.Key % 4 },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngroup-by (key mod 4) over one shared pass:")
	for g := uint64(0); g < 4; g++ {
		if agg := res.Groups[g]; agg != nil {
			fmt.Printf("  group %d: %d rows\n", g, agg.Count)
		}
	}
	fmt.Println("\nwith sharing, physical scans stay near-constant as query count grows")
}
