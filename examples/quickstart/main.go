// Quickstart: open a durable engine, write transactionally, crash,
// and watch ARIES recovery bring everything back.
package main

import (
	"fmt"
	"log"
	"os"

	"hydra/internal/core"
)

func main() {
	dir, err := os.MkdirTemp("", "hydra-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Open a durable engine with the scalable configuration.
	cfg := core.Scalable()
	cfg.Dir = dir
	engine, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. DDL + a few transactions.
	users, err := engine.CreateTable("users")
	if err != nil {
		log.Fatal(err)
	}
	err = engine.Exec(func(tx *core.Txn) error {
		if err := tx.Insert(users, 1, []byte("ada")); err != nil {
			return err
		}
		return tx.Insert(users, 2, []byte("grace"))
	})
	if err != nil {
		log.Fatal(err)
	}

	// An aborted transaction leaves no trace.
	tx := engine.Begin()
	if err := tx.Insert(users, 3, []byte("nobody")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		log.Fatal(err)
	}

	// 3. Simulate a crash: drop the engine without a clean close.
	//    (The WAL is durable; dirty pages may or may not be.)
	engine.Log().Close()
	fmt.Println("crashed without clean shutdown")

	// 4. Reopen: ARIES restart replays the log.
	engine2, err := core.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer engine2.Close()
	rep := engine2.RecoveryReport
	fmt.Printf("recovery: scanned %d log records, redid %d, %d losers undone\n",
		rep.Scanned, rep.Redone, rep.LosersUndone)

	users2, err := engine2.Table("users")
	if err != nil {
		log.Fatal(err)
	}
	err = engine2.Exec(func(tx *core.Txn) error {
		for _, key := range []uint64{1, 2} {
			v, err := tx.Read(users2, key)
			if err != nil {
				return err
			}
			fmt.Printf("user %d = %s\n", key, v)
		}
		if _, err := tx.Read(users2, 3); err == nil {
			return fmt.Errorf("aborted row survived")
		}
		fmt.Println("user 3 correctly absent (transaction aborted)")
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Secondary index: look users up by the first letter of their
	//    name. Indexes are maintained transactionally from here on.
	byInitial, err := users2.AddIndex("by-initial", func(_ uint64, v []byte) (uint64, bool) {
		if len(v) == 0 {
			return 0, false
		}
		return uint64(v[0]), true
	})
	if err != nil {
		log.Fatal(err)
	}
	engine2.Exec(func(tx *core.Txn) error {
		return tx.LookupBy(users2, byInitial, 'g', func(k uint64, v []byte) bool {
			fmt.Printf("users starting with 'g': %d = %s\n", k, v)
			return true
		})
	})
	fmt.Println("quickstart OK")
}
