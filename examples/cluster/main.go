// Cluster: an in-process hydra-server with several TCP clients
// performing transactional work over the wire, including an explicit
// multi-statement transaction that aborts.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"

	"hydra/internal/core"
	"hydra/internal/server"
)

func main() {
	engine, err := core.Open(core.Scalable())
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	srv := server.New(engine)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()
	fmt.Printf("server listening on %s\n", addr)

	admin, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	if err := admin.CreateTable("inventory"); err != nil {
		log.Fatal(err)
	}

	// Several clients write disjoint key ranges concurrently.
	const clients, perClient = 6, 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				log.Print(err)
				return
			}
			defer cl.Close()
			base := uint64(c * 1000)
			for i := uint64(0); i < perClient; i++ {
				if err := cl.Set("inventory", base+i, fmt.Sprintf("item-%d-%d", c, i)); err != nil {
					log.Printf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	rows, err := admin.Scan("inventory", 0, ^uint64(0), 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d clients wrote %d rows over TCP\n", clients, len(rows))

	// Explicit transaction: reserve two items, then change our mind.
	if err := admin.Begin(); err != nil {
		log.Fatal(err)
	}
	admin.Set("inventory", 1, "RESERVED")
	admin.Set("inventory", 2, "RESERVED")
	if err := admin.Abort(); err != nil {
		log.Fatal(err)
	}
	v, err := admin.Get("inventory", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after aborted reservation, item 1 = %q (unchanged)\n", v)

	stats, err := admin.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server stats: %s\n", stats)
}
