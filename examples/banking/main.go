// Banking: the TPC-B debit/credit workload — the intro's canonical
// transaction-processing scenario — run concurrently on both engine
// configurations, with the money-conservation invariant checked.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"hydra/internal/core"
	"hydra/internal/rng"
	"hydra/internal/workload"
)

func main() {
	for _, cfg := range []struct {
		name string
		c    core.Config
	}{
		{"conventional (the single-threaded Atlas)", core.Conventional()},
		{"scalable (the multi-threaded Hydra)", core.Scalable()},
	} {
		engine, err := core.Open(cfg.c)
		if err != nil {
			log.Fatal(err)
		}
		bank, err := workload.SetupTPCB(engine, 4, 10, 1000)
		if err != nil {
			log.Fatal(err)
		}

		const workers = 8
		const duration = 300 * time.Millisecond
		var total uint64
		var mu sync.Mutex
		var wg sync.WaitGroup
		deadline := time.Now().Add(duration)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				src := rng.New(uint64(w))
				x := workload.LockExecutor{Engine: engine}
				n := uint64(0)
				for time.Now().Before(deadline) {
					if err := bank.RunOne(src, x); err != nil {
						log.Printf("worker %d: %v", w, err)
						return
					}
					n++
				}
				mu.Lock()
				total += n
				mu.Unlock()
			}(w)
		}
		wg.Wait()

		if err := bank.Check(engine); err != nil {
			log.Fatalf("INVARIANT VIOLATED: %v", err)
		}
		st := engine.StatsSnapshot()
		fmt.Printf("%s:\n", cfg.name)
		fmt.Printf("  %d debit/credit transactions in %v (%.0f tps, %d workers)\n",
			total, duration, float64(total)/duration.Seconds(), workers)
		fmt.Printf("  commits=%d aborts=%d lock-waits=%d deadlocks=%d log-bytes=%d\n",
			st.Commits, st.Aborts, st.Lock.Waits, st.Lock.Deadlocks, st.Log.InsertedBytes)
		fmt.Printf("  money conserved across branches, tellers, accounts, history ✓\n\n")
		engine.Close()
	}
}
