// Telecom: the TATP subscriber workload executed two ways — through
// the centralized lock manager (thread-to-transaction) and through
// DORA partition executors (thread-to-data) — printing the throughput
// of each, a miniature of experiment E1.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"hydra/internal/core"
	"hydra/internal/dora"
	"hydra/internal/rng"
	"hydra/internal/workload"
)

const (
	subscribers = 5000
	workers     = 8
	window      = 300 * time.Millisecond
)

func main() {
	fmt.Printf("TATP, %d subscribers, %d workers, %v window\n\n", subscribers, workers, window)

	// Conventional: every worker runs any transaction, isolation via
	// the centralized lock table.
	conv, err := core.Open(core.Conventional())
	if err != nil {
		log.Fatal(err)
	}
	tatp, err := workload.SetupTATP(conv, subscribers)
	if err != nil {
		log.Fatal(err)
	}
	convTPS := drive(func(w int, src *rng.Source) error {
		return tatp.RunOne(src, workload.LockExecutor{Engine: conv})
	})
	st := conv.StatsSnapshot()
	fmt.Printf("conventional: %8.0f tps  (lock table ops: %d, waits: %d)\n",
		convTPS, st.Lock.TableOps, st.Lock.Waits)
	conv.Close()

	// DORA: the subscriber key space is partitioned over executors;
	// transactions are decomposed into routed actions, no lock table.
	dcore, err := core.Open(core.Scalable())
	if err != nil {
		log.Fatal(err)
	}
	tatp2, err := workload.SetupTATP(dcore, subscribers)
	if err != nil {
		log.Fatal(err)
	}
	d := dora.New(dcore, dora.Options{Executors: workers, RouteShift: 4})
	doraTPS := drive(func(w int, src *rng.Source) error {
		return tatp2.RunOne(src, workload.DoraExecutor{Engine: d})
	})
	ds := d.StatsSnapshot()
	ls := dcore.StatsSnapshot().Lock
	fmt.Printf("dora:         %8.0f tps  (actions: %d, lock table ops: %d)\n",
		doraTPS, ds.ActionsExecuted, ls.TableOps)
	txns := ds.SinglePartition + ds.CrossPartition
	batch := 0.0
	if ds.Batches > 0 {
		batch = float64(ds.BatchedJobs) / float64(ds.Batches)
	}
	fmt.Printf("              fast path: %d/%d txns single-partition (%.0f%%), %.1f jobs/drain, svc p99 %v\n",
		ds.SinglePartition, txns, 100*float64(ds.SinglePartition)/float64(txns),
		batch, time.Duration(ds.Service.Quantile(0.99)))
	fmt.Printf("\ndora/conventional = %.2fx\n", doraTPS/convTPS)
	d.Close()
	dcore.Close()
}

// drive runs the worker function for the window and returns tps.
func drive(run func(w int, src *rng.Source) error) float64 {
	var total uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	deadline := time.Now().Add(window)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w))
			n := uint64(0)
			for time.Now().Before(deadline) {
				if err := run(w, src); err != nil {
					log.Printf("worker %d: %v", w, err)
					break
				}
				n++
			}
			mu.Lock()
			total += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return float64(total) / window.Seconds()
}
