package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterBasic(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("fresh counter = %d", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestCounterConcurrentSum(t *testing.T) {
	const (
		workers = 8
		perW    = 10000
	)
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*perW {
		t.Fatalf("Load = %d, want %d", got, workers*perW)
	}
}

func TestCounterIncSeqAdvances(t *testing.T) {
	var c Counter
	// IncSeq returns a per-stripe sequence; from a single goroutine
	// the stripe is stable, so values must be strictly increasing.
	prev := c.IncSeq()
	for i := 0; i < 100; i++ {
		v := c.IncSeq()
		if v <= prev {
			t.Fatalf("IncSeq not increasing: %d after %d", v, prev)
		}
		prev = v
	}
	if c.Load() != 101 {
		t.Fatalf("Load = %d after 101 IncSeq", c.Load())
	}
}

func TestHistSnapshotMatchesSerial(t *testing.T) {
	var h Hist
	ds := []time.Duration{3 * time.Nanosecond, 500 * time.Nanosecond,
		7 * time.Microsecond, 1200 * time.Microsecond, 9 * time.Millisecond}
	for _, d := range ds {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count() != uint64(len(ds)) {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Max() != 9*time.Millisecond {
		t.Fatalf("max = %v", s.Max())
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	if s.Sum() != sum {
		t.Fatalf("sum = %v, want %v", s.Sum(), sum)
	}
}

func TestHistConcurrent(t *testing.T) {
	const (
		workers = 8
		perW    = 5000
	)
	var h Hist
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.ObserveNanos(int64(seed*1000 + i + 1))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count() != workers*perW {
		t.Fatalf("count = %d, want %d", s.Count(), workers*perW)
	}
	if s.Max() < time.Duration(7*1000+perW) {
		t.Fatalf("max = %v lost the largest observation", s.Max())
	}
}

func TestTracerDisabledByDefault(t *testing.T) {
	var tr Tracer
	tr.Record(EvBegin, 1, 0, 0)
	if got := tr.Len(); got != 0 {
		t.Fatalf("disabled tracer retained %d events", got)
	}
}

func TestTracerRecordDump(t *testing.T) {
	var tr Tracer
	tr.SetEnabled(true)
	tr.Record(EvBegin, 7, 0, 0)
	tr.Record(EvLockWait, 7, 123, 456)
	tr.Record(EvCommit, 7, 0, 0)
	evs := tr.Dump()
	if len(evs) != 3 {
		t.Fatalf("Dump returned %d events", len(evs))
	}
	// Dump is time-ordered and single-goroutine recording preserves
	// program order.
	if evs[0].Kind != EvBegin || evs[1].Kind != EvLockWait || evs[2].Kind != EvCommit {
		t.Fatalf("order = %v %v %v", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	if evs[1].Arg != 123 || evs[1].Arg2 != 456 {
		t.Fatalf("args = %d %d", evs[1].Arg, evs[1].Arg2)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatal("Dump not time-ordered")
		}
	}
}

func TestTracerWrap(t *testing.T) {
	var tr Tracer
	tr.SetEnabled(true)
	// Overfill from one goroutine: one stripe wraps many times; Dump
	// must still return at most ringSlots coherent events from it.
	for i := 0; i < 5*ringSlots; i++ {
		tr.Record(EvLogAppend, uint64(i), 0, 0)
	}
	evs := tr.Dump()
	if len(evs) == 0 || len(evs) > ringSlots {
		t.Fatalf("Dump after wrap returned %d events", len(evs))
	}
}

func TestTracerConcurrentRecordDump(t *testing.T) {
	var tr Tracer
	tr.SetEnabled(true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					tr.Record(EvCommit, id, uint64(i), 0)
				}
			}
		}(uint64(w))
	}
	for i := 0; i < 50; i++ {
		for _, ev := range tr.Dump() {
			if ev.Kind != EvCommit || ev.Txn > 3 {
				t.Errorf("torn event surfaced: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestAcquireProfSampling(t *testing.T) {
	var p AcquireProf
	sampled := 0
	const n = 64 * 10
	for i := 0; i < n; i++ {
		s := p.Start()
		if s >= 0 {
			sampled++
		}
		p.Done(TierFrameLatch, s)
	}
	if p.Ops() != n {
		t.Fatalf("Ops = %d, want %d", p.Ops(), n)
	}
	// Single goroutine -> single stripe -> exactly 1-in-64 sampling.
	if sampled != n/64 {
		t.Fatalf("sampled %d of %d, want %d", sampled, n, n/64)
	}
	acq := p.Acquire()
	if got := acq.Count(); got != uint64(sampled) {
		t.Fatalf("histogram count %d, sampled %d", got, sampled)
	}
}

func TestLatchSnapshotSkipsIdleTiers(t *testing.T) {
	// The global profile set accumulates across tests in this package
	// (and from any other package's tests in the same binary), so
	// assert shape, not exact contents: every entry must name a known
	// tier and carry traffic.
	LatchDone(TierTreeRoot, LatchStart(TierTreeRoot))
	snap := LatchSnapshot()
	seen := false
	for _, s := range snap {
		if s.Ops == 0 {
			t.Fatalf("idle tier %q in snapshot", s.Tier)
		}
		if s.Tier == "unknown" {
			t.Fatalf("unnamed tier in snapshot")
		}
		if s.Tier == TierTreeRoot.String() {
			seen = true
		}
	}
	if !seen {
		t.Fatal("tier with traffic missing from snapshot")
	}
}

func TestTierNamesComplete(t *testing.T) {
	for tier := Tier(0); tier < NumTiers; tier++ {
		if tier.String() == "unknown" || tier.String() == "" {
			t.Fatalf("tier %d has no name", tier)
		}
	}
	if Tier(NumTiers).String() != "unknown" {
		t.Fatal("out-of-range tier must render unknown")
	}
}

func TestNowMonotone(t *testing.T) {
	a := Now()
	time.Sleep(time.Millisecond)
	b := Now()
	if b <= a {
		t.Fatalf("Now not monotone: %d then %d", a, b)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistObserve(b *testing.B) {
	var h Hist
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.ObserveNanos(int64(100))
		}
	})
}

func BenchmarkLatchProfUnsampledMostly(b *testing.B) {
	var p AcquireProf
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Done(TierPoolShard, p.Start())
		}
	})
}

func BenchmarkTracerDisabled(b *testing.B) {
	var tr Tracer
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(EvCommit, 1, 0, 0)
		}
	})
}

func BenchmarkTracerEnabled(b *testing.B) {
	var tr Tracer
	tr.SetEnabled(true)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Record(EvCommit, 1, 0, 0)
		}
	})
}
