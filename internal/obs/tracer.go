package obs

import (
	"sort"
	"sync/atomic"
)

// EventKind classifies one transaction event.
type EventKind uint8

const (
	// EvBegin marks transaction begin; Arg is unused.
	EvBegin EventKind = iota + 1
	// EvLockWait marks a completed transactional lock wait; Arg is
	// the lock name's hash, Arg2 the wait in nanoseconds.
	EvLockWait
	// EvLatchWait marks a sampled slow latch acquisition; Arg is the
	// Tier, Arg2 the time-to-acquire in nanoseconds. Txn is 0
	// (latches are not transaction-scoped).
	EvLatchWait
	// EvLogAppend marks a WAL record append; Arg is the record type,
	// Arg2 the encoded size in bytes.
	EvLogAppend
	// EvCommit marks commit completion; Arg is unused.
	EvCommit
	// EvAbort marks abort completion; Arg is unused.
	EvAbort
)

var eventKindNames = [...]string{
	EvBegin: "begin", EvLockWait: "lock-wait", EvLatchWait: "latch-wait",
	EvLogAppend: "log-append", EvCommit: "commit", EvAbort: "abort",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return "unknown"
}

// traceLatchWaitMin is the threshold past which a sampled latch
// acquisition is worth a trace event (1 microsecond: an uncontended
// acquire is tens of nanoseconds, so anything past this waited).
const traceLatchWaitMin = 1000

// Event is one traced transaction event.
type Event struct {
	TS   int64 // monotonic nanoseconds since TimeBase()
	Txn  uint64
	Kind EventKind
	Arg  uint64
	Arg2 uint64
}

// Tracer ring geometry. 32 stripes x 256 slots x 48 bytes = 384 KiB
// of fixed global footprint; at six events per transaction the rings
// hold the last ~1300 transactions' worth of activity.
const (
	nTraceStripes = 32
	ringSlots     = 256
	ringMask      = ringSlots - 1
)

// slot holds one event entirely in atomics plus a seqlock word, so
// concurrent Record and Dump race on nothing. The writer publishes
// seq = 2*idx+2 only after the fields are stored; a reader accepts a
// slot only if it observes the same even seq before and after reading
// the fields. Two writers can collide on a slot only when the ring
// wraps a full revolution during one write — 256 events on one stripe
// inside a ~10 ns window — and even then the seq check makes the
// reader drop the slot rather than surface a frankenevent.
type slot struct {
	seq  atomic.Uint64 // 2*idx+1 while writing, 2*idx+2 when complete
	ts   atomic.Int64
	txn  atomic.Uint64
	karg atomic.Uint64 // kind in the top byte, Arg in the low 56 bits
	arg2 atomic.Uint64
}

type traceStripe struct {
	head  atomic.Uint64
	_     [56]byte
	slots [ringSlots]slot
}

// Tracer is the transaction event tracer: striped fixed-size rings
// that goroutines append to by per-goroutine hint. Recording is a few
// atomic stores when enabled and a single atomic load when disabled;
// it never allocates and never blocks. Dump (on demand, from the
// /trace endpoint or a debugger) merges the rings into time order.
type Tracer struct {
	enabled atomic.Bool
	stripes [nTraceStripes]traceStripe
}

// Trace is the process-global tracer (same rationale as the latch
// profiles: events originate in code with no engine handle).
var Trace Tracer

// SetEnabled switches recording on or off. The rings retain whatever
// they held; disabling just stops new writes.
func (t *Tracer) SetEnabled(on bool) { t.enabled.Store(on) }

// Enabled reports whether recording is on.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Record appends one event if the tracer is enabled.
func (t *Tracer) Record(kind EventKind, txn, arg, arg2 uint64) {
	if !t.enabled.Load() {
		return
	}
	s := &t.stripes[stripeIdx()&(nTraceStripes-1)]
	idx := s.head.Add(1) - 1
	sl := &s.slots[idx&ringMask]
	sl.seq.Store(2*idx + 1)
	sl.ts.Store(Now())
	sl.txn.Store(txn)
	sl.karg.Store(uint64(kind)<<56 | arg&(1<<56-1))
	sl.arg2.Store(arg2)
	sl.seq.Store(2*idx + 2)
}

// TraceEvent records one event on the global tracer.
func TraceEvent(kind EventKind, txn, arg, arg2 uint64) {
	Trace.Record(kind, txn, arg, arg2)
}

// readSlot copies one slot if it holds a complete event, using the
// seqlock protocol: accept only if the same even seq is observed
// before and after reading the fields.
func readSlot(sl *slot, ev *Event) bool {
	seq1 := sl.seq.Load()
	if seq1 == 0 || seq1&1 != 0 {
		return false
	}
	ev.TS = sl.ts.Load()
	ev.Txn = sl.txn.Load()
	karg := sl.karg.Load()
	ev.Kind = EventKind(karg >> 56)
	ev.Arg = karg & (1<<56 - 1)
	ev.Arg2 = sl.arg2.Load()
	return sl.seq.Load() == seq1 // torn if a writer got in between
}

// Dump returns the retained events in timestamp order. Slots caught
// mid-write (or never written) are skipped.
func (t *Tracer) Dump() []Event { return t.DumpFiltered(0, 0) }

// DumpFiltered returns retained events in timestamp order, keeping
// only transaction txn when txn != 0 and, when max > 0, only the max
// most recent matching events. It is the /trace endpoint's workhorse:
// the filter makes per-transaction forensics cheap and the cap bounds
// the response on a busy server.
func (t *Tracer) DumpFiltered(txn uint64, max int) []Event {
	out := make([]Event, 0, nTraceStripes*ringSlots/4)
	var ev Event
	for i := range t.stripes {
		s := &t.stripes[i]
		for j := range s.slots {
			if !readSlot(&s.slots[j], &ev) {
				continue
			}
			if txn != 0 && ev.Txn != txn {
				continue
			}
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].TS < out[b].TS })
	if max > 0 && len(out) > max {
		out = out[len(out)-max:] // most recent wins under a cap
	}
	return out
}

// CollectTxn appends the retained events of transaction txn to buf,
// never growing it past its capacity (newer events displace older
// ones when full) and never allocating: the slow-transaction
// reservoir calls it from the admission path with a fixed-size
// buffer. Events are returned in timestamp order.
func (t *Tracer) CollectTxn(txn uint64, buf []Event) []Event {
	if txn == 0 || cap(buf) == 0 {
		return buf
	}
	var ev Event
	for i := range t.stripes {
		s := &t.stripes[i]
		for j := range s.slots {
			if !readSlot(&s.slots[j], &ev) || ev.Txn != txn {
				continue
			}
			if len(buf) < cap(buf) {
				buf = append(buf, ev)
				// Insertion sort by TS: the buffer is small (the
				// reservoir passes 32 slots), so this stays cheap
				// and allocation-free where sort.Slice would not.
				for k := len(buf) - 1; k > 0 && buf[k].TS < buf[k-1].TS; k-- {
					buf[k], buf[k-1] = buf[k-1], buf[k]
				}
				continue
			}
			// Full: displace the oldest (buf[0]) iff ev is newer.
			if ev.TS > buf[0].TS {
				copy(buf, buf[1:])
				buf[len(buf)-1] = ev
				for k := len(buf) - 1; k > 0 && buf[k].TS < buf[k-1].TS; k-- {
					buf[k], buf[k-1] = buf[k-1], buf[k]
				}
			}
		}
	}
	return buf
}

// Len returns the number of events currently retained (dump-sized
// bookkeeping for the /metrics surface).
func (t *Tracer) Len() int {
	n := 0
	for i := range t.stripes {
		h := t.stripes[i].head.Load()
		if h > ringSlots {
			h = ringSlots
		}
		n += int(h)
	}
	return n
}
