// Package obs is hydra's low-overhead observability substrate: the
// measurement layer the keynote's argument needs. Centralized
// constructs serialize a CMP silently — the pathology surfaces as
// time-to-acquire tail inflation long before throughput drops — so
// the engine must measure its own synchronization without the
// measurement itself becoming a centralized construct.
//
// Three building blocks, all concurrency-safe and allocation-free on
// their hot paths:
//
//   - Counter: a cache-line-padded striped counter. Add touches one
//     stripe chosen by a per-goroutine hint, so concurrent increments
//     from different cores do not ping-pong a shared cache line the
//     way a single atomic word does. Load sums the stripes with
//     atomic loads (never plain reads — see the atomicmix analyzer).
//   - Hist: a striped concurrent variant of hist.H, power-of-two
//     buckets in per-stripe atomics, merged into a plain hist.H on
//     Snapshot so quantiles and formatting share one code path.
//   - Tracer: a per-goroutine transaction event tracer writing into
//     fixed-size striped ring buffers, dumped on demand.
//
// On top of them sits latch profiling (latchprof.go): per-tier
// acquire counters and sampled time-to-acquire histograms keyed by
// the latch hierarchy of internal/invariant. The latch tiers and the
// tracer are process-global — like a Prometheus default registry —
// because latches are constructed deep inside subsystems where
// plumbing a per-engine handle through every call site would cost
// more than it buys; per-engine counters (lock, wal, buffer, core,
// staged Stats) stay per-instance fields on their subsystems.
package obs

import (
	"time"
	"unsafe"
)

// nStripes is the stripe count of Counter and Hist; a power of two.
// 16 stripes cover typical core counts without making every counter
// enormous (16 x 64 B = 1 KiB per Counter).
const nStripes = 16

// stripeIdx returns a per-goroutine stripe hint in [0, nStripes).
// It hashes the address of a stack variable: goroutine stacks live in
// distinct allocations, so the address distinguishes goroutines, and
// taking it costs two instructions — no TLS, no runtime hooks, no
// allocation. The pointer never escapes (it is converted to an
// integer immediately), so the variable stays on the stack.
//
// The hint is stable only until the runtime moves the goroutine's
// stack (growth/shrink), which is fine: stripe choice affects
// contention, not correctness.
func stripeIdx() uint64 {
	var marker byte
	p := uintptr(unsafe.Pointer(&marker))
	// Drop alignment zeros, then Fibonacci-spread the stack bits.
	return (uint64(p>>4) * 0x9e3779b97f4a7c15) >> (64 - 4) // log2(nStripes) = 4
}

// timeBase anchors monotonic timestamps: Now returns nanoseconds
// since process start, read from the monotonic clock (time.Since on a
// time.Time with a monotonic reading never touches the wall clock).
var timeBase = time.Now()

// Now returns monotonic nanoseconds since process start. It is the
// timestamp used by the tracer and the acquire profiles; subtracting
// two values gives an elapsed duration in nanoseconds.
func Now() int64 { return int64(time.Since(timeBase)) }

// TimeBase returns the wall-clock instant Now counts from, so dumps
// can convert monotonic offsets back to absolute times.
func TimeBase() time.Time { return timeBase }
