package obs

import "sync/atomic"

// cstripe is one counter stripe, padded out to a 64-byte cache line
// so adjacent stripes never share one (the whole point of striping).
type cstripe struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a cumulative counter striped across cache lines.
// Concurrent Adds from different goroutines usually land on different
// stripes, so the counter never becomes the contended word its
// subject is being measured for. The zero value is ready to use;
// embed it by value (it allocates nothing).
//
// Typed atomics make every access atomic by construction; the
// pointer-API equivalent of this pattern is the atomicmix analyzer's
// striped-counter fixture, where a plain-load snapshot is flagged as
// the data race it is.
type Counter struct {
	s [nStripes]cstripe
}

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	c.s[stripeIdx()].v.Add(n)
}

// addAt adds n using a caller-chosen stripe hint (see Hist.observeAt).
func (c *Counter) addAt(si uint64, n uint64) {
	c.s[si&(nStripes-1)].v.Add(n)
}

// Inc adds 1 to the counter.
func (c *Counter) Inc() {
	c.s[stripeIdx()].v.Add(1)
}

// IncSeq adds 1 to the goroutine's stripe and returns that stripe's
// new value. The return value is a per-stripe sequence number —
// cheaper than a global one and good enough to drive 1-in-N sampling
// decisions (each stripe samples every Nth of its own traffic).
func (c *Counter) IncSeq() uint64 {
	return c.s[stripeIdx()].v.Add(1)
}

// Load returns the counter's current total: the sum of all stripes,
// each read with an atomic load. The sum is not a point-in-time
// snapshot across stripes (stripes are read in sequence), but each
// stripe is monotone, so the result is always between the true totals
// at the start and end of the call — exactly the guarantee a single
// atomic counter gives a concurrent reader.
func (c *Counter) Load() uint64 {
	var total uint64
	for i := range c.s {
		total += c.s[i].v.Load()
	}
	return total
}
