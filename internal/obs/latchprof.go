package obs

import "hydra/internal/hist"

// Tier identifies one level of the latch hierarchy for profiling.
// The set mirrors the rank constants in internal/invariant (the
// single source of truth for ordering); obs keeps its own dense
// indices so the per-tier arrays need no rank->slot lookup on the hot
// path. Adding a tier means adding it in both places.
type Tier uint8

const (
	TierEngineCkpt Tier = iota // core.Engine.ckptMu
	TierEngineMu               // core.Engine.mu
	TierTxnMu                  // core.Txn.mu
	TierTreeCoarse             // btree.Tree.coarse
	TierTreeRoot               // btree.Tree.rootMu
	TierLockPart               // lock.partition.mu
	TierFrameLatch             // buffer.Frame.Latch
	TierPoolShard              // buffer.shard.mu
	TierFileStore              // buffer.FileStore.mu
	TierWALLog                 // wal.Log.mu
	TierWALWait                // wal.Log.waitMu
	TierWALDevice              // wal.SegmentedDevice.mu
	TierDoraQueue              // sync2.Queue.mu (DORA executor inboxes)
	TierMVCCShard              // core.verShard.mu (MVCC version chains)

	// NumTiers is the tier count; valid tiers are < NumTiers.
	NumTiers
)

var tierNames = [NumTiers]string{
	"engine_ckpt", "engine_mu", "txn_mu", "tree_coarse", "tree_root",
	"lock_part", "frame_latch", "pool_shard", "file_store",
	"wal_log", "wal_wait", "wal_device", "dora_queue", "mvcc_shard",
}

func (t Tier) String() string {
	if t < NumTiers {
		return tierNames[t]
	}
	return "unknown"
}

// sampleMask selects 1 in 64 acquisitions (per counter stripe) for
// timing. An unsampled acquisition costs one striped atomic add and a
// branch; a sampled one adds two monotonic clock reads. At 1/64 the
// amortized clock cost is well under a nanosecond per acquisition
// while a few thousand acquisitions already give a stable tail.
const sampleMask = 63

// AcquireProf profiles one latch tier: how often it is acquired and,
// for the sampled subset, how long acquisition took. The time-to-
// acquire distribution is the paper's leading indicator — a
// serializing construct inflates this tail long before it dents
// throughput.
type AcquireProf struct {
	ops     Counter
	acquire Hist
}

// Start begins an acquisition: it counts the op and decides whether
// this one is timed. It returns the start timestamp, or -1 when
// unsampled; pass the value to Done after the latch is held.
func (p *AcquireProf) Start() int64 {
	if p.ops.IncSeq()&sampleMask != 0 {
		return -1
	}
	return Now()
}

// Done completes an acquisition begun with Start.
func (p *AcquireProf) Done(tier Tier, start int64) {
	if start < 0 {
		return
	}
	d := Now() - start
	p.acquire.ObserveNanos(d)
	if d > traceLatchWaitMin {
		TraceEvent(EvLatchWait, 0, uint64(tier), uint64(d))
	}
}

// Ops returns the cumulative acquisition count.
func (p *AcquireProf) Ops() uint64 { return p.ops.Load() }

// Acquire returns a snapshot of the sampled time-to-acquire
// distribution.
func (p *AcquireProf) Acquire() hist.H { return p.acquire.Snapshot() }

// latchProfs is the process-global per-tier profile set. Latches are
// created deep inside subsystems (every buffer frame holds one), so a
// per-engine handle would have to thread through every constructor;
// a process-global registry — the Prometheus model — keeps the hot
// path to one array index. Multiple engines in one process (tests)
// share it, which is the usual semantics of process-wide metrics.
var latchProfs [NumTiers]AcquireProf

// LatchStart begins a profiled acquisition of tier. Bracket the
// blocking acquire:
//
//	s := obs.LatchStart(obs.TierPoolShard)
//	sh.mu.Lock()
//	obs.LatchDone(obs.TierPoolShard, s)
func LatchStart(tier Tier) int64 { return latchProfs[tier].Start() }

// LatchDone completes a profiled acquisition of tier.
func LatchDone(tier Tier, start int64) { latchProfs[tier].Done(tier, start) }

// TierSnapshot is one tier's profile at a point in time.
type TierSnapshot struct {
	Tier    string
	Ops     uint64
	Acquire hist.H
}

// LatchSnapshot returns a snapshot of every tier with any traffic.
func LatchSnapshot() []TierSnapshot {
	out := make([]TierSnapshot, 0, NumTiers)
	for t := Tier(0); t < NumTiers; t++ {
		ops := latchProfs[t].Ops()
		if ops == 0 {
			continue
		}
		out = append(out, TierSnapshot{
			Tier:    t.String(),
			Ops:     ops,
			Acquire: latchProfs[t].Acquire(),
		})
	}
	return out
}
