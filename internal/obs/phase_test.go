package obs

import (
	"sync"
	"testing"
)

func TestPhaseClockNilSafe(t *testing.T) {
	var c *PhaseClock
	c.Start(1)
	c.Add(PhaseLockWait, 5)
	c.Defer(PhaseFlushWait, 1)
	c.Reset()
	if c.StartTime() != 0 || c.Lap(PhaseLockWait) != 0 {
		t.Fatal("nil clock must read as zero")
	}
}

func TestPhaseClockAccumulates(t *testing.T) {
	var c PhaseClock
	c.Start(100)
	c.Add(PhaseLockWait, 30)
	c.Add(PhaseLockWait, 20)
	c.Add(PhaseLogInsert, 10)
	c.Add(PhaseBufMissIO, -5) // dropped: torn read guard
	if got := c.Lap(PhaseLockWait); got != 50 {
		t.Fatalf("lock-wait lap = %d, want 50", got)
	}
	if got := c.Lap(PhaseBufMissIO); got != 0 {
		t.Fatalf("negative add leaked: %d", got)
	}
}

func TestSnapResidualAndReset(t *testing.T) {
	var c PhaseClock
	c.Start(0)
	c.Add(PhaseLockWait, 100)
	c.Add(PhaseExecRun, 400) // overlay: must not reduce the residual
	var out [NumPhases]int64
	c.snap(1000, &out)
	if out[PhaseLockWait] != 100 || out[PhaseExecRun] != 400 {
		t.Fatalf("snap lost laps: %+v", out)
	}
	// user = total - attributed(excluding exec_run/user) = 1000 - 100.
	if out[PhaseUser] != 900 {
		t.Fatalf("user residual = %d, want 900", out[PhaseUser])
	}
	// The fold doubles as the reset.
	if c.Lap(PhaseLockWait) != 0 || c.Lap(PhaseExecRun) != 0 {
		t.Fatal("snap did not drain the clock")
	}
	// Residual clamps at zero when attribution exceeds the total
	// (torn stamps under clock drift).
	c.Add(PhaseLatchWait, 500)
	c.snap(200, &out)
	if out[PhaseUser] != 0 {
		t.Fatalf("residual must clamp at 0, got %d", out[PhaseUser])
	}
}

func TestSnapClosesDeferredSpan(t *testing.T) {
	var c PhaseClock
	c.Start(1000)
	c.Add(PhaseLogInsert, 50)
	c.Defer(PhaseFlushWait, 1200) // wait started at 1200; txn ends at 2000
	var out [NumPhases]int64
	c.snap(1000, &out) // total 1000 => end stamp 2000
	if out[PhaseFlushWait] != 800 {
		t.Fatalf("deferred flush wait = %d, want 800", out[PhaseFlushWait])
	}
	if out[PhaseUser] != 1000-50-800 {
		t.Fatalf("user residual = %d, want %d", out[PhaseUser], 1000-50-800)
	}
	// The deferred span is consumed: a second snap sees nothing.
	c.Start(0)
	c.snap(100, &out)
	if out[PhaseFlushWait] != 0 {
		t.Fatal("deferred span fired twice")
	}
}

func TestPhaseProfileFold(t *testing.T) {
	var pp PhaseProfile
	var c PhaseClock
	for i := 0; i < 3; i++ {
		c.Start(0)
		c.Add(PhaseLockWait, int64(1000*(i+1)))
		pp.Fold(PathConv, OutcomeCommit, &c, int64(5000*(i+1)), nil)
	}
	c.Start(0)
	pp.Fold(PathDoraSingle, OutcomeAbort, &c, 100, nil)

	s := pp.Snapshot(PathConv, OutcomeCommit)
	if s.Count != 3 {
		t.Fatalf("conv/commit count = %d, want 3", s.Count)
	}
	if s.Total.Count() != 3 || s.Total.Max() < 15000 {
		t.Fatalf("total hist: count=%d max=%d", s.Total.Count(), s.Total.Max())
	}
	if s.Phase[PhaseLockWait].Count() != 3 {
		t.Fatalf("lock-wait hist count = %d, want 3", s.Phase[PhaseLockWait].Count())
	}
	// Zero phases are skipped, not observed as zeros.
	if s.Phase[PhaseLogInsert].Count() != 0 {
		t.Fatal("zero phase was observed")
	}
	if got := pp.Snapshot(PathDoraSingle, OutcomeAbort).Count; got != 1 {
		t.Fatalf("dora_single/abort count = %d, want 1", got)
	}
	// Out-of-range arguments are dropped, not folded into cell 0.
	pp.Fold(NumPaths, OutcomeCommit, &c, 1, nil)
	if got := pp.Snapshot(PathConv, OutcomeCommit).Count; got != 3 {
		t.Fatalf("out-of-range fold leaked: count = %d", got)
	}
}

func TestPhaseProfileFoldConcurrent(t *testing.T) {
	var pp PhaseProfile
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var c PhaseClock
			for i := 0; i < per; i++ {
				c.Start(0)
				c.Add(PhaseLatchWait, 10)
				pp.Fold(PathConv, OutcomeCommit, &c, 100, nil)
			}
		}()
	}
	wg.Wait()
	if got := pp.Snapshot(PathConv, OutcomeCommit).Count; got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestSlowReservoirWorstK(t *testing.T) {
	var r SlowReservoir
	var phases [NumPhases]int64
	// 3*SlowK offers with strictly increasing totals: the reservoir
	// must retain exactly the top K.
	n := 3 * SlowK
	for i := 1; i <= n; i++ {
		r.Offer(uint64(i), PathConv, OutcomeCommit, int64(i)*10, int64(i), &phases)
	}
	s := r.Snapshot()
	if len(s.Entries) != SlowK {
		t.Fatalf("retained %d, want %d", len(s.Entries), SlowK)
	}
	// Slowest first, and all from the top K of the offered totals.
	for i, e := range s.Entries {
		if want := int64(n - i); e.Total != want {
			t.Fatalf("entry %d total = %d, want %d", i, e.Total, want)
		}
	}
	if s.Admitted == 0 {
		t.Fatal("admitted counter not incremented")
	}
	// A below-floor offer is rejected by the lock-free fast path.
	before := r.Admitted()
	r.Offer(999, PathConv, OutcomeCommit, 1, 1, &phases)
	if r.Admitted() != before {
		t.Fatal("below-floor offer was admitted")
	}
}

func TestSlowReservoirRotation(t *testing.T) {
	var r SlowReservoir
	var phases [NumPhases]int64
	r.Offer(1, PathConv, OutcomeCommit, 100, 50, &phases)
	// An offer far past the window start forces a rotation; the
	// previous window's entries must remain visible.
	r.Offer(2, PathDoraSingle, OutcomeCommit, 100+slowWindowNs+1, 60, &phases)
	if r.Rotations() != 1 {
		t.Fatalf("rotations = %d, want 1", r.Rotations())
	}
	s := r.Snapshot()
	if len(s.Entries) != 2 {
		t.Fatalf("retained %d entries across rotation, want 2", len(s.Entries))
	}
	seen := map[uint64]bool{}
	for _, e := range s.Entries {
		seen[e.Txn] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("lost an entry across rotation: %v", seen)
	}
}

func TestSlowReservoirCapturesTrace(t *testing.T) {
	var r SlowReservoir
	var phases [NumPhases]int64
	Trace.SetEnabled(true)
	defer Trace.SetEnabled(false)
	Trace.Record(EvBegin, 7, 0, 0)
	Trace.Record(EvCommit, 7, 1, 0)
	Trace.Record(EvBegin, 8, 0, 0) // different txn: filtered out
	r.Offer(7, PathConv, OutcomeCommit, 1000, 500, &phases)
	s := r.Snapshot()
	if len(s.Entries) != 1 {
		t.Fatalf("retained %d, want 1", len(s.Entries))
	}
	tr := s.Entries[0].Trace
	if len(tr) != 2 {
		t.Fatalf("captured %d events, want 2", len(tr))
	}
	for _, ev := range tr {
		if ev.Txn != 7 {
			t.Fatalf("captured foreign txn %d", ev.Txn)
		}
	}
}
