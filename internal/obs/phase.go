package obs

import (
	"sync"
	"sync/atomic"

	"hydra/internal/hist"
)

// Phase identifies one slice of a transaction's wall time. The
// taxonomy follows the paper's question — where does a transaction's
// time go on a many-core machine — and is deliberately coarse: each
// phase maps to one blocking construct the engine owns, so a skewed
// histogram points straight at the subsystem to fix.
//
// PhaseUser is the residual: total wall time minus everything the
// engine attributed. It covers the application callback itself plus
// whatever the clock does not instrument (scheduler delay, allocator
// stalls), so it is an upper bound on "not the engine's fault".
type Phase uint8

const (
	// PhaseUser is the unattributed residual (application work,
	// scheduling). Computed at fold time, never fed directly.
	PhaseUser Phase = iota
	// PhaseLockWait is time blocked in the lock manager waiting for a
	// transactional lock grant (fed from lock.Manager's wait path).
	PhaseLockWait
	// PhaseLatchWait is time blocked acquiring a contended physical
	// latch (buffer shard mutexes and page latches; only the slow
	// path is timed — an uncontended acquire contributes zero).
	PhaseLatchWait
	// PhaseBufMissIO is buffer-miss work: reading the page from the
	// store, writing back a dirty victim, or waiting for another
	// goroutine's in-flight load of the same page.
	PhaseBufMissIO
	// PhaseLogInsert is time blocked inserting into the WAL ring —
	// buffer-full waits, insert-mutex contention, consolidation-array
	// group waits. The uncontended reserve-copy path contributes zero.
	PhaseLogInsert
	// PhaseFlushWait is commit durability wait: time parked in
	// WaitFlushed until the flusher advances the durable LSN past the
	// transaction's commit record.
	PhaseFlushWait
	// PhaseQueueWait is DORA executor-queue time: from job enqueue to
	// the executor draining it.
	PhaseQueueWait
	// PhaseExecRun is DORA executor service time: the executor
	// running the transaction's actions (includes nested lock/latch/
	// IO time, which is also attributed to its own phase — executor
	// phases overlay the core phases rather than partitioning them).
	PhaseExecRun

	// NumPhases is the number of phases (array sizing).
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseUser:      "user",
	PhaseLockWait:  "lock_wait",
	PhaseLatchWait: "latch_wait",
	PhaseBufMissIO: "buf_miss_io",
	PhaseLogInsert: "log_insert",
	PhaseFlushWait: "flush_wait",
	PhaseQueueWait: "queue_wait",
	PhaseExecRun:   "exec_run",
}

// String returns the snake_case phase name used in /metrics labels.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// TxnPath tags which execution path ran a transaction.
type TxnPath uint8

const (
	// PathConv is the conventional path: the caller's goroutine runs
	// the transaction against the shared lock manager.
	PathConv TxnPath = iota
	// PathDoraSingle is DORA's single-partition fast path: the whole
	// transaction ships as one job to the owning executor.
	PathDoraSingle
	// PathDoraCross is DORA's cross-partition path: actions fan out
	// to executors and rendezvous at commit.
	PathDoraCross
	// PathROSnap is the MVCC snapshot path: a read-only transaction
	// pinned to a snapshot LSN, resolving reads against the version
	// chains with zero lock-manager traffic.
	PathROSnap
	// PathSIWrite is the snapshot-isolation writer path: reads resolve
	// against a pinned snapshot, writes buffer into a write set and
	// validate first-committer-wins at commit.
	PathSIWrite

	// NumPaths is the number of execution paths (array sizing).
	NumPaths
)

var pathNames = [NumPaths]string{
	PathConv:       "conv",
	PathDoraSingle: "dora_single",
	PathDoraCross:  "dora_cross",
	PathROSnap:     "ro_snap",
	PathSIWrite:    "si_write",
}

// String returns the path label used in /metrics.
func (p TxnPath) String() string {
	if p < NumPaths {
		return pathNames[p]
	}
	return "unknown"
}

// TxnOutcome tags how a transaction ended.
type TxnOutcome uint8

const (
	// OutcomeCommit marks a committed transaction.
	OutcomeCommit TxnOutcome = iota
	// OutcomeAbort marks an aborted (or rolled-back) transaction.
	OutcomeAbort

	// NumOutcomes is the number of outcomes (array sizing).
	NumOutcomes
)

var outcomeNames = [NumOutcomes]string{
	OutcomeCommit: "commit",
	OutcomeAbort:  "abort",
}

// String returns the outcome label used in /metrics.
func (o TxnOutcome) String() string {
	if o < NumOutcomes {
		return outcomeNames[o]
	}
	return "unknown"
}

// PhaseClock accumulates one transaction's per-phase nanoseconds. It
// lives by value inside pooled transaction objects, so a transaction
// costs zero allocations for its clock; Reset re-arms it for reuse.
//
// Adds are atomic because DORA fans a transaction's actions out to
// executor goroutines that feed the same clock concurrently (and the
// coordinator may time out and fold while a straggler still runs).
// All methods are nil-safe so uninstrumented internal transactions
// (recovery, background maintenance) pass a nil clock and pay one
// predictable branch.
type PhaseClock struct {
	start int64
	ns    [NumPhases]int64

	// Deferred span: a blocking wait whose closing stamp is borrowed
	// from the fold's own end-of-transaction Now instead of a second
	// clock read at wake-up. Used by the commit flush wait, which ends
	// microseconds before the fold: the attribution error is the
	// transaction's teardown (registry delete, lock release), noise
	// against a group-commit wait, and the hot path saves one clock
	// read per commit. Plain fields: set and consumed on the one
	// goroutine that runs the commit wait and then the fold.
	deferPhase Phase
	deferT0    int64
}

// Start stamps the transaction's begin time (monotonic, from Now).
func (c *PhaseClock) Start(now int64) {
	if c == nil {
		return
	}
	c.start = now
}

// StartTime returns the begin stamp, or 0 if the clock is nil/unset.
func (c *PhaseClock) StartTime() int64 {
	if c == nil {
		return 0
	}
	return c.start
}

// Add attributes ns nanoseconds to phase p. Negative and zero deltas
// are dropped (a torn clock read must not corrupt the fold).
func (c *PhaseClock) Add(p Phase, ns int64) {
	if c == nil || ns <= 0 {
		return
	}
	atomic.AddInt64(&c.ns[p], ns)
}

// Defer opens a span for phase p starting at t0 whose end is the
// fold's end-of-transaction stamp (see the field comment). Only one
// deferred span can be open; a second Defer before the fold closes the
// first one is a programming error and overwrites it.
func (c *PhaseClock) Defer(p Phase, t0 int64) {
	if c == nil {
		return
	}
	c.deferPhase = p
	c.deferT0 = t0
}

// Lap returns the accumulated nanoseconds for phase p.
func (c *PhaseClock) Lap(p Phase) int64 {
	if c == nil {
		return 0
	}
	return atomic.LoadInt64(&c.ns[p])
}

// Reset clears the clock for reuse by a pooled transaction object.
func (c *PhaseClock) Reset() {
	if c == nil {
		return
	}
	c.start = 0
	c.deferT0 = 0
	for i := range c.ns {
		atomic.StoreInt64(&c.ns[i], 0)
	}
}

// snap drains the per-phase lap times — each lap is atomically
// swapped to zero as it is read, so the fold doubles as the clock's
// reset and pooled transactions skip a Reset on their Begin hot path
// — and computes the user residual from the given total: total minus
// the attributed engine phases, clamped at zero (executor phases
// overlay core phases, so the attributed sum excludes PhaseExecRun —
// see Fold).
func (c *PhaseClock) snap(total int64, out *[NumPhases]int64) {
	var attributed int64
	for i := range c.ns {
		// Load-then-swap: an atomic load is an ordinary MOV on the
		// architectures we run, so the zero phases (most of them, on a
		// healthy transaction) cost a read instead of a locked XCHG.
		var v int64
		if atomic.LoadInt64(&c.ns[i]) != 0 {
			v = atomic.SwapInt64(&c.ns[i], 0)
		}
		out[i] = v
		switch Phase(i) {
		case PhaseUser, PhaseExecRun:
			// PhaseExecRun overlays lock/latch/IO/log time already
			// attributed to their own phases; counting it toward the
			// residual subtraction would double-subtract.
		default:
			attributed += v
		}
	}
	// Close the deferred span (if any) against the fold's end stamp,
	// reconstructed as start + total so snap needs no clock read.
	if c.deferT0 != 0 {
		if d := c.start + total - c.deferT0; d > 0 {
			p := c.deferPhase
			out[p] += d
			if p != PhaseUser && p != PhaseExecRun {
				attributed += d
			}
		}
		c.deferT0 = 0
	}
	user := total - attributed
	if user < 0 {
		user = 0
	}
	out[PhaseUser] = user
}

// PhaseProfile folds completed transaction breakdowns into per-phase
// striped histograms split by execution path and outcome. One fold is
// a handful of Hist.Observe calls (total + each non-zero phase), all
// lock-free and allocation-free.
type PhaseProfile struct {
	total [NumPaths][NumOutcomes]Hist
	phase [NumPaths][NumOutcomes][NumPhases]Hist
}

// TxnPhases is the process-global phase profile. Like the tracer and
// latch profiles it is global rather than per-engine: phase time is
// fed from subsystems (buffer, WAL, DORA executors) that have no
// engine handle, and the live surface wants one merge point.
var TxnPhases PhaseProfile

// Fold records one completed transaction: total wall nanoseconds plus
// the clock's per-phase laps. phases, when non-nil, receives the
// folded breakdown (including the computed user residual) so the
// caller can hand the same numbers to the slow-transaction reservoir
// without re-reading the clock.
func (pp *PhaseProfile) Fold(path TxnPath, oc TxnOutcome, c *PhaseClock, total int64, phases *[NumPhases]int64) {
	if path >= NumPaths || oc >= NumOutcomes || total < 0 {
		return
	}
	var local [NumPhases]int64
	if phases == nil {
		phases = &local
	}
	c.snap(total, phases)
	si := stripeIdx() // one stripe choice for the whole fold
	pp.total[path][oc].observeAt(si, total)
	for i := range phases {
		if phases[i] > 0 {
			pp.phase[path][oc][i].observeAt(si, phases[i])
		}
	}
}

// PhaseSnapshot is one (path, outcome) cell of the profile, merged
// into plain hist.H values. Count is the transaction count, derived
// from the total histogram (every fold observes exactly one total),
// sparing the fold a separate counter update.
type PhaseSnapshot struct {
	Count uint64
	Total hist.H
	Phase [NumPhases]hist.H
}

// Snapshot merges one (path, outcome) cell.
func (pp *PhaseProfile) Snapshot(path TxnPath, oc TxnOutcome) PhaseSnapshot {
	var s PhaseSnapshot
	if path >= NumPaths || oc >= NumOutcomes {
		return s
	}
	s.Total = pp.total[path][oc].Snapshot()
	s.Count = s.Total.Count()
	for i := range s.Phase {
		s.Phase[i] = pp.phase[path][oc][i].Snapshot()
	}
	return s
}

// --- worst-K slow-transaction reservoir ---

const (
	// SlowK is the reservoir capacity per window: the K slowest
	// transactions of the current and previous windows are retained.
	SlowK = 32
	// slowTraceCap bounds the events captured per slow transaction
	// when the tracer is enabled.
	slowTraceCap = 32
	// slowWindowNs is the reservoir rotation period (10 s): /slow
	// always covers between one and two windows of recent history.
	slowWindowNs = int64(10e9)
)

// SlowTxn is one retained slow transaction.
type SlowTxn struct {
	Txn     uint64
	Path    TxnPath
	Outcome TxnOutcome
	Start   int64 // monotonic ns since TimeBase()
	Total   int64 // wall nanoseconds
	Phase   [NumPhases]int64
	Trace   []Event // nil unless the tracer was enabled at capture

	traceBuf [slowTraceCap]Event
}

// slowWindow is one reservoir window: a fixed array ordered so that
// entries[0..n) are valid and minIdx points at the cheapest entry
// (the eviction victim).
type slowWindow struct {
	start   int64 // window open time (monotonic ns)
	n       int
	entries [SlowK]SlowTxn
}

// minOf returns the index of the smallest-total entry.
func (w *slowWindow) minOf() int {
	m := 0
	for i := 1; i < w.n; i++ {
		if w.entries[i].Total < w.entries[m].Total {
			m = i
		}
	}
	return m
}

// SlowReservoir retains the K slowest transactions per rotation
// window (plus the previous window, so a fresh rotation never shows
// an empty tail). Admission from the transaction-finish hot path is
// two atomic loads and a compare; only admitted transactions — by
// construction the rarest, slowest ones — take the mutex.
type SlowReservoir struct {
	// floor is the admission threshold: the smallest total in the
	// current window once it is full, else 0. Monotone within a
	// window, reset on rotation.
	floor atomic.Int64
	// winStart mirrors cur.start so the rotation check is lock-free.
	winStart atomic.Int64

	admitted Counter // transactions admitted (reservoir inserts)
	rotated  Counter // window rotations

	mu   sync.Mutex
	cur  slowWindow
	prev slowWindow
}

// SlowTxns is the process-global slow-transaction reservoir.
var SlowTxns SlowReservoir

// Offer presents one completed transaction. end is the finish stamp
// (monotonic ns), total the wall nanoseconds, phases the folded
// breakdown. Fast path: one atomic load + compare when the
// transaction is not tail-worthy.
func (r *SlowReservoir) Offer(txn uint64, path TxnPath, oc TxnOutcome, end, total int64, phases *[NumPhases]int64) {
	if ws := r.winStart.Load(); end-ws > slowWindowNs {
		r.rotate(end)
	}
	if total <= r.floor.Load() {
		return
	}
	r.admit(txn, path, oc, end, total, phases)
}

// rotate swaps the current window into prev and opens a fresh one.
func (r *SlowReservoir) rotate(now int64) {
	r.mu.Lock()
	if now-r.cur.start > slowWindowNs { // re-check under the lock
		r.prev = r.cur
		r.cur.n = 0
		r.cur.start = now
		r.winStart.Store(now)
		r.floor.Store(0)
		r.rotated.Inc()
	}
	r.mu.Unlock()
}

// admit inserts the transaction, evicting the cheapest entry when the
// window is full, and captures its event trace if the tracer is on.
func (r *SlowReservoir) admit(txn uint64, path TxnPath, oc TxnOutcome, end, total int64, phases *[NumPhases]int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := &r.cur
	var e *SlowTxn
	if w.n < SlowK {
		e = &w.entries[w.n]
		w.n++
	} else {
		m := w.minOf()
		if total <= w.entries[m].Total {
			return // raced: another admit raised the floor past us
		}
		e = &w.entries[m]
	}
	e.Txn, e.Path, e.Outcome = txn, path, oc
	e.Start, e.Total = end-total, total
	e.Phase = *phases
	e.Trace = nil
	if Trace.Enabled() && txn != 0 {
		e.Trace = Trace.CollectTxn(txn, e.traceBuf[:0])
	}
	r.admitted.Inc()
	if w.n == SlowK {
		r.floor.Store(w.entries[w.minOf()].Total)
	}
}

// SlowSnapshot is the /slow dump: retained entries sorted slowest
// first, plus reservoir bookkeeping.
type SlowSnapshot struct {
	Admitted uint64
	Rotated  uint64
	WindowNs int64
	Entries  []SlowTxn
}

// Snapshot returns the retained slow transactions (current + previous
// window), slowest first. Trace slices are re-based onto the copies.
func (r *SlowReservoir) Snapshot() SlowSnapshot {
	r.mu.Lock()
	out := make([]SlowTxn, 0, r.cur.n+r.prev.n)
	for _, w := range []*slowWindow{&r.cur, &r.prev} {
		for i := 0; i < w.n; i++ {
			out = append(out, w.entries[i])
		}
	}
	r.mu.Unlock()
	for i := range out {
		if out[i].Trace != nil {
			out[i].Trace = out[i].traceBuf[:len(out[i].Trace)]
		}
	}
	// Insertion sort, slowest first: at most 2*SlowK entries.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Total > out[j-1].Total; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return SlowSnapshot{
		Admitted: r.admitted.Load(),
		Rotated:  r.rotated.Load(),
		WindowNs: slowWindowNs,
		Entries:  out,
	}
}

// Admitted returns the cumulative number of reservoir inserts.
func (r *SlowReservoir) Admitted() uint64 { return r.admitted.Load() }

// Rotations returns the cumulative number of window rotations.
func (r *SlowReservoir) Rotations() uint64 { return r.rotated.Load() }
