package obs

import (
	"math/bits"
	"sync/atomic"
	"time"

	"hydra/internal/hist"
)

// nHistStripes is Hist's stripe count. Histograms are fed either from
// sampled paths (latch profiling) or from already-slow paths (lock
// waits), so they see far less traffic than counters; 4 stripes keep
// the footprint at ~2 KiB per histogram while still splitting writer
// traffic across cache-line groups.
const nHistStripes = 4

// hstripe is one histogram stripe: power-of-two buckets plus the
// running sum and max, all atomics. The bucket array spans several
// cache lines on its own, so only the trailing scalar words need
// padding from the next stripe's buckets.
type hstripe struct {
	counts [hist.NumBuckets]atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
	_      [48]byte
}

// Hist is a lock-free concurrent latency histogram: the striped
// counterpart of hist.H. Observe is wait-free (one atomic add per
// touched word; the max update is a bounded CAS retry) and allocates
// nothing. Snapshot merges the stripes into a plain hist.H so
// quantile math and string formatting live in one place.
//
// The zero value is ready to use.
type Hist struct {
	s [nHistStripes]hstripe
}

func bucketOf(v uint64) int {
	if v < 2 {
		return 0
	}
	return 63 - bits.LeadingZeros64(v)
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	h.observeAt(stripeIdx(), int64(d))
}

// observeAt records ns nanoseconds using a caller-chosen stripe hint.
// Callers that feed several histograms per event (the phase-profile
// fold) hoist the stripe computation to one call.
func (h *Hist) observeAt(si uint64, ns int64) {
	v := uint64(ns)
	if ns < 0 {
		v = 0
	}
	s := &h.s[si&(nHistStripes-1)]
	s.counts[bucketOf(v)].Add(1)
	s.sum.Add(v)
	for {
		cur := s.max.Load()
		if v <= cur || s.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveNanos records one duration given in nanoseconds.
func (h *Hist) ObserveNanos(ns int64) { h.Observe(time.Duration(ns)) }

// Snapshot merges the stripes into a hist.H with atomic loads. Like
// Counter.Load, the result is not a cross-stripe instant but is
// bounded by the true states at the start and end of the call; counts
// and sums are monotone, so quantiles from a snapshot are always
// quantiles of some recent past.
func (h *Hist) Snapshot() hist.H {
	var counts [hist.NumBuckets]uint64
	var sum, max uint64
	for i := range h.s {
		s := &h.s[i]
		for b := range s.counts {
			counts[b] += s.counts[b].Load()
		}
		sum += s.sum.Load()
		if m := s.max.Load(); m > max {
			max = m
		}
	}
	return hist.FromRaw(&counts, sum, max)
}
