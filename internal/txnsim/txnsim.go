// Package txnsim is a deterministic discrete-event simulator of OLTP
// execution on a chip multiprocessor, comparing the two assignment
// disciplines of experiment E1: thread-to-transaction (any core runs
// any transaction, isolation through a centralized lock manager whose
// internal latches every lock and unlock must visit) and DORA's
// thread-to-data (transactions decompose into actions shipped to the
// executor owning the data, no shared lock state).
//
// Like internal/logsim, it substitutes for hardware this repository's
// measured experiments cannot provide: the centralized lock manager's
// latch contention — the phenomenon the DORA work measures — only
// exists when lock-table critical sections from different cores
// genuinely overlap. The model charges explicit cycle costs for lock
// table visits (with cache-line transfer on contention), transaction
// work, and DORA's action-dispatch messaging, and reports aggregate
// throughput per configuration.
package txnsim

// Params is the cost model, in abstract cycles.
type Params struct {
	// WorkCycles is a transaction's data-access and logic work,
	// excluding all synchronization.
	WorkCycles float64
	// LockVisits is the number of lock-manager round trips per
	// transaction (acquisitions + the release pass).
	LockVisits int
	// LockCSCycles is the critical-section length of one lock-table
	// visit (hash, queue manipulation).
	LockCSCycles float64
	// HandoffCycles is the extra cost when a visit finds the latch
	// held by another core (cache-line transfer + spin).
	HandoffCycles float64
	// LockPartitions is the number of independently latched lock-table
	// partitions (1 = the classic centralized manager).
	LockPartitions int
	// DispatchCycles is DORA's cost to ship one action to its owning
	// executor and return the completion (two message hops).
	DispatchCycles float64
	// Partitions is DORA's logical-partition count (= executors).
	Partitions int
}

// DefaultParams returns costs proportioned like the motivating
// systems: short transactions (TATP-like), ~10 lock visits each,
// lock-table critical sections of a few hundred cycles once queue
// manipulation and hierarchy walks are counted.
func DefaultParams(cores int) Params {
	return Params{
		WorkCycles:     30000,
		LockVisits:     10,
		LockCSCycles:   250,
		HandoffCycles:  400,
		LockPartitions: 1,
		DispatchCycles: 3000,
		Partitions:     cores,
	}
}

// Result is one simulated configuration's outcome.
type Result struct {
	Cores int
	// TxnsPerMCycle is aggregate committed transactions per million
	// cycles.
	TxnsPerMCycle float64
	// LockWaitFrac is the fraction of total core time spent waiting
	// for lock-table latches (0 for DORA).
	LockWaitFrac float64
}

// Conventional simulates thread-to-transaction execution of txns
// transactions over cores.
func Conventional(p Params, cores, txns int) Result {
	coreTime := make([]float64, cores)
	partFree := make([]float64, p.LockPartitions)
	var waited float64
	for done := 0; done < txns; done++ {
		c := argmin(coreTime)
		t := coreTime[c]
		// Interleave lock visits through the transaction's work.
		slice := p.WorkCycles / float64(p.LockVisits)
		for v := 0; v < p.LockVisits; v++ {
			t += slice
			part := (done*7 + v) % p.LockPartitions // deterministic spread
			start := t
			if partFree[part] > t {
				start = partFree[part] + p.HandoffCycles
				waited += start - t
			}
			end := start + p.LockCSCycles
			partFree[part] = end
			t = end
		}
		coreTime[c] = t
	}
	end := maxOf(coreTime)
	total := end * float64(cores)
	return Result{
		Cores:         cores,
		TxnsPerMCycle: float64(txns) / end * 1e6,
		LockWaitFrac:  waited / total,
	}
}

// DORA simulates thread-to-data execution: each transaction is one
// action dispatched to the executor owning its key (uniform keys →
// round-robin partitions); executors do the work serially, with no
// shared synchronization at all.
func DORA(p Params, cores, txns int) Result {
	execTime := make([]float64, p.Partitions)
	for done := 0; done < txns; done++ {
		ex := done % p.Partitions
		execTime[ex] += p.DispatchCycles + p.WorkCycles
	}
	end := maxOf(execTime)
	return Result{
		Cores:         cores,
		TxnsPerMCycle: float64(txns) / end * 1e6,
	}
}

// Sweep runs both disciplines across core counts. DORA's executor
// count tracks the core count.
func Sweep(base Params, coreCounts []int, txns int) (conv, dora []Result) {
	for _, n := range coreCounts {
		p := base
		p.Partitions = n
		conv = append(conv, Conventional(p, n, txns))
		dora = append(dora, DORA(p, n, txns))
	}
	return conv, dora
}

func argmin(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
