// Package txnsim is a deterministic discrete-event simulator of OLTP
// execution on a chip multiprocessor, comparing the two assignment
// disciplines of experiment E1: thread-to-transaction (any core runs
// any transaction, isolation through a centralized lock manager whose
// internal latches every lock and unlock must visit) and DORA's
// thread-to-data (transactions decompose into actions shipped to the
// executor owning the data, no shared lock state).
//
// Like internal/logsim, it substitutes for hardware this repository's
// measured experiments cannot provide: the centralized lock manager's
// latch contention — the phenomenon the DORA work measures — only
// exists when lock-table critical sections from different cores
// genuinely overlap. The model charges explicit cycle costs for lock
// table visits (with cache-line transfer on contention), transaction
// work, and DORA's action-dispatch messaging, and reports aggregate
// throughput per configuration.
package txnsim

// Params is the cost model, in abstract cycles.
type Params struct {
	// WorkCycles is a transaction's data-access and logic work,
	// excluding all synchronization.
	WorkCycles float64
	// LockVisits is the number of lock-manager round trips per
	// transaction (acquisitions + the release pass).
	LockVisits int
	// LockCSCycles is the critical-section length of one lock-table
	// visit (hash, queue manipulation).
	LockCSCycles float64
	// HandoffCycles is the extra cost when a visit finds the latch
	// held by another core (cache-line transfer + spin).
	HandoffCycles float64
	// LockPartitions is the number of independently latched lock-table
	// partitions (1 = the classic centralized manager).
	LockPartitions int
	// DispatchCycles is DORA's cost to ship one action to its owning
	// executor and return the completion (two message hops).
	DispatchCycles float64
	// Partitions is DORA's logical-partition count (= executors).
	Partitions int

	// The skewed-workload extension (SweepSkew): a HotFrac share of
	// transactions target one of HotRows rows under strict 2PL.

	// HotRows is the size of the hot set.
	HotRows int
	// RowHandoffCycles is the cost to transfer a contended row lock to
	// a parked waiter (park + unpark + reschedule, roughly two context
	// switches), charged to the new holder's serial chain. Parked-
	// waiter handoff is far more expensive than a latch spin transfer.
	RowHandoffCycles float64
	// DequeueCycles is the executor-side cost to take one action from a
	// backlogged inbox: batched draining amortizes the wakeup, so a hot
	// partition pays this instead of the full DispatchCycles round trip.
	DequeueCycles float64
}

// DefaultParams returns costs proportioned like the motivating
// systems: short transactions (TATP-like), ~10 lock visits each,
// lock-table critical sections of a few hundred cycles once queue
// manipulation and hierarchy walks are counted.
func DefaultParams(cores int) Params {
	return Params{
		WorkCycles:       30000,
		LockVisits:       10,
		LockCSCycles:     250,
		HandoffCycles:    400,
		LockPartitions:   1,
		DispatchCycles:   3000,
		Partitions:       cores,
		HotRows:          8,
		RowHandoffCycles: 6000,
		DequeueCycles:    300,
	}
}

// Result is one simulated configuration's outcome.
type Result struct {
	Cores int
	// TxnsPerMCycle is aggregate committed transactions per million
	// cycles.
	TxnsPerMCycle float64
	// LockWaitFrac is the fraction of total core time spent waiting
	// for lock-table latches (0 for DORA).
	LockWaitFrac float64
}

// Conventional simulates thread-to-transaction execution of txns
// transactions over cores.
func Conventional(p Params, cores, txns int) Result {
	coreTime := make([]float64, cores)
	partFree := make([]float64, p.LockPartitions)
	var waited float64
	for done := 0; done < txns; done++ {
		c := argmin(coreTime)
		t := coreTime[c]
		// Interleave lock visits through the transaction's work.
		slice := p.WorkCycles / float64(p.LockVisits)
		for v := 0; v < p.LockVisits; v++ {
			t += slice
			part := (done*7 + v) % p.LockPartitions // deterministic spread
			start := t
			if partFree[part] > t {
				start = partFree[part] + p.HandoffCycles
				waited += start - t
			}
			end := start + p.LockCSCycles
			partFree[part] = end
			t = end
		}
		coreTime[c] = t
	}
	end := maxOf(coreTime)
	total := end * float64(cores)
	return Result{
		Cores:         cores,
		TxnsPerMCycle: float64(txns) / end * 1e6,
		LockWaitFrac:  waited / total,
	}
}

// DORA simulates thread-to-data execution: each transaction is one
// action dispatched to the executor owning its key (uniform keys →
// round-robin partitions); executors do the work serially, with no
// shared synchronization at all.
func DORA(p Params, cores, txns int) Result {
	execTime := make([]float64, p.Partitions)
	for done := 0; done < txns; done++ {
		ex := done % p.Partitions
		execTime[ex] += p.DispatchCycles + p.WorkCycles
	}
	end := maxOf(execTime)
	return Result{
		Cores:         cores,
		TxnsPerMCycle: float64(txns) / end * 1e6,
	}
}

// Sweep runs both disciplines across core counts. DORA's executor
// count tracks the core count.
func Sweep(base Params, coreCounts []int, txns int) (conv, dora []Result) {
	for _, n := range coreCounts {
		p := base
		p.Partitions = n
		conv = append(conv, Conventional(p, n, txns))
		dora = append(dora, DORA(p, n, txns))
	}
	return conv, dora
}

// convCore is one core's in-flight transaction in ConventionalSkew.
type convCore struct {
	t       float64 // current simulated time on this core
	id      int     // transaction ordinal (for deterministic spreading)
	v       int     // next lock visit index
	isHot   bool
	row     int
	blocked bool // parked in a row-lock wait queue
	done    bool // no transactions left to issue to this core
}

// ConventionalSkew is Conventional with a hot set: a hotFrac share of
// transactions takes one of p.HotRows row locks at its first visit and
// holds it to commit (strict 2PL). A transaction arriving at a busy
// hot row queues behind the holder and, because the waiter parks, pays
// the RowHandoffCycles wakeup on the transfer. Hot transactions visit
// the hot row's home latch stripe for acquire and release, so skew
// also re-concentrates latch traffic that partitioning had spread out.
//
// Unlike Conventional — whose whole-transaction chronology is fine for
// the uniform latch-wall sweep — this variant interleaves cores at
// visit granularity so row hold times and latch visits from different
// cores overlap the way they would on real hardware. LockWaitFrac here
// counts latch and row-lock waiting together.
func ConventionalSkew(p Params, cores, txns int, hotFrac float64) Result {
	partFree := make([]float64, p.LockPartitions)
	rowHolder := make([]int, p.HotRows) // core index, -1 = free
	for i := range rowHolder {
		rowHolder[i] = -1
	}
	rowQueue := make([][]int, p.HotRows) // parked core indices, FIFO
	var waited, endMax float64
	issued, completed, hotCount := 0, 0, 0
	slice := p.WorkCycles / float64(p.LockVisits)

	cs := make([]convCore, cores)
	start := func(c *convCore, at float64) {
		if issued >= txns {
			c.done = true
			return
		}
		c.t = at
		c.id = issued
		c.v = 0
		c.isHot = float64(issued%1000) < hotFrac*1000
		if c.isHot {
			c.row = hotRow(hotCount, p.HotRows)
			hotCount++
		}
		issued++
	}
	for i := range cs {
		start(&cs[i], 0)
	}

	for completed < txns {
		// Advance the earliest runnable core by one visit, so resource
		// acquisition happens in (approximate) global time order. The
		// holder of any contended row is always runnable, so progress
		// is guaranteed.
		ci := -1
		for i := range cs {
			if cs[i].done || cs[i].blocked {
				continue
			}
			if ci < 0 || cs[i].t < cs[ci].t {
				ci = i
			}
		}
		c := &cs[ci]
		t := c.t + slice
		// Acquire and release go to the target row's home stripe; the
		// other visits (indexes, reads) spread across the table.
		part := (c.id*7 + c.v) % p.LockPartitions
		if c.isHot && (c.v == 0 || c.v == p.LockVisits-1) {
			part = c.row % p.LockPartitions
		}
		at := t
		if partFree[part] > t {
			at = partFree[part] + p.HandoffCycles
			waited += at - t
		}
		t = at + p.LockCSCycles
		partFree[part] = t
		if c.isHot && c.v == 0 && rowHolder[c.row] != ci {
			if rowHolder[c.row] >= 0 {
				// Row held by an in-flight transaction: park behind it
				// (strict 2PL — the holder keeps it to commit). The
				// grant happens at the holder's release, below.
				c.t = t
				c.blocked = true
				rowQueue[c.row] = append(rowQueue[c.row], ci)
				continue
			}
			rowHolder[c.row] = ci
		}
		c.v++
		if c.v == p.LockVisits {
			if c.isHot {
				// Release: hand the row to the first parked waiter,
				// who pays the wakeup on the transfer.
				if q := rowQueue[c.row]; len(q) > 0 {
					w := &cs[q[0]]
					rowQueue[c.row] = q[1:]
					grant := t + p.RowHandoffCycles
					waited += grant - w.t
					w.t = grant
					w.v = 1 // its acquire visit completes with the grant
					w.blocked = false
					rowHolder[c.row] = q[0]
				} else {
					rowHolder[c.row] = -1
				}
			}
			if t > endMax {
				endMax = t
			}
			completed++
			start(c, t)
		} else {
			c.t = t
		}
	}
	return Result{
		Cores:         cores,
		TxnsPerMCycle: float64(txns) / endMax * 1e6,
		LockWaitFrac:  waited / (endMax * float64(cores)),
	}
}

// DORASkew is DORA with the same hot set: hot rows co-locate on their
// owning executors (spread round-robin, as a balanced routing hash
// would place them), so a hot partition serializes its rows'
// transactions — but its inbox stays backlogged, and the batched drain
// amortizes the wakeup to DequeueCycles per action where an unloaded
// partition pays the full dispatch round trip. There is no lock
// manager and no parked-waiter handoff anywhere: the next serialized
// transaction is just the next entry in the drained batch.
func DORASkew(p Params, cores, txns int, hotFrac float64) Result {
	execTime := make([]float64, p.Partitions)
	hot := 0
	for done := 0; done < txns; done++ {
		if float64(done%1000) < hotFrac*1000 {
			ex := hotRow(hot, p.HotRows) % p.Partitions
			hot++
			execTime[ex] += p.DequeueCycles + p.WorkCycles
		} else {
			ex := done % p.Partitions
			execTime[ex] += p.DispatchCycles + p.WorkCycles
		}
	}
	end := maxOf(execTime)
	return Result{
		Cores:         cores,
		TxnsPerMCycle: float64(txns) / end * 1e6,
	}
}

// SweepSkew runs both disciplines across hot-set fractions at a fixed
// core count (the E10 crossover).
func SweepSkew(base Params, cores int, hotFracs []float64, txns int) (conv, dora []Result) {
	p := base
	p.Partitions = cores
	for _, h := range hotFracs {
		conv = append(conv, ConventionalSkew(p, cores, txns, h))
		dora = append(dora, DORASkew(p, cores, txns, h))
	}
	return conv, dora
}

// hotRow draws the i-th hot transaction's target row pseudo-randomly:
// a uniform hot set produces birthday collisions between concurrent
// transactions, which a round-robin assignment would (unrealistically)
// never have.
func hotRow(i, rows int) int {
	// splitmix64-style avalanche: a plain multiplicative hash is a
	// low-discrepancy sequence whose consecutive draws (i.e. the
	// concurrently running transactions) would almost never collide.
	x := uint64(i) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return int(x % uint64(rows))
}

func argmin(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}
