package txnsim

import "testing"

const txns = 20000

func TestSingleCoreDORAOverheadVisible(t *testing.T) {
	p := DefaultParams(1)
	conv := Conventional(p, 1, txns)
	dora := DORA(p, 1, txns)
	// At one core the conventional system wins slightly: it pays lock
	// visits but no dispatch messaging; both are within a small factor.
	if dora.TxnsPerMCycle >= conv.TxnsPerMCycle*1.05 {
		t.Fatalf("DORA should not win at 1 core: conv=%f dora=%f",
			conv.TxnsPerMCycle, dora.TxnsPerMCycle)
	}
	ratio := conv.TxnsPerMCycle / dora.TxnsPerMCycle
	if ratio > 1.5 {
		t.Fatalf("single-core gap implausibly large: %f", ratio)
	}
}

// The DORA figure shape: the conventional system hits the lock-table
// latch wall; DORA keeps scaling.
func TestDORAWinsAtScale(t *testing.T) {
	cores := []int{1, 2, 4, 8, 16, 32, 64}
	conv, dora := Sweep(DefaultParams(1), cores, txns)
	// Find the crossover.
	crossed := false
	for i := range cores {
		if dora[i].TxnsPerMCycle > conv[i].TxnsPerMCycle {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("DORA never overtook the conventional system")
	}
	// At 64 cores the gap must be substantial.
	last := len(cores) - 1
	if dora[last].TxnsPerMCycle < 2*conv[last].TxnsPerMCycle {
		t.Fatalf("64-core gap too small: conv=%f dora=%f",
			conv[last].TxnsPerMCycle, dora[last].TxnsPerMCycle)
	}
}

func TestConventionalSaturates(t *testing.T) {
	p := DefaultParams(1)
	c16 := Conventional(p, 16, txns)
	c64 := Conventional(p, 64, txns)
	if c64.TxnsPerMCycle > c16.TxnsPerMCycle*1.2 {
		t.Fatalf("conventional still scaling past 16 cores: %f -> %f",
			c16.TxnsPerMCycle, c64.TxnsPerMCycle)
	}
	// And most core time is lock waiting at 64 cores.
	if c64.LockWaitFrac < 0.5 {
		t.Fatalf("lock wait fraction at 64 cores only %f", c64.LockWaitFrac)
	}
}

func TestDORAScalesLinearly(t *testing.T) {
	p := DefaultParams(1)
	p.Partitions = 1
	d1 := DORA(p, 1, txns)
	p.Partitions = 32
	d32 := DORA(p, 32, txns)
	speedup := d32.TxnsPerMCycle / d1.TxnsPerMCycle
	if speedup < 30 || speedup > 33 {
		t.Fatalf("DORA 32-way speedup = %f, want ~32 (uniform keys)", speedup)
	}
}

func TestPartitionedLockTableHelpsButBounded(t *testing.T) {
	// Partitioning the lock table (Shore-MT's fix) lifts the ceiling
	// but the latch cost per visit remains; DORA removes it entirely.
	p := DefaultParams(1)
	cores := 64
	central := Conventional(p, cores, txns)
	p.LockPartitions = 16
	parted := Conventional(p, cores, txns)
	if parted.TxnsPerMCycle <= central.TxnsPerMCycle {
		t.Fatal("partitioned lock table did not help")
	}
	pd := p
	pd.Partitions = cores
	dora := DORA(pd, cores, txns)
	if dora.TxnsPerMCycle <= parted.TxnsPerMCycle {
		t.Fatalf("DORA (%f) should beat even the partitioned table (%f)",
			dora.TxnsPerMCycle, parted.TxnsPerMCycle)
	}
}

// The E10 crossover shape: at zero skew DORA's dispatch overhead loses
// narrowly; as the hot fraction rises, the conventional system's serial
// chain per hot transaction carries lock visits and parked-waiter
// handoffs that DORA's batched executor inbox does not, and the ratio
// flips past 1.
func TestSkewCrossover(t *testing.T) {
	hotFracs := []float64{0, 0.2, 0.5, 0.8, 0.9, 0.95, 0.99}
	conv, dora := SweepSkew(DefaultParams(1), 4, hotFracs, txns)
	first := dora[0].TxnsPerMCycle / conv[0].TxnsPerMCycle
	if first >= 1 {
		t.Fatalf("DORA should pay for dispatch at zero skew: ratio %f", first)
	}
	last := len(hotFracs) - 1
	end := dora[last].TxnsPerMCycle / conv[last].TxnsPerMCycle
	if end <= 1 {
		t.Fatalf("DORA should win on the contended tail: ratio %f", end)
	}
}

// Under extreme skew both systems serialize on the hot set; throughput
// must collapse versus the uniform case for both, or the model is not
// actually charging for contention.
func TestSkewCollapsesThroughput(t *testing.T) {
	p := DefaultParams(1)
	p.HotRows = 2 // hot set narrower than the core count
	conv, dora := SweepSkew(p, 8, []float64{0, 0.99}, txns)
	if conv[1].TxnsPerMCycle > conv[0].TxnsPerMCycle/2 {
		t.Fatalf("conventional barely slowed by 99%% skew: %f -> %f",
			conv[0].TxnsPerMCycle, conv[1].TxnsPerMCycle)
	}
	if dora[1].TxnsPerMCycle > dora[0].TxnsPerMCycle/2 {
		t.Fatalf("DORA barely slowed by 99%% skew: %f -> %f",
			dora[0].TxnsPerMCycle, dora[1].TxnsPerMCycle)
	}
}

func TestDeterminism(t *testing.T) {
	a := Conventional(DefaultParams(8), 8, txns)
	b := Conventional(DefaultParams(8), 8, txns)
	if a != b {
		t.Fatal("simulation not deterministic")
	}
}
