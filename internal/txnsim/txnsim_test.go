package txnsim

import "testing"

const txns = 20000

func TestSingleCoreDORAOverheadVisible(t *testing.T) {
	p := DefaultParams(1)
	conv := Conventional(p, 1, txns)
	dora := DORA(p, 1, txns)
	// At one core the conventional system wins slightly: it pays lock
	// visits but no dispatch messaging; both are within a small factor.
	if dora.TxnsPerMCycle >= conv.TxnsPerMCycle*1.05 {
		t.Fatalf("DORA should not win at 1 core: conv=%f dora=%f",
			conv.TxnsPerMCycle, dora.TxnsPerMCycle)
	}
	ratio := conv.TxnsPerMCycle / dora.TxnsPerMCycle
	if ratio > 1.5 {
		t.Fatalf("single-core gap implausibly large: %f", ratio)
	}
}

// The DORA figure shape: the conventional system hits the lock-table
// latch wall; DORA keeps scaling.
func TestDORAWinsAtScale(t *testing.T) {
	cores := []int{1, 2, 4, 8, 16, 32, 64}
	conv, dora := Sweep(DefaultParams(1), cores, txns)
	// Find the crossover.
	crossed := false
	for i := range cores {
		if dora[i].TxnsPerMCycle > conv[i].TxnsPerMCycle {
			crossed = true
		}
	}
	if !crossed {
		t.Fatal("DORA never overtook the conventional system")
	}
	// At 64 cores the gap must be substantial.
	last := len(cores) - 1
	if dora[last].TxnsPerMCycle < 2*conv[last].TxnsPerMCycle {
		t.Fatalf("64-core gap too small: conv=%f dora=%f",
			conv[last].TxnsPerMCycle, dora[last].TxnsPerMCycle)
	}
}

func TestConventionalSaturates(t *testing.T) {
	p := DefaultParams(1)
	c16 := Conventional(p, 16, txns)
	c64 := Conventional(p, 64, txns)
	if c64.TxnsPerMCycle > c16.TxnsPerMCycle*1.2 {
		t.Fatalf("conventional still scaling past 16 cores: %f -> %f",
			c16.TxnsPerMCycle, c64.TxnsPerMCycle)
	}
	// And most core time is lock waiting at 64 cores.
	if c64.LockWaitFrac < 0.5 {
		t.Fatalf("lock wait fraction at 64 cores only %f", c64.LockWaitFrac)
	}
}

func TestDORAScalesLinearly(t *testing.T) {
	p := DefaultParams(1)
	p.Partitions = 1
	d1 := DORA(p, 1, txns)
	p.Partitions = 32
	d32 := DORA(p, 32, txns)
	speedup := d32.TxnsPerMCycle / d1.TxnsPerMCycle
	if speedup < 30 || speedup > 33 {
		t.Fatalf("DORA 32-way speedup = %f, want ~32 (uniform keys)", speedup)
	}
}

func TestPartitionedLockTableHelpsButBounded(t *testing.T) {
	// Partitioning the lock table (Shore-MT's fix) lifts the ceiling
	// but the latch cost per visit remains; DORA removes it entirely.
	p := DefaultParams(1)
	cores := 64
	central := Conventional(p, cores, txns)
	p.LockPartitions = 16
	parted := Conventional(p, cores, txns)
	if parted.TxnsPerMCycle <= central.TxnsPerMCycle {
		t.Fatal("partitioned lock table did not help")
	}
	pd := p
	pd.Partitions = cores
	dora := DORA(pd, cores, txns)
	if dora.TxnsPerMCycle <= parted.TxnsPerMCycle {
		t.Fatalf("DORA (%f) should beat even the partitioned table (%f)",
			dora.TxnsPerMCycle, parted.TxnsPerMCycle)
	}
}

func TestDeterminism(t *testing.T) {
	a := Conventional(DefaultParams(8), 8, txns)
	b := Conventional(DefaultParams(8), 8, txns)
	if a != b {
		t.Fatal("simulation not deterministic")
	}
}
