package heap

import (
	"bytes"
	"errors"
	"testing"

	"hydra/internal/buffer"
	"hydra/internal/page"
)

func TestInsertFnLogsInsideLatch(t *testing.T) {
	h := newFile(t)
	var seenRID RID
	rid, err := h.InsertFn([]byte("rec"), func(r RID) (uint64, error) {
		seenRID = r
		return 77, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rid != seenRID {
		t.Fatalf("logFn saw %v, insert returned %v", seenRID, rid)
	}
	if lsn, _ := h.PageLSN(rid.Page); lsn != 77 {
		t.Fatalf("pageLSN = %d, want 77", lsn)
	}
}

func TestInsertFnLogErrorRollsBack(t *testing.T) {
	h := newFile(t)
	boom := errors.New("log full")
	if _, err := h.InsertFn([]byte("doomed"), func(RID) (uint64, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Nothing must remain.
	if n, _ := h.Count(); n != 0 {
		t.Fatalf("rolled-back insert left %d records", n)
	}
	// The file still works afterwards.
	if _, err := h.InsertFn([]byte("fine"), func(RID) (uint64, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateFnBeforeImageAndStamp(t *testing.T) {
	h := newFile(t)
	rid, _ := h.InsertFn([]byte("before-img"), func(RID) (uint64, error) { return 1, nil })
	var before []byte
	err := h.UpdateFn(rid, []byte("after-img!"), func(b []byte) (uint64, error) {
		before = append([]byte(nil), b...)
		return 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != "before-img" {
		t.Fatalf("before image = %q", before)
	}
	got, _ := h.Read(rid)
	if string(got) != "after-img!" {
		t.Fatalf("after = %q", got)
	}
	if lsn, _ := h.PageLSN(rid.Page); lsn != 2 {
		t.Fatalf("pageLSN = %d", lsn)
	}
}

func TestUpdateFnLogErrorRestores(t *testing.T) {
	h := newFile(t)
	rid, _ := h.InsertFn([]byte("original"), func(RID) (uint64, error) { return 1, nil })
	boom := errors.New("log failed")
	err := h.UpdateFn(rid, []byte("a-much-longer-replacement-value"), func([]byte) (uint64, error) {
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	got, err := h.Read(rid)
	if err != nil || string(got) != "original" {
		t.Fatalf("record not restored: %q, %v", got, err)
	}
}

func TestUpdateFnNoFitLeavesNothingLogged(t *testing.T) {
	h := newFile(t)
	// Fill a page so a grow-update cannot fit.
	big := bytes.Repeat([]byte("x"), 4000)
	rid, _ := h.InsertFn(big, func(RID) (uint64, error) { return 1, nil })
	h.InsertFn(bytes.Repeat([]byte("y"), 4000), func(RID) (uint64, error) { return 2, nil })
	logged := false
	err := h.UpdateFn(rid, bytes.Repeat([]byte("z"), 8000), func([]byte) (uint64, error) {
		logged = true
		return 3, nil
	})
	if !errors.Is(err, page.ErrPageFull) {
		t.Fatalf("err = %v, want ErrPageFull", err)
	}
	if logged {
		t.Fatal("logFn invoked for an update that could not be applied")
	}
}

func TestDeleteFnBeforeImage(t *testing.T) {
	h := newFile(t)
	rid, _ := h.InsertFn([]byte("victim"), func(RID) (uint64, error) { return 1, nil })
	var before []byte
	err := h.DeleteFn(rid, func(b []byte) (uint64, error) {
		before = append([]byte(nil), b...)
		return 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != "victim" {
		t.Fatalf("before = %q", before)
	}
	if _, err := h.Read(rid); !errors.Is(err, ErrNotFound) {
		t.Fatal("record survived DeleteFn")
	}
}

func TestDeleteFnLogErrorKeepsRecord(t *testing.T) {
	h := newFile(t)
	rid, _ := h.InsertFn([]byte("keeper"), func(RID) (uint64, error) { return 1, nil })
	boom := errors.New("no log")
	if err := h.DeleteFn(rid, func([]byte) (uint64, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got, err := h.Read(rid); err != nil || string(got) != "keeper" {
		t.Fatalf("record lost on failed delete: %q, %v", got, err)
	}
}

func TestExtendHookInvokedOnChainGrowth(t *testing.T) {
	pool := buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 64, Shards: 4})
	h, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	var extensions []struct{ old, new page.ID }
	h.SetExtendHook(func(oldTail, newTail page.ID) (uint64, error) {
		extensions = append(extensions, struct{ old, new page.ID }{oldTail, newTail})
		return uint64(100 + len(extensions)), nil
	})
	rec := bytes.Repeat([]byte("e"), 2000)
	for i := 0; i < 20; i++ { // ~40KB: several pages
		if _, err := h.InsertFn(rec, func(RID) (uint64, error) { return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if len(extensions) < 3 {
		t.Fatalf("only %d chain extensions for 20 large inserts", len(extensions))
	}
	// Chain continuity: each extension's old tail links to the new.
	for _, ext := range extensions {
		f, err := pool.Fetch(ext.old)
		if err != nil {
			t.Fatal(err)
		}
		if f.Page.Next() != ext.new {
			t.Fatalf("page %d next = %d, want %d", ext.old, f.Page.Next(), ext.new)
		}
		pool.Unpin(f, false)
	}
}

func TestExtendHookErrorFailsInsert(t *testing.T) {
	pool := buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 64, Shards: 4})
	h, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("log unavailable")
	h.SetExtendHook(func(page.ID, page.ID) (uint64, error) { return 0, boom })
	rec := bytes.Repeat([]byte("e"), 4000)
	// First two inserts fit in page 1; the third needs an extension.
	h.InsertFn(rec, func(RID) (uint64, error) { return 1, nil })
	h.InsertFn(rec, func(RID) (uint64, error) { return 1, nil })
	if _, err := h.InsertFn(rec, func(RID) (uint64, error) { return 1, nil }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want extend hook error", err)
	}
}

func TestRedoFormatIdempotent(t *testing.T) {
	pool := buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 64, Shards: 4})
	h, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	// Allocate a second page to act as the new tail.
	nf, err := pool.NewPage(page.TypeFree)
	if err != nil {
		t.Fatal(err)
	}
	newID := nf.ID()
	pool.Unpin(nf, true)

	if err := h.RedoFormat(h.FirstPage(), newID, 50); err != nil {
		t.Fatal(err)
	}
	// Applying the same redo again must be a no-op.
	if err := h.RedoFormat(h.FirstPage(), newID, 50); err != nil {
		t.Fatal(err)
	}
	f, _ := pool.Fetch(h.FirstPage())
	if f.Page.Next() != newID || f.Page.LSN() != 50 {
		t.Fatalf("chain not formed: next=%d lsn=%d", f.Page.Next(), f.Page.LSN())
	}
	pool.Unpin(f, false)
	nf2, _ := pool.Fetch(newID)
	if nf2.Page.Type() != page.TypeHeap {
		t.Fatalf("new tail type = %v", nf2.Page.Type())
	}
	pool.Unpin(nf2, false)
	// Inserts continue onto the redone chain after RefreshTail.
	if err := h.RefreshTail(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Insert([]byte("post-redo")); err != nil {
		t.Fatal(err)
	}
}
