package heap

import (
	"bytes"
	"errors"

	"sync"
	"testing"
	"testing/quick"

	"hydra/internal/buffer"
	"hydra/internal/page"
	"hydra/internal/rng"
)

func newFile(t *testing.T) *File {
	t.Helper()
	pool := buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 64, Shards: 4})
	h, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestRIDPackUnpack(t *testing.T) {
	f := func(pg uint32, slot uint16) bool {
		r := RID{Page: page.ID(pg), Slot: slot}
		return Unpack(r.Pack()) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if (RID{Page: 3, Slot: 4}).String() != "rid(3,4)" {
		t.Error("RID.String mismatch")
	}
}

func TestInsertReadUpdateDelete(t *testing.T) {
	h := newFile(t)
	rid, err := h.Insert([]byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(rid)
	if err != nil || string(got) != "v1" {
		t.Fatalf("Read = %q, %v", got, err)
	}
	if err := h.Update(rid, []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Read(rid); string(got) != "v2-longer" {
		t.Fatalf("after update: %q", got)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Read(rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after delete: %v", err)
	}
	if err := h.Delete(rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if err := h.Update(rid, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update after delete: %v", err)
	}
}

func TestChainGrowthAndScan(t *testing.T) {
	h := newFile(t)
	rec := bytes.Repeat([]byte("r"), 500)
	const n = 100 // ~50KB across ~7 pages
	rids := map[RID]bool{}
	for i := 0; i < n; i++ {
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		if rids[rid] {
			t.Fatalf("duplicate RID %v", rid)
		}
		rids[rid] = true
	}
	count := 0
	seen := map[RID]bool{}
	err := h.Scan(func(rid RID, rec []byte) bool {
		count++
		seen[rid] = true
		if len(rec) != 500 {
			t.Fatalf("scan returned %d-byte record", len(rec))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan found %d records, want %d", count, n)
	}
	for rid := range rids {
		if !seen[rid] {
			t.Fatalf("scan missed %v", rid)
		}
	}
	if c, _ := h.Count(); c != n {
		t.Fatalf("Count = %d", c)
	}
}

func TestScanEarlyStop(t *testing.T) {
	h := newFile(t)
	for i := 0; i < 10; i++ {
		h.Insert([]byte("x"))
	}
	count := 0
	h.Scan(func(RID, []byte) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestOpenFindsTail(t *testing.T) {
	pool := buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 64, Shards: 4})
	h, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte("z"), 1000)
	for i := 0; i < 30; i++ { // forces multiple pages
		if _, err := h.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	h2, err := Open(pool, h.FirstPage())
	if err != nil {
		t.Fatal(err)
	}
	// Inserting through the reopened handle must not corrupt the chain.
	if _, err := h2.Insert([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	want, _ := h.Count()
	got, _ := h2.Count()
	if want != got || got != 31 {
		t.Fatalf("counts diverge: %d vs %d", want, got)
	}
}

func TestTooBigRecord(t *testing.T) {
	h := newFile(t)
	if _, err := h.Insert(make([]byte, page.MaxRecordSize+1)); !errors.Is(err, page.ErrRecordTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestLSNStamping(t *testing.T) {
	h := newFile(t)
	rid, err := h.InsertWithLSN([]byte("logged"), 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.UpdateWithLSN(rid, []byte("logged2"), 43); err != nil {
		t.Fatal(err)
	}
	if err := h.DeleteWithLSN(rid, 44); err != nil {
		t.Fatal(err)
	}
	// The page's LSN must be the last stamped value.
	pool := h.pool
	f, err := pool.Fetch(rid.Page)
	if err != nil {
		t.Fatal(err)
	}
	if f.Page.LSN() != 44 {
		t.Fatalf("pageLSN = %d, want 44", f.Page.LSN())
	}
	pool.Unpin(f, false)
}

func TestConcurrentInserts(t *testing.T) {
	h := newFile(t)
	const workers, per = 8, 200
	var mu sync.Mutex
	all := map[RID][]byte{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := rng.New(uint64(w))
			for i := 0; i < per; i++ {
				rec := make([]byte, src.IntRange(10, 400))
				src.Bytes(rec)
				rec[0] = byte(w) // tag
				rid, err := h.Insert(rec)
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				mu.Lock()
				all[rid] = append([]byte(nil), rec...)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(all) != workers*per {
		t.Fatalf("RID collisions: %d unique for %d inserts", len(all), workers*per)
	}
	for rid, want := range all {
		got, err := h.Read(rid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("record %v corrupted: %v", rid, err)
		}
	}
}

func TestInsertAtRedo(t *testing.T) {
	h := newFile(t)
	rid, err := h.Insert([]byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Delete(rid); err != nil {
		t.Fatal(err)
	}
	// Redo reproduces the insert at the same RID (tombstone reuse).
	if err := h.InsertAt(rid, []byte("original"), 9); err != nil {
		t.Fatal(err)
	}
	got, err := h.Read(rid)
	if err != nil || string(got) != "original" {
		t.Fatalf("redo read: %q, %v", got, err)
	}
}

func BenchmarkInsert(b *testing.B) {
	pool := buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 4096, Shards: 16})
	h, err := Create(pool)
	if err != nil {
		b.Fatal(err)
	}
	rec := bytes.Repeat([]byte("b"), 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	pool := buffer.NewPool(buffer.NewMemStore(), buffer.Options{Frames: 4096, Shards: 16})
	h, _ := Create(pool)
	var rids []RID
	rec := bytes.Repeat([]byte("b"), 100)
	for i := 0; i < 10000; i++ {
		rid, _ := h.Insert(rec)
		rids = append(rids, rid)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := h.Read(rids[i%len(rids)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}
