// Package heap implements heap files: unordered collections of
// variable-length records stored in chained slotted pages, addressed
// by record id (page, slot). This is the storage manager's base table
// representation; indexes map keys to the record ids handed out here.
package heap

import (
	"errors"
	"fmt"
	"sync"

	"hydra/internal/buffer"
	"hydra/internal/latch"
	"hydra/internal/obs"
	"hydra/internal/page"
)

// RID is a record id: the physical address of a record.
type RID struct {
	Page page.ID
	Slot uint16
}

func (r RID) String() string { return fmt.Sprintf("rid(%d,%d)", r.Page, r.Slot) }

// Pack encodes the RID into a uint64 (48-bit page, 16-bit slot) for
// storage in index leaves.
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// Unpack decodes a RID produced by Pack.
func Unpack(v uint64) RID { return RID{Page: page.ID(v >> 16), Slot: uint16(v)} }

// ErrNotFound is returned for reads of deleted or never-written RIDs.
var ErrNotFound = errors.New("heap: record not found")

// File is a heap file. It is safe for concurrent use; record content
// consistency across transactions is the caller's (lock manager's)
// concern.
type File struct {
	pool  *buffer.Pool
	first page.ID

	// mu guards the insert target and chain tail.
	mu   sync.Mutex
	last page.ID

	// extend, when set, logs chain growth (see SetExtendHook).
	extend ExtendHook

	// versioned, when set, makes the logged write paths bump the page
	// version epoch so MVCC snapshot readers know which pages may have
	// version chains (see SetVersioned).
	versioned bool
}

// SetVersioned enables version-epoch maintenance: every logged write
// (InsertFnC/UpdateFnC/DeleteFnC) bumps the page's version epoch under
// the same X latch that stamps the pageLSN. Set once at table attach,
// before concurrent use.
func (h *File) SetVersioned(v bool) { h.versioned = v }

// Create allocates a new heap file and returns it. The first page id
// is the file's persistent identity: store it in the catalog and pass
// it to Open on restart.
func Create(pool *buffer.Pool) (*File, error) {
	f, err := pool.NewPage(page.TypeHeap)
	if err != nil {
		return nil, err
	}
	id := f.ID()
	pool.Unpin(f, true)
	return &File{pool: pool, first: id, last: id}, nil
}

// Open attaches to an existing heap file rooted at first, walking the
// chain to find the current tail.
func Open(pool *buffer.Pool, first page.ID) (*File, error) {
	last := first
	for {
		f, err := pool.Fetch(last)
		if err != nil {
			return nil, err
		}
		f.Latch.Acquire(latch.Shared)
		next := f.Page.Next()
		f.Latch.Release(latch.Shared)
		pool.Unpin(f, false)
		if next == page.InvalidID {
			break
		}
		last = next
	}
	return &File{pool: pool, first: first, last: last}, nil
}

// FirstPage returns the persistent identity of the file.
func (h *File) FirstPage() page.ID { return h.first }

// Attach returns a handle on an existing heap file without walking
// the chain (which may be inconsistent before recovery redo). Call
// RefreshTail before using Insert.
func Attach(pool *buffer.Pool, first page.ID) *File {
	return &File{pool: pool, first: first, last: first}
}

// RefreshTail re-walks the chain to locate the current tail; used
// after recovery has repaired next pointers.
func (h *File) RefreshTail() error {
	last := h.first
	for {
		f, err := h.pool.Fetch(last)
		if err != nil {
			return err
		}
		f.Latch.Acquire(latch.Shared)
		next := f.Page.Next()
		f.Latch.Release(latch.Shared)
		h.pool.Unpin(f, false)
		if next == page.InvalidID {
			break
		}
		last = next
	}
	h.mu.Lock()
	h.last = last
	h.mu.Unlock()
	return nil
}

// Insert appends a record and returns its RID.
func (h *File) Insert(rec []byte) (RID, error) {
	if len(rec) > page.MaxRecordSize {
		return RID{}, page.ErrRecordTooBig
	}
	for {
		h.mu.Lock()
		target := h.last
		h.mu.Unlock()

		f, err := h.pool.Fetch(target)
		if err != nil {
			return RID{}, err
		}
		f.Latch.Acquire(latch.Exclusive)
		slot, err := f.Page.Insert(rec)
		if err == nil {
			f.Latch.Release(latch.Exclusive)
			h.pool.Unpin(f, true)
			return RID{Page: target, Slot: uint16(slot)}, nil
		}
		if !errors.Is(err, page.ErrPageFull) {
			f.Latch.Release(latch.Exclusive)
			h.pool.Unpin(f, false)
			return RID{}, err
		}
		// Page full: extend the chain (only one extender wins; others
		// retry on the new tail).
		next := f.Page.Next()
		if next == page.InvalidID {
			nf, err := h.pool.NewPage(page.TypeHeap)
			if err != nil {
				f.Latch.Release(latch.Exclusive)
				h.pool.Unpin(f, false)
				return RID{}, err
			}
			f.Page.SetNext(nf.ID())
			h.mu.Lock()
			h.last = nf.ID()
			h.mu.Unlock()
			h.pool.Unpin(nf, true)
			f.Latch.Release(latch.Exclusive)
			h.pool.Unpin(f, true)
		} else {
			// Someone already extended; chase the tail.
			h.mu.Lock()
			if h.last == target {
				h.last = next
			}
			h.mu.Unlock()
			f.Latch.Release(latch.Exclusive)
			h.pool.Unpin(f, false)
		}
	}
}

// InsertAt places a record at a specific RID and stamps lsn as the
// pageLSN; used by recovery redo and by undo of deletes to reproduce
// a record physically. The page must already exist.
func (h *File) InsertAt(rid RID, rec []byte, lsn uint64) error {
	f, err := h.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	defer h.pool.Unpin(f, true)
	f.Latch.Acquire(latch.Exclusive)
	defer f.Latch.Release(latch.Exclusive)
	slot, err := f.Page.Insert(rec)
	if err != nil {
		return err
	}
	if uint16(slot) != rid.Slot {
		// Physical reproduction failed; this indicates redo applied
		// against a page state it should have been idempotent on.
		f.Page.Delete(slot)
		return fmt.Errorf("heap: InsertAt %v landed in slot %d", rid, slot)
	}
	f.Page.SetLSN(lsn)
	return nil
}

// Read returns a copy of the record at rid.
func (h *File) Read(rid RID) ([]byte, error) { return h.ReadC(rid, nil) }

// ReadC is Read with a phase clock: buffer misses and latch waits
// encountered along the way are attributed to c. A nil clock behaves
// exactly like Read.
func (h *File) ReadC(rid RID, c *obs.PhaseClock) ([]byte, error) {
	f, err := h.pool.FetchC(rid.Page, c)
	if err != nil {
		return nil, err
	}
	defer h.pool.Unpin(f, false)
	f.Latch.AcquireC(latch.Shared, c)
	defer f.Latch.Release(latch.Shared)
	rec, err := f.Page.Read(int(rid.Slot))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return append([]byte(nil), rec...), nil
}

// ReadVersionedC is ReadC plus the page's version epoch, read under
// the same S latch as the record. A zero epoch tells MVCC snapshot
// readers the page never carried a versioned write, so the record is
// authoritative without a chain lookup. The epoch is returned even on
// ErrNotFound: a missing slot on a touched page still needs the chain
// consulted.
func (h *File) ReadVersionedC(rid RID, c *obs.PhaseClock) ([]byte, uint32, error) {
	f, err := h.pool.FetchC(rid.Page, c)
	if err != nil {
		return nil, 0, err
	}
	defer h.pool.Unpin(f, false)
	f.Latch.AcquireC(latch.Shared, c)
	defer f.Latch.Release(latch.Shared)
	epoch := f.Page.VerEpoch()
	rec, err := f.Page.Read(int(rid.Slot))
	if err != nil {
		return nil, epoch, fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return append([]byte(nil), rec...), epoch, nil
}

// Update replaces the record at rid in place. It fails with
// page.ErrPageFull if the new record cannot fit on its page even
// after compaction; callers then delete and re-insert.
func (h *File) Update(rid RID, rec []byte) error {
	return h.withPageX(rid, func(p *page.Page) error {
		if err := p.Update(int(rid.Slot), rec); err != nil {
			if errors.Is(err, page.ErrBadSlot) {
				return fmt.Errorf("%w: %v", ErrNotFound, rid)
			}
			return err
		}
		return nil
	})
}

// Delete removes the record at rid.
func (h *File) Delete(rid RID) error {
	return h.withPageX(rid, func(p *page.Page) error {
		if err := p.Delete(int(rid.Slot)); err != nil {
			return fmt.Errorf("%w: %v", ErrNotFound, rid)
		}
		return nil
	})
}

// withPageX runs fn with rid's page fetched, pinned, and X-latched,
// marking it dirty on success.
func (h *File) withPageX(rid RID, fn func(*page.Page) error) error {
	return h.withPageXC(rid, nil, fn)
}

// withPageXC is withPageX with a phase clock (see ReadC).
func (h *File) withPageXC(rid RID, c *obs.PhaseClock, fn func(*page.Page) error) error {
	f, err := h.pool.FetchC(rid.Page, c)
	if err != nil {
		return err
	}
	f.Latch.AcquireC(latch.Exclusive, c)
	err = fn(f.Page)
	f.Latch.Release(latch.Exclusive)
	h.pool.Unpin(f, err == nil)
	return err
}

// UpdateWithLSN applies an update and stamps the page LSN in one
// latched step (called by the transactional layer after logging).
func (h *File) UpdateWithLSN(rid RID, rec []byte, lsn uint64) error {
	return h.withPageX(rid, func(p *page.Page) error {
		if err := p.Update(int(rid.Slot), rec); err != nil {
			if errors.Is(err, page.ErrBadSlot) {
				return fmt.Errorf("%w: %v", ErrNotFound, rid)
			}
			return err
		}
		p.SetLSN(lsn)
		return nil
	})
}

// InsertWithLSN inserts and stamps the page LSN, returning the RID.
func (h *File) InsertWithLSN(rec []byte, lsn uint64) (RID, error) {
	rid, err := h.Insert(rec)
	if err != nil {
		return rid, err
	}
	err = h.withPageX(rid, func(p *page.Page) error {
		p.SetLSN(lsn)
		return nil
	})
	return rid, err
}

// DeleteWithLSN deletes and stamps the page LSN.
func (h *File) DeleteWithLSN(rid RID, lsn uint64) error {
	return h.withPageX(rid, func(p *page.Page) error {
		if err := p.Delete(int(rid.Slot)); err != nil {
			return fmt.Errorf("%w: %v", ErrNotFound, rid)
		}
		p.SetLSN(lsn)
		return nil
	})
}

// Scan calls fn for every live record in file order. The rec slice is
// only valid during the callback. Returning false stops the scan.
func (h *File) Scan(fn func(rid RID, rec []byte) bool) error {
	id := h.first
	for id != page.InvalidID {
		f, err := h.pool.Fetch(id)
		if err != nil {
			return err
		}
		f.Latch.Acquire(latch.Shared)
		stop := false
		f.Page.LiveRecords(func(slot int, rec []byte) bool {
			if !fn(RID{Page: id, Slot: uint16(slot)}, rec) {
				stop = true
				return false
			}
			return true
		})
		next := f.Page.Next()
		f.Latch.Release(latch.Shared)
		h.pool.Unpin(f, false)
		if stop {
			return nil
		}
		id = next
	}
	return nil
}

// Count returns the number of live records (full scan).
func (h *File) Count() (int, error) {
	n := 0
	err := h.Scan(func(RID, []byte) bool { n++; return true })
	return n, err
}
