package heap

import (
	"errors"
	"fmt"

	"hydra/internal/buffer"
	"hydra/internal/latch"
	"hydra/internal/obs"
	"hydra/internal/page"
)

// Local shorthands keeping the latched sections readable.
type frameHandle = *buffer.Frame

const (
	latchExclusive = latch.Exclusive
	latchShared    = latch.Shared
)

// The *Fn variants run the page operation and the caller's log append
// inside one page-latch critical section, then stamp the returned LSN
// as the pageLSN. This is the ARIES discipline: a page can never
// reach disk containing an effect whose log record does not exist,
// because the latch is held from modification through logging and
// the buffer pool only steals unpinned frames.

// ExtendHook, when set on a File, is invoked (outside page latches)
// whenever the heap chain grows. It must log the structural change
// and return the record's LSN, which is stamped on both pages.
type ExtendHook func(oldTail, newTail page.ID) (uint64, error)

// SetExtendHook installs the structure-modification logging hook.
func (h *File) SetExtendHook(fn ExtendHook) { h.extend = fn }

// InsertFn inserts rec, calling logFn with the chosen RID while the
// page latch is still held; the returned LSN becomes the pageLSN. If
// logFn fails the insert is rolled back physically.
func (h *File) InsertFn(rec []byte, logFn func(rid RID) (uint64, error)) (RID, error) {
	return h.InsertFnC(rec, nil, logFn)
}

// InsertFnC is InsertFn with a phase clock (see ReadC).
func (h *File) InsertFnC(rec []byte, c *obs.PhaseClock, logFn func(rid RID) (uint64, error)) (RID, error) {
	if len(rec) > page.MaxRecordSize {
		return RID{}, page.ErrRecordTooBig
	}
	for {
		h.mu.Lock()
		target := h.last
		h.mu.Unlock()

		f, err := h.pool.FetchC(target, c)
		if err != nil {
			return RID{}, err
		}
		f.Latch.AcquireC(latchExclusive, c)
		slot, err := f.Page.Insert(rec)
		if err == nil {
			rid := RID{Page: target, Slot: uint16(slot)}
			lsn, lerr := logFn(rid)
			if lerr != nil {
				f.Page.Delete(slot)
				f.Latch.Release(latchExclusive)
				h.pool.Unpin(f, false)
				return RID{}, lerr
			}
			f.Page.SetLSN(lsn)
			if h.versioned {
				f.Page.BumpVerEpoch()
			}
			f.Latch.Release(latchExclusive)
			h.pool.Unpin(f, true)
			return rid, nil
		}
		if !errors.Is(err, page.ErrPageFull) {
			f.Latch.Release(latchExclusive)
			h.pool.Unpin(f, false)
			return RID{}, err
		}
		if err := h.extendLocked(f, target, c); err != nil {
			return RID{}, err
		}
	}
}

// extendLocked grows the chain past the full page f (latched X,
// pinned) or chases an extension made by another inserter. It always
// releases f's latch and pin.
func (h *File) extendLocked(f frameHandle, target page.ID, c *obs.PhaseClock) error {
	next := f.Page.Next()
	if next != page.InvalidID {
		h.mu.Lock()
		if h.last == target {
			h.last = next
		}
		h.mu.Unlock()
		f.Latch.Release(latchExclusive)
		h.pool.Unpin(f, false)
		return nil
	}
	nf, err := h.pool.NewPageC(page.TypeHeap, c)
	if err != nil {
		f.Latch.Release(latchExclusive)
		h.pool.Unpin(f, false)
		return err
	}
	if h.extend != nil {
		lsn, lerr := h.extend(target, nf.ID())
		if lerr != nil {
			f.Latch.Release(latchExclusive)
			h.pool.Unpin(f, false)
			h.pool.Unpin(nf, false)
			return lerr
		}
		f.Page.SetLSN(lsn)
		nf.Page.SetLSN(lsn)
	}
	f.Page.SetNext(nf.ID())
	h.mu.Lock()
	h.last = nf.ID()
	h.mu.Unlock()
	h.pool.Unpin(nf, true)
	f.Latch.Release(latchExclusive)
	h.pool.Unpin(f, true)
	return nil
}

// UpdateFn replaces the record at rid; logFn sees the before-image
// while the latch is held and returns the LSN to stamp.
func (h *File) UpdateFn(rid RID, rec []byte, logFn func(before []byte) (uint64, error)) error {
	return h.UpdateFnC(rid, rec, nil, logFn)
}

// UpdateFnC is UpdateFn with a phase clock (see ReadC).
func (h *File) UpdateFnC(rid RID, rec []byte, c *obs.PhaseClock, logFn func(before []byte) (uint64, error)) error {
	return h.withPageXC(rid, c, func(p *page.Page) error {
		beforeAlias, err := p.Read(int(rid.Slot))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrNotFound, rid)
		}
		before := append([]byte(nil), beforeAlias...)
		// Apply first: a no-fit failure must leave nothing in the log
		// (a logged-but-unapplied update would poison redo).
		if err := p.Update(int(rid.Slot), rec); err != nil {
			if errors.Is(err, page.ErrBadSlot) {
				return fmt.Errorf("%w: %v", ErrNotFound, rid)
			}
			return err
		}
		lsn, err := logFn(before)
		if err != nil {
			// Roll the page back; the before-image always fits where
			// it came from (possibly after compaction).
			if rerr := p.Update(int(rid.Slot), before); rerr != nil {
				return fmt.Errorf("heap: update revert failed: %v (after %w)", rerr, err)
			}
			return err
		}
		p.SetLSN(lsn)
		if h.versioned {
			p.BumpVerEpoch()
		}
		return nil
	})
}

// DeleteFn removes the record at rid; logFn sees the before-image.
func (h *File) DeleteFn(rid RID, logFn func(before []byte) (uint64, error)) error {
	return h.DeleteFnC(rid, nil, logFn)
}

// DeleteFnC is DeleteFn with a phase clock (see ReadC).
func (h *File) DeleteFnC(rid RID, c *obs.PhaseClock, logFn func(before []byte) (uint64, error)) error {
	return h.withPageXC(rid, c, func(p *page.Page) error {
		before, err := p.Read(int(rid.Slot))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrNotFound, rid)
		}
		lsn, err := logFn(before)
		if err != nil {
			return err
		}
		if err := p.Delete(int(rid.Slot)); err != nil {
			return fmt.Errorf("%w: %v", ErrNotFound, rid)
		}
		p.SetLSN(lsn)
		if h.versioned {
			p.BumpVerEpoch()
		}
		return nil
	})
}

// RedoFormat reproduces a chain extension during recovery: the old
// tail's next pointer and the new page's heap formatting, each
// applied only if the page has not already absorbed the change
// (pageLSN test), making redo idempotent.
func (h *File) RedoFormat(oldTail, newTail page.ID, lsn uint64) error {
	f, err := h.pool.Fetch(oldTail)
	if err != nil {
		return err
	}
	f.Latch.Acquire(latchExclusive)
	if f.Page.LSN() < lsn {
		f.Page.SetNext(newTail)
		f.Page.SetLSN(lsn)
		f.Latch.Release(latchExclusive)
		h.pool.Unpin(f, true)
	} else {
		f.Latch.Release(latchExclusive)
		h.pool.Unpin(f, false)
	}

	nf, err := h.pool.Fetch(newTail)
	if err != nil {
		return err
	}
	nf.Latch.Acquire(latchExclusive)
	if nf.Page.LSN() < lsn || nf.Page.Type() != page.TypeHeap {
		nf.Page.Format(newTail, page.TypeHeap)
		nf.Page.SetLSN(lsn)
		nf.Latch.Release(latchExclusive)
		h.pool.Unpin(nf, true)
	} else {
		nf.Latch.Release(latchExclusive)
		h.pool.Unpin(nf, false)
	}
	// Keep the in-memory tail pointer coherent.
	h.mu.Lock()
	if h.last == oldTail {
		h.last = newTail
	}
	h.mu.Unlock()
	return nil
}

// PageLSN returns rid's page LSN (recovery redo gate).
func (h *File) PageLSN(id page.ID) (uint64, error) {
	f, err := h.pool.Fetch(id)
	if err != nil {
		return 0, err
	}
	defer h.pool.Unpin(f, false)
	f.Latch.Acquire(latchShared)
	defer f.Latch.Release(latchShared)
	return f.Page.LSN(), nil
}
