package core

import (
	"encoding/binary"
	"sync/atomic"
	"testing"
)

// BenchmarkCommitPipeline measures the full commit path of a small
// read-modify-write transaction — Begin, one locked update (begin +
// update log records), commit record, group-commit flush wait, end
// record, lock release — under the Scalable configuration over
// in-memory stores. Keys are disjoint per goroutine so the numbers
// isolate pipeline overhead (allocations, log inserts, flush wakeups)
// rather than data contention.
func BenchmarkCommitPipeline(b *testing.B) {
	const keysPerWorker = 512
	cfg := Scalable()
	e, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	tbl, err := e.CreateTable("bench")
	if err != nil {
		b.Fatal(err)
	}
	// Seed enough rows for the largest plausible GOMAXPROCS.
	seed := e.Begin()
	var val [16]byte
	for k := uint64(0); k < 64*keysPerWorker; k++ {
		if err := seed.Insert(tbl, k, val[:]); err != nil {
			b.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		b.Fatal(err)
	}
	var seq atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		worker := (seq.Add(1) - 1) % 64
		base := worker * keysPerWorker
		var val [16]byte
		i := uint64(0)
		for pb.Next() {
			i++
			t := e.Begin()
			key := base + i%keysPerWorker
			binary.BigEndian.PutUint64(val[8:], i)
			if err := t.Update(tbl, key, val[:]); err != nil {
				b.Error(err)
				return
			}
			if err := t.Commit(); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
