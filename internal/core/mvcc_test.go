package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/buffer"
	"hydra/internal/wal"
)

func mvccConfig() Config {
	cfg := Scalable()
	cfg.MVCC = true
	return cfg
}

func mvccEngine(t testing.TB) *Engine {
	t.Helper()
	return memEngine(t, mvccConfig())
}

func TestSnapshotRequiresMVCC(t *testing.T) {
	e := memEngine(t, Scalable())
	if _, err := e.BeginSnapshot(); !errors.Is(err, ErrMVCCDisabled) {
		t.Fatalf("BeginSnapshot without MVCC: %v", err)
	}
}

func TestSnapshotReadOnly(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	s, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(tbl, 1, []byte("x")); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("Insert on snapshot: %v", err)
	}
	if err := s.Update(tbl, 1, []byte("x")); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("Update on snapshot: %v", err)
	}
	if err := s.Delete(tbl, 1); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("Delete on snapshot: %v", err)
	}
	if _, err := s.ReadForUpdate(tbl, 1); !errors.Is(err, ErrReadOnlyTxn) {
		t.Fatalf("ReadForUpdate on snapshot: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

// A snapshot pinned before an update keeps serving the old value after
// the writer commits; a fresh snapshot sees the new one.
func TestSnapshotSeesPreWriteState(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("old")) }); err != nil {
		t.Fatal(err)
	}
	s, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Txn) error { return tx.Update(tbl, 1, []byte("new")) }); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(tbl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "old" {
		t.Fatalf("snapshot read %q, want old", v)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s2, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Commit()
	if v, err := s2.Read(tbl, 1); err != nil || string(v) != "new" {
		t.Fatalf("fresh snapshot read %q, %v; want new", v, err)
	}
}

// Rows inserted after the snapshot are invisible to point reads and
// scans; rows deleted after it remain visible.
func TestSnapshotInsertDeleteVisibility(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	for i := uint64(1); i <= 4; i++ {
		if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, i, []byte{byte(i)}) }); err != nil {
			t.Fatal(err)
		}
	}
	s, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Commit()
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 5, []byte{5}) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Txn) error { return tx.Delete(tbl, 2) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(tbl, 5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-snapshot insert visible: %v", err)
	}
	if v, err := s.Read(tbl, 2); err != nil || string(v) != "\x02" {
		t.Fatalf("post-snapshot delete hid row: %q, %v", v, err)
	}
	var keys []uint64
	if err := s.Scan(tbl, 0, ^uint64(0), func(k uint64, v []byte) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4}
	if len(keys) != len(want) {
		t.Fatalf("scan keys %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan keys %v, want %v", keys, want)
		}
	}
}

// An uncommitted writer's changes are invisible, and stay invisible
// forever if it aborts.
func TestSnapshotPendingAndAbortedInvisible(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("keep")) }); err != nil {
		t.Fatal(err)
	}
	w := e.Begin()
	if err := w.Update(tbl, 1, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(tbl, 2, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	s, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v, err := s.Read(tbl, 1); err != nil || string(v) != "keep" {
		t.Fatalf("pending update leaked: %q, %v", v, err)
	}
	if _, err := s.Read(tbl, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pending insert leaked: %v", err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Read(tbl, 1); err != nil || string(v) != "keep" {
		t.Fatalf("after abort: %q, %v", v, err)
	}
	s.Commit()
	s2, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Commit()
	if v, err := s2.Read(tbl, 1); err != nil || string(v) != "keep" {
		t.Fatalf("aborted update visible to later snapshot: %q, %v", v, err)
	}
	if _, err := s2.Read(tbl, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted insert visible to later snapshot: %v", err)
	}
}

// The snapshot path takes zero lock-manager traffic: lock acquires
// stay flat while snapshot reads climb, and the bypass counter records
// what was skipped.
func TestSnapshotZeroLockTraffic(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	for i := uint64(0); i < 100; i++ {
		if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, i, []byte("v")) }); err != nil {
			t.Fatal(err)
		}
	}
	before := e.StatsSnapshot()
	s, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if _, err := s.Read(tbl, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Scan(tbl, 0, ^uint64(0), func(uint64, []byte) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	after := e.StatsSnapshot()
	if after.Lock.Acquires != before.Lock.Acquires {
		t.Fatalf("snapshot path acquired locks: %d -> %d", before.Lock.Acquires, after.Lock.Acquires)
	}
	if got := after.Mvcc.SnapshotReads - before.Mvcc.SnapshotReads; got != 101 {
		t.Fatalf("snapshot reads %d, want 101", got)
	}
	if got := after.Lock.Bypasses - before.Lock.Bypasses; got != 100*2+1 {
		t.Fatalf("lock bypasses %d, want %d", got, 100*2+1)
	}
	if after.Mvcc.SnapshotBegins != before.Mvcc.SnapshotBegins+1 {
		t.Fatalf("snapshot begins %d -> %d", before.Mvcc.SnapshotBegins, after.Mvcc.SnapshotBegins)
	}
}

// Versions whose commit LSN falls at or below the watermark are pruned:
// repeatedly updating one row with no snapshot active must not grow the
// chain without bound.
func TestVersionChainGC(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("v0")) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := e.Exec(func(tx *Txn) error { return tx.Update(tbl, 1, []byte("v")) }); err != nil {
			t.Fatal(err)
		}
	}
	st := e.StatsSnapshot().Mvcc
	// Install-time pruning keeps the chain near length 1: the previous
	// version is dead the moment the floor passes its commit.
	if st.LiveNodes > 4 {
		t.Fatalf("live nodes %d after 200 updates with no snapshots", st.LiveNodes)
	}
	if st.GCNodes == 0 {
		t.Fatal("no nodes reclaimed")
	}

	// A pinned snapshot holds the watermark: versions accumulate while
	// it lives and are swept when it releases.
	s, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := e.Exec(func(tx *Txn) error { return tx.Update(tbl, 1, []byte("w")) }); err != nil {
			t.Fatal(err)
		}
	}
	held := e.StatsSnapshot().Mvcc.LiveNodes
	if held < 2 {
		t.Fatalf("pinned snapshot did not retain versions: %d live", held)
	}
	if v, err := s.Read(tbl, 1); err != nil || string(v) != "v" {
		t.Fatalf("pinned snapshot read %q, %v; want v", v, err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	st = e.StatsSnapshot().Mvcc
	if st.LiveNodes >= held {
		t.Fatalf("release did not sweep: %d -> %d live", held, st.LiveNodes)
	}
	if st.GCSweeps == 0 {
		t.Fatal("no sweep ran")
	}
}

// Chains are volatile: a snapshot opened after crash recovery serves
// the recovered state.
func TestSnapshotAfterRecovery(t *testing.T) {
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	e, err := OpenWith(mvccConfig(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("durable")) }); err != nil {
		t.Fatal(err)
	}
	crash(e)
	e2, err := OpenWith(mvccConfig(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tbl2, err := e2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	s, err := e2.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Commit()
	if v, err := s.Read(tbl2, 1); err != nil || string(v) != "durable" {
		t.Fatalf("post-recovery snapshot read %q, %v", v, err)
	}
}

// Regression for the ErrNotFound collapse: an index probe that fails
// with a buffer-pool IO error must surface that error, not pretend the
// key is missing. Frames is kept tiny and the key count large so the
// probe is forced to fault index pages back in from the failing device.
func TestReadInfraErrorNotMaskedAsNotFound(t *testing.T) {
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	cfg := Scalable()
	cfg.Frames = 32
	e, err := OpenWith(cfg, store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl, err := e.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	// Enough keys that index leaves plus heap pages far exceed the
	// 32-frame pool: probing from key 0 after sequential inserts must
	// fault cold pages back in from the (failing) device.
	const keys = 20000
	for i := uint64(0); i < keys; i++ {
		if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, i, []byte("payload")) }); err != nil {
			t.Fatal(err)
		}
	}
	ioErr := errors.New("injected device failure")
	store.FailReads(ioErr)
	defer store.FailReads(nil)

	var sawInfra bool
	for i := uint64(0); i < keys; i += 500 {
		t1 := e.Begin()
		_, err := t1.Read(tbl, i)
		t1.Abort()
		if err == nil {
			continue // served from a resident page
		}
		if errors.Is(err, ErrNotFound) {
			t.Fatalf("IO error collapsed into ErrNotFound: %v", err)
		}
		if errors.Is(err, ioErr) {
			sawInfra = true
		}
	}
	if !sawInfra {
		t.Fatal("no read reached the failing device (test not exercising the path)")
	}

	// Same contract on the write-path probes.
	t2 := e.Begin()
	if err := t2.Update(tbl, 3, []byte("x")); err == nil || errors.Is(err, ErrNotFound) {
		t2.Abort()
		t.Fatalf("Update under IO failure: %v", err)
	}
	t2.Abort()
	t3 := e.Begin()
	if err := t3.Insert(tbl, keys+1, []byte("x")); err == nil || errors.Is(err, ErrExists) || errors.Is(err, ErrNotFound) {
		t3.Abort()
		t.Fatalf("Insert under IO failure: %v", err)
	}
	t3.Abort()
}

// True misses still read as ErrNotFound (the distinguishing must not
// overcorrect).
func TestReadTrueMissStillNotFound(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("v")) }); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Abort()
	if _, err := tx.Read(tbl, 99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: %v", err)
	}
	if _, err := tx.ReadForUpdate(tbl, 98); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss for update: %v", err)
	}
	if err := tx.Update(tbl, 97, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update miss: %v", err)
	}
	if err := tx.Delete(tbl, 96); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete miss: %v", err)
	}
}

// A chunked snapshot scan merges walked rows, chain-overridden rows,
// and chain-only rows (deleted after the snapshot) correctly across
// chunk boundaries, and hides rows created after the snapshot.
func TestSnapshotScanChunkBoundaries(t *testing.T) {
	old := snapScanChunk
	snapScanChunk = 4
	defer func() { snapScanChunk = old }()
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	const rows = 20
	for i := uint64(0); i < rows; i++ {
		if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, i, []byte{byte(i)}) }); err != nil {
			t.Fatal(err)
		}
	}
	s, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Commit()
	// Post-snapshot churn: delete keys at and around chunk edges
	// (including the first and last), rewrite some, insert new ones.
	for _, k := range []uint64{0, 3, 4, 7, 8, 19} {
		if err := e.Exec(func(tx *Txn) error { return tx.Delete(tbl, k) }); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []uint64{1, 5, 18} {
		if err := e.Exec(func(tx *Txn) error { return tx.Update(tbl, k, []byte{0xff}) }); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []uint64{2, 25, 30} {
		if err := e.Exec(func(tx *Txn) error {
			if k == 2 {
				return nil // already present
			}
			return tx.Insert(tbl, k, []byte{0xee})
		}); err != nil {
			t.Fatal(err)
		}
	}
	var keys []uint64
	if err := s.Scan(tbl, 0, ^uint64(0), func(k uint64, v []byte) bool {
		if len(v) != 1 || v[0] != byte(k) {
			t.Fatalf("key %d read %v, want original %v", k, v, []byte{byte(k)})
		}
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != rows {
		t.Fatalf("scan saw %d rows %v, want all %d originals", len(keys), keys, rows)
	}
	for i, k := range keys {
		if k != uint64(i) {
			t.Fatalf("scan out of order at %d: %v", i, keys)
		}
	}
	// Early termination still works mid-merge.
	n := 0
	if err := s.Scan(tbl, 0, ^uint64(0), func(uint64, []byte) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early-stopped scan visited %d rows", n)
	}
}

// Regression for the scan omission gap: a delete whose index-entry
// removal lands between the chain resolution and the B+-tree walk must
// still appear in a snapshot scan. Writers continuously delete and
// re-insert rows while pinned snapshots scan; every scan must see the
// full row set. Run with -race (make race).
func TestStressSnapshotScanConcurrentDeleteNoOmission(t *testing.T) {
	old := snapScanChunk
	snapScanChunk = 8 // force chunk boundaries under churn
	defer func() { snapScanChunk = old }()
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	const rows = 64
	for i := uint64(0); i < rows; i++ {
		if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, i, []byte("v")) }); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(part uint64) {
			defer wg.Done()
			// Each writer owns half the keys; delete + re-insert commit
			// as ONE transaction, so at every commit point the full row
			// set exists — but the index entry is missing while the
			// transaction is in flight, which is exactly the window the
			// scan must cover from the version chain.
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (i*2 + part) % rows
				if err := e.Exec(func(tx *Txn) error {
					if err := tx.Delete(tbl, k); err != nil {
						return err
					}
					return tx.Insert(tbl, k, []byte("v"))
				}); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("rewrite: %v", err)
					return
				}
			}
		}(uint64(w))
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s, err := e.BeginSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		prev := int64(-1)
		if err := s.Scan(tbl, 0, rows-1, func(k uint64, v []byte) bool {
			if int64(k) <= prev {
				t.Errorf("scan out of order: %d after %d", k, prev)
			}
			prev = int64(k)
			if string(v) != "v" {
				t.Errorf("key %d read %q", k, v)
			}
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		// Deletes and re-inserts each commit whole rows; at any snapshot
		// every key exists (either the original or a committed
		// re-insert), so an incomplete scan is an omission bug.
		if n != rows {
			t.Fatalf("scan saw %d rows, want %d", n, rows)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// Regression for the abort pin leak: finishing a snapshot transaction
// must release its pin even when the engine has already closed —
// Commit and Abort on a snapshot handle never fail with ErrClosed.
func TestSnapshotPinReleasedAfterClose(t *testing.T) {
	e := memEngine(t, mvccConfig())
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("v")) }); err != nil {
		t.Fatal(err)
	}
	s1, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Commit(); err != nil {
		t.Fatalf("snapshot commit after close: %v", err)
	}
	if err := s2.Abort(); err != nil {
		t.Fatalf("snapshot abort after close: %v", err)
	}
	if n := e.StatsSnapshot().Mvcc.ActiveSnapshots; n != 0 {
		t.Fatalf("%d snapshots still pinned after finish", n)
	}
	// Double-finish still reports handle reuse.
	if err := s1.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
}

// An abort with no snapshot pinned leaves no version garbage: the
// stamped nodes are pruned on the spot.
func TestAbortedVersionsPrunedEagerly(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("keep")) }); err != nil {
		t.Fatal(err)
	}
	w := e.Begin()
	if err := w.Update(tbl, 1, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if err := w.Insert(tbl, 2, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	if err := w.Abort(); err != nil {
		t.Fatal(err)
	}
	if n := e.StatsSnapshot().Mvcc.LiveNodes; n != 0 {
		t.Fatalf("%d live nodes after abort with no snapshots", n)
	}
	tx := e.Begin()
	defer tx.Abort()
	if val, err := tx.Read(tbl, 1); err != nil || string(val) != "keep" {
		t.Fatalf("post-abort read %q, %v", val, err)
	}
	if _, err := tx.Read(tbl, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted insert survived: %v", err)
	}
}

// SI anomaly stress: a reader mid-scan must see none of a concurrently
// committing writer's updates — every scanned row carries the value the
// snapshot pinned, never a newer one. Run with -race (make race) and
// -tags hydradebug (make stress).
func TestStressSnapshotScanNoTearing(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	const rows = 64
	for i := uint64(0); i < rows; i++ {
		if err := e.Exec(func(tx *Txn) error {
			return tx.Insert(tbl, i, []byte(fmt.Sprintf("g%08d", 0)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var gen atomic.Uint64
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := gen.Add(1)
				if err := e.Exec(func(tx *Txn) error {
					// One transaction rewrites every row to generation g.
					for i := uint64(0); i < rows; i++ {
						if err := tx.Update(tbl, i, []byte(fmt.Sprintf("g%08d", g))); err != nil {
							return err
						}
					}
					return nil
				}); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s, err := e.BeginSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]int{}
		n := 0
		if err := s.Scan(tbl, 0, rows-1, func(k uint64, v []byte) bool {
			seen[string(v)]++
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		// Updates never remove rows, so the scan must be complete, and —
		// the SI guarantee — entirely from one committed generation: the
		// writers rewrite all rows in one transaction, so a mix of
		// generations would be a torn (non-snapshot) read.
		if n != rows {
			t.Fatalf("scan saw %d rows, want %d", n, rows)
		}
		if len(seen) != 1 {
			t.Fatalf("scan mixed generations: %v", seen)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// SI anomaly stress: point reads under concurrent single-row writers
// never observe pending or aborted values. Writers alternate commit
// and abort; aborted generations are odd, committed even — a snapshot
// must only ever read even generations.
func TestStressSnapshotNeverSeesAborted(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("g0000000000")) }); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for g := uint64(1); ; g++ {
			select {
			case <-stop:
				return
			default:
			}
			w := e.Begin()
			val := fmt.Sprintf("g%010d", g)
			if err := w.Update(tbl, 1, []byte(val)); err != nil {
				w.Abort()
				if errors.Is(err, ErrClosed) {
					return
				}
				t.Errorf("update: %v", err)
				return
			}
			if g%2 == 1 {
				if err := w.Abort(); err != nil {
					t.Errorf("abort: %v", err)
					return
				}
			} else if err := w.Commit(); err != nil {
				if errors.Is(err, ErrClosed) {
					return
				}
				t.Errorf("commit: %v", err)
				return
			}
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s, err := e.BeginSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		v, err := s.Read(tbl, 1)
		if err != nil {
			t.Fatal(err)
		}
		var g uint64
		if _, err := fmt.Sscanf(string(v), "g%d", &g); err != nil {
			t.Fatalf("unparseable row %q: %v", v, err)
		}
		if g%2 == 1 {
			t.Fatalf("snapshot read aborted generation %d", g)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// A long-running snapshot must not stall writers: writer throughput
// with a snapshot pinned stays within the same order of magnitude as
// without (readers never block writers).
func TestStressLongSnapshotDoesNotStallWriters(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	for i := uint64(0); i < 16; i++ {
		if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, i, []byte("v")) }); err != nil {
			t.Fatal(err)
		}
	}
	write := func(d time.Duration) int {
		n := 0
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if err := e.Exec(func(tx *Txn) error {
				return tx.Update(tbl, uint64(n)%16, []byte("w"))
			}); err != nil {
				t.Fatal(err)
			}
			n++
		}
		return n
	}
	base := write(300 * time.Millisecond)
	s, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	pinned := write(300 * time.Millisecond)
	// The snapshot still reads its pinned state after all that traffic.
	if v, rerr := s.Read(tbl, 0); rerr != nil || string(v) == "" {
		t.Fatalf("pinned snapshot read %q, %v", v, rerr)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if pinned < base/10 {
		t.Fatalf("writers stalled by pinned snapshot: %d vs %d commits", pinned, base)
	}
}
