package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"hydra/internal/buffer"
	"hydra/internal/wal"
)

func TestCkptCodecRoundTrip(t *testing.T) {
	s := ckptSnapshot{
		ATT: map[uint64]wal.LSN{1: 100, 2: 200, 99: wal.NilLSN},
		DPT: map[uint64]uint64{5: 50, 7: 70},
	}
	got, err := decodeCkpt(encodeCkpt(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ATT) != 3 || len(got.DPT) != 2 {
		t.Fatalf("sizes: %+v", got)
	}
	for id, lsn := range s.ATT {
		if got.ATT[id] != lsn {
			t.Fatalf("ATT[%d] = %d, want %d", id, got.ATT[id], lsn)
		}
	}
	for pg, rec := range s.DPT {
		if got.DPT[pg] != rec {
			t.Fatalf("DPT[%d] = %d", pg, got.DPT[pg])
		}
	}
}

func TestCkptCodecQuick(t *testing.T) {
	f := func(attKeys, dptKeys []uint64) bool {
		s := ckptSnapshot{ATT: map[uint64]wal.LSN{}, DPT: map[uint64]uint64{}}
		for i, k := range attKeys {
			s.ATT[k] = wal.LSN(i * 7)
		}
		for i, k := range dptKeys {
			s.DPT[k] = uint64(i * 13)
		}
		got, err := decodeCkpt(encodeCkpt(s))
		return err == nil && len(got.ATT) == len(s.ATT) && len(got.DPT) == len(s.DPT)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCkptDecodeErrors(t *testing.T) {
	if _, err := decodeCkpt(nil); err == nil {
		t.Error("nil payload accepted")
	}
	enc := encodeCkpt(ckptSnapshot{ATT: map[uint64]wal.LSN{1: 2}, DPT: map[uint64]uint64{3: 4}})
	for _, cut := range []int{2, 6, len(enc) - 3} {
		if _, err := decodeCkpt(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// A checkpoint must bound analysis: restart after a checkpoint scans
// only the tail of the log.
func TestCheckpointBoundsAnalysis(t *testing.T) {
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	e, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	for i := 0; i < 1000; i++ {
		i := i
		if err := e.Exec(func(tx *Txn) error {
			return tx.Insert(tbl, uint64(i), []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A little post-checkpoint work.
	for i := 1000; i < 1010; i++ {
		i := i
		e.Exec(func(tx *Txn) error { return tx.Insert(tbl, uint64(i), []byte("v")) })
	}
	crash(e)

	e2, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rep := e2.RecoveryReport
	if rep.Master == wal.NilLSN {
		t.Fatal("restart ignored the master record")
	}
	// 1000 pre-checkpoint txns are ~4000 records; the analysis window
	// must be far smaller.
	if rep.Scanned > 200 {
		t.Fatalf("analysis scanned %d records despite checkpoint", rep.Scanned)
	}
	tbl2, _ := e2.Table("t")
	e2.Exec(func(tx *Txn) error {
		n := 0
		tx.Scan(tbl2, 0, ^uint64(0), func(uint64, []byte) bool { n++; return true })
		if n != 1010 {
			t.Fatalf("rows after checkpointed recovery = %d", n)
		}
		return nil
	})
}

// A transaction active at the checkpoint that never writes again must
// still be rolled back at restart — it reaches recovery only through
// the checkpoint's ATT.
func TestLoserOnlyInCheckpointATT(t *testing.T) {
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	e, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("base")) })

	loser := e.Begin()
	if err := loser.Update(tbl, 1, []byte("loser")); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Force the dirtied page out so the loser's effect is on disk and
	// restart must undo it physically.
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	crash(e)

	e2, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.RecoveryReport.LosersUndone != 1 {
		t.Fatalf("losers = %d (%+v)", e2.RecoveryReport.LosersUndone, e2.RecoveryReport)
	}
	tbl2, _ := e2.Table("t")
	e2.Exec(func(tx *Txn) error {
		v, err := tx.Read(tbl2, 1)
		if err != nil || string(v) != "base" {
			t.Fatalf("row = %q, %v; want base", v, err)
		}
		return nil
	})
}

// Pre-checkpoint updates on pages that were never flushed must be
// redone even though analysis starts at the checkpoint: the DPT's
// recLSN pulls the redo scan back.
func TestDPTPullsRedoBelowCheckpoint(t *testing.T) {
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	e, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	// Committed work that stays only in the buffer pool.
	for i := 0; i < 50; i++ {
		i := i
		if err := e.Exec(func(tx *Txn) error {
			return tx.Insert(tbl, uint64(i), []byte(fmt.Sprintf("v%d", i)))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil { // fuzzy: flushes nothing
		t.Fatal(err)
	}
	crash(e)

	e2, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.RecoveryReport.Redone == 0 {
		t.Fatalf("nothing redone; DPT redo window broken (%+v)", e2.RecoveryReport)
	}
	tbl2, _ := e2.Table("t")
	e2.Exec(func(tx *Txn) error {
		for i := 0; i < 50; i++ {
			v, err := tx.Read(tbl2, uint64(i))
			if err != nil || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("key %d = %q, %v", i, v, err)
			}
		}
		return nil
	})
}

// Checkpoints must be safe under concurrent write traffic (fuzzy).
func TestCheckpointDuringTraffic(t *testing.T) {
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	e, err := OpenWith(Scalable(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(w)*1_000_000 + i
				if err := e.Exec(func(tx *Txn) error {
					return tx.Insert(tbl, key, []byte("x"))
				}); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(w)
	}
	// On a narrow machine the five checkpoints (empty DPT, microseconds
	// each) can all finish before the scheduler has run a single writer
	// to commit, and the crash below then legitimately recovers zero
	// rows. Gate on the first commit so the survival assertion is
	// meaningful.
	for e.StatsSnapshot().Commits == 0 {
		runtime.Gosched()
	}
	for i := 0; i < 5; i++ {
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	crash(e)

	e2, err := OpenWith(Scalable(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// All committed rows present (count equals committed counter from
	// recovery's point of view: just ensure scan works and no losers
	// beyond the possibly in-flight ones).
	tbl2, _ := e2.Table("t")
	n := 0
	e2.Exec(func(tx *Txn) error {
		return tx.Scan(tbl2, 0, ^uint64(0), func(uint64, []byte) bool { n++; return true })
	})
	if n == 0 {
		t.Fatal("no rows survived checkpointed crash")
	}
}
