// Snapshot-read execution path: lock-free read-only transactions over
// the MVCC version chains (see mvcc.go for the version store itself).
package core

import (
	"errors"
	"fmt"

	"hydra/internal/btree"
	"hydra/internal/heap"
	"hydra/internal/invariant"
	"hydra/internal/obs"
	"hydra/internal/wal"
)

// BeginSnapshot starts a read-only transaction that reads a fixed
// snapshot of the database: the state as of the newest published
// commit at begin. Reads resolve against the version chains and take
// no transactional locks — writers never block this transaction and it
// never blocks writers. Write operations (and ReadForUpdate) fail with
// ErrReadOnlyTxn. Requires Config.MVCC.
func (e *Engine) BeginSnapshot() (*Txn, error) {
	if !e.cfg.MVCC {
		return nil, ErrMVCCDisabled
	}
	if e.closed.Load() {
		return nil, ErrClosed
	}
	t := e.Begin()
	t.snapRO = true
	t.path = obs.PathROSnap
	t.snap = e.mvcc.pin(t.id)
	return t, nil
}

// MVCCEnabled reports whether the engine was opened with Config.MVCC
// (i.e. BeginSnapshot is available).
func (e *Engine) MVCCEnabled() bool { return e.cfg.MVCC }

// ExecSnapshot runs fn in a read-only snapshot transaction: the
// lock-free analogue of Exec for pure reads. There is no retry loop —
// snapshot transactions cannot deadlock or time out.
func (e *Engine) ExecSnapshot(fn func(tx *Txn) error) error {
	t, err := e.BeginSnapshot()
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		t.Abort()
		return err
	}
	return t.Commit()
}

// SnapshotLSN returns the snapshot a read-only transaction pinned at
// begin, or 0 for read-write transactions.
func (t *Txn) SnapshotLSN() uint64 {
	if !t.snapRO {
		return 0
	}
	return t.snap
}

// notFound renders the canonical missing-key error.
func notFound(tbl *Table, key uint64) error {
	return fmt.Errorf("%w: table %s key %d", ErrNotFound, tbl.Name, key)
}

// indexReadErr distinguishes a true index miss from an infrastructure
// failure (buffer-pool IO error, WAL-poison shutdown surfacing through
// a page read): only the former becomes ErrNotFound; everything else
// propagates as the fault it is.
func indexReadErr(err error, tbl *Table, key uint64) error {
	if errors.Is(err, btree.ErrNotFound) {
		return notFound(tbl, key)
	}
	return fmt.Errorf("core: table %s key %d: index read: %w", tbl.Name, key, err)
}

// snapshotRead is Read on the snapshot path: index probe and heap read
// under physical latches only, then a chain check. The page's version
// epoch gates the chain lookup — a zero epoch proves no versioned
// write ever touched the page, so the row just read is the snapshot
// row. The check runs after the heap read: version install happens
// inside the writer's page X-latch window, so any write whose effect
// the reader observed had installed its node before the reader's S
// latch was granted.
func (t *Txn) snapshotRead(tbl *Table, key uint64) ([]byte, error) {
	e := t.e
	e.mvcc.snapReads.Inc()
	// Bypass accounting: the locked path would have taken IS(table) +
	// S(row).
	e.locks.NoteBypass(2)
	resolveChain := func() ([]byte, error, bool) {
		val, blocked := e.mvcc.resolve(tbl.ID, key, t.snap, &t.clock)
		if !blocked {
			return nil, nil, false
		}
		e.mvcc.chainReads.Inc()
		if val == nil {
			return nil, notFound(tbl, key), true
		}
		return append([]byte(nil), rowValue(val)...), nil, true
	}
	packed, err := tbl.Index.GetC(key, &t.clock)
	if err != nil {
		if !errors.Is(err, btree.ErrNotFound) {
			return nil, indexReadErr(err, tbl, key)
		}
		// Absent from the index: either never existed, or a newer
		// transaction deleted it — the chain decides.
		if v, cerr, ok := resolveChain(); ok {
			return v, cerr
		}
		return nil, notFound(tbl, key)
	}
	rec, epoch, err := tbl.Heap.ReadVersionedC(heap.Unpack(packed), &t.clock)
	if err != nil {
		if !errors.Is(err, heap.ErrNotFound) {
			return nil, err
		}
		// The row vanished between index probe and heap read (deleted
		// or moved by a concurrent writer); its chain has the snapshot
		// view.
		if v, cerr, ok := resolveChain(); ok {
			return v, cerr
		}
		return nil, notFound(tbl, key)
	}
	if epoch != 0 {
		if v, cerr, ok := resolveChain(); ok {
			return v, cerr
		}
	}
	return rowValue(rec), nil
}

// snapshotScan is Scan on the snapshot path. Chained keys in range are
// pre-resolved once, then merged with the index scan in key order:
// pre-resolved keys serve their snapshot version (including rows the
// index no longer lists, because a newer transaction deleted them);
// unchained keys serve the heap row, rechecked against the chain when
// the page's version epoch shows versioned writes. A row whose index
// entry is removed by a delete committing mid-scan, after the
// pre-resolution, may be omitted — the snapshot guarantee the stress
// tests pin down is that no concurrent writer's UPDATES are ever
// visible.
func (t *Txn) snapshotScan(tbl *Table, lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	e := t.e
	e.mvcc.snapReads.Inc()
	e.locks.NoteBypass(1) // the locked path's table S lock
	pre, extras := e.mvcc.collectRange(tbl.ID, lo, hi, t.snap, &t.clock)
	if pre != nil {
		e.mvcc.chainReads.Add(uint64(len(pre)))
	}
	ei := 0
	stopped := false
	// emitBefore feeds fn the chain-only rows with keys below bound.
	emitBefore := func(bound uint64, inclusive bool) bool {
		for ei < len(extras) {
			k := extras[ei]
			if k > bound || (k == bound && !inclusive) {
				return true
			}
			ei++
			if !fn(k, rowValue(pre[k])) {
				return false
			}
		}
		return true
	}
	var scanErr error
	err := tbl.Index.ScanC(lo, hi, &t.clock, func(key, packed uint64) bool {
		if !emitBefore(key, false) {
			stopped = true
			return false
		}
		if v, chained := pre[key]; chained {
			if ei < len(extras) && extras[ei] == key {
				ei++ // consumed here, not as an extra
			}
			if v == nil {
				return true // created after the snapshot: invisible
			}
			if !fn(key, rowValue(v)) {
				stopped = true
				return false
			}
			return true
		}
		rec, epoch, rerr := tbl.Heap.ReadVersionedC(heap.Unpack(packed), &t.clock)
		if rerr != nil {
			if !errors.Is(rerr, heap.ErrNotFound) {
				scanErr = rerr
				stopped = true
				return false
			}
			// Row moved or was deleted after pre-resolution: late chain
			// check.
			if val, blocked := e.mvcc.resolve(tbl.ID, key, t.snap, &t.clock); blocked {
				e.mvcc.chainReads.Inc()
				if val == nil {
					return true
				}
				if !fn(key, rowValue(val)) {
					stopped = true
					return false
				}
			}
			return true
		}
		if epoch != 0 {
			if val, blocked := e.mvcc.resolve(tbl.ID, key, t.snap, &t.clock); blocked {
				e.mvcc.chainReads.Inc()
				if val == nil {
					return true
				}
				if !fn(key, rowValue(val)) {
					stopped = true
					return false
				}
				return true
			}
		}
		if !fn(key, rowValue(rec)) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if scanErr != nil {
		return scanErr
	}
	if !stopped {
		emitBefore(hi, true)
	}
	return nil
}

// appendCommitRecord appends t's commit record. A transaction that
// installed versions publishes through the version table: append,
// stamp, and snapshot-floor advance happen under publishMu so the
// floor only ever names fully stamped commits, in LSN order.
func (e *Engine) appendCommitRecord(t *Txn) (wal.LSN, error) {
	if t.verTxn == nil {
		return e.log.AppendFieldsC(wal.RecCommit, t.id, t.lastLSN, 0, 0, nil, &t.clock)
	}
	vt := e.mvcc
	vt.publishMu.Lock()
	invariant.Acquired(invariant.TierMVCCPublish, "core.verTable.publishMu")
	lsn, err := e.log.AppendFieldsC(wal.RecCommit, t.id, t.lastLSN, 0, 0, nil, &t.clock)
	if err == nil {
		t.verTxn.commitLSN.Store(uint64(lsn))
		vt.snapFloor.Store(uint64(lsn))
	}
	invariant.Released(invariant.TierMVCCPublish, "core.verTable.publishMu")
	vt.publishMu.Unlock()
	return lsn, err
}
