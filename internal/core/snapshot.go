// Snapshot-read execution path: lock-free read-only transactions over
// the MVCC version chains (see mvcc.go for the version store itself).
package core

import (
	"errors"
	"fmt"

	"hydra/internal/btree"
	"hydra/internal/heap"
	"hydra/internal/invariant"
	"hydra/internal/obs"
	"hydra/internal/wal"
)

// BeginSnapshot starts a read-only transaction that reads a fixed
// snapshot of the database: the state as of the newest published
// commit at begin. Point reads and scans — including rows deleted or
// rewritten by transactions committing concurrently — all resolve
// against that one state; reads take no transactional locks, writers
// never block this transaction, and it never blocks writers. Write
// operations (and ReadForUpdate) fail with ErrReadOnlyTxn. Requires
// Config.MVCC.
func (e *Engine) BeginSnapshot() (*Txn, error) {
	if !e.cfg.MVCC {
		return nil, ErrMVCCDisabled
	}
	if e.closed.Load() {
		return nil, ErrClosed
	}
	t := e.Begin()
	t.snapRO = true
	t.path = obs.PathROSnap
	t.snap = e.mvcc.pin(t.id)
	// Counted here, not in pin: SI writers pin too but count under
	// siBegins.
	e.mvcc.snapBegins.Inc()
	return t, nil
}

// MVCCEnabled reports whether the engine was opened with Config.MVCC
// (i.e. BeginSnapshot is available).
func (e *Engine) MVCCEnabled() bool { return e.cfg.MVCC }

// ExecSnapshot runs fn in a read-only snapshot transaction: the
// lock-free analogue of Exec for pure reads. There is no retry loop —
// snapshot transactions cannot deadlock or time out.
func (e *Engine) ExecSnapshot(fn func(tx *Txn) error) error {
	t, err := e.BeginSnapshot()
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		// Abort on a snapshot transaction only fails on reuse of a
		// finished handle; join rather than drop it so a pin leak could
		// never pass silently.
		return errors.Join(err, t.Abort())
	}
	return t.Commit()
}

// SnapshotLSN returns the snapshot a snapshot transaction (read-only
// or SI writer) pinned at begin, or 0 for locked transactions.
func (t *Txn) SnapshotLSN() uint64 {
	if !t.snapRO && !t.snapRW {
		return 0
	}
	return t.snap
}

// notFound renders the canonical missing-key error.
func notFound(tbl *Table, key uint64) error {
	return fmt.Errorf("%w: table %s key %d", ErrNotFound, tbl.Name, key)
}

// indexReadErr distinguishes a true index miss from an infrastructure
// failure (buffer-pool IO error, WAL-poison shutdown surfacing through
// a page read): only the former becomes ErrNotFound; everything else
// propagates as the fault it is.
func indexReadErr(err error, tbl *Table, key uint64) error {
	if errors.Is(err, btree.ErrNotFound) {
		return notFound(tbl, key)
	}
	return fmt.Errorf("core: table %s key %d: index read: %w", tbl.Name, key, err)
}

// snapshotRead is Read on the snapshot path: index probe and heap read
// under physical latches only, then a chain check. The page's version
// epoch gates the chain lookup — a zero epoch proves no versioned
// write ever touched the page, so the row just read is the snapshot
// row. The check runs after the heap read: version install happens
// inside the writer's page X-latch window, so any write whose effect
// the reader observed had installed its node before the reader's S
// latch was granted — and the node outlives the writer (commit AND
// abort stamp it in place rather than unlinking), so the check cannot
// miss it.
func (t *Txn) snapshotRead(tbl *Table, key uint64) ([]byte, error) {
	if t.snapExpired.Load() {
		// The MaxSnapshotAge expirer dropped this transaction's pin;
		// its chains may already be swept, so reads must stop.
		return nil, ErrSnapshotExpired
	}
	e := t.e
	e.mvcc.snapReads.Inc()
	// Bypass accounting: the locked path would have taken IS(table) +
	// S(row).
	e.locks.NoteBypass(2)
	resolveChain := func() ([]byte, error, bool) {
		val, blocked := e.mvcc.resolve(tbl.ID, key, t.snap, &t.clock)
		if !blocked {
			return nil, nil, false
		}
		e.mvcc.chainReads.Inc()
		if val == nil {
			return nil, notFound(tbl, key), true
		}
		return append([]byte(nil), rowValue(val)...), nil, true
	}
	packed, err := tbl.Index.GetC(key, &t.clock)
	if err != nil {
		if !errors.Is(err, btree.ErrNotFound) {
			return nil, indexReadErr(err, tbl, key)
		}
		// Absent from the index: either never existed, or a newer
		// transaction deleted it — the chain decides.
		if v, cerr, ok := resolveChain(); ok {
			return v, cerr
		}
		return nil, notFound(tbl, key)
	}
	rec, epoch, err := tbl.Heap.ReadVersionedC(heap.Unpack(packed), &t.clock)
	if err != nil {
		if !errors.Is(err, heap.ErrNotFound) {
			return nil, err
		}
		// The row vanished between index probe and heap read (deleted
		// or moved by a concurrent writer); its chain has the snapshot
		// view.
		if v, cerr, ok := resolveChain(); ok {
			return v, cerr
		}
		return nil, notFound(tbl, key)
	}
	if epoch != 0 {
		if v, cerr, ok := resolveChain(); ok {
			return v, cerr
		}
	}
	return rowValue(rec), nil
}

// snapScanChunk bounds the rows a snapshot scan buffers per merge
// round; it is a variable only so tests can shrink it to exercise
// chunk boundaries.
var snapScanChunk = 512

// snapshotScan is Scan on the snapshot path. It works in chunks: walk
// up to snapScanChunk index entries buffering their heap rows, then
// resolve every chained key in the walked span against the snapshot
// (collectRange), then emit the merge of the two in key order — the
// chain result overrides a buffered row, supplies rows whose index
// entry a concurrent delete already removed, and hides rows created
// after the snapshot.
//
// Resolving AFTER the walk is what makes the scan exhaustive: a
// concurrent delete removes the index entry only after installing its
// version node (install happens inside the page X-latch window of the
// write, before the removal is observable), so any key the walk could
// have missed has a blocking chain entry by the time the walk ends,
// and the collect sees it. The reverse order — the pre-resolve this
// path originally used — left a window where a delete landing between
// the resolve and the walk escaped both. Chains that block this
// snapshot cannot be GC'd while it is pinned (the watermark never
// passes the oldest pin), so the late collect also cannot lose
// entries to pruning. Buffered heap rows are safe to emit when the
// collect does not override them: any write that changed a walked row
// after its read — including a now-rolled-back abort, whose nodes are
// stamped in place rather than unlinked — still blocks the chain at
// collect time.
func (t *Txn) snapshotScan(tbl *Table, lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	if t.snapExpired.Load() {
		return ErrSnapshotExpired
	}
	e := t.e
	e.mvcc.snapReads.Inc()
	e.locks.NoteBypass(1) // the locked path's table S lock
	type walkedRow struct {
		key uint64
		rec []byte
	}
	var walked []walkedRow
	cursor := lo
	for {
		walked = walked[:0]
		full := false
		last := cursor
		var readErr error
		if err := tbl.Index.ScanC(cursor, hi, &t.clock, func(key, packed uint64) bool {
			last = key
			rec, rerr := tbl.Heap.ReadC(heap.Unpack(packed), &t.clock)
			if rerr != nil {
				if !errors.Is(rerr, heap.ErrNotFound) {
					readErr = rerr
					return false
				}
				// Row vanished between index probe and heap read: if it
				// was visible at the snapshot, the remover's chain entry
				// supplies it in the collect below.
				return true
			}
			walked = append(walked, walkedRow{key: key, rec: rec})
			if len(walked) >= snapScanChunk {
				full = true
				return false
			}
			return true
		}); err != nil {
			return err
		}
		if readErr != nil {
			return readErr
		}
		spanHi := hi
		if full {
			spanHi = last
		}
		pre, extras := e.mvcc.collectRange(tbl.ID, cursor, spanHi, t.snap, &t.clock)
		if len(pre) > 0 {
			e.mvcc.chainReads.Add(uint64(len(pre)))
		}
		ei := 0
		for i := range walked {
			r := &walked[i]
			// Chain-only keys (deleted after the snapshot; absent from
			// the walk) interleave in key order.
			for ei < len(extras) && extras[ei] < r.key {
				k := extras[ei]
				ei++
				if !fn(k, rowValue(pre[k])) {
					return nil
				}
			}
			if ei < len(extras) && extras[ei] == r.key {
				ei++ // emitted via the override below, not as an extra
			}
			if v, chained := pre[r.key]; chained {
				if v == nil {
					continue // created after the snapshot: invisible
				}
				if !fn(r.key, rowValue(v)) {
					return nil
				}
				continue
			}
			if !fn(r.key, rowValue(r.rec)) {
				return nil
			}
		}
		for ei < len(extras) {
			k := extras[ei]
			ei++
			if !fn(k, rowValue(pre[k])) {
				return nil
			}
		}
		if !full || spanHi >= hi {
			return nil
		}
		cursor = spanHi + 1
	}
}

// appendPublished appends t's commit or end record and publishes the
// transaction's version nodes: the append, the stamp, and the
// snapshot-floor advance happen under publishMu so the floor only ever
// names fully stamped transactions, in LSN order. Commit publishes its
// commit record; Abort publishes its end record — appended after undo
// restored the heap rows, so a snapshot that pins at or past the stamp
// is guaranteed to read restored rows.
func (e *Engine) appendPublished(t *Txn, kind wal.RecType) (wal.LSN, error) {
	vt := e.mvcc
	vt.publishMu.Lock()
	invariant.Acquired(invariant.TierMVCCPublish, "core.verTable.publishMu")
	lsn, err := e.log.AppendFieldsC(kind, t.id, t.lastLSN, 0, 0, nil, &t.clock)
	if err == nil {
		vt.publish(t.verTxn, uint64(lsn))
	}
	invariant.Released(invariant.TierMVCCPublish, "core.verTable.publishMu")
	vt.publishMu.Unlock()
	return lsn, err
}

// appendCommitRecord appends t's commit record; a transaction that
// installed versions publishes it through the version table.
func (e *Engine) appendCommitRecord(t *Txn) (wal.LSN, error) {
	if t.verTxn == nil {
		return e.log.AppendFieldsC(wal.RecCommit, t.id, t.lastLSN, 0, 0, nil, &t.clock)
	}
	return e.appendPublished(t, wal.RecCommit)
}
