package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hydra/internal/btree"
	"hydra/internal/heap"
	"hydra/internal/invariant"
	"hydra/internal/lock"
	"hydra/internal/obs"
	"hydra/internal/page"
	"hydra/internal/wal"
)

// undoEntry pairs a forward operation with the PrevLSN of its log
// record, which becomes the CLR's UndoNext during rollback.
type undoEntry struct {
	op   OpRecord
	prev wal.LSN
}

type txnState int

const (
	txnActive txnState = iota
	txnCommitted
	txnAborted
)

// Txn is a transaction handle. A Txn is normally confined to one
// goroutine; transactions started with BeginNoLock may have their
// operations executed by multiple DORA executors, so the log chain
// and undo list are mutex-protected.
//
// Handles are recycled through a per-engine pool: Begin draws a
// retired Txn (with its lock holder, undo slice, and encode scratch
// already allocated) and finish returns it. A handle must therefore
// never be used after Commit or Abort returns — it may already be
// another transaction.
type Txn struct {
	e      *Engine
	id     uint64
	state  txnState
	agent  *lock.Agent  // non-nil when SLI is active for this worker
	noLock bool         // DORA: partition ownership replaces locking
	locks  *lock.Holder // caller-owned lock set (see lock.Holder)

	// path tags which execution path runs the transaction (DORA sets
	// it after Begin; conventional transactions keep PathConv).
	path obs.TxnPath

	// Snapshot-read state (see snapshot.go). snapRO marks a read-only
	// snapshot transaction pinned to snap; verTxn/verNodes track the
	// versions a writing transaction installed — commit and abort both
	// stamp them (through the shared verTxn), and abort additionally
	// prunes the touched chains once the stamp is published.
	snap     uint64
	snapRO   bool
	verTxn   *verTxn
	verNodes []*verNode
	// Snapshot-isolation writer state (see si.go). snapRW marks an SI
	// writer: reads resolve against snap like snapRO, writes buffer
	// into writeSet and reach the heap only inside Commit, after
	// first-committer-wins validation. siApply is set for that apply
	// window so the ordinary write methods run their real bodies
	// instead of re-buffering. snapExpired is flipped by the
	// MaxSnapshotAge expirer (under the engine's activeMu, so it never
	// lands on a recycled handle); the transaction observes it on its
	// next read or commit as ErrSnapshotExpired.
	snapRW      bool
	siApply     bool
	writeSet    map[verKey]siWrite
	siKeys      []verKey // insertion-ordered writeSet keys (scan overlay, commit sort scratch)
	snapExpired atomic.Bool
	// clock accumulates the transaction's critical-path breakdown. It
	// lives by value so a pooled handle's clock costs no allocation;
	// its address is stable for the handle's lifetime, which lets the
	// lock holder and DORA executors keep a pointer to it.
	clock obs.PhaseClock

	// mu guards lastLSN, undo, logged, enc. It is intentionally held
	// across WAL appends: DORA executors sharing a no-lock transaction
	// must serialize the prev-LSN chain, and an append is a buffer copy
	// (group commit makes the IO asynchronous).
	//hydra:vet:coarse -- per-txn chain lock: held across WAL appends so DORA executors serialize the LSN chain
	mu       sync.Mutex
	lastLSN  wal.LSN
	firstLSN wal.LSN // begin record (log-truncation horizon)
	undo     []undoEntry
	logged   bool   // wrote at least one record (begin is lazy)
	enc      []byte // scratch buffer for op payload encoding
	arena    []byte // bump allocator for undo row images (under mu)
}

// arenaChunk is the undo arena's growth quantum: one chunk amortizes
// the per-op row-image allocation over ~a hundred OLTP-sized rows.
const arenaChunk = 4096

// arenaCopy copies b into the transaction's undo arena. The arena
// retires wholesale when the transaction finishes, and full chunks
// are abandoned in place (never moved), so previously returned slices
// stay valid as it grows. Callers hold t.mu.
func (t *Txn) arenaCopy(b []byte) []byte {
	if b == nil {
		return nil
	}
	if cap(t.arena)-len(t.arena) < len(b) {
		size := arenaChunk
		if len(b) > size {
			size = len(b)
		}
		t.arena = make([]byte, 0, size)
	}
	off := len(t.arena)
	t.arena = append(t.arena, b...)
	return t.arena[off:len(t.arena):len(t.arena)]
}

// arenaRowRecord builds a heap row record (key(8) | value) in the undo
// arena. The bytes stay valid for the transaction's lifetime — exactly
// the lifetime of the undo entry that retains them as an after-image —
// so write paths avoid a per-op allocation.
func (t *Txn) arenaRowRecord(key uint64, value []byte) []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	need := 8 + len(value)
	if cap(t.arena)-len(t.arena) < need {
		size := arenaChunk
		if need > size {
			size = need
		}
		t.arena = make([]byte, 0, size)
	}
	off := len(t.arena)
	t.arena = t.arena[:off+need]
	rec := t.arena[off : off+need : off+need]
	binary.LittleEndian.PutUint64(rec, key)
	copy(rec[8:], value)
	return rec
}

// Begin starts a transaction.
func (e *Engine) Begin() *Txn {
	id := e.txnSeq.Add(1)
	var t *Txn
	if v := e.txnPool.Get(); v != nil {
		t = v.(*Txn)
		t.locks.Reset(id)
	} else {
		t = &Txn{e: e, locks: e.locks.NewHolder(id)}
		// The holder keeps a pointer to the clock for the life of the
		// handle: lock waits made on this holder's behalf feed it.
		t.locks.SetClock(&t.clock)
	}
	invariant.PoolGot("core.Begin", t)
	t.id = id
	t.state = txnActive
	t.agent = nil
	t.noLock = false
	t.lastLSN = wal.NilLSN
	t.firstLSN = wal.NilLSN
	t.logged = false
	t.snap = 0
	t.snapRO = false
	t.snapRW = false
	t.siApply = false
	t.snapExpired.Store(false)
	t.verTxn = nil
	// No clock Reset here: finish's fold drains every lap to zero, so a
	// pooled handle's clock is already clean; Start just restamps.
	t.path = obs.PathConv
	t.clock.Start(obs.Now())
	e.activeMu.Lock()
	e.active[id] = t
	e.activeMu.Unlock()
	obs.TraceEvent(obs.EvBegin, id, 0, 0)
	return t
}

// finish retires the transaction from the active registry and
// recycles the handle.
func (t *Txn) finish(state txnState) {
	t.state = state
	e := t.e
	// Fold the critical-path breakdown before the handle is recycled;
	// the same numbers feed the slow-transaction reservoir so a
	// tail-worthy transaction is captured without re-reading the clock.
	end := obs.Now()
	total := end - t.clock.StartTime()
	oc := obs.OutcomeCommit
	if state == txnAborted {
		oc = obs.OutcomeAbort
	}
	var phases [obs.NumPhases]int64
	obs.TxnPhases.Fold(t.path, oc, &t.clock, total, &phases)
	obs.SlowTxns.Offer(t.id, t.path, oc, end, total, &phases)
	if t.snapRO || t.snapRW {
		// Unpin the snapshot; if it was the oldest, the watermark
		// advances and release sweeps newly dead versions. A pin the
		// MaxSnapshotAge expirer already removed makes this a no-op.
		e.mvcc.release(t.id)
	}
	e.activeMu.Lock()
	delete(e.active, t.id)
	e.activeMu.Unlock()
	// Drop row-image references so the pool doesn't pin them, but
	// keep the slice's capacity for the next transaction.
	for i := range t.undo {
		t.undo[i] = undoEntry{}
	}
	t.undo = t.undo[:0]
	// Version nodes now live (or died) in the chains; drop the handle's
	// references so the pool doesn't pin them.
	for i := range t.verNodes {
		t.verNodes[i] = nil
	}
	t.verNodes = t.verNodes[:0]
	// Drop buffered SI writes (the map survives for the next SI txn on
	// this handle; values are heap-allocated copies the map entry was
	// the only holder of).
	if len(t.writeSet) > 0 {
		clear(t.writeSet)
	}
	t.siKeys = t.siKeys[:0]
	// Writer publishes are when version chains grow; sample the
	// MaxSnapshotAge check here so a stuck pin is expired exactly when
	// it is holding garbage live (and never from inside a latch
	// critical section).
	if t.verTxn != nil {
		e.maybeExpireSnapshots()
	}
	// The undo entries were the only holders of arena bytes; reuse the
	// current chunk (abandoned full ones are garbage now).
	t.arena = t.arena[:0]
	invariant.PoolPut("core.finish", t)
	e.txnPool.Put(t)
}

// BeginWithAgent starts a transaction whose lock acquisitions go
// through an SLI agent (one agent per worker goroutine).
func (e *Engine) BeginWithAgent(a *lock.Agent) *Txn {
	t := e.Begin()
	t.agent = a
	return t
}

// BeginNoLock starts a transaction that skips the lock manager
// entirely. Callers (the DORA layer) must guarantee isolation by
// construction — each datum is accessed only by its owning executor.
func (e *Engine) BeginNoLock() *Txn {
	t := e.Begin()
	t.noLock = true
	return t
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// SetPath tags the execution path folded into the phase profile when
// the transaction finishes. The DORA layer calls it right after
// Begin; conventional transactions keep the default PathConv.
func (t *Txn) SetPath(p obs.TxnPath) { t.path = p }

// Clock returns the transaction's phase clock. DORA executors use it
// to attribute queue and service time to the transaction they are
// running on behalf of; the pointer is valid until Commit/Abort
// returns (the handle may then be recycled).
func (t *Txn) Clock() *obs.PhaseClock { return &t.clock }

func (t *Txn) acquire(name lock.Name, mode lock.Mode) error {
	if t.noLock {
		return nil
	}
	if t.agent != nil {
		return t.agent.AcquireFor(t.locks, name, mode)
	}
	return t.locks.Acquire(name, mode)
}

// ensureBegin lazily logs the begin record (read-only transactions
// never touch the log).
func (t *Txn) ensureBegin() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.logged {
		return nil
	}
	lsn, err := t.e.log.AppendFieldsC(wal.RecBegin, t.id, wal.NilLSN, 0, 0, nil, &t.clock)
	if err != nil {
		return err
	}
	t.lastLSN = lsn
	t.firstLSN = lsn
	t.logged = true
	return nil
}

func (t *Txn) checkActive() error {
	if t.state != txnActive {
		return ErrTxnDone
	}
	if t.e.closed.Load() {
		return ErrClosed
	}
	return nil
}

// logOp appends a data record for op, records the undo entry, and
// returns its LSN. It owns the txn's chain mutex so DORA actions on
// different executors serialize their log records correctly.
func (t *Txn) logOp(op *OpRecord) (wal.LSN, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	prev := t.lastLSN
	// The payload is copied into the log ring before AppendFields
	// returns, so the scratch buffer is safely reused per op.
	t.enc = encodeOpTo(t.enc, op)
	lsn, err := t.e.log.AppendFieldsC(wal.RecUpdate, t.id, prev, uint64(op.RID.Page), 0, t.enc, &t.clock)
	if err != nil {
		return 0, err
	}
	t.lastLSN = lsn
	// Callers may pass Before aliasing a page slice that is only valid
	// while they hold the frame latch (logOp runs inside that window);
	// rewrite it to an arena copy the undo entry — and the caller, via
	// the mutated op — can keep for the transaction's lifetime.
	op.Before = t.arenaCopy(op.Before)
	t.undo = append(t.undo, undoEntry{op: *op, prev: prev})
	// logOp runs inside the heap page's X-latch window (the *FnC
	// callbacks), so a snapshot reader that saw this op's effect is
	// guaranteed to find the version node installed here.
	if t.e.cfg.MVCC && op.Op != OpExtend {
		t.installVersion(op.Table, op.Key, op.Before)
	}
	return lsn, nil
}

// Read returns the value stored under key in table. On a snapshot
// transaction it resolves against the pinned snapshot without touching
// the lock manager.
func (t *Txn) Read(tbl *Table, key uint64) ([]byte, error) {
	if err := t.checkActive(); err != nil {
		return nil, err
	}
	if t.snapRO {
		return t.snapshotRead(tbl, key)
	}
	if t.snapRW {
		return t.siRead(tbl, key)
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.IS); err != nil {
		return nil, err
	}
	if err := t.acquire(lock.RowName(tbl.ID, key), lock.S); err != nil {
		return nil, err
	}
	packed, err := tbl.Index.GetC(key, &t.clock)
	if err != nil {
		return nil, indexReadErr(err, tbl, key)
	}
	rec, err := tbl.Heap.ReadC(heap.Unpack(packed), &t.clock)
	if err != nil {
		return nil, err
	}
	return rowValue(rec), nil
}

// ReadForUpdate returns the value under key while taking the row lock
// exclusively up front. Read-modify-write transactions use it to
// avoid S-to-X conversion deadlocks on hot rows.
func (t *Txn) ReadForUpdate(tbl *Table, key uint64) ([]byte, error) {
	if err := t.checkActive(); err != nil {
		return nil, err
	}
	if t.snapRO {
		return nil, ErrReadOnlyTxn
	}
	if t.snapRW {
		// SI never locks up front: the read serves the snapshot (plus
		// the txn's own buffered writes), and the usual follow-up write
		// puts the key in the write set, where first-committer-wins
		// validation supplies the lost-update protection ReadForUpdate
		// exists for on the locked path.
		return t.siRead(tbl, key)
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.IX); err != nil {
		return nil, err
	}
	if err := t.acquire(lock.RowName(tbl.ID, key), lock.X); err != nil {
		return nil, err
	}
	packed, err := tbl.Index.GetC(key, &t.clock)
	if err != nil {
		return nil, indexReadErr(err, tbl, key)
	}
	rec, err := tbl.Heap.ReadC(heap.Unpack(packed), &t.clock)
	if err != nil {
		return nil, err
	}
	return rowValue(rec), nil
}

// Insert adds a new row; it fails with ErrExists for duplicate keys.
func (t *Txn) Insert(tbl *Table, key uint64, value []byte) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	if t.snapRO {
		return ErrReadOnlyTxn
	}
	if t.snapRW && !t.siApply {
		return t.siInsert(tbl, key, value)
	}
	if err := t.ensureBegin(); err != nil {
		return err
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.IX); err != nil {
		return err
	}
	if err := t.acquire(lock.RowName(tbl.ID, key), lock.X); err != nil {
		return err
	}
	if _, err := tbl.Index.GetC(key, &t.clock); err == nil {
		return fmt.Errorf("%w: table %s key %d", ErrExists, tbl.Name, key)
	} else if !errors.Is(err, btree.ErrNotFound) {
		// An infrastructure failure (IO error, poisoned WAL) must not
		// masquerade as "key absent" and let the insert proceed.
		return indexReadErr(err, tbl, key)
	}
	rec := t.arenaRowRecord(key, value)
	op := OpRecord{Op: OpInsert, Table: tbl.ID, Key: key, After: rec}
	rid, err := tbl.Heap.InsertFnC(rec, &t.clock, func(rid heap.RID) (uint64, error) {
		op.RID = rid
		lsn, err := t.logOp(&op)
		return uint64(lsn), err
	})
	if err != nil {
		return err
	}
	if err := tbl.Index.InsertC(key, rid.Pack(), &t.clock); err != nil {
		return err
	}
	return tbl.maintainSecondariesC(key, nil, value, &t.clock)
}

// Update replaces the value of an existing row.
func (t *Txn) Update(tbl *Table, key uint64, value []byte) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	if t.snapRO {
		return ErrReadOnlyTxn
	}
	if t.snapRW && !t.siApply {
		return t.siUpdate(tbl, key, value)
	}
	if err := t.ensureBegin(); err != nil {
		return err
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.IX); err != nil {
		return err
	}
	if err := t.acquire(lock.RowName(tbl.ID, key), lock.X); err != nil {
		return err
	}
	packed, err := tbl.Index.GetC(key, &t.clock)
	if err != nil {
		return indexReadErr(err, tbl, key)
	}
	rid := heap.Unpack(packed)
	rec := t.arenaRowRecord(key, value)
	op := OpRecord{Op: OpUpdate, Table: tbl.ID, Key: key, RID: rid, After: rec}
	err = tbl.Heap.UpdateFnC(rid, rec, &t.clock, func(before []byte) (uint64, error) {
		op.Before = before // page slice; logOp arena-copies it synchronously
		lsn, lerr := t.logOp(&op)
		return uint64(lsn), lerr
	})
	if err == nil {
		return tbl.maintainSecondariesC(key, rowValue(op.Before), value, &t.clock)
	}
	if !errors.Is(err, page.ErrPageFull) {
		return err
	}
	// The grown row no longer fits on its page: delete + re-insert,
	// which moves the row and updates the index.
	before, rerr := tbl.Heap.ReadC(rid, &t.clock)
	if rerr != nil {
		return rerr
	}
	delOp := OpRecord{Op: OpDelete, Table: tbl.ID, Key: key, RID: rid, Before: before}
	if err := tbl.Heap.DeleteFnC(rid, &t.clock, func([]byte) (uint64, error) {
		lsn, lerr := t.logOp(&delOp)
		return uint64(lsn), lerr
	}); err != nil {
		return err
	}
	insOp := OpRecord{Op: OpInsert, Table: tbl.ID, Key: key, After: rec}
	newRID, err := tbl.Heap.InsertFnC(rec, &t.clock, func(r heap.RID) (uint64, error) {
		insOp.RID = r
		lsn, lerr := t.logOp(&insOp)
		return uint64(lsn), lerr
	})
	if err != nil {
		return err
	}
	if err := tbl.Index.InsertC(key, newRID.Pack(), &t.clock); err != nil {
		return err
	}
	return tbl.maintainSecondariesC(key, rowValue(before), value, &t.clock)
}

// Delete removes a row.
func (t *Txn) Delete(tbl *Table, key uint64) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	if t.snapRO {
		return ErrReadOnlyTxn
	}
	if t.snapRW && !t.siApply {
		return t.siDelete(tbl, key)
	}
	if err := t.ensureBegin(); err != nil {
		return err
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.IX); err != nil {
		return err
	}
	if err := t.acquire(lock.RowName(tbl.ID, key), lock.X); err != nil {
		return err
	}
	packed, err := tbl.Index.GetC(key, &t.clock)
	if err != nil {
		return indexReadErr(err, tbl, key)
	}
	rid := heap.Unpack(packed)
	op := OpRecord{Op: OpDelete, Table: tbl.ID, Key: key, RID: rid}
	if err := tbl.Heap.DeleteFnC(rid, &t.clock, func(before []byte) (uint64, error) {
		op.Before = before // page slice; logOp arena-copies it synchronously
		lsn, lerr := t.logOp(&op)
		return uint64(lsn), lerr
	}); err != nil {
		return err
	}
	if err := tbl.Index.DeleteC(key, &t.clock); err != nil {
		return err
	}
	return tbl.maintainSecondariesC(key, rowValue(op.Before), nil, &t.clock)
}

// Scan iterates rows with lo <= key <= hi in key order under a
// table-level shared lock.
func (t *Txn) Scan(tbl *Table, lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	if t.snapRO {
		return t.snapshotScan(tbl, lo, hi, fn)
	}
	if t.snapRW {
		return t.siScan(tbl, lo, hi, fn)
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.S); err != nil {
		return err
	}
	return tbl.Index.ScanC(lo, hi, &t.clock, func(key, packed uint64) bool {
		rec, err := tbl.Heap.ReadC(heap.Unpack(packed), &t.clock)
		if err != nil {
			return true // row vanished mid-scan (should not happen under S)
		}
		return fn(key, rowValue(rec))
	})
}

// Commit makes the transaction durable and releases its locks. Under
// ELR, locks are released as soon as the commit record is in the log
// buffer; the call still blocks for durability before returning.
func (t *Txn) Commit() error {
	if t.snapRO {
		return t.finishSnapshot(txnCommitted)
	}
	if t.snapRW {
		return t.commitSI()
	}
	if err := t.checkActive(); err != nil {
		return err
	}
	e := t.e
	if !t.logged {
		// Read-only: nothing to log or flush.
		t.releaseLocks(false)
		obs.TraceEvent(obs.EvCommit, t.id, 0, 0)
		t.finish(txnCommitted)
		e.commits.Inc()
		return nil
	}
	return t.commitLogged()
}

// commitLogged is the durable half of Commit for a transaction that
// wrote at least one record: append the commit record (publishing
// version stamps when the transaction installed any), release locks
// (ELR: before the flush wait), wait for durability, and retire the
// handle. Shared by the locked path and the SI apply path.
func (t *Txn) commitLogged() error {
	e := t.e
	commitLSN, err := e.appendCommitRecord(t)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.lastLSN = commitLSN // under mu: checkpoint ATT snapshots read it
	t.mu.Unlock()
	if e.cfg.ELR {
		t.releaseLocks(false)
	}
	if e.cfg.SyncCommit {
		if err := e.log.WaitFlushedC(commitLSN, &t.clock); err != nil {
			return err
		}
	}
	if !e.cfg.ELR {
		t.releaseLocks(false)
	}
	// The end record needs no flush wait.
	if _, err := e.log.AppendFieldsC(wal.RecEnd, t.id, commitLSN, 0, 0, nil, &t.clock); err != nil {
		return err
	}
	obs.TraceEvent(obs.EvCommit, t.id, uint64(commitLSN), 0)
	t.finish(txnCommitted)
	e.commits.Inc()
	return nil
}

// CommitAsync performs the executor half of a split commit: it
// appends the commit record and releases the transaction's locks
// immediately (early lock release), WITHOUT waiting for durability.
// The DORA fast path runs it on the owning executor so the executor
// never stalls on a group-commit flush; the coordinator completes the
// commit with CommitWait, which is the only part that blocks.
//
// The returned LSN is the commit record's position. A read-only
// transaction (nothing logged) commits fully here and returns NilLSN;
// the handle is retired and CommitWait must NOT be called. On error
// the transaction is still active and the caller must Abort it.
func (t *Txn) CommitAsync() (wal.LSN, error) {
	if err := t.checkActive(); err != nil {
		return wal.NilLSN, err
	}
	e := t.e
	if !t.logged {
		t.releaseLocks(false)
		obs.TraceEvent(obs.EvCommit, t.id, 0, 0)
		t.finish(txnCommitted)
		e.commits.Inc()
		return wal.NilLSN, nil
	}
	commitLSN, err := e.appendCommitRecord(t)
	if err != nil {
		return wal.NilLSN, err
	}
	t.mu.Lock()
	t.lastLSN = commitLSN // under mu: checkpoint ATT snapshots read it
	t.mu.Unlock()
	t.releaseLocks(false)
	return commitLSN, nil
}

// CommitWait completes a commit begun with CommitAsync: it waits for
// the commit record's durability (under SyncCommit), writes the end
// record, and retires the handle. commitLSN must be the value
// CommitAsync returned, and it must not be NilLSN. After CommitWait
// returns — success or error — the handle must not be used again.
func (t *Txn) CommitWait(commitLSN wal.LSN) error {
	e := t.e
	if e.cfg.SyncCommit {
		if err := e.log.WaitFlushedC(commitLSN, &t.clock); err != nil {
			return err
		}
	}
	if _, err := e.log.AppendFieldsC(wal.RecEnd, t.id, commitLSN, 0, 0, nil, &t.clock); err != nil {
		return err
	}
	obs.TraceEvent(obs.EvCommit, t.id, uint64(commitLSN), 0)
	t.finish(txnCommitted)
	e.commits.Inc()
	return nil
}

// Abort rolls the transaction back, writing compensation records so
// a crash mid-abort resumes correctly, and releases its locks.
func (t *Txn) Abort() error {
	if t.snapRO || (t.snapRW && !t.logged) {
		// Nothing logged: releasing locks and the snapshot pin is the
		// whole rollback (an SI writer's buffered write set is simply
		// discarded — nothing ever entered the heap or the chains).
		return t.finishSnapshot(txnAborted)
	}
	if err := t.checkActive(); err != nil {
		return err
	}
	e := t.e
	if t.logged {
		lsn, err := e.log.AppendFieldsC(wal.RecAbort, t.id, t.lastLSN, 0, 0, nil, &t.clock)
		if err != nil {
			return err
		}
		t.setLastLSN(lsn)
		var uc undoCtx
		for i := len(t.undo) - 1; i >= 0; i-- {
			entry := &t.undo[i]
			inv := entry.op.inverse()
			// UndoNext names the next record restart undo would
			// process: the one logged before the record being undone.
			clr, err := e.undoOp(t.id, &inv, t.lastLSN, entry.prev, true, &uc)
			if err != nil {
				return fmt.Errorf("core: abort undo: %w", err)
			}
			t.setLastLSN(clr)
		}
		if t.verTxn != nil {
			// The undo ops above restored the rows; publishing the end
			// record stamps the transaction's version nodes with its LSN
			// (instead of unlinking them — a reader holding a stale row
			// copy must still find a blocking node in the chain) and
			// advances the snapshot floor past the rollback. Readers
			// below the stamp keep resolving onto the before-images,
			// which equal the restored rows.
			if _, err := e.appendPublished(t, wal.RecEnd); err != nil {
				return err
			}
		} else if _, err := e.log.AppendFieldsC(wal.RecEnd, t.id, t.lastLSN, 0, 0, nil, &t.clock); err != nil {
			return err
		}
	}
	t.releaseLocks(true)
	// With the stamp published the aborted nodes are ordinary dead
	// versions; prune the chains they sit on so an abort with no
	// snapshot pinned leaves no garbage behind.
	if len(t.verNodes) > 0 {
		e.mvcc.retireAborted(t.verNodes, &t.clock)
	}
	obs.TraceEvent(obs.EvAbort, t.id, 0, 0)
	t.finish(txnAborted)
	e.aborts.Inc()
	return nil
}

// finishSnapshot retires a read-only snapshot transaction (both
// Commit and Abort land here). It succeeds even while the engine is
// closing: nothing was logged, so the only work is in-memory — and the
// snapshot pin MUST be released on every path, or the GC watermark
// stays held back for the life of the process.
func (t *Txn) finishSnapshot(state txnState) error {
	if t.state != txnActive {
		return ErrTxnDone
	}
	e := t.e
	t.releaseLocks(state == txnAborted)
	if state == txnAborted {
		obs.TraceEvent(obs.EvAbort, t.id, 0, 0)
		t.finish(txnAborted)
		e.aborts.Inc()
	} else {
		obs.TraceEvent(obs.EvCommit, t.id, 0, 0)
		t.finish(txnCommitted)
		e.commits.Inc()
	}
	return nil
}

// setLastLSN advances the log-chain tail under mu so concurrent
// checkpoint ATT snapshots read a consistent value.
func (t *Txn) setLastLSN(lsn wal.LSN) {
	t.mu.Lock()
	t.lastLSN = lsn
	t.mu.Unlock()
}

func (t *Txn) releaseLocks(aborting bool) {
	if t.agent != nil {
		if aborting {
			t.agent.OnAbortFor(t.locks)
		} else {
			t.agent.OnCommitFor(t.locks)
		}
		return
	}
	t.locks.ReleaseAll()
}

// applyOp applies a (forward or compensation) operation to the heap,
// stamping lsn as the pageLSN; when maintainIndex is set the table's
// index is kept in sync (runtime undo; recovery rebuilds instead).
func (e *Engine) applyOp(op *OpRecord, lsn uint64, maintainIndex bool) error {
	e.mu.RLock()
	tbl, ok := e.tablesByID[op.Table]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNoTable, op.Table)
	}
	switch op.Op {
	case OpInsert:
		if err := tbl.Heap.InsertAt(op.RID, op.After, lsn); err != nil {
			return err
		}
		if maintainIndex {
			return tbl.Index.Insert(op.Key, op.RID.Pack())
		}
	case OpUpdate:
		if err := tbl.Heap.UpdateWithLSN(op.RID, op.After, lsn); err != nil {
			return err
		}
	case OpDelete:
		if err := tbl.Heap.DeleteWithLSN(op.RID, lsn); err != nil {
			return err
		}
		if maintainIndex {
			return tbl.Index.Delete(op.Key)
		}
	case OpExtend:
		return tbl.Heap.RedoFormat(op.RID.Page, page.ID(op.Key), lsn)
	default:
		return fmt.Errorf("core: unknown op %v", op.Op)
	}
	return nil
}

// Exec runs fn inside a transaction, committing on nil and aborting
// on error; deadlock and timeout victims are retried with the shared
// capped exponential backoff (see retry.go) so re-runs of the same
// contenders don't re-collide in lockstep.
func (e *Engine) Exec(fn func(*Txn) error) error {
	for attempt := 0; ; attempt++ {
		t := e.Begin()
		err := fn(t)
		if err == nil {
			if err = t.Commit(); err == nil {
				return nil
			}
		}
		if t.state == txnActive {
			if aerr := t.Abort(); aerr != nil {
				return fmt.Errorf("core: abort after %v: %w", err, aerr)
			}
		}
		if retryableTxnErr(err) && attempt < maxTxnRetries {
			retrySleep(attempt)
			continue
		}
		return err
	}
}
