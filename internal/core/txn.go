package core

import (
	"errors"
	"fmt"
	"sync"

	"hydra/internal/heap"
	"hydra/internal/lock"
	"hydra/internal/page"
	"hydra/internal/wal"
)

// undoEntry pairs a forward operation with the PrevLSN of its log
// record, which becomes the CLR's UndoNext during rollback.
type undoEntry struct {
	op   OpRecord
	prev wal.LSN
}

type txnState int

const (
	txnActive txnState = iota
	txnCommitted
	txnAborted
)

// Txn is a transaction handle. A Txn is normally confined to one
// goroutine; transactions started with BeginNoLock may have their
// operations executed by multiple DORA executors, so the log chain
// and undo list are mutex-protected.
type Txn struct {
	e      *Engine
	id     uint64
	state  txnState
	agent  *lock.Agent // non-nil when SLI is active for this worker
	noLock bool        // DORA: partition ownership replaces locking

	mu       sync.Mutex // guards lastLSN, undo, logged
	lastLSN  wal.LSN
	firstLSN wal.LSN // begin record (log-truncation horizon)
	undo     []undoEntry
	logged   bool // wrote at least one record (begin is lazy)
}

// Begin starts a transaction.
func (e *Engine) Begin() *Txn {
	t := &Txn{e: e, id: e.txnSeq.Add(1), lastLSN: wal.NilLSN, firstLSN: wal.NilLSN}
	e.activeMu.Lock()
	e.active[t.id] = t
	e.activeMu.Unlock()
	return t
}

// finish retires the transaction from the active registry.
func (t *Txn) finish(state txnState) {
	t.state = state
	t.e.activeMu.Lock()
	delete(t.e.active, t.id)
	t.e.activeMu.Unlock()
}

// BeginWithAgent starts a transaction whose lock acquisitions go
// through an SLI agent (one agent per worker goroutine).
func (e *Engine) BeginWithAgent(a *lock.Agent) *Txn {
	t := e.Begin()
	t.agent = a
	return t
}

// BeginNoLock starts a transaction that skips the lock manager
// entirely. Callers (the DORA layer) must guarantee isolation by
// construction — each datum is accessed only by its owning executor.
func (e *Engine) BeginNoLock() *Txn {
	t := e.Begin()
	t.noLock = true
	return t
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

func (t *Txn) acquire(name lock.Name, mode lock.Mode) error {
	if t.noLock {
		return nil
	}
	if t.agent != nil {
		return t.agent.Acquire(t.id, name, mode)
	}
	return t.e.locks.Acquire(t.id, name, mode)
}

// ensureBegin lazily logs the begin record (read-only transactions
// never touch the log).
func (t *Txn) ensureBegin() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.logged {
		return nil
	}
	lsn, err := t.e.log.Append(&wal.Record{
		Type: wal.RecBegin, TxnID: t.id, PrevLSN: wal.NilLSN,
	})
	if err != nil {
		return err
	}
	t.lastLSN = lsn
	t.firstLSN = lsn
	t.logged = true
	return nil
}

func (t *Txn) checkActive() error {
	if t.state != txnActive {
		return ErrTxnDone
	}
	if t.e.closed.Load() {
		return ErrClosed
	}
	return nil
}

// logOp appends a data record for op, records the undo entry, and
// returns its LSN. It owns the txn's chain mutex so DORA actions on
// different executors serialize their log records correctly.
func (t *Txn) logOp(op *OpRecord) (wal.LSN, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	prev := t.lastLSN
	lsn, err := t.e.log.Append(&wal.Record{
		Type:    wal.RecUpdate,
		TxnID:   t.id,
		PrevLSN: prev,
		PageID:  uint64(op.RID.Page),
		Payload: encodeOp(op),
	})
	if err != nil {
		return 0, err
	}
	t.lastLSN = lsn
	t.undo = append(t.undo, undoEntry{op: *op, prev: prev})
	return lsn, nil
}

// Read returns the value stored under key in table.
func (t *Txn) Read(tbl *Table, key uint64) ([]byte, error) {
	if err := t.checkActive(); err != nil {
		return nil, err
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.IS); err != nil {
		return nil, err
	}
	if err := t.acquire(lock.RowName(tbl.ID, key), lock.S); err != nil {
		return nil, err
	}
	packed, err := tbl.Index.Get(key)
	if err != nil {
		return nil, fmt.Errorf("%w: table %s key %d", ErrNotFound, tbl.Name, key)
	}
	rec, err := tbl.Heap.Read(heap.Unpack(packed))
	if err != nil {
		return nil, err
	}
	return rowValue(rec), nil
}

// ReadForUpdate returns the value under key while taking the row lock
// exclusively up front. Read-modify-write transactions use it to
// avoid S-to-X conversion deadlocks on hot rows.
func (t *Txn) ReadForUpdate(tbl *Table, key uint64) ([]byte, error) {
	if err := t.checkActive(); err != nil {
		return nil, err
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.IX); err != nil {
		return nil, err
	}
	if err := t.acquire(lock.RowName(tbl.ID, key), lock.X); err != nil {
		return nil, err
	}
	packed, err := tbl.Index.Get(key)
	if err != nil {
		return nil, fmt.Errorf("%w: table %s key %d", ErrNotFound, tbl.Name, key)
	}
	rec, err := tbl.Heap.Read(heap.Unpack(packed))
	if err != nil {
		return nil, err
	}
	return rowValue(rec), nil
}

// Insert adds a new row; it fails with ErrExists for duplicate keys.
func (t *Txn) Insert(tbl *Table, key uint64, value []byte) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	if err := t.ensureBegin(); err != nil {
		return err
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.IX); err != nil {
		return err
	}
	if err := t.acquire(lock.RowName(tbl.ID, key), lock.X); err != nil {
		return err
	}
	if _, err := tbl.Index.Get(key); err == nil {
		return fmt.Errorf("%w: table %s key %d", ErrExists, tbl.Name, key)
	}
	rec := rowRecord(key, value)
	op := OpRecord{Op: OpInsert, Table: tbl.ID, Key: key, After: rec}
	rid, err := tbl.Heap.InsertFn(rec, func(rid heap.RID) (uint64, error) {
		op.RID = rid
		lsn, err := t.logOp(&op)
		return uint64(lsn), err
	})
	if err != nil {
		return err
	}
	if err := tbl.Index.Insert(key, rid.Pack()); err != nil {
		return err
	}
	return tbl.maintainSecondaries(key, nil, value)
}

// Update replaces the value of an existing row.
func (t *Txn) Update(tbl *Table, key uint64, value []byte) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	if err := t.ensureBegin(); err != nil {
		return err
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.IX); err != nil {
		return err
	}
	if err := t.acquire(lock.RowName(tbl.ID, key), lock.X); err != nil {
		return err
	}
	packed, err := tbl.Index.Get(key)
	if err != nil {
		return fmt.Errorf("%w: table %s key %d", ErrNotFound, tbl.Name, key)
	}
	rid := heap.Unpack(packed)
	rec := rowRecord(key, value)
	op := OpRecord{Op: OpUpdate, Table: tbl.ID, Key: key, RID: rid, After: rec}
	err = tbl.Heap.UpdateFn(rid, rec, func(before []byte) (uint64, error) {
		op.Before = append([]byte(nil), before...)
		lsn, lerr := t.logOp(&op)
		return uint64(lsn), lerr
	})
	if err == nil {
		return tbl.maintainSecondaries(key, rowValue(op.Before), value)
	}
	if !errors.Is(err, page.ErrPageFull) {
		return err
	}
	// The grown row no longer fits on its page: delete + re-insert,
	// which moves the row and updates the index.
	before, rerr := tbl.Heap.Read(rid)
	if rerr != nil {
		return rerr
	}
	delOp := OpRecord{Op: OpDelete, Table: tbl.ID, Key: key, RID: rid, Before: before}
	if err := tbl.Heap.DeleteFn(rid, func([]byte) (uint64, error) {
		lsn, lerr := t.logOp(&delOp)
		return uint64(lsn), lerr
	}); err != nil {
		return err
	}
	insOp := OpRecord{Op: OpInsert, Table: tbl.ID, Key: key, After: rec}
	newRID, err := tbl.Heap.InsertFn(rec, func(r heap.RID) (uint64, error) {
		insOp.RID = r
		lsn, lerr := t.logOp(&insOp)
		return uint64(lsn), lerr
	})
	if err != nil {
		return err
	}
	if err := tbl.Index.Insert(key, newRID.Pack()); err != nil {
		return err
	}
	return tbl.maintainSecondaries(key, rowValue(before), value)
}

// Delete removes a row.
func (t *Txn) Delete(tbl *Table, key uint64) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	if err := t.ensureBegin(); err != nil {
		return err
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.IX); err != nil {
		return err
	}
	if err := t.acquire(lock.RowName(tbl.ID, key), lock.X); err != nil {
		return err
	}
	packed, err := tbl.Index.Get(key)
	if err != nil {
		return fmt.Errorf("%w: table %s key %d", ErrNotFound, tbl.Name, key)
	}
	rid := heap.Unpack(packed)
	op := OpRecord{Op: OpDelete, Table: tbl.ID, Key: key, RID: rid}
	if err := tbl.Heap.DeleteFn(rid, func(before []byte) (uint64, error) {
		op.Before = append([]byte(nil), before...)
		lsn, lerr := t.logOp(&op)
		return uint64(lsn), lerr
	}); err != nil {
		return err
	}
	if err := tbl.Index.Delete(key); err != nil {
		return err
	}
	return tbl.maintainSecondaries(key, rowValue(op.Before), nil)
}

// Scan iterates rows with lo <= key <= hi in key order under a
// table-level shared lock.
func (t *Txn) Scan(tbl *Table, lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	if err := t.acquire(lock.TableName(tbl.ID), lock.S); err != nil {
		return err
	}
	return tbl.Index.Scan(lo, hi, func(key, packed uint64) bool {
		rec, err := tbl.Heap.Read(heap.Unpack(packed))
		if err != nil {
			return true // row vanished mid-scan (should not happen under S)
		}
		return fn(key, rowValue(rec))
	})
}

// Commit makes the transaction durable and releases its locks. Under
// ELR, locks are released as soon as the commit record is in the log
// buffer; the call still blocks for durability before returning.
func (t *Txn) Commit() error {
	if err := t.checkActive(); err != nil {
		return err
	}
	e := t.e
	if !t.logged {
		// Read-only: nothing to log or flush.
		t.releaseLocks(false)
		t.finish(txnCommitted)
		e.commits.Add(1)
		return nil
	}
	commitLSN, err := e.log.Append(&wal.Record{
		Type: wal.RecCommit, TxnID: t.id, PrevLSN: t.lastLSN,
	})
	if err != nil {
		return err
	}
	t.lastLSN = commitLSN
	if e.cfg.ELR {
		t.releaseLocks(false)
	}
	if e.cfg.SyncCommit {
		if err := e.log.WaitFlushed(commitLSN); err != nil {
			return err
		}
	}
	if !e.cfg.ELR {
		t.releaseLocks(false)
	}
	// The end record needs no flush wait.
	if _, err := e.log.Append(&wal.Record{
		Type: wal.RecEnd, TxnID: t.id, PrevLSN: commitLSN,
	}); err != nil {
		return err
	}
	t.finish(txnCommitted)
	e.commits.Add(1)
	return nil
}

// Abort rolls the transaction back, writing compensation records so
// a crash mid-abort resumes correctly, and releases its locks.
func (t *Txn) Abort() error {
	if err := t.checkActive(); err != nil {
		return err
	}
	e := t.e
	if t.logged {
		lsn, err := e.log.Append(&wal.Record{
			Type: wal.RecAbort, TxnID: t.id, PrevLSN: t.lastLSN,
		})
		if err != nil {
			return err
		}
		t.lastLSN = lsn
		for i := len(t.undo) - 1; i >= 0; i-- {
			entry := &t.undo[i]
			inv := entry.op.inverse()
			// UndoNext names the next record restart undo would
			// process: the one logged before the record being undone.
			clr, err := e.undoOp(t.id, &inv, t.lastLSN, entry.prev, true)
			if err != nil {
				return fmt.Errorf("core: abort undo: %w", err)
			}
			t.lastLSN = clr
		}
		if _, err := e.log.Append(&wal.Record{
			Type: wal.RecEnd, TxnID: t.id, PrevLSN: t.lastLSN,
		}); err != nil {
			return err
		}
	}
	t.releaseLocks(true)
	t.finish(txnAborted)
	e.aborts.Add(1)
	return nil
}

func (t *Txn) releaseLocks(aborting bool) {
	if t.agent != nil {
		if aborting {
			t.agent.OnAbort(t.id)
		} else {
			t.agent.OnCommit(t.id)
		}
		return
	}
	t.e.locks.ReleaseAll(t.id)
}

// applyOp applies a (forward or compensation) operation to the heap,
// stamping lsn as the pageLSN; when maintainIndex is set the table's
// index is kept in sync (runtime undo; recovery rebuilds instead).
func (e *Engine) applyOp(op *OpRecord, lsn uint64, maintainIndex bool) error {
	e.mu.RLock()
	tbl, ok := e.tablesByID[op.Table]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNoTable, op.Table)
	}
	switch op.Op {
	case OpInsert:
		if err := tbl.Heap.InsertAt(op.RID, op.After, lsn); err != nil {
			return err
		}
		if maintainIndex {
			return tbl.Index.Insert(op.Key, op.RID.Pack())
		}
	case OpUpdate:
		if err := tbl.Heap.UpdateWithLSN(op.RID, op.After, lsn); err != nil {
			return err
		}
	case OpDelete:
		if err := tbl.Heap.DeleteWithLSN(op.RID, lsn); err != nil {
			return err
		}
		if maintainIndex {
			return tbl.Index.Delete(op.Key)
		}
	case OpExtend:
		return tbl.Heap.RedoFormat(op.RID.Page, page.ID(op.Key), lsn)
	default:
		return fmt.Errorf("core: unknown op %v", op.Op)
	}
	return nil
}

// Exec runs fn inside a transaction, committing on nil and aborting
// on error; deadlock and timeout victims are retried.
func (e *Engine) Exec(fn func(*Txn) error) error {
	for attempt := 0; ; attempt++ {
		t := e.Begin()
		err := fn(t)
		if err == nil {
			if err = t.Commit(); err == nil {
				return nil
			}
		}
		if t.state == txnActive {
			if aerr := t.Abort(); aerr != nil {
				return fmt.Errorf("core: abort after %v: %w", err, aerr)
			}
		}
		if (errors.Is(err, lock.ErrDeadlock) || errors.Is(err, lock.ErrTimeout)) && attempt < 10 {
			continue
		}
		return err
	}
}
