package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"hydra/internal/buffer"
	"hydra/internal/invariant"
	"hydra/internal/latch"
	"hydra/internal/page"
	"hydra/internal/wal"
)

// Online backup: pages are copied one at a time under their latches
// (no quiescing — writers keep running), then the log is flushed and
// copied. The result is exactly a crash image: restoring it and
// opening the engine runs ARIES restart, which rolls the copied pages
// forward to the log-copy point and rolls back whatever was in
// flight. Log truncation is held off (ckptMu) for the duration so the
// copied pages' redo window stays covered.
//
// Stream format (little endian):
//
//	magic "HYDRABK1" (8)
//	page count (8) | page images (8 KiB each)
//	log length (8) | log bytes
const backupMagic = "HYDRABK1"

// Backup writes a consistent online backup of the engine to w.
func (e *Engine) Backup(w io.Writer) error {
	if e.closed.Load() {
		return ErrClosed
	}
	// Block checkpoints (and therefore log truncation) while copying.
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	invariant.Acquired(invariant.TierEngineCkpt, "core.Engine.ckptMu")
	defer invariant.Released(invariant.TierEngineCkpt, "core.Engine.ckptMu")

	if _, err := io.WriteString(w, backupMagic); err != nil {
		return err
	}
	npages, err := e.store.NumPages()
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], npages)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for id := uint64(0); id < npages; id++ {
		f, err := e.pool.Fetch(page.ID(id))
		if err != nil {
			return fmt.Errorf("core: backup page %d: %w", id, err)
		}
		f.Latch.Acquire(latch.Shared)
		_, werr := w.Write(f.Page.Bytes())
		f.Latch.Release(latch.Shared)
		e.pool.Unpin(f, false)
		if werr != nil {
			return werr
		}
	}
	// Flush and copy the log. Records for any update already applied
	// to a copied page precede this point (WAL discipline), so the
	// copied log covers every copied page.
	if err := e.log.Flush(); err != nil {
		return err
	}
	logEnd := int64(e.log.FlushedLSN())
	binary.LittleEndian.PutUint64(hdr[:], uint64(logEnd))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 256<<10)
	for off := int64(0); off < logEnd; {
		n := len(buf)
		if int64(n) > logEnd-off {
			n = int(logEnd - off)
		}
		read, err := e.logDev.ReadAt(buf[:n], off)
		if read == 0 {
			if err != nil {
				return fmt.Errorf("core: backup log at %d: %w", off, err)
			}
			return fmt.Errorf("core: backup log short read at %d", off)
		}
		if _, err := w.Write(buf[:read]); err != nil {
			return err
		}
		off += int64(read)
	}
	return nil
}

// RestoreInto loads a backup stream into fresh stores. Open the
// restored database with OpenWith (recovery runs automatically).
func RestoreInto(r io.Reader, store buffer.PageStore, dev wal.Device) error {
	magic := make([]byte, len(backupMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	if string(magic) != backupMagic {
		return fmt.Errorf("core: restore: bad magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	npages := binary.LittleEndian.Uint64(hdr[:])
	var img page.Page
	for id := uint64(0); id < npages; id++ {
		allocated, err := store.Allocate()
		if err != nil {
			return err
		}
		if uint64(allocated) != id {
			return fmt.Errorf("core: restore: store not empty (page %d became %d)", id, allocated)
		}
		if _, err := io.ReadFull(r, img.Bytes()); err != nil {
			return fmt.Errorf("core: restore page %d: %w", id, err)
		}
		// Never-formatted pages carry a zero id in their header; pin
		// the id to the position so WritePage lands correctly.
		img.SetID(page.ID(id))
		if err := store.WritePage(&img); err != nil {
			return err
		}
	}
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	logLen := int64(binary.LittleEndian.Uint64(hdr[:]))
	buf := make([]byte, 256<<10)
	for off := int64(0); off < logLen; {
		n := len(buf)
		if int64(n) > logLen-off {
			n = int(logLen - off)
		}
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			return fmt.Errorf("core: restore log at %d: %w", off, err)
		}
		if _, err := dev.WriteAt(buf[:n], off); err != nil {
			return err
		}
		off += int64(n)
	}
	return store.Sync()
}
