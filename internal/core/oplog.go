package core

import (
	"encoding/binary"
	"fmt"

	"hydra/internal/heap"
)

// Op is the logical operation encoded in a log record's payload.
type Op uint8

// Logged operation kinds.
const (
	// OpInsert adds a row; Before is empty.
	OpInsert Op = iota + 1
	// OpUpdate replaces a row in place.
	OpUpdate
	// OpDelete removes a row; After is empty.
	OpDelete
	// OpExtend grows a heap chain (redo-only structure change):
	// RID.Page is the old tail, Key is the new tail page id.
	OpExtend
)

var opNames = map[Op]string{
	OpInsert: "insert", OpUpdate: "update", OpDelete: "delete", OpExtend: "extend",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpRecord is the decoded payload of a data log record.
type OpRecord struct {
	Op     Op
	Table  uint32
	Key    uint64
	RID    heap.RID
	Before []byte
	After  []byte
}

// encodeOp serializes an OpRecord:
//
//	op(1) table(4) key(8) rid(8) beforeLen(4) before afterLen(4) after
func encodeOp(r *OpRecord) []byte { return encodeOpTo(nil, r) }

// encodeOpTo is encodeOp into a reusable buffer: it overwrites buf
// (growing it if needed) and returns the encoded slice, so hot paths
// can amortize the allocation across a transaction's operations.
func encodeOpTo(buf []byte, r *OpRecord) []byte {
	need := 1 + 4 + 8 + 8 + 4 + len(r.Before) + 4 + len(r.After)
	if cap(buf) < need {
		buf = make([]byte, need)
	} else {
		buf = buf[:need]
	}
	buf[0] = byte(r.Op)
	binary.LittleEndian.PutUint32(buf[1:], r.Table)
	binary.LittleEndian.PutUint64(buf[5:], r.Key)
	binary.LittleEndian.PutUint64(buf[13:], r.RID.Pack())
	off := 21
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(r.Before)))
	off += 4
	copy(buf[off:], r.Before)
	off += len(r.Before)
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(r.After)))
	off += 4
	copy(buf[off:], r.After)
	return buf
}

// decodeOp parses an encodeOp payload.
func decodeOp(b []byte) (OpRecord, error) {
	if len(b) < 29 {
		return OpRecord{}, fmt.Errorf("core: op payload too short (%d bytes)", len(b))
	}
	r := OpRecord{
		Op:    Op(b[0]),
		Table: binary.LittleEndian.Uint32(b[1:]),
		Key:   binary.LittleEndian.Uint64(b[5:]),
		RID:   heap.Unpack(binary.LittleEndian.Uint64(b[13:])),
	}
	off := 21
	bl := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+bl+4 > len(b) {
		return OpRecord{}, fmt.Errorf("core: op payload truncated before image")
	}
	if bl > 0 {
		r.Before = append([]byte(nil), b[off:off+bl]...)
	}
	off += bl
	al := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if off+al > len(b) {
		return OpRecord{}, fmt.Errorf("core: op payload truncated after image")
	}
	if al > 0 {
		r.After = append([]byte(nil), b[off:off+al]...)
	}
	return r, nil
}

// inverse returns the operation that undoes r.
func (r *OpRecord) inverse() OpRecord {
	switch r.Op {
	case OpInsert:
		return OpRecord{Op: OpDelete, Table: r.Table, Key: r.Key, RID: r.RID, Before: r.After}
	case OpUpdate:
		return OpRecord{Op: OpUpdate, Table: r.Table, Key: r.Key, RID: r.RID, Before: r.After, After: r.Before}
	case OpDelete:
		return OpRecord{Op: OpInsert, Table: r.Table, Key: r.Key, RID: r.RID, After: r.Before}
	default:
		return OpRecord{Op: OpExtend} // structure changes are never undone
	}
}

// rowRecord is the heap representation of a row: key(8) | value.
func rowRecord(key uint64, value []byte) []byte {
	rec := make([]byte, 8+len(value))
	binary.LittleEndian.PutUint64(rec, key)
	copy(rec[8:], value)
	return rec
}

// rowKey extracts the key from a heap row record.
func rowKey(rec []byte) uint64 { return binary.LittleEndian.Uint64(rec) }

// rowValue extracts the value from a heap row record, aliasing rec.
// Every caller passes a record it privately owns — a fresh heap.Read
// copy or a transaction-arena undo image — and no consumer retains
// the bytes past the owner's lifetime, so the former defensive copy
// was pure overhead on the row hot path.
func rowValue(rec []byte) []byte { return rec[8:] }
