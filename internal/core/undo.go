package core

import (
	"fmt"

	"hydra/internal/heap"
	"hydra/internal/wal"
)

// undoOp compensates one logged operation: it applies the inverse
// action and writes the CLR *describing what was actually done* —
// ARIES's rule, because the inverse of an insert-undone delete may
// land the record in a different slot than the original (tombstones
// get reused between the forward op and the undo). The CLR is logged
// inside the same page latch as the action (via the heap's *Fn
// variants), so redo of the CLR replays deterministically.
//
// undoNext names the next record restart undo would process after
// this compensation. It returns the CLR's LSN (the transaction's new
// chain tail).
func (e *Engine) undoOp(txnID uint64, inv *OpRecord, prevLSN, undoNext wal.LSN, maintainIndex bool) (wal.LSN, error) {
	e.mu.RLock()
	tbl, ok := e.tablesByID[inv.Table]
	e.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: id %d", ErrNoTable, inv.Table)
	}
	var clr wal.LSN
	logCLR := func() (uint64, error) {
		lsn, err := e.log.Append(&wal.Record{
			Type:     wal.RecCLR,
			TxnID:    txnID,
			PrevLSN:  prevLSN,
			PageID:   uint64(inv.RID.Page),
			UndoNext: undoNext,
			Payload:  encodeOp(inv),
		})
		clr = lsn
		return uint64(lsn), err
	}
	switch inv.Op {
	case OpInsert: // undoing a delete: put the row back, wherever it fits
		rid, err := tbl.Heap.InsertFn(inv.After, func(rid heap.RID) (uint64, error) {
			inv.RID = rid // the CLR records the actual placement
			return logCLR()
		})
		if err != nil {
			return 0, err
		}
		if maintainIndex {
			if err := tbl.Index.Insert(inv.Key, rid.Pack()); err != nil {
				return 0, err
			}
			if err := tbl.maintainSecondaries(inv.Key, nil, rowValue(inv.After)); err != nil {
				return 0, err
			}
		}
	case OpUpdate: // undoing an update: restore the before-image in place
		if err := tbl.Heap.UpdateFn(inv.RID, inv.After, func([]byte) (uint64, error) {
			return logCLR()
		}); err != nil {
			return 0, err
		}
		if maintainIndex {
			if err := tbl.maintainSecondaries(inv.Key, rowValue(inv.Before), rowValue(inv.After)); err != nil {
				return 0, err
			}
		}
	case OpDelete: // undoing an insert: the row is still at its slot
		if err := tbl.Heap.DeleteFn(inv.RID, func([]byte) (uint64, error) {
			return logCLR()
		}); err != nil {
			return 0, err
		}
		if maintainIndex {
			if err := tbl.Index.Delete(inv.Key); err != nil {
				return 0, err
			}
			if err := tbl.maintainSecondaries(inv.Key, rowValue(inv.Before), nil); err != nil {
				return 0, err
			}
		}
	default:
		return 0, fmt.Errorf("core: cannot undo %v", inv.Op)
	}
	return clr, nil
}
