package core

import (
	"fmt"

	"hydra/internal/heap"
	"hydra/internal/wal"
)

// undoCtx carries state across the operations of one undo pass (a
// runtime abort or a restart-undo phase). Undoing a delete re-inserts
// the row wherever it fits — possibly not its original slot, because
// tombstones get reused between the forward op and the undo — so
// earlier operations of the same transaction on the same key can no
// longer trust the RID they logged. moved records those relocations;
// later undo steps consult it before touching the heap. Locks make a
// key single-writer, so one map serves a whole restart pass.
type undoCtx struct {
	moved map[undoLoc]heap.RID
}

type undoLoc struct {
	table uint32
	key   uint64
}

func (c *undoCtx) relocated(table uint32, key uint64, rid heap.RID) {
	if c.moved == nil {
		c.moved = make(map[undoLoc]heap.RID)
	}
	c.moved[undoLoc{table, key}] = rid
}

// fix rewrites rid to the key's current location if a preceding undo
// step moved it.
func (c *undoCtx) fix(table uint32, key uint64, rid heap.RID) heap.RID {
	if moved, ok := c.moved[undoLoc{table, key}]; ok {
		return moved
	}
	return rid
}

func (c *undoCtx) forget(table uint32, key uint64) {
	delete(c.moved, undoLoc{table, key})
}

// undoOp compensates one logged operation: it applies the inverse
// action and writes the CLR *describing what was actually done* —
// ARIES's rule, because the inverse of an insert-undone delete may
// land the record in a different slot than the original. The CLR is
// logged inside the same page latch as the action (via the heap's *Fn
// variants), so redo of the CLR replays deterministically.
//
// undoNext names the next record restart undo would process after
// this compensation. It returns the CLR's LSN (the transaction's new
// chain tail).
func (e *Engine) undoOp(txnID uint64, inv *OpRecord, prevLSN, undoNext wal.LSN, maintainIndex bool, uc *undoCtx) (wal.LSN, error) {
	e.mu.RLock()
	tbl, ok := e.tablesByID[inv.Table]
	e.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: id %d", ErrNoTable, inv.Table)
	}
	var clr wal.LSN
	logCLR := func() (uint64, error) {
		lsn, err := e.log.Append(&wal.Record{
			Type:     wal.RecCLR,
			TxnID:    txnID,
			PrevLSN:  prevLSN,
			PageID:   uint64(inv.RID.Page),
			UndoNext: undoNext,
			Payload:  encodeOp(inv),
		})
		clr = lsn
		return uint64(lsn), err
	}
	switch inv.Op {
	case OpInsert: // undoing a delete: put the row back, wherever it fits
		rid, err := tbl.Heap.InsertFn(inv.After, func(rid heap.RID) (uint64, error) {
			inv.RID = rid // the CLR records the actual placement
			return logCLR()
		})
		if err != nil {
			return 0, err
		}
		// The row may have landed away from its forward-time slot;
		// earlier ops of this transaction must follow it.
		uc.relocated(inv.Table, inv.Key, rid)
		if maintainIndex {
			if err := tbl.Index.Insert(inv.Key, rid.Pack()); err != nil {
				return 0, err
			}
			if err := tbl.maintainSecondaries(inv.Key, nil, rowValue(inv.After)); err != nil {
				return 0, err
			}
		}
	case OpUpdate: // undoing an update: restore the before-image in place
		inv.RID = uc.fix(inv.Table, inv.Key, inv.RID)
		if err := tbl.Heap.UpdateFn(inv.RID, inv.After, func([]byte) (uint64, error) {
			return logCLR()
		}); err != nil {
			return 0, err
		}
		if maintainIndex {
			if err := tbl.maintainSecondaries(inv.Key, rowValue(inv.Before), rowValue(inv.After)); err != nil {
				return 0, err
			}
		}
	case OpDelete: // undoing an insert: remove the row where it now is
		inv.RID = uc.fix(inv.Table, inv.Key, inv.RID)
		if err := tbl.Heap.DeleteFn(inv.RID, func([]byte) (uint64, error) {
			return logCLR()
		}); err != nil {
			return 0, err
		}
		uc.forget(inv.Table, inv.Key)
		if maintainIndex {
			if err := tbl.Index.Delete(inv.Key); err != nil {
				return 0, err
			}
			if err := tbl.maintainSecondaries(inv.Key, rowValue(inv.Before), nil); err != nil {
				return 0, err
			}
		}
	default:
		return 0, fmt.Errorf("core: cannot undo %v", inv.Op)
	}
	return clr, nil
}
