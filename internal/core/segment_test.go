package core

import (
	"fmt"
	"testing"
)

// End-to-end log recycling: a segmented-WAL engine under sustained
// traffic with periodic checkpoints must keep a bounded number of log
// segments, and recovery must work from the truncated log.
func TestSegmentedLogRecycling(t *testing.T) {
	dir := t.TempDir()
	cfg := Conventional()
	cfg.Dir = dir
	cfg.LogSegmentBytes = 64 << 10 // small segments force recycling
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	segCounts := []int{}
	for round := 0; round < 6; round++ {
		for i := 0; i < 400; i++ {
			key := uint64(round*400 + i)
			if err := e.Exec(func(tx *Txn) error {
				return tx.Insert(tbl, key, []byte(fmt.Sprintf("v-%d", key)))
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		type segCounter interface{ Segments() int }
		segCounts = append(segCounts, e.logDev.(segCounter).Segments())
	}
	// Segments must not grow monotonically round over round: the
	// checkpoint horizon reclaims old ones.
	if segCounts[len(segCounts)-1] >= segCounts[0]+6 {
		t.Fatalf("log never recycled: segment counts %v", segCounts)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from the truncated log; everything committed must be there.
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tbl2, _ := e2.Table("t")
	count := 0
	e2.Exec(func(tx *Txn) error {
		return tx.Scan(tbl2, 0, ^uint64(0), func(uint64, []byte) bool {
			count++
			return true
		})
	})
	if count != 6*400 {
		t.Fatalf("rows after recycled-log recovery = %d, want %d", count, 6*400)
	}
}

// Crash recovery with a segmented, truncated log: the master record
// points above the truncation point by construction.
func TestSegmentedLogCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Conventional()
	cfg.Dir = dir
	cfg.LogSegmentBytes = 32 << 10
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	for i := 0; i < 500; i++ {
		i := i
		if err := e.Exec(func(tx *Txn) error {
			return tx.Insert(tbl, uint64(i), []byte("x"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic including a loser.
	for i := 500; i < 550; i++ {
		i := i
		e.Exec(func(tx *Txn) error { return tx.Insert(tbl, uint64(i), []byte("x")) })
	}
	loser := e.Begin()
	if err := loser.Insert(tbl, 9999, []byte("loser")); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(); err != nil {
		t.Fatal(err)
	}
	crash(e)

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.RecoveryReport.LosersUndone != 1 {
		t.Fatalf("recovery report: %+v", e2.RecoveryReport)
	}
	tbl2, _ := e2.Table("t")
	e2.Exec(func(tx *Txn) error {
		n := 0
		tx.Scan(tbl2, 0, ^uint64(0), func(uint64, []byte) bool { n++; return true })
		if n != 550 {
			t.Fatalf("rows = %d, want 550", n)
		}
		return nil
	})
}
