package core

import (
	"errors"
	"testing"
)

// byFirstByte indexes rows by the first byte of their value.
func byFirstByte(_ uint64, value []byte) (uint64, bool) {
	if len(value) == 0 {
		return 0, false
	}
	return uint64(value[0]), true
}

func TestSecondaryIndexBuildAndLookup(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 300; i++ {
			if err := tx.Insert(tbl, i, []byte{byte(i % 3), byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	idx, err := tbl.AddIndex("by-class", byFirstByte)
	if err != nil {
		t.Fatal(err)
	}
	var keys []uint64
	e.Exec(func(tx *Txn) error {
		return tx.LookupBy(tbl, idx, 1, func(k uint64, v []byte) bool {
			if v[0] != 1 {
				t.Fatalf("key %d has class %d", k, v[0])
			}
			keys = append(keys, k)
			return true
		})
	})
	if len(keys) != 100 {
		t.Fatalf("class 1 has %d rows, want 100", len(keys))
	}
	// Row-key order within the attribute.
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("lookup not in row-key order")
		}
	}
	// Range across attributes 1..2.
	n := 0
	e.Exec(func(tx *Txn) error {
		return tx.LookupRange(tbl, idx, 1, 2, func(uint64, []byte) bool {
			n++
			return true
		})
	})
	if n != 200 {
		t.Fatalf("range lookup saw %d rows", n)
	}
}

func TestSecondaryMaintainedByDML(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	idx, err := tbl.AddIndex("by-class", byFirstByte)
	if err != nil {
		t.Fatal(err)
	}
	count := func(attr uint64) int {
		n := 0
		e.Exec(func(tx *Txn) error {
			return tx.LookupBy(tbl, idx, attr, func(uint64, []byte) bool {
				n++
				return true
			})
		})
		return n
	}
	e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte{7, 'a'}) })
	e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 2, []byte{7, 'b'}) })
	if count(7) != 2 {
		t.Fatalf("after inserts: %d", count(7))
	}
	// Update moving a row between attribute classes.
	e.Exec(func(tx *Txn) error { return tx.Update(tbl, 1, []byte{9, 'a'}) })
	if count(7) != 1 || count(9) != 1 {
		t.Fatalf("after move: class7=%d class9=%d", count(7), count(9))
	}
	// Update within the same class must not duplicate.
	e.Exec(func(tx *Txn) error { return tx.Update(tbl, 2, []byte{7, 'c'}) })
	if count(7) != 1 {
		t.Fatalf("same-class update duplicated: %d", count(7))
	}
	e.Exec(func(tx *Txn) error { return tx.Delete(tbl, 2) })
	if count(7) != 0 {
		t.Fatalf("after delete: %d", count(7))
	}
}

func TestSecondaryRollbackCompensation(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	idx, err := tbl.AddIndex("by-class", byFirstByte)
	if err != nil {
		t.Fatal(err)
	}
	e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte{5, 'x'}) })

	tx := e.Begin()
	tx.Insert(tbl, 2, []byte{5, 'y'}) // doomed insert
	tx.Update(tbl, 1, []byte{6, 'x'}) // doomed class move
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	seen := map[uint64]bool{}
	e.Exec(func(txr *Txn) error {
		return txr.LookupBy(tbl, idx, 5, func(k uint64, v []byte) bool {
			seen[k] = true
			return true
		})
	})
	if !seen[1] || seen[2] || len(seen) != 1 {
		t.Fatalf("index after abort: %v", seen)
	}
	n := 0
	e.Exec(func(txr *Txn) error {
		return txr.LookupBy(tbl, idx, 6, func(uint64, []byte) bool { n++; return true })
	})
	if n != 0 {
		t.Fatalf("aborted class move visible: %d", n)
	}
}

func TestSecondaryPartialIndex(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	// Only index even classes.
	idx, err := tbl.AddIndex("evens", func(k uint64, v []byte) (uint64, bool) {
		if len(v) == 0 || v[0]%2 != 0 {
			return 0, false
		}
		return uint64(v[0]), true
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Exec(func(tx *Txn) error {
		tx.Insert(tbl, 1, []byte{2})
		tx.Insert(tbl, 2, []byte{3})
		return nil
	})
	n := 0
	e.Exec(func(tx *Txn) error {
		return tx.LookupRange(tbl, idx, 0, ^uint64(0)>>33, func(uint64, []byte) bool { n++; return true })
	})
	if n != 1 {
		t.Fatalf("partial index has %d entries", n)
	}
}

func TestSecondaryKeyRangeEnforced(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	if _, err := tbl.AddIndex("bad", func(k uint64, v []byte) (uint64, bool) {
		return 1 << 40, true // attribute too large
	}); err == nil {
		// Build over an empty table cannot fail; the failure comes on
		// first insert instead.
		ierr := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("v")) })
		if !errors.Is(ierr, ErrKeyRange) {
			t.Fatalf("oversized attribute accepted: %v", ierr)
		}
	}
}

func TestDropIndexStopsMaintenance(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	if _, err := tbl.AddIndex("x", byFirstByte); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Indexes()) != 1 {
		t.Fatal("index not registered")
	}
	if !tbl.DropIndex("x") {
		t.Fatal("drop failed")
	}
	if tbl.DropIndex("x") {
		t.Fatal("double drop succeeded")
	}
	// DML after drop must not fail even with huge keys.
	if err := e.Exec(func(tx *Txn) error {
		return tx.Insert(tbl, 1<<40, []byte{1})
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSecondaryRebuildAfterReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Scalable()
	cfg.Dir = dir
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 50; i++ {
			if err := tx.Insert(tbl, i, []byte{byte(i % 5)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tbl2, _ := e2.Table("t")
	idx, err := tbl2.AddIndex("by-class", byFirstByte) // re-register = rebuild
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	e2.Exec(func(tx *Txn) error {
		return tx.LookupBy(tbl2, idx, 3, func(uint64, []byte) bool { n++; return true })
	})
	if n != 10 {
		t.Fatalf("rebuilt index class 3 = %d, want 10", n)
	}
}
