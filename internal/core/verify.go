package core

import (
	"fmt"

	"hydra/internal/heap"
)

// Verify cross-checks every table's physical structures: each heap
// row must be indexed at exactly its record id, each index entry must
// resolve to a live heap row with the matching key, and the counts
// must agree. It is an offline/diagnostic facility (it takes no
// locks beyond page latches), used after recovery in tests and by
// operators chasing corruption.
func (e *Engine) Verify() error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.mu.RLock()
	tables := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock()

	for _, t := range tables {
		heapRows := make(map[uint64]heap.RID)
		var dupErr error
		err := t.Heap.Scan(func(rid heap.RID, rec []byte) bool {
			if len(rec) < 8 {
				dupErr = fmt.Errorf("core: %s: runt record at %v", t.Name, rid)
				return false
			}
			key := rowKey(rec)
			if prev, ok := heapRows[key]; ok {
				dupErr = fmt.Errorf("core: %s: key %d stored twice (%v and %v)", t.Name, key, prev, rid)
				return false
			}
			heapRows[key] = rid
			return true
		})
		if err != nil {
			return fmt.Errorf("core: %s: heap scan: %w", t.Name, err)
		}
		if dupErr != nil {
			return dupErr
		}

		indexed := 0
		var idxErr error
		err = t.Index.Scan(0, ^uint64(0), func(key, packed uint64) bool {
			indexed++
			rid, ok := heapRows[key]
			if !ok {
				idxErr = fmt.Errorf("core: %s: index entry %d has no heap row", t.Name, key)
				return false
			}
			if got := heap.Unpack(packed); got != rid {
				idxErr = fmt.Errorf("core: %s: index entry %d points at %v, heap row at %v", t.Name, key, got, rid)
				return false
			}
			// The row must decode back to the key.
			rec, err := t.Heap.Read(rid)
			if err != nil {
				idxErr = fmt.Errorf("core: %s: index entry %d unreadable: %v", t.Name, key, err)
				return false
			}
			if rowKey(rec) != key {
				idxErr = fmt.Errorf("core: %s: row at %v has key %d, indexed as %d", t.Name, rid, rowKey(rec), key)
				return false
			}
			return true
		})
		if err != nil {
			return fmt.Errorf("core: %s: index scan: %w", t.Name, err)
		}
		if idxErr != nil {
			return idxErr
		}
		if indexed != len(heapRows) {
			return fmt.Errorf("core: %s: %d heap rows but %d index entries", t.Name, len(heapRows), indexed)
		}
		if err := t.Index.CheckInvariants(); err != nil {
			return fmt.Errorf("core: %s: %w", t.Name, err)
		}
	}
	return nil
}
