package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hydra/internal/latch"
	"hydra/internal/page"
	"hydra/internal/wal"
)

// tableMeta is the persistent description of one table.
type tableMeta struct {
	ID        uint32
	HeapFirst page.ID
	Name      string
}

// encodeCatalog serializes the table list for the meta page:
//
//	count(4) then per table: id(4) heapFirst(8) nameLen(2) name
func encodeCatalog(tables []tableMeta) []byte {
	sort.Slice(tables, func(i, j int) bool { return tables[i].ID < tables[j].ID })
	size := 4
	for _, t := range tables {
		size += 4 + 8 + 2 + len(t.Name)
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf, uint32(len(tables)))
	off := 4
	for _, t := range tables {
		binary.LittleEndian.PutUint32(buf[off:], t.ID)
		binary.LittleEndian.PutUint64(buf[off+4:], uint64(t.HeapFirst))
		binary.LittleEndian.PutUint16(buf[off+12:], uint16(len(t.Name)))
		copy(buf[off+14:], t.Name)
		off += 14 + len(t.Name)
	}
	return buf
}

func decodeCatalog(b []byte) ([]tableMeta, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("core: catalog truncated")
	}
	n := int(binary.LittleEndian.Uint32(b))
	off := 4
	tables := make([]tableMeta, 0, n)
	for i := 0; i < n; i++ {
		if off+14 > len(b) {
			return nil, fmt.Errorf("core: catalog entry %d truncated", i)
		}
		t := tableMeta{
			ID:        binary.LittleEndian.Uint32(b[off:]),
			HeapFirst: page.ID(binary.LittleEndian.Uint64(b[off+4:])),
		}
		nl := int(binary.LittleEndian.Uint16(b[off+12:]))
		off += 14
		if off+nl > len(b) {
			return nil, fmt.Errorf("core: catalog name %d truncated", i)
		}
		t.Name = string(b[off : off+nl])
		off += nl
		tables = append(tables, t)
	}
	return tables, nil
}

// The meta page's single record is: masterLSN(8) || catalog. The
// master LSN names the begin-checkpoint record ARIES analysis starts
// from (NilLSN-encoded-as-max means "no checkpoint; scan from 0").

// writeMeta rewrites the meta page (page 0) with the current table
// list and master record, and forces that page to stable storage.
// DDL and checkpoints are rare; synchronous persistence keeps
// recovery simple (the catalog itself is not logged).
func (e *Engine) writeMeta(master wal.LSN) error {
	var metas []tableMeta
	for _, t := range e.tables {
		metas = append(metas, tableMeta{ID: t.ID, HeapFirst: t.Heap.FirstPage(), Name: t.Name})
	}
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint64(payload, uint64(master))
	payload = append(payload, encodeCatalog(metas)...)
	f, err := e.pool.Fetch(metaPageID)
	if err != nil {
		return err
	}
	f.Latch.Acquire(latch.Exclusive)
	f.Page.Format(metaPageID, page.TypeMeta)
	if _, err := f.Page.Insert(payload); err != nil {
		f.Latch.Release(latch.Exclusive)
		e.pool.Unpin(f, false)
		return fmt.Errorf("core: catalog too large for meta page: %w", err)
	}
	f.Latch.Release(latch.Exclusive)
	// Flush while still pinned, then release clean.
	if err := e.pool.FlushPage(f); err != nil {
		e.pool.Unpin(f, true)
		return err
	}
	e.pool.Unpin(f, false)
	return e.store.Sync()
}

// readMeta loads the master LSN and table list from the meta page.
func (e *Engine) readMeta() (wal.LSN, []tableMeta, error) {
	f, err := e.pool.Fetch(metaPageID)
	if err != nil {
		return 0, nil, err
	}
	defer e.pool.Unpin(f, false)
	f.Latch.Acquire(latch.Shared)
	defer f.Latch.Release(latch.Shared)
	if f.Page.Type() != page.TypeMeta {
		return 0, nil, fmt.Errorf("core: page 0 is %v, not meta", f.Page.Type())
	}
	rec, err := f.Page.Read(0)
	if err != nil {
		return 0, nil, fmt.Errorf("core: meta page has no catalog record: %w", err)
	}
	if len(rec) < 8 {
		return 0, nil, fmt.Errorf("core: meta record truncated")
	}
	master := wal.LSN(binary.LittleEndian.Uint64(rec))
	metas, err := decodeCatalog(rec[8:])
	return master, metas, err
}
