package core

import (
	"errors"
	"sync"
	"testing"

	"hydra/internal/lock"
	"hydra/internal/rng"
)

// TestConcurrentCommitAbortStress hammers the whole commit pipeline —
// Begin, logging, group-commit waits, lock ReleaseAll, SLI inheritance
// and lock escalation — from many goroutines at once. It exists to be
// run under -race: the pooled Txn handles, caller-owned lock holders
// and keyed flush waiters all cross goroutines here.
func TestConcurrentCommitAbortStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := Scalable()
	cfg.LockEscalation = 8 // force escalation traffic through the holders
	e := memEngine(t, cfg)
	tbl, err := e.CreateTable("stress")
	if err != nil {
		t.Fatal(err)
	}
	hot, err := e.CreateTable("hot")
	if err != nil {
		t.Fatal(err)
	}
	// Seed the hot table with a handful of contended rows.
	const hotKeys = 4
	if err := e.Exec(func(tx *Txn) error {
		for k := uint64(1); k <= hotKeys; k++ {
			if err := tx.Insert(hot, k, []byte("seed")); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		iters   = 200
	)
	expected := func(err error) bool {
		// Contention outcomes are legitimate; anything else is a bug.
		return errors.Is(err, lock.ErrDeadlock) ||
			errors.Is(err, lock.ErrTimeout) ||
			errors.Is(err, ErrExists) ||
			errors.Is(err, ErrNotFound)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w)*7919 + 13)
			// Odd workers run their transactions through an SLI agent,
			// even workers release straight to the lock table, so both
			// ReleaseAll paths run concurrently.
			var agent *lock.Agent
			if w%2 == 1 {
				agent = e.Locks().NewAgent()
				defer agent.Close()
			}
			base := uint64(w+1) << 32
			for i := 0; i < iters; i++ {
				var tx *Txn
				if agent != nil {
					tx = e.BeginWithAgent(agent)
				} else {
					tx = e.Begin()
				}
				failed := false
				step := func(err error) {
					if err == nil || failed {
						return
					}
					if !expected(err) {
						t.Errorf("worker %d iter %d: %v", w, i, err)
					}
					failed = true
				}
				// A burst of private-range writes; crossing the
				// escalation threshold trades them for a table lock.
				n := 1 + r.Intn(12)
				for j := 0; j < n && !failed; j++ {
					k := base + uint64(r.Intn(64))
					switch r.Intn(3) {
					case 0:
						step(tx.Insert(tbl, k, []byte("v")))
					case 1:
						err := tx.Update(tbl, k, []byte("v2"))
						if errors.Is(err, ErrNotFound) {
							err = nil
						}
						step(err)
					default:
						err := tx.Delete(tbl, k)
						if errors.Is(err, ErrNotFound) {
							err = nil
						}
						step(err)
					}
				}
				// Touch a contended row so transactions actually
				// conflict and the deadlock detector gets traffic.
				if !failed && r.Bool(0.5) {
					k := 1 + uint64(r.Intn(hotKeys))
					if r.Bool(0.5) {
						_, err := tx.Read(hot, k)
						step(err)
					} else {
						step(tx.Update(hot, k, []byte("touched")))
					}
				}
				if failed || r.Bool(0.25) {
					if err := tx.Abort(); err != nil {
						t.Errorf("worker %d iter %d: abort: %v", w, i, err)
					}
					continue
				}
				if err := tx.Commit(); err != nil && !expected(err) {
					t.Errorf("worker %d iter %d: commit: %v", w, i, err)
				}
			}
		}(w)
	}
	// Concurrent fuzzy checkpoints snapshot the ATT while transactions
	// churn through the pooled handles.
	stop := make(chan struct{})
	var ckptWg sync.WaitGroup
	ckptWg.Add(1)
	go func() {
		defer ckptWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	ckptWg.Wait()

	// The lock table must be fully drained: a fresh transaction can
	// take an X lock on every table with no competition.
	if err := e.Exec(func(tx *Txn) error {
		if err := tx.Update(hot, 1, []byte("final")); err != nil {
			return err
		}
		return tx.Insert(tbl, 1<<60, []byte("final"))
	}); err != nil {
		t.Fatalf("post-stress transaction: %v", err)
	}
}
