package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"hydra/internal/buffer"
	"hydra/internal/wal"
)

func TestBackupRestoreRoundTrip(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 500; i++ {
			if err := tx.Insert(tbl, i, []byte(fmt.Sprintf("v%d", i))); err != nil {
				return err
			}
		}
		return nil
	})
	// An in-flight loser at backup time must not survive the restore.
	loser := e.Begin()
	if err := loser.Insert(tbl, 9999, []byte("loser")); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Backup(&buf); err != nil {
		t.Fatal(err)
	}

	store := buffer.NewMemStore()
	dev := wal.NewMem()
	if err := RestoreInto(&buf, store, dev); err != nil {
		t.Fatal(err)
	}
	r, err := OpenWith(Scalable(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.RecoveryReport.LosersUndone != 1 {
		t.Fatalf("restore recovery: %+v", r.RecoveryReport)
	}
	rt, err := r.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	r.Exec(func(tx *Txn) error {
		n := 0
		tx.Scan(rt, 0, ^uint64(0), func(k uint64, v []byte) bool {
			n++
			return true
		})
		if n != 500 {
			t.Fatalf("restored rows = %d", n)
		}
		if _, err := tx.Read(rt, 9999); !errors.Is(err, ErrNotFound) {
			t.Fatalf("loser survived restore: %v", err)
		}
		return nil
	})
	if err := r.Verify(); err != nil {
		t.Fatalf("restored engine verify: %v", err)
	}
	// The original engine keeps working (backup did not disturb it).
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 777, []byte("after")) }); err != nil {
		t.Fatal(err)
	}
}

func TestBackupUnderConcurrentTraffic(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 200; i++ {
			if err := tx.Insert(tbl, i, []byte("seed")); err != nil {
				return err
			}
		}
		return nil
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := 1000 + uint64(w)*100000 + i
				if err := e.Exec(func(tx *Txn) error {
					return tx.Insert(tbl, key, []byte("hot"))
				}); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(w)
	}

	var buf bytes.Buffer
	err := e.Backup(&buf)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	store := buffer.NewMemStore()
	dev := wal.NewMem()
	if err := RestoreInto(&buf, store, dev); err != nil {
		t.Fatal(err)
	}
	r, err := OpenWith(Scalable(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Verify(); err != nil {
		t.Fatalf("restored engine inconsistent: %v", err)
	}
	// All 200 seed rows must be present; concurrent rows are present
	// iff their commit made the copied log (any prefix is legal).
	rt, _ := r.Table("t")
	r.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 200; i++ {
			if _, err := tx.Read(rt, i); err != nil {
				t.Fatalf("seed row %d missing: %v", i, err)
			}
		}
		return nil
	})
}

func TestRestoreRejectsGarbage(t *testing.T) {
	err := RestoreInto(bytes.NewReader([]byte("NOTABACKUP")), buffer.NewMemStore(), wal.NewMem())
	if err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncated stream.
	e := memEngine(t, Conventional())
	e.CreateTable("t")
	var buf bytes.Buffer
	if err := e.Backup(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if err := RestoreInto(bytes.NewReader(cut), buffer.NewMemStore(), wal.NewMem()); err == nil {
		t.Fatal("truncated backup accepted")
	}
}
