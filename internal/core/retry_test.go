package core

import (
	"errors"
	"testing"
	"time"

	"hydra/internal/lock"
)

func TestBackoffDelayCappedWindow(t *testing.T) {
	for attempt := 0; attempt < 40; attempt++ {
		window := retryBase << uint(attempt)
		if window <= 0 || window > retryCap {
			window = retryCap
		}
		for i := 0; i < 50; i++ {
			d := BackoffDelay(attempt)
			if d < 0 || d >= window {
				t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, window)
			}
		}
	}
	// The cap must actually bind for large attempts (no overflow into
	// negative shifts).
	if d := BackoffDelay(63); d < 0 || d >= retryCap {
		t.Fatalf("attempt 63: delay %v outside [0, %v)", d, retryCap)
	}
}

// Exec must retry deadlock victims exactly maxTxnRetries times, with a
// backoff sleep between every pair of attempts — the regression is the
// zero-backoff retry storm where victims re-collided immediately.
func TestExecRetriesWithBackoff(t *testing.T) {
	e := memEngine(t, Scalable())
	var sleeps []int
	prev := retrySleep
	retrySleep = func(attempt int) { sleeps = append(sleeps, attempt) }
	defer func() { retrySleep = prev }()

	attempts := 0
	err := e.Exec(func(tx *Txn) error {
		attempts++
		return lock.ErrDeadlock
	})
	if !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("Exec = %v, want ErrDeadlock", err)
	}
	if want := maxTxnRetries + 1; attempts != want {
		t.Fatalf("attempts = %d, want %d", attempts, want)
	}
	if len(sleeps) != maxTxnRetries {
		t.Fatalf("backoff sleeps = %d, want %d", len(sleeps), maxTxnRetries)
	}
	for i, a := range sleeps {
		if a != i {
			t.Fatalf("sleep %d ran with attempt %d", i, a)
		}
	}
}

// A genuine two-transaction deadlock resolves through retry: the
// victim backs off and re-runs rather than re-colliding forever.
func TestExecDeadlockVictimRecovers(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error {
		if err := tx.Insert(tbl, 1, []byte("a")); err != nil {
			return err
		}
		return tx.Insert(tbl, 2, []byte("b"))
	}); err != nil {
		t.Fatal(err)
	}
	var slept int
	prev := retrySleep
	retrySleep = func(int) { slept++; time.Sleep(time.Millisecond) }
	defer func() { retrySleep = prev }()

	// Two transactions lock {1,2} in opposite orders; each holds its
	// first lock across a pause so the cross-wait (and thus a deadlock
	// or timeout victim) is certain on the first attempt.
	order := [][2]uint64{{1, 2}, {2, 1}}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(keys [2]uint64) {
			first := true
			errs <- e.Exec(func(tx *Txn) error {
				if _, err := tx.ReadForUpdate(tbl, keys[0]); err != nil {
					return err
				}
				if first {
					first = false
					time.Sleep(5 * time.Millisecond)
				}
				if _, err := tx.ReadForUpdate(tbl, keys[1]); err != nil {
					return err
				}
				return tx.Update(tbl, keys[1], []byte("w"))
			})
		}(order[i])
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if slept == 0 {
		t.Fatal("no backoff sleep recorded; victim retried without backing off")
	}
}
