package core

import (
	"errors"
	"testing"

	"hydra/internal/buffer"
	"hydra/internal/wal"
)

// TestAbortAfterKeyRelocation is the regression test for stale-RID
// undo. A transaction deletes a key, a concurrent transaction's
// insert reuses the tombstoned slot (page.Insert reuses tombstones
// first-fit), and the abort's un-delete must therefore re-insert the
// row elsewhere — after which every earlier undo step on that key
// has to follow the relocation instead of trusting its forward-time
// RID, or it corrupts the slot thief's row.
func TestAbortAfterKeyRelocation(t *testing.T) {
	for name, cfg := range configs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			e := memEngine(t, cfg)

			// Part 1: update+delete, slot stolen, abort. The undo of
			// the update must chase the relocated row.
			t1, err := e.CreateTable("reloc1")
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Exec(func(tx *Txn) error {
				return tx.Insert(t1, 1, []byte("original"))
			}); err != nil {
				t.Fatal(err)
			}
			tx := e.Begin()
			if err := tx.Update(t1, 1, []byte("changed!")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Delete(t1, 1); err != nil {
				t.Fatal(err)
			}
			// Concurrent transaction grabs the freed slot.
			if err := e.Exec(func(tx2 *Txn) error {
				return tx2.Insert(t1, 99, []byte("thief"))
			}); err != nil {
				t.Fatal(err)
			}
			if err := tx.Abort(); err != nil {
				t.Fatalf("abort: %v", err)
			}
			if err := e.Exec(func(tx *Txn) error {
				v, err := tx.Read(t1, 1)
				if err != nil {
					return err
				}
				if string(v) != "original" {
					t.Errorf("key 1 = %q after abort, want %q", v, "original")
				}
				v, err = tx.Read(t1, 99)
				if err != nil {
					return err
				}
				if string(v) != "thief" {
					t.Errorf("key 99 = %q after abort, want %q (undo clobbered it)", v, "thief")
				}
				return nil
			}); err != nil {
				t.Fatalf("post-abort read: %v", err)
			}

			// Part 2: insert+delete of a fresh key, slot stolen, abort.
			// The undo of the insert must delete the relocated row, not
			// the thief occupying the original slot.
			t2, err := e.CreateTable("reloc2")
			if err != nil {
				t.Fatal(err)
			}
			tx = e.Begin()
			if err := tx.Insert(t2, 2, []byte("mine")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Delete(t2, 2); err != nil {
				t.Fatal(err)
			}
			if err := e.Exec(func(tx2 *Txn) error {
				return tx2.Insert(t2, 98, []byte("thief"))
			}); err != nil {
				t.Fatal(err)
			}
			if err := tx.Abort(); err != nil {
				t.Fatalf("abort: %v", err)
			}
			if err := e.Exec(func(tx *Txn) error {
				if _, err := tx.Read(t2, 2); !errors.Is(err, ErrNotFound) {
					t.Errorf("key 2 after abort: %v, want ErrNotFound", err)
				}
				v, err := tx.Read(t2, 98)
				if err != nil {
					return err
				}
				if string(v) != "thief" {
					t.Errorf("key 98 = %q after abort, want %q", v, "thief")
				}
				return nil
			}); err != nil {
				t.Fatalf("post-abort read: %v", err)
			}
		})
	}
}

// TestRecoveryAfterKeyRelocation drives the same stale-RID pattern
// through restart undo: the loser is cut off by a crash instead of
// aborting, and a committed winner holds the loser's old slot, so
// recovery's undo pass must track the relocation itself.
func TestRecoveryAfterKeyRelocation(t *testing.T) {
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	cfg := Conventional()
	e, err := OpenWith(cfg, store, dev)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("reloc")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Txn) error {
		return tx.Insert(tbl, 1, []byte("original"))
	}); err != nil {
		t.Fatal(err)
	}

	// Loser: update then delete key 1; a committed winner reuses the
	// tombstoned slot; then crash with everything durable in the log.
	tx := e.Begin()
	if err := tx.Update(tbl, 1, []byte("changed!")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(tbl, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx2 *Txn) error {
		return tx2.Insert(tbl, 99, []byte("thief"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Log().Flush(); err != nil {
		t.Fatal(err)
	}
	e.Log().Close()
	e.closed.Store(true)

	e2, err := OpenWith(cfg, store, dev)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer e2.Close()
	if e2.RecoveryReport.LosersUndone == 0 {
		t.Fatalf("expected a loser to be undone, report %+v", e2.RecoveryReport)
	}
	tbl2, err := e2.Table("reloc")
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Exec(func(tx *Txn) error {
		v, err := tx.Read(tbl2, 1)
		if err != nil {
			return err
		}
		if string(v) != "original" {
			t.Errorf("key 1 = %q after recovery, want %q", v, "original")
		}
		v, err = tx.Read(tbl2, 99)
		if err != nil {
			return err
		}
		if string(v) != "thief" {
			t.Errorf("key 99 = %q after recovery, want %q (undo clobbered it)", v, "thief")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
