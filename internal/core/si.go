// Snapshot-isolation writer transactions: reads ride the lock-free
// snapshot path (snapshot.go), writes buffer into a per-transaction
// write set, and commit validates first-committer-wins against the
// version chains (mvcc.go) before applying the buffered writes under
// the ordinary per-row locks and publish machinery.
//
// Protocol:
//
//  1. Begin pins a snapshot exactly like a read-only snapshot
//     transaction. Reads resolve against it with zero lock-manager
//     traffic, overlaid with the transaction's own buffered writes.
//  2. Writes never touch the heap: each Insert/Update/Delete folds
//     into the write set as the key's net effect relative to the
//     snapshot (insert-then-delete nets out; delete-then-insert nets
//     to an update). Existence errors (ErrExists, ErrNotFound) are
//     decided against the snapshot + write set, so they are stable no
//     matter what concurrent writers commit.
//  3. Commit sorts the write set by (table, key) and takes the usual
//     IX table + X row locks in that global order (SI committers can
//     therefore never deadlock each other; against locked writers a
//     deadlock is possible and retried like any other victim).
//  4. Validation, under those X locks: a chain head on any written
//     key that is pending or stamped after the snapshot means some
//     transaction committed the row since this one began — the
//     second committer aborts with ErrWriteConflict (retryable;
//     nothing was logged, so the abort releases nothing into the
//     chains). The snapshot's own pin guarantees a conflicting node
//     cannot have been GC'd (the watermark never passes the pin).
//  5. Apply: the buffered writes run through the ordinary write
//     methods (siApply flags the re-entry), which log, install
//     version nodes, and maintain indexes exactly like a locked
//     writer. The commit record then publishes stamp + floor under
//     publishMu, so read-only snapshots and locked writers
//     interoperate with SI committers unchanged.
package core

import (
	"errors"
	"fmt"
	"sort"

	"hydra/internal/lock"
	"hydra/internal/obs"
)

// siWrite kinds: the net effect a buffered key carries.
const (
	siWritePut    byte = iota // row exists at commit with value
	siWriteDelete             // row absent at commit
)

// siWrite is one buffered snapshot-isolation write: the key's net
// effect relative to the transaction's snapshot.
type siWrite struct {
	tbl   *Table
	kind  byte
	base  bool   // key existed at the snapshot (fixed at first touch)
	value []byte // owned copy; nil for deletes
}

// BeginSnapshotRW starts a snapshot-isolation writer transaction:
// reads see a fixed snapshot (like BeginSnapshot) and writes buffer
// locally until Commit, which validates first-committer-wins and
// aborts with ErrWriteConflict if any written key was committed by
// another transaction after this one's snapshot. Requires Config.MVCC.
func (e *Engine) BeginSnapshotRW() (*Txn, error) {
	if !e.cfg.MVCC {
		return nil, ErrMVCCDisabled
	}
	if e.closed.Load() {
		return nil, ErrClosed
	}
	t := e.Begin()
	t.snapRW = true
	t.path = obs.PathSIWrite
	t.snap = e.mvcc.pin(t.id)
	if t.writeSet == nil {
		t.writeSet = make(map[verKey]siWrite)
	}
	e.mvcc.siBegins.Inc()
	return t, nil
}

// ExecSI runs fn in a snapshot-isolation writer transaction,
// committing on nil and aborting on error. Write conflicts, expired
// snapshots, and lock victims (deadlock/timeout during the commit
// apply) are retried on a fresh snapshot with the shared capped
// backoff.
func (e *Engine) ExecSI(fn func(tx *Txn) error) error {
	for attempt := 0; ; attempt++ {
		t, err := e.BeginSnapshotRW()
		if err != nil {
			return err
		}
		err = fn(t)
		if err == nil {
			if err = t.Commit(); err == nil {
				return nil
			}
		}
		if t.state == txnActive {
			if aerr := t.Abort(); aerr != nil {
				return fmt.Errorf("core: abort after %v: %w", err, aerr)
			}
		}
		if retryableTxnErr(err) && attempt < maxTxnRetries {
			retrySleep(attempt)
			continue
		}
		return err
	}
}

// siRead is Read/ReadForUpdate on the SI path: the transaction's own
// buffered write wins, otherwise the pinned snapshot answers.
func (t *Txn) siRead(tbl *Table, key uint64) ([]byte, error) {
	if t.snapExpired.Load() {
		return nil, ErrSnapshotExpired
	}
	if w, ok := t.writeSet[verKey{table: tbl.ID, key: key}]; ok {
		if w.kind == siWriteDelete {
			return nil, notFound(tbl, key)
		}
		return append([]byte(nil), w.value...), nil
	}
	return t.snapshotRead(tbl, key)
}

// siStage records w as key's buffered effect, tracking first-touch
// order in siKeys (the scan overlay iterates it; commit sorts it).
func (t *Txn) siStage(k verKey, w siWrite) {
	if _, ok := t.writeSet[k]; !ok {
		t.siKeys = append(t.siKeys, k)
	}
	t.writeSet[k] = w
}

// siBaseExists reports whether key is visible at the snapshot. Used
// only on a key's first touch; afterwards the write set is
// authoritative.
func (t *Txn) siBaseExists(tbl *Table, key uint64) (bool, error) {
	_, err := t.snapshotRead(tbl, key)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	return false, err
}

// siInsert buffers an insert; duplicate keys (against the snapshot
// overlaid with the write set) fail with ErrExists.
func (t *Txn) siInsert(tbl *Table, key uint64, value []byte) error {
	if t.snapExpired.Load() {
		return ErrSnapshotExpired
	}
	k := verKey{table: tbl.ID, key: key}
	if w, ok := t.writeSet[k]; ok {
		if w.kind == siWritePut {
			return fmt.Errorf("%w: table %s key %d", ErrExists, tbl.Name, key)
		}
		w.kind = siWritePut
		w.value = append([]byte(nil), value...)
		t.writeSet[k] = w
		return nil
	}
	exists, err := t.siBaseExists(tbl, key)
	if err != nil {
		return err
	}
	if exists {
		return fmt.Errorf("%w: table %s key %d", ErrExists, tbl.Name, key)
	}
	t.siStage(k, siWrite{tbl: tbl, kind: siWritePut, value: append([]byte(nil), value...)})
	return nil
}

// siUpdate buffers an update; a key absent from the snapshot + write
// set fails with ErrNotFound.
func (t *Txn) siUpdate(tbl *Table, key uint64, value []byte) error {
	if t.snapExpired.Load() {
		return ErrSnapshotExpired
	}
	k := verKey{table: tbl.ID, key: key}
	if w, ok := t.writeSet[k]; ok {
		if w.kind == siWriteDelete {
			return notFound(tbl, key)
		}
		w.value = append([]byte(nil), value...)
		t.writeSet[k] = w
		return nil
	}
	exists, err := t.siBaseExists(tbl, key)
	if err != nil {
		return err
	}
	if !exists {
		return notFound(tbl, key)
	}
	t.siStage(k, siWrite{tbl: tbl, kind: siWritePut, base: true, value: append([]byte(nil), value...)})
	return nil
}

// siDelete buffers a delete; a key absent from the snapshot + write
// set fails with ErrNotFound. Deleting a key this transaction
// inserted nets out: the entry stays for validation but applies
// nothing.
func (t *Txn) siDelete(tbl *Table, key uint64) error {
	if t.snapExpired.Load() {
		return ErrSnapshotExpired
	}
	k := verKey{table: tbl.ID, key: key}
	if w, ok := t.writeSet[k]; ok {
		if w.kind == siWriteDelete {
			return notFound(tbl, key)
		}
		w.kind = siWriteDelete
		w.value = nil
		t.writeSet[k] = w
		return nil
	}
	exists, err := t.siBaseExists(tbl, key)
	if err != nil {
		return err
	}
	if !exists {
		return notFound(tbl, key)
	}
	t.siStage(k, siWrite{tbl: tbl, kind: siWriteDelete, base: true})
	return nil
}

// siScan is Scan on the SI path: the snapshot scan merged, in key
// order, with the transaction's buffered writes — puts override or
// extend the snapshot rows, deletes hide them.
func (t *Txn) siScan(tbl *Table, lo, hi uint64, fn func(key uint64, value []byte) bool) error {
	if t.snapExpired.Load() {
		return ErrSnapshotExpired
	}
	type overlay struct {
		key uint64
		del bool
		val []byte
	}
	var ovl []overlay
	for _, k := range t.siKeys {
		if k.table != tbl.ID || k.key < lo || k.key > hi {
			continue
		}
		w := t.writeSet[k]
		ovl = append(ovl, overlay{key: k.key, del: w.kind == siWriteDelete, val: w.value})
	}
	sort.Slice(ovl, func(i, j int) bool { return ovl[i].key < ovl[j].key })
	i := 0
	stopped := false
	err := t.snapshotScan(tbl, lo, hi, func(key uint64, value []byte) bool {
		for i < len(ovl) && ovl[i].key < key {
			o := ovl[i]
			i++
			if !o.del && !fn(o.key, o.val) {
				stopped = true
				return false
			}
		}
		if i < len(ovl) && ovl[i].key == key {
			o := ovl[i]
			i++
			if o.del {
				return true
			}
			if !fn(key, o.val) {
				stopped = true
				return false
			}
			return true
		}
		if !fn(key, value) {
			stopped = true
			return false
		}
		return true
	})
	if err != nil || stopped {
		return err
	}
	for ; i < len(ovl); i++ {
		if !ovl[i].del && !fn(ovl[i].key, ovl[i].val) {
			return nil
		}
	}
	return nil
}

// abortSIUnlogged retires an SI transaction that has logged nothing —
// the conflict and expiry exits out of commitSI. Locks release, the
// handle retires (dropping the snapshot pin), and err surfaces as the
// retryable abort cause. Nothing was logged, so nothing enters the
// version chains.
func (t *Txn) abortSIUnlogged(err error) error {
	e := t.e
	t.releaseLocks(true)
	obs.TraceEvent(obs.EvAbort, t.id, 0, 0)
	t.finish(txnAborted)
	e.aborts.Inc()
	return err
}

// commitSI validates and applies a snapshot-isolation writer.
// See the package comment at the top of this file for the protocol.
func (t *Txn) commitSI() error {
	if err := t.checkActive(); err != nil {
		return err
	}
	e := t.e
	if t.snapExpired.Load() {
		return t.abortSIUnlogged(ErrSnapshotExpired)
	}
	if len(t.writeSet) == 0 {
		// Read-only SI transaction: nothing to validate or log.
		return t.finishSnapshot(txnCommitted)
	}
	keys := t.siKeys
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.table != b.table {
			return a.table < b.table
		}
		return a.key < b.key
	})
	// Lock in global (table, key) order; a lock error leaves the
	// transaction active and the caller's Abort releases everything.
	for _, k := range keys {
		if err := t.acquire(lock.TableName(k.table), lock.IX); err != nil {
			return err
		}
		if err := t.acquire(lock.RowName(k.table, k.key), lock.X); err != nil {
			return err
		}
	}
	// First-committer-wins validation under the row X locks: see
	// verTable.hasConflict for why the chain head check is sufficient
	// and why the pin makes it sound against GC.
	for _, k := range keys {
		if e.mvcc.hasConflict(k.table, k.key, t.snap, &t.clock) {
			e.mvcc.siConflicts.Inc()
			return t.abortSIUnlogged(ErrWriteConflict)
		}
	}
	// Apply through the ordinary write methods (siApply routes past
	// the buffering branch): validation passed under the X locks, so
	// for every written key the heap state equals the snapshot state
	// and the staged existence decisions hold.
	t.siApply = true
	for _, k := range keys {
		w := t.writeSet[k]
		var err error
		switch {
		case w.kind == siWriteDelete && !w.base:
			continue // insert-then-delete nets out
		case w.kind == siWriteDelete:
			err = t.Delete(w.tbl, k.key)
		case w.base:
			err = t.Update(w.tbl, k.key, w.value)
		default:
			err = t.Insert(w.tbl, k.key, w.value)
		}
		if err != nil {
			// Partially applied: the transaction is logged and active;
			// the caller's Abort runs the normal undo path.
			t.siApply = false
			return err
		}
	}
	t.siApply = false
	if err := t.commitLogged(); err != nil {
		return err
	}
	e.mvcc.siCommits.Inc()
	return nil
}

// maybeExpireSnapshots samples the MaxSnapshotAge scan from the
// writer publish path (txn finish, outside every latch): one registry
// walk per expireEvery version-installing transactions.
func (e *Engine) maybeExpireSnapshots() {
	if e.cfg.MaxSnapshotAge <= 0 {
		return
	}
	if e.mvcc.expireTick.Add(1)%expireEvery != 0 {
		return
	}
	e.expireStaleSnapshots()
}

// expireStaleSnapshots expires every snapshot pin older than
// Config.MaxSnapshotAge: the pins leave the registry (the watermark
// advances and dead versions sweep), and the owning transactions —
// flagged through the active registry, under activeMu so a recycled
// handle can never be hit — fail their next read or commit with
// ErrSnapshotExpired. Returns how many pins were expired.
func (e *Engine) expireStaleSnapshots() int {
	expired, sweepTo := e.mvcc.expireStale(int64(e.cfg.MaxSnapshotAge))
	if len(expired) == 0 {
		return 0
	}
	e.activeMu.Lock()
	for _, id := range expired {
		if t := e.active[id]; t != nil && (t.snapRO || t.snapRW) {
			t.snapExpired.Store(true)
		}
	}
	e.activeMu.Unlock()
	if sweepTo != 0 {
		e.mvcc.sweep(sweepTo)
	}
	return len(expired)
}
