package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"hydra/internal/heap"
	"hydra/internal/page"
)

func TestOpEncodeDecodeRoundTrip(t *testing.T) {
	r := OpRecord{
		Op:     OpUpdate,
		Table:  7,
		Key:    12345,
		RID:    heap.RID{Page: 42, Slot: 3},
		Before: []byte("before"),
		After:  []byte("after-image"),
	}
	got, err := decodeOp(encodeOp(&r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != r.Op || got.Table != r.Table || got.Key != r.Key || got.RID != r.RID ||
		!bytes.Equal(got.Before, r.Before) || !bytes.Equal(got.After, r.After) {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestOpEncodeDecodeQuick(t *testing.T) {
	f := func(op uint8, table uint32, key uint64, pg uint32, slot uint16, before, after []byte) bool {
		r := OpRecord{
			Op: Op(op%4 + 1), Table: table, Key: key,
			RID:    heap.RID{Page: page.ID(pg), Slot: slot},
			Before: before, After: after,
		}
		got, err := decodeOp(encodeOp(&r))
		return err == nil && got.Key == key && got.RID == r.RID &&
			bytes.Equal(got.Before, before) && bytes.Equal(got.After, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeOpErrors(t *testing.T) {
	if _, err := decodeOp(nil); err == nil {
		t.Error("nil payload accepted")
	}
	if _, err := decodeOp(make([]byte, 10)); err == nil {
		t.Error("short payload accepted")
	}
	r := OpRecord{Op: OpInsert, After: []byte("xxxx")}
	enc := encodeOp(&r)
	if _, err := decodeOp(enc[:len(enc)-2]); err == nil {
		t.Error("truncated after-image accepted")
	}
	// Truncate inside the before-image length prefix region.
	r2 := OpRecord{Op: OpUpdate, Before: []byte("aaaaaaaa"), After: []byte("b")}
	enc2 := encodeOp(&r2)
	if _, err := decodeOp(enc2[:23]); err == nil {
		t.Error("truncated before-image accepted")
	}
}

func TestInverseOps(t *testing.T) {
	ins := OpRecord{Op: OpInsert, Table: 1, Key: 2, RID: heap.RID{Page: 3, Slot: 4}, After: []byte("row")}
	inv := ins.inverse()
	if inv.Op != OpDelete || inv.RID != ins.RID || !bytes.Equal(inv.Before, ins.After) {
		t.Fatalf("inverse(insert) = %+v", inv)
	}
	upd := OpRecord{Op: OpUpdate, Before: []byte("old"), After: []byte("new"), RID: ins.RID}
	invU := upd.inverse()
	if invU.Op != OpUpdate || !bytes.Equal(invU.After, []byte("old")) || !bytes.Equal(invU.Before, []byte("new")) {
		t.Fatalf("inverse(update) = %+v", invU)
	}
	del := OpRecord{Op: OpDelete, Before: []byte("gone"), RID: ins.RID}
	invD := del.inverse()
	if invD.Op != OpInsert || !bytes.Equal(invD.After, []byte("gone")) {
		t.Fatalf("inverse(delete) = %+v", invD)
	}
	// Double inverse is identity on the essentials.
	back := invU.inverse()
	if back.Op != OpUpdate || !bytes.Equal(back.After, upd.After) {
		t.Fatalf("double inverse: %+v", back)
	}
	ext := OpRecord{Op: OpExtend}
	if ext.inverse().Op != OpExtend {
		t.Fatal("extend must be redo-only")
	}
}

func TestRowRecordCodec(t *testing.T) {
	rec := rowRecord(99, []byte("value"))
	if rowKey(rec) != 99 {
		t.Fatalf("rowKey = %d", rowKey(rec))
	}
	if string(rowValue(rec)) != "value" {
		t.Fatalf("rowValue = %q", rowValue(rec))
	}
	// Empty value.
	empty := rowRecord(1, nil)
	if len(empty) != 8 || rowKey(empty) != 1 || len(rowValue(empty)) != 0 {
		t.Fatal("empty value codec broken")
	}
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpExtend.String() != "extend" {
		t.Fatal("Op.String mismatch")
	}
	if Op(99).String() != "op(99)" {
		t.Fatal("unknown op string")
	}
}

func TestCatalogCodecQuick(t *testing.T) {
	f := func(n uint8, seed uint64) bool {
		var metas []tableMeta
		for i := 0; i < int(n%20); i++ {
			metas = append(metas, tableMeta{
				ID:        uint32(i + 1),
				HeapFirst: page.ID(seed + uint64(i)),
				Name:      string(rune('a'+i%26)) + "_table",
			})
		}
		got, err := decodeCatalog(encodeCatalog(metas))
		if err != nil {
			return false
		}
		if len(got) != len(metas) {
			return false
		}
		for i := range metas {
			if got[i] != metas[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCatalogDecodeErrors(t *testing.T) {
	if _, err := decodeCatalog(nil); err == nil {
		t.Error("nil catalog accepted")
	}
	enc := encodeCatalog([]tableMeta{{ID: 1, HeapFirst: 2, Name: "users"}})
	if _, err := decodeCatalog(enc[:6]); err == nil {
		t.Error("truncated entry accepted")
	}
	if _, err := decodeCatalog(enc[:len(enc)-2]); err == nil {
		t.Error("truncated name accepted")
	}
}
