package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"hydra/internal/buffer"
	"hydra/internal/rng"
	"hydra/internal/wal"
)

func memEngine(t testing.TB, cfg Config) *Engine {
	t.Helper()
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func configs() map[string]Config {
	return map[string]Config{
		"conventional": Conventional(),
		"scalable":     Scalable(),
	}
}

func TestBasicCRUD(t *testing.T) {
	for name, cfg := range configs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			e := memEngine(t, cfg)
			tbl, err := e.CreateTable("accounts")
			if err != nil {
				t.Fatal(err)
			}
			err = e.Exec(func(tx *Txn) error {
				return tx.Insert(tbl, 1, []byte("alice"))
			})
			if err != nil {
				t.Fatal(err)
			}
			err = e.Exec(func(tx *Txn) error {
				v, err := tx.Read(tbl, 1)
				if err != nil {
					return err
				}
				if string(v) != "alice" {
					return fmt.Errorf("read %q", v)
				}
				return tx.Update(tbl, 1, []byte("alice-2"))
			})
			if err != nil {
				t.Fatal(err)
			}
			err = e.Exec(func(tx *Txn) error {
				v, err := tx.Read(tbl, 1)
				if err != nil {
					return err
				}
				if string(v) != "alice-2" {
					return fmt.Errorf("after update: %q", v)
				}
				return tx.Delete(tbl, 1)
			})
			if err != nil {
				t.Fatal(err)
			}
			err = e.Exec(func(tx *Txn) error {
				_, err := tx.Read(tbl, 1)
				if !errors.Is(err, ErrNotFound) {
					return fmt.Errorf("read after delete: %v", err)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	e := memEngine(t, Conventional())
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("a")) })
	err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("b")) })
	if !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
	// Original value intact.
	e.Exec(func(tx *Txn) error {
		v, err := tx.Read(tbl, 1)
		if err != nil || string(v) != "a" {
			t.Fatalf("read %q, %v", v, err)
		}
		return nil
	})
}

func TestUpdateMissingFails(t *testing.T) {
	e := memEngine(t, Conventional())
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Update(tbl, 42, []byte("x")) }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := e.Exec(func(tx *Txn) error { return tx.Delete(tbl, 42) }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestAbortRollsBack(t *testing.T) {
	for name, cfg := range configs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			e := memEngine(t, cfg)
			tbl, _ := e.CreateTable("t")
			e.Exec(func(tx *Txn) error {
				tx.Insert(tbl, 1, []byte("keep"))
				return tx.Insert(tbl, 2, []byte("keep2"))
			})

			tx := e.Begin()
			if err := tx.Insert(tbl, 3, []byte("doomed")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Update(tbl, 1, []byte("dirty")); err != nil {
				t.Fatal(err)
			}
			if err := tx.Delete(tbl, 2); err != nil {
				t.Fatal(err)
			}
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}

			e.Exec(func(tx *Txn) error {
				if v, err := tx.Read(tbl, 1); err != nil || string(v) != "keep" {
					t.Fatalf("key 1 = %q, %v", v, err)
				}
				if v, err := tx.Read(tbl, 2); err != nil || string(v) != "keep2" {
					t.Fatalf("key 2 = %q, %v", v, err)
				}
				if _, err := tx.Read(tbl, 3); !errors.Is(err, ErrNotFound) {
					t.Fatalf("key 3 survived abort: %v", err)
				}
				return nil
			})
			if e.StatsSnapshot().Aborts != 1 {
				t.Fatal("abort not counted")
			}
		})
	}
}

func TestTxnDoneRejectsFurtherOps(t *testing.T) {
	e := memEngine(t, Conventional())
	tbl, _ := e.CreateTable("t")
	tx := e.Begin()
	tx.Insert(tbl, 1, []byte("a"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert(tbl, 2, []byte("b")); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("insert after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestScan(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 100; i++ {
			if err := tx.Insert(tbl, i*2, []byte{byte(i)}); err != nil {
				return err
			}
		}
		return nil
	})
	var keys []uint64
	e.Exec(func(tx *Txn) error {
		return tx.Scan(tbl, 10, 20, func(k uint64, v []byte) bool {
			keys = append(keys, k)
			return true
		})
	})
	want := []uint64{10, 12, 14, 16, 18, 20}
	if len(keys) != len(want) {
		t.Fatalf("scan = %v", keys)
	}
}

func TestCatalogPersistsAcrossReopen(t *testing.T) {
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	e, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("subscriber")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("subscriber"); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate table: %v", err)
	}
	e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 7, []byte("v")) })
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tbl2, err := e2.Table("subscriber")
	if err != nil {
		t.Fatal(err)
	}
	e2.Exec(func(tx *Txn) error {
		v, err := tx.Read(tbl2, 7)
		if err != nil || string(v) != "v" {
			t.Fatalf("read after reopen: %q, %v", v, err)
		}
		return nil
	})
	if _, err := e2.Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("missing table: %v", err)
	}
}

// Crash = drop the engine without Close (no FlushAll); the WAL and
// whatever pages happened to be flushed are all that survives.
func crash(e *Engine) {
	e.log.Close()
	e.closed.Store(true)
}

func TestCrashRecoveryCommittedSurvive(t *testing.T) {
	for name, cfg := range configs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			store := buffer.NewMemStore()
			dev := wal.NewMem()
			e, err := OpenWith(cfg, store, dev)
			if err != nil {
				t.Fatal(err)
			}
			tbl, _ := e.CreateTable("t")
			for i := uint64(0); i < 500; i++ {
				if err := e.Exec(func(tx *Txn) error {
					return tx.Insert(tbl, i, []byte(fmt.Sprintf("val-%d", i)))
				}); err != nil {
					t.Fatal(err)
				}
			}
			// Update some, delete some — all committed.
			e.Exec(func(tx *Txn) error {
				for i := uint64(0); i < 100; i++ {
					if err := tx.Update(tbl, i, []byte(fmt.Sprintf("upd-%d", i))); err != nil {
						return err
					}
				}
				return nil
			})
			e.Exec(func(tx *Txn) error {
				for i := uint64(400); i < 450; i++ {
					if err := tx.Delete(tbl, i); err != nil {
						return err
					}
				}
				return nil
			})
			crash(e)

			e2, err := OpenWith(cfg, store, dev)
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			rep := e2.RecoveryReport
			if rep.Committed == 0 || rep.Scanned == 0 {
				t.Fatalf("recovery saw nothing: %+v", rep)
			}
			tbl2, _ := e2.Table("t")
			e2.Exec(func(tx *Txn) error {
				for i := uint64(0); i < 500; i++ {
					v, err := tx.Read(tbl2, i)
					switch {
					case i >= 400 && i < 450:
						if !errors.Is(err, ErrNotFound) {
							t.Fatalf("deleted key %d resurfaced: %v", i, err)
						}
					case i < 100:
						if err != nil || string(v) != fmt.Sprintf("upd-%d", i) {
							t.Fatalf("key %d = %q, %v", i, v, err)
						}
					default:
						if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
							t.Fatalf("key %d = %q, %v", i, v, err)
						}
					}
				}
				return nil
			})
		})
	}
}

func TestCrashRecoveryUncommittedRolledBack(t *testing.T) {
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	e, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 50; i++ {
			if err := tx.Insert(tbl, i, []byte("committed")); err != nil {
				return err
			}
		}
		return nil
	})
	// A transaction that never commits: its effects reach the log
	// buffer and even the data pages (via checkpoint) but must vanish.
	tx := e.Begin()
	for i := uint64(100); i < 120; i++ {
		if err := tx.Insert(tbl, i, []byte("loser")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Update(tbl, 5, []byte("loser-update")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete(tbl, 6); err != nil {
		t.Fatal(err)
	}
	// Force the dirty pages (with loser data!) to disk, then crash.
	// The flush makes undo do real physical work at restart; the
	// (fuzzy) checkpoint exercises the ATT path as well.
	if err := e.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	crash(e)

	e2, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.RecoveryReport.LosersUndone != 1 {
		t.Fatalf("losers undone = %d, want 1 (%+v)", e2.RecoveryReport.LosersUndone, e2.RecoveryReport)
	}
	tbl2, _ := e2.Table("t")
	e2.Exec(func(tx *Txn) error {
		for i := uint64(100); i < 120; i++ {
			if _, err := tx.Read(tbl2, i); !errors.Is(err, ErrNotFound) {
				t.Fatalf("loser insert %d survived: %v", i, err)
			}
		}
		if v, err := tx.Read(tbl2, 5); err != nil || string(v) != "committed" {
			t.Fatalf("loser update survived: %q, %v", v, err)
		}
		if v, err := tx.Read(tbl2, 6); err != nil || string(v) != "committed" {
			t.Fatalf("loser delete survived: %q, %v", v, err)
		}
		return nil
	})
}

func TestRecoveryIdempotent(t *testing.T) {
	// Crash again immediately after recovery; a second recovery must
	// land in the same state (redo is idempotent, CLRs guard undo).
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	e, _ := OpenWith(Conventional(), store, dev)
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("a")) })
	tx := e.Begin()
	tx.Insert(tbl, 2, []byte("loser"))
	e.Checkpoint()
	crash(e)

	e2, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	crash(e2) // crash right after recovery, before any new work

	e3, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	tbl3, _ := e3.Table("t")
	e3.Exec(func(tx *Txn) error {
		if v, err := tx.Read(tbl3, 1); err != nil || string(v) != "a" {
			t.Fatalf("key 1: %q, %v", v, err)
		}
		if _, err := tx.Read(tbl3, 2); !errors.Is(err, ErrNotFound) {
			t.Fatalf("loser resurfaced on second recovery: %v", err)
		}
		return nil
	})
}

func TestCrashMidAbortResumesUndo(t *testing.T) {
	// A loser with some CLRs already logged (partial rollback) must
	// complete its rollback at restart without double-undo.
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	e, _ := OpenWith(Conventional(), store, dev)
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("base")) })

	// Build a loser txn by hand: two updates, then one CLR (as if
	// abort got half-way), then crash.
	tx := e.Begin()
	tx.Update(tbl, 1, []byte("v1"))
	tx.Update(tbl, 1, []byte("v2"))
	// Manually undo the second update with a CLR, mimicking a crash
	// mid-abort.
	last := tx.undo[len(tx.undo)-1]
	inv := last.op.inverse()
	clr, err := e.log.Append(&wal.Record{
		Type: wal.RecCLR, TxnID: tx.id, PrevLSN: tx.lastLSN,
		PageID: uint64(inv.RID.Page), UndoNext: last.prev, Payload: encodeOp(&inv),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.applyOp(&inv, uint64(clr), true); err != nil {
		t.Fatal(err)
	}
	e.Checkpoint()
	crash(e)

	e2, err := OpenWith(Conventional(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tbl2, _ := e2.Table("t")
	e2.Exec(func(tx *Txn) error {
		v, err := tx.Read(tbl2, 1)
		if err != nil || string(v) != "base" {
			t.Fatalf("mid-abort recovery: %q, %v (want base)", v, err)
		}
		return nil
	})
}

func TestConcurrentTransfersConserveTotal(t *testing.T) {
	for name, cfg := range configs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			e := memEngine(t, cfg)
			tbl, _ := e.CreateTable("accounts")
			const accounts = 50
			const initial = 1000
			e.Exec(func(tx *Txn) error {
				for i := uint64(0); i < accounts; i++ {
					if err := tx.Insert(tbl, i, encode64(initial)); err != nil {
						return err
					}
				}
				return nil
			})
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					src := rng.New(uint64(w))
					for i := 0; i < 100; i++ {
						from := uint64(src.Intn(accounts))
						to := uint64(src.Intn(accounts))
						if from == to {
							continue
						}
						e.Exec(func(tx *Txn) error {
							// Lock in canonical order to avoid deadlock storms
							// (retries handle the rest).
							a, b := from, to
							if a > b {
								a, b = b, a
							}
							va, err := tx.Read(tbl, a)
							if err != nil {
								return err
							}
							vb, err := tx.Read(tbl, b)
							if err != nil {
								return err
							}
							amount := int64(1 + src.Intn(10))
							fa, fb := decode64(va), decode64(vb)
							if a == from {
								fa -= amount
								fb += amount
							} else {
								fa += amount
								fb -= amount
							}
							if err := tx.Update(tbl, a, encode64(fa)); err != nil {
								return err
							}
							return tx.Update(tbl, b, encode64(fb))
						})
					}
				}(w)
			}
			wg.Wait()
			var total int64
			e.Exec(func(tx *Txn) error {
				return tx.Scan(tbl, 0, ^uint64(0), func(k uint64, v []byte) bool {
					total += decode64(v)
					return true
				})
			})
			if total != accounts*initial {
				t.Fatalf("money not conserved: total = %d, want %d", total, accounts*initial)
			}
		})
	}
}

func encode64(v int64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func decode64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}

func TestLargeValuesRelocationAcrossPages(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("blobs")
	// Values large enough that growth forces delete+reinsert moves.
	e.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 20; i++ {
			if err := tx.Insert(tbl, i, make([]byte, 3000)); err != nil {
				return err
			}
		}
		return nil
	})
	e.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 20; i++ {
			big := make([]byte, 6000)
			big[0] = byte(i)
			if err := tx.Update(tbl, i, big); err != nil {
				return err
			}
		}
		return nil
	})
	e.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 20; i++ {
			v, err := tx.Read(tbl, i)
			if err != nil || len(v) != 6000 || v[0] != byte(i) {
				t.Fatalf("blob %d: len %d, %v", i, len(v), err)
			}
		}
		return nil
	})
}

func TestFileBackedEngine(t *testing.T) {
	dir := t.TempDir()
	cfg := Conventional()
	cfg.Dir = dir
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 9, []byte("disk")) })
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tbl2, err := e2.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	e2.Exec(func(tx *Txn) error {
		v, err := tx.Read(tbl2, 9)
		if err != nil || string(v) != "disk" {
			t.Fatalf("file reopen: %q, %v", v, err)
		}
		return nil
	})
}

func TestSLIAgentTransactions(t *testing.T) {
	cfg := Scalable()
	e := memEngine(t, cfg)
	tbl, _ := e.CreateTable("t")
	agent := e.Locks().NewAgent()
	for i := uint64(0); i < 20; i++ {
		tx := e.BeginWithAgent(agent)
		if err := tx.Insert(tbl, i, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// A retiring agent must surrender its inherited locks; otherwise a
	// table-S requester would wait for the agent's next transaction
	// boundary (which never comes).
	agent.Close()
	e.Exec(func(tx *Txn) error {
		n := 0
		tx.Scan(tbl, 0, ^uint64(0), func(uint64, []byte) bool { n++; return true })
		if n != 20 {
			t.Fatalf("scan found %d", n)
		}
		return nil
	})
}

func TestEngineClosedRejectsWork(t *testing.T) {
	e, err := Open(Conventional())
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	e.Close()
	if _, err := e.CreateTable("t2"); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
	tx := e.Begin()
	if err := tx.Insert(tbl, 1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("insert after close: %v", err)
	}
	if err := e.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestVerifyCleanAndAfterRecovery(t *testing.T) {
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	e, err := OpenWith(Scalable(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := e.CreateTable("t")
	for i := uint64(0); i < 2000; i++ {
		i := i
		if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, i, encode64(int64(i))) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Exec(func(tx *Txn) error {
		for i := uint64(0); i < 100; i++ {
			if err := tx.Delete(tbl, i*3); err != nil {
				return err
			}
		}
		return nil
	})
	if err := e.Verify(); err != nil {
		t.Fatalf("clean engine failed verify: %v", err)
	}
	crash(e)
	e2, err := OpenWith(Scalable(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if err := e2.Verify(); err != nil {
		t.Fatalf("recovered engine failed verify: %v", err)
	}
}

func TestVerifyDetectsIndexDrift(t *testing.T) {
	e := memEngine(t, Scalable())
	tbl, _ := e.CreateTable("t")
	e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("v")) })
	// Corrupt: add an index entry with no heap row.
	if err := tbl.Index.Insert(999, 123456); err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err == nil {
		t.Fatal("Verify missed a dangling index entry")
	}
}
