package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"hydra/internal/buffer"
	"hydra/internal/rng"
	"hydra/internal/wal"
)

// The torture test drives the whole stack — transactions, locking,
// logging, buffer management, checkpoints, crashes, ARIES restart —
// with a long random schedule, cross-checking against an in-memory
// reference model after every crash and at the end. Only committed
// transactions reach the model, so any divergence means an atomicity
// or durability bug.
func TestEngineTortureWithCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test is slow")
	}
	for name, cfg := range configs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			tortureRun(t, cfg, 42, 4000)
		})
	}
}

func tortureRun(t *testing.T, cfg Config, seed uint64, txns int) {
	t.Helper()
	src := rng.New(seed)
	store := buffer.NewMemStore()
	dev := wal.NewMem()

	e, err := OpenWith(cfg, store, dev)
	if err != nil {
		t.Fatal(err)
	}
	const tables = 3
	tbls := make([]*Table, tables)
	for i := range tbls {
		if tbls[i], err = e.CreateTable(fmt.Sprintf("t%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// model mirrors committed state only.
	model := make([]map[uint64][]byte, tables)
	for i := range model {
		model[i] = map[uint64][]byte{}
	}

	reopen := func(crashed bool) {
		if crashed {
			e.Log().Close()
			e.closed.Store(true)
		} else {
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
		}
		e, err = OpenWith(cfg, store, dev)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for i := range tbls {
			if tbls[i], err = e.Table(fmt.Sprintf("t%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	verify := func(tag string) {
		t.Helper()
		if err := e.Verify(); err != nil {
			t.Fatalf("%s: structural verify: %v", tag, err)
		}
		for i, tbl := range tbls {
			got := map[uint64][]byte{}
			err := e.Exec(func(tx *Txn) error {
				return tx.Scan(tbl, 0, ^uint64(0), func(k uint64, v []byte) bool {
					got[k] = append([]byte(nil), v...)
					return true
				})
			})
			if err != nil {
				t.Fatalf("%s: scan t%d: %v", tag, i, err)
			}
			if len(got) != len(model[i]) {
				t.Fatalf("%s: t%d has %d rows, model %d", tag, i, len(got), len(model[i]))
			}
			for k, want := range model[i] {
				if !bytes.Equal(got[k], want) {
					t.Fatalf("%s: t%d key %d = %q, model %q", tag, i, k, got[k], want)
				}
			}
		}
	}

	for n := 0; n < txns; n++ {
		ti := src.Intn(tables)
		tbl := tbls[ti]
		// Build a small transaction: 1-5 ops on one table.
		type pendingOp struct {
			kind int // 0 insert, 1 update, 2 delete
			key  uint64
			val  []byte
		}
		var ops []pendingOp
		for i := 0; i < src.IntRange(1, 5); i++ {
			op := pendingOp{kind: src.Intn(3), key: uint64(src.Intn(200))}
			if op.kind != 2 {
				op.val = make([]byte, src.IntRange(1, 64))
				src.Bytes(op.val)
			}
			ops = append(ops, op)
		}
		willAbort := src.Bool(0.25)

		// Apply to a scratch copy of the model; install only on commit.
		scratch := map[uint64][]byte{}
		for k, v := range model[ti] {
			scratch[k] = v
		}
		tx := e.Begin()
		opErr := false
		for _, op := range ops {
			var err error
			switch op.kind {
			case 0:
				err = tx.Insert(tbl, op.key, op.val)
				if err == nil {
					scratch[op.key] = append([]byte(nil), op.val...)
				} else if !errors.Is(err, ErrExists) {
					t.Fatalf("txn %d insert: %v", n, err)
				}
			case 1:
				err = tx.Update(tbl, op.key, op.val)
				if err == nil {
					scratch[op.key] = append([]byte(nil), op.val...)
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("txn %d update: %v", n, err)
				}
			case 2:
				err = tx.Delete(tbl, op.key)
				if err == nil {
					delete(scratch, op.key)
				} else if !errors.Is(err, ErrNotFound) {
					t.Fatalf("txn %d delete: %v", n, err)
				}
			}
			_ = err
			_ = opErr
		}
		if willAbort {
			if err := tx.Abort(); err != nil {
				t.Fatalf("txn %d abort: %v", n, err)
			}
		} else {
			if err := tx.Commit(); err != nil {
				t.Fatalf("txn %d commit: %v", n, err)
			}
			model[ti] = scratch
		}

		// Occasional maintenance and disasters.
		switch {
		case n%997 == 499:
			if err := e.Checkpoint(); err != nil {
				t.Fatalf("checkpoint at %d: %v", n, err)
			}
		case n%1500 == 750:
			reopen(true) // crash
			verify(fmt.Sprintf("after crash at txn %d", n))
		case n%2100 == 1050:
			reopen(false) // clean restart
			verify(fmt.Sprintf("after clean restart at txn %d", n))
		}
	}
	verify("final")
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// A second seed exercises different interleavings of checkpoints and
// crashes relative to the op stream.
func TestEngineTortureSecondSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test is slow")
	}
	tortureRun(t, Scalable(), 1337, 3000)
}
