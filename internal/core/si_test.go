package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSIRequiresMVCC(t *testing.T) {
	e := memEngine(t, Scalable())
	if _, err := e.BeginSnapshotRW(); !errors.Is(err, ErrMVCCDisabled) {
		t.Fatalf("BeginSnapshotRW without MVCC: %v", err)
	}
}

func TestSIReadYourWritesAndNetEffects(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("base")) }); err != nil {
		t.Fatal(err)
	}
	s, err := e.BeginSnapshotRW()
	if err != nil {
		t.Fatal(err)
	}
	// Existence errors are decided against snapshot + write set.
	if err := s.Insert(tbl, 1, []byte("dup")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if err := s.Update(tbl, 2, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := s.Delete(tbl, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	// Read-your-writes through the overlay.
	if err := s.Update(tbl, 1, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Read(tbl, 1); err != nil || string(v) != "mine" {
		t.Fatalf("read own update: %q, %v", v, err)
	}
	if err := s.Insert(tbl, 2, []byte("new")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Read(tbl, 2); err != nil || string(v) != "new" {
		t.Fatalf("read own insert: %q, %v", v, err)
	}
	// Insert-then-delete nets out.
	if err := s.Insert(tbl, 3, []byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(tbl, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(tbl, 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read netted-out insert: %v", err)
	}
	// Delete-then-insert nets to an update.
	if err := s.Delete(tbl, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(tbl, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read own delete: %v", err)
	}
	if err := s.Insert(tbl, 1, []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// Committed state reflects the net effects.
	want := map[uint64]string{1: "reborn", 2: "new"}
	if err := e.Exec(func(tx *Txn) error {
		for k, w := range want {
			v, err := tx.Read(tbl, k)
			if err != nil {
				return err
			}
			if string(v) != w {
				return fmt.Errorf("key %d = %q, want %q", k, v, w)
			}
		}
		if _, err := tx.Read(tbl, 3); !errors.Is(err, ErrNotFound) {
			return fmt.Errorf("key 3 should be absent: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSIScanMergesOverlay(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error {
		for _, k := range []uint64{10, 20, 30} {
			if err := tx.Insert(tbl, k, []byte(fmt.Sprintf("v%d", k))); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	s, err := e.BeginSnapshotRW()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(tbl, 20); err != nil { // hide a snapshot row
		t.Fatal(err)
	}
	if err := s.Update(tbl, 30, []byte("mine")); err != nil { // override one
		t.Fatal(err)
	}
	if err := s.Insert(tbl, 25, []byte("ins")); err != nil { // add between
		t.Fatal(err)
	}
	if err := s.Insert(tbl, 40, []byte("tail")); err != nil { // add past the walk
		t.Fatal(err)
	}
	var got []string
	if err := s.Scan(tbl, 0, 100, func(k uint64, v []byte) bool {
		got = append(got, fmt.Sprintf("%d=%s", k, v))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"10=v10", "25=ins", "30=mine", "40=tail"}
	if len(got) != len(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan = %v, want %v", got, want)
		}
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestSIFirstCommitterWins is the deterministic conflict matrix:
// every case pins two SI writers on the same snapshot, commits the
// first, and checks what the second committer's validation decides.
func TestSIFirstCommitterWins(t *testing.T) {
	cases := []struct {
		name   string
		first  func(tx *Txn, tbl *Table) error
		second func(tx *Txn, tbl *Table) error
		// wantConflict is the second committer's fate once the first
		// has committed.
		wantConflict bool
	}{
		{
			name:         "disjoint keys commit",
			first:        func(tx *Txn, tbl *Table) error { return tx.Update(tbl, 1, []byte("a")) },
			second:       func(tx *Txn, tbl *Table) error { return tx.Update(tbl, 2, []byte("b")) },
			wantConflict: false,
		},
		{
			name:         "overlapping update aborts second",
			first:        func(tx *Txn, tbl *Table) error { return tx.Update(tbl, 1, []byte("a")) },
			second:       func(tx *Txn, tbl *Table) error { return tx.Update(tbl, 1, []byte("b")) },
			wantConflict: true,
		},
		{
			name:         "write after delete conflicts",
			first:        func(tx *Txn, tbl *Table) error { return tx.Delete(tbl, 1) },
			second:       func(tx *Txn, tbl *Table) error { return tx.Update(tbl, 1, []byte("b")) },
			wantConflict: true,
		},
		{
			name:         "insert racing insert conflicts",
			first:        func(tx *Txn, tbl *Table) error { return tx.Insert(tbl, 9, []byte("a")) },
			second:       func(tx *Txn, tbl *Table) error { return tx.Insert(tbl, 9, []byte("b")) },
			wantConflict: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := mvccEngine(t)
			tbl, _ := e.CreateTable("t")
			if err := e.Exec(func(tx *Txn) error {
				if err := tx.Insert(tbl, 1, []byte("base")); err != nil {
					return err
				}
				return tx.Insert(tbl, 2, []byte("base"))
			}); err != nil {
				t.Fatal(err)
			}
			t1, err := e.BeginSnapshotRW()
			if err != nil {
				t.Fatal(err)
			}
			t2, err := e.BeginSnapshotRW()
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.first(t1, tbl); err != nil {
				t.Fatal(err)
			}
			if err := tc.second(t2, tbl); err != nil {
				t.Fatal(err)
			}
			if err := t1.Commit(); err != nil {
				t.Fatalf("first committer: %v", err)
			}
			err = t2.Commit()
			if tc.wantConflict {
				if !errors.Is(err, ErrWriteConflict) {
					t.Fatalf("second committer: %v, want ErrWriteConflict", err)
				}
				st := e.StatsSnapshot().Mvcc
				if st.SIConflictAborts == 0 {
					t.Fatal("conflict abort not counted")
				}
			} else if err != nil {
				t.Fatalf("second committer on disjoint keys: %v", err)
			}
		})
	}
}

// An SI abort before commit leaves no trace: nothing logged, no
// version nodes installed, data untouched.
func TestSIAbortReleasesNothingIntoChains(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("keep")) }); err != nil {
		t.Fatal(err)
	}
	before := e.StatsSnapshot().Mvcc
	s, err := e.BeginSnapshotRW()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(tbl, 1, []byte("discard")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(tbl, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	after := e.StatsSnapshot().Mvcc
	if after.Installs != before.Installs {
		t.Fatalf("abort installed versions: %d -> %d", before.Installs, after.Installs)
	}
	if after.LiveNodes != before.LiveNodes {
		t.Fatalf("abort changed live nodes: %d -> %d", before.LiveNodes, after.LiveNodes)
	}
	if after.ActiveSnapshots != 0 {
		t.Fatalf("abort leaked a pin: %d active", after.ActiveSnapshots)
	}
	if err := e.Exec(func(tx *Txn) error {
		v, err := tx.Read(tbl, 1)
		if err != nil {
			return err
		}
		if string(v) != "keep" {
			return fmt.Errorf("key 1 = %q after SI abort", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// SI writers and locked writers interoperate: a locked commit after
// the SI snapshot conflicts the SI writer on the shared key.
func TestSIConflictsWithLockedWriter(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("base")) }); err != nil {
		t.Fatal(err)
	}
	s, err := e.BeginSnapshotRW()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(tbl, 1, []byte("si")); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Txn) error { return tx.Update(tbl, 1, []byte("locked")) }); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("SI commit after locked commit: %v, want ErrWriteConflict", err)
	}
	if err := e.Exec(func(tx *Txn) error {
		v, err := tx.Read(tbl, 1)
		if err != nil {
			return err
		}
		if string(v) != "locked" {
			return fmt.Errorf("key 1 = %q, want locked", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// ExecSI retries a write conflict on a fresh snapshot and succeeds.
func TestExecSIRetriesConflict(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte{0}) }); err != nil {
		t.Fatal(err)
	}
	attempts := 0
	if err := e.ExecSI(func(tx *Txn) error {
		attempts++
		if attempts == 1 {
			// Stage the write first so its snapshot predates the
			// conflicting locked commit, then force the conflict.
			if err := tx.Update(tbl, 1, []byte{1}); err != nil {
				return err
			}
			return e.Exec(func(w *Txn) error { return w.Update(tbl, 1, []byte{9}) })
		}
		return tx.Update(tbl, 1, []byte{1})
	}); err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
	st := e.StatsSnapshot().Mvcc
	if st.SIConflictAborts != 1 || st.SICommits == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSIHotKeyStress hammers a few hot keys with concurrent SI
// incrementers under -race: first-committer-wins must lose no update,
// so each key's final value equals the number of commits that won it.
func TestSIHotKeyStress(t *testing.T) {
	e := mvccEngine(t)
	tbl, _ := e.CreateTable("t")
	const hotKeys = 4
	if err := e.Exec(func(tx *Txn) error {
		for k := uint64(0); k < hotKeys; k++ {
			var z [8]byte
			if err := tx.Insert(tbl, k, z[:]); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		iters   = 40
	)
	var committed [hotKeys]atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := uint64((w + i) % hotKeys)
				err := e.ExecSI(func(tx *Txn) error {
					v, err := tx.Read(tbl, k)
					if err != nil {
						return err
					}
					n := binary.LittleEndian.Uint64(v)
					var buf [8]byte
					binary.LittleEndian.PutUint64(buf[:], n+1)
					return tx.Update(tbl, k, buf[:])
				})
				if err == nil {
					committed[k].Add(1)
				} else if !retryableTxnErr(err) {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// A retryable loss (conflict or lock victim) that
				// survived all retries is an allowed outcome under
				// extreme contention; it must simply not count as an
				// applied increment.
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := e.Exec(func(tx *Txn) error {
		for k := uint64(0); k < hotKeys; k++ {
			v, err := tx.Read(tbl, k)
			if err != nil {
				return err
			}
			got := binary.LittleEndian.Uint64(v)
			if want := committed[k].Load(); got != want {
				return fmt.Errorf("key %d = %d, want %d committed increments (lost update)", k, got, want)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	st := e.StatsSnapshot().Mvcc
	if st.SICommits == 0 {
		t.Fatal("no SI commits recorded")
	}
}

// A pin older than MaxSnapshotAge is expired: the watermark advances
// (GC reclaims the chains it pinned) and the owner's next read fails
// with ErrSnapshotExpired.
func TestMaxSnapshotAgeExpiresPin(t *testing.T) {
	cfg := mvccConfig()
	cfg.MaxSnapshotAge = time.Nanosecond
	e := memEngine(t, cfg)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("v0")) }); err != nil {
		t.Fatal(err)
	}
	s, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Grow the chain the pin holds live.
	for i := 0; i < 4; i++ {
		if err := e.Exec(func(tx *Txn) error { return tx.Update(tbl, 1, []byte{byte(i)}) }); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.expireStaleSnapshots(); n != 1 {
		t.Fatalf("expired %d pins, want 1", n)
	}
	if _, err := s.Read(tbl, 1); !errors.Is(err, ErrSnapshotExpired) {
		t.Fatalf("read on expired snapshot: %v", err)
	}
	if err := s.Scan(tbl, 0, 10, func(uint64, []byte) bool { return true }); !errors.Is(err, ErrSnapshotExpired) {
		t.Fatalf("scan on expired snapshot: %v", err)
	}
	st := e.StatsSnapshot().Mvcc
	if st.SnapshotsExpired != 1 {
		t.Fatalf("SnapshotsExpired = %d, want 1", st.SnapshotsExpired)
	}
	if st.ActiveSnapshots != 0 {
		t.Fatalf("ActiveSnapshots = %d, want 0", st.ActiveSnapshots)
	}
	if st.LiveNodes != 0 {
		t.Fatalf("LiveNodes = %d after expiry sweep, want 0", st.LiveNodes)
	}
	// Retiring the expired handle is clean (the pin is already gone).
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

// An expired SI writer fails at commit with the retryable error and
// releases everything.
func TestMaxSnapshotAgeExpiresSIWriter(t *testing.T) {
	cfg := mvccConfig()
	cfg.MaxSnapshotAge = time.Nanosecond
	e := memEngine(t, cfg)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("v0")) }); err != nil {
		t.Fatal(err)
	}
	s, err := e.BeginSnapshotRW()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Update(tbl, 1, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if n := e.expireStaleSnapshots(); n != 1 {
		t.Fatalf("expired %d pins, want 1", n)
	}
	if err := s.Commit(); !errors.Is(err, ErrSnapshotExpired) {
		t.Fatalf("commit on expired snapshot: %v", err)
	}
	if err := e.Exec(func(tx *Txn) error {
		v, err := tx.Read(tbl, 1)
		if err != nil {
			return err
		}
		if string(v) != "v0" {
			return fmt.Errorf("key 1 = %q, want v0", v)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// The expiry check is sampled from the writer publish path: enough
// version-installing commits trip it without any explicit call.
func TestMaxSnapshotAgeSampledFromWriters(t *testing.T) {
	cfg := mvccConfig()
	cfg.MaxSnapshotAge = time.Nanosecond
	e := memEngine(t, cfg)
	tbl, _ := e.CreateTable("t")
	if err := e.Exec(func(tx *Txn) error { return tx.Insert(tbl, 1, []byte("v0")) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BeginSnapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*expireEvery; i++ {
		if err := e.Exec(func(tx *Txn) error { return tx.Update(tbl, 1, []byte{byte(i)}) }); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.StatsSnapshot().Mvcc; st.SnapshotsExpired == 0 {
		t.Fatalf("sampled expiry never fired: %+v", st)
	}
}
