package core

import (
	"encoding/binary"
	"fmt"

	"hydra/internal/invariant"
	"hydra/internal/wal"
)

// Fuzzy checkpointing, ARIES style: a checkpoint writes a
// begin-checkpoint marker, snapshots the active-transaction table
// (ATT) and the dirty-page table (DPT) *without quiescing anything*,
// writes them in an end-checkpoint record, and finally points the
// master record (on the meta page) at the begin marker. Restart
// analysis then starts at the master instead of the log's origin, and
// redo starts at the minimum recLSN in the DPT.

// ckptSnapshot is the end-checkpoint payload.
type ckptSnapshot struct {
	// ATT: active transaction -> lastLSN at snapshot time.
	ATT map[uint64]wal.LSN
	// DPT: dirty page -> recLSN (LSN that first dirtied it).
	DPT map[uint64]uint64
}

func encodeCkpt(s ckptSnapshot) []byte {
	buf := make([]byte, 0, 8+16*(len(s.ATT)+len(s.DPT)))
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put32(uint32(len(s.ATT)))
	for id, lsn := range s.ATT {
		put64(id)
		put64(uint64(lsn))
	}
	put32(uint32(len(s.DPT)))
	for pg, rec := range s.DPT {
		put64(pg)
		put64(rec)
	}
	return buf
}

func decodeCkpt(b []byte) (ckptSnapshot, error) {
	s := ckptSnapshot{ATT: map[uint64]wal.LSN{}, DPT: map[uint64]uint64{}}
	off := 0
	read32 := func() (uint32, bool) {
		if off+4 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, true
	}
	read64 := func() (uint64, bool) {
		if off+8 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v, true
	}
	n, ok := read32()
	if !ok {
		return s, fmt.Errorf("core: checkpoint payload truncated")
	}
	for i := uint32(0); i < n; i++ {
		id, ok1 := read64()
		lsn, ok2 := read64()
		if !ok1 || !ok2 {
			return s, fmt.Errorf("core: checkpoint ATT truncated")
		}
		s.ATT[id] = wal.LSN(lsn)
	}
	m, ok := read32()
	if !ok {
		return s, fmt.Errorf("core: checkpoint DPT count truncated")
	}
	for i := uint32(0); i < m; i++ {
		pg, ok1 := read64()
		rec, ok2 := read64()
		if !ok1 || !ok2 {
			return s, fmt.Errorf("core: checkpoint DPT truncated")
		}
		s.DPT[pg] = rec
	}
	return s, nil
}

// Checkpoint takes a fuzzy checkpoint: no quiescing, no forced page
// flushes. It bounds restart work — analysis starts at the new master
// record, redo at the DPT's minimum recLSN.
func (e *Engine) Checkpoint() error {
	if e.closed.Load() {
		return ErrClosed
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	invariant.Acquired(invariant.TierEngineCkpt, "core.Engine.ckptMu")
	defer invariant.Released(invariant.TierEngineCkpt, "core.Engine.ckptMu")

	// When the log device supports segment recycling, a checkpoint
	// doubles as the page cleaner: flushing dirty pages first empties
	// the DPT so the truncation horizon can advance. (Without
	// recycling the checkpoint stays fully fuzzy.)
	_, recycling := e.logDev.(interface {
		TruncateBefore(wal.LSN) (int, error)
	})
	if recycling {
		if err := e.pool.FlushAll(); err != nil {
			return err
		}
	}

	begin, err := e.log.Append(&wal.Record{Type: wal.RecCheckpoint, PrevLSN: wal.NilLSN})
	if err != nil {
		return err
	}
	snap := ckptSnapshot{ATT: map[uint64]wal.LSN{}, DPT: e.pool.DirtyPageTable()}
	horizon := begin // lowest LSN a future restart could need
	e.activeMu.Lock()
	for id, t := range e.active {
		t.mu.Lock()
		if t.logged {
			snap.ATT[id] = t.lastLSN
			if t.firstLSN < horizon {
				horizon = t.firstLSN // undo chains reach the begin record
			}
		}
		t.mu.Unlock()
	}
	e.activeMu.Unlock()
	for _, recLSN := range snap.DPT {
		if recLSN != 0 && wal.LSN(recLSN) < horizon {
			horizon = wal.LSN(recLSN)
		}
	}
	end, err := e.log.Append(&wal.Record{
		Type:    wal.RecCheckpointEnd,
		PrevLSN: begin,
		Payload: encodeCkpt(snap),
	})
	if err != nil {
		return err
	}
	if err := e.log.WaitFlushed(end); err != nil {
		return err
	}
	// Point the master at the begin record only after the pair is
	// durable; a crash in between simply falls back to the old master.
	e.mu.Lock()
	e.master = begin
	err = e.writeMeta(begin)
	e.mu.Unlock()
	if err != nil {
		return err
	}
	// With the master durable, everything below the horizon is dead:
	// recycle old log segments if the device supports it.
	if tr, ok := e.logDev.(interface {
		TruncateBefore(wal.LSN) (int, error)
	}); ok {
		if _, err := tr.TruncateBefore(horizon); err != nil {
			return fmt.Errorf("core: log truncation: %w", err)
		}
	}
	return nil
}
