// MVCC version table: undo-based in-memory version chains that give
// read-only transactions a lock-free snapshot view.
//
// Writers keep before-images reachable from the row: every logged
// forward operation installs a version node holding the record's
// before-image (nil for inserts) at the head of the row's chain, under
// the same page X latch + Txn.mu window that logs the operation. At
// commit the transaction's nodes are stamped — one atomic store on the
// shared verTxn, visible through every node — with the commit record's
// LSN, and the snapshot floor advances to it. An ABORT publishes the
// same way: after undo has restored the heap rows, the end record's
// LSN stamps the nodes and advances the floor. Either way a stamped
// node means "the heap row stopped reflecting this transaction's write
// at LSN c" — for a commit because the write became permanent there,
// for an abort because undo had restored the before-image by the time
// c was appended. A read-only transaction pins the floor at begin and
// resolves each read by walking the chain for the oldest node whose
// stamp is pending or newer than its snapshot: that node's
// before-image is the row as of the snapshot (nil = the key did not
// exist). No blocking node means the current row is the snapshot row.
// Zero lock-manager traffic either way.
//
// Stamping aborts (rather than unlinking their nodes) is what makes
// the read path race-free: a reader that caught the heap row mid-write
// finds the writer's node still in the chain — pending, or stamped
// with an LSN that is necessarily newer than the reader's snapshot —
// and serves the before-image. An unlink would leave a window where
// the reader's stale row copy survives the chain check.
//
// Publish ordering: for version-installing transactions the
// commit/end record append, the stamp, and the floor advance happen
// under one mutex (publishMu), so the floor only ever names fully
// stamped transactions and advances in LSN order. The floor store
// additionally happens under snapMu — the same mutex pin() holds
// while it loads the floor and registers a snapshot — which, together
// with watermark() loading the floor BEFORE oldestSnap, closes the
// pin/GC race (see watermark).
//
// Chains are volatile: a crash discards them with the process, and
// recovery restarts the floor at the log's next LSN. The per-page
// version epoch (page.VerEpoch) shares this lifetime — stale non-zero
// epochs after a restart cost a chain lookup that misses, never a
// wrong read.
//
// GC: a node whose stamp is at or below the watermark — the oldest
// active snapshot, or the floor when none is active — serves no
// current or future snapshot and is pruned. Writers prune their own
// chain's tail on install; an abort prunes the chains it touched after
// publishing; releasing the oldest snapshot sweeps all shards. Pending
// nodes are never pruned.
package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"hydra/internal/invariant"
	"hydra/internal/obs"
)

// verKey addresses one row's version chain.
type verKey struct {
	table uint32
	key   uint64
}

// verTxn is the per-transaction publish stamp shared by all of the
// transaction's version nodes: one atomic store at publish (commit or
// abort) flips every node from pending (0) to stamped.
type verTxn struct {
	commitLSN atomic.Uint64
}

// verNode is one version: the row's before-image as of the owning
// transaction's write. Nodes are immutable after install except for
// the chain link, which only mutates under the shard mutex.
type verNode struct {
	key    verKey
	txn    *verTxn
	before []byte   // heap record (key|value) before the write; nil = key absent
	next   *verNode // older version
}

// verShardCount shards the chain map; chains are touched once per
// versioned write and once per chain-hitting snapshot read, so modest
// striping suffices.
const verShardCount = 64

// verShard is one stripe of the chain map.
type verShard struct {
	// mu is a leaf bookkeeping mutex (spin tier): critical sections are
	// a map probe plus pointer splices, never IO and never parking.
	mu     sync.Mutex
	chains map[verKey]*verNode
	// perTable counts live chains (keys, not nodes) per table, so a
	// range scan's collectRange can skip stripes that hold nothing for
	// the scanned table instead of walking every resident chain.
	perTable map[uint32]int
}

// lock acquires the shard mutex, feeding the latch profile and
// attributing a contended acquisition to the clock's latch-wait phase
// (the chain-walk wait site). c may be nil.
func (sh *verShard) lock(c *obs.PhaseClock) {
	s := obs.LatchStart(obs.TierMVCCShard)
	if !sh.mu.TryLock() {
		t0 := obs.Now()
		sh.mu.Lock()
		c.Add(obs.PhaseLatchWait, obs.Now()-t0)
	}
	invariant.Acquired(invariant.TierMVCCShard, "core.verShard.mu")
	obs.LatchDone(obs.TierMVCCShard, s)
}

func (sh *verShard) unlock() {
	invariant.Released(invariant.TierMVCCShard, "core.verShard.mu")
	sh.mu.Unlock()
}

// dropChain removes k's (empty) chain entry and its table count.
// Callers hold sh.mu.
func (sh *verShard) dropChain(k verKey) {
	delete(sh.chains, k)
	if n := sh.perTable[k.table] - 1; n > 0 {
		sh.perTable[k.table] = n
	} else {
		delete(sh.perTable, k.table)
	}
}

// noSnapshot is the oldestSnap sentinel when no snapshot is active.
const noSnapshot = ^uint64(0)

// verTable is the engine's version store.
type verTable struct {
	shards [verShardCount]verShard

	// publishMu serializes {commit/end-record append, version stamp,
	// floor advance} for version-installing transactions. The append is
	// a log ring copy (group commit keeps the IO asynchronous), so the
	// critical section is short; correctness needs the three steps
	// indivisible so the floor advances in LSN order over fully
	// stamped transactions only.
	//hydra:vet:coarse -- commit publish lock: held across the WAL ring append by design so snapshot floor, stamp, and commit record advance atomically
	publishMu sync.Mutex

	// snapFloor is the newest published commit-or-abort LSN: the
	// snapshot a new read-only transaction pins. It advances only under
	// snapMu (see publish), which freezes it across pin's
	// load-and-register window.
	snapFloor atomic.Uint64

	// snapMu guards the active-snapshot registry; oldestSnap mirrors
	// its minimum so the install-path watermark read is lock-free.
	snapMu     sync.Mutex
	snaps      map[uint64]uint64 // txn id -> pinned snapshot LSN
	snapBorn   map[uint64]int64  // txn id -> begin stamp (obs.Now)
	oldestSnap atomic.Uint64     // min pinned LSN, noSnapshot when none

	snapBegins obs.Counter // snapshots pinned
	snapReads  obs.Counter // point reads + scans on the snapshot path
	chainReads obs.Counter // reads answered from a version chain
	installs   obs.Counter // version nodes installed
	gcNodes    obs.Counter // nodes reclaimed by prune/sweep
	gcSweeps   obs.Counter // whole-table sweeps
	liveNodes  atomic.Int64

	// Snapshot-isolation writer path (see si.go).
	siBegins    obs.Counter // SI writer transactions begun
	siCommits   obs.Counter // SI writers committed (validation passed)
	siConflicts obs.Counter // SI writers aborted by first-committer-wins
	snapExpired obs.Counter // pins expired by Config.MaxSnapshotAge

	// expireTick samples the MaxSnapshotAge check off the writer
	// publish path: one registry scan per expireEvery publishes, not
	// one per commit.
	expireTick atomic.Uint32
}

func newVerTable() *verTable {
	vt := &verTable{
		snaps:    make(map[uint64]uint64),
		snapBorn: make(map[uint64]int64),
	}
	vt.oldestSnap.Store(noSnapshot)
	for i := range vt.shards {
		vt.shards[i].chains = make(map[verKey]*verNode)
		vt.shards[i].perTable = make(map[uint32]int)
	}
	return vt
}

func (vt *verTable) shard(k verKey) *verShard {
	h := (k.key ^ uint64(k.table)*0x9E3779B97F4A7C15) * 0x9E3779B97F4A7C15
	return &vt.shards[h>>(64-6)] // top bits: verShardCount == 64
}

// publish stamps a transaction's version nodes with lsn and advances
// the snapshot floor to it. Callers hold publishMu (so publishes are
// LSN-ordered); the body runs under snapMu so the floor cannot move
// while pin() is between loading it and registering a snapshot.
func (vt *verTable) publish(v *verTxn, lsn uint64) {
	vt.snapMu.Lock()
	invariant.Acquired(invariant.TierMVCCSnap, "core.verTable.snapMu")
	v.commitLSN.Store(lsn)
	vt.snapFloor.Store(lsn)
	invariant.Released(invariant.TierMVCCSnap, "core.verTable.snapMu")
	vt.snapMu.Unlock()
}

// watermark returns the GC horizon: the oldest active snapshot, or the
// floor when none is active. A node stamped at or below it serves no
// current or future snapshot.
//
// The lock-free read is safe because of its ORDER — floor first, then
// oldestSnap — combined with the floor only advancing under snapMu:
// any pin that registered a snapshot s below the floor value f read
// here must have stored oldestSnap (≤ s) before the floor advanced to
// f, i.e. before this function's floor load, so the subsequent
// oldestSnap load observes it and the result never exceeds an active
// or in-flight snapshot. Pins that begin after the floor load pin the
// then-current floor ≥ f (the floor is monotone). Reading the two in
// the opposite order re-opens the race: a pin could load floor s,
// a writer publish c > s, and a reader that had already seen
// oldestSnap == none return c while snapshot s registers.
func (vt *verTable) watermark() uint64 {
	f := vt.snapFloor.Load()
	if o := vt.oldestSnap.Load(); o != noSnapshot && o < f {
		return o
	}
	return f
}

// pin registers a snapshot for txn id and returns its snapshot LSN.
// snapMu freezes the floor (publish stores it under the same mutex),
// so the snapshot is registered before any later commit can advance
// the watermark past it.
func (vt *verTable) pin(id uint64) uint64 {
	vt.snapMu.Lock()
	invariant.Acquired(invariant.TierMVCCSnap, "core.verTable.snapMu")
	s := vt.snapFloor.Load()
	vt.snaps[id] = s
	vt.snapBorn[id] = obs.Now()
	if old := vt.oldestSnap.Load(); old == noSnapshot || s < old {
		vt.oldestSnap.Store(s)
	}
	invariant.Released(invariant.TierMVCCSnap, "core.verTable.snapMu")
	vt.snapMu.Unlock()
	return s
}

// release unregisters txn id's snapshot; if the departure advanced the
// watermark, the chains are swept under the new horizon.
func (vt *verTable) release(id uint64) {
	vt.snapMu.Lock()
	invariant.Acquired(invariant.TierMVCCSnap, "core.verTable.snapMu")
	if _, ok := vt.snaps[id]; !ok {
		invariant.Released(invariant.TierMVCCSnap, "core.verTable.snapMu")
		vt.snapMu.Unlock()
		return
	}
	old := vt.oldestSnap.Load()
	delete(vt.snaps, id)
	delete(vt.snapBorn, id)
	min := uint64(noSnapshot)
	for _, s := range vt.snaps {
		if s < min {
			min = s
		}
	}
	vt.oldestSnap.Store(min)
	next := min
	if next == noSnapshot {
		next = vt.snapFloor.Load()
	}
	invariant.Released(invariant.TierMVCCSnap, "core.verTable.snapMu")
	vt.snapMu.Unlock()
	// Sweep outside snapMu: pin/release stay short, and the sweep
	// takes only the leaf shard mutexes.
	if next > old {
		vt.sweep(next)
	}
}

// install records a version node for (table, key) with the given
// before-image, linked at the head of the row's chain. Called from
// logOp, inside the page X-latch critical section of the write it
// shadows — which is what makes the snapshot read's post-read chain
// check sufficient: any write a reader observed has its node installed
// before the reader's page latch was granted. The before-image is
// copied into node-owned memory (the caller's arena recycles at txn
// finish; chain nodes outlive it).
func (t *Txn) installVersion(table uint32, key uint64, before []byte) {
	vt := t.e.mvcc
	if t.verTxn == nil {
		t.verTxn = &verTxn{}
	}
	n := &verNode{key: verKey{table: table, key: key}, txn: t.verTxn}
	if before != nil {
		n.before = append([]byte(nil), before...)
	}
	w := vt.watermark()
	sh := vt.shard(n.key)
	sh.lock(&t.clock)
	head, existed := sh.chains[n.key]
	n.next = head
	// Prune the tail the new head obsoletes; n itself is pending and
	// never prunable.
	_, freed := pruneChain(n, w)
	sh.chains[n.key] = n
	if !existed {
		sh.perTable[table]++
	}
	sh.unlock()
	t.verNodes = append(t.verNodes, n)
	vt.installs.Inc()
	if freed > 0 {
		vt.gcNodes.Add(uint64(freed))
	}
	vt.liveNodes.Add(int64(1 - freed))
}

// pruneChain cuts the chain suffix invisible under watermark w: the
// first node (newest-first order) stamped at or below w starts the
// dead tail — every node older than it is stamped no later, and the
// before-images of dead nodes serve only snapshots older than w.
// Returns the surviving head (nil when the whole chain dies) and the
// number of nodes freed.
func pruneChain(head *verNode, w uint64) (*verNode, int) {
	var prev *verNode
	for n := head; n != nil; n = n.next {
		c := n.txn.commitLSN.Load()
		if c != 0 && c <= w {
			freed := 0
			for m := n; m != nil; m = m.next {
				freed++
			}
			if prev == nil {
				return nil, freed
			}
			prev.next = nil
			return head, freed
		}
		prev = n
	}
	return head, 0
}

// resolve walks (table, key)'s chain for snapshot snap. blocked
// reports whether a version newer than the snapshot (or pending)
// covers the row; val is then the visible record — a copy — or nil
// when the key did not exist at the snapshot. blocked == false means
// the current heap row (or index miss) is authoritative.
func (vt *verTable) resolve(table uint32, key uint64, snap uint64, c *obs.PhaseClock) (val []byte, blocked bool) {
	k := verKey{table: table, key: key}
	sh := vt.shard(k)
	sh.lock(c)
	var oldest *verNode
	for n := sh.chains[k]; n != nil; n = n.next {
		cl := n.txn.commitLSN.Load()
		if cl != 0 && cl <= snap {
			break // published at or before the snapshot: visible from here
		}
		oldest = n
	}
	if oldest != nil {
		blocked = true
		if oldest.before != nil {
			val = append([]byte(nil), oldest.before...)
		}
	}
	sh.unlock()
	return val, blocked
}

// collectRange resolves every chained key of table in [lo, hi] for
// snapshot snap. pre maps key -> visible record (nil = invisible at
// snap) for every key whose chain blocks; extras lists, sorted, the
// blocked keys with a visible record — the scan merges them in key
// order so rows deleted after the snapshot still appear. Stripes with
// no chains for the table are skipped via the per-shard table counts,
// so scans over quiet tables pay 64 lock/probe pairs, not a walk over
// every resident chain.
func (vt *verTable) collectRange(table uint32, lo, hi, snap uint64, c *obs.PhaseClock) (pre map[uint64][]byte, extras []uint64) {
	for i := range vt.shards {
		sh := &vt.shards[i]
		sh.lock(c)
		if sh.perTable[table] == 0 {
			sh.unlock()
			continue
		}
		for k, head := range sh.chains {
			if k.table != table || k.key < lo || k.key > hi {
				continue
			}
			var oldest *verNode
			for n := head; n != nil; n = n.next {
				cl := n.txn.commitLSN.Load()
				if cl != 0 && cl <= snap {
					break
				}
				oldest = n
			}
			if oldest == nil {
				continue
			}
			if pre == nil {
				pre = make(map[uint64][]byte)
			}
			if oldest.before == nil {
				pre[k.key] = nil
			} else {
				pre[k.key] = append([]byte(nil), oldest.before...)
				extras = append(extras, k.key)
			}
		}
		sh.unlock()
	}
	sort.Slice(extras, func(i, j int) bool { return extras[i] < extras[j] })
	return pre, extras
}

// hasConflict reports whether (table, key)'s chain blocks a
// snapshot-isolation writer that read snapshot snap: the chain head —
// the newest version — is pending or stamped after snap. Older nodes
// need no inspection (stamps only decrease down the chain), and a head
// at or below snap means nothing committed on the row since the
// snapshot. Callers hold the row's X lock, which (because commit,
// CommitAsync and abort all publish their stamp before releasing
// locks) also guarantees no lock-manager transaction's node is still
// pending; a pending head can then only belong to a lock-bypassing
// writer (DORA partition ownership), and counting it as a conflict is
// the conservative, safe answer.
func (vt *verTable) hasConflict(table uint32, key uint64, snap uint64, c *obs.PhaseClock) bool {
	k := verKey{table: table, key: key}
	sh := vt.shard(k)
	sh.lock(c)
	conflict := false
	if head := sh.chains[k]; head != nil {
		cl := head.txn.commitLSN.Load()
		conflict = cl == 0 || cl > snap
	}
	sh.unlock()
	return conflict
}

// expireEvery samples the MaxSnapshotAge scan: one registry walk per
// this many version-installing publishes.
const expireEvery = 64

// expireStale expires every snapshot pin older than maxAge: the pin
// leaves the registry (advancing the watermark so GC can run) and the
// owning transaction — still holding its handle — discovers the
// expiry on its next read or commit via ErrSnapshotExpired. Returns
// the expired ids and the new GC horizon when the watermark moved
// (0 when it did not); the caller sweeps outside snapMu and marks the
// transactions through the engine's active registry.
func (vt *verTable) expireStale(maxAge int64) (expired []uint64, sweepTo uint64) {
	now := obs.Now()
	vt.snapMu.Lock()
	invariant.Acquired(invariant.TierMVCCSnap, "core.verTable.snapMu")
	for id, born := range vt.snapBorn {
		if age := now - born; age > maxAge {
			expired = append(expired, id)
		}
	}
	if len(expired) > 0 {
		old := vt.oldestSnap.Load()
		for _, id := range expired {
			delete(vt.snaps, id)
			delete(vt.snapBorn, id)
		}
		min := uint64(noSnapshot)
		for _, s := range vt.snaps {
			if s < min {
				min = s
			}
		}
		vt.oldestSnap.Store(min)
		next := min
		if next == noSnapshot {
			next = vt.snapFloor.Load()
		}
		if next > old {
			sweepTo = next
		}
	}
	invariant.Released(invariant.TierMVCCSnap, "core.verTable.snapMu")
	vt.snapMu.Unlock()
	if n := len(expired); n > 0 {
		vt.snapExpired.Add(uint64(n))
	}
	return expired, sweepTo
}

// retireAborted prunes the chains an aborted transaction touched.
// Called after the abort published (stamping the nodes with the end
// record's LSN): with no snapshot pinned the watermark has already
// passed the stamp, so the aborted nodes — and any dead tail below
// them — go at once; with an older snapshot pinned they stay, blocking
// its readers onto the restored before-images, until sweep or a later
// install prunes them.
func (vt *verTable) retireAborted(nodes []*verNode, c *obs.PhaseClock) {
	w := vt.watermark()
	freed := 0
	for _, n := range nodes {
		sh := vt.shard(n.key)
		sh.lock(c)
		if head, ok := sh.chains[n.key]; ok {
			nh, f := pruneChain(head, w)
			freed += f
			if nh == nil {
				sh.dropChain(n.key)
			}
		}
		sh.unlock()
	}
	if freed > 0 {
		vt.gcNodes.Add(uint64(freed))
		vt.liveNodes.Add(int64(-freed))
	}
}

// sweep prunes every chain under watermark w.
func (vt *verTable) sweep(w uint64) {
	freed := 0
	for i := range vt.shards {
		sh := &vt.shards[i]
		sh.lock(nil)
		for k, head := range sh.chains {
			nh, f := pruneChain(head, w)
			freed += f
			if nh == nil {
				sh.dropChain(k)
			}
		}
		sh.unlock()
	}
	if freed > 0 {
		vt.gcNodes.Add(uint64(freed))
		vt.liveNodes.Add(int64(-freed))
	}
	vt.gcSweeps.Inc()
}

// MvccStats aggregates the version store's counters.
type MvccStats struct {
	SnapshotBegins uint64 // read-only snapshots pinned
	SnapshotReads  uint64 // reads + scans served on the snapshot path
	ChainReads     uint64 // reads answered from a version chain
	Installs       uint64 // version nodes installed
	GCNodes        uint64 // nodes reclaimed
	GCSweeps       uint64 // whole-table sweeps
	LiveNodes      int64  // nodes currently linked
	SnapshotFloor  uint64 // newest published commit-or-abort LSN

	SIBegins         uint64 // snapshot-isolation writers begun
	SICommits        uint64 // SI writers committed
	SIConflictAborts uint64 // SI writers aborted by first-committer-wins
	SnapshotsExpired uint64 // pins expired by Config.MaxSnapshotAge

	ActiveSnapshots     int   // snapshots currently pinned
	OldestSnapshotAgeNs int64 // age of the oldest pinned snapshot
}

func (vt *verTable) statsSnapshot() MvccStats {
	st := MvccStats{
		SnapshotBegins: vt.snapBegins.Load(),
		SnapshotReads:  vt.snapReads.Load(),
		ChainReads:     vt.chainReads.Load(),
		Installs:       vt.installs.Load(),
		GCNodes:        vt.gcNodes.Load(),
		GCSweeps:       vt.gcSweeps.Load(),
		LiveNodes:      vt.liveNodes.Load(),
		SnapshotFloor:  vt.snapFloor.Load(),

		SIBegins:         vt.siBegins.Load(),
		SICommits:        vt.siCommits.Load(),
		SIConflictAborts: vt.siConflicts.Load(),
		SnapshotsExpired: vt.snapExpired.Load(),
	}
	vt.snapMu.Lock()
	invariant.Acquired(invariant.TierMVCCSnap, "core.verTable.snapMu")
	st.ActiveSnapshots = len(vt.snaps)
	now := obs.Now()
	for id := range vt.snaps {
		if age := now - vt.snapBorn[id]; age > st.OldestSnapshotAgeNs {
			st.OldestSnapshotAgeNs = age
		}
	}
	invariant.Released(invariant.TierMVCCSnap, "core.verTable.snapMu")
	vt.snapMu.Unlock()
	return st
}
