// Retry policy shared by Exec and ExecSI: which errors are worth
// re-running a transaction for, and how long to back off between
// attempts so victims don't re-collide immediately.
package core

import (
	"errors"
	"math/rand/v2"
	"time"

	"hydra/internal/lock"
)

// maxTxnRetries bounds how many times Exec/ExecSI re-run a retryable
// victim before surfacing the error (so 1 + maxTxnRetries attempts).
const maxTxnRetries = 10

// Backoff window: attempt 0 may retry immediately (full jitter can
// draw zero — the fast path for a transient collision), the window
// doubles per attempt, and the cap keeps the worst case bounded.
const (
	retryBase = 10 * time.Microsecond
	retryCap  = 5 * time.Millisecond
)

// BackoffDelay returns the randomized sleep before retry attempt
// (0-based): full jitter over a capped exponential window,
// uniform in [0, min(retryBase<<attempt, retryCap)). Jitter — not
// just growth — is what de-synchronizes a convoy of victims: equal
// deterministic delays would re-collide the same transactions on
// every round.
func BackoffDelay(attempt int) time.Duration {
	window := retryBase << uint(attempt)
	if window <= 0 || window > retryCap {
		window = retryCap
	}
	return time.Duration(rand.Int64N(int64(window)))
}

// retrySleep sleeps the backoff for a retry attempt. It is a variable
// so tests can count attempts and strip the real delay.
var retrySleep = func(attempt int) { time.Sleep(BackoffDelay(attempt)) }

// retryableTxnErr reports whether err names a transient victim worth
// re-running: lock victims (deadlock, timeout) on any path, and
// write-conflict or expired-snapshot aborts on the SI path.
func retryableTxnErr(err error) bool {
	return errors.Is(err, lock.ErrDeadlock) ||
		errors.Is(err, lock.ErrTimeout) ||
		errors.Is(err, ErrWriteConflict) ||
		errors.Is(err, ErrSnapshotExpired)
}
