package core

import (
	"errors"
	"fmt"

	"hydra/internal/btree"
	"hydra/internal/heap"
	"hydra/internal/lock"
	"hydra/internal/obs"
)

// SecondaryIndex is a value-derived, non-unique index over a table:
// an extractor maps each row to an attribute, and the index supports
// equality and range lookups by that attribute. Entries are stored in
// a B+-tree under the composite key attr<<32 | rowKey, which makes
// non-unique attributes range scans; consequently both the attribute
// and the row keys of an indexed table must fit in 32 bits.
//
// Secondary indexes are derived state, like primary indexes: their
// definitions live in application code (extractors are functions), so
// after reopening an engine the application re-registers them with
// AddIndex, which rebuilds from the table. Transactional maintenance
// — including rollback compensation — is automatic while registered.
type SecondaryIndex struct {
	Name string
	// Extract derives the attribute from a row; returning ok=false
	// leaves the row out of the index (partial index).
	Extract func(key uint64, value []byte) (attr uint64, ok bool)

	tree *btree.Tree
}

// ErrKeyRange is returned when an indexed table's row key or
// extracted attribute exceeds 32 bits.
var ErrKeyRange = errors.New("core: secondary index requires 32-bit keys and attributes")

const u32 = 1<<32 - 1

func sxKey(attr, rowKey uint64) uint64 { return attr<<32 | rowKey }

// AddIndex registers (and builds, from existing rows) a secondary
// index on the table.
func (t *Table) AddIndex(name string, extract func(key uint64, value []byte) (uint64, bool)) (*SecondaryIndex, error) {
	if t.engine.closed.Load() {
		return nil, ErrClosed
	}
	tree, err := btree.Create(t.engine.pool, t.engine.cfg.IndexMode)
	if err != nil {
		return nil, err
	}
	idx := &SecondaryIndex{Name: name, Extract: extract, tree: tree}
	// Build from current contents under a table-level shared lock via
	// a plain engine transaction.
	err = t.engine.Exec(func(tx *Txn) error {
		return tx.Scan(t, 0, ^uint64(0), func(key uint64, value []byte) bool {
			attr, ok := extract(key, value)
			if !ok {
				return true
			}
			if attr > u32 || key > u32 {
				err = ErrKeyRange
				return false
			}
			if ierr := tree.Insert(sxKey(attr, key), key); ierr != nil {
				err = ierr
				return false
			}
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	t.idxMu.Lock()
	t.secondary = append(t.secondary, idx)
	t.idxMu.Unlock()
	return idx, nil
}

// Indexes returns the registered secondary indexes.
func (t *Table) Indexes() []*SecondaryIndex {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	return append([]*SecondaryIndex(nil), t.secondary...)
}

// DropIndex unregisters a secondary index (its pages are reclaimed on
// reorganization).
func (t *Table) DropIndex(name string) bool {
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	for i, idx := range t.secondary {
		if idx.Name == name {
			t.secondary = append(t.secondary[:i], t.secondary[i+1:]...)
			return true
		}
	}
	return false
}

// LookupBy iterates the rows whose extracted attribute is exactly
// attr, in row-key order, under a table-level shared lock.
func (tx *Txn) LookupBy(tbl *Table, idx *SecondaryIndex, attr uint64, fn func(key uint64, value []byte) bool) error {
	return tx.LookupRange(tbl, idx, attr, attr, fn)
}

// LookupRange iterates rows with loAttr <= attribute <= hiAttr in
// (attribute, row-key) order.
func (tx *Txn) LookupRange(tbl *Table, idx *SecondaryIndex, loAttr, hiAttr uint64, fn func(key uint64, value []byte) bool) error {
	if err := tx.checkActive(); err != nil {
		return err
	}
	if loAttr > u32 || hiAttr > u32 {
		return ErrKeyRange
	}
	if err := tx.acquire(lock.TableName(tbl.ID), lock.S); err != nil {
		return err
	}
	var inner error
	err := idx.tree.ScanC(sxKey(loAttr, 0), sxKey(hiAttr, u32), &tx.clock, func(composite, rowKey uint64) bool {
		packed, err := tbl.Index.GetC(rowKey, &tx.clock)
		if err != nil {
			return true // row vanished between index and heap (stale entry)
		}
		rec, err := tbl.Heap.ReadC(heap.Unpack(packed), &tx.clock)
		if err != nil {
			inner = err
			return false
		}
		return fn(rowKey, rowValue(rec))
	})
	if err != nil {
		return err
	}
	return inner
}

// maintainSecondaries applies the index-side effect of a committed-
// or-in-progress row change: oldVal/newVal are nil when absent
// (insert has no old, delete has no new).
func (t *Table) maintainSecondaries(key uint64, oldVal, newVal []byte) error {
	return t.maintainSecondariesC(key, oldVal, newVal, nil)
}

// maintainSecondariesC is maintainSecondaries with a phase clock;
// recovery undo passes nil.
func (t *Table) maintainSecondariesC(key uint64, oldVal, newVal []byte, c *obs.PhaseClock) error {
	t.idxMu.RLock()
	indexes := t.secondary
	t.idxMu.RUnlock()
	if len(indexes) == 0 {
		return nil
	}
	if key > u32 {
		return fmt.Errorf("%w: row key %d", ErrKeyRange, key)
	}
	for _, idx := range indexes {
		var oldAttr, newAttr uint64
		var hadOld, hasNew bool
		if oldVal != nil {
			oldAttr, hadOld = idx.Extract(key, oldVal)
		}
		if newVal != nil {
			newAttr, hasNew = idx.Extract(key, newVal)
		}
		if hadOld && hasNew && oldAttr == newAttr {
			continue
		}
		if hadOld {
			if oldAttr > u32 {
				return fmt.Errorf("%w: attribute %d", ErrKeyRange, oldAttr)
			}
			if err := idx.tree.DeleteC(sxKey(oldAttr, key), c); err != nil && !errors.Is(err, btree.ErrNotFound) {
				return err
			}
		}
		if hasNew {
			if newAttr > u32 {
				return fmt.Errorf("%w: attribute %d", ErrKeyRange, newAttr)
			}
			if err := idx.tree.InsertC(sxKey(newAttr, key), key, c); err != nil {
				return err
			}
		}
	}
	return nil
}
