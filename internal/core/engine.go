// Package core is the storage manager itself — the paper's subject.
// It composes the substrates (buffer pool, write-ahead log, lock
// manager, heap files, B+-tree indexes) into a transactional engine
// with ARIES-style recovery, and exposes two named configurations:
//
//   - Conventional (the "single-threaded Atlas"): centralized lock
//     table, serial log buffer, unpartitioned buffer pool, coarse
//     index locking. Fastest at one thread.
//   - Scalable (the "multi-threaded Lernaean Hydra"): partitioned
//     lock table, Aether-style consolidated log inserts, partitioned
//     buffer pool, latch-crabbing indexes, early lock release.
//
// Every experiment in EXPERIMENTS.md runs the same workload against
// both and reports the crossover.
package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/btree"
	"hydra/internal/buffer"
	"hydra/internal/heap"
	"hydra/internal/latch"
	"hydra/internal/lock"
	"hydra/internal/obs"
	"hydra/internal/page"
	"hydra/internal/wal"
)

// metaPageID is the catalog page.
const metaPageID page.ID = 0

// Config selects the engine's structural variants.
type Config struct {
	// Dir holds the data and log files; empty means fully in-memory
	// (tests and CPU-bound experiments).
	Dir string

	// Frames is the buffer pool size in pages. Default 4096.
	Frames int
	// BufferShards partitions the buffer pool. Default 1.
	BufferShards int
	// LatchKind selects page latch implementation.
	LatchKind latch.Kind

	// LogKind selects the log-insert algorithm.
	LogKind wal.BufferKind
	// LogBufferSize is the WAL ring size. Default 8 MiB.
	LogBufferSize int
	// LogSegmentBytes, when positive (and Dir is set), stores the WAL
	// as fixed-size segment files that checkpoints recycle; 0 keeps a
	// single flat file.
	LogSegmentBytes int64
	// SyncCommit forces commits to wait for log durability.
	SyncCommit bool

	// LockPartitions shards the lock table. Default 1.
	LockPartitions int
	// LockTimeout bounds lock waits (deadlock safety net).
	LockTimeout time.Duration
	// LockEscalation escalates a transaction's row locks on a table
	// to one table lock past this count; 0 disables.
	LockEscalation int

	// IndexMode selects the B+-tree concurrency discipline.
	IndexMode btree.Mode

	// ELR enables early lock release: locks are dropped at the commit
	// record's insertion rather than after its flush.
	ELR bool

	// MVCC enables undo-based version chains and the snapshot-read
	// path (BeginSnapshot): writers keep before-images reachable from
	// the row, stamped with their commit LSN, and read-only snapshot
	// transactions resolve reads against them with zero lock-manager
	// traffic. Off by default in both named configurations — writers
	// pay a version install per logged op, so it is opted into by
	// read-mostly workloads.
	MVCC bool

	// MaxSnapshotAge, when positive, bounds how long one snapshot pin
	// may hold the version-chain GC watermark. A pin older than this is
	// expired by the engine (checked from the writer publish path, so
	// expiry triggers exactly when chains are growing): the watermark
	// advances, dead versions sweep, and the expired transaction's next
	// read or commit fails with ErrSnapshotExpired (retryable). 0 — the
	// default — never expires a pin; long analytic snapshots then stall
	// GC for their whole lifetime.
	MaxSnapshotAge time.Duration
}

// Conventional returns the baseline configuration: every construct in
// its classic centralized form.
func Conventional() Config {
	return Config{
		Frames:         4096,
		BufferShards:   1,
		LatchKind:      latch.Blocking,
		LogKind:        wal.Serial,
		LockPartitions: 1,
		LockTimeout:    2 * time.Second,
		IndexMode:      btree.Coarse,
		SyncCommit:     true,
	}
}

// Scalable returns the configuration with every scalable variant
// switched on.
func Scalable() Config {
	return Config{
		Frames:         4096,
		BufferShards:   16,
		LatchKind:      latch.Spinning,
		LogKind:        wal.Consolidated,
		LockPartitions: 16,
		LockTimeout:    2 * time.Second,
		IndexMode:      btree.Crabbing,
		SyncCommit:     true,
		ELR:            true,
	}
}

func (c *Config) fill() {
	if c.Frames <= 0 {
		c.Frames = 4096
	}
	if c.BufferShards <= 0 {
		c.BufferShards = 1
	}
	if c.LockPartitions <= 0 {
		c.LockPartitions = 1
	}
	if c.LockTimeout <= 0 {
		c.LockTimeout = 2 * time.Second
	}
}

// Errors returned by engine operations.
var (
	ErrClosed      = errors.New("core: engine closed")
	ErrNoTable     = errors.New("core: no such table")
	ErrTableExists = errors.New("core: table already exists")
	ErrExists      = errors.New("core: key already exists")
	ErrNotFound    = errors.New("core: key not found")
	ErrTxnDone     = errors.New("core: transaction already finished")
	// ErrReadOnlyTxn rejects write operations on snapshot transactions.
	ErrReadOnlyTxn = errors.New("core: read-only snapshot transaction")
	// ErrMVCCDisabled rejects BeginSnapshot when Config.MVCC is off.
	ErrMVCCDisabled = errors.New("core: MVCC disabled (Config.MVCC)")
	// ErrWriteConflict aborts a snapshot-isolation writer whose write
	// set intersects a transaction that committed after its snapshot
	// (first committer wins). Retryable: ExecSI re-runs the body on a
	// fresh snapshot, like deadlock/timeout victims on the locked path.
	ErrWriteConflict = errors.New("core: snapshot write conflict (first committer wins)")
	// ErrSnapshotExpired reports that the transaction's snapshot pin
	// was expired by Config.MaxSnapshotAge to unblock version-chain GC.
	// Retryable: a fresh snapshot starts at the current floor.
	ErrSnapshotExpired = errors.New("core: snapshot expired (Config.MaxSnapshotAge)")
)

// Table is a keyed table: a heap file of rows plus a B+-tree index
// from key to record id.
type Table struct {
	ID    uint32
	Name  string
	Heap  *heap.File
	Index *btree.Tree

	engine *Engine

	// secondary indexes (see secondary.go); registered per process.
	idxMu     sync.RWMutex
	secondary []*SecondaryIndex
}

// Engine is the storage manager.
type Engine struct {
	cfg    Config
	store  buffer.PageStore
	pool   *buffer.Pool
	logDev wal.Device
	log    *wal.Log
	locks  *lock.Manager
	// mvcc is the version table backing snapshot reads; always
	// allocated (so stats and release paths need no nil checks), only
	// populated when cfg.MVCC is on.
	mvcc *verTable

	// mu guards the catalog maps. DDL persists its pages synchronously
	// under it; it is a rare-operation lock, not a hot-path guard.
	//hydra:vet:coarse -- catalog/DDL lock: table creation flushes pages under it by design; DDL is rare
	mu          sync.RWMutex
	tables      map[string]*Table
	tablesByID  map[uint32]*Table
	nextTableID uint32

	txnSeq atomic.Uint64
	// commits/aborts are striped (obs.Counter): every worker bumps one
	// of them per transaction, so a shared word would be the kind of
	// hidden global serialization point this engine exists to remove.
	commits obs.Counter
	aborts  obs.Counter
	closed  atomic.Bool

	// active is the live-transaction registry feeding checkpoint ATT
	// snapshots.
	activeMu sync.Mutex
	active   map[uint64]*Txn

	// txnPool recycles finished Txn handles (with their undo slices,
	// encode buffers and lock holders) across Begin/finish cycles. It
	// is per-engine so a pooled handle's Holder stays bound to this
	// engine's lock manager.
	txnPool sync.Pool

	// master is the begin-checkpoint LSN the meta page points at.
	master wal.LSN
	// ckptMu serializes whole checkpoints and backups; a checkpoint is
	// IO from end to end.
	//hydra:vet:coarse -- checkpoint/backup serialization lock: the protected operation is IO by nature
	ckptMu sync.Mutex

	// RecoveryReport describes what the last Open had to repair.
	RecoveryReport Recovery
}

// Open creates or reopens an engine. Reopening a directory (or the
// in-memory stores passed via OpenWith) runs ARIES recovery.
func Open(cfg Config) (*Engine, error) {
	cfg.fill()
	var store buffer.PageStore
	var dev wal.Device
	var err error
	if cfg.Dir == "" {
		store = buffer.NewMemStore()
		dev = wal.NewMem()
	} else {
		store, err = buffer.OpenFileStore(filepath.Join(cfg.Dir, "pages.db"))
		if err != nil {
			return nil, err
		}
		if cfg.LogSegmentBytes > 0 {
			dev, err = wal.OpenSegmented(filepath.Join(cfg.Dir, "wal"), cfg.LogSegmentBytes)
		} else {
			dev, err = wal.OpenFile(filepath.Join(cfg.Dir, "wal.log"))
		}
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	return OpenWith(cfg, store, dev)
}

// OpenWith opens an engine over explicit stores; tests use it to
// simulate crashes by reopening the same in-memory stores.
func OpenWith(cfg Config, store buffer.PageStore, dev wal.Device) (*Engine, error) {
	cfg.fill()
	e := &Engine{
		cfg:        cfg,
		store:      store,
		logDev:     dev,
		tables:     make(map[string]*Table),
		tablesByID: make(map[uint32]*Table),
		active:     make(map[uint64]*Txn),
		master:     wal.NilLSN,
	}
	e.pool = buffer.NewPool(store, buffer.Options{
		Frames:    cfg.Frames,
		Shards:    cfg.BufferShards,
		LatchKind: cfg.LatchKind,
		FlushLog: func(pageLSN uint64) error {
			if pageLSN == 0 {
				return nil
			}
			return e.log.WaitFlushed(wal.LSN(pageLSN))
		},
	})
	var err error
	e.log, err = wal.New(dev, wal.Options{
		Kind:        cfg.LogKind,
		BufferSize:  cfg.LogBufferSize,
		SyncOnFlush: cfg.SyncCommit,
	})
	if err != nil {
		return nil, err
	}
	e.locks = lock.NewManager(lock.Options{
		Partitions:          cfg.LockPartitions,
		WaitTimeout:         cfg.LockTimeout,
		EscalationThreshold: cfg.LockEscalation,
	})
	e.mvcc = newVerTable()

	n, err := store.NumPages()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		// Fresh database: allocate and persist the meta page.
		f, err := e.pool.NewPage(page.TypeMeta)
		if err != nil {
			return nil, err
		}
		if f.ID() != metaPageID {
			return nil, fmt.Errorf("core: meta page allocated as %d", f.ID())
		}
		e.pool.Unpin(f, true)
		if err := e.writeMeta(wal.NilLSN); err != nil {
			return nil, err
		}
		e.mvcc.snapFloor.Store(uint64(e.log.NextLSN()))
		return e, nil
	}
	if err := e.recover(); err != nil {
		return nil, fmt.Errorf("core: recovery: %w", err)
	}
	// Chains are volatile: after (re)open there are no versions, so the
	// snapshot floor is simply "everything durable so far".
	e.mvcc.snapFloor.Store(uint64(e.log.NextLSN()))
	return e, nil
}

// CreateTable creates a keyed table. DDL is synchronously persisted.
func (e *Engine) CreateTable(name string) (*Table, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	h, err := heap.Create(e.pool)
	if err != nil {
		return nil, err
	}
	idx, err := btree.Create(e.pool, e.cfg.IndexMode)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     e.nextTableID + 1,
		Name:   name,
		Heap:   h,
		Index:  idx,
		engine: e,
	}
	e.nextTableID++
	e.installTableLocked(t)
	if err := e.writeMeta(e.master); err != nil {
		return nil, err
	}
	// The table's initial pages (heap head, index root) are created
	// without log records; persist them synchronously so recovery can
	// rely on their existence. DDL is rare.
	if err := e.pool.FlushAll(); err != nil {
		return nil, err
	}
	return t, nil
}

// installTableLocked registers t and wires its logging hooks.
func (e *Engine) installTableLocked(t *Table) {
	tableID := t.ID
	t.Heap.SetExtendHook(func(oldTail, newTail page.ID) (uint64, error) {
		rec := OpRecord{
			Op:    OpExtend,
			Table: tableID,
			Key:   uint64(newTail),
			RID:   heap.RID{Page: oldTail},
		}
		lsn, err := e.log.Append(&wal.Record{
			Type:    wal.RecUpdate,
			TxnID:   0, // system action, never undone
			PrevLSN: wal.NilLSN,
			PageID:  uint64(oldTail),
			Payload: encodeOp(&rec),
		})
		return uint64(lsn), err
	})
	if e.cfg.MVCC {
		t.Heap.SetVersioned(true)
	}
	e.tables[t.Name] = t
	e.tablesByID[t.ID] = t
}

// Table returns the named table.
func (e *Engine) Table(name string) (*Table, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

// Tables lists the catalog.
func (e *Engine) Tables() []*Table {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		out = append(out, t)
	}
	return out
}

// Close flushes and shuts down. The engine is unusable afterwards.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	if err := e.pool.FlushAll(); err != nil {
		return err
	}
	if err := e.log.Close(); err != nil {
		return err
	}
	if err := e.logDev.Close(); err != nil {
		return err
	}
	return e.store.Close()
}

// Stats aggregates subsystem counters.
type Stats struct {
	Commits, Aborts uint64
	Lock            lock.Stats
	Log             wal.Stats
	Buffer          buffer.Stats
	Mvcc            MvccStats
}

// StatsSnapshot returns engine-wide counters.
func (e *Engine) StatsSnapshot() Stats {
	return Stats{
		Commits: e.commits.Load(),
		Aborts:  e.aborts.Load(),
		Lock:    e.locks.StatsSnapshot(),
		Log:     e.log.StatsSnapshot(),
		Buffer:  e.pool.StatsSnapshot(),
		Mvcc:    e.mvcc.statsSnapshot(),
	}
}

// Locks exposes the lock manager (SLI agents, experiments).
func (e *Engine) Locks() *lock.Manager { return e.locks }

// Log exposes the log manager (experiments and tools).
func (e *Engine) Log() *wal.Log { return e.log }

// Pool exposes the buffer pool (experiments and tools).
func (e *Engine) Pool() *buffer.Pool { return e.pool }
