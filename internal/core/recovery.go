package core

import (
	"fmt"

	"hydra/internal/btree"
	"hydra/internal/heap"
	"hydra/internal/page"
	"hydra/internal/wal"
)

// Recovery describes the work a restart performed (for operators and
// tests).
type Recovery struct {
	Master       wal.LSN // begin-checkpoint the analysis started from (NilLSN = origin)
	Scanned      int     // log records scanned during analysis
	Redone       int     // records re-applied
	SkippedByLSN int     // records skipped because the page already had them
	LosersUndone int     // loser transactions rolled back
	UndoOps      int     // compensation actions applied
	Committed    int     // committed transactions observed
	IndexEntries int     // index entries rebuilt
}

// recover runs ARIES restart: analysis from the last checkpoint's
// master record, redo from the dirty-page table's minimum recLSN
// (gated per page by pageLSN), undo of loser transactions with CLR
// logging, and finally index rebuild (indexes are not logged; they
// are derived state).
func (e *Engine) recover() error {
	// Attach tables from the catalog without walking heap chains
	// (chains may need redo first).
	master, metas, err := e.readMeta()
	if err != nil {
		return err
	}
	e.master = master
	e.mu.Lock()
	for _, m := range metas {
		t := &Table{ID: m.ID, Name: m.Name, Heap: heap.Attach(e.pool, m.HeapFirst), engine: e}
		e.installTableLocked(t)
		if m.ID > e.nextTableID {
			e.nextTableID = m.ID
		}
	}
	e.mu.Unlock()

	start := master
	if start == wal.NilLSN {
		start = 0
	}
	recs, err := wal.ScanAll(e.logDev, start)
	if err != nil {
		return fmt.Errorf("log scan: %w", err)
	}
	rep := Recovery{Master: master, Scanned: len(recs)}

	// --- Analysis: transaction table (last LSN, outcome). ---
	type txnInfo struct {
		lastLSN wal.LSN
		ended   bool // commit or completed abort (End record seen)
	}
	att := map[uint64]*txnInfo{}
	var maxTxn uint64
	byLSN := map[wal.LSN]*wal.Record{}
	redoStart := start
	for i := range recs {
		r := &recs[i]
		byLSN[r.LSN] = r
		if r.Type == wal.RecCheckpointEnd {
			snap, err := decodeCkpt(r.Payload)
			if err != nil {
				return fmt.Errorf("analysis at %d: %w", r.LSN, err)
			}
			// Transactions active at the checkpoint that wrote nothing
			// since enter the ATT with their snapshotted chain tails.
			for id, lastLSN := range snap.ATT {
				if _, seen := att[id]; !seen {
					att[id] = &txnInfo{lastLSN: lastLSN}
				}
				if id > maxTxn {
					maxTxn = id
				}
			}
			// Pages dirty at the checkpoint may hold unflushed effects
			// from before it: redo must start at their oldest recLSN.
			for _, recLSN := range snap.DPT {
				if recLSN != 0 && wal.LSN(recLSN) < redoStart {
					redoStart = wal.LSN(recLSN)
				}
			}
			continue
		}
		if r.TxnID == 0 { // system records (chain extension, ckpt-begin)
			continue
		}
		if r.TxnID > maxTxn {
			maxTxn = r.TxnID
		}
		ti := att[r.TxnID]
		if ti == nil {
			ti = &txnInfo{}
			att[r.TxnID] = ti
		}
		ti.lastLSN = r.LSN
		switch r.Type {
		case wal.RecCommit:
			rep.Committed++
			ti.ended = true
		case wal.RecEnd:
			ti.ended = true
		}
	}
	e.txnSeq.Store(maxTxn)

	// --- Redo: re-apply every data record whose page missed it. ---
	redoRecs := recs
	if redoStart < start {
		redoRecs, err = wal.ScanAll(e.logDev, redoStart)
		if err != nil {
			return fmt.Errorf("redo scan: %w", err)
		}
	}
	// The log may reference pages the store never persisted (growth
	// after a fuzzy backup's page copy, or unsynced file extension at
	// a crash): extend the store to cover every referenced id before
	// applying anything.
	var maxPage uint64
	for i := range redoRecs {
		r := &redoRecs[i]
		if r.Type != wal.RecUpdate && r.Type != wal.RecCLR {
			continue
		}
		op, err := decodeOp(r.Payload)
		if err != nil {
			return fmt.Errorf("decode op at %d: %w", r.LSN, err)
		}
		if p := uint64(op.RID.Page); p != uint64(page.InvalidID) && p > maxPage {
			maxPage = p
		}
		if op.Op == OpExtend && op.Key > maxPage {
			maxPage = op.Key
		}
	}
	for {
		n, err := e.store.NumPages()
		if err != nil {
			return err
		}
		if n > maxPage {
			break
		}
		if _, err := e.store.Allocate(); err != nil {
			return fmt.Errorf("extend store for redo: %w", err)
		}
	}

	for i := range redoRecs {
		r := &redoRecs[i]
		if r.Type != wal.RecUpdate && r.Type != wal.RecCLR {
			continue
		}
		op, err := decodeOp(r.Payload)
		if err != nil {
			return fmt.Errorf("decode op at %d: %w", r.LSN, err)
		}
		e.mu.RLock()
		tbl := e.tablesByID[op.Table]
		e.mu.RUnlock()
		if tbl == nil {
			return fmt.Errorf("redo references unknown table %d", op.Table)
		}
		if op.Op == OpExtend {
			// RedoFormat is internally idempotent via pageLSN.
			if err := tbl.Heap.RedoFormat(op.RID.Page, page.ID(op.Key), uint64(r.LSN)); err != nil {
				return fmt.Errorf("redo extend at %d: %w", r.LSN, err)
			}
			rep.Redone++
			continue
		}
		pageLSN, err := tbl.Heap.PageLSN(op.RID.Page)
		if err != nil {
			return fmt.Errorf("redo pageLSN at %d: %w", r.LSN, err)
		}
		if pageLSN >= uint64(r.LSN) {
			rep.SkippedByLSN++
			continue
		}
		if err := e.applyOp(&op, uint64(r.LSN), false); err != nil {
			return fmt.Errorf("redo %v at %d: %w", op.Op, r.LSN, err)
		}
		rep.Redone++
	}

	// lookup returns the record at lsn, reading below the analysis
	// window directly from the device when necessary.
	lookup := func(lsn wal.LSN) (*wal.Record, error) {
		if r, ok := byLSN[lsn]; ok {
			return r, nil
		}
		r, err := wal.ReadRecordAt(e.logDev, lsn)
		if err != nil {
			return nil, err
		}
		r.LSN = lsn
		return &r, nil
	}

	// --- Undo: roll back losers, newest action first. ---
	var uc undoCtx
	for txnID, ti := range att {
		if ti.ended {
			continue
		}
		rep.LosersUndone++
		lastLSN := ti.lastLSN
		cur := lastLSN
		for cur != wal.NilLSN {
			r, err := lookup(cur)
			if err != nil {
				return fmt.Errorf("undo chain of txn %d at %d: %w", txnID, cur, err)
			}
			switch r.Type {
			case wal.RecCLR:
				cur = r.UndoNext
			case wal.RecUpdate:
				op, err := decodeOp(r.Payload)
				if err != nil {
					return fmt.Errorf("undo decode at %d: %w", r.LSN, err)
				}
				if op.Op == OpExtend {
					cur = r.PrevLSN
					continue
				}
				inv := op.inverse()
				clr, err := e.undoOp(txnID, &inv, lastLSN, r.PrevLSN, false, &uc)
				if err != nil {
					return fmt.Errorf("undo %v of txn %d: %w", inv.Op, txnID, err)
				}
				lastLSN = clr
				rep.UndoOps++
				cur = r.PrevLSN
			default: // begin, abort
				cur = r.PrevLSN
			}
		}
		if _, err := e.log.Append(&wal.Record{
			Type: wal.RecEnd, TxnID: txnID, PrevLSN: lastLSN,
		}); err != nil {
			return err
		}
	}
	if err := e.log.Flush(); err != nil {
		return err
	}

	// --- Rebuild: indexes are derived from heap contents. ---
	e.mu.RLock()
	tables := make([]*Table, 0, len(e.tables))
	for _, t := range e.tables {
		tables = append(tables, t)
	}
	e.mu.RUnlock()
	for _, t := range tables {
		if err := t.Heap.RefreshTail(); err != nil {
			return fmt.Errorf("refresh tail of %s: %w", t.Name, err)
		}
		var pairs []btree.KV
		err = t.Heap.Scan(func(rid heap.RID, rec []byte) bool {
			if len(rec) < 8 {
				return true
			}
			pairs = append(pairs, btree.KV{Key: rowKey(rec), Value: rid.Pack()})
			return true
		})
		if err != nil {
			return fmt.Errorf("rebuild scan of %s: %w", t.Name, err)
		}
		btree.SortKVs(pairs)
		idx, err := btree.BulkLoad(e.pool, e.cfg.IndexMode, pairs)
		if err != nil {
			return fmt.Errorf("rebuild index of %s: %w", t.Name, err)
		}
		rep.IndexEntries += len(pairs)
		t.Index = idx
	}
	e.RecoveryReport = rep
	return nil
}
