package lock

import (
	"errors"
	"testing"
	"time"
)

// waitQueueLen polls until name's queue holds at least n waiters
// (white-box: the test shares the package and may peek under p.mu).
//
//hydra:vet:nonpropagating -- the deadlock-variant test polls while deliberately holding a waits-for stripe to park the victim's DFS; the stripe is never taken inside this helper
func waitQueueLen(t *testing.T, m *Manager, name Name, n int) {
	t.Helper()
	p := m.part(name)
	deadline := time.Now().Add(2 * time.Second)
	for {
		p.mu.Lock()
		got := 0
		if lh := p.table[name]; lh != nil {
			got = len(lh.queue)
		}
		p.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue on %s never reached %d waiters (at %d)", name, n, got)
		}
		time.Sleep(time.Millisecond)
	}
}

// assertTablesEmpty checks full lock-head reclamation: once every
// transaction has released, no partition may retain a head.
func assertTablesEmpty(t *testing.T, m *Manager) {
	t.Helper()
	for i := range m.parts {
		p := &m.parts[i]
		p.mu.Lock()
		n := len(p.table)
		p.mu.Unlock()
		if n != 0 {
			t.Fatalf("partition %d retains %d lock heads after full release", i, n)
		}
	}
}

// TestWaiterRemovalRegrantsOnTimeout pins the removeWaiter liveness
// fix, timeout variant: holder S, victim X queued, compatible S
// queued behind it. When the X times out, the S behind it must be
// admitted immediately — the holder never releases during the test,
// so only the removal-path regrant can wake it.
func TestWaiterRemovalRegrantsOnTimeout(t *testing.T) {
	m := NewManager(Options{WaitTimeout: 300 * time.Millisecond})
	r := RowName(1, 1)
	if err := m.Acquire(1, r, S); err != nil {
		t.Fatal(err)
	}
	xErr := make(chan error, 1)
	go func() { xErr <- m.Acquire(2, r, X) }()
	waitQueueLen(t, m, r, 1)

	// Stagger the S so its own timeout budget outlives the victim's by
	// a wide margin: its grant must come from the regrant, not be a
	// photo finish with its own timer.
	time.Sleep(150 * time.Millisecond)
	sErr := make(chan error, 1)
	go func() { sErr <- m.Acquire(3, r, S) }()
	waitQueueLen(t, m, r, 2)

	if err := <-xErr; !errors.Is(err, ErrTimeout) {
		t.Fatalf("victim X: err = %v, want ErrTimeout", err)
	}
	select {
	case err := <-sErr:
		if err != nil {
			t.Fatalf("compatible S behind the timed-out X: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("S behind the timed-out X never granted (regrant missing)")
	}
	if m.Held(1, r) != S {
		t.Fatal("holder's S was disturbed")
	}
	m.ReleaseAll(1)
	m.ReleaseAll(3)
	assertTablesEmpty(t, m)
}

// TestWaiterRemovalRegrantsOnDeadlock is the deadlock variant: the
// victim X self-aborts out of the queue and the compatible S behind
// it must be admitted. A deadlock victim normally removes itself
// immediately after enqueueing; to queue the S behind it
// deterministically, the test holds the waits-for stripe the victim's
// cycle DFS must visit, parking the victim between its enqueue and
// its removal.
func TestWaiterRemovalRegrantsOnDeadlock(t *testing.T) {
	m := NewManager(Options{}) // no timeout: only the deadlock path may remove
	r, r2 := RowName(1, 1), RowName(1, 2)
	t1 := uint64(1)
	t2 := uint64(2)
	for wfIdx(t2) == wfIdx(t1) {
		t2++
	}
	t3 := t2 + 1

	if err := m.Acquire(t2, r2, X); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(t1, r, S); err != nil {
		t.Fatal(err)
	}
	// t1 blocks on r2, installing the t1 -> t2 half of the cycle.
	t1Err := make(chan error, 1)
	go func() { t1Err <- m.Acquire(t1, r2, X) }()
	waitQueueLen(t, m, r2, 1)

	// Park the victim's upcoming DFS: discovering the cycle requires
	// reading t1's out-edges, which live in the stripe we now hold.
	st := &m.wf[wfIdx(t1)]
	st.mu.Lock()
	t2Err := make(chan error, 1)
	go func() { t2Err <- m.Acquire(t2, r, X) }()
	waitQueueLen(t, m, r, 1)
	t3Err := make(chan error, 1)
	go func() { t3Err <- m.Acquire(t3, r, S) }()
	waitQueueLen(t, m, r, 2)
	st.mu.Unlock()

	if err := <-t2Err; !errors.Is(err, ErrDeadlock) {
		t.Fatalf("victim X: err = %v, want ErrDeadlock", err)
	}
	select {
	case err := <-t3Err:
		if err != nil {
			t.Fatalf("compatible S behind the deadlock victim: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("S behind the deadlock victim never granted (regrant missing)")
	}
	if got := m.StatsSnapshot().Deadlocks; got != 1 {
		t.Fatalf("deadlocks = %d, want 1", got)
	}

	// Victim aborts: its release unblocks t1's wait on r2.
	m.ReleaseAll(t2)
	if err := <-t1Err; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(t1)
	m.ReleaseAll(t3)
	assertTablesEmpty(t, m)
}

// TestHeatBoundedUnderDistinctNameChurn churns conflicts over far
// more distinct row names than heatCap and asserts the bounded heat
// table stays under its cap — while hot classification of a genuinely
// hot intent-lock name still works afterwards.
func TestHeatBoundedUnderDistinctNameChurn(t *testing.T) {
	m := NewManager(Options{HotThreshold: 4}) // one partition: worst case for the bound
	waitWaits := func(want uint64) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for m.StatsSnapshot().Waits < want {
			if time.Now().After(deadline) {
				t.Fatalf("conflict never registered (waits < %d)", want)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	for i := 0; i < 3*heatCap; i++ {
		r := RowName(1, uint64(i))
		if err := m.Acquire(1, r, X); err != nil {
			t.Fatal(err)
		}
		prev := m.StatsSnapshot().Waits
		done := make(chan error, 1)
		go func() { done <- m.Acquire(2, r, S) }()
		waitWaits(prev + 1) // the conflict (and its heat bump) is recorded
		m.ReleaseAll(1)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		m.ReleaseAll(2)
	}
	p := &m.parts[0]
	p.mu.Lock()
	n := len(p.heat)
	p.mu.Unlock()
	if n > heatCap {
		t.Fatalf("heat table grew to %d entries, cap %d", n, heatCap)
	}
	if m.StatsSnapshot().HeatEvictions == 0 {
		t.Fatal("no heat evictions recorded despite churn past the cap")
	}

	// A genuinely hot intent name is bumped on every table pass and
	// must classify hot despite the churned table.
	tbl := TableName(9)
	for i := 0; i < m.opts.HotThreshold; i++ {
		txn := uint64(100 + i)
		if err := m.Acquire(txn, tbl, IX); err != nil {
			t.Fatal(err)
		}
		m.ReleaseAll(txn)
	}
	if got := m.contentionOf(tbl); got < m.opts.HotThreshold {
		t.Fatalf("hot intent lock heat = %d, want >= %d (SLI would miss it)", got, m.opts.HotThreshold)
	}
	assertTablesEmpty(t, m)
}

// TestHeatDecayHalvesAndDrops drives one decay sweep directly: counts
// halve and entries that reach zero leave the table, so a once-hot
// name cools off instead of occupying its slot forever.
func TestHeatDecayHalvesAndDrops(t *testing.T) {
	m := NewManager(Options{})
	p := &m.parts[0]
	hot, cold, next := RowName(1, 1), RowName(1, 2), RowName(1, 3)
	p.mu.Lock()
	p.heat[hot] = 8
	p.heat[cold] = 1
	p.heatTicks = heatDecayEvery - 1
	m.bumpHeat(p, next) // crosses the interval: sweep runs first
	gotHot := p.heat[hot]
	_, coldAlive := p.heat[cold]
	gotNext := p.heat[next]
	p.mu.Unlock()
	if gotHot != 4 {
		t.Fatalf("hot count after decay = %d, want 4", gotHot)
	}
	if coldAlive {
		t.Fatal("count-1 entry survived a decay sweep")
	}
	if gotNext != 1 {
		t.Fatalf("bumped name after decay = %d, want 1", gotNext)
	}
}

// TestRetiredHeadRecyclesClean pins the recycle protocol: a retired
// head popped for a different name must carry no stale grants, queue,
// or contention, and must enforce conflicts like a fresh head.
func TestRetiredHeadRecyclesClean(t *testing.T) {
	m := NewManager(Options{})
	a, b := RowName(1, 1), RowName(1, 2)
	if err := m.Acquire(1, a, X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	if st := m.StatsSnapshot(); st.HeadRetires != 1 {
		t.Fatalf("retires = %d after sole release, want 1", st.HeadRetires)
	}

	if err := m.Acquire(2, b, S); err != nil {
		t.Fatal(err)
	}
	st := m.StatsSnapshot()
	if st.HeadRecycles != 1 {
		t.Fatalf("miss on %s did not pop the retired head (recycles=%d, allocs=%d)",
			b, st.HeadRecycles, st.HeadAllocs)
	}
	p := m.part(b)
	p.mu.Lock()
	lh := p.table[b]
	phantom := len(lh.granted) != 1 || lh.granted[2] == nil
	stale := lh.contention != 0 || len(lh.queue) != 0
	p.mu.Unlock()
	if phantom {
		t.Fatal("recycled head carries phantom grants")
	}
	if stale {
		t.Fatal("recycled head carries stale queue/contention state")
	}

	// The S on the recycled head must block a writer like any other.
	done := make(chan error, 1)
	go func() { done <- m.Acquire(3, b, X) }()
	select {
	case <-done:
		t.Fatal("X granted while S held on a recycled head")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
	assertTablesEmpty(t, m)
}
