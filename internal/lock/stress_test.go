package lock

import (
	"errors"
	"sync"
	"testing"
	"time"

	"hydra/internal/rng"
)

// TestManagerConcurrentStress drives every public entry point of the
// manager — holder-based acquisition, the id-based compatibility API,
// SLI agents with inheritance and reclaim, escalation, and ReleaseAll
// — from many goroutines at once. Meant for -race: the holders, the
// striped waits-for graph and the per-partition heat maps all see
// cross-goroutine traffic here.
func TestManagerConcurrentStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	m := NewManager(Options{
		Partitions:          64,
		WaitTimeout:         2 * time.Second,
		HotThreshold:        2,
		EscalationThreshold: 6,
	})
	const (
		workers = 8
		iters   = 300
		tables  = 3
	)
	expected := func(err error) bool {
		return errors.Is(err, ErrDeadlock) || errors.Is(err, ErrTimeout)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w)*104729 + 7)
			var agent *Agent
			if w%2 == 1 {
				agent = m.NewAgent()
				defer agent.Close()
			}
			useHolder := w%4 < 2 // mix holder-based and id-based callers
			for i := 0; i < iters; i++ {
				txn := uint64(w)<<32 | uint64(i+1)
				var h *Holder
				if useHolder {
					h = m.NewHolder(txn)
				}
				acquire := func(name Name, mode Mode) error {
					switch {
					case agent != nil && h != nil:
						return agent.AcquireFor(h, name, mode)
					case agent != nil:
						return agent.Acquire(txn, name, mode)
					case h != nil:
						return h.Acquire(name, mode)
					default:
						return m.Acquire(txn, name, mode)
					}
				}
				release := func() {
					switch {
					case agent != nil && h != nil:
						agent.OnCommitFor(h)
					case agent != nil:
						agent.OnCommit(txn)
					case h != nil:
						h.ReleaseAll()
					default:
						m.ReleaseAll(txn)
					}
				}
				table := uint32(1 + r.Intn(tables))
				ok := true
				if err := acquire(TableName(table), IX); err != nil {
					if !expected(err) {
						t.Errorf("worker %d iter %d: table IX: %v", w, i, err)
					}
					ok = false
				}
				// Enough row locks to cross the escalation threshold on
				// some iterations; a small shared key range forces
				// conflicts and exercises the deadlock detector.
				n := 1 + r.Intn(10)
				for j := 0; j < n && ok; j++ {
					key := uint64(r.Intn(16))
					mode := S
					if r.Bool(0.3) {
						mode = X
					}
					if err := acquire(RowName(table, key), mode); err != nil {
						if !expected(err) {
							t.Errorf("worker %d iter %d: row: %v", w, i, err)
						}
						ok = false
					}
				}
				release()
			}
		}(w)
	}
	wg.Wait()

	// Everything must be released or inherited by compatible agent
	// grants: a fresh transaction can take X on every table.
	for table := uint32(1); table <= tables; table++ {
		if err := m.Acquire(1, TableName(table), X); err != nil {
			t.Fatalf("post-stress X on table %d: %v", table, err)
		}
	}
	m.ReleaseAll(1)
}

// TestLockHeadRecyclingStress churns the full head lifecycle under
// -race: tiny wait timeouts fire removeWaiter constantly, a small hot
// key set keeps heads flipping between live and retired, and every
// path that retires a head (releaseOne, removeWaiter, transfer's
// missing-grant branch) races against the freelist pops of concurrent
// misses. The retire hand-off publishes heads through a CAS on the
// partition freelist, so any touch of recycled state outside the
// protocol shows up as a race or a hydradebug pool assertion.
func TestLockHeadRecyclingStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	m := NewManager(Options{
		Partitions:  4,
		WaitTimeout: 2 * time.Millisecond,
	})
	const (
		workers = 8
		iters   = 400
		keys    = 8
	)
	expected := func(err error) bool {
		return errors.Is(err, ErrDeadlock) || errors.Is(err, ErrTimeout)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w)*7919 + 3)
			h := m.NewHolder(uint64(w+1) << 32)
			for i := 0; i < iters; i++ {
				h.Reset(uint64(w+1)<<32 | uint64(i+1))
				n := 1 + r.Intn(4)
				for j := 0; j < n; j++ {
					mode := S
					if r.Bool(0.5) {
						mode = X
					}
					if err := h.Acquire(RowName(1, uint64(r.Intn(keys))), mode); err != nil {
						if !expected(err) {
							t.Errorf("worker %d iter %d: %v", w, i, err)
						}
						break
					}
				}
				h.ReleaseAll()
			}
		}(w)
	}
	wg.Wait()

	// Full churn must leave nothing behind: every head either granted
	// away and released, or timed out of the queue — so every
	// partition table must be empty, with the freelist having cycled.
	for i := range m.parts {
		p := &m.parts[i]
		p.mu.Lock()
		n := len(p.table)
		p.mu.Unlock()
		if n != 0 {
			t.Errorf("partition %d retains %d heads after stress", i, n)
		}
	}
	st := m.StatsSnapshot()
	if st.HeadRetires == 0 || st.HeadRecycles == 0 {
		t.Fatalf("freelist never cycled: allocs=%d recycles=%d retires=%d",
			st.HeadAllocs, st.HeadRecycles, st.HeadRetires)
	}

	// Recycled heads must still enforce exclusivity correctly.
	for k := uint64(0); k < keys; k++ {
		if err := m.Acquire(1, RowName(1, k), X); err != nil {
			t.Fatalf("post-stress X on key %d: %v", k, err)
		}
	}
	m.ReleaseAll(1)
}
