package lock

import (
	"sync/atomic"
	"testing"
)

// BenchmarkLockAcquireRelease measures the full acquire/release cycle
// of a short transaction — one intent lock, a handful of row locks,
// then ReleaseAll — on a partitioned table with one goroutine per
// core. Rows are disjoint per goroutine, so the numbers isolate
// lock-manager bookkeeping overhead (and its allocations) rather than
// conflict waits.
func BenchmarkLockAcquireRelease(b *testing.B) {
	m := NewManager(Options{Partitions: 64})
	var seq atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		worker := seq.Add(1)
		txn := worker << 32
		i := uint64(0)
		for pb.Next() {
			txn++
			i++
			if err := m.Acquire(txn, TableName(1), IX); err != nil {
				b.Error(err)
				return
			}
			for r := uint64(0); r < 4; r++ {
				key := worker<<40 | i<<2 | r
				if err := m.Acquire(txn, RowName(1, key), X); err != nil {
					b.Error(err)
					return
				}
			}
			m.ReleaseAll(txn)
		}
	})
}

// BenchmarkLockAcquireReleaseHolder is the same cycle through the
// caller-owned Holder path the engine uses: one holder per worker,
// Reset between transactions, so steady state performs no registry
// lookups and no per-transaction map allocation.
func BenchmarkLockAcquireReleaseHolder(b *testing.B) {
	m := NewManager(Options{Partitions: 64})
	var seq atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		worker := seq.Add(1)
		txn := worker << 32
		h := m.NewHolder(txn)
		i := uint64(0)
		for pb.Next() {
			txn++
			i++
			h.Reset(txn)
			if err := h.Acquire(TableName(1), IX); err != nil {
				b.Error(err)
				return
			}
			for r := uint64(0); r < 4; r++ {
				key := worker<<40 | i<<2 | r
				if err := h.Acquire(RowName(1, key), X); err != nil {
					b.Error(err)
					return
				}
			}
			h.ReleaseAll()
		}
	})
}

// BenchmarkAcquireReleaseChurn is the distinct-name churn shape the
// freelist targets: every transaction locks four rows never seen
// before, so each acquire is a table miss and each ReleaseAll retires
// the heads. Without the freelist every miss allocated a lockHead and
// its grant map; with it, steady state pops retired heads back off
// the partition freelist and allocs/op drops to the grants
// themselves. The recycle-ratio metric should sit near 1.0 once warm.
func BenchmarkAcquireReleaseChurn(b *testing.B) {
	m := NewManager(Options{Partitions: 64})
	var seq atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		worker := seq.Add(1)
		txn := worker << 32
		h := m.NewHolder(txn)
		i := uint64(0)
		for pb.Next() {
			txn++
			i++
			h.Reset(txn)
			for r := uint64(0); r < 4; r++ {
				key := worker<<40 | i<<2 | r
				if err := h.Acquire(RowName(1, key), X); err != nil {
					b.Error(err)
					return
				}
			}
			h.ReleaseAll()
		}
	})
	st := m.StatsSnapshot()
	if tot := st.HeadAllocs + st.HeadRecycles; tot > 0 {
		b.ReportMetric(float64(st.HeadRecycles)/float64(tot), "recycle-ratio")
	}
}
