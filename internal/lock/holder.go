package lock

import (
	"sync"

	"hydra/internal/obs"
)

// Holder is a transaction's private lock context: the set of locks it
// holds and its escalation state, carried by the transaction itself
// instead of living in a manager-global map. A transaction has
// exclusive use of its own lock set, so holder updates never contend
// with other transactions — the holder mutex below is only ever
// uncontended (it exists so the id-based compatibility API, which
// hands holders out from a registry, stays race-free under misuse).
//
// Engine transactions create one holder per worker context and Reset
// it between transactions, so steady-state acquisition performs no
// map allocation and touches no manager-global synchronization.
type Holder struct {
	m  *Manager
	id uint64

	// clock, when set, receives the transaction's lock-wait time:
	// the manager's blocking path already measures the wait for its
	// own histogram, so phase attribution costs zero extra clock
	// reads. Written only between transactions (SetClock), read on
	// the owning transaction's wait path.
	clock *obs.PhaseClock

	mu   sync.Mutex
	held map[Name]Mode
	esc  escalationState
}

// NewHolder returns a lock context for the given transaction id. The
// holder is bound to m for its lifetime; use Reset to recycle it for
// a new transaction.
func (m *Manager) NewHolder(txn uint64) *Holder {
	return &Holder{m: m, id: txn, held: make(map[Name]Mode)}
}

// holderRetainCap bounds how large a held map may have grown and
// still be recycled. Go's clear(map) walks the map's full capacity —
// which never shrinks — so after one huge transaction (a bulk load,
// say) a recycled map would pay that transaction's footprint on every
// later clear. Past the bound we drop the map and start small.
const holderRetainCap = 64

func resetLockMap(m map[Name]Mode) map[Name]Mode {
	if len(m) > holderRetainCap {
		return make(map[Name]Mode)
	}
	clear(m)
	return m
}

// Reset recycles the holder for a new transaction. The caller must
// have released all locks of the previous transaction first.
func (h *Holder) Reset(txn uint64) {
	h.mu.Lock()
	h.id = txn
	h.held = resetLockMap(h.held)
	h.esc.clear()
	h.mu.Unlock()
}

// ID returns the transaction id the holder currently represents.
func (h *Holder) ID() uint64 { return h.id }

// SetClock attaches (or detaches, with nil) the phase clock that
// receives this holder's lock-wait time. Call it between
// transactions, alongside Reset.
func (h *Holder) SetClock(c *obs.PhaseClock) { h.clock = c }

// Acquire obtains name in mode for the holder's transaction; see
// Manager.Acquire for the blocking and error contract.
func (h *Holder) Acquire(name Name, mode Mode) error {
	m := h.m
	m.stats.acquires.Add(1)
	if handled, err := m.maybeEscalate(h, name, mode); handled {
		return err
	}
	return m.acquireTable(h, name, mode)
}

// Release drops the holder's lock on name entirely (all re-entrant
// counts).
func (h *Holder) Release(name Name) {
	h.m.releaseOne(h.id, name)
	h.mu.Lock()
	delete(h.held, name)
	h.mu.Unlock()
}

// ReleaseAll drops every lock the holder has (2PL release phase) and
// returns the names released, which SLI agents use to decide what to
// inherit.
func (h *Holder) ReleaseAll() []Name {
	h.m.stats.releaseAll.Add(1)
	names, _ := h.take()
	for _, name := range names {
		h.m.releaseOne(h.id, name)
	}
	return names
}

// Held returns the mode the holder has on name (None if not held).
func (h *Holder) Held(name Name) Mode {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.held[name]
}

// note records a granted (or upgraded) lock.
func (h *Holder) note(name Name, mode Mode) {
	h.mu.Lock()
	h.held[name] = mode
	h.mu.Unlock()
}

// take detaches and returns the held set, clearing the holder's
// bookkeeping (including escalation state) while keeping its maps
// allocated for reuse. The nil, nil return for an empty set preserves
// ReleaseAll's "nothing held" contract.
func (h *Holder) take() ([]Name, []Mode) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.esc.clear()
	if len(h.held) == 0 {
		return nil, nil
	}
	names := make([]Name, 0, len(h.held))
	modes := make([]Mode, 0, len(h.held))
	for n, md := range h.held {
		names = append(names, n)
		modes = append(modes, md)
	}
	h.held = resetLockMap(h.held)
	return names, modes
}

// holderOf returns the registry-backed holder for txn, creating it on
// first use. It serves the id-based compatibility API; engine code
// carries holders directly and never touches the registry.
func (m *Manager) holderOf(txn uint64) *Holder {
	s := &m.reg[regIdx(txn)]
	s.mu.Lock()
	h := s.m[txn]
	if h == nil {
		h = m.NewHolder(txn)
		s.m[txn] = h
	}
	s.mu.Unlock()
	return h
}

// lookupHolder returns txn's registry holder or nil.
func (m *Manager) lookupHolder(txn uint64) *Holder {
	s := &m.reg[regIdx(txn)]
	s.mu.Lock()
	h := s.m[txn]
	s.mu.Unlock()
	return h
}

// takeHolder removes and returns txn's registry holder, or nil.
func (m *Manager) takeHolder(txn uint64) *Holder {
	s := &m.reg[regIdx(txn)]
	s.mu.Lock()
	h := s.m[txn]
	if h != nil {
		delete(s.m, txn)
	}
	s.mu.Unlock()
	return h
}
