package lock

import (
	"testing"
	"time"
)

// heatUp drives enough conflict on a name to cross the hot threshold.
func heatUp(t *testing.T, m *Manager, name Name) {
	t.Helper()
	for i := 0; i < 10; i++ {
		txnA, txnB := uint64(9000+i*2), uint64(9001+i*2)
		if err := m.Acquire(txnA, name, S); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- m.Acquire(txnB, name, X) }() // conflicts: contention++
		time.Sleep(2 * time.Millisecond)
		m.ReleaseAll(txnA)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		m.ReleaseAll(txnB)
	}
}

func TestSLIInheritsHotIntentLocks(t *testing.T) {
	m := NewManager(Options{HotThreshold: 2})
	tbl := TableName(5)
	heatUp(t, m, tbl)

	a := m.NewAgent()
	defer a.Close()

	// First transaction acquires through the table and commits; the
	// hot IX lock should be inherited by the agent.
	if err := a.Acquire(100, tbl, IX); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(100, RowName(5, 1), X); err != nil {
		t.Fatal(err)
	}
	a.OnCommit(100)
	if a.InheritedCount() != 1 {
		t.Fatalf("inherited %d locks, want 1 (the hot table IX)", a.InheritedCount())
	}
	// Row lock must have been fully released, not inherited.
	if err := m.Acquire(200, RowName(5, 1), X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(200)

	// Subsequent transactions on the same agent skip the table.
	before := m.StatsSnapshot()
	for txn := uint64(101); txn <= 110; txn++ {
		if err := a.Acquire(txn, tbl, IX); err != nil {
			t.Fatal(err)
		}
		a.OnCommit(txn)
	}
	after := m.StatsSnapshot()
	if hits := after.Inherited - before.Inherited; hits != 10 {
		t.Fatalf("inherited hits = %d, want 10", hits)
	}
	if tableOps := after.TableOps - before.TableOps; tableOps != 0 {
		t.Fatalf("table ops = %d during inherited acquisitions, want 0", tableOps)
	}
}

func TestSLIIntentLocksStayCompatibleAcrossAgents(t *testing.T) {
	m := NewManager(Options{HotThreshold: 1})
	tbl := TableName(6)
	heatUp(t, m, tbl)

	a1, a2 := m.NewAgent(), m.NewAgent()
	defer a1.Close()
	defer a2.Close()

	if err := a1.Acquire(300, tbl, IX); err != nil {
		t.Fatal(err)
	}
	a1.OnCommit(300)
	if err := a2.Acquire(301, tbl, IX); err != nil {
		t.Fatal(err) // IX + IX compatible even with a1's retained lock
	}
	a2.OnCommit(301)
	if a1.InheritedCount() == 0 || a2.InheritedCount() == 0 {
		t.Fatal("both agents should retain the hot IX")
	}
}

func TestSLIReclaimOnConflict(t *testing.T) {
	m := NewManager(Options{HotThreshold: 1})
	tbl := TableName(7)
	heatUp(t, m, tbl)

	a := m.NewAgent()
	defer a.Close()
	if err := a.Acquire(400, tbl, IX); err != nil {
		t.Fatal(err)
	}
	a.OnCommit(400)
	if a.InheritedCount() != 1 {
		t.Fatal("setup: lock not inherited")
	}

	// Another transaction wants table X: blocked by the agent's
	// retained IX.
	got := make(chan error, 1)
	go func() { got <- m.Acquire(500, tbl, X) }()
	select {
	case <-got:
		t.Fatal("X granted while agent retained IX")
	case <-time.After(20 * time.Millisecond):
	}

	// The agent's next boundary must surrender the retained lock.
	if err := a.Acquire(401, RowName(7, 1), X); err != nil {
		t.Fatal(err)
	}
	a.OnCommit(401)
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("agent never surrendered retained lock")
	}
	if a.InheritedCount() != 0 {
		t.Fatal("cache not cleared after reclaim")
	}
	m.ReleaseAll(500)
}

func TestSLIDoesNotInheritRowOrExclusive(t *testing.T) {
	m := NewManager(Options{HotThreshold: 1})
	row := RowName(8, 1)
	heatUp(t, m, row)
	tbl := TableName(8)
	heatUp(t, m, tbl)

	a := m.NewAgent()
	defer a.Close()
	if err := a.Acquire(600, row, X); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(600, tbl, S); err != nil { // S is not an intent mode
		t.Fatal(err)
	}
	a.OnCommit(600)
	if a.InheritedCount() != 0 {
		t.Fatalf("agent inherited %d non-intent locks", a.InheritedCount())
	}
}

func TestSLIAbortReleasesEverything(t *testing.T) {
	m := NewManager(Options{HotThreshold: 1})
	tbl := TableName(10)
	heatUp(t, m, tbl)
	a := m.NewAgent()
	defer a.Close()
	if err := a.Acquire(700, tbl, IX); err != nil {
		t.Fatal(err)
	}
	a.OnAbort(700)
	if a.InheritedCount() != 0 {
		t.Fatal("abort inherited locks")
	}
	// Table must be immediately lockable in X.
	if err := m.Acquire(701, tbl, X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(701)
}

// TestSLIInheritedHitNotesHolder pins the bookkeeping contract of a
// cache-satisfied AcquireFor: the transaction logically holds the
// lock (Holder.Held reports it) even though the table grant belongs
// to the agent, and the commit boundary neither drops the agent's
// retained grant nor leaves the name in the holder's set.
func TestSLIInheritedHitNotesHolder(t *testing.T) {
	m := NewManager(Options{HotThreshold: 2})
	tbl := TableName(11)
	heatUp(t, m, tbl)

	a := m.NewAgent()
	defer a.Close()

	h := m.NewHolder(900)
	if err := a.AcquireFor(h, tbl, IX); err != nil {
		t.Fatal(err)
	}
	a.OnCommitFor(h)
	if a.InheritedCount() != 1 {
		t.Fatal("setup: hot IX not inherited")
	}

	// Second transaction on the same holder: the acquire is satisfied
	// from the agent cache, never visiting the table.
	h.Reset(901)
	before := m.StatsSnapshot()
	if err := a.AcquireFor(h, tbl, IX); err != nil {
		t.Fatal(err)
	}
	after := m.StatsSnapshot()
	if after.Inherited != before.Inherited+1 {
		t.Fatalf("acquire was not cache-satisfied (inherited %d -> %d)",
			before.Inherited, after.Inherited)
	}
	if got := h.Held(tbl); got != IX {
		t.Fatalf("Holder.Held after inherited hit = %v, want IX", got)
	}

	// The boundary releases h's logical hold; the agent's real table
	// grant and cache entry must survive it.
	a.OnCommitFor(h)
	if a.InheritedCount() != 1 {
		t.Fatal("commit of an inherited hit dropped the agent's retained lock")
	}
	if got := h.Held(tbl); got != None {
		t.Fatalf("Holder.Held after commit = %v, want None", got)
	}

	// The retained grant is real: it still blocks a table X until the
	// agent lets go.
	got := make(chan error, 1)
	go func() { got <- m.Acquire(950, tbl, X) }()
	select {
	case <-got:
		t.Fatal("X granted past the agent's retained IX")
	case <-time.After(20 * time.Millisecond):
	}
	a.ReleaseInherited()
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(950)
}
