package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by Acquire.
var (
	// ErrDeadlock aborts the requester chosen as deadlock victim.
	ErrDeadlock = errors.New("lock: deadlock detected")
	// ErrTimeout aborts a request that waited past the configured bound.
	ErrTimeout = errors.New("lock: wait timed out")
)

// Options configures a Manager.
type Options struct {
	// Partitions shards the lock table; 1 reproduces the conventional
	// centralized design. Default 1.
	Partitions int
	// WaitTimeout bounds any single lock wait; 0 means no timeout
	// (deadlock detection alone breaks cycles). Default 0.
	WaitTimeout time.Duration
	// HotThreshold is the contention count past which SLI considers a
	// lock hot. Default 4.
	HotThreshold int
	// EscalationThreshold is the number of row locks on one table
	// past which the transaction's access escalates to a table lock.
	// 0 disables escalation (the default).
	EscalationThreshold int
}

func (o *Options) fill() {
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.HotThreshold <= 0 {
		o.HotThreshold = 4
	}
}

// Stats are cumulative lock-manager counters.
type Stats struct {
	Acquires   uint64 // logical acquisitions requested
	TableOps   uint64 // acquisitions that reached the lock table
	Inherited  uint64 // acquisitions satisfied from an SLI agent cache
	Waits      uint64 // acquisitions that blocked
	Deadlocks  uint64
	Timeouts   uint64
	Upgrades   uint64
	ReleaseAll uint64
	// Escalations counts row->table lock escalations; EscalatedAcqs
	// counts row requests absorbed by an escalated table lock.
	Escalations   uint64
	EscalatedAcqs uint64
}

type grant struct {
	mode  Mode
	count int // re-entrant acquisitions folded into the same grant
}

type waiter struct {
	txn     uint64
	mode    Mode
	upgrade bool
	ready   chan error
}

type lockHead struct {
	granted map[uint64]*grant
	queue   []*waiter
	// contention is a decaying count of observed conflicts, used by
	// SLI to classify locks as hot.
	contention int
}

type partition struct {
	mu    sync.Mutex
	table map[Name]*lockHead
	_     [32]byte
}

// Manager is the lock table.
type Manager struct {
	opts  Options
	parts []partition

	// held tracks every lock a transaction holds, for ReleaseAll.
	heldMu sync.Mutex
	held   map[uint64]map[Name]Mode

	// waitsFor is the deadlock-detection graph: txn -> txns it waits on.
	wfMu     sync.Mutex
	waitsFor map[uint64]map[uint64]bool

	// agents maps SLI agent pseudo-transactions to their reclaim flag.
	agentsMu sync.Mutex
	agents   map[uint64]*atomic.Bool

	// heat persists observed conflict counts per name, surviving lock
	// head reclamation; SLI consults it to classify hot locks.
	heatMu sync.Mutex
	heat   map[Name]int

	// esc tracks per-transaction lock-escalation state.
	escMu sync.Mutex
	esc   map[uint64]*escalationState

	stats struct {
		acquires, tableOps, inherited atomic.Uint64
		waits, deadlocks, timeouts    atomic.Uint64
		upgrades, releaseAll          atomic.Uint64
		escalations, escalatedAcqs    atomic.Uint64
	}
}

// NewManager returns an empty lock table.
func NewManager(opts Options) *Manager {
	opts.fill()
	m := &Manager{
		opts:     opts,
		parts:    make([]partition, opts.Partitions),
		held:     make(map[uint64]map[Name]Mode),
		waitsFor: make(map[uint64]map[uint64]bool),
		agents:   make(map[uint64]*atomic.Bool),
		heat:     make(map[Name]int),
		esc:      make(map[uint64]*escalationState),
	}
	for i := range m.parts {
		m.parts[i].table = make(map[Name]*lockHead)
	}
	return m
}

func (m *Manager) part(n Name) *partition {
	return &m.parts[n.hash()%uint64(len(m.parts))]
}

// Acquire obtains name in mode for txn, blocking while incompatible
// locks are held. Re-acquisition by the same transaction upgrades to
// the supremum mode. It returns ErrDeadlock when the wait would close
// a cycle (the requester is the victim) and ErrTimeout past the
// configured bound.
func (m *Manager) Acquire(txn uint64, name Name, mode Mode) error {
	m.stats.acquires.Add(1)
	if handled, err := m.maybeEscalate(txn, name, mode); handled {
		return err
	}
	return m.acquireTable(txn, name, mode)
}

func (m *Manager) acquireTable(txn uint64, name Name, mode Mode) error {
	m.stats.tableOps.Add(1)
	if name.Level != LevelRow {
		// Heat tracks how often coarse-grained names pass through the
		// table; SLI classifies frequently re-acquired intent locks as
		// inheritance candidates. (Intent modes are mutually
		// compatible, so conflict counts alone would never find them.)
		m.heatMu.Lock()
		m.heat[name]++
		m.heatMu.Unlock()
	}
	p := m.part(name)
	p.mu.Lock()
	h := p.table[name]
	if h == nil {
		h = &lockHead{granted: make(map[uint64]*grant)}
		p.table[name] = h
	}

	if g, ok := h.granted[txn]; ok {
		target := Supremum(g.mode, mode)
		if target == g.mode {
			g.count++
			p.mu.Unlock()
			m.noteHeld(txn, name, g.mode)
			return nil
		}
		// Upgrade: must be compatible with every other holder.
		if h.compatibleExcept(target, txn) {
			m.stats.upgrades.Add(1)
			g.mode = target
			g.count++
			p.mu.Unlock()
			m.noteHeld(txn, name, target)
			return nil
		}
		// Blocked upgrade: wait at the head of the queue.
		return m.wait(p, h, name, txn, target, true)
	}

	if len(h.queue) == 0 && h.compatibleExcept(mode, txn) {
		h.granted[txn] = &grant{mode: mode, count: 1}
		p.mu.Unlock()
		m.noteHeld(txn, name, mode)
		return nil
	}
	return m.wait(p, h, name, txn, mode, false)
}

// compatibleExcept reports whether mode is compatible with every
// grant other than txn's own.
func (h *lockHead) compatibleExcept(mode Mode, txn uint64) bool {
	for t, g := range h.granted {
		if t == txn {
			continue
		}
		if !Compatible(g.mode, mode) {
			return false
		}
	}
	return true
}

// wait enqueues txn and blocks until granted. Called with p.mu held;
// returns with it released.
func (m *Manager) wait(p *partition, h *lockHead, name Name, txn uint64, mode Mode, upgrade bool) error {
	m.stats.waits.Add(1)
	h.contention++
	m.heatMu.Lock()
	m.heat[name]++
	m.heatMu.Unlock()
	w := &waiter{txn: txn, mode: mode, upgrade: upgrade, ready: make(chan error, 1)}
	if upgrade {
		// Upgraders go first to shrink the conversion window.
		h.queue = append([]*waiter{w}, h.queue...)
	} else {
		h.queue = append(h.queue, w)
	}

	// Record waits-for edges and check for a cycle before sleeping.
	// An upgrader waits only on current holders; a plain waiter also
	// waits on everyone queued ahead of it.
	blockers := make([]uint64, 0, len(h.granted))
	for t := range h.granted {
		if t != txn {
			blockers = append(blockers, t)
		}
	}
	if !upgrade {
		for _, qw := range h.queue {
			if qw == w {
				break
			}
			if qw.txn != txn {
				blockers = append(blockers, qw.txn)
			}
		}
	}
	p.mu.Unlock()

	// If any blocker is an SLI agent's retained lock, ask the agent
	// to surrender it at its next transaction boundary.
	m.flagAgentsAmong(blockers)

	if m.addWaitEdges(txn, blockers) {
		// Cycle: abort self as victim — unless the grant already
		// arrived, in which case there is no wait and no deadlock.
		m.clearWaitEdges(txn)
		if m.removeWaiter(p, h, w) {
			m.stats.deadlocks.Add(1)
			return fmt.Errorf("%w: txn %d on %s (%s)", ErrDeadlock, txn, name, mode)
		}
		if err := <-w.ready; err != nil {
			return err
		}
		m.noteHeld(txn, name, mode)
		return nil
	}

	var timeout <-chan time.Time
	if m.opts.WaitTimeout > 0 {
		t := time.NewTimer(m.opts.WaitTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case err := <-w.ready:
		m.clearWaitEdges(txn)
		if err == nil {
			m.noteHeld(txn, name, mode)
		}
		return err
	case <-timeout:
		m.clearWaitEdges(txn)
		if m.removeWaiter(p, h, w) {
			m.stats.timeouts.Add(1)
			return fmt.Errorf("%w: txn %d on %s (%s)", ErrTimeout, txn, name, mode)
		}
		// Lost the race: the grant arrived as the timer fired.
		if err := <-w.ready; err != nil {
			return err
		}
		m.noteHeld(txn, name, mode)
		return nil
	}
}

// removeWaiter deletes w from the queue, reporting whether it was
// still queued (false means it was already granted or failed).
func (m *Manager) removeWaiter(p *partition, h *lockHead, w *waiter) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, qw := range h.queue {
		if qw == w {
			h.queue = append(h.queue[:i], h.queue[i+1:]...)
			return true
		}
	}
	return false
}

// addWaitEdges installs txn->blockers edges and reports whether doing
// so creates a cycle reachable back to txn.
func (m *Manager) addWaitEdges(txn uint64, blockers []uint64) bool {
	m.wfMu.Lock()
	defer m.wfMu.Unlock()
	set := m.waitsFor[txn]
	if set == nil {
		set = make(map[uint64]bool)
		m.waitsFor[txn] = set
	}
	for _, b := range blockers {
		set[b] = true
	}
	// DFS from txn looking for a path back to txn.
	seen := map[uint64]bool{}
	var stack []uint64
	for b := range set {
		stack = append(stack, b)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == txn {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for nb := range m.waitsFor[cur] {
			stack = append(stack, nb)
		}
	}
	return false
}

func (m *Manager) clearWaitEdges(txn uint64) {
	m.wfMu.Lock()
	delete(m.waitsFor, txn)
	m.wfMu.Unlock()
}

func (m *Manager) noteHeld(txn uint64, name Name, mode Mode) {
	m.heldMu.Lock()
	set := m.held[txn]
	if set == nil {
		set = make(map[Name]Mode)
		m.held[txn] = set
	}
	set[name] = mode
	m.heldMu.Unlock()
}

// Release drops txn's lock on name entirely (all re-entrant counts).
func (m *Manager) Release(txn uint64, name Name) {
	m.releaseOne(txn, name)
	m.heldMu.Lock()
	if set := m.held[txn]; set != nil {
		delete(set, name)
		if len(set) == 0 {
			delete(m.held, txn)
		}
	}
	m.heldMu.Unlock()
}

func (m *Manager) releaseOne(txn uint64, name Name) {
	p := m.part(name)
	p.mu.Lock()
	h := p.table[name]
	if h == nil {
		p.mu.Unlock()
		return
	}
	delete(h.granted, txn)
	m.grantWaitersLocked(h)
	if len(h.granted) == 0 && len(h.queue) == 0 {
		delete(p.table, name)
	}
	p.mu.Unlock()
}

// grantWaitersLocked admits queued waiters from the front while they
// are compatible. Called with the partition mutex held.
func (m *Manager) grantWaitersLocked(h *lockHead) {
	for len(h.queue) > 0 {
		w := h.queue[0]
		if g, ok := h.granted[w.txn]; ok {
			// Upgrade waiter: check against others only.
			target := Supremum(g.mode, w.mode)
			if !h.compatibleExcept(target, w.txn) {
				return
			}
			g.mode = target
			g.count++
		} else {
			if !h.compatibleExcept(w.mode, w.txn) {
				return
			}
			h.granted[w.txn] = &grant{mode: w.mode, count: 1}
		}
		h.queue = h.queue[1:]
		w.ready <- nil
	}
}

// ReleaseAll drops every lock txn holds (2PL release phase). It
// returns the names released, which SLI agents use to decide what to
// inherit.
func (m *Manager) ReleaseAll(txn uint64) []Name {
	m.stats.releaseAll.Add(1)
	m.clearEscalation(txn)
	m.heldMu.Lock()
	set := m.held[txn]
	delete(m.held, txn)
	m.heldMu.Unlock()
	if len(set) == 0 {
		return nil
	}
	names := make([]Name, 0, len(set))
	for name := range set {
		m.releaseOne(txn, name)
		names = append(names, name)
	}
	return names
}

// Held returns the mode txn holds on name (None if not held).
func (m *Manager) Held(txn uint64, name Name) Mode {
	m.heldMu.Lock()
	defer m.heldMu.Unlock()
	if set := m.held[txn]; set != nil {
		return set[name]
	}
	return None
}

// contentionOf reports the cumulative conflict count for name.
func (m *Manager) contentionOf(name Name) int {
	m.heatMu.Lock()
	defer m.heatMu.Unlock()
	return m.heat[name]
}

// StatsSnapshot returns a copy of the cumulative counters.
func (m *Manager) StatsSnapshot() Stats {
	return Stats{
		Acquires:      m.stats.acquires.Load(),
		TableOps:      m.stats.tableOps.Load(),
		Inherited:     m.stats.inherited.Load(),
		Waits:         m.stats.waits.Load(),
		Deadlocks:     m.stats.deadlocks.Load(),
		Timeouts:      m.stats.timeouts.Load(),
		Upgrades:      m.stats.upgrades.Load(),
		ReleaseAll:    m.stats.releaseAll.Load(),
		Escalations:   m.stats.escalations.Load(),
		EscalatedAcqs: m.stats.escalatedAcqs.Load(),
	}
}
