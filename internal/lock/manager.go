package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/hist"
	"hydra/internal/obs"
)

// Errors returned by Acquire.
var (
	// ErrDeadlock aborts the requester chosen as deadlock victim.
	ErrDeadlock = errors.New("lock: deadlock detected")
	// ErrTimeout aborts a request that waited past the configured bound.
	ErrTimeout = errors.New("lock: wait timed out")
)

// Options configures a Manager.
type Options struct {
	// Partitions shards the lock table; 1 reproduces the conventional
	// centralized design. Default 1.
	Partitions int
	// WaitTimeout bounds any single lock wait; 0 means no timeout
	// (deadlock detection alone breaks cycles). Default 0.
	WaitTimeout time.Duration
	// HotThreshold is the contention count past which SLI considers a
	// lock hot. Default 4.
	HotThreshold int
	// EscalationThreshold is the number of row locks on one table
	// past which the transaction's access escalates to a table lock.
	// 0 disables escalation (the default).
	EscalationThreshold int
}

func (o *Options) fill() {
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.HotThreshold <= 0 {
		o.HotThreshold = 4
	}
}

// Stats are cumulative lock-manager counters.
type Stats struct {
	Acquires   uint64 // logical acquisitions requested
	TableOps   uint64 // acquisitions that reached the lock table
	Inherited  uint64 // acquisitions satisfied from an SLI agent cache
	Waits      uint64 // acquisitions that blocked
	Deadlocks  uint64
	Timeouts   uint64
	Upgrades   uint64
	ReleaseAll uint64
	// Escalations counts row->table lock escalations; EscalatedAcqs
	// counts row requests absorbed by an escalated table lock.
	Escalations   uint64
	EscalatedAcqs uint64
}

type grant struct {
	mode  Mode
	count int // re-entrant acquisitions folded into the same grant
}

type waiter struct {
	txn     uint64
	mode    Mode
	upgrade bool
	ready   chan error
}

type lockHead struct {
	granted map[uint64]*grant
	queue   []*waiter
	// contention is a decaying count of observed conflicts, used by
	// SLI to classify locks as hot.
	contention int
}

type partition struct {
	mu    sync.Mutex
	table map[Name]*lockHead
	// heat persists observed conflict counts per name, surviving lock
	// head reclamation; SLI consults it to classify hot locks. Striped
	// with the partition so it rides the same mutex instead of a
	// global one.
	heat map[Name]int
	_    [32]byte
}

// wfStripes shards the waits-for graph so deadlock bookkeeping from
// unrelated transactions never touches the same mutex.
const wfStripes = 64

type wfStripe struct {
	mu sync.Mutex
	// edges maps txn -> txns it waits on, for transactions hashed to
	// this stripe.
	edges map[uint64]map[uint64]bool
	_     [40]byte
}

func wfIdx(txn uint64) int {
	return int((txn * 0x9e3779b97f4a7c15) >> 58)
}

// regStripes shards the compatibility-API holder registry.
const regStripes = 64

type regStripe struct {
	mu sync.Mutex
	m  map[uint64]*Holder
	_  [40]byte
}

func regIdx(txn uint64) int {
	return int((txn*0x9e3779b97f4a7c15)>>32) & (regStripes - 1)
}

// Manager is the lock table. Aside from the partitioned table itself,
// all bookkeeping is striped (waits-for graph, holder registry, heat)
// or carried by the caller (held sets, escalation state — see
// Holder), so Acquire/ReleaseAll never take a manager-global mutex.
type Manager struct {
	opts  Options
	parts []partition

	// wf is the sharded deadlock-detection graph.
	wf [wfStripes]wfStripe

	// reg backs the id-based compatibility API with per-txn holders.
	reg [regStripes]regStripe

	// agents maps SLI agent pseudo-transactions to their reclaim
	// flag; registration is rare, lookups on the wait path are
	// lock-free.
	agents sync.Map // uint64 -> *atomic.Bool

	// stats are striped cumulative counters (obs.Counter), so the
	// bookkeeping of a decentralized lock table is not itself a
	// centralized cache line. StatsSnapshot sums the stripes with
	// atomic loads.
	stats struct {
		acquires, tableOps, inherited obs.Counter
		waits, deadlocks, timeouts    obs.Counter
		upgrades, releaseAll          obs.Counter
		escalations, escalatedAcqs    obs.Counter
	}

	// waitProf is the time-to-acquire distribution of transactional
	// lock waits (conflicts only — the un-contended grant path never
	// observes). Fed on the already-blocking path, so always-on.
	waitProf obs.Hist
}

// NewManager returns an empty lock table.
func NewManager(opts Options) *Manager {
	opts.fill()
	m := &Manager{
		opts:  opts,
		parts: make([]partition, opts.Partitions),
	}
	for i := range m.parts {
		m.parts[i].table = make(map[Name]*lockHead)
		m.parts[i].heat = make(map[Name]int)
	}
	for i := range m.wf {
		m.wf[i].edges = make(map[uint64]map[uint64]bool)
	}
	for i := range m.reg {
		m.reg[i].m = make(map[uint64]*Holder)
	}
	return m
}

func (m *Manager) part(n Name) *partition {
	return &m.parts[n.hash()%uint64(len(m.parts))]
}

// Acquire obtains name in mode for txn, blocking while incompatible
// locks are held. Re-acquisition by the same transaction upgrades to
// the supremum mode. It returns ErrDeadlock when the wait would close
// a cycle (the requester is the victim) and ErrTimeout past the
// configured bound.
//
// This id-based form resolves txn's lock context through a striped
// registry; hot paths should carry a *Holder instead (NewHolder) and
// call its methods directly.
func (m *Manager) Acquire(txn uint64, name Name, mode Mode) error {
	return m.holderOf(txn).Acquire(name, mode)
}

func (m *Manager) acquireTable(h *Holder, name Name, mode Mode) error {
	m.stats.tableOps.Inc()
	txn := h.id
	p := m.part(name)
	ls := obs.LatchStart(obs.TierLockPart)
	p.mu.Lock()
	obs.LatchDone(obs.TierLockPart, ls)
	if name.Level != LevelRow {
		// Heat tracks how often coarse-grained names pass through the
		// table; SLI classifies frequently re-acquired intent locks as
		// inheritance candidates. (Intent modes are mutually
		// compatible, so conflict counts alone would never find them.)
		p.heat[name]++
	}
	lh := p.table[name]
	if lh == nil {
		lh = &lockHead{granted: make(map[uint64]*grant)}
		p.table[name] = lh
	}

	if g, ok := lh.granted[txn]; ok {
		target := Supremum(g.mode, mode)
		if target == g.mode {
			g.count++
			p.mu.Unlock()
			h.note(name, g.mode)
			return nil
		}
		// Upgrade: must be compatible with every other holder.
		if lh.compatibleExcept(target, txn) {
			m.stats.upgrades.Add(1)
			g.mode = target
			g.count++
			p.mu.Unlock()
			h.note(name, target)
			return nil
		}
		// Blocked upgrade: wait at the head of the queue.
		return m.wait(p, lh, name, h, target, true)
	}

	if len(lh.queue) == 0 && lh.compatibleExcept(mode, txn) {
		lh.granted[txn] = &grant{mode: mode, count: 1}
		p.mu.Unlock()
		h.note(name, mode)
		return nil
	}
	return m.wait(p, lh, name, h, mode, false)
}

// compatibleExcept reports whether mode is compatible with every
// grant other than txn's own.
func (h *lockHead) compatibleExcept(mode Mode, txn uint64) bool {
	for t, g := range h.granted {
		if t == txn {
			continue
		}
		if !Compatible(g.mode, mode) {
			return false
		}
	}
	return true
}

// wait times the blocking path: the enqueue-and-sleep itself is
// waitInner; the wrapper feeds the observed wait into the manager's
// time-to-acquire histogram and the transaction event tracer. Called
// with p.mu held; returns with it released.
//
//hydra:vet:nonpropagating -- waitInner releases the caller's p.mu before blocking
func (m *Manager) wait(p *partition, lh *lockHead, name Name, h *Holder, mode Mode, upgrade bool) error {
	start := obs.Now()
	err := m.waitInner(p, lh, name, h, mode, upgrade)
	waited := obs.Now() - start
	m.waitProf.ObserveNanos(waited)
	obs.TraceEvent(obs.EvLockWait, h.id, name.hash(), uint64(waited))
	return err
}

// waitInner enqueues h's transaction and blocks until granted. Called
// with p.mu held; returns with it released.
//
//hydra:vet:nonpropagating -- releases the caller's p.mu before blocking on the ready channel
func (m *Manager) waitInner(p *partition, lh *lockHead, name Name, h *Holder, mode Mode, upgrade bool) error {
	m.stats.waits.Inc()
	txn := h.id
	lh.contention++
	p.heat[name]++
	w := &waiter{txn: txn, mode: mode, upgrade: upgrade, ready: make(chan error, 1)}
	if upgrade {
		// Upgraders go first to shrink the conversion window.
		lh.queue = append([]*waiter{w}, lh.queue...)
	} else {
		lh.queue = append(lh.queue, w)
	}

	// Record waits-for edges and check for a cycle before sleeping.
	// An upgrader waits only on current holders; a plain waiter also
	// waits on everyone queued ahead of it.
	blockers := make([]uint64, 0, len(lh.granted))
	for t := range lh.granted {
		if t != txn {
			blockers = append(blockers, t)
		}
	}
	if !upgrade {
		for _, qw := range lh.queue {
			if qw == w {
				break
			}
			if qw.txn != txn {
				blockers = append(blockers, qw.txn)
			}
		}
	}
	p.mu.Unlock()

	// If any blocker is an SLI agent's retained lock, ask the agent
	// to surrender it at its next transaction boundary.
	m.flagAgentsAmong(blockers)

	if m.addWaitEdges(txn, blockers) {
		// Cycle: abort self as victim — unless the grant already
		// arrived, in which case there is no wait and no deadlock.
		m.clearWaitEdges(txn)
		if m.removeWaiter(p, lh, w) {
			m.stats.deadlocks.Add(1)
			return fmt.Errorf("%w: txn %d on %s (%s)", ErrDeadlock, txn, name, mode)
		}
		if err := <-w.ready; err != nil {
			return err
		}
		h.note(name, mode)
		return nil
	}

	var timeout <-chan time.Time
	if m.opts.WaitTimeout > 0 {
		t := time.NewTimer(m.opts.WaitTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case err := <-w.ready:
		m.clearWaitEdges(txn)
		if err == nil {
			h.note(name, mode)
		}
		return err
	case <-timeout:
		m.clearWaitEdges(txn)
		if m.removeWaiter(p, lh, w) {
			m.stats.timeouts.Add(1)
			return fmt.Errorf("%w: txn %d on %s (%s)", ErrTimeout, txn, name, mode)
		}
		// Lost the race: the grant arrived as the timer fired.
		if err := <-w.ready; err != nil {
			return err
		}
		h.note(name, mode)
		return nil
	}
}

// removeWaiter deletes w from the queue, reporting whether it was
// still queued (false means it was already granted or failed).
func (m *Manager) removeWaiter(p *partition, lh *lockHead, w *waiter) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, qw := range lh.queue {
		if qw == w {
			lh.queue = append(lh.queue[:i], lh.queue[i+1:]...)
			return true
		}
	}
	return false
}

// addWaitEdges installs txn->blockers edges and reports whether doing
// so creates a cycle reachable back to txn. The graph is sharded: an
// edge lives in its source transaction's stripe, and the cycle DFS
// locks one stripe at a time, so detection never serializes unrelated
// waiters behind a global graph mutex. If a cycle exists, the
// transaction that installs its last edge sees every edge of the
// cycle (each was installed before that DFS began), so the cycle is
// still always detected by at least one participant.
func (m *Manager) addWaitEdges(txn uint64, blockers []uint64) bool {
	st := &m.wf[wfIdx(txn)]
	st.mu.Lock()
	set := st.edges[txn]
	if set == nil {
		set = make(map[uint64]bool)
		st.edges[txn] = set
	}
	for _, b := range blockers {
		set[b] = true
	}
	// Seed the DFS with a snapshot of txn's full out-edge set.
	stack := make([]uint64, 0, len(set))
	for b := range set {
		stack = append(stack, b)
	}
	st.mu.Unlock()

	// DFS from txn looking for a path back to txn.
	seen := map[uint64]bool{}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == txn {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		cs := &m.wf[wfIdx(cur)]
		cs.mu.Lock()
		for nb := range cs.edges[cur] {
			stack = append(stack, nb)
		}
		cs.mu.Unlock()
	}
	return false
}

func (m *Manager) clearWaitEdges(txn uint64) {
	st := &m.wf[wfIdx(txn)]
	st.mu.Lock()
	delete(st.edges, txn)
	st.mu.Unlock()
}

// Release drops txn's lock on name entirely (all re-entrant counts).
func (m *Manager) Release(txn uint64, name Name) {
	if h := m.lookupHolder(txn); h != nil {
		h.Release(name)
		return
	}
	m.releaseOne(txn, name)
}

func (m *Manager) releaseOne(txn uint64, name Name) {
	p := m.part(name)
	ls := obs.LatchStart(obs.TierLockPart)
	p.mu.Lock()
	obs.LatchDone(obs.TierLockPart, ls)
	lh := p.table[name]
	if lh == nil {
		p.mu.Unlock()
		return
	}
	delete(lh.granted, txn)
	m.grantWaitersLocked(lh)
	if len(lh.granted) == 0 && len(lh.queue) == 0 {
		delete(p.table, name)
	}
	p.mu.Unlock()
}

// grantWaitersLocked admits queued waiters from the front while they
// are compatible. Called with the partition mutex held. The wakeup
// sends cannot block: ready has capacity 1 and each waiter is popped
// exactly once.
//
//hydra:vet:nonpropagating -- ready channels have capacity 1 and each waiter is granted at most once
func (m *Manager) grantWaitersLocked(lh *lockHead) {
	for len(lh.queue) > 0 {
		w := lh.queue[0]
		if g, ok := lh.granted[w.txn]; ok {
			// Upgrade waiter: check against others only.
			target := Supremum(g.mode, w.mode)
			if !lh.compatibleExcept(target, w.txn) {
				return
			}
			g.mode = target
			g.count++
		} else {
			if !lh.compatibleExcept(w.mode, w.txn) {
				return
			}
			lh.granted[w.txn] = &grant{mode: w.mode, count: 1}
		}
		lh.queue = lh.queue[1:]
		w.ready <- nil
	}
}

// ReleaseAll drops every lock txn holds (2PL release phase). It
// returns the names released, which SLI agents use to decide what to
// inherit. Id-based form of Holder.ReleaseAll; it also retires the
// registry entry Acquire created.
func (m *Manager) ReleaseAll(txn uint64) []Name {
	if h := m.takeHolder(txn); h != nil {
		return h.ReleaseAll()
	}
	m.stats.releaseAll.Add(1)
	return nil
}

// Held returns the mode txn holds on name (None if not held).
func (m *Manager) Held(txn uint64, name Name) Mode {
	if h := m.lookupHolder(txn); h != nil {
		return h.Held(name)
	}
	return None
}

// contentionOf reports the cumulative conflict count for name.
func (m *Manager) contentionOf(name Name) int {
	p := m.part(name)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.heat[name]
}

// flagAgentsAmong sets the reclaim flag of every registered agent in
// ids, so retained locks blocking real transactions are surrendered
// at the next boundary. Agent ids live in their own range, so the
// common all-real-transactions case never touches the agent map.
func (m *Manager) flagAgentsAmong(ids []uint64) {
	for _, id := range ids {
		if id < agentIDBase {
			continue
		}
		if f, ok := m.agents.Load(id); ok {
			f.(*atomic.Bool).Store(true)
		}
	}
}

// WaitHist returns a snapshot of the transactional lock-wait
// distribution (time from conflict to grant, victims included).
func (m *Manager) WaitHist() hist.H { return m.waitProf.Snapshot() }

// StatsSnapshot returns a copy of the cumulative counters. Each
// counter is striped; Load sums the stripes with atomic loads.
func (m *Manager) StatsSnapshot() Stats {
	return Stats{
		Acquires:      m.stats.acquires.Load(),
		TableOps:      m.stats.tableOps.Load(),
		Inherited:     m.stats.inherited.Load(),
		Waits:         m.stats.waits.Load(),
		Deadlocks:     m.stats.deadlocks.Load(),
		Timeouts:      m.stats.timeouts.Load(),
		Upgrades:      m.stats.upgrades.Load(),
		ReleaseAll:    m.stats.releaseAll.Load(),
		Escalations:   m.stats.escalations.Load(),
		EscalatedAcqs: m.stats.escalatedAcqs.Load(),
	}
}
