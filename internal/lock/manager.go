package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"hydra/internal/hist"
	"hydra/internal/invariant"
	"hydra/internal/obs"
)

// Errors returned by Acquire.
var (
	// ErrDeadlock aborts the requester chosen as deadlock victim.
	ErrDeadlock = errors.New("lock: deadlock detected")
	// ErrTimeout aborts a request that waited past the configured bound.
	ErrTimeout = errors.New("lock: wait timed out")
)

// Options configures a Manager.
type Options struct {
	// Partitions shards the lock table; 1 reproduces the conventional
	// centralized design. Default 1.
	Partitions int
	// WaitTimeout bounds any single lock wait; 0 means no timeout
	// (deadlock detection alone breaks cycles). Default 0.
	WaitTimeout time.Duration
	// HotThreshold is the contention count past which SLI considers a
	// lock hot. Default 4.
	HotThreshold int
	// EscalationThreshold is the number of row locks on one table
	// past which the transaction's access escalates to a table lock.
	// 0 disables escalation (the default).
	EscalationThreshold int
}

func (o *Options) fill() {
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.HotThreshold <= 0 {
		o.HotThreshold = 4
	}
}

// Stats are cumulative lock-manager counters.
type Stats struct {
	Acquires   uint64 // logical acquisitions requested
	TableOps   uint64 // acquisitions that reached the lock table
	Inherited  uint64 // acquisitions satisfied from an SLI agent cache
	Waits      uint64 // acquisitions that blocked
	Deadlocks  uint64
	Timeouts   uint64
	Upgrades   uint64
	ReleaseAll uint64
	// Escalations counts row->table lock escalations; EscalatedAcqs
	// counts row requests absorbed by an escalated table lock.
	Escalations   uint64
	EscalatedAcqs uint64
	// Lock-head lifecycle: HeadAllocs counts fresh lockHead
	// allocations on table misses, HeadRecycles misses served from the
	// partition freelist instead, HeadRetires empty heads returned to
	// it. HeatEvictions counts heat-table entries dropped to keep the
	// per-partition conflict history under its cap.
	HeadAllocs    uint64
	HeadRecycles  uint64
	HeadRetires   uint64
	HeatEvictions uint64
	// Bypasses counts logical acquisitions the MVCC snapshot-read path
	// skipped entirely: reads that, on the locked path, would have gone
	// through Acquire but instead resolved against version chains.
	Bypasses uint64
}

type grant struct {
	mode  Mode
	count int // re-entrant acquisitions folded into the same grant
}

type waiter struct {
	txn     uint64
	mode    Mode
	upgrade bool
	// since is the obs.Now() stamp at enqueue; the stall flight
	// recorder scans it to find waiters older than its threshold.
	since int64
	ready chan error
}

type lockHead struct {
	granted map[uint64]*grant
	queue   []*waiter
	// contention is a decaying count of observed conflicts, used by
	// SLI to classify locks as hot.
	contention int
	// free links retired heads into the partition's Treiber-stack
	// freelist. Accessed only with atomics: the pusher publishes
	// through it after p.mu is released, and the popper (under p.mu)
	// reads it concurrently with pushes.
	free unsafe.Pointer // *lockHead
}

type partition struct {
	mu    sync.Mutex
	table map[Name]*lockHead
	// heat persists observed conflict counts per name, surviving lock
	// head reclamation; SLI consults it to classify hot locks. Striped
	// with the partition so it rides the same mutex instead of a
	// global one. Bounded: admission past heatCap evicts a cold entry,
	// and every heatDecayEvery bumps the whole table halves (see
	// bumpHeat), so churning row conflicts cannot grow it forever.
	heat map[Name]int
	// heatTicks counts bumps since the last decay sweep (under mu).
	heatTicks int
	// free is the top of the partition's lock-free freelist of retired
	// lockHeads. Pushes (retire) are lock-free CAS prepends from any
	// goroutine after it has unlinked the head from table and released
	// mu; pops happen only while holding mu, so there is exactly one
	// popper at a time and the classic Treiber ABA interleaving (top
	// popped and re-pushed between a popper's read and its CAS) cannot
	// occur — concurrent pushes only ever prepend in front of the
	// observed top.
	free unsafe.Pointer // *lockHead
	_    [24]byte       // pad to a cache line so adjacent partitions don't false-share
}

// Heat-table bounds. heatCap is the per-partition entry cap;
// heatDecayEvery is the bump count between halving sweeps (the decay
// that lets a once-hot name cool off and leave the table); heatProbe
// is how many randomly-iterated entries an over-cap admission
// examines to pick an eviction victim.
const (
	heatCap        = 512
	heatDecayEvery = 8192
	heatProbe      = 8
)

// bumpHeat increments name's observed-conflict count in the bounded
// heat table. Called with p.mu held. Every heatDecayEvery bumps the
// whole table halves and zeroed entries drop out, so heat is a
// decaying count, not an append-only one; when an admission would
// push the table past heatCap, the coldest of heatProbe sampled
// entries (map iteration order is randomized) is evicted instead of
// growing. Genuinely hot names are bumped far more often than they
// are halved or sampled, so SLI's hot-lock classification survives
// the bound.
func (m *Manager) bumpHeat(p *partition, name Name) {
	p.heatTicks++
	if p.heatTicks >= heatDecayEvery {
		p.heatTicks = 0
		for n, v := range p.heat {
			if v >>= 1; v == 0 {
				delete(p.heat, n)
			} else {
				p.heat[n] = v
			}
		}
	}
	if _, ok := p.heat[name]; !ok && len(p.heat) >= heatCap {
		var victim Name
		coldest := int(^uint(0) >> 1)
		probed := 0
		for n, v := range p.heat {
			if v < coldest {
				victim, coldest = n, v
			}
			if probed++; probed >= heatProbe {
				break
			}
		}
		delete(p.heat, victim)
		m.stats.heatEvictions.Inc()
	}
	p.heat[name]++
}

// takeHeadLocked returns an empty lockHead for a table miss: a
// recycled head popped from the partition freelist when one is
// available, a fresh allocation otherwise. Called with p.mu held —
// the mutex is what serializes poppers (see partition.free); the pop
// itself is a short CAS loop racing only with lock-free pushers.
func (m *Manager) takeHeadLocked(p *partition) *lockHead {
	for {
		top := atomic.LoadPointer(&p.free)
		if top == nil {
			break
		}
		lh := (*lockHead)(top)
		next := atomic.LoadPointer(&lh.free)
		if atomic.CompareAndSwapPointer(&p.free, top, next) {
			atomic.StorePointer(&lh.free, nil)
			m.stats.headRecycles.Inc()
			invariant.PoolGot("lock.takeHeadLocked(recycle)", lh)
			invariant.Assert(len(lh.granted) == 0 && len(lh.queue) == 0 && lh.contention == 0,
				"recycled lock head carries stale state")
			return lh
		}
	}
	m.stats.headAllocs.Inc()
	lh := &lockHead{granted: make(map[uint64]*grant)}
	invariant.PoolGot("lock.takeHeadLocked(alloc)", lh)
	return lh
}

// retireHead pushes an empty head onto the partition freelist. The
// caller must already have unlinked it from p.table and released
// p.mu: once unlinked the head is unreachable, so the push — and the
// state scrub before it — happen outside the partition critical
// section (the retire-outside-mutex protocol the poolcycle fixtures
// pin). After the push the head belongs to the freelist; only
// takeHeadLocked may touch it again.
func (m *Manager) retireHead(p *partition, lh *lockHead) {
	invariant.Assert(len(lh.granted) == 0 && len(lh.queue) == 0,
		"retiring a non-empty lock head")
	lh.queue = nil // drop the backing array: it may pin waiter objects
	lh.contention = 0
	m.stats.headRetires.Inc()
	invariant.PoolPut("lock.retireHead", lh)
	for {
		top := atomic.LoadPointer(&p.free)
		atomic.StorePointer(&lh.free, top)
		if atomic.CompareAndSwapPointer(&p.free, top, unsafe.Pointer(lh)) {
			return
		}
	}
}

// reclaimHeadLocked unlinks lh from the table if it is empty,
// returning it for the caller to retireHead after p.mu is released
// (nil when the head is still live). Called with p.mu held.
func reclaimHeadLocked(p *partition, name Name, lh *lockHead) *lockHead {
	if len(lh.granted) != 0 || len(lh.queue) != 0 || p.table[name] != lh {
		return nil
	}
	delete(p.table, name)
	return lh
}

// wfStripes shards the waits-for graph so deadlock bookkeeping from
// unrelated transactions never touches the same mutex.
const wfStripes = 64

type wfStripe struct {
	mu sync.Mutex
	// edges maps txn -> txns it waits on, for transactions hashed to
	// this stripe.
	edges map[uint64]map[uint64]bool
	_     [40]byte
}

func wfIdx(txn uint64) int {
	return int((txn * 0x9e3779b97f4a7c15) >> 58)
}

// regStripes shards the compatibility-API holder registry.
const regStripes = 64

type regStripe struct {
	mu sync.Mutex
	m  map[uint64]*Holder
	_  [40]byte
}

func regIdx(txn uint64) int {
	return int((txn*0x9e3779b97f4a7c15)>>32) & (regStripes - 1)
}

// Manager is the lock table. Aside from the partitioned table itself,
// all bookkeeping is striped (waits-for graph, holder registry, heat)
// or carried by the caller (held sets, escalation state — see
// Holder), so Acquire/ReleaseAll never take a manager-global mutex.
type Manager struct {
	opts  Options
	parts []partition

	// wf is the sharded deadlock-detection graph.
	wf [wfStripes]wfStripe

	// reg backs the id-based compatibility API with per-txn holders.
	reg [regStripes]regStripe

	// agents maps SLI agent pseudo-transactions to their reclaim
	// flag; registration is rare, lookups on the wait path are
	// lock-free.
	agents sync.Map // uint64 -> *atomic.Bool

	// stats are striped cumulative counters (obs.Counter), so the
	// bookkeeping of a decentralized lock table is not itself a
	// centralized cache line. StatsSnapshot sums the stripes with
	// atomic loads.
	stats struct {
		acquires, tableOps, inherited obs.Counter
		waits, deadlocks, timeouts    obs.Counter
		upgrades, releaseAll          obs.Counter
		escalations, escalatedAcqs    obs.Counter
		headAllocs, headRecycles      obs.Counter
		headRetires, heatEvictions    obs.Counter
		bypasses                      obs.Counter
	}

	// waitProf is the time-to-acquire distribution of transactional
	// lock waits (conflicts only — the un-contended grant path never
	// observes). Fed on the already-blocking path, so always-on.
	waitProf obs.Hist
}

// NewManager returns an empty lock table.
func NewManager(opts Options) *Manager {
	opts.fill()
	m := &Manager{
		opts:  opts,
		parts: make([]partition, opts.Partitions),
	}
	for i := range m.parts {
		m.parts[i].table = make(map[Name]*lockHead)
		m.parts[i].heat = make(map[Name]int)
	}
	for i := range m.wf {
		m.wf[i].edges = make(map[uint64]map[uint64]bool)
	}
	for i := range m.reg {
		m.reg[i].m = make(map[uint64]*Holder)
	}
	return m
}

func (m *Manager) part(n Name) *partition {
	return &m.parts[n.hash()%uint64(len(m.parts))]
}

// Acquire obtains name in mode for txn, blocking while incompatible
// locks are held. Re-acquisition by the same transaction upgrades to
// the supremum mode. It returns ErrDeadlock when the wait would close
// a cycle (the requester is the victim) and ErrTimeout past the
// configured bound.
//
// This id-based form resolves txn's lock context through a striped
// registry; hot paths should carry a *Holder instead (NewHolder) and
// call its methods directly.
func (m *Manager) Acquire(txn uint64, name Name, mode Mode) error {
	return m.holderOf(txn).Acquire(name, mode)
}

func (m *Manager) acquireTable(h *Holder, name Name, mode Mode) error {
	m.stats.tableOps.Inc()
	txn := h.id
	p := m.part(name)
	ls := obs.LatchStart(obs.TierLockPart)
	p.mu.Lock()
	obs.LatchDone(obs.TierLockPart, ls)
	if name.Level != LevelRow {
		// Heat tracks how often coarse-grained names pass through the
		// table; SLI classifies frequently re-acquired intent locks as
		// inheritance candidates. (Intent modes are mutually
		// compatible, so conflict counts alone would never find them.)
		m.bumpHeat(p, name)
	}
	lh := p.table[name]
	if lh == nil {
		lh = m.takeHeadLocked(p)
		p.table[name] = lh
	}

	if g, ok := lh.granted[txn]; ok {
		target := Supremum(g.mode, mode)
		if target == g.mode {
			g.count++
			p.mu.Unlock()
			h.note(name, g.mode)
			return nil
		}
		// Upgrade: must be compatible with every other holder.
		if lh.compatibleExcept(target, txn) {
			m.stats.upgrades.Add(1)
			g.mode = target
			g.count++
			p.mu.Unlock()
			h.note(name, target)
			return nil
		}
		// Blocked upgrade: wait at the head of the queue.
		return m.wait(p, lh, name, h, target, true)
	}

	if len(lh.queue) == 0 && lh.compatibleExcept(mode, txn) {
		lh.granted[txn] = &grant{mode: mode, count: 1}
		p.mu.Unlock()
		h.note(name, mode)
		return nil
	}
	return m.wait(p, lh, name, h, mode, false)
}

// compatibleExcept reports whether mode is compatible with every
// grant other than txn's own.
func (h *lockHead) compatibleExcept(mode Mode, txn uint64) bool {
	for t, g := range h.granted {
		if t == txn {
			continue
		}
		if !Compatible(g.mode, mode) {
			return false
		}
	}
	return true
}

// wait times the blocking path: the enqueue-and-sleep itself is
// waitInner; the wrapper feeds the observed wait into the manager's
// time-to-acquire histogram and the transaction event tracer. Called
// with p.mu held; returns with it released.
//
//hydra:vet:nonpropagating -- waitInner releases the caller's p.mu before blocking
func (m *Manager) wait(p *partition, lh *lockHead, name Name, h *Holder, mode Mode, upgrade bool) error {
	start := obs.Now()
	err := m.waitInner(p, lh, name, h, mode, upgrade, start)
	waited := obs.Now() - start
	m.waitProf.ObserveNanos(waited)
	h.clock.Add(obs.PhaseLockWait, waited)
	obs.TraceEvent(obs.EvLockWait, h.id, name.hash(), uint64(waited))
	return err
}

// waitInner enqueues h's transaction and blocks until granted. Called
// with p.mu held; returns with it released.
//
//hydra:vet:nonpropagating -- releases the caller's p.mu before blocking on the ready channel
func (m *Manager) waitInner(p *partition, lh *lockHead, name Name, h *Holder, mode Mode, upgrade bool, start int64) error {
	m.stats.waits.Inc()
	txn := h.id
	lh.contention++
	m.bumpHeat(p, name)
	w := &waiter{txn: txn, mode: mode, upgrade: upgrade, since: start, ready: make(chan error, 1)}
	if upgrade {
		// Upgraders go first to shrink the conversion window.
		lh.queue = append([]*waiter{w}, lh.queue...)
	} else {
		lh.queue = append(lh.queue, w)
	}

	// Record waits-for edges and check for a cycle before sleeping.
	// An upgrader waits only on current holders; a plain waiter also
	// waits on everyone queued ahead of it.
	blockers := make([]uint64, 0, len(lh.granted))
	for t := range lh.granted {
		if t != txn {
			blockers = append(blockers, t)
		}
	}
	if !upgrade {
		for _, qw := range lh.queue {
			if qw == w {
				break
			}
			if qw.txn != txn {
				blockers = append(blockers, qw.txn)
			}
		}
	}
	p.mu.Unlock()

	// If any blocker is an SLI agent's retained lock, ask the agent
	// to surrender it at its next transaction boundary.
	m.flagAgentsAmong(blockers)

	if m.addWaitEdges(txn, blockers) {
		// Cycle: abort self as victim — unless the grant already
		// arrived, in which case there is no wait and no deadlock.
		m.clearWaitEdges(txn)
		if m.removeWaiter(p, name, lh, w) {
			m.stats.deadlocks.Add(1)
			return fmt.Errorf("%w: txn %d on %s (%s)", ErrDeadlock, txn, name, mode)
		}
		if err := <-w.ready; err != nil {
			return err
		}
		h.note(name, mode)
		return nil
	}

	var timeout <-chan time.Time
	if m.opts.WaitTimeout > 0 {
		t := time.NewTimer(m.opts.WaitTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case err := <-w.ready:
		m.clearWaitEdges(txn)
		if err == nil {
			h.note(name, mode)
		}
		return err
	case <-timeout:
		m.clearWaitEdges(txn)
		if m.removeWaiter(p, name, lh, w) {
			m.stats.timeouts.Add(1)
			return fmt.Errorf("%w: txn %d on %s (%s)", ErrTimeout, txn, name, mode)
		}
		// Lost the race: the grant arrived as the timer fired.
		if err := <-w.ready; err != nil {
			return err
		}
		h.note(name, mode)
		return nil
	}
}

// removeWaiter deletes w from the queue, reporting whether it was
// still queued (false means it was already granted or failed). A
// timed-out or deadlock-victim waiter may have been the only thing
// blocking compatible waiters queued behind it (admission is FIFO
// from the front), so removal re-runs grantWaitersLocked; and if the
// departure leaves the head with no grants and no queue, the head is
// reclaimed like releaseOne would have.
func (m *Manager) removeWaiter(p *partition, name Name, lh *lockHead, w *waiter) bool {
	p.mu.Lock()
	removed := false
	for i, qw := range lh.queue {
		if qw == w {
			lh.queue = append(lh.queue[:i], lh.queue[i+1:]...)
			removed = true
			break
		}
	}
	var retired *lockHead
	if removed {
		m.grantWaitersLocked(lh)
		retired = reclaimHeadLocked(p, name, lh)
	}
	p.mu.Unlock()
	if retired != nil {
		m.retireHead(p, retired)
	}
	return removed
}

// addWaitEdges installs txn->blockers edges and reports whether doing
// so creates a cycle reachable back to txn. The graph is sharded: an
// edge lives in its source transaction's stripe, and the cycle DFS
// locks one stripe at a time, so detection never serializes unrelated
// waiters behind a global graph mutex. If a cycle exists, the
// transaction that installs its last edge sees every edge of the
// cycle (each was installed before that DFS began), so the cycle is
// still always detected by at least one participant.
func (m *Manager) addWaitEdges(txn uint64, blockers []uint64) bool {
	st := &m.wf[wfIdx(txn)]
	st.mu.Lock()
	set := st.edges[txn]
	if set == nil {
		set = make(map[uint64]bool)
		st.edges[txn] = set
	}
	for _, b := range blockers {
		set[b] = true
	}
	// Seed the DFS with a snapshot of txn's full out-edge set.
	stack := make([]uint64, 0, len(set))
	for b := range set {
		stack = append(stack, b)
	}
	st.mu.Unlock()

	// DFS from txn looking for a path back to txn.
	seen := map[uint64]bool{}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur == txn {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		cs := &m.wf[wfIdx(cur)]
		cs.mu.Lock()
		for nb := range cs.edges[cur] {
			stack = append(stack, nb)
		}
		cs.mu.Unlock()
	}
	return false
}

func (m *Manager) clearWaitEdges(txn uint64) {
	st := &m.wf[wfIdx(txn)]
	st.mu.Lock()
	delete(st.edges, txn)
	st.mu.Unlock()
}

// Release drops txn's lock on name entirely (all re-entrant counts).
func (m *Manager) Release(txn uint64, name Name) {
	if h := m.lookupHolder(txn); h != nil {
		h.Release(name)
		return
	}
	m.releaseOne(txn, name)
}

func (m *Manager) releaseOne(txn uint64, name Name) {
	p := m.part(name)
	ls := obs.LatchStart(obs.TierLockPart)
	p.mu.Lock()
	obs.LatchDone(obs.TierLockPart, ls)
	lh := p.table[name]
	if lh == nil {
		p.mu.Unlock()
		return
	}
	delete(lh.granted, txn)
	m.grantWaitersLocked(lh)
	retired := reclaimHeadLocked(p, name, lh)
	p.mu.Unlock()
	if retired != nil {
		m.retireHead(p, retired)
	}
}

// grantWaitersLocked admits queued waiters from the front while they
// are compatible. Called with the partition mutex held. The wakeup
// sends cannot block: ready has capacity 1 and each waiter is popped
// exactly once.
//
//hydra:vet:nonpropagating -- ready channels have capacity 1 and each waiter is granted at most once
func (m *Manager) grantWaitersLocked(lh *lockHead) {
	for len(lh.queue) > 0 {
		w := lh.queue[0]
		if g, ok := lh.granted[w.txn]; ok {
			// Upgrade waiter: check against others only.
			target := Supremum(g.mode, w.mode)
			if !lh.compatibleExcept(target, w.txn) {
				return
			}
			g.mode = target
			g.count++
		} else {
			if !lh.compatibleExcept(w.mode, w.txn) {
				return
			}
			lh.granted[w.txn] = &grant{mode: w.mode, count: 1}
		}
		lh.queue = lh.queue[1:]
		w.ready <- nil
	}
}

// ReleaseAll drops every lock txn holds (2PL release phase). It
// returns the names released, which SLI agents use to decide what to
// inherit. Id-based form of Holder.ReleaseAll; it also retires the
// registry entry Acquire created.
func (m *Manager) ReleaseAll(txn uint64) []Name {
	if h := m.takeHolder(txn); h != nil {
		return h.ReleaseAll()
	}
	m.stats.releaseAll.Add(1)
	return nil
}

// Held returns the mode txn holds on name (None if not held).
func (m *Manager) Held(txn uint64, name Name) Mode {
	if h := m.lookupHolder(txn); h != nil {
		return h.Held(name)
	}
	return None
}

// contentionOf reports the cumulative conflict count for name.
func (m *Manager) contentionOf(name Name) int {
	p := m.part(name)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.heat[name]
}

// flagAgentsAmong sets the reclaim flag of every registered agent in
// ids, so retained locks blocking real transactions are surrendered
// at the next boundary. Agent ids live in their own range, so the
// common all-real-transactions case never touches the agent map.
func (m *Manager) flagAgentsAmong(ids []uint64) {
	for _, id := range ids {
		if id < agentIDBase {
			continue
		}
		if f, ok := m.agents.Load(id); ok {
			f.(*atomic.Bool).Store(true)
		}
	}
}

// WaitHist returns a snapshot of the transactional lock-wait
// distribution (time from conflict to grant, victims included).
func (m *Manager) WaitHist() hist.H { return m.waitProf.Snapshot() }

// OldestWaiterAge returns the age in nanoseconds of the oldest
// currently-enqueued lock waiter, and how many waiters are enqueued.
// The stall flight recorder polls it: a waiter older than the
// deadlock/timeout horizon means admission has stalled. It walks
// every partition under its mutex, so it is a diagnostics-rate call,
// not a hot-path one.
func (m *Manager) OldestWaiterAge() (age int64, waiters int) {
	now := obs.Now()
	oldest := int64(0)
	for i := range m.parts {
		p := &m.parts[i]
		p.mu.Lock()
		for _, lh := range p.table {
			for _, w := range lh.queue {
				waiters++
				if a := now - w.since; a > oldest {
					oldest = a
				}
			}
		}
		p.mu.Unlock()
	}
	return oldest, waiters
}

// WaitsForSnapshot copies the current waits-for graph: each entry is
// one txn -> blockers edge set. Diagnostics only (incident bundles);
// the copy is taken stripe by stripe, so it is a consistent view per
// stripe but not across stripes — fine for a stall snapshot.
func (m *Manager) WaitsForSnapshot() map[uint64][]uint64 {
	out := make(map[uint64][]uint64)
	for i := range m.wf {
		st := &m.wf[i]
		st.mu.Lock()
		for txn, set := range st.edges {
			if len(set) == 0 {
				continue
			}
			bl := make([]uint64, 0, len(set))
			for b := range set {
				bl = append(bl, b)
			}
			out[txn] = bl
		}
		st.mu.Unlock()
	}
	return out
}

// StatsSnapshot returns a copy of the cumulative counters. Each
// counter is striped; Load sums the stripes with atomic loads.
func (m *Manager) StatsSnapshot() Stats {
	return Stats{
		Acquires:      m.stats.acquires.Load(),
		TableOps:      m.stats.tableOps.Load(),
		Inherited:     m.stats.inherited.Load(),
		Waits:         m.stats.waits.Load(),
		Deadlocks:     m.stats.deadlocks.Load(),
		Timeouts:      m.stats.timeouts.Load(),
		Upgrades:      m.stats.upgrades.Load(),
		ReleaseAll:    m.stats.releaseAll.Load(),
		Escalations:   m.stats.escalations.Load(),
		EscalatedAcqs: m.stats.escalatedAcqs.Load(),
		HeadAllocs:    m.stats.headAllocs.Load(),
		HeadRecycles:  m.stats.headRecycles.Load(),
		HeadRetires:   m.stats.headRetires.Load(),
		HeatEvictions: m.stats.heatEvictions.Load(),
		Bypasses:      m.stats.bypasses.Load(),
	}
}

// NoteBypass records n logical acquisitions the MVCC snapshot path
// skipped. Pure accounting: no partition is touched.
func (m *Manager) NoteBypass(n int) {
	m.stats.bypasses.Add(uint64(n))
}
