package lock

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCompatibilityMatrix(t *testing.T) {
	// Spot-check the canonical entries.
	cases := []struct {
		held, req Mode
		want      bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, SIX, true}, {IS, X, false},
		{IX, IX, true}, {IX, S, false}, {IX, SIX, false}, {IX, X, false},
		{S, S, true}, {S, IX, false}, {S, X, false},
		{SIX, IS, true}, {SIX, IX, false}, {SIX, S, false},
		{X, IS, false}, {X, X, false},
	}
	for _, c := range cases {
		if got := Compatible(c.held, c.req); got != c.want {
			t.Errorf("Compatible(%v, %v) = %v, want %v", c.held, c.req, got, c.want)
		}
	}
	// Symmetry property of the matrix.
	modes := []Mode{None, IS, IX, S, SIX, X}
	for _, a := range modes {
		for _, b := range modes {
			if Compatible(a, b) != Compatible(b, a) {
				t.Errorf("compatibility not symmetric at (%v, %v)", a, b)
			}
		}
	}
}

func TestSupremumProperties(t *testing.T) {
	modes := []Mode{None, IS, IX, S, SIX, X}
	for _, a := range modes {
		for _, b := range modes {
			s := Supremum(a, b)
			if Supremum(s, a) != s || Supremum(s, b) != s {
				t.Errorf("Supremum(%v,%v)=%v does not cover its arguments", a, b, s)
			}
			if s != Supremum(b, a) {
				t.Errorf("Supremum not commutative at (%v,%v)", a, b)
			}
			// Anything incompatible with a or b is incompatible with s.
			for _, c := range modes {
				if !Compatible(c, a) && Compatible(c, s) {
					t.Errorf("sup(%v,%v)=%v weaker than %v vs %v", a, b, s, a, c)
				}
			}
		}
	}
	if Supremum(S, IX) != SIX {
		t.Error("Supremum(S, IX) should be SIX")
	}
}

func TestBasicAcquireRelease(t *testing.T) {
	m := NewManager(Options{})
	r := RowName(1, 100)
	if err := m.Acquire(1, r, X); err != nil {
		t.Fatal(err)
	}
	if m.Held(1, r) != X {
		t.Fatalf("Held = %v, want X", m.Held(1, r))
	}
	m.Release(1, r)
	if m.Held(1, r) != None {
		t.Fatal("lock still held after release")
	}
}

func TestSharedConcurrencyExclusiveBlocks(t *testing.T) {
	m := NewManager(Options{})
	r := RowName(1, 1)
	if err := m.Acquire(1, r, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, r, S); err != nil {
		t.Fatal(err) // S+S compatible
	}
	acquired := make(chan error, 1)
	go func() { acquired <- m.Acquire(3, r, X) }()
	select {
	case err := <-acquired:
		t.Fatalf("X granted while S held: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.Release(1, r)
	m.Release(2, r)
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("X never granted")
	}
}

func TestReentrantAcquire(t *testing.T) {
	m := NewManager(Options{})
	r := RowName(1, 1)
	for i := 0; i < 3; i++ {
		if err := m.Acquire(1, r, S); err != nil {
			t.Fatal(err)
		}
	}
	// A single Release drops the lock entirely (counts are folded).
	m.Release(1, r)
	if m.Held(1, r) != None {
		t.Fatal("re-entrant lock not fully released")
	}
}

func TestUpgradeSToX(t *testing.T) {
	m := NewManager(Options{})
	r := RowName(1, 1)
	if err := m.Acquire(1, r, S); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, r, X); err != nil {
		t.Fatal(err) // sole holder upgrades immediately
	}
	if m.Held(1, r) != X {
		t.Fatalf("Held = %v after upgrade, want X", m.Held(1, r))
	}
	// Another reader must now block.
	got := make(chan error, 1)
	go func() { got <- m.Acquire(2, r, S) }()
	select {
	case <-got:
		t.Fatal("S granted during X")
	case <-time.After(20 * time.Millisecond):
	}
	m.Release(1, r)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

func TestBlockedUpgradeWaitsForReaders(t *testing.T) {
	m := NewManager(Options{})
	r := RowName(1, 1)
	m.Acquire(1, r, S)
	m.Acquire(2, r, S)
	done := make(chan error, 1)
	go func() { done <- m.Acquire(1, r, X) }()
	select {
	case <-done:
		t.Fatal("upgrade granted with another reader present")
	case <-time.After(20 * time.Millisecond):
	}
	m.Release(2, r)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.Held(1, r) != X {
		t.Fatalf("mode after blocked upgrade = %v", m.Held(1, r))
	}
	m.ReleaseAll(1)
}

func TestUpgradePriorityOverQueuedWriters(t *testing.T) {
	m := NewManager(Options{})
	r := RowName(1, 1)
	m.Acquire(1, r, S)
	m.Acquire(2, r, S)
	// Txn 3 queues for X behind the readers.
	got3 := make(chan error, 1)
	go func() { got3 <- m.Acquire(3, r, X) }()
	time.Sleep(10 * time.Millisecond)
	// Txn 1 upgrades; it must be served before txn 3.
	got1 := make(chan error, 1)
	go func() { got1 <- m.Acquire(1, r, X) }()
	time.Sleep(10 * time.Millisecond)
	m.Release(2, r)
	select {
	case err := <-got1:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("upgrade starved")
	}
	select {
	case <-got3:
		t.Fatal("queued writer served before upgrade completed")
	default:
	}
	m.ReleaseAll(1)
	if err := <-got3; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestDeadlockDetection(t *testing.T) {
	m := NewManager(Options{})
	a, b := RowName(1, 1), RowName(1, 2)
	m.Acquire(1, a, X)
	m.Acquire(2, b, X)
	errs := make(chan error, 2)
	go func() {
		err := m.Acquire(1, b, X) // 1 waits on 2
		if err == nil {
			defer m.ReleaseAll(1)
		}
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	go func() {
		err := m.Acquire(2, a, X) // closes the cycle
		if err == nil {
			defer m.ReleaseAll(2)
		}
		errs <- err
	}()
	var deadlocked int
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrDeadlock) {
				deadlocked++
				// Victim aborts: release everything it holds.
				if deadlocked == 1 {
					go func() {
						time.Sleep(5 * time.Millisecond)
						m.ReleaseAll(2)
						m.ReleaseAll(1)
					}()
				}
			} else if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("deadlock never resolved")
		}
	}
	if deadlocked == 0 {
		t.Fatal("no deadlock detected in a real cycle")
	}
	if got := m.StatsSnapshot().Deadlocks; got == 0 {
		t.Fatal("deadlock counter not bumped")
	}
}

func TestWaitTimeout(t *testing.T) {
	m := NewManager(Options{WaitTimeout: 30 * time.Millisecond})
	r := RowName(1, 1)
	m.Acquire(1, r, X)
	start := time.Now()
	err := m.Acquire(2, r, X)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("timeout fired early")
	}
	m.ReleaseAll(1)
	// The lock must still be grantable after a timed-out waiter.
	if err := m.Acquire(3, r, X); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestReleaseAllReturnsNames(t *testing.T) {
	m := NewManager(Options{})
	m.Acquire(7, TableName(1), IX)
	m.Acquire(7, RowName(1, 5), X)
	m.Acquire(7, RowName(1, 6), X)
	names := m.ReleaseAll(7)
	if len(names) != 3 {
		t.Fatalf("ReleaseAll returned %d names, want 3", len(names))
	}
	if m.Held(7, RowName(1, 5)) != None {
		t.Fatal("row lock survived ReleaseAll")
	}
	if m.ReleaseAll(7) != nil {
		t.Fatal("second ReleaseAll returned names")
	}
}

func TestFIFOFairnessNoWriterStarvation(t *testing.T) {
	m := NewManager(Options{})
	r := RowName(1, 1)
	m.Acquire(1, r, S)
	// Writer queues.
	wGot := make(chan error, 1)
	go func() { wGot <- m.Acquire(2, r, X) }()
	time.Sleep(10 * time.Millisecond)
	// A later reader must NOT jump the queued writer.
	rGot := make(chan error, 1)
	go func() { rGot <- m.Acquire(3, r, S) }()
	select {
	case <-rGot:
		t.Fatal("later reader overtook queued writer")
	case <-time.After(20 * time.Millisecond):
	}
	m.Release(1, r)
	if err := <-wGot; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if err := <-rGot; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestHierarchicalScenario(t *testing.T) {
	m := NewManager(Options{Partitions: 4})
	// Txn 1: IX on table, X on row 1. Txn 2: IX on table, X on row 2.
	// These must all proceed without blocking.
	done := make(chan error, 2)
	for i := uint64(1); i <= 2; i++ {
		go func(txn uint64) {
			if err := m.Acquire(txn, TableName(9), IX); err != nil {
				done <- err
				return
			}
			if err := m.Acquire(txn, RowName(9, txn), X); err != nil {
				done <- err
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Txn 3 wants S on the whole table: must wait for both IX holders.
	sGot := make(chan error, 1)
	go func() { sGot <- m.Acquire(3, TableName(9), S) }()
	select {
	case <-sGot:
		t.Fatal("table S granted while IX held")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if err := <-sGot; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(3)
}

func TestConcurrentDisjointThroughput(t *testing.T) {
	for _, parts := range []int{1, 16} {
		parts := parts
		t.Run(fmt.Sprintf("partitions=%d", parts), func(t *testing.T) {
			m := NewManager(Options{Partitions: parts})
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := uint64(w * 1000)
					for i := 0; i < 500; i++ {
						txn := base + uint64(i)
						key := base + uint64(i%100)
						if err := m.Acquire(txn, RowName(1, key), X); err != nil {
							t.Errorf("acquire: %v", err)
							return
						}
						m.ReleaseAll(txn)
					}
				}(w)
			}
			wg.Wait()
			st := m.StatsSnapshot()
			if st.Acquires != 4000 {
				t.Fatalf("acquires = %d, want 4000", st.Acquires)
			}
		})
	}
}

func TestModeAndLevelStrings(t *testing.T) {
	if X.String() != "X" || IS.String() != "IS" || Mode(9).String() != "mode(9)" {
		t.Fatal("Mode.String mismatch")
	}
	if LevelRow.String() != "row" || Level(9).String() != "level(9)" {
		t.Fatal("Level.String mismatch")
	}
	if RowName(1, 2).String() != "row(1,2)" || TableName(3).String() != "table(3)" || DatabaseName().String() != "db" {
		t.Fatal("Name.String mismatch")
	}
}

func BenchmarkAcquireReleaseDisjoint(b *testing.B) {
	for _, parts := range []int{1, 16} {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			m := NewManager(Options{Partitions: parts})
			var id uint64
			var mu sync.Mutex
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				id++
				me := id
				mu.Unlock()
				i := uint64(0)
				for pb.Next() {
					txn := me*1_000_000 + i
					m.Acquire(txn, RowName(1, me*100000+i%512), X)
					m.ReleaseAll(txn)
					i++
				}
			})
		})
	}
}
