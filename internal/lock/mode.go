// Package lock implements the transactional lock manager: a
// hierarchical two-phase-locking table with intention modes, FIFO
// queuing, deadlock detection, and the two scalability optimizations
// the paper's line of work develops — partitioned lock tables and
// Speculative Lock Inheritance (SLI), under which agent threads carry
// hot, compatible locks from one transaction to the next without
// touching the table.
//
// Locking is "by definition centralized" (the paper's phrase): every
// transaction visits the same table structures, so at high thread
// counts the manager itself becomes the bottleneck; this package
// exists both to provide correct 2PL and to let experiments quantify
// that bottleneck and its cures.
package lock

import "fmt"

// Mode is a hierarchical lock mode.
type Mode int

// The standard hierarchical modes.
const (
	// None is the absence of a lock; never stored.
	None Mode = iota
	// IS intends shared locks below this node.
	IS
	// IX intends exclusive locks below this node.
	IX
	// S locks the subtree shared.
	S
	// SIX locks the subtree shared with intent to write below.
	SIX
	// X locks the subtree exclusive.
	X
)

var modeNames = [...]string{"NL", "IS", "IX", "S", "SIX", "X"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// compat[a][b] reports whether a lock held in a is compatible with a
// request for b.
var compat = [6][6]bool{
	None: {true, true, true, true, true, true},
	IS:   {true, true, true, true, true, false},
	IX:   {true, true, true, false, false, false},
	S:    {true, true, false, true, false, false},
	SIX:  {true, true, false, false, false, false},
	X:    {true, false, false, false, false, false},
}

// Compatible reports whether held and req can be granted together.
func Compatible(held, req Mode) bool { return compat[held][req] }

// sup[a][b] is the least mode covering both a and b (the upgrade
// target when a holder of a requests b).
var sup = [6][6]Mode{
	None: {None, IS, IX, S, SIX, X},
	IS:   {IS, IS, IX, S, SIX, X},
	IX:   {IX, IX, IX, SIX, SIX, X},
	S:    {S, S, SIX, S, SIX, X},
	SIX:  {SIX, SIX, SIX, SIX, SIX, X},
	X:    {X, X, X, X, X, X},
}

// Supremum returns the least mode covering both a and b.
func Supremum(a, b Mode) Mode { return sup[a][b] }

// Level places a lock name in the hierarchy.
type Level uint8

// Hierarchy levels, coarse to fine.
const (
	LevelDatabase Level = iota
	LevelTable
	LevelRow
)

var levelNames = [...]string{"db", "table", "row"}

func (l Level) String() string {
	if int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// Name identifies a lockable resource.
type Name struct {
	Level Level
	Table uint32
	Key   uint64
}

// DatabaseName is the root of the lock hierarchy.
func DatabaseName() Name { return Name{Level: LevelDatabase} }

// TableName names a whole table.
func TableName(table uint32) Name { return Name{Level: LevelTable, Table: table} }

// RowName names one row (key) of a table.
func RowName(table uint32, key uint64) Name {
	return Name{Level: LevelRow, Table: table, Key: key}
}

func (n Name) String() string {
	switch n.Level {
	case LevelDatabase:
		return "db"
	case LevelTable:
		return fmt.Sprintf("table(%d)", n.Table)
	default:
		return fmt.Sprintf("row(%d,%d)", n.Table, n.Key)
	}
}

// hash spreads names over table partitions.
func (n Name) hash() uint64 {
	h := uint64(n.Level)<<56 ^ uint64(n.Table)<<32 ^ n.Key
	h *= 0x9e3779b97f4a7c15
	h ^= h >> 29
	return h
}
