package lock

// Lock escalation: when a transaction accumulates many row locks on
// one table, the manager trades them for a single table-level lock.
// This caps lock-table memory and, more importantly for the paper's
// argument, trades fine-grained concurrency for shorter lock-manager
// critical sections — the same single-thread-vs-scalability knob the
// engine configurations sweep.

// escalationState tracks a transaction's per-table row-lock pressure.
type escalationState struct {
	rowCounts map[uint32]int  // table -> row locks held
	escalated map[uint32]Mode // table -> escalated mode (S or X)
}

// maybeEscalate is consulted on every row-lock request. It returns
// (handled, err): when handled, the row lock is subsumed by an
// escalated table lock and must not be acquired individually.
func (m *Manager) maybeEscalate(txn uint64, name Name, mode Mode) (bool, error) {
	if m.opts.EscalationThreshold <= 0 || name.Level != LevelRow {
		return false, nil
	}
	m.escMu.Lock()
	st := m.esc[txn]
	if st == nil {
		st = &escalationState{rowCounts: map[uint32]int{}, escalated: map[uint32]Mode{}}
		m.esc[txn] = st
	}
	if escMode, ok := st.escalated[name.Table]; ok {
		// Already escalated. An X request under an S escalation must
		// upgrade the table lock.
		needed := S
		if mode == X {
			needed = X
		}
		m.escMu.Unlock()
		if Supremum(escMode, needed) != escMode {
			if err := m.acquireTable(txn, TableName(name.Table), needed); err != nil {
				return true, err
			}
			m.escMu.Lock()
			st.escalated[name.Table] = Supremum(escMode, needed)
			m.escMu.Unlock()
		}
		m.stats.escalatedAcqs.Add(1)
		return true, nil
	}
	st.rowCounts[name.Table]++
	if st.rowCounts[name.Table] < m.opts.EscalationThreshold {
		m.escMu.Unlock()
		return false, nil
	}
	m.escMu.Unlock()

	// Threshold crossed: acquire the table lock covering the strongest
	// mode this request needs; existing row locks are retained (they
	// are weaker than the table lock and released with ReleaseAll).
	target := S
	if mode == X {
		target = X
	}
	if err := m.acquireTable(txn, TableName(name.Table), target); err != nil {
		return true, err
	}
	m.escMu.Lock()
	st.escalated[name.Table] = target
	m.escMu.Unlock()
	m.stats.escalations.Add(1)
	return true, nil
}

// clearEscalation forgets txn's escalation state (at ReleaseAll).
func (m *Manager) clearEscalation(txn uint64) {
	if m.opts.EscalationThreshold <= 0 {
		return
	}
	m.escMu.Lock()
	delete(m.esc, txn)
	m.escMu.Unlock()
}

// Escalated reports whether txn currently holds an escalated lock on
// table (test/diagnostic hook).
func (m *Manager) Escalated(txn uint64, table uint32) bool {
	m.escMu.Lock()
	defer m.escMu.Unlock()
	if st := m.esc[txn]; st != nil {
		_, ok := st.escalated[table]
		return ok
	}
	return false
}
