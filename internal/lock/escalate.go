package lock

// Lock escalation: when a transaction accumulates many row locks on
// one table, the manager trades them for a single table-level lock.
// This caps lock-table memory and, more importantly for the paper's
// argument, trades fine-grained concurrency for shorter lock-manager
// critical sections — the same single-thread-vs-scalability knob the
// engine configurations sweep.
//
// Escalation state is per-transaction, so it lives in the Holder
// (protected by the holder's own uncontended mutex) rather than in a
// manager-global map.

// escalationState tracks a transaction's per-table row-lock pressure.
type escalationState struct {
	rowCounts map[uint32]int  // table -> row locks held
	escalated map[uint32]Mode // table -> escalated mode (S or X)
}

func (s *escalationState) clear() {
	// Like the holder's held map, drop instead of clearing once a big
	// transaction has grown the tables (clear walks full capacity).
	if len(s.rowCounts) > holderRetainCap {
		s.rowCounts = make(map[uint32]int)
	} else {
		clear(s.rowCounts)
	}
	if len(s.escalated) > holderRetainCap {
		s.escalated = make(map[uint32]Mode)
	} else {
		clear(s.escalated)
	}
}

// maybeEscalate is consulted on every row-lock request. It returns
// (handled, err): when handled, the row lock is subsumed by an
// escalated table lock and must not be acquired individually.
func (m *Manager) maybeEscalate(h *Holder, name Name, mode Mode) (bool, error) {
	if m.opts.EscalationThreshold <= 0 || name.Level != LevelRow {
		return false, nil
	}
	h.mu.Lock()
	if h.esc.rowCounts == nil {
		h.esc.rowCounts = map[uint32]int{}
		h.esc.escalated = map[uint32]Mode{}
	}
	if escMode, ok := h.esc.escalated[name.Table]; ok {
		// Already escalated. An X request under an S escalation must
		// upgrade the table lock.
		needed := S
		if mode == X {
			needed = X
		}
		h.mu.Unlock()
		if Supremum(escMode, needed) != escMode {
			if err := m.acquireTable(h, TableName(name.Table), needed); err != nil {
				return true, err
			}
			h.mu.Lock()
			h.esc.escalated[name.Table] = Supremum(escMode, needed)
			h.mu.Unlock()
		}
		m.stats.escalatedAcqs.Add(1)
		return true, nil
	}
	h.esc.rowCounts[name.Table]++
	if h.esc.rowCounts[name.Table] < m.opts.EscalationThreshold {
		h.mu.Unlock()
		return false, nil
	}
	h.mu.Unlock()

	// Threshold crossed: acquire the table lock covering the strongest
	// mode this request needs; existing row locks are retained (they
	// are weaker than the table lock and released with ReleaseAll).
	target := S
	if mode == X {
		target = X
	}
	if err := m.acquireTable(h, TableName(name.Table), target); err != nil {
		return true, err
	}
	h.mu.Lock()
	h.esc.escalated[name.Table] = target
	h.mu.Unlock()
	m.stats.escalations.Add(1)
	return true, nil
}

// EscalatedOn reports whether the holder currently has an escalated
// lock on table (test/diagnostic hook).
func (h *Holder) EscalatedOn(table uint32) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.esc.escalated[table]
	return ok
}

// Escalated reports whether txn currently holds an escalated lock on
// table (test/diagnostic hook, id-based form).
func (m *Manager) Escalated(txn uint64, table uint32) bool {
	if h := m.lookupHolder(txn); h != nil {
		return h.EscalatedOn(table)
	}
	return false
}
