package lock

import (
	"sync/atomic"
)

// Agent implements Speculative Lock Inheritance (SLI). In a storage
// manager, each worker thread executes a stream of transactions; SLI
// observes that consecutive transactions acquire the same hot,
// compatible locks (typically intent locks on tables and the
// database) and lets the agent thread keep those locks across
// transaction boundaries instead of releasing and re-acquiring them
// through the contended lock table.
//
// An Agent is not safe for concurrent use: it models one worker
// thread. The underlying Manager remains fully thread-safe, and the
// locks an agent retains are real table grants held by the agent's
// pseudo-transaction, so conflicting requests from other threads
// still queue correctly; the agent checks for such waiters at every
// transaction boundary and releases contested locks (lock reclaim).
type Agent struct {
	m  *Manager
	id uint64 // pseudo-transaction id owning retained grants

	h       *Holder       // lock context of the pseudo-transaction
	cache   map[Name]Mode // retained locks: name -> mode held by a.id
	reclaim *atomic.Bool  // set by the manager when someone waits on us
}

// agentIDBase separates agent pseudo-transactions from real ones.
const agentIDBase = uint64(1) << 62

var agentSeq atomic.Uint64

// NewAgent registers a new SLI agent with the manager.
func (m *Manager) NewAgent() *Agent {
	a := &Agent{
		m:       m,
		id:      agentIDBase + agentSeq.Add(1),
		cache:   make(map[Name]Mode),
		reclaim: new(atomic.Bool),
	}
	a.h = m.NewHolder(a.id)
	m.agents.Store(a.id, a.reclaim)
	return a
}

// AcquireFor obtains name in mode for the transaction owning h,
// satisfying the request from the agent's inherited locks when
// possible. A cache-satisfied acquire is still noted in h's held set
// — the transaction logically holds the lock even though the table
// grant belongs to the agent's pseudo-transaction — so Holder.Held
// and the engine agree on what the transaction may touch. At the
// transaction boundary OnCommitFor sees the name, finds it already
// retained (shouldInherit declines re-inheritance) and releases it
// for h.id, which is a no-op at the table: the agent's grant is
// untouched.
func (a *Agent) AcquireFor(h *Holder, name Name, mode Mode) error {
	a.checkReclaim()
	a.m.stats.acquires.Add(1)
	if held, ok := a.cache[name]; ok {
		if Supremum(held, mode) == held && (mode == IS || mode == IX) {
			// Covered by an inherited grant: no table visit at all.
			a.m.stats.inherited.Add(1)
			h.note(name, mode)
			return nil
		}
	}
	return a.m.acquireTable(h, name, mode)
}

// Acquire is the id-based form of AcquireFor.
func (a *Agent) Acquire(txn uint64, name Name, mode Mode) error {
	return a.AcquireFor(a.m.holderOf(txn), name, mode)
}

// OnCommitFor performs the transaction-boundary work: it releases the
// locks of the transaction owning h, inheriting the hot intent locks
// into the agent instead of returning them to the table.
func (a *Agent) OnCommitFor(h *Holder) {
	a.checkReclaim()
	a.m.stats.releaseAll.Add(1)
	names, modes := h.take()
	for i, name := range names {
		mode := modes[i]
		if a.shouldInherit(name, mode) && a.m.transfer(h.id, a.id, name) {
			a.cache[name] = mode
			a.h.note(name, mode)
			continue
		}
		a.m.releaseOne(h.id, name)
	}
}

// OnCommit is the id-based form of OnCommitFor.
func (a *Agent) OnCommit(txn uint64) {
	if h := a.m.takeHolder(txn); h != nil {
		a.OnCommitFor(h)
		return
	}
	a.checkReclaim()
	a.m.stats.releaseAll.Add(1)
}

// OnAbortFor releases everything without inheritance (an aborted
// transaction's locks are not speculation-worthy).
func (a *Agent) OnAbortFor(h *Holder) {
	h.ReleaseAll()
	a.checkReclaim()
}

// OnAbort is the id-based form of OnAbortFor.
func (a *Agent) OnAbort(txn uint64) {
	a.m.ReleaseAll(txn)
	a.checkReclaim()
}

// shouldInherit applies the SLI policy: only intent modes above row
// level, only on locks whose observed contention crosses the
// threshold, and only if not already retained.
func (a *Agent) shouldInherit(name Name, mode Mode) bool {
	if name.Level == LevelRow {
		return false
	}
	if mode != IS && mode != IX {
		return false
	}
	if _, already := a.cache[name]; already {
		return false
	}
	return a.m.contentionOf(name) >= a.m.opts.HotThreshold
}

// checkReclaim releases every retained lock if any other transaction
// was observed waiting on this agent.
func (a *Agent) checkReclaim() {
	if !a.reclaim.Swap(false) {
		return
	}
	a.ReleaseInherited()
}

// ReleaseInherited returns all retained locks to the table.
func (a *Agent) ReleaseInherited() {
	if len(a.cache) == 0 {
		return
	}
	a.h.ReleaseAll()
	clear(a.cache)
}

// Close releases retained locks and unregisters the agent.
func (a *Agent) Close() {
	a.ReleaseInherited()
	a.m.agents.Delete(a.id)
}

// InheritedCount reports how many locks the agent currently retains.
func (a *Agent) InheritedCount() int { return len(a.cache) }

// transfer moves txn's grant on name to the agent pseudo-transaction
// without releasing it. It reports success; failure (grant vanished)
// leaves the caller to release normally. A failure that finds the
// head already empty reclaims it like releaseOne would, so a stale
// head cannot linger in the table.
func (m *Manager) transfer(txn, agent uint64, name Name) bool {
	p := m.part(name)
	p.mu.Lock()
	lh := p.table[name]
	if lh == nil {
		p.mu.Unlock()
		return false
	}
	g, ok := lh.granted[txn]
	if !ok {
		retired := reclaimHeadLocked(p, name, lh)
		p.mu.Unlock()
		if retired != nil {
			m.retireHead(p, retired)
		}
		return false
	}
	delete(lh.granted, txn)
	if ag, ok := lh.granted[agent]; ok {
		ag.mode = Supremum(ag.mode, g.mode)
		ag.count++
	} else {
		lh.granted[agent] = &grant{mode: g.mode, count: 1}
	}
	p.mu.Unlock()
	return true
}
