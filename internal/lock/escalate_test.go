package lock

import (
	"testing"
	"time"
)

func TestEscalationAfterThreshold(t *testing.T) {
	m := NewManager(Options{EscalationThreshold: 5})
	// Acquire row locks up to the threshold.
	for i := uint64(0); i < 4; i++ {
		if err := m.Acquire(1, RowName(3, i), X); err != nil {
			t.Fatal(err)
		}
	}
	if m.Escalated(1, 3) {
		t.Fatal("escalated below threshold")
	}
	if err := m.Acquire(1, RowName(3, 4), X); err != nil {
		t.Fatal(err)
	}
	if !m.Escalated(1, 3) {
		t.Fatal("threshold crossing did not escalate")
	}
	st := m.StatsSnapshot()
	if st.Escalations != 1 {
		t.Fatalf("escalations = %d", st.Escalations)
	}
	// Subsequent row locks on the table are absorbed, not stored.
	before := m.StatsSnapshot().TableOps
	for i := uint64(100); i < 200; i++ {
		if err := m.Acquire(1, RowName(3, i), X); err != nil {
			t.Fatal(err)
		}
	}
	after := m.StatsSnapshot()
	if after.TableOps != before {
		t.Fatalf("escalated acquisitions still hit the lock table: %d ops", after.TableOps-before)
	}
	if after.EscalatedAcqs != 100 {
		t.Fatalf("escalatedAcqs = %d", after.EscalatedAcqs)
	}
	// The escalated X table lock blocks everyone else (who follows
	// the hierarchical protocol: intent lock on the table first).
	got := make(chan error, 1)
	go func() {
		if err := m.Acquire(2, TableName(3), IX); err != nil {
			got <- err
			return
		}
		got <- m.Acquire(2, RowName(3, 9999), X)
	}()
	select {
	case <-got:
		t.Fatal("row lock granted under another txn's escalated X")
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	if m.Escalated(1, 3) {
		t.Fatal("escalation survived ReleaseAll")
	}
}

func TestEscalationSharedThenUpgrade(t *testing.T) {
	m := NewManager(Options{EscalationThreshold: 3})
	for i := uint64(0); i < 3; i++ {
		if err := m.Acquire(1, RowName(4, i), S); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Escalated(1, 4) {
		t.Fatal("S escalation missing")
	}
	// Another reader can still share the table.
	if err := m.Acquire(2, TableName(4), S); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	// An X row request under the S escalation upgrades the table lock.
	if err := m.Acquire(1, RowName(4, 50), X); err != nil {
		t.Fatal(err)
	}
	if m.Held(1, TableName(4)) != X {
		t.Fatalf("table mode after escalated upgrade = %v", m.Held(1, TableName(4)))
	}
	m.ReleaseAll(1)
}

func TestEscalationDisabledByDefault(t *testing.T) {
	m := NewManager(Options{})
	for i := uint64(0); i < 100; i++ {
		if err := m.Acquire(1, RowName(5, i), X); err != nil {
			t.Fatal(err)
		}
	}
	if m.Escalated(1, 5) {
		t.Fatal("escalation fired while disabled")
	}
	if m.StatsSnapshot().Escalations != 0 {
		t.Fatal("escalation counted while disabled")
	}
	m.ReleaseAll(1)
}

func TestEscalationPerTable(t *testing.T) {
	m := NewManager(Options{EscalationThreshold: 4})
	// Spread row locks over two tables: neither crosses alone.
	for i := uint64(0); i < 3; i++ {
		m.Acquire(1, RowName(10, i), X)
		m.Acquire(1, RowName(11, i), X)
	}
	if m.Escalated(1, 10) || m.Escalated(1, 11) {
		t.Fatal("escalated despite per-table counts below threshold")
	}
	m.Acquire(1, RowName(10, 99), X)
	if !m.Escalated(1, 10) || m.Escalated(1, 11) {
		t.Fatal("escalation not table-scoped")
	}
	m.ReleaseAll(1)
}
