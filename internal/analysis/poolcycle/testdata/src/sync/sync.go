// Package sync models sync.Pool for poolcycle fixtures; the analyzer
// matches Get/Put by the defining package's base name and the Pool
// receiver type.
package sync

type Pool struct{ New func() any }

func (p *Pool) Get() any {
	if p.New != nil {
		return p.New()
	}
	return nil
}

func (p *Pool) Put(x any) {}
