// Known-good lifecycles: poolcycle must stay silent on this file.
package p

import "sync"

type job struct{ buf []byte }

var jobs = sync.Pool{New: func() any { return new(job) }}

// roundTrip is the canonical draw-use-return cycle.
func roundTrip() {
	j := jobs.Get().(*job)
	j.buf = j.buf[:0]
	jobs.Put(j)
}

// deferredPut satisfies the obligation up front and keeps using the
// object until return — the defer runs last.
func deferredPut() int {
	j := jobs.Get().(*job)
	defer jobs.Put(j)
	j.buf = append(j.buf, 1)
	return len(j.buf)
}

// handoffReturn transfers ownership to the caller.
func handoffReturn() *job {
	j := jobs.Get().(*job)
	return j
}

// handoffStore parks the object in a structure that now owns it.
type queue struct{ items []*job }

func (q *queue) handoffStore() {
	j := jobs.Get().(*job)
	q.items = append(q.items, j)
}

// putOnEveryPath returns the object on both arms of the branch.
func putOnEveryPath(fail bool) {
	j := jobs.Get().(*job)
	if fail {
		jobs.Put(j)
		return
	}
	j.buf = nil
	jobs.Put(j)
}
