// Lock-head lifecycle shapes: the freelist retire protocol from
// internal/lock modeled for poolcycle. A head drawn from the pool may
// be retired only after nothing else — in particular the partition
// table — still references it.
package p

import "sync"

type lockHead struct {
	granted    map[uint64]int
	contention int
}

var heads = sync.Pool{New: func() any { return new(lockHead) }}

type tablePart struct{ table map[string]*lockHead }

// retireWhileReachable returns the head to the pool and then installs
// it in the table anyway: the table and the pool's next Get'er now
// share mutable state.
func (p *tablePart) retireWhileReachable(name string) {
	h := heads.Get().(*lockHead)
	h.contention = 0
	heads.Put(h)
	p.table[name] = h // want "use of h after it was returned to the pool"
}

// retireThenTouch finishes its bookkeeping on a head that already went
// back to the freelist.
func (p *tablePart) retireThenTouch(name string) {
	h := heads.Get().(*lockHead)
	delete(p.table, name)
	heads.Put(h)
	h.contention++ // want "use of h after it was returned to the pool"
}

// missInstall is the correct miss path: draw, reset, publish. The
// table owns the head from the moment it is installed.
func (p *tablePart) missInstall(name string) {
	h := heads.Get().(*lockHead)
	h.contention = 0
	p.table[name] = h
}

// unlinkThenRetire is the correct retire order: the head leaves the
// table first, and only the (now sole) owner pushes it to the pool.
func (p *tablePart) unlinkThenRetire(name string) {
	h := heads.Get().(*lockHead)
	p.table[name] = h
	// ... request served, head observed empty ...
	delete(p.table, name)
	heads.Put(h)
}
