// Package p is poolcycle's known-bad fixture.
package p

import "sync"

type buf struct{ n int }

var pool = sync.Pool{New: func() any { return new(buf) }}

// useAfterPut touches the object after returning it to the pool: the
// read races with the next Get'er once the pool recycles it.
func useAfterPut() int {
	b := pool.Get().(*buf)
	b.n = 1
	pool.Put(b)
	return b.n // want "use of b after it was returned to the pool"
}

// leakOnEarlyReturn forgets the Put on the error path, silently
// degrading the pool to plain allocation.
func leakOnEarlyReturn(fail bool) {
	b := pool.Get().(*buf) // want "neither Put back nor handed off"
	if fail {
		return
	}
	b.n = 2
	pool.Put(b)
}

// discarded draws an object nothing can ever Put back.
func discarded() {
	pool.Get() // want "result of Pool.Get is discarded"
}
