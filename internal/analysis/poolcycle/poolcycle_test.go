package poolcycle_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/poolcycle"
)

func TestPoolcycleFixtures(t *testing.T) {
	antest.Run(t, "testdata", poolcycle.Analyzer, "p")
}
