// Package poolcycle implements the hydra-vet analyzer for sync.Pool
// object lifecycles.
//
// Hydra leans on sync.Pool for its hottest allocations — WAL encode
// buffers, transaction handles, commit-waiter channels — and pooled
// objects have a strict ownership discipline: an object drawn with
// Get is owned by the drawing function until it is either Put back or
// handed off (returned, stored into a structure, passed to another
// function). Two bugs follow from breaking it, and both are invisible
// to the race detector until the pool actually recycles the object
// under load:
//
//   - use-after-Put: touching the object after returning it to the
//     pool races with the next Get'er;
//   - a leaked draw: an object that is neither Put back nor handed
//     off silently degrades the pool to plain allocation.
//
// The analyzer tracks ownership intra-procedurally with the lockflow
// engine: Get is an Acquire of the assigned variable, Put a Release,
// and any hand-off (return, assignment to another place, call
// argument, channel send, address-taken, captured by a closure) ends
// tracking. A deferred Put satisfies the obligation while keeping the
// object usable for the rest of the function. Reports are
// branch-aware: an object Put on one arm of an if and used on the
// other is fine; used after the arms rejoin is not.
package poolcycle

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strconv"

	"hydra/internal/analysis"
	"hydra/internal/analysis/lockflow"
)

// Analyzer is the poolcycle analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "poolcycle",
	Doc:  "sync.Pool objects must be Put back or handed off exactly once, and never used after Put",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// poolCallKind classifies a call against sync.Pool's method set.
func poolCallKind(info *types.Info, c *ast.CallExpr) (kind string) {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection := info.Selections[sel]
	if selection == nil {
		return ""
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	// Matching by defining-package base name ("sync") lets fixtures
	// model the pool with a small local package of the same name.
	if path.Base(fn.Pkg().Path()) != "sync" || recvTypeName(selection.Recv()) != "Pool" {
		return ""
	}
	switch fn.Name() {
	case "Get", "Put":
		return fn.Name()
	}
	return ""
}

func recvTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pre-pass 1: map each Get call to the simple variable its result
	// lands in (x := p.Get(), x := p.Get().(*T), var x = p.Get()).
	// A Get whose result is used any other way is a hand-off at birth
	// (or, for a bare statement, an immediate leak).
	assignedName := make(map[*ast.CallExpr]string)
	tracked := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var lhs []ast.Expr
		var rhs []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			lhs, rhs = n.Lhs, n.Rhs
		case *ast.ValueSpec:
			for _, name := range n.Names {
				lhs = append(lhs, name)
			}
			rhs = n.Values
		default:
			return true
		}
		if len(lhs) != 1 || len(rhs) != 1 {
			return true
		}
		id, ok := lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if get := getCallIn(info, rhs[0]); get != nil {
			assignedName[get] = id.Name
			tracked[id.Name] = true
		}
		return true
	})

	// Pre-pass 2: positions where a tracked name is handed off —
	// returned, assigned elsewhere, passed to a call that is not the
	// pool's Put, sent on a channel, address-taken, or captured by a
	// function literal. From that point the function no longer owns
	// the object and tracking stops.
	handoff := make(map[token.Pos]bool)
	// mark records hand-off positions of the OBJECT itself. It stays
	// shallow on purpose: `return b` hands b off, but `return b.n`
	// only copies a field out, and nested calls/selectors are visited
	// by the enclosing Inspect anyway.
	var mark func(e ast.Expr)
	mark = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if tracked[e.Name] {
				handoff[e.Pos()] = true
			}
		case *ast.ParenExpr:
			mark(e.X)
		case *ast.UnaryExpr:
			mark(e.X) // &b escapes b
		case *ast.StarExpr:
			mark(e.X)
		case *ast.TypeAssertExpr:
			mark(e.X)
		case *ast.KeyValueExpr:
			mark(e.Value)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				mark(el)
			}
		case *ast.BinaryExpr:
			mark(e.X)
			mark(e.Y)
		case *ast.SliceExpr:
			mark(e.X)
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.CallExpr:
			// b.f / b[i] extract a value without moving ownership;
			// calls are marked via their own Inspect visit.
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mark(r)
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				if getCallIn(info, r) == nil {
					mark(r)
				}
			}
		case *ast.CallExpr:
			if poolCallKind(info, n) != "Put" {
				for _, a := range n.Args {
					mark(a)
				}
			}
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				mark(e)
			}
		case *ast.FuncLit:
			// A closure capturing the object may use it arbitrarily
			// later; treat every tracked name inside as handed off.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && tracked[id.Name] {
					handoff[id.Pos()] = true
				}
				return true
			})
			return false
		}
		return true
	})

	// The walk. Held keys are variable names owning a live pool draw;
	// handedOff marks names whose ownership left the function,
	// deferSafe names whose Put obligation a defer satisfies (still
	// usable until return). reported dedups multi-exit reports.
	handedOff := make(map[string]bool)
	deferSafe := make(map[string]bool)
	everOwned := make(map[string]token.Pos)
	reported := make(map[string]bool)

	lockflow.WalkFunc(fd.Body, lockflow.Hooks{
		Classify: func(c *ast.CallExpr, deferred bool) (lockflow.Action, string) {
			switch poolCallKind(pass.TypesInfo, c) {
			case "Get":
				name, ok := assignedName[c]
				if !ok {
					// Result discarded: the object can never be Put.
					pass.Reportf(c.Pos(), "result of Pool.Get is discarded: the object can never be returned to the pool")
					return lockflow.None, ""
				}
				handedOff[name] = false // a fresh draw restarts tracking
				deferSafe[name] = false
				everOwned[name] = c.Pos()
				return lockflow.Acquire, name
			case "Put":
				if len(c.Args) != 1 {
					return lockflow.None, ""
				}
				id, ok := c.Args[0].(*ast.Ident)
				if !ok || !tracked[id.Name] {
					return lockflow.None, ""
				}
				if deferred {
					// Obligation met at function end; the object stays
					// usable until then.
					deferSafe[id.Name] = true
				}
				return lockflow.Release, id.Name
			}
			return lockflow.None, ""
		},
		Visit: func(n ast.Node, held map[string]lockflow.Hold) {
			id, ok := n.(*ast.Ident)
			if !ok || !tracked[id.Name] {
				return
			}
			_, owned := held[id.Name]
			if handoff[id.Pos()] && (owned || handedOff[id.Name] || deferSafe[id.Name]) {
				// Ownership leaves this function here; stop tracking
				// on this and every later path.
				delete(held, id.Name)
				handedOff[id.Name] = true
				return
			}
			// A hand-off of an object already returned to the pool is
			// NOT a transfer of ownership — it publishes a pointer the
			// next Get'er will mutate (e.g. retiring a lock head to a
			// freelist while the partition table still references it),
			// so it falls through to the use-after-Put report.
			if owned {
				return
			}
			if _, was := everOwned[id.Name]; !was || handedOff[id.Name] || deferSafe[id.Name] {
				return
			}
			key := "use:" + id.Name + ":" + posKey(id.Pos())
			if reported[key] {
				return
			}
			reported[key] = true
			pass.Reportf(id.Pos(), "use of %s after it was returned to the pool (use-after-Put races with the next Get)", id.Name)
		},
		FuncEnd: func(_ *ast.ReturnStmt, held map[string]lockflow.Hold) {
			for name, h := range held {
				if handedOff[name] || deferSafe[name] {
					continue
				}
				key := "leak:" + name + ":" + posKey(h.Pos)
				if reported[key] {
					continue
				}
				reported[key] = true
				pass.Reportf(h.Pos, "pool object %s is neither Put back nor handed off on some path (leaked draw)", name)
			}
		},
	})
}

// getCallIn unwraps e (through type assertions and parens) to a
// sync.Pool Get call, or nil.
func getCallIn(info *types.Info, e ast.Expr) *ast.CallExpr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.TypeAssertExpr:
			e = t.X
		case *ast.CallExpr:
			if poolCallKind(info, t) == "Get" {
				return t
			}
			return nil
		default:
			return nil
		}
	}
}

func posKey(p token.Pos) string { return strconv.Itoa(int(p)) }
