// Package lockscope implements the hydra-vet analyzer forbidding
// blocking operations inside shard/stripe critical sections.
//
// Hydra's scalability story depends on its short critical sections
// staying short: a sync.Mutex (or sync2 spin lock) guarding a buffer
// shard, lock-table partition or WAL accounting structure must never
// be held across store IO, a channel operation, a lock-manager
// Acquire, or a WAL durability wait. Holding a shard mutex across a
// page write-back, for example, stalls every fetcher hashing to that
// shard for the duration of a disk write — the exact pathology this
// analyzer exists to catch (and did catch: see the dirty-victim
// write-back finding in DESIGN.md).
//
// The analysis is intra-package and interprocedural one package at a
// time: a function "may block" if it directly performs a blocking
// operation or calls a same-package function that does; calls into
// other packages are matched against a table of known-blocking
// methods (PageStore IO, os.File IO, lock.Manager/Holder Acquire,
// wal.Log waits, time.Sleep, WaitGroup.Wait). sync.Cond.Wait is
// special-cased: it releases its own mutex, so it only counts when
// more than one lock is held at the wait (direct case), and it never
// propagates into caller summaries (the condvar's mutex is almost
// always the one the caller holds).
//
// Page latches (internal/latch) are deliberately not guard locks
// here: frames are legitimately latched across write-back IO.
//
// Two declaration-site directives tune the analysis, both requiring a
// "-- justification" suffix:
//
//   - //hydra:vet:coarse on a lock field declares the lock
//     intentionally coarse — it exists to serialize a whole rare
//     operation (DDL, a checkpoint, the Coarse index mode) and IO
//     under it is the design, not an accident. Such locks are not
//     guards for this analyzer.
//   - //hydra:vet:nonpropagating on a function excludes it from
//     may-block summaries: it either releases the caller's lock
//     before blocking (lock.Manager.wait) or its channel operations
//     are guaranteed non-blocking (capacity-1 single-send protocols).
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"

	"hydra/internal/analysis"
	"hydra/internal/analysis/lockflow"
)

// Analyzer is the lockscope analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockscope",
	Doc:  "no blocking operation (store IO, channel op, lock-manager Acquire, WAL wait) while a shard/stripe mutex or sync2 lock is held",
	Run:  run,
}

// blockKind distinguishes how an operation blocks, for the Cond.Wait
// exception.
type blockKind int

const (
	blockNone blockKind = iota
	blockOp             // unconditionally blocking
	blockCondWait
)

// blockingMethods maps (defining package base name) -> method names
// that block. Matching by defining package keeps the table robust to
// how the receiver is spelled (interface, embedding, pointer).
var blockingMethods = map[string]map[string]bool{
	"buffer": {
		"ReadPage": true, "WritePage": true, "Allocate": true,
		"NumPages": true, "Sync": true, "Close": true,
		"Fetch": true, "NewPage": true, "FlushAll": true, "FlushPage": true,
	},
	"os": {
		"Read": true, "Write": true, "ReadAt": true, "WriteAt": true,
		"Sync": true, "Seek": true,
	},
	"lock": {"Acquire": true},
	"wal": {
		"WaitFlushed": true, "Flush": true, "Insert": true,
		"Append": true, "AppendFields": true, "Close": true,
	},
}

// blockingPkgFuncs maps package base name -> package-level functions
// that block.
var blockingPkgFuncs = map[string]map[string]bool{
	"time": {"Sleep": true},
}

const (
	coarseMarker  = "//hydra:vet:coarse"
	nonpropMarker = "//hydra:vet:nonpropagating"
)

func run(pass *analysis.Pass) error {
	funcs := packageFuncs(pass)
	coarse := coarseLockFields(pass)
	nonprop := nonpropagatingFuncs(pass)

	// Phase 1: per-function direct facts — the first blocking
	// operation (if any) and the same-package call edges.
	direct := make(map[*types.Func]string) // fn -> reason
	calls := make(map[*types.Func][]*types.Func)
	for fn, decl := range funcs {
		skip := lockflow.SelectCommNodes(decl.Body)
		lockflow.WalkFunc(decl.Body, lockflow.Hooks{
			Visit: func(n ast.Node, _ map[string]lockflow.Hold) {
				if _, ok := direct[fn]; !ok {
					if desc, kind := blockingNode(pass.TypesInfo, n, skip); kind == blockOp {
						direct[fn] = desc
					}
				}
				if c, ok := n.(*ast.CallExpr); ok {
					if callee := staticCallee(pass, c); callee != nil {
						calls[fn] = append(calls[fn], callee)
					}
				}
			},
		})
	}

	// Phase 2: propagate to a fixed point. mayBlock carries the call
	// chain for the diagnostic. Nonpropagating functions never enter
	// the map: their blocking happens with the caller's lock released
	// (or provably cannot block).
	mayBlock := make(map[*types.Func]string)
	for fn, reason := range direct {
		if !nonprop[fn] {
			mayBlock[fn] = reason
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if _, done := mayBlock[fn]; done || nonprop[fn] {
				continue
			}
			for _, callee := range callees {
				if reason, ok := mayBlock[callee]; ok {
					mayBlock[fn] = callee.Name() + " → " + reason
					changed = true
					break
				}
			}
		}
	}

	// Phase 3: re-walk with guard-lock tracking and report blocking
	// operations (direct or via a may-block same-package call) inside
	// critical sections.
	for _, decl := range funcs {
		skip := lockflow.SelectCommNodes(decl.Body)
		reported := make(map[token.Pos]bool)
		lockflow.WalkFunc(decl.Body, lockflow.Hooks{
			Classify: func(c *ast.CallExpr, deferred bool) (lockflow.Action, string) {
				act, key, class := lockflow.ClassifyLockCall(pass.TypesInfo, c)
				if class == lockflow.ClassNone || class == lockflow.ClassLatch {
					return lockflow.None, ""
				}
				if obj := lockFieldObj(pass.TypesInfo, c); obj != nil && coarse[obj] {
					return lockflow.None, "" // declared coarse: not a guard
				}
				if deferred && act == lockflow.Release {
					return lockflow.None, "" // held to function end
				}
				return act, key
			},
			Visit: func(n ast.Node, held map[string]lockflow.Hold) {
				if len(held) == 0 || reported[n.Pos()] {
					return
				}
				if desc, kind := blockingNode(pass.TypesInfo, n, skip); kind != blockNone {
					if kind == blockCondWait && len(held) <= 1 {
						return // condvar releases its own (sole held) mutex
					}
					reported[n.Pos()] = true
					pass.Reportf(n.Pos(), "%s while holding %s", desc, heldList(held))
					return
				}
				c, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				// A lock's own Lock() blocks on contention, but
				// nesting is latchorder's concern, not lockscope's.
				if act, _, _ := lockflow.ClassifyLockCall(pass.TypesInfo, c); act != lockflow.None {
					return
				}
				if callee := staticCallee(pass, c); callee != nil {
					if reason, mb := mayBlock[callee]; mb {
						reported[n.Pos()] = true
						pass.Reportf(n.Pos(), "call to %s may block (%s) while holding %s",
							callee.Name(), reason, heldList(held))
					}
				}
			},
		})
	}
	return nil
}

// coarseLockFields collects struct fields marked //hydra:vet:coarse.
// A marker without a "-- justification" suffix is itself reported.
func coarseLockFields(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if !markerOn(pass, coarseMarker, field.Doc, field.Comment) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// nonpropagatingFuncs collects functions marked
// //hydra:vet:nonpropagating.
func nonpropagatingFuncs(pass *analysis.Pass) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !markerOn(pass, nonpropMarker, fd.Doc) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = true
			}
		}
	}
	return out
}

// markerOn reports whether either comment group carries the marker
// with a justification, reporting malformed markers.
func markerOn(pass *analysis.Pass, marker string, groups ...*ast.CommentGroup) bool {
	found := false
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, marker) {
				continue
			}
			_, justification, ok := strings.Cut(c.Text, "--")
			if !ok || strings.TrimSpace(justification) == "" {
				pass.Reportf(c.Pos(), "%s marker missing justification: want %s -- <reason>", marker, marker)
				continue
			}
			found = true
		}
	}
	return found
}

// lockFieldObj resolves the lock operated on by a Lock/Unlock-style
// call to its declaring struct field, when it is one.
func lockFieldObj(info *types.Info, c *ast.CallExpr) types.Object {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fe, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s := info.Selections[fe]; s != nil && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// packageFuncs indexes the package's function declarations by their
// types object.
func packageFuncs(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// staticCallee resolves a call to a function or method defined in the
// package under analysis.
func staticCallee(pass *analysis.Pass, c *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := c.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		if selection := pass.TypesInfo.Selections[fun]; selection != nil {
			obj = selection.Obj()
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() != pass.Pkg {
		return nil
	}
	return fn
}

// blockingNode classifies an AST node as a blocking operation.
func blockingNode(info *types.Info, n ast.Node, skip map[ast.Node]bool) (string, blockKind) {
	if skip[n] {
		return "", blockNone
	}
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", blockOp
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", blockOp
		}
	case *ast.RangeStmt:
		if t := info.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return "range over channel", blockOp
			}
		}
	case *ast.SelectStmt:
		for _, cc := range n.Body.List {
			if comm, ok := cc.(*ast.CommClause); ok && comm.Comm == nil {
				return "", blockNone // has default: non-blocking
			}
		}
		return "blocking select", blockOp
	case *ast.CallExpr:
		return blockingCall(info, n)
	}
	return "", blockNone
}

// blockingCall matches a call against the known-blocking tables.
func blockingCall(info *types.Info, c *ast.CallExpr) (string, blockKind) {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", blockNone
	}
	if selection := info.Selections[sel]; selection != nil {
		fn, ok := selection.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", blockNone
		}
		pkg := path.Base(fn.Pkg().Path())
		name := fn.Name()
		if pkg == "sync" {
			recv := lockflow.NamedRecvName(selection.Recv())
			if name == "Wait" && recv == "WaitGroup" {
				return "(sync.WaitGroup).Wait", blockOp
			}
			if name == "Wait" && recv == "Cond" {
				return "(sync.Cond).Wait", blockCondWait
			}
			return "", blockNone
		}
		// PageStore-shaped interfaces in fixture packages match by
		// interface name so testdata needn't import hydra internals.
		if m, ok := blockingMethods[pkg]; ok && m[name] {
			return "(" + pkg + ")." + name, blockOp
		}
		if lockflow.NamedRecvName(selection.Recv()) == "PageStore" && blockingMethods["buffer"][name] {
			return "(PageStore)." + name, blockOp
		}
		return "", blockNone
	}
	// Package-qualified function call (e.g. time.Sleep).
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", blockNone
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	if !ok {
		return "", blockNone
	}
	pkg := path.Base(pn.Imported().Path())
	if m, ok := blockingPkgFuncs[pkg]; ok && m[sel.Sel.Name] {
		return pkg + "." + sel.Sel.Name, blockOp
	}
	return "", blockNone
}

// heldList renders the held locks in acquisition order.
func heldList(held map[string]lockflow.Hold) string {
	type kv struct {
		k string
		o int
	}
	var list []kv
	for k, h := range held {
		list = append(list, kv{k, h.Order})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].o < list[j].o })
	var names []string
	for _, e := range list {
		names = append(names, e.k)
	}
	return strings.Join(names, ", ")
}
