// Package sync models the standard library lock types for hydra-vet
// fixtures. Analyzers classify locks by the defining package's base
// name, so this local model exercises the same code paths without
// source-type-checking the real standard library on every test run.
package sync

type Mutex struct{ held bool }

func (m *Mutex) Lock()   { m.held = true }
func (m *Mutex) Unlock() { m.held = false }

type RWMutex struct{ held int }

func (m *RWMutex) Lock()    { m.held = -1 }
func (m *RWMutex) Unlock()  { m.held = 0 }
func (m *RWMutex) RLock()   { m.held++ }
func (m *RWMutex) RUnlock() { m.held-- }

type WaitGroup struct{ n int }

func (w *WaitGroup) Add(d int) { w.n += d }
func (w *WaitGroup) Done()     { w.n-- }
func (w *WaitGroup) Wait()     {}

type Cond struct{ L *Mutex }

func (c *Cond) Wait()      {}
func (c *Cond) Broadcast() {}
