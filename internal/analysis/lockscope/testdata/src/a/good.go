// Known-good shapes: lockscope must stay silent on this entire file.
package a

import "sync"

// lockFree blocks with nothing held.
func lockFree(ch chan int) { ch <- 1 }

// afterUnlock blocks only once the lock is released.
func afterUnlock(s *shard, ch chan int) {
	s.mu.Lock()
	s.table[1] = 1
	s.mu.Unlock()
	ch <- 1
}

// branchReleases unlocks on both paths before any IO.
func branchReleases(p *pool, id uint64, fast bool) error {
	p.mu.Lock()
	if fast {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	return p.writeBack(id)
}

// nonBlockingSelect cannot park: it has a default.
func nonBlockingSelect(s *shard, ch chan int) {
	s.mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	s.mu.Unlock()
}

// condWaitOwnMutex: Cond.Wait releases the (only) held mutex while
// parked, the standard condition-variable protocol.
func condWaitOwnMutex(s *shard, c *sync.Cond) {
	s.mu.Lock()
	for s.table == nil {
		c.Wait()
	}
	s.mu.Unlock()
}

// checkpointer's lock is declared coarse: serializing a whole IO
// operation is its purpose, so it is not a guard for lockscope.
type checkpointer struct {
	//hydra:vet:coarse -- serializes whole checkpoints; a checkpoint is IO end to end
	mu    sync.Mutex
	store PageStore
}

func (c *checkpointer) checkpoint(id uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store.WritePage(id)
}

// segdev mirrors wal.SegmentedDevice: the device-level mutex is
// declared coarse because rotation must mutate the segment map, the
// dirty set, and the file set atomically — IO under it is the design,
// and the dirty-set bookkeeping it guards is what keeps Sync at
// O(dirty) instead of O(live segments).
type segdev struct {
	//hydra:vet:coarse -- device-level lock: rotation mutates segment map, dirty set, and files atomically
	mu    sync.Mutex
	dirty map[uint64]bool
	store PageStore
}

func (d *segdev) write(id uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.store.WritePage(id); err != nil {
		return err
	}
	d.dirty[id] = true
	return nil
}

func (d *segdev) syncDirty() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id := range d.dirty {
		if err := d.store.Sync(); err != nil {
			return err
		}
		delete(d.dirty, id)
	}
	return nil
}

// handoff releases the caller's lock before blocking, like
// lock.Manager.wait; the marker keeps it out of may-block summaries.
//
//hydra:vet:nonpropagating -- releases s.mu before blocking on ch
func handoff(s *shard, ch chan int) {
	s.mu.Unlock()
	<-ch
}

func caller(s *shard, ch chan int) {
	s.mu.Lock()
	handoff(s, ch)
}

// suppressed demonstrates a justified line-level baseline.
func suppressed(s *shard, ch chan int) {
	s.mu.Lock()
	//hydra:vet:ignore lockscope -- capacity-1 channel, receiver guaranteed by protocol
	ch <- 1
	s.mu.Unlock()
}

// goroutineBodyIsNotUnderLock: the spawned literal runs with its own
// (empty) lock context.
func goroutineBodyIsNotUnderLock(s *shard, ch chan int) {
	s.mu.Lock()
	go func() {
		ch <- 1
	}()
	s.mu.Unlock()
}

// verShard is the version-chain shard shape: its mutex is spin-tier —
// the critical sections are map lookups and pointer splices only, so
// lockscope must stay silent even though the surrounding read path
// does IO before and after the section.
type verShard struct {
	mu     sync.Mutex
	chains map[uint64]int
}

func chainLookup(s *verShard, k uint64, p *pool) error {
	if err := p.store.ReadPage(k); err != nil { // heap read, nothing held
		return err
	}
	s.mu.Lock()
	_ = s.chains[k]
	s.mu.Unlock()
	return nil
}

func chainInstall(s *verShard, k uint64) {
	s.mu.Lock()
	s.chains[k] = s.chains[k] + 1
	s.mu.Unlock()
}
