// Package a is lockscope's known-bad fixture: every want line is a
// blocking operation inside a critical section.
package a

import "sync"

// PageStore mirrors the shape of hydra's buffer.PageStore; lockscope
// matches the interface name so fixtures need no hydra imports.
type PageStore interface {
	ReadPage(id uint64) error
	WritePage(id uint64) error
	Sync() error
}

type shard struct {
	mu    sync.Mutex
	table map[uint64]int
}

type pool struct {
	mu    sync.Mutex
	store PageStore
	dirty bool
}

// sendUnderLock blocks on a channel inside the critical section.
func sendUnderLock(s *shard, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want "channel send while holding s.mu"
	s.mu.Unlock()
}

// recvUnderDefer: a deferred unlock holds the lock to function end,
// so the receive is still inside the critical section.
func recvUnderDefer(s *shard, ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch // want "channel receive while holding s.mu"
}

// ioUnderLock is the direct form of the dirty-victim write-back bug.
func (p *pool) ioUnderLock(id uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.store.WritePage(id) // want "\\(PageStore\\).WritePage while holding p.mu"
}

// fetch reproduces the pre-fix shape of buffer.Pool.Fetch: the hit
// path unlocks and returns early, and the miss path calls a victim
// scan that reaches store IO two frames down — only the
// terminated-branch-aware interprocedural analysis sees it.
func (p *pool) fetch(id uint64) error {
	p.mu.Lock()
	if p.dirty {
		p.mu.Unlock()
		return nil
	}
	err := p.victim(id) // want "call to victim may block .writeBack → \\(PageStore\\).WritePage. while holding p.mu"
	p.mu.Unlock()
	return err
}

func (p *pool) victim(id uint64) error { return p.writeBack(id) }

func (p *pool) writeBack(id uint64) error { return p.store.WritePage(id) }

// waitUnderLock: WaitGroup.Wait blocks until someone else calls Done.
func waitUnderLock(s *shard, wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "\\(sync.WaitGroup\\).Wait while holding s.mu"
	s.mu.Unlock()
}

// condWaitTwoLocks: Cond.Wait releases its own mutex, but the second
// held lock stays held across the sleep.
func condWaitTwoLocks(a, b *shard, c *sync.Cond) {
	a.mu.Lock()
	b.mu.Lock()
	c.Wait() // want "\\(sync.Cond\\).Wait while holding"
	b.mu.Unlock()
	a.mu.Unlock()
}

// devUncoarse is the WAL dirty-segment-sync shape with a plain guard
// mutex: fsyncing the dirty set while holding it is exactly the stall
// the coarse marker exists to force a decision about (compare segdev
// in good.go, whose device mutex is declared coarse).
type devUncoarse struct {
	mu    sync.Mutex
	dirty map[uint64]bool
	store PageStore
}

func (d *devUncoarse) syncDirty() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id := range d.dirty {
		if err := d.store.Sync(); err != nil { // want "\\(PageStore\\).Sync while holding d.mu"
			return err
		}
		delete(d.dirty, id)
	}
	return nil
}

// blockingSelect has no default, so it parks.
func blockingSelect(s *shard, ch chan int) {
	s.mu.Lock()
	select { // want "blocking select while holding s.mu"
	case v := <-ch:
		s.table[0] = v
	case ch <- 2:
	}
	s.mu.Unlock()
}

// verShardIO is the chain-walk regression lockscope guards against:
// resolving a version by rereading the heap page while still holding
// the chain shard's spin-tier mutex turns every concurrent install on
// the shard into an IO-length stall.
type verShardIO struct {
	mu    sync.Mutex
	store PageStore
}

func (s *verShardIO) resolveFromHeap(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.ReadPage(id) // want "\\(PageStore\\).ReadPage while holding s.mu"
}
