package lockscope_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/lockscope"
)

func TestLockscopeFixtures(t *testing.T) {
	antest.Run(t, "testdata", lockscope.Analyzer, "a")
}
