package latchorder_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/latchorder"
)

func TestLatchorderFixtures(t *testing.T) {
	antest.Run(t, "testdata", latchorder.Analyzer, "wal", "buffer", "core")
}
