package latchorder_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"hydra/internal/analysis"
	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/latchorder"
)

func TestLatchorderFixtures(t *testing.T) {
	antest.Run(t, "testdata", latchorder.Analyzer, "wal", "buffer", "core")
}

// TestLatchorderCrossPackage seeds the dora → core → lock shape: the
// inversion is two package boundaries below the call site and only
// visible through exported cross-package summaries.
func TestLatchorderCrossPackage(t *testing.T) {
	antest.Run(t, "testdata", latchorder.Analyzer, "dora", "core", "lock")
}

// repoPackages is the storage manager's real call graph: the packages
// whose latch discipline the closure must settle on.
var repoPackages = []string{
	"internal/buffer", "internal/core", "internal/dora", "internal/lock",
	"internal/staged", "internal/sync2", "internal/wal",
}

func runOverRepo(t *testing.T) []string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
	ld, err := analysis.NewLoader(root, "")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load(repoPackages...)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{latchorder.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	fset := pkgs[0].Fset // the loader shares one FileSet across packages
	var out []string
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message))
	}
	return out
}

// TestLatchorderRepoNoChurn is the acceptance gate for the fixed-point
// closure: over the repository's real call graph the analysis must
// converge — two fully independent loads and runs yield identical
// diagnostics, chains included — and must run clean, every remaining
// finding being individually suppressed with a justified marker.
func TestLatchorderRepoNoChurn(t *testing.T) {
	first := runOverRepo(t)
	second := runOverRepo(t)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("diagnostics churn across runs:\nfirst:  %v\nsecond: %v", first, second)
	}
	for _, d := range first {
		t.Errorf("latchorder finding on real call graph: %s", d)
	}
}
