// Package latchorder implements the hydra-vet analyzer enforcing
// Hydra's declared lock hierarchy.
//
// Deadlock freedom in Hydra rests on a total order over lock tiers:
// coarse engine-level locks are acquired before per-structure locks,
// which are acquired before page latches, which are acquired before
// the short shard/stripe mutexes that protect pool and WAL
// bookkeeping. The analyzer walks every function with the lockflow
// engine and reports any acquisition whose declared rank is LOWER
// than a rank already held — the inversion that, paired with the
// opposite nesting elsewhere, deadlocks.
//
// Locks are identified by declaration site ("pkg.Type.field", as
// rendered by lockflow.LockSite); the hierarchy table
// (latchsum.Hierarchy) assigns each known site a rank. Unranked sites
// are ignored — the analyzer only constrains locks that opt into the
// hierarchy — and equal ranks are allowed, because same-tier
// acquisition (latch crabbing down a B+-tree, lock stripes keyed by
// hash) is ordered by a protocol the type system cannot see.
//
// Nesting is checked whole-program: latchsum computes, for every
// function, the minimum-ranked acquisition reachable on its
// synchronous call path — a fixed point over the package call graph,
// crossing package boundaries through exported summaries — so a call
// to a function that (arbitrarily many calls down) acquires a rank
// below one currently held is the same inversion as a direct
// acquisition, and the diagnostic spells the witness chain
// ("via dora.runWhole → core.apply → lock.acquire"). This catches the
// DORA executor shape, where the transaction body's acquisitions hide
// behind the executor→core.Txn call boundary, and its deeper
// cross-package variants.
//
// Deferred calls are checked against the ranks still held at function
// exit, where they actually run: a lock whose release is itself
// deferred is considered held by exactly the deferred calls
// registered before that release (defers run LIFO). Immediately-
// invoked function literals are part of the synchronous path;
// go-statement bodies and escaping literals are independent execution
// contexts walked with an empty held set.
package latchorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"hydra/internal/analysis"
	"hydra/internal/analysis/latchsum"
	"hydra/internal/analysis/lockflow"
)

// Analyzer is the latchorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "latchorder",
	Doc:  "lock/latch acquisition order must follow the declared hierarchy (engine locks < structure locks < page latches < shard/stripe mutexes), checked through arbitrarily deep call chains across packages",
	Run:  run,
}

// Hierarchy is the declared rank table; it lives in latchsum so the
// summary closure and blockscope share one source of truth.
var Hierarchy = latchsum.Hierarchy

func run(pass *analysis.Pass) error {
	pkg := pass.Package
	if pkg == nil {
		// Detached driver (go vet unit mode): rebuild the package view;
		// imports resolve through latchsum's disk cache when the driver
		// installed one.
		pkg = &analysis.Package{
			Path:  pass.Pkg.Path(),
			Fset:  pass.Fset,
			Files: pass.Files,
			Types: pass.Pkg,
			Info:  pass.TypesInfo,
		}
	}
	sums := latchsum.Default.ForPackage(pkg)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, sums)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, sums *latchsum.PkgSummaries) {
	// Deferred calls run at function exit; they are exempt from the
	// in-line check (the held set at the defer statement is not the
	// one at execution time) and instead checked below against the
	// ranks still held at each exit point.
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})
	// Only defers registered by the function body itself run at ITS
	// exit; defers inside literals (escaping or immediately invoked)
	// belong to the literal's frame and stay out of the exit check.
	var deferredCalls []*ast.CallExpr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			deferredCalls = append(deferredCalls, n.Call)
		}
		return true
	})
	// siteOf remembers the declaration site behind each held key so
	// Visit can rank what Classify tracked; deferRelease records where
	// a lock's deferred unlock was registered, which decides whether
	// the lock is still held when a given deferred call runs.
	siteOf := make(map[string]string)
	deferRelease := make(map[string]token.Pos)
	reported := make(map[token.Pos]bool)
	lockflow.WalkFunc(fd.Body, lockflow.Hooks{
		Classify: func(c *ast.CallExpr, isDeferred bool) (lockflow.Action, string) {
			act, key, class := lockflow.ClassifyLockCall(pass.TypesInfo, c)
			if class == lockflow.ClassNone {
				return lockflow.None, ""
			}
			if isDeferred && act == lockflow.Release {
				// Held to function end; remember the registration point
				// (the latest one runs first under LIFO).
				if c.Pos() > deferRelease[key] {
					deferRelease[key] = c.Pos()
				}
				return lockflow.None, ""
			}
			if act == lockflow.Acquire {
				siteOf[key] = lockflow.LockSite(pass.TypesInfo, c)
			}
			return act, key
		},
		// Visit runs before an Acquire takes effect, so held is exactly
		// the set outstanding at the moment of acquisition.
		Visit: func(n ast.Node, held map[string]lockflow.Hold) {
			c, ok := n.(*ast.CallExpr)
			if !ok || len(held) == 0 {
				return
			}
			act, key, class := lockflow.ClassifyLockCall(pass.TypesInfo, c)
			if class == lockflow.ClassNone {
				// Not a lock operation: check the callee's transitive
				// summary, so an inversion any number of calls down is
				// caught here, where the offending rank is held.
				fn := latchsum.CalleeOf(pass.TypesInfo, c)
				if fn == nil || deferred[c] || reported[c.Pos()] {
					return
				}
				sum, ok := sums.Callee(fn)
				if !ok {
					return
				}
				if inv := inversions(held, siteOf, sum.Rank, ""); inv != "" {
					reported[c.Pos()] = true
					pass.ReportChain(c.Pos(), fullChain(fn, sum),
						"calls %s, which acquires %s (rank %d)%s, while holding %s: violates the declared latch hierarchy",
						latchsum.ShortName(fn), sum.Site, sum.Rank, via(fn, sum), inv)
				}
				return
			}
			if act != lockflow.Acquire || deferred[c] {
				return
			}
			site := lockflow.LockSite(pass.TypesInfo, c)
			rank, ranked := Hierarchy[site]
			if !ranked {
				return
			}
			if inv := inversions(held, siteOf, rank, key); inv != "" && !reported[c.Pos()] {
				reported[c.Pos()] = true
				pass.Reportf(c.Pos(), "acquires %s (rank %d) while holding %s: violates the declared latch hierarchy",
					site, rank, inv)
			}
		},
		// FuncEnd sees the held set at each exit point — where the
		// deferred calls actually run. LitEnd keeps escaping literals'
		// exits from being mistaken for the function's own.
		FuncEnd: func(_ *ast.ReturnStmt, held map[string]lockflow.Hold) {
			checkDeferredAtExit(pass, deferredCalls, held, siteOf, deferRelease, reported, sums)
		},
		LitEnd: func(_ *ast.ReturnStmt, _ map[string]lockflow.Hold) {},
	})
}

// checkDeferredAtExit verifies every deferred call against the locks
// still held when it runs. Defers execute LIFO, so a lock whose
// release was itself deferred at position pR has already been dropped
// when a deferred call registered at pD < pR runs, and is still held
// for one registered at pD > pR.
func checkDeferredAtExit(pass *analysis.Pass, calls []*ast.CallExpr, held map[string]lockflow.Hold,
	siteOf map[string]string, deferRelease map[string]token.Pos, reported map[token.Pos]bool,
	sums *latchsum.PkgSummaries) {
	if len(held) == 0 || len(calls) == 0 {
		return
	}
	for _, c := range calls {
		if reported[c.Pos()] {
			continue
		}
		sum, desc, ok := deferredSummary(pass, c, sums)
		if !ok {
			continue
		}
		// The held set as of this defer's execution: exit-held locks
		// minus those whose deferred release runs first.
		live := make(map[string]lockflow.Hold, len(held))
		for k, h := range held {
			if rel, deferredRel := deferRelease[k]; deferredRel && rel > c.Pos() {
				continue
			}
			live[k] = h
		}
		if inv := inversions(live, siteOf, sum.Rank, ""); inv != "" {
			reported[c.Pos()] = true
			pass.ReportChain(c.Pos(), sum.Chain,
				"deferred %s acquires %s (rank %d)%s at function exit while still holding %s: violates the declared latch hierarchy",
				desc, sum.Site, sum.Rank, viaChain(sum.Chain), inv)
		}
	}
}

// deferredSummary resolves what a deferred call will acquire when it
// runs: a direct ranked acquisition, a summarized callee, or an
// inline literal's body footprint.
func deferredSummary(pass *analysis.Pass, c *ast.CallExpr, sums *latchsum.PkgSummaries) (latchsum.FuncSummary, string, bool) {
	if lit, ok := c.Fun.(*ast.FuncLit); ok {
		s, ok := sums.NodeSummary(pass.TypesInfo, lit.Body)
		return s, "function literal", ok
	}
	if act, _, class := lockflow.ClassifyLockCall(pass.TypesInfo, c); class != lockflow.ClassNone {
		if act != lockflow.Acquire {
			return latchsum.FuncSummary{}, "", false
		}
		site := lockflow.LockSite(pass.TypesInfo, c)
		rank, ranked := Hierarchy[site]
		if !ranked {
			return latchsum.FuncSummary{}, "", false
		}
		return latchsum.FuncSummary{Site: site, Rank: rank}, "acquisition", true
	}
	fn := latchsum.CalleeOf(pass.TypesInfo, c)
	if fn == nil {
		return latchsum.FuncSummary{}, "", false
	}
	s, ok := sums.Callee(fn)
	if !ok {
		return latchsum.FuncSummary{}, "", false
	}
	return s, "call to " + latchsum.ShortName(fn), true
}

// fullChain is the complete witness chain for a call-site finding:
// the called function followed by its summary's chain.
func fullChain(fn *types.Func, sum latchsum.FuncSummary) []string {
	full := make([]string, 0, len(sum.Chain)+1)
	full = append(full, latchsum.ShortName(fn))
	full = append(full, sum.Chain...)
	return full
}

// via renders the witness chain suffix for a call-site diagnostic;
// empty for a depth-one summary, where the callee name already says
// everything.
func via(fn *types.Func, sum latchsum.FuncSummary) string {
	if len(sum.Chain) == 0 {
		return ""
	}
	return " via " + latchsum.ChainString(fullChain(fn, sum))
}

// viaChain renders a bare chain suffix (deferred-call diagnostics).
func viaChain(chain []string) string {
	if len(chain) == 0 {
		return ""
	}
	return " via " + latchsum.ChainString(chain)
}

// inversions renders the held locks whose rank strictly exceeds rank,
// in acquisition order; empty when the acquisition is legal.
func inversions(held map[string]lockflow.Hold, siteOf map[string]string, rank int, self string) string {
	type kv struct {
		desc  string
		order int
	}
	var bad []kv
	for k, h := range held {
		if k == self {
			continue // re-acquisition is a self-deadlock, not an ordering bug
		}
		site, ok := siteOf[k]
		if !ok {
			continue
		}
		r, ranked := Hierarchy[site]
		if !ranked || r <= rank {
			continue
		}
		bad = append(bad, kv{desc: site + " (rank " + strconv.Itoa(r) + ")", order: h.Order})
	}
	if len(bad) == 0 {
		return ""
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].order < bad[j].order })
	var names []string
	for _, e := range bad {
		names = append(names, e.desc)
	}
	return strings.Join(names, ", ")
}
