// Package latchorder implements the hydra-vet analyzer enforcing
// Hydra's declared lock hierarchy.
//
// Deadlock freedom in Hydra rests on a total order over lock tiers:
// coarse engine-level locks are acquired before per-structure locks,
// which are acquired before page latches, which are acquired before
// the short shard/stripe mutexes that protect pool and WAL
// bookkeeping. The analyzer walks every function with the lockflow
// engine and reports any acquisition whose declared rank is LOWER
// than a rank already held — the inversion that, paired with the
// opposite nesting elsewhere, deadlocks.
//
// Locks are identified by declaration site ("pkg.Type.field", as
// rendered by lockflow.LockSite); the Hierarchy table assigns each
// known site a rank. Unranked sites are ignored — the analyzer only
// constrains locks that opt into the hierarchy — and equal ranks are
// allowed, because same-tier acquisition (latch crabbing down a
// B+-tree, lock stripes keyed by hash) is ordered by a protocol the
// type system cannot see.
//
// Nesting is checked one call level deep: a pre-pass summarizes every
// function declared in the package — the minimum-rank hierarchy
// acquisition on its synchronous path (nested function literals
// excluded: they run on other goroutines or at exit) — and a call to
// a summarized function while holding a higher rank is the same
// inversion as a direct acquisition. This catches the DORA executor
// shape, where the transaction body's acquisitions hide behind the
// runWhole→core.Txn call boundary. Summaries do not chase the
// callee's own callees (depth one by design), and calls across
// package boundaries are lockscope's territory when the callee
// blocks.
package latchorder

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"hydra/internal/analysis"
	"hydra/internal/analysis/lockflow"
	"hydra/internal/invariant"
)

// Analyzer is the latchorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "latchorder",
	Doc:  "lock/latch acquisition order must follow the declared hierarchy (engine locks < structure locks < page latches < shard/stripe mutexes)",
	Run:  run,
}

// Hierarchy maps lock declaration sites to ranks. A lock may only be
// acquired while every ranked lock already held has rank <= its own.
// Lower rank = outer tier = acquired first. Gaps leave room for new
// tiers.
//
// The ranks come from internal/invariant's tier constants, which the
// hydradebug runtime assertions enforce on live executions — one
// source of truth for both layers. DESIGN.md renders the table; keep
// the prose in sync.
var Hierarchy = map[string]int{
	// Tier 0: whole-engine serialization.
	"core.Engine.ckptMu": invariant.TierEngineCkpt,
	"core.Engine.mu":     invariant.TierEngineMu,

	// Tier 1: per-transaction and per-structure locks.
	"core.Txn.mu":       invariant.TierTxnMu,
	"btree.Tree.coarse": invariant.TierTreeCoarse,
	"btree.Tree.rootMu": invariant.TierTreeRoot,

	// Tier 2: lock-manager partitions (2PL state).
	"lock.partition.mu": invariant.TierLockPart,

	// Tier 3: page latches (crabbing orders same-rank acquisitions).
	"buffer.Frame.Latch": invariant.TierFrameLatch,

	// Tier 4: short bookkeeping mutexes — leaves of the hierarchy;
	// nothing may be acquired under them (and lockscope separately
	// forbids blocking there).
	"buffer.shard.mu":        invariant.TierPoolShard,
	"buffer.FileStore.mu":    invariant.TierFileStore,
	"wal.Log.mu":             invariant.TierWALLog,
	"wal.Log.waitMu":         invariant.TierWALWait,
	"wal.SegmentedDevice.mu": invariant.TierWALDevice,
	"sync2.Queue.mu":         invariant.TierDoraQueue,
}

// summary is one function's interprocedural footprint: the lowest-
// ranked hierarchy acquisition on its synchronous path. One entry is
// enough — any held rank above it makes the call an inversion, and
// the report names the worst offender.
type summary struct {
	site string
	rank int
}

func run(pass *analysis.Pass) error {
	sums := summarize(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, sums)
		}
	}
	return nil
}

// summarize builds the (acquires, min-rank) summary for every function
// declared in the package. Acquisitions inside nested function
// literals are excluded — WalkFunc treats literal bodies as separate
// execution contexts, and so does the summary.
func summarize(pass *analysis.Pass) map[*types.Func]summary {
	sums := make(map[*types.Func]summary)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			best, have := summary{}, false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					act, _, class := lockflow.ClassifyLockCall(pass.TypesInfo, n)
					if act != lockflow.Acquire || class == lockflow.ClassNone {
						return true
					}
					site := lockflow.LockSite(pass.TypesInfo, n)
					rank, ranked := Hierarchy[site]
					if ranked && (!have || rank < best.rank) {
						best, have = summary{site: site, rank: rank}, true
					}
				}
				return true
			})
			if have {
				sums[fn] = best
			}
		}
	}
	return sums
}

// calleeOf resolves a call to the *types.Func it statically invokes,
// or nil for function values, interface methods and builtins.
func calleeOf(info *types.Info, c *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(c.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, sums map[*types.Func]summary) {
	// Deferred calls run at function exit, when the locks held at the
	// defer statement may long be released; exempt them from the
	// call-summary check rather than report on a held set that will
	// not be the one at execution time.
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		return true
	})
	// siteOf remembers the declaration site behind each held key so
	// Visit can rank what Classify tracked.
	siteOf := make(map[string]string)
	lockflow.WalkFunc(fd.Body, lockflow.Hooks{
		Classify: func(c *ast.CallExpr, deferred bool) (lockflow.Action, string) {
			act, key, class := lockflow.ClassifyLockCall(pass.TypesInfo, c)
			if class == lockflow.ClassNone {
				return lockflow.None, ""
			}
			if deferred && act == lockflow.Release {
				return lockflow.None, "" // held to function end
			}
			if act == lockflow.Acquire {
				siteOf[key] = lockflow.LockSite(pass.TypesInfo, c)
			}
			return act, key
		},
		// Visit runs before an Acquire takes effect, so held is exactly
		// the set outstanding at the moment of acquisition.
		Visit: func(n ast.Node, held map[string]lockflow.Hold) {
			c, ok := n.(*ast.CallExpr)
			if !ok || len(held) == 0 {
				return
			}
			act, key, class := lockflow.ClassifyLockCall(pass.TypesInfo, c)
			if class == lockflow.ClassNone {
				// Not a lock operation: check the callee's summary, so
				// an inversion one call level down is caught too.
				fn := calleeOf(pass.TypesInfo, c)
				if fn == nil || deferred[c] {
					return
				}
				sum, ok := sums[fn]
				if !ok {
					return
				}
				if inv := inversions(held, siteOf, sum.rank, ""); inv != "" {
					pass.Reportf(c.Pos(), "calls %s, which acquires %s (rank %d), while holding %s: violates the declared latch hierarchy",
						fn.FullName(), sum.site, sum.rank, inv)
				}
				return
			}
			if act != lockflow.Acquire {
				return
			}
			site := lockflow.LockSite(pass.TypesInfo, c)
			rank, ranked := Hierarchy[site]
			if !ranked {
				return
			}
			if inv := inversions(held, siteOf, rank, key); inv != "" {
				pass.Reportf(c.Pos(), "acquires %s (rank %d) while holding %s: violates the declared latch hierarchy",
					site, rank, inv)
			}
		},
	})
}

// inversions renders the held locks whose rank strictly exceeds rank,
// in acquisition order; empty when the acquisition is legal.
func inversions(held map[string]lockflow.Hold, siteOf map[string]string, rank int, self string) string {
	type kv struct {
		desc  string
		order int
	}
	var bad []kv
	for k, h := range held {
		if k == self {
			continue // re-acquisition is a self-deadlock, not an ordering bug
		}
		site, ok := siteOf[k]
		if !ok {
			continue
		}
		r, ranked := Hierarchy[site]
		if !ranked || r <= rank {
			continue
		}
		bad = append(bad, kv{desc: site + " (rank " + strconv.Itoa(r) + ")", order: h.Order})
	}
	if len(bad) == 0 {
		return ""
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].order < bad[j].order })
	var names []string
	for _, e := range bad {
		names = append(names, e.desc)
	}
	return strings.Join(names, ", ")
}
