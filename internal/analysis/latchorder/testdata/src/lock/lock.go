// Package lock reproduces the lock-manager partition shape:
// lock.partition.mu is rank 50. The exported entry point is what the
// cross-package closure summarizes for importers.
package lock

import "sync"

type partition struct{ mu sync.Mutex }

var parts [4]partition

// AcquireRow locks the owning partition (rank 50) — the innermost
// hop of the dora → core → lock fixture chain.
func AcquireRow(k int) {
	p := &parts[k%len(parts)]
	p.mu.Lock()
	p.mu.Unlock()
}
