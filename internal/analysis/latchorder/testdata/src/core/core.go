// Package core reproduces the DORA executor→transaction call shape:
// partition executors run whole transactions by calling into core.Txn
// helpers, so a rank inversion can hide one call level down from the
// function that holds the lock. core.Engine.mu is rank 20, core.Txn.mu
// rank 30.
package core

import "sync"

type Engine struct{ mu sync.Mutex }

type Txn struct {
	mu sync.Mutex
	e  *Engine
}

// beginOnExecutor is the executor-side transaction begin: it takes the
// txn mutex (rank 30). Summarized as acquiring rank 30.
func beginOnExecutor(t *Txn) {
	t.mu.Lock()
	t.mu.Unlock()
}

// register takes the engine tier (rank 20). Summarized as acquiring
// rank 20.
func register(e *Engine) {
	e.mu.Lock()
	e.mu.Unlock()
}

// finish is a method callee, pinning the rendered method name.
func (t *Txn) finish() {
	t.e.mu.Lock()
	t.e.mu.Unlock()
}

// runWholeGood is the fast-path shape: engine registration, then the
// transaction body one call down. Outer-before-inner is legal.
func runWholeGood(e *Engine, t *Txn) {
	e.mu.Lock()
	beginOnExecutor(t) // legal: acquires rank 30 while rank 20 is held
	e.mu.Unlock()
}

// runWholeBad hides the inversion behind the call: the executor still
// holds the txn mutex when the callee takes the engine lock.
func runWholeBad(e *Engine, t *Txn) {
	t.mu.Lock()
	register(e) // want "calls core.register, which acquires core.Engine.mu \\(rank 20\\), while holding core.Txn.mu \\(rank 30\\)"
	t.mu.Unlock()
}

// methodBad is the same inversion through a method call.
func methodBad(t *Txn) {
	t.mu.Lock()
	t.finish() // want "calls \\(\\*core.Txn\\).finish, which acquires core.Engine.mu \\(rank 20\\), while holding core.Txn.mu \\(rank 30\\)"
	t.mu.Unlock()
}

// releasedBeforeCall: nothing is held at the call, whatever the callee
// acquires.
func releasedBeforeCall(e *Engine, t *Txn) {
	t.mu.Lock()
	t.mu.Unlock()
	register(e)
}

// deferredCall runs at function exit, after the txn mutex is released
// on this path; the held set at the defer statement is not the one at
// execution time, so deferred calls are exempt.
func deferredCall(e *Engine, t *Txn) {
	t.mu.Lock()
	defer register(e)
	t.mu.Unlock()
}

// litOnly hands back a literal that acquires the engine lock; the
// literal body is not litOnly's synchronous path and does not count
// toward its summary.
func litOnly(e *Engine) func() {
	return func() {
		e.mu.Lock()
		e.mu.Unlock()
	}
}

func callLitOnlyUnderTxn(e *Engine, t *Txn) {
	t.mu.Lock()
	_ = litOnly(e) // quiet: no synchronous acquisition in the callee
	t.mu.Unlock()
}

// middle acquires nothing itself; summaries are one call level deep by
// design, so the inversion two levels down is out of scope.
func middle(e *Engine) {
	register(e)
}

func twoLevels(e *Engine, t *Txn) {
	t.mu.Lock()
	middle(e) // quiet: depth-one summaries do not chase middle's callees
	t.mu.Unlock()
}
