// Package core reproduces the DORA executor→transaction call shape:
// partition executors run whole transactions by calling into core.Txn
// helpers, so a rank inversion can hide one call level down from the
// function that holds the lock. core.Engine.mu is rank 20, core.Txn.mu
// rank 30.
package core

import "sync"

type Engine struct{ mu sync.Mutex }

type Txn struct {
	mu sync.Mutex
	e  *Engine
}

// beginOnExecutor is the executor-side transaction begin: it takes the
// txn mutex (rank 30). Summarized as acquiring rank 30.
func beginOnExecutor(t *Txn) {
	t.mu.Lock()
	t.mu.Unlock()
}

// register takes the engine tier (rank 20). Summarized as acquiring
// rank 20.
func register(e *Engine) {
	e.mu.Lock()
	e.mu.Unlock()
}

// finish is a method callee, pinning the rendered method name.
func (t *Txn) finish() {
	t.e.mu.Lock()
	t.e.mu.Unlock()
}

// runWholeGood is the fast-path shape: engine registration, then the
// transaction body one call down. Outer-before-inner is legal.
func runWholeGood(e *Engine, t *Txn) {
	e.mu.Lock()
	beginOnExecutor(t) // legal: acquires rank 30 while rank 20 is held
	e.mu.Unlock()
}

// runWholeBad hides the inversion behind the call: the executor still
// holds the txn mutex when the callee takes the engine lock.
func runWholeBad(e *Engine, t *Txn) {
	t.mu.Lock()
	register(e) // want "calls core.register, which acquires core.Engine.mu \\(rank 20\\), while holding core.Txn.mu \\(rank 30\\)"
	t.mu.Unlock()
}

// methodBad is the same inversion through a method call.
func methodBad(t *Txn) {
	t.mu.Lock()
	t.finish() // want "calls \\(\\*core.Txn\\).finish, which acquires core.Engine.mu \\(rank 20\\), while holding core.Txn.mu \\(rank 30\\)"
	t.mu.Unlock()
}

// releasedBeforeCall: nothing is held at the call, whatever the callee
// acquires.
func releasedBeforeCall(e *Engine, t *Txn) {
	t.mu.Lock()
	t.mu.Unlock()
	register(e)
}

// deferredCall runs at function exit, and by then the txn mutex has
// been explicitly released — deferred calls are checked against the
// ranks held at EXIT, not at the defer statement, so this is legal.
func deferredCall(e *Engine, t *Txn) {
	t.mu.Lock()
	defer register(e)
	t.mu.Unlock()
}

// deferredAtExitBad still holds the txn mutex at exit (its unlock is
// itself deferred, and registered BEFORE the call, so under LIFO the
// call runs first, under the lock).
func deferredAtExitBad(e *Engine, t *Txn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	defer register(e) // want "deferred call to core.register acquires core.Engine.mu \\(rank 20\\) at function exit while still holding core.Txn.mu \\(rank 30\\)"
}

// deferredLIFOGood registers the call before the lock is even taken:
// the deferred unlock (registered later) runs first, so the lock is
// already released when the call runs.
func deferredLIFOGood(e *Engine, t *Txn) {
	defer register(e)
	t.mu.Lock()
	defer t.mu.Unlock()
}

// deferredLitBad: a deferred function literal is summarized at its
// definition site and checked against the exit-held ranks like any
// deferred call.
func deferredLitBad(e *Engine, t *Txn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	defer func() { // want "deferred function literal acquires core.Engine.mu \\(rank 20\\) via core.register at function exit while still holding core.Txn.mu \\(rank 30\\)"
		register(e)
	}()
}

// litOnly hands back a literal that acquires the engine lock; the
// literal body is not litOnly's synchronous path and does not count
// toward its summary.
func litOnly(e *Engine) func() {
	return func() {
		e.mu.Lock()
		e.mu.Unlock()
	}
}

func callLitOnlyUnderTxn(e *Engine, t *Txn) {
	t.mu.Lock()
	_ = litOnly(e) // quiet: no synchronous acquisition in the callee
	t.mu.Unlock()
}

// middle acquires nothing itself; the fixed-point closure carries
// register's acquisition up through it, so callers two (and more)
// levels away from the acquisition still see the inversion — with the
// witness chain spelled out.
func middle(e *Engine) {
	register(e)
}

func twoLevels(e *Engine, t *Txn) {
	t.mu.Lock()
	middle(e) // want "calls core.middle, which acquires core.Engine.mu \\(rank 20\\) via core.middle → core.register, while holding core.Txn.mu \\(rank 30\\)"
	t.mu.Unlock()
}

// outer is a third hop: the chain in the diagnostic walks all the way
// down to the acquiring function.
func outer(e *Engine) {
	middle(e)
}

func threeLevels(e *Engine, t *Txn) {
	t.mu.Lock()
	outer(e) // want "calls core.outer, which acquires core.Engine.mu \\(rank 20\\) via core.outer → core.middle → core.register, while holding core.Txn.mu \\(rank 30\\)"
	t.mu.Unlock()
}

// iifeBody: an immediately-invoked literal runs inline — the held set
// flows into its body, so the call inside it is checked.
func iifeBody(e *Engine, t *Txn) {
	t.mu.Lock()
	func() {
		register(e) // want "calls core.register, which acquires core.Engine.mu \\(rank 20\\), while holding core.Txn.mu \\(rank 30\\)"
	}()
	t.mu.Unlock()
}

// acquiresViaIIFE's literal body runs synchronously, so its
// acquisition is part of the function's summary.
func acquiresViaIIFE(e *Engine) {
	func() {
		e.mu.Lock()
		e.mu.Unlock()
	}()
}

func callIIFESummaryBad(e *Engine, t *Txn) {
	t.mu.Lock()
	acquiresViaIIFE(e) // want "calls core.acquiresViaIIFE, which acquires core.Engine.mu \\(rank 20\\), while holding core.Txn.mu \\(rank 30\\)"
	t.mu.Unlock()
}

// mutualA/mutualB form a recursive cycle around the acquisition; the
// closure must converge and still report through the cycle.
func mutualA(e *Engine, stop bool) {
	if !stop {
		mutualB(e, true)
	}
	register(e)
}

func mutualB(e *Engine, stop bool) {
	if !stop {
		mutualA(e, true)
	}
}

func cycleCaller(e *Engine, t *Txn) {
	t.mu.Lock()
	mutualB(e, false) // want "calls core.mutualB, which acquires core.Engine.mu \\(rank 20\\) via core.mutualB → core.mutualA → core.register, while holding core.Txn.mu \\(rank 30\\)"
	t.mu.Unlock()
}
