// MVCC tier fixtures: core.verShard.mu is rank 62 — the version-chain
// shard leaf, legal under the frame latch (buffer.Frame.Latch, 60) —
// and core.verTable.publishMu/snapMu are ranks 32/34. The load-bearing
// bad shape is a chain traversal under the frame latch reaching the
// lock manager (lock.partition.mu, 50): snapshot resolution must never
// generate lock-table traffic, and rank 50 under rank 60 is exactly
// that regression.
package core

import (
	"buffer"
	"latch"
	"lock"
	"sync"
)

type verShard struct{ mu sync.Mutex }

type verTable struct {
	publishMu sync.Mutex
	snapMu    sync.Mutex
}

// chainWalkGood is the snapshot-read shape: resolve the version chain
// under the page's S latch by taking the owning shard's mutex. 62
// above 60 is inner-after-outer, legal.
func chainWalkGood(f *buffer.Frame, s *verShard) {
	f.Latch.Acquire(latch.Shared)
	s.mu.Lock()
	s.mu.Unlock()
	f.Latch.Release(latch.Shared)
}

// chainWalkLockMgrBad reaches the lock manager from under the frame
// latch — the inversion a snapshot read reintroducing lock traffic
// would create.
func chainWalkLockMgrBad(f *buffer.Frame, k int) {
	f.Latch.Acquire(latch.Shared)
	lock.AcquireRow(k) // want "calls lock.AcquireRow, which acquires lock.partition.mu \\(rank 50\\), while holding buffer.Frame.Latch \\(rank 60\\)"
	f.Latch.Release(latch.Shared)
}

// resolveViaHelper hides the same lock-manager call one frame down;
// the summary closure still surfaces it at the latched caller.
func resolveViaHelper(f *buffer.Frame, k int) {
	f.Latch.Acquire(latch.Shared)
	resolveLocked(k) // want "calls core.resolveLocked, which acquires lock.partition.mu \\(rank 50\\) via core.resolveLocked → lock.AcquireRow, while holding buffer.Frame.Latch \\(rank 60\\)"
	f.Latch.Release(latch.Shared)
}

func resolveLocked(k int) {
	lock.AcquireRow(k)
}

// publishThenShard is the commit-stamp shape: the publish lock (32)
// first, then a shard (62) while stamping chain heads. Legal.
func publishThenShard(t *verTable, s *verShard) {
	t.publishMu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	t.publishMu.Unlock()
}

// publishUnderSnapBad nests the publish lock (32) beneath the
// snapshot registry lock (34): commit publication must never wait on
// snapshot begin/release bookkeeping.
func publishUnderSnapBad(t *verTable) {
	t.snapMu.Lock()
	t.publishMu.Lock() // want "acquires core.verTable.publishMu \\(rank 32\\) while holding core.verTable.snapMu \\(rank 34\\)"
	t.publishMu.Unlock()
	t.snapMu.Unlock()
}
