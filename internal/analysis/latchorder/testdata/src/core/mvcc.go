// MVCC tier fixtures: core.verShard.mu is rank 62 — the version-chain
// shard leaf, legal under the frame latch (buffer.Frame.Latch, 60) —
// and core.verTable.publishMu/snapMu are ranks 32/34. The load-bearing
// bad shape is a chain traversal under the frame latch reaching the
// lock manager (lock.partition.mu, 50): snapshot resolution must never
// generate lock-table traffic, and rank 50 under rank 60 is exactly
// that regression.
package core

import (
	"buffer"
	"latch"
	"lock"
	"sync"
	"wal"
)

type verShard struct{ mu sync.Mutex }

type verTable struct {
	publishMu sync.Mutex
	snapMu    sync.Mutex
}

// chainWalkGood is the snapshot-read shape: resolve the version chain
// under the page's S latch by taking the owning shard's mutex. 62
// above 60 is inner-after-outer, legal.
func chainWalkGood(f *buffer.Frame, s *verShard) {
	f.Latch.Acquire(latch.Shared)
	s.mu.Lock()
	s.mu.Unlock()
	f.Latch.Release(latch.Shared)
}

// chainWalkLockMgrBad reaches the lock manager from under the frame
// latch — the inversion a snapshot read reintroducing lock traffic
// would create.
func chainWalkLockMgrBad(f *buffer.Frame, k int) {
	f.Latch.Acquire(latch.Shared)
	lock.AcquireRow(k) // want "calls lock.AcquireRow, which acquires lock.partition.mu \\(rank 50\\), while holding buffer.Frame.Latch \\(rank 60\\)"
	f.Latch.Release(latch.Shared)
}

// resolveViaHelper hides the same lock-manager call one frame down;
// the summary closure still surfaces it at the latched caller.
func resolveViaHelper(f *buffer.Frame, k int) {
	f.Latch.Acquire(latch.Shared)
	resolveLocked(k) // want "calls core.resolveLocked, which acquires lock.partition.mu \\(rank 50\\) via core.resolveLocked → lock.AcquireRow, while holding buffer.Frame.Latch \\(rank 60\\)"
	f.Latch.Release(latch.Shared)
}

func resolveLocked(k int) {
	lock.AcquireRow(k)
}

// publishThenShard is the commit-stamp shape: the publish lock (32)
// first, then a shard (62) while stamping chain heads. Legal.
func publishThenShard(t *verTable, s *verShard) {
	t.publishMu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	t.publishMu.Unlock()
}

// publishUnderSnapBad nests the publish lock (32) beneath the
// snapshot registry lock (34): commit publication must never wait on
// snapshot begin/release bookkeeping.
func publishUnderSnapBad(t *verTable) {
	t.snapMu.Lock()
	t.publishMu.Lock() // want "acquires core.verTable.publishMu \\(rank 32\\) while holding core.verTable.snapMu \\(rank 34\\)"
	t.publishMu.Unlock()
	t.snapMu.Unlock()
}

// validateChain is the first-committer-wins probe: crab one chain
// shard (62), read the head stamp, release. Nothing is held across
// shards, so validation composes with any outer tier above 62.
func validateChain(s *verShard) {
	s.mu.Lock()
	s.mu.Unlock()
}

// siCommitGood is the SI writer commit skeleton: 2PL row locks come
// from the lock manager, whose partition latch (50) releases inside
// the call; validation crabs chain shards one at a time; publication
// then opens its own window (32) and descends through the WAL append
// (80), the head stamps (62) and the snapshot floor (34). Every stage
// drains its latches before the next begins, so nothing nests
// backwards.
func siCommitGood(t *verTable, l *wal.Log, s *verShard, k int) {
	lock.AcquireRow(k)
	validateChain(s)
	t.publishMu.Lock()
	l.Append()
	s.mu.Lock()
	s.mu.Unlock()
	t.snapMu.Lock()
	t.snapMu.Unlock()
	t.publishMu.Unlock()
}

// siPublishUnderShardBad initiates publication from under a chain
// shard: rank 32 under rank 62 is the inversion that would deadlock
// against the stamp path, which takes the shard under publishMu.
func siPublishUnderShardBad(t *verTable, s *verShard) {
	s.mu.Lock()
	t.publishMu.Lock() // want "acquires core.verTable.publishMu \\(rank 32\\) while holding core.verShard.mu \\(rank 62\\)"
	t.publishMu.Unlock()
	s.mu.Unlock()
}

// siValidateUnderPublishOK: re-validating from inside the publish
// window is legal (62 above 32) — the summary closure resolves the
// helper's shard acquisition and accepts it.
func siValidateUnderPublishOK(t *verTable, s *verShard) {
	t.publishMu.Lock()
	validateChain(s)
	t.publishMu.Unlock()
}
