package core

import "lock"

// Apply is the exported transaction entry point importers call; its
// own acquisition hides two hops down, across a package boundary
// (core → lock). The closure exports its summary keyed by full name
// so a dora-shaped caller sees the whole chain.
func Apply(k int) {
	applyRow(k)
}

func applyRow(k int) {
	lock.AcquireRow(k)
}
