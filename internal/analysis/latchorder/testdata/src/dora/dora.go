// Package dora seeds the executor-shaped cross-package inversion:
// a function holding a page latch (rank 60) calls the exported
// core.Apply, whose ranked acquisition — lock.partition.mu, rank 50 —
// sits two calls and two package boundaries away. Only the full
// fixed-point closure over exported summaries sees it; a depth-one or
// same-package analysis reports nothing here.
package dora

import (
	"buffer"
	"core"
	"latch"
)

// runUnderLatch is the bad executor shape: the page latch is still
// held when the transaction body (core.Apply → core.applyRow →
// lock.AcquireRow) acquires the lower-ranked partition mutex.
func runUnderLatch(f *buffer.Frame, k int) {
	f.Latch.Acquire(latch.Exclusive)
	core.Apply(k) // want "calls core.Apply, which acquires lock.partition.mu \\(rank 50\\) via core.Apply → core.applyRow → lock.AcquireRow, while holding buffer.Frame.Latch \\(rank 60\\)"
	f.Latch.Release(latch.Exclusive)
}

// runAfterRelease is the fixed shape: latch dropped before the body
// runs. Same callee, same chain, nothing held — legal.
func runAfterRelease(f *buffer.Frame, k int) {
	f.Latch.Acquire(latch.Exclusive)
	f.Latch.Release(latch.Exclusive)
	core.Apply(k)
}

// directLockCall: rank 50 under nothing is legal however deep the
// callee; pins that the cross-package summary alone triggers nothing.
func directLockCall(k int) {
	core.Apply(k)
}
