// Package sync models the standard library lock types for hydra-vet
// fixtures (see the lockscope fixture of the same name).
package sync

type Mutex struct{ held bool }

func (m *Mutex) Lock()   { m.held = true }
func (m *Mutex) Unlock() { m.held = false }

type RWMutex struct{ held int }

func (m *RWMutex) Lock()    { m.held = -1 }
func (m *RWMutex) Unlock()  { m.held = 0 }
func (m *RWMutex) RLock()   { m.held++ }
func (m *RWMutex) RUnlock() { m.held-- }
