// Package wal reproduces the declaration sites of hydra's WAL locks
// so the hierarchy table ranks them: wal.Log.mu is rank 80,
// wal.Log.waitMu rank 82.
package wal

import "sync"

type Log struct {
	mu     sync.Mutex
	waitMu sync.Mutex
}

// badOrder acquires the tiers backwards: waitMu (rank 82) is held
// when mu (rank 80) is taken — the inversion that deadlocks against
// goodOrder's nesting.
func (l *Log) badOrder() {
	l.waitMu.Lock()
	l.mu.Lock() // want "acquires wal.Log.mu \\(rank 80\\) while holding wal.Log.waitMu \\(rank 82\\)"
	l.mu.Unlock()
	l.waitMu.Unlock()
}

// goodOrder nests inner tiers under outer ones.
func (l *Log) goodOrder() {
	l.mu.Lock()
	l.waitMu.Lock()
	l.waitMu.Unlock()
	l.mu.Unlock()
}

// sequential acquisition (no nesting) is always legal, whatever the
// order.
func (l *Log) sequential() {
	l.waitMu.Lock()
	l.waitMu.Unlock()
	l.mu.Lock()
	l.mu.Unlock()
}

// releasedBeforeInversion: the high-rank lock is gone by the time the
// low-rank one is taken on every path.
func (l *Log) releasedBeforeInversion(deep bool) {
	l.waitMu.Lock()
	if deep {
		l.waitMu.Unlock()
	} else {
		l.waitMu.Unlock()
	}
	l.mu.Lock()
	l.mu.Unlock()
}

// Append models the exported WAL append entry point (rank 80 inside),
// which the SI commit fixtures call from under the publish lock.
func (l *Log) Append() {
	l.mu.Lock()
	l.mu.Unlock()
}
