// Package buffer reproduces hydra's frame-latch / shard-mutex tier
// pair: buffer.Frame.Latch is rank 60, buffer.shard.mu rank 70.
package buffer

import (
	"latch"
	"sync"
)

type Frame struct{ Latch latch.Latch }

type shard struct{ mu sync.Mutex }

// latchUnderShardMu inverts tier 3 under tier 4: the shard mutex is a
// leaf, nothing may be acquired beneath it.
func latchUnderShardMu(s *shard, f *Frame) {
	s.mu.Lock()
	f.Latch.Acquire(latch.Shared) // want "acquires buffer.Frame.Latch \\(rank 60\\) while holding buffer.shard.mu \\(rank 70\\)"
	f.Latch.Release(latch.Shared)
	s.mu.Unlock()
}

// shardMuUnderLatch is hydra's FlushAll shape: latch first, then the
// bookkeeping mutex. Legal.
func shardMuUnderLatch(s *shard, f *Frame) {
	f.Latch.Acquire(latch.Shared)
	s.mu.Lock()
	s.mu.Unlock()
	f.Latch.Release(latch.Shared)
}

// crabbing: same-rank latch-latch nesting is ordered by the B+-tree
// descent protocol, not the hierarchy; equal ranks are allowed.
func crabbing(parent, child *Frame) {
	parent.Latch.Acquire(latch.Shared)
	child.Latch.Acquire(latch.Shared)
	parent.Latch.Release(latch.Shared)
	child.Latch.Release(latch.Shared)
}

// scratch's lock is unranked: locks outside the table are
// unconstrained in both directions.
type scratch struct{ mu sync.Mutex }

func unranked(s *scratch, f *Frame) {
	s.mu.Lock()
	f.Latch.Acquire(latch.Exclusive)
	f.Latch.Release(latch.Exclusive)
	s.mu.Unlock()
}
