// Package latch models hydra's page-latch API for latchorder
// fixtures; the analyzer classifies Acquire/Release by this package
// base name.
package latch

type Mode int

const (
	Shared Mode = iota
	Exclusive
)

type Latch struct{ state int }

func (l *Latch) Acquire(m Mode) { l.state++ }
func (l *Latch) Release(m Mode) { l.state-- }
