package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("hydra/internal/buffer", or dir name for fixtures)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Imports holds the tree-local packages this one imports, keyed by
	// import path — full source, not just export data, so analyzers
	// can compute cross-package summaries (latchsum). Standard-library
	// imports are absent. Nil when the driver has no source for
	// dependencies (the go vet -vettool unit protocol).
	Imports map[string]*Package
}

// Loader parses and type-checks packages of one source tree without
// invoking the go command: module-local imports are resolved by
// recursive source type-checking, everything else (the standard
// library) through the compiler source importer. This keeps hydra-vet
// runnable offline and dependency-free.
type Loader struct {
	// Root is the directory holding the tree to load.
	Root string
	// Module is the tree's module path (import-path prefix). Empty
	// means import paths are directory names relative to Root, the
	// layout analyzer test fixtures use.
	Module string
	// Tags are extra build tags to enable (e.g. "hydradebug").
	Tags []string
	// IncludeTests includes *_test.go files of the package under test
	// (in-package tests only; external _test packages are skipped).
	IncludeTests bool

	fset *token.FileSet
	ctx  build.Context
	std  types.ImporterFrom
	info *types.Info
	// pkgs memoizes loads by import path; a nil entry marks a load in
	// progress (import cycle).
	pkgs map[string]*Package
}

// NewLoader returns a loader over the tree rooted at root. If module
// is empty, root/go.mod is consulted; failing that, import paths are
// directory-relative.
func NewLoader(root, module string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if module == "" {
		module = modulePath(filepath.Join(abs, "go.mod"))
	}
	fset := token.NewFileSet()
	ld := &Loader{
		Root:   abs,
		Module: module,
		fset:   fset,
		ctx:    build.Default,
		pkgs:   make(map[string]*Package),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	ld.std = std
	return ld, nil
}

// modulePath extracts the module path from a go.mod, or returns "".
func modulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}

// Load loads the packages named by patterns. Supported patterns:
// "./..." (every package under Root), "dir/..." and plain directory
// paths relative to Root.
func (ld *Loader) Load(patterns ...string) ([]*Package, error) {
	ld.ctx.BuildTags = ld.Tags
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			expanded, err := ld.expand(ld.Root)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(ld.Root, strings.TrimSuffix(pat, "/..."))
			expanded, err := ld.expand(base)
			if err != nil {
				return nil, err
			}
			for _, d := range expanded {
				add(d)
			}
		default:
			add(filepath.Join(ld.Root, pat))
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := ld.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// expand returns every directory under base containing buildable Go
// files, skipping testdata, hidden and underscore directories.
func (ld *Loader) expand(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// importPathFor maps a directory under Root to its import path.
func (ld *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.Root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		if ld.Module != "" {
			return ld.Module, nil
		}
		return ".", nil
	}
	if ld.Module != "" {
		return path.Join(ld.Module, rel), nil
	}
	return rel, nil
}

// loadDir parses and type-checks the package in dir. Directories with
// no buildable files yield (nil, nil).
func (ld *Loader) loadDir(dir string) (*Package, error) {
	ipath, err := ld.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return ld.loadPath(ipath, dir)
}

func (ld *Loader) loadPath(ipath, dir string) (*Package, error) {
	if pkg, done := ld.pkgs[ipath]; done {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", ipath)
		}
		return pkg, nil
	}
	ld.pkgs[ipath] = nil // in progress

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	pkgName := ""
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !ld.IncludeTests {
			continue
		}
		match, err := ld.ctx.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", filepath.Join(dir, name), err)
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if isTest && strings.HasSuffix(f.Name.Name, "_test") {
			continue // external test package; out of scope
		}
		if pkgName == "" || !isTest {
			pkgName = f.Name.Name
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		delete(ld.pkgs, ipath)
		return nil, nil
	}
	_ = names
	conf := types.Config{
		Importer: (*loaderImporter)(ld),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	tpkg, err := conf.Check(ipath, ld.fset, files, ld.info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", ipath, err)
	}
	pkg := &Package{
		Path:  ipath,
		Dir:   dir,
		Fset:  ld.fset,
		Files: files,
		Types: tpkg,
		Info:  ld.info,
	}
	// Type-checking pulled every tree-local import through loadPath,
	// so the memo has them all; expose the direct ones.
	pkg.Imports = make(map[string]*Package)
	for _, imp := range tpkg.Imports() {
		if dep, ok := ld.pkgs[imp.Path()]; ok && dep != nil {
			pkg.Imports[imp.Path()] = dep
		}
	}
	ld.pkgs[ipath] = pkg
	return pkg, nil
}

// loaderImporter adapts the Loader to types.Importer: tree-local
// import paths load recursively from source, all others go to the
// standard-library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(ipath string) (*types.Package, error) {
	ld := (*Loader)(li)
	if dir, ok := ld.localDir(ipath); ok {
		pkg, err := ld.loadPath(ipath, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("analysis: no Go files in %s", dir)
		}
		return pkg.Types, nil
	}
	return ld.std.Import(ipath)
}

// localDir reports whether ipath names a package inside the loaded
// tree and returns its directory.
func (ld *Loader) localDir(ipath string) (string, bool) {
	if ld.Module != "" {
		if ipath == ld.Module {
			return ld.Root, true
		}
		if rest, ok := strings.CutPrefix(ipath, ld.Module+"/"); ok {
			return filepath.Join(ld.Root, filepath.FromSlash(rest)), true
		}
		return "", false
	}
	dir := filepath.Join(ld.Root, filepath.FromSlash(ipath))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, true
	}
	return "", false
}
