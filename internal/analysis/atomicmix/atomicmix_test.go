package atomicmix_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/atomicmix"
)

func TestAtomicmixFixtures(t *testing.T) {
	antest.Run(t, "testdata", atomicmix.Analyzer, "m")
}
