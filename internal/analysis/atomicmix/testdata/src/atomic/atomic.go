// Package atomic models sync/atomic's pointer-taking functions for
// atomicmix fixtures (matched by package base name).
package atomic

func AddUint64(p *uint64, d uint64) uint64 { *p += d; return *p }
func LoadUint64(p *uint64) uint64          { return *p }
func StoreUint32(p *uint32, v uint32)      { *p = v }
func LoadUint32(p *uint32) uint32          { return *p }
func CompareAndSwapUint32(p *uint32, old, new uint32) bool {
	if *p == old {
		*p = new
		return true
	}
	return false
}
