// Package m is atomicmix's known-bad fixture.
package m

import "atomic"

type gate struct {
	state uint32
	hits  uint64
}

func enter(g *gate) bool {
	return atomic.CompareAndSwapUint32(&g.state, 0, 1)
}

func leave(g *gate) {
	atomic.StoreUint32(&g.state, 0)
	atomic.AddUint64(&g.hits, 1)
}

// peek reads state with a plain load next to the CAS/Store traffic —
// a data race under the memory model however rare the schedule.
func peek(g *gate) bool {
	return g.state == 1 // want "plain access to state"
}

// reset writes both words plainly.
func reset(g *gate) {
	g.state = 0 // want "plain access to state"
	g.hits = 0  // want "plain access to hits"
}
