// Known-good shapes: atomicmix must stay silent on this file.
package m

import "atomic"

type counters struct {
	ops   uint64
	plain int // never touched atomically; plain access is fine
}

func bump(c *counters) {
	atomic.AddUint64(&c.ops, 1)
	c.plain++
}

func read(c *counters) uint64 {
	return atomic.LoadUint64(&c.ops)
}
