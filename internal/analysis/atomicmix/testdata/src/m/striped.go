// Striped-counter shapes (the internal/obs pattern): per-stripe words
// written with atomic adds and summed on snapshot. The sum must use
// atomic loads — a plain read of a stripe races with concurrent adds
// exactly like any other mixed access.
package m

import "atomic"

type stripe struct {
	v uint64
}

type striped struct {
	s [4]stripe
}

func (c *striped) inc(i int) {
	atomic.AddUint64(&c.s[i].v, 1)
}

// badSum reads the stripes plainly while inc adds atomically.
func (c *striped) badSum() uint64 {
	var n uint64
	for i := range c.s {
		n += c.s[i].v // want "plain access to v"
	}
	return n
}

// goodSum is the correct snapshot: atomic loads throughout.
func (c *striped) goodSum() uint64 {
	var n uint64
	for i := range c.s {
		n += atomic.LoadUint64(&c.s[i].v)
	}
	return n
}
