// Package atomicmix implements the hydra-vet analyzer catching mixed
// atomic and plain access to the same memory.
//
// A word accessed with sync/atomic anywhere must be accessed with
// sync/atomic everywhere: one plain load next to an atomic store is a
// data race under the Go memory model even when the interleaving
// "cannot happen", and it is exactly the kind of race the detector
// misses until the improbable schedule fires. internal/sync2's
// hand-rolled primitives (TAS/TTAS/MCS spinlocks, the hybrid RW lock)
// are wall-to-wall sync/atomic and the motivating target: a single
// plain `n.next = nil` on a node whose next field is elsewhere
// StorePointer'd is a latent reordering bug.
//
// The analyzer runs per package in two passes: first it collects
// every variable or struct field whose address is passed to a
// sync/atomic function (atomic.AddUint64(&x, ...) and friends), then
// it reports every plain read or write of those same objects. Typed
// atomics (atomic.Uint64, atomic.Pointer[T]) need no analyzer — the
// type system already forbids plain access — and are the preferred
// fix where layout permits; the other fix is making the stray access
// atomic.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"hydra/internal/analysis"
)

// Analyzer is the atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "a variable accessed via sync/atomic must never also be accessed with plain loads/stores",
	Run:  run,
}

// atomicFuncs is sync/atomic's pointer-taking API surface (the
// typed-struct methods are type-safe and need no tracking).
var atomicFuncs = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
	"AndInt32": true, "AndInt64": true, "AndUint32": true, "AndUint64": true, "AndUintptr": true,
	"OrInt32": true, "OrInt64": true, "OrUint32": true, "OrUint64": true, "OrUintptr": true,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo

	// Pass 1: objects whose address reaches a sync/atomic call, with
	// one example site for the diagnostic, plus every ident position
	// that appears inside such a call (those are the sanctioned
	// accesses).
	atomicObjs := make(map[types.Object]token.Pos)
	sanctioned := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, c) {
				return true
			}
			for i, a := range c.Args {
				// Only the address arguments identify the word; value
				// arguments (the delta, old, new) are ordinary reads.
				u, ok := a.(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if obj := addressedObj(info, u.X); obj != nil {
					if _, seen := atomicObjs[obj]; !seen {
						atomicObjs[obj] = c.Pos()
					}
				}
				// Everything inside the &-operand is part of the
				// atomic access itself.
				ast.Inspect(c.Args[i], func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						sanctioned[id.Pos()] = true
					}
					return true
				})
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: any other load or store of those objects.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || sanctioned[id.Pos()] {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			first, isAtomic := atomicObjs[obj]
			if !isAtomic {
				return true
			}
			pass.Reportf(id.Pos(), "plain access to %s, which is accessed atomically (e.g. %s): mixed atomic/non-atomic access is a data race",
				obj.Name(), pass.Fset.Position(first))
			return true
		})
	}
	return nil
}

// isAtomicCall matches calls to sync/atomic's package-level functions
// (by package base name, so fixtures can model the package locally).
func isAtomicCall(info *types.Info, c *ast.CallExpr) bool {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok || !atomicFuncs[sel.Sel.Name] {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	return ok && path.Base(pn.Imported().Path()) == "atomic"
}

// addressedObj resolves &expr's operand to the variable or field
// object whose address is taken.
func addressedObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if s := info.Selections[e]; s != nil && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.ParenExpr:
		return addressedObj(info, e.X)
	}
	// Index expressions (&a[i]) identify an element, not a stable
	// object; skip rather than over-report.
	return nil
}
