package blockscope_test

import (
	"path/filepath"
	"strings"
	"testing"

	"hydra/internal/analysis"
	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/blockscope"
)

func TestBlockscopeFixtures(t *testing.T) {
	antest.Run(t, "testdata", blockscope.Analyzer, "exec", "lock", "core", "sync2")
}

// TestBlockokMarkerRequiresJustification: a bare marker is reported
// and suppresses nothing.
func TestBlockokMarkerRequiresJustification(t *testing.T) {
	ld, err := analysis.NewLoader(filepath.Join("testdata", "src"), "")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("badmark")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{blockscope.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var gotMarker, gotSend bool
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "blockok marker missing justification"):
			gotMarker = true
		case strings.Contains(d.Message, "channel send while holding spin-tier badmark.worker.mu"):
			gotSend = true
		default:
			t.Errorf("unexpected diagnostic: %s", d.Message)
		}
	}
	if !gotMarker {
		t.Error("malformed blockok marker not reported")
	}
	if !gotSend {
		t.Error("operation under malformed marker was suppressed")
	}
}
