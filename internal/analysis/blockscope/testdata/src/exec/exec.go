// Package exec exercises blockscope's core shape: parking operations
// under an MCS spin latch. Every sync2 primitive is spin-tier
// unconditionally, so executor.mu guards here without a hierarchy
// rank.
package exec

import (
	"sync"
	"time"

	"sync2"
)

type executor struct {
	mu    sync2.MCSLock
	inbox chan int
}

func sendUnderLatch(e *executor) {
	e.mu.Lock()
	e.inbox <- 1 // want "channel send while holding spin-tier exec.executor.mu"
	e.mu.Unlock()
}

func recvUnderLatch(e *executor) int {
	e.mu.Lock()
	v := <-e.inbox // want "channel receive while holding spin-tier exec.executor.mu"
	e.mu.Unlock()
	return v
}

func rangeUnderLatch(e *executor) {
	e.mu.Lock()
	for v := range e.inbox { // want "range over channel while holding spin-tier exec.executor.mu"
		_ = v
	}
	e.mu.Unlock()
}

func selectUnderLatch(e *executor) {
	e.mu.Lock()
	select { // want "blocking select while holding spin-tier exec.executor.mu"
	case v := <-e.inbox:
		_ = v
	}
	e.mu.Unlock()
}

// pollUnderLatch: a select with a default never parks — legal.
func pollUnderLatch(e *executor) {
	e.mu.Lock()
	select {
	case v := <-e.inbox:
		_ = v
	default:
	}
	e.mu.Unlock()
}

func sleepUnderLatch(e *executor) {
	e.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding spin-tier exec.executor.mu"
	e.mu.Unlock()
}

func waitUnderLatch(e *executor, wg *sync.WaitGroup) {
	e.mu.Lock()
	wg.Wait() // want "\\(sync.WaitGroup\\).Wait while holding spin-tier exec.executor.mu"
	e.mu.Unlock()
}

// sendUnderDeferredUnlock: a deferred release pins the latch across
// everything after it.
func sendUnderDeferredUnlock(e *executor) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.inbox <- 1 // want "channel send while holding spin-tier exec.executor.mu"
}

func sendAfterRelease(e *executor) {
	e.mu.Lock()
	e.mu.Unlock()
	e.inbox <- 1
}

// condUnderSoleLatch: Cond.Wait releases its own mutex while parked,
// so waiting under only the condvar's latch is the queue pattern, not
// a convoy.
func condUnderSoleLatch(e *executor, c *sync.Cond) {
	e.mu.Lock()
	c.Wait()
	e.mu.Unlock()
}

type pair struct {
	a sync2.MCSLock
	b sync2.MCSLock
}

// condUnderTwoLatches: a second spin latch is NOT released by the
// wait — that one convoys.
func condUnderTwoLatches(p *pair, c *sync.Cond) {
	p.a.Lock()
	p.b.Lock()
	c.Wait() // want "\\(sync.Cond\\).Wait while holding spin-tier exec.pair.a, exec.pair.b"
	p.b.Unlock()
	p.a.Unlock()
}

// sendMarkedOK: the escape hatch on the line above the operation.
func sendMarkedOK(e *executor) {
	e.mu.Lock()
	//hydra:blockok -- recovery path: inbox is unshared until executors start
	e.inbox <- 1
	e.mu.Unlock()
}

// sendMarkedSameLine: the escape hatch as a trailing comment.
func sendMarkedSameLine(e *executor) {
	e.mu.Lock()
	e.inbox <- 1 //hydra:blockok -- capacity reserved by the caller; send cannot park
	e.mu.Unlock()
}
