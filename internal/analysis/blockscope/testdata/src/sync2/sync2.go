// Package sync2 models hydra's spin-lock package: lock recognition is
// by defining-package base name, so fixtures needn't import the real
// module. MCSLock stands in for the spin primitives; Queue for the
// bounded executor inbox whose Put/Drain park the caller.
package sync2

type MCSLock struct{ state uint32 }

func (l *MCSLock) Lock()   { l.state = 1 }
func (l *MCSLock) Unlock() { l.state = 0 }

type Queue struct{ buf []int }

func (q *Queue) Put(v int) bool { q.buf = append(q.buf, v); return true }

func (q *Queue) Drain(into []int) ([]int, bool) { return append(into, q.buf...), true }
