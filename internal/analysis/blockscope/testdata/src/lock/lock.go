// Package lock exercises the rank threshold: a plain sync.Mutex is
// spin-tier only when its declaration site is ranked at or above
// MinRank. lock.partition.mu is rank 50 — exactly the threshold.
package lock

import (
	"sync"

	"sync2"
)

type partition struct {
	mu   sync.Mutex
	held map[int]bool
}

// grantAndKick is the seeded bad shape: the partition mutex is held
// across a bounded queue Put, which parks when the inbox is full.
func grantAndKick(p *partition, q *sync2.Queue, k int) {
	p.mu.Lock()
	p.held[k] = true
	q.Put(k) // want "\\(sync2.Queue\\).Put while holding spin-tier lock.partition.mu \\(rank 50\\)"
	p.mu.Unlock()
}

// grantThenKick is the fix: grant under the latch, kick after.
func grantThenKick(p *partition, q *sync2.Queue, k int) {
	p.mu.Lock()
	p.held[k] = true
	p.mu.Unlock()
	q.Put(k)
}

func drainUnderPartition(p *partition, q *sync2.Queue, into []int) []int {
	p.mu.Lock()
	out, _ := q.Drain(into) // want "\\(sync2.Queue\\).Drain while holding spin-tier lock.partition.mu \\(rank 50\\)"
	p.mu.Unlock()
	return out
}

// manager.mu is unranked — an ordinary parking mutex below the spin
// tier. Blocking under it is lockscope's business, not blockscope's.
type manager struct {
	mu sync.Mutex
}

func enqueueUnderManager(m *manager, q *sync2.Queue, k int) {
	m.mu.Lock()
	q.Put(k)
	m.mu.Unlock()
}
