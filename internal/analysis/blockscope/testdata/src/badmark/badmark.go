// Package badmark carries a bare //hydra:blockok with no
// justification; TestBlockokMarkerRequiresJustification asserts the
// marker itself is reported AND the operation stays flagged (a
// malformed marker suppresses nothing). It is checked outside antest
// because the marker diagnostic lands on the marker's own line, where
// a want comment cannot also sit.
package badmark

import "sync2"

type worker struct {
	mu    sync2.MCSLock
	inbox chan int
}

func send(w *worker) {
	w.mu.Lock()
	//hydra:blockok
	w.inbox <- 1
	w.mu.Unlock()
}
