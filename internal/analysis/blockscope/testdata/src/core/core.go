// Package core pins the other side of the rank threshold: Engine.mu
// is rank 20, a parking tier far above the spin threshold, so a
// blocking wait under it is legal for blockscope (latchorder and
// lockscope police it on their own terms).
package core

import "sync"

type Engine struct{ mu sync.Mutex }

func checkpointWait(e *Engine, done chan struct{}) {
	e.mu.Lock()
	<-done
	e.mu.Unlock()
}
