// Package blockscope implements the hydra-vet analyzer forbidding
// blocking operations while a spin-tier latch is held.
//
// A spin-tier latch is one whose waiters burn a core instead of
// parking: every internal/sync2 primitive (TAS/TATAS/ticket/MCS/
// hybrid), and any ranked sync.Mutex at or above MinRank in the
// declared hierarchy — the lock-manager partition mutexes and the
// leaf bookkeeping tiers below them, whose critical sections are
// sized in nanoseconds. Parking the holder of such a latch — on a
// channel, a WaitGroup, a condition variable, a sleep, or a bounded
// sync2.Queue — converts every concurrent waiter's spin into wasted
// cycles for the full duration of the block, the convoy the paper's
// scalability argument assumes away.
//
// Blockscope is narrower and stricter than lockscope: lockscope asks
// "does this critical section do IO or call something that blocks?",
// propagating may-block summaries through same-package calls;
// blockscope asks "is this *synchronization* operation under a latch
// whose waiters spin?" and reports the operation itself. The two
// overlap on ordinary mutexes but blockscope alone covers the sync2
// primitives (which lockscope treats as guards only for its IO
// tables) and the rank threshold.
//
// sync.Cond.Wait is exempt when the spin-tier latch is the only lock
// held: Wait releases its own mutex while parked (sync2.Queue's
// internal notFull/notEmpty waits are this exact shape).
//
// The escape hatch is a line-level marker:
//
//	//hydra:blockok -- <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory; a bare marker is itself reported. Use it where the
// block is provably bounded or the latch is provably uncontended at
// that point (e.g. a drain loop that owns the only reference).
package blockscope

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"

	"hydra/internal/analysis"
	"hydra/internal/analysis/latchsum"
	"hydra/internal/analysis/lockflow"
	"hydra/internal/invariant"
)

// Analyzer is the blockscope analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "blockscope",
	Doc:  "no blocking operation (channel op, WaitGroup/Cond wait, sleep, sync2.Queue op) while a spin-tier latch is held",
	Run:  run,
}

// MinRank is the hierarchy rank at or above which a ranked sync.Mutex
// counts as spin-tier (waiters effectively spin: the critical
// sections at these tiers are too short for parking to win). sync2
// primitives are always spin-tier regardless of rank. Configurable
// via hydra-vet's -blockscope-rank flag.
var MinRank = invariant.TierLockPart

const okMarker = "//hydra:blockok"

type blockKind int

const (
	blockNone blockKind = iota
	blockOp             // unconditionally blocking
	blockCondWait
)

func run(pass *analysis.Pass) error {
	ok := collectBlockOK(pass)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, isFn := d.(*ast.FuncDecl)
			if !isFn || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, ok)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, ok *okSet) {
	skip := lockflow.SelectCommNodes(fd.Body)
	desc := make(map[string]string) // held key -> diagnostic rendering
	reported := make(map[token.Pos]bool)
	lockflow.WalkFunc(fd.Body, lockflow.Hooks{
		Classify: func(c *ast.CallExpr, deferred bool) (lockflow.Action, string) {
			act, key, class := lockflow.ClassifyLockCall(pass.TypesInfo, c)
			if act == lockflow.None || class == lockflow.ClassLatch {
				// Page latches are held across IO by design; crabbing
				// and write-back discipline are latchorder's concern.
				return lockflow.None, ""
			}
			site := lockflow.LockSite(pass.TypesInfo, c)
			rank, ranked := latchsum.Hierarchy[site]
			if class != lockflow.ClassSync2 && !(ranked && rank >= MinRank) {
				return lockflow.None, "" // parking lock below the spin tiers
			}
			if deferred && act == lockflow.Release {
				return lockflow.None, "" // held to function end
			}
			switch {
			case ranked:
				desc[key] = fmt.Sprintf("%s (rank %d)", site, rank)
			case site != "":
				desc[key] = site
			default:
				desc[key] = key
			}
			return act, key
		},
		Visit: func(n ast.Node, held map[string]lockflow.Hold) {
			if len(held) == 0 || reported[n.Pos()] {
				return
			}
			what, kind := blockingNode(pass.TypesInfo, n, skip)
			if kind == blockNone {
				return
			}
			if kind == blockCondWait && len(held) <= 1 {
				return // condvar releases its own (sole held) mutex while parked
			}
			reported[n.Pos()] = true
			if ok.covers(pass.Fset, n.Pos()) {
				return
			}
			pass.Reportf(n.Pos(), "%s while holding spin-tier %s", what, heldDesc(held, desc))
		},
	})
}

// blockingNode classifies an AST node as an operation that parks the
// goroutine.
func blockingNode(info *types.Info, n ast.Node, skip map[ast.Node]bool) (string, blockKind) {
	if skip[n] {
		return "", blockNone
	}
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", blockOp
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", blockOp
		}
	case *ast.RangeStmt:
		if t := info.TypeOf(n.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return "range over channel", blockOp
			}
		}
	case *ast.SelectStmt:
		for _, cc := range n.Body.List {
			if comm, isComm := cc.(*ast.CommClause); isComm && comm.Comm == nil {
				return "", blockNone // has default: non-blocking poll
			}
		}
		return "blocking select", blockOp
	case *ast.CallExpr:
		return blockingCall(info, n)
	}
	return "", blockNone
}

// blockingCall matches the parking calls blockscope cares about:
// sync.WaitGroup.Wait, sync.Cond.Wait, time.Sleep, and the bounded
// sync2.Queue operations (Put parks on a full queue, Drain on an
// empty one).
func blockingCall(info *types.Info, c *ast.CallExpr) (string, blockKind) {
	sel, isSel := c.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", blockNone
	}
	if selection := info.Selections[sel]; selection != nil {
		fn, isFn := selection.Obj().(*types.Func)
		if !isFn || fn.Pkg() == nil {
			return "", blockNone
		}
		pkg := path.Base(fn.Pkg().Path())
		name := fn.Name()
		recv := lockflow.NamedRecvName(selection.Recv())
		switch pkg {
		case "sync":
			if name == "Wait" && recv == "WaitGroup" {
				return "(sync.WaitGroup).Wait", blockOp
			}
			if name == "Wait" && recv == "Cond" {
				return "(sync.Cond).Wait", blockCondWait
			}
		case "sync2":
			if recv == "Queue" && (name == "Put" || name == "Drain") {
				return "(sync2.Queue)." + name, blockOp
			}
		}
		return "", blockNone
	}
	// Package-qualified call: time.Sleep.
	x, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", blockNone
	}
	pn, isPkg := info.Uses[x].(*types.PkgName)
	if !isPkg {
		return "", blockNone
	}
	if path.Base(pn.Imported().Path()) == "time" && sel.Sel.Name == "Sleep" {
		return "time.Sleep", blockOp
	}
	return "", blockNone
}

// okSet is the set of //hydra:blockok directive lines, per file.
type okSet struct {
	lines map[string]map[int]bool
}

// covers reports whether a directive sits on pos's line or the line
// directly above it.
func (s *okSet) covers(fset *token.FileSet, pos token.Pos) bool {
	p := fset.Position(pos)
	byLine := s.lines[p.Filename]
	return byLine[p.Line] || byLine[p.Line-1]
}

// collectBlockOK gathers well-formed //hydra:blockok directives and
// reports malformed ones (the justification is not optional).
func collectBlockOK(pass *analysis.Pass) *okSet {
	s := &okSet{lines: make(map[string]map[int]bool)}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, okMarker) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, okMarker)
				_, justification, found := strings.Cut(rest, "--")
				if !found || strings.TrimSpace(justification) == "" {
					pass.Reportf(c.Pos(), "blockok marker missing justification: want %s -- <reason>", okMarker)
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if s.lines[p.Filename] == nil {
					s.lines[p.Filename] = make(map[int]bool)
				}
				s.lines[p.Filename][p.Line] = true
			}
		}
	}
	return s
}

// heldDesc renders the held spin-tier latches in acquisition order.
func heldDesc(held map[string]lockflow.Hold, desc map[string]string) string {
	type kv struct {
		k string
		o int
	}
	var list []kv
	for k, h := range held {
		list = append(list, kv{k, h.Order})
	}
	sort.Slice(list, func(i, j int) bool { return list[i].o < list[j].o })
	var names []string
	for _, e := range list {
		d := desc[e.k]
		if d == "" {
			d = e.k
		}
		names = append(names, d)
	}
	return strings.Join(names, ", ")
}
