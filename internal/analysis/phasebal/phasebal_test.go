package phasebal_test

import (
	"testing"

	"hydra/internal/analysis/antest"
	"hydra/internal/analysis/phasebal"
)

func TestPhasebalFixtures(t *testing.T) {
	antest.Run(t, "testdata", phasebal.Analyzer, "m")
}
