// Package phasebal implements the hydra-vet analyzer checking
// phase-clock start/stop balance.
//
// Transaction critical-path accounting (internal/obs.PhaseClock) is
// built from open-coded spans: a start stamp `t0 := obs.Now()` closed
// by `c.Add(phase, obs.Now()-t0)` or handed to `c.Defer(phase, t0)`.
// Nothing at runtime detects an unbalanced span — a stamp that is
// never closed silently donates its time to the user-residual phase,
// and a swapped subtraction produces a negative duration that Add
// silently drops. Both bugs corrupt the accounting without failing a
// single test, which is exactly the kind of invariant hydra-vet
// exists to machine-check.
//
// The analyzer enforces, per function body:
//
//  1. Every local stamped from obs.Now() must be consumed: closed by
//     a PhaseClock Add/Defer, measured by a subtraction against a
//     later Now, or escaped (passed to a call such as noteInsertWait,
//     returned, stored, or assigned onward) so a callee can close it.
//     A stamp whose only uses are comparisons is a leaked span.
//  2. PhaseClock.Add takes a duration: `t0 - obs.Now()` (reversed
//     subtraction, always negative) and a bare start stamp are both
//     reported.
//  3. PhaseClock.Defer takes the span's start stamp, not a duration:
//     a subtraction argument is reported.
package phasebal

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"hydra/internal/analysis"
)

// Analyzer is the phasebal analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "phasebal",
	Doc:  "phase-accounting spans must balance: every obs.Now() stamp is closed or escapes, Add takes a duration, Defer takes a stamp",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkBody(pass, fn.Body)
		}
	}
	return nil
}

// checkBody analyzes one function body (nested closures included: a
// stamp closed inside a closure in the same body is balanced).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Pass 1: collect the Now-stamp locals — `t0 := obs.Now()` or
	// `var t0 = obs.Now()` — with the position of their first stamp.
	stamps := make(map[types.Object]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isNowCall(info, rhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := defOrUse(info, id); obj != nil {
					if _, seen := stamps[obj]; !seen {
						stamps[obj] = id.Pos()
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if !isNowCall(info, v) || i >= len(n.Names) {
					continue
				}
				if obj := info.Defs[n.Names[i]]; obj != nil {
					if _, seen := stamps[obj]; !seen {
						stamps[obj] = n.Names[i].Pos()
					}
				}
			}
		}
		return true
	})

	// Pass 2: find each stamp's consuming uses, tracking ancestors
	// (ast.Inspect signals post-order exit with a nil node).
	consumed := make(map[types.Object]bool)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if _, isStamp := stamps[obj]; isStamp && consumes(info, stack, id) {
					consumed[obj] = true
				}
			}
		}
		stack = append(stack, n)
		return true
	})

	for obj, pos := range stamps {
		if !consumed[obj] {
			pass.Reportf(pos, "phase stamp %s from obs.Now() is never closed: no Add/Defer, no span subtraction, and it does not escape", obj.Name())
		}
	}

	// Pass 3: well-formed Add/Defer arguments.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !isPhaseClock(info, sel.X) {
			return true
		}
		arg := call.Args[1]
		switch sel.Sel.Name {
		case "Add":
			if sub, ok := arg.(*ast.BinaryExpr); ok && sub.Op == token.SUB && isNowCall(info, sub.Y) && !isNowCall(info, sub.X) {
				pass.Reportf(arg.Pos(), "reversed span arithmetic: obs.Now() is the subtrahend, so the duration is always negative and Add drops it; want obs.Now()-t0")
			}
			if id, ok := arg.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if _, isStamp := stamps[obj]; isStamp {
						pass.Reportf(arg.Pos(), "Add takes a duration but %s is a start stamp; want obs.Now()-%s (or Defer to close at fold)", id.Name, id.Name)
					}
				}
			}
		case "Defer":
			if sub, ok := arg.(*ast.BinaryExpr); ok && sub.Op == token.SUB {
				pass.Reportf(arg.Pos(), "Defer takes the span's start stamp, not a duration: the fold closes the span at end of transaction")
			}
		}
		return true
	})
}

// consumes decides whether this use of a stamp closes or escapes the
// span. stack holds the ancestors of id, innermost last.
func consumes(info *types.Info, stack []ast.Node, id *ast.Ident) bool {
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.CallExpr:
			for _, arg := range a.Args {
				if arg == child || within(arg, id.Pos()) {
					return true
				}
			}
		case *ast.ReturnStmt:
			// Only the stamp itself escapes; a derived value (say a
			// returned comparison) closes nothing.
			return child == ast.Node(id)
		case *ast.CompositeLit, *ast.SendStmt, *ast.IndexExpr:
			return true
		case *ast.AssignStmt:
			// Only an appearance on the right-hand side escapes the
			// stamp; re-stamping the variable itself is a write.
			for _, rhs := range a.Rhs {
				if rhs == child || within(rhs, id.Pos()) {
					return true
				}
			}
			return false
		case *ast.BinaryExpr:
			// A subtraction against a later Now is the span read
			// itself, wherever its result flows (poll conditions
			// compare the open span against a horizon).
			if a.Op == token.SUB && (isNowCall(info, a.X) || isNowCall(info, a.Y)) {
				return true
			}
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
		child = stack[i]
	}
	return false
}

// defOrUse resolves an assignment left-hand ident whether the
// statement defines it (:=) or rebinds it (=).
func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// within reports whether pos falls inside n's extent.
func within(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}

// isNowCall matches obs.Now() (by package base name, so fixtures can
// model the package locally), looking through parentheses.
func isNowCall(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	c, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Now" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[x].(*types.PkgName)
	return ok && path.Base(pn.Imported().Path()) == "obs"
}

// isPhaseClock reports whether e's type is (a pointer to) the named
// type PhaseClock.
func isPhaseClock(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "PhaseClock"
}
