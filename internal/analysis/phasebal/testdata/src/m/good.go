package m

import "obs"

// timedWait is the canonical balanced span.
func timedWait(c *obs.PhaseClock) {
	t0 := obs.Now()
	park()
	c.Add(obs.PhaseLockWait, obs.Now()-t0)
}

// deferredWait closes at the transaction fold: handing the stamp to
// Defer balances the span.
func deferredWait(c *obs.PhaseClock) error {
	t0 := obs.Now()
	err := waitDurable()
	c.Defer(obs.PhaseFlushWait, t0)
	return err
}

// tryLock escapes the stamp to its caller (the lockInsertMu idiom:
// the helper stamps, the caller closes after unlocking).
func tryLock(c *obs.PhaseClock) int64 {
	if fastPath() {
		return 0
	}
	t0 := obs.Now()
	park()
	return t0
}

// noteWait is the closing half of the tryLock contract.
func noteWait(c *obs.PhaseClock, t0 int64) {
	if t0 != 0 {
		c.Add(obs.PhaseLogInsert, obs.Now()-t0)
	}
}

// helperEscape passes the stamp onward for the callee to close.
func helperEscape(c *obs.PhaseClock) {
	t0 := tryLock(c)
	noteWait(c, t0)
}

// spanRead measures the open span in a poll condition: the
// subtraction against a later Now is the read that justifies the
// stamp even though no Add runs on this path.
func spanRead(c *obs.PhaseClock, horizon int64) bool {
	t0 := obs.Now()
	park()
	return obs.Now()-t0 > horizon
}

// assignEscape flows the stamp into derived arithmetic that is
// consumed downstream.
func assignEscape(c *obs.PhaseClock) int64 {
	start := obs.Now()
	park()
	end := obs.Now()
	total := end - start
	return total
}

// restamp overwrites the stamp before closing it once: rebinding is a
// write, and the single Add balances the live span.
func restamp(c *obs.PhaseClock) {
	t0 := obs.Now()
	if fastPath() {
		t0 = obs.Now()
	}
	c.Add(obs.PhaseLatchWait, obs.Now()-t0)
}

func fastPath() bool     { return false }
func waitDurable() error { return nil }

// shardLockWait mirrors the version-shard acquisition: TryLock keeps
// the uncontended path stamp-free; only the contended fall-through
// opens a span, closed as latch wait once the lock is held.
func shardLockWait(c *obs.PhaseClock) {
	if fastPath() { // TryLock succeeded, no span
		return
	}
	t0 := obs.Now()
	park()
	c.Add(obs.PhaseLatchWait, obs.Now()-t0)
}
