// Package m is phasebal's fixture: bad.go pins the true positives,
// good.go pins the true negatives.
package m

import "obs"

// leakStamp starts a span and never stops it: the time silently
// lands in the user residual.
func leakStamp(c *obs.PhaseClock) bool {
	t0 := obs.Now() // want "phase stamp t0 from obs.Now\\(\\) is never closed"
	park()
	return t0 != 0 // a comparison reads the stamp but closes nothing
}

// leakVarStamp leaks through the var form too.
func leakVarStamp(c *obs.PhaseClock) {
	var t0 = obs.Now() // want "phase stamp t0 from obs.Now\\(\\) is never closed"
	if t0 > 100 {
		park()
	}
}

// reversed subtracts in the wrong order: the duration is always
// negative and Add's torn-read guard silently drops it.
func reversed(c *obs.PhaseClock) {
	t0 := obs.Now()
	park()
	c.Add(obs.PhaseLockWait, t0-obs.Now()) // want "reversed span arithmetic"
}

// stampAsDuration hands Add an absolute timestamp.
func stampAsDuration(c *obs.PhaseClock) {
	t0 := obs.Now()
	park()
	c.Add(obs.PhaseLatchWait, t0) // want "Add takes a duration but t0 is a start stamp"
}

// durationAsStamp hands Defer a closed duration: the fold would then
// subtract it from the transaction end stamp, producing garbage.
func durationAsStamp(c *obs.PhaseClock) {
	t0 := obs.Now()
	park()
	c.Defer(obs.PhaseFlushWait, obs.Now()-t0) // want "Defer takes the span's start stamp, not a duration"
}

func park() {}

// shardLockLeak is the chain-walk wait site with the close dropped:
// the contended shard acquisition is stamped but never folded, so the
// wait silently lands in the user residual.
func shardLockLeak(c *obs.PhaseClock) bool {
	if fastPath() {
		return true
	}
	t0 := obs.Now() // want "phase stamp t0 from obs.Now\\(\\) is never closed"
	park()
	return t0 != 0 // reads the stamp, folds nothing
}
