// Package obs models internal/obs's phase-accounting surface for
// phasebal fixtures (matched by package base name).
package obs

// Phase indexes a critical-path phase.
type Phase int

const (
	PhaseLockWait Phase = iota
	PhaseLatchWait
	PhaseFlushWait
	PhaseLogInsert
)

// Now is the monotonic stamp source.
func Now() int64 { return 0 }

// PhaseClock accumulates per-phase spans.
type PhaseClock struct{ ns [4]int64 }

// Add folds a closed span's duration into a phase.
func (c *PhaseClock) Add(p Phase, d int64) {}

// Defer records an open span closed at the transaction fold.
func (c *PhaseClock) Defer(p Phase, t0 int64) {}
