package lockflow

import (
	"go/ast"
	"go/types"
	"path"
)

// LockClass buckets the lock primitives hydra-vet tracks.
type LockClass int

const (
	// ClassNone: not a recognized lock operation.
	ClassNone LockClass = iota
	// ClassMutex: sync.Mutex / sync.RWMutex write side.
	ClassMutex
	// ClassRWRead: sync.RWMutex reader side.
	ClassRWRead
	// ClassSync2: one of internal/sync2's spin/hybrid primitives.
	ClassSync2
	// ClassLatch: a page latch (internal/latch Acquire/Release).
	ClassLatch
)

// ClassifyLockCall reports whether call acquires or releases a
// recognized lock. The key is the rendered receiver expression (the
// lock's identity within one function); class buckets the primitive.
//
// Recognition is by the defining package of the called method — base
// name "sync" (Mutex/RWMutex, including promoted embeddings),
// "sync2", or "latch" — so analyzer fixtures can model sync2/latch
// with small local packages of the same name.
func ClassifyLockCall(info *types.Info, call *ast.CallExpr) (Action, string, LockClass) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return None, "", ClassNone
	}
	selection := info.Selections[sel]
	if selection == nil {
		return None, "", ClassNone
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil {
		return None, "", ClassNone
	}
	pkg := path.Base(fn.Pkg().Path())
	name := fn.Name()
	key := types.ExprString(sel.X)
	switch pkg {
	case "sync":
		switch name {
		case "Lock":
			return Acquire, key, ClassMutex
		case "Unlock":
			return Release, key, ClassMutex
		case "RLock":
			return Acquire, key, ClassRWRead
		case "RUnlock":
			return Release, key, ClassRWRead
		}
	case "sync2":
		switch name {
		case "Lock", "RLock":
			return Acquire, key, ClassSync2
		case "Unlock", "RUnlock":
			return Release, key, ClassSync2
		}
	case "latch":
		switch name {
		case "Acquire":
			return Acquire, key, ClassLatch
		case "Release":
			return Release, key, ClassLatch
		}
	}
	return None, "", ClassNone
}

// LockSite names the declaration site of the lock a call operates on,
// in the form "pkg.Type.field" (or "pkg.Type" / the raw expression
// when no field selection is involved). latchorder keys its declared
// hierarchy on these names.
func LockSite(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if owner, field, ok := fieldOwner(info, sel.X); ok {
		return owner + "." + field
	}
	// Method declared on the lock type itself (e.g. calling Acquire on
	// a latch-typed local): fall back to the receiver's type.
	if t := info.TypeOf(sel.X); t != nil {
		if named := namedOf(t); named != nil {
			return typeName(named)
		}
	}
	return types.ExprString(sel.X)
}

// fieldOwner resolves expressions like s.mu or f.Latch to the owning
// named type and field name.
func fieldOwner(info *types.Info, e ast.Expr) (owner, field string, ok bool) {
	fe, isSel := e.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	selection := info.Selections[fe]
	if selection == nil || selection.Kind() != types.FieldVal {
		return "", "", false
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return "", "", false
	}
	return typeName(named), selection.Obj().Name(), true
}

func namedOf(t types.Type) *types.Named {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

func typeName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return path.Base(obj.Pkg().Path()) + "." + obj.Name()
}
