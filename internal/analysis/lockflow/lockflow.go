// Package lockflow is the shared resource-tracking engine under the
// hydra-vet analyzers. It walks a function body in approximate
// execution order, maintaining the set of "held" resources (locks for
// lockscope/latchorder, pool objects for poolcycle) through branches:
//
//   - if/else: a branch that terminates (return, break, continue,
//     panic) drops out of the merge; otherwise the post-branch held
//     set is the intersection of the arms, which can under-report but
//     never invents a hold that might not exist (no false positives
//     from merging).
//   - for/range: the body is walked with the entry set; effects on the
//     held set are discarded at loop exit (the body may run zero
//     times).
//   - switch/select: like if over the cases; a missing default keeps
//     the entry set in the merge.
//   - defer of a release keeps the resource held to function end (a
//     deferred unlock still pins the lock across everything after
//     it); hooks see the deferral and may instead treat it as an
//     immediate release (poolcycle's deferred Put satisfies the
//     ownership obligation).
//   - function literals execute later, possibly on another goroutine:
//     they are walked separately with an empty held set — EXCEPT an
//     immediately-invoked literal (func(){...}()), whose body runs
//     inline and is walked with the current held set, its effects
//     merged back across its exit paths.
//
// This is a syntactic approximation, not a CFG — goto and loop-carried
// holds are out of scope — but Hydra's lock usage is block-structured,
// and the analyzers' testdata fixtures pin down exactly what the
// engine does and does not see.
package lockflow

import (
	"go/ast"
	"go/token"
)

// Action classifies a call's effect on the tracked held set.
type Action int

const (
	// None leaves the held set unchanged.
	None Action = iota
	// Acquire adds the key to the held set.
	Acquire
	// Release removes the key from the held set.
	Release
)

// Hold records one live acquisition.
type Hold struct {
	// Pos is where the resource was acquired.
	Pos token.Pos
	// Order is the acquisition sequence number within the function,
	// so hooks can recover nesting order from a held map.
	Order int
}

// Hooks parameterizes a walk.
type Hooks struct {
	// Classify inspects a call and reports its effect on the held set
	// plus the resource key (e.g. the rendered receiver expression).
	// deferred is true when the call is the operand of a defer
	// statement; returning None for a deferred Release keeps the
	// resource held for the remainder of the function.
	Classify func(call *ast.CallExpr, deferred bool) (Action, string)
	// Visit observes every node in execution order together with the
	// currently-held set. For an Acquire call, Visit runs before the
	// acquisition takes effect, so the held set reflects what was held
	// at the moment of acquisition.
	Visit func(n ast.Node, held map[string]Hold)
	// FuncEnd, if set, observes the held set at every exit point: each
	// return statement and the fall-off end of the body (nil stmt).
	// Terminating branches inside loops are not exits.
	FuncEnd func(ret *ast.ReturnStmt, held map[string]Hold)
	// LitEnd, if set, observes exit points of separately-walked
	// function literals (go bodies, escaping closures) instead of
	// FuncEnd; when nil, FuncEnd fires for those too. Hooks that care
	// only about the enclosing function's exits (latchorder's
	// deferred-call check) install a LitEnd to keep literal exits out
	// of FuncEnd.
	LitEnd func(ret *ast.ReturnStmt, held map[string]Hold)
}

// litEnd returns the hook to fire at a separately-walked literal's
// exit points.
func (h Hooks) litEnd() func(*ast.ReturnStmt, map[string]Hold) {
	if h.LitEnd != nil {
		return h.LitEnd
	}
	return h.FuncEnd
}

// WalkFunc walks body with h. Nested function literals are walked
// afterwards, each with a fresh held set.
func WalkFunc(body *ast.BlockStmt, h Hooks) {
	if body == nil {
		return
	}
	w := &walker{hooks: h, held: map[string]Hold{}}
	terminated := w.stmts(body.List)
	if !terminated && h.FuncEnd != nil {
		h.FuncEnd(nil, w.held)
	}
	// Deferred function literals run at function exit on the same
	// goroutine; plain literals and go-statement bodies run who knows
	// when. Either way, no lock held at their definition site is
	// guaranteed (or required) to be held when they execute, so each
	// starts empty.
	for i := 0; i < len(w.lits); i++ {
		lit := w.lits[i]
		lh := h
		lh.FuncEnd = h.litEnd()
		w2 := &walker{hooks: lh, held: map[string]Hold{}}
		term := w2.stmts(lit.Body.List)
		if !term && lh.FuncEnd != nil {
			lh.FuncEnd(nil, w2.held)
		}
		w.lits = append(w.lits, w2.lits...)
	}
}

type walker struct {
	hooks Hooks
	held  map[string]Hold
	seq   int
	lits  []*ast.FuncLit
}

func cloneHeld(m map[string]Hold) map[string]Hold {
	out := make(map[string]Hold, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func intersectHeld(a, b map[string]Hold) map[string]Hold {
	out := make(map[string]Hold)
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// stmts walks a statement list, returning whether control definitely
// leaves it (return/branch/panic).
func (w *walker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.stmt(s) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt) (terminated bool) {
	if s == nil {
		return false
	}
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, false)
		return isPanicCall(s.X)
	case *ast.SendStmt:
		w.visit(s)
		w.expr(s.Chan, false)
		w.expr(s.Value, false)
	case *ast.IncDecStmt:
		w.expr(s.X, false)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, false)
		}
		for _, e := range s.Lhs {
			w.expr(e, false)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, false)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.expr(s.Call, true)
	case *ast.GoStmt:
		// Arguments evaluate now; the call itself runs elsewhere.
		for _, a := range s.Call.Args {
			w.expr(a, false)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.lits = append(w.lits, lit)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, false)
		}
		w.visit(s)
		if w.hooks.FuncEnd != nil {
			w.hooks.FuncEnd(s, w.held)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto end this path as far as the linear walk
		// is concerned.
		w.visit(s)
		return true
	case *ast.BlockStmt:
		return w.stmts(s.List)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond, false)
		entry := cloneHeld(w.held)
		thenTerm := w.stmts(s.Body.List)
		thenHeld := w.held
		w.held = cloneHeld(entry)
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else)
		}
		elseHeld := w.held
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			w.held = elseHeld
		case elseTerm:
			w.held = thenHeld
		default:
			w.held = intersectHeld(thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond, false)
		entry := cloneHeld(w.held)
		w.stmts(s.Body.List)
		w.stmt(s.Post)
		w.held = entry
	case *ast.RangeStmt:
		w.visit(s) // ranging over a channel is a blocking receive
		w.expr(s.X, false)
		entry := cloneHeld(w.held)
		w.stmts(s.Body.List)
		w.held = entry
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag, false)
		return w.caseBodies(s.Body, true)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		return w.caseBodies(s.Body, true)
	case *ast.SelectStmt:
		w.visit(s) // the select itself may block (no default)
		return w.caseBodies(s.Body, false)
	case *ast.EmptyStmt:
	}
	return false
}

// caseBodies walks each case clause of a switch or select from the
// entry held set and merges the arms. A missing default means control
// may bypass every arm, so the entry set joins the merge; the whole
// statement terminates only when a default exists and every arm
// terminates.
func (w *walker) caseBodies(body *ast.BlockStmt, _ bool) bool {
	entry := cloneHeld(w.held)
	var merged map[string]Hold
	merge := func(m map[string]Hold) {
		if merged == nil {
			merged = cloneHeld(m)
		} else {
			merged = intersectHeld(merged, m)
		}
	}
	sawDefault := false
	allTerm := true
	hasArm := false
	for _, cc := range body.List {
		var stmts []ast.Stmt
		w.held = cloneHeld(entry)
		switch cc := cc.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e, false)
			}
			if cc.List == nil {
				sawDefault = true
			}
			stmts = cc.Body
		case *ast.CommClause:
			if cc.Comm == nil {
				sawDefault = true
			} else {
				w.stmt(cc.Comm)
			}
			stmts = cc.Body
		}
		hasArm = true
		if !w.stmts(stmts) {
			allTerm = false
			merge(w.held)
		}
	}
	if sawDefault && hasArm && allTerm {
		return true
	}
	if !sawDefault {
		merge(entry)
	}
	if merged == nil {
		merged = entry
	}
	w.held = merged
	return false
}

// expr walks an expression in evaluation order, intercepting calls
// and function literals.
func (w *walker) expr(e ast.Expr, deferred bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			w.lits = append(w.lits, n)
			return false
		case *ast.CallExpr:
			// An immediately-invoked literal runs its body inline, on
			// this goroutine, with whatever is held right now. Deferred
			// IIFEs run at function exit instead and stay on the
			// literal path.
			if lit, ok := n.Fun.(*ast.FuncLit); ok && !deferred {
				for _, a := range n.Args {
					w.expr(a, false)
				}
				w.inlineLit(lit)
				return false
			}
			// Arguments and receiver first (evaluation order), then
			// the call's own effect.
			w.expr(n.Fun, false)
			for _, a := range n.Args {
				w.expr(a, false)
			}
			w.call(n, deferred)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				w.expr(n.X, false)
				w.visit(n) // channel receive
				return false
			}
		}
		w.visit(n)
		return true
	})
}

func (w *walker) call(c *ast.CallExpr, deferred bool) {
	w.visit(c)
	if w.hooks.Classify == nil {
		return
	}
	act, key := w.hooks.Classify(c, deferred)
	switch act {
	case Acquire:
		w.seq++
		w.held[key] = Hold{Pos: c.Pos(), Order: w.seq}
	case Release:
		delete(w.held, key)
	}
}

// inlineLit walks an immediately-invoked function literal's body with
// the current held set. Returns inside the literal exit the literal,
// not the enclosing function, so the sub-walk captures its own exit
// held sets (outer FuncEnd hooks must not fire) and the post-call
// held set is their intersection — the same conservative merge the
// branch rules use. A body that always panics leaves the held set
// untouched: control never reaches the code after the call.
func (w *walker) inlineLit(lit *ast.FuncLit) {
	sub := &walker{held: cloneHeld(w.held), seq: w.seq}
	var exits []map[string]Hold
	sub.hooks = Hooks{
		Classify: w.hooks.Classify,
		Visit:    w.hooks.Visit,
		FuncEnd: func(_ *ast.ReturnStmt, held map[string]Hold) {
			exits = append(exits, cloneHeld(held))
		},
	}
	if !sub.stmts(lit.Body.List) {
		exits = append(exits, sub.held)
	}
	w.seq = sub.seq
	w.lits = append(w.lits, sub.lits...)
	if len(exits) > 0 {
		merged := exits[0]
		for _, e := range exits[1:] {
			merged = intersectHeld(merged, e)
		}
		w.held = merged
	}
}

func (w *walker) visit(n ast.Node) {
	if w.hooks.Visit != nil {
		w.hooks.Visit(n, w.held)
	}
}

// isPanicCall reports whether e is a direct call to panic.
func isPanicCall(e ast.Expr) bool {
	c, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := c.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
