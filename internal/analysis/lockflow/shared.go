package lockflow

import (
	"go/ast"
	"go/types"
)

// SelectCommNodes collects every node inside a select communication
// clause. Sends and receives there are scheduled by the select itself;
// analyzers that classify blocking operations skip these nodes so a
// blocking select is reported once, at the SelectStmt, not once per
// clause.
func SelectCommNodes(body *ast.BlockStmt) map[ast.Node]bool {
	skip := make(map[ast.Node]bool)
	if body == nil {
		return skip
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cc := range sel.Body.List {
			comm, ok := cc.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			ast.Inspect(comm.Comm, func(m ast.Node) bool {
				if m != nil {
					skip[m] = true
				}
				return true
			})
		}
		return true
	})
	return skip
}

// NamedRecvName unwraps pointers and returns the bare name of a named
// receiver type ("WaitGroup", "Cond", "Queue"), or "" for anything
// unnamed.
func NamedRecvName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}
