package lockflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// walkSrc parses src as a function body wrapped in a file, walking the
// first function. Calls named lock()/unlock() classify as
// Acquire/Release of key "L"; the probe() call records the held set.
func walkSrc(t *testing.T, src string) (probes []string, exits []string) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package t\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fn = fd
			break
		}
	}
	render := func(held map[string]Hold) string {
		var keys []string
		for k := range held {
			keys = append(keys, k)
		}
		if len(keys) == 0 {
			return "-"
		}
		if len(keys) > 1 {
			// deterministic: small sets only in these tests
			for i := 0; i < len(keys); i++ {
				for j := i + 1; j < len(keys); j++ {
					if keys[j] < keys[i] {
						keys[i], keys[j] = keys[j], keys[i]
					}
				}
			}
		}
		return strings.Join(keys, ",")
	}
	WalkFunc(fn.Body, Hooks{
		Classify: func(c *ast.CallExpr, deferred bool) (Action, string) {
			id, ok := c.Fun.(*ast.Ident)
			if !ok {
				return None, ""
			}
			switch id.Name {
			case "lock":
				return Acquire, key(c)
			case "unlock":
				if deferred {
					return None, "" // deferred unlock holds to function end
				}
				return Release, key(c)
			}
			return None, ""
		},
		Visit: func(n ast.Node, held map[string]Hold) {
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "probe" {
					probes = append(probes, render(held))
				}
			}
		},
		FuncEnd: func(ret *ast.ReturnStmt, held map[string]Hold) {
			exits = append(exits, render(held))
		},
	})
	return probes, exits
}

// key lets tests track distinct locks via lock("A") string args;
// bare lock() is key "L".
func key(c *ast.CallExpr) string {
	if len(c.Args) == 1 {
		if bl, ok := c.Args[0].(*ast.BasicLit); ok {
			return strings.Trim(bl.Value, `"`)
		}
	}
	return "L"
}

func TestLinearLockUnlock(t *testing.T) {
	probes, _ := walkSrc(t, `
func f() {
	probe()
	lock()
	probe()
	unlock()
	probe()
}`)
	want := []string{"-", "L", "-"}
	assertEq(t, probes, want)
}

func TestTerminatedBranchExcludedFromMerge(t *testing.T) {
	// The shape of the pre-fix buffer.Fetch: the hit path unlocks and
	// returns; the fall-through path still holds the lock.
	probes, _ := walkSrc(t, `
func f() {
	lock()
	if hit {
		unlock()
		probe()
		return
	}
	probe()
	unlock()
}`)
	assertEq(t, probes, []string{"-", "L"})
}

func TestBothArmsReleaseMergesToEmpty(t *testing.T) {
	probes, _ := walkSrc(t, `
func f() {
	lock()
	if a {
		unlock()
	} else {
		unlock()
	}
	probe()
}`)
	assertEq(t, probes, []string{"-"})
}

func TestOneArmReleasesIntersection(t *testing.T) {
	probes, _ := walkSrc(t, `
func f() {
	lock()
	if a {
		unlock()
	}
	probe()
}`)
	// Held only on one path: intersection drops it (no false positive).
	assertEq(t, probes, []string{"-"})
}

func TestDeferredUnlockHoldsToEnd(t *testing.T) {
	probes, exits := walkSrc(t, `
func f() {
	lock()
	defer unlock()
	probe()
}`)
	assertEq(t, probes, []string{"L"})
	assertEq(t, exits, []string{"L"})
}

func TestFuncLitWalkedWithEmptyHeld(t *testing.T) {
	probes, _ := walkSrc(t, `
func f() {
	lock()
	go func() {
		probe()
	}()
	probe()
	unlock()
}`)
	// Outer probe sees L; the goroutine body does not inherit it.
	assertEq(t, probes, []string{"L", "-"})
}

func TestLoopBodyEffectsDiscarded(t *testing.T) {
	probes, _ := walkSrc(t, `
func f() {
	lock()
	for i := 0; i < n; i++ {
		probe()
		unlock()
	}
	probe()
}`)
	// Inside the body the entry set holds; after the loop the entry
	// set is restored (body may not have run).
	assertEq(t, probes, []string{"L", "L"})
}

func TestTwoLocksNested(t *testing.T) {
	probes, _ := walkSrc(t, `
func f() {
	lock("A")
	lock("B")
	probe()
	unlock("B")
	probe()
	unlock("A")
}`)
	assertEq(t, probes, []string{"A,B", "A"})
}

func TestSwitchWithoutDefaultKeepsEntry(t *testing.T) {
	probes, _ := walkSrc(t, `
func f() {
	lock()
	switch x {
	case 1:
		unlock()
	}
	probe()
}`)
	assertEq(t, probes, []string{"-"}) // intersection with bypass path... entry held, case released: merge drops
}

func TestReturnExitSeesHeld(t *testing.T) {
	_, exits := walkSrc(t, `
func f() {
	lock()
	if a {
		return
	}
	unlock()
}`)
	assertEq(t, exits, []string{"L", "-"})
}

func assertEq(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
