// Package analysis is Hydra's in-tree static-analysis framework: a
// deliberately small re-implementation of the golang.org/x/tools
// go/analysis surface on top of the standard library's go/ast,
// go/parser and go/types, so the analyzer suite builds with zero
// external dependencies.
//
// The framework exists to machine-check the concurrency disciplines
// the storage manager depends on (see DESIGN.md, "Concurrency
// invariants and hydra-vet"). Individual invariants live in the
// sibling packages lockscope, latchorder, poolcycle and atomicmix;
// cmd/hydra-vet drives them over the module.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //hydra:vet:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package via pass and reports findings through
	// pass.Reportf. A non-nil error aborts the whole run (reserved for
	// analyzer bugs, not findings).
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state into an
// analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Package is the loaded package behind the pass, carrying
	// tree-local imports with full source for whole-program summary
	// computation. Nil only in drivers that analyze detached units
	// (go vet -vettool), where cross-package facts come from a cache.
	Package *Package

	// report collects a diagnostic; installed by the driver.
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChain records a finding carrying the call chain witnessing it,
// so machine-readable drivers (hydra-vet -json) expose the chain
// structurally rather than only inside the message text.
func (p *Pass) ReportChain(pos token.Pos, chain []string, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
	// Chain is the witness call chain for summary-closure findings
	// (latchorder), outermost callee first; nil otherwise.
	Chain []string
}

// Run executes each analyzer over each package and returns the
// surviving diagnostics, sorted by position. Findings on lines
// covered by a justified //hydra:vet:ignore directive are dropped;
// directives lacking a justification are themselves reported.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg.Fset, pkg.Files)
		diags = append(diags, sup.malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Package:   pkg,
			}
			pass.report = func(d Diagnostic) {
				if !sup.covers(pkg.Fset, d) {
					diags = append(diags, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ignoreDirective is the parsed form of
//
//	//hydra:vet:ignore <analyzer>[,<analyzer>...] -- <justification>
//
// A directive suppresses matching findings on its own line and on the
// line directly below it (so it can sit above the flagged statement).
// "all" matches every analyzer. The justification is mandatory: a
// baseline without a recorded reason defeats the point of one.
type ignoreDirective struct {
	file      string
	line      int
	analyzers []string
}

const ignorePrefix = "//hydra:vet:ignore"

type suppressions struct {
	directives []ignoreDirective
	malformed  []Diagnostic
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				names, justification, ok := strings.Cut(rest, "--")
				if !ok || strings.TrimSpace(justification) == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Analyzer: "hydra-vet",
						Pos:      c.Pos(),
						Message:  "ignore directive missing justification: want //hydra:vet:ignore <analyzers> -- <reason>",
					})
					continue
				}
				var list []string
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						list = append(list, n)
					}
				}
				if len(list) == 0 {
					s.malformed = append(s.malformed, Diagnostic{
						Analyzer: "hydra-vet",
						Pos:      c.Pos(),
						Message:  "ignore directive names no analyzers",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				s.directives = append(s.directives, ignoreDirective{
					file: pos.Filename, line: pos.Line, analyzers: list,
				})
			}
		}
	}
	return s
}

func (s *suppressions) covers(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, dir := range s.directives {
		if dir.file != pos.Filename {
			continue
		}
		if dir.line != pos.Line && dir.line != pos.Line-1 {
			continue
		}
		for _, name := range dir.analyzers {
			if name == "all" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}
