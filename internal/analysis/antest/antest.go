// Package antest is hydra-vet's fixture test harness — a minimal
// analysistest. A fixture is a module-less source tree under
// testdata/src/<pkg>; Run loads the named packages with the offline
// loader, applies one analyzer, and checks every reported diagnostic
// against `// want "regexp"` comments placed on the offending lines:
//
//	s.mu.Lock()
//	ch <- 1 // want "channel send while holding s\\.mu"
//
// A line may carry several quoted patterns for several diagnostics.
// The test fails on any diagnostic with no matching want on its line,
// and on any want no diagnostic matched — fixtures therefore pin both
// the true positives AND the true negatives (a clean good.go asserts
// the analyzer stays quiet).
package antest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hydra/internal/analysis"
)

// wantRe extracts the quoted patterns of a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run applies a to the fixture packages under dir/src and verifies
// diagnostics against want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld, err := analysis.NewLoader(filepath.Join(dir, "src"), "")
	if err != nil {
		t.Fatalf("antest: loader: %v", err)
	}
	loaded, err := ld.Load(pkgs...)
	if err != nil {
		t.Fatalf("antest: load %v: %v", pkgs, err)
	}
	if len(loaded) != len(pkgs) {
		t.Fatalf("antest: loaded %d of %d fixture packages", len(loaded), len(pkgs))
	}

	var wants []*want
	for _, pkg := range loaded {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					ms := wantRe.FindAllStringSubmatch(rest, -1)
					if len(ms) == 0 {
						t.Errorf("%s: malformed want comment (no quoted pattern)", pos)
						continue
					}
					for _, m := range ms {
						// The quoted form is a Go string literal; unquote
						// so \\. in fixtures means a literal dot.
						pat, err := strconv.Unquote(`"` + m[1] + `"`)
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", pos, m[1], err)
							continue
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
							continue
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}

	diags, err := analysis.Run(loaded, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("antest: run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		pos := loaded[0].Fset.Position(d.Pos)
		if w := match(wants, pos.Filename, pos.Line, d.Message); w == nil {
			t.Errorf("%s: unexpected %s diagnostic: %s", fmt.Sprintf("%s:%d", pos.Filename, pos.Line), d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q: no matching diagnostic reported", w.file, w.line, w.pattern)
		}
	}
}

// match consumes the first unmatched want on (file, line) whose
// pattern matches message.
func match(wants []*want, file string, line int, message string) *want {
	for _, w := range wants {
		if w.matched || w.file != file || w.line != line {
			continue
		}
		if w.pattern.MatchString(message) {
			w.matched = true
			return w
		}
	}
	return nil
}
