package analysis

import (
	"go/token"
	"path/filepath"
	"runtime"
	"testing"
)

// repoRoot walks up from this file to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

func TestLoaderTypeChecksModulePackages(t *testing.T) {
	ld, err := NewLoader(repoRoot(t), "")
	if err != nil {
		t.Fatal(err)
	}
	if ld.Module != "hydra" {
		t.Fatalf("module = %q, want hydra", ld.Module)
	}
	pkgs, err := ld.Load("internal/buffer", "internal/sync2")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || len(p.Files) == 0 {
			t.Fatalf("package %s incompletely loaded", p.Path)
		}
	}
}

func TestSuppressionDirectives(t *testing.T) {
	ld, err := NewLoader(repoRoot(t), "")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("internal/page")
	if err != nil {
		t.Fatal(err)
	}
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports every file's package clause",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				pass.Reportf(f.Package, "probe finding")
			}
			return nil
		},
	}
	diags, err := Run(pkgs, []*Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("probe reported nothing")
	}
	for _, d := range diags {
		if d.Pos == token.NoPos {
			t.Fatalf("diagnostic without position: %+v", d)
		}
	}
}
