// Package latchsum computes whole-program latch-acquisition
// summaries: for every function, the minimum-ranked lock-hierarchy
// acquisition reachable on its synchronous call path, together with
// the call chain that reaches it.
//
// The latchorder analyzer consumes these to report inversions hidden
// arbitrarily deep behind calls ("a → b → c acquires rank 40 while
// rank 90 is held"), and blockscope shares the rank table to decide
// which held locks are spin-tier. The computation is a fixed point
// over the package call graph: per-function direct facts (ranked
// acquisitions, static call edges) iterate until no summary improves.
// Rank strictly decreases on every update and the rank domain is
// finite, so the iteration terminates — including on recursive call
// cycles, where the strict-decrease rule also prevents chains from
// growing through the cycle.
//
// Cross-package edges resolve through a Resolver: when the imported
// package's source is loaded (standalone hydra-vet, antest fixtures)
// its summaries are computed recursively and memoized; when only
// export data is available (the go vet -vettool unit protocol) they
// come from a JSON cache written by a previous standalone run (see
// Cache; make lint wires the two together).
//
// What counts as the synchronous path:
//
//   - deferred calls are included: they run at function exit on the
//     same goroutine, while any lock the *caller* holds across the
//     call is still held;
//   - immediately-invoked function literals (func(){...}()) are
//     included: their body runs inline;
//   - go statements and non-invoked function literals are excluded:
//     they run on another goroutine or at an unknowable later time,
//     carrying none of the caller's locks;
//   - interface-method and function-value calls are excluded (no
//     static callee). This is the closure's one soundness hole: an
//     acquisition behind dynamic dispatch is invisible. Rather than
//     hide it, every summary counts such skipped sites (DynCalls), so
//     drivers can surface exactly where the analysis is blind
//     (hydra-vet -json emits the census; DESIGN.md §6 documents it).
package latchsum

import (
	"go/ast"
	"go/types"
	"path"

	"hydra/internal/analysis"
	"hydra/internal/analysis/lockflow"
	"hydra/internal/invariant"
)

// Hierarchy maps lock declaration sites ("pkg.Type.field", as
// rendered by lockflow.LockSite) to ranks. A lock may only be
// acquired while every ranked lock already held has rank <= its own.
// Lower rank = outer tier = acquired first. Gaps leave room for new
// tiers.
//
// The ranks come from internal/invariant's tier constants, which the
// hydradebug runtime assertions enforce on live executions — one
// source of truth for both layers. DESIGN.md renders the table; keep
// the prose in sync.
var Hierarchy = map[string]int{
	// Tier 0: whole-engine serialization.
	"core.Engine.ckptMu": invariant.TierEngineCkpt,
	"core.Engine.mu":     invariant.TierEngineMu,

	// Tier 1: per-transaction and per-structure locks.
	"core.Txn.mu":             invariant.TierTxnMu,
	"core.verTable.publishMu": invariant.TierMVCCPublish,
	"core.verTable.snapMu":    invariant.TierMVCCSnap,
	"btree.Tree.coarse":       invariant.TierTreeCoarse,
	"btree.Tree.rootMu":       invariant.TierTreeRoot,

	// Tier 2: lock-manager partitions (2PL state).
	"lock.partition.mu": invariant.TierLockPart,

	// Tier 3: page latches (crabbing orders same-rank acquisitions).
	"buffer.Frame.Latch": invariant.TierFrameLatch,
	// MVCC chain shards sit between the page latches and the buffer
	// bookkeeping tiers: version install runs inside a page X-latch
	// window, and nothing is acquired under a shard.
	"core.verShard.mu": invariant.TierMVCCShard,

	// Tier 4: short bookkeeping mutexes — leaves of the hierarchy;
	// nothing may be acquired under them (and lockscope/blockscope
	// separately forbid blocking there).
	"buffer.shard.mu":        invariant.TierPoolShard,
	"buffer.FileStore.mu":    invariant.TierFileStore,
	"wal.Log.mu":             invariant.TierWALLog,
	"wal.Log.waitMu":         invariant.TierWALWait,
	"wal.SegmentedDevice.mu": invariant.TierWALDevice,
	"sync2.Queue.mu":         invariant.TierDoraQueue,
}

// FuncSummary is one function's transitive latch footprint: the
// lowest-ranked hierarchy acquisition reachable on its synchronous
// path. One entry is enough — any held rank above it makes a call an
// inversion, and the report names the worst offender.
type FuncSummary struct {
	// Site is the declaration site of the acquisition
	// (e.g. "lock.partition.mu").
	Site string `json:"site"`
	// Rank is Hierarchy[Site].
	Rank int `json:"rank"`
	// Chain names the call path below the summarized function that
	// reaches the acquisition, outermost callee first; empty when the
	// function acquires Site directly.
	Chain []string `json:"chain,omitempty"`
	// DynCalls counts the dynamic-dispatch call sites (interface
	// methods, function values) on the function's own synchronous path.
	// Each is a hole in the closure: whatever the runtime target
	// acquires is invisible here, so a non-zero count marks the summary
	// (and every summary reached through this function) as a lower
	// bound, not a proof. The count is per-function, not transitive.
	//
	// A function with dynamic sites but no reachable ranked acquisition
	// still gets an entry, with Site == "" and Rank 0; consumers that
	// rank calls must treat such entries as "no acquisition known"
	// (PkgSummaries.Callee filters them).
	DynCalls int `json:"dyn_calls,omitempty"`
}

// DepResolver resolves the summaries of an imported package, keyed by
// types.Func.FullName. A nil map means "no summaries known" (not an
// error: standard-library and unanalyzable packages).
type DepResolver func(importPath string) map[string]FuncSummary

// Summaries computes the fixed-point summary map for every function
// declared in pkg. deps resolves cross-package call edges; nil
// confines the closure to the package.
func Summaries(pkg *analysis.Package, deps DepResolver) map[*types.Func]FuncSummary {
	type facts struct {
		fn    *types.Func
		min   *FuncSummary
		calls []*types.Func
		dyn   int
	}
	var fns []*facts
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fa := &facts{fn: fn}
			WalkSync(fd.Body, func(c *ast.CallExpr) {
				act, _, class := lockflow.ClassifyLockCall(pkg.Info, c)
				if act == lockflow.Acquire && class != lockflow.ClassNone {
					site := lockflow.LockSite(pkg.Info, c)
					if rank, ranked := Hierarchy[site]; ranked {
						if fa.min == nil || rank < fa.min.Rank {
							fa.min = &FuncSummary{Site: site, Rank: rank}
						}
					}
					return
				}
				if callee := CalleeOf(pkg.Info, c); callee != nil && !ifaceMethod(callee) {
					fa.calls = append(fa.calls, callee)
				} else if DynCall(pkg.Info, c) {
					fa.dyn++
				}
			})
			fns = append(fns, fa)
		}
	}

	// Seed with direct acquisitions, then iterate call edges to a
	// fixed point. Iteration follows declaration order, and an entry
	// only improves on a strictly lower rank, so the result (and the
	// witness chains) is deterministic for a given source tree.
	cur := make(map[*types.Func]FuncSummary)
	for _, fa := range fns {
		if fa.min != nil {
			cur[fa.fn] = *fa.min
		}
	}
	// depMemo pins each imported package's summaries for the whole
	// iteration; resolving once also keeps cost linear.
	depMemo := make(map[string]map[string]FuncSummary)
	resolveDep := func(p string) map[string]FuncSummary {
		if deps == nil {
			return nil
		}
		m, ok := depMemo[p]
		if !ok {
			m = deps(p)
			depMemo[p] = m
		}
		return m
	}
	for changed := true; changed; {
		changed = false
		for _, fa := range fns {
			for _, callee := range fa.calls {
				var s FuncSummary
				var ok bool
				if callee.Pkg() == pkg.Types {
					// Defs and Uses resolve a declared function to the
					// same object, so the summary map keys directly.
					s, ok = cur[callee]
				} else if callee.Pkg() != nil {
					m := resolveDep(callee.Pkg().Path())
					if m != nil {
						s, ok = m[callee.FullName()]
					}
				}
				// Dyn-only entries (Site == "") carry no acquisition to
				// propagate — a cached dependency may publish them.
				if !ok || s.Site == "" {
					continue
				}
				have, got := cur[fa.fn]
				if !got || s.Rank < have.Rank {
					chain := make([]string, 0, len(s.Chain)+1)
					chain = append(chain, ShortName(callee))
					chain = append(chain, s.Chain...)
					cur[fa.fn] = FuncSummary{Site: s.Site, Rank: s.Rank, Chain: chain}
					changed = true
				}
			}
		}
	}
	// Fold in the dynamic-dispatch census after the rank fixed point
	// settles: counts never influence rank propagation, and a function
	// whose only call sites are dynamic still gets a (dyn-only) entry
	// so the blind spot survives into the cache and driver output.
	for _, fa := range fns {
		if fa.dyn == 0 {
			continue
		}
		s := cur[fa.fn]
		s.DynCalls = fa.dyn
		cur[fa.fn] = s
	}
	return cur
}

// WalkSync visits every call expression on body's synchronous path:
// deferred calls included, go statements and non-invoked function
// literals excluded, immediately-invoked literal bodies walked
// inline.
func WalkSync(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			// Arguments evaluate on this goroutine; the call does not.
			for _, a := range m.Call.Args {
				WalkSync(a, visit)
			}
			return false
		case *ast.FuncLit:
			// Reached only when the literal is not the callee of an
			// immediate invocation (that case is intercepted below).
			return false
		case *ast.CallExpr:
			if lit, ok := m.Fun.(*ast.FuncLit); ok {
				for _, a := range m.Args {
					WalkSync(a, visit)
				}
				WalkSync(lit.Body, visit)
				return false
			}
			visit(m)
			return true
		}
		return true
	})
}

// CalleeOf resolves a call to the *types.Func it statically invokes,
// or nil for function values, builtins and type conversions.
// Interface-method calls resolve to the interface's *types.Func; they
// match no summary (summaries key concrete declarations) and so are
// effectively skipped — DynCall classifies them so Summaries can count
// the skip instead of losing it silently.
func CalleeOf(info *types.Info, c *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(c.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ifaceMethod reports whether fn is declared on an interface — a call
// to it dispatches dynamically, so no concrete summary can match.
func ifaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// DynCall reports whether c is a dynamic-dispatch call site — an
// interface-method invocation or a call through a function value —
// whose target the closure cannot resolve. Builtins, type conversions
// and immediately-invoked literals (inlined by WalkSync) are not
// dynamic: their effect is fully visible.
func DynCall(info *types.Info, c *ast.CallExpr) bool {
	if fn := CalleeOf(info, c); fn != nil {
		return ifaceMethod(fn)
	}
	tv, ok := info.Types[ast.Unparen(c.Fun)]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return false
	}
	_, isFunc := tv.Type.Underlying().(*types.Signature)
	return isFunc
}

// ShortName renders fn the way diagnostics spell functions:
// "core.register" for package functions, "(*core.Txn).finish" for
// methods — the package qualified by base name only, matching
// lockflow.LockSite's site rendering.
func ShortName(fn *types.Func) string {
	pkgBase := ""
	if fn.Pkg() != nil {
		pkgBase = path.Base(fn.Pkg().Path())
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if pkgBase == "" {
			return fn.Name()
		}
		return pkgBase + "." + fn.Name()
	}
	t := sig.Recv().Type()
	star := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		star = "*"
		t = p.Elem()
	}
	recv := "?"
	if named, isNamed := t.(*types.Named); isNamed {
		recv = named.Obj().Name()
		if named.Obj().Pkg() != nil {
			recv = path.Base(named.Obj().Pkg().Path()) + "." + recv
		}
	} else if iface, isIface := t.(*types.Interface); isIface {
		_ = iface
		recv = pkgBase + ".interface"
	}
	return "(" + star + recv + ")." + fn.Name()
}

// ChainString renders a diagnostic chain "a → b → c".
func ChainString(chain []string) string {
	out := ""
	for i, c := range chain {
		if i > 0 {
			out += " → "
		}
		out += c
	}
	return out
}
