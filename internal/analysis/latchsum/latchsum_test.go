package latchsum_test

import (
	"go/types"
	"path/filepath"
	"reflect"
	"testing"

	"hydra/internal/analysis"
	"hydra/internal/analysis/latchsum"
)

func loadFixture(t *testing.T) *analysis.Package {
	t.Helper()
	ld, err := analysis.NewLoader(filepath.Join("testdata", "src"), "")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

func summaryOf(t *testing.T, sums map[*types.Func]latchsum.FuncSummary, name string) (latchsum.FuncSummary, bool) {
	t.Helper()
	for fn, s := range sums {
		if fn.Name() == name {
			return s, true
		}
	}
	return latchsum.FuncSummary{}, false
}

// TestFixedPointConvergesOnRecursiveCycle pins the closure's behavior
// on a mutually recursive call cycle: it terminates, carries the
// minimum rank through the cycle, and renders the witness chain.
func TestFixedPointConvergesOnRecursiveCycle(t *testing.T) {
	pkg := loadFixture(t)
	sums := latchsum.Summaries(pkg, nil)

	cases := []struct {
		fn   string
		want latchsum.FuncSummary
	}{
		{"B", latchsum.FuncSummary{Site: "core.Engine.mu", Rank: 20}},
		{"A", latchsum.FuncSummary{Site: "core.Engine.mu", Rank: 20, Chain: []string{"core.B"}}},
		{"Self", latchsum.FuncSummary{Site: "core.Engine.mu", Rank: 20}},
		{"Top", latchsum.FuncSummary{Site: "core.Engine.mu", Rank: 20, Chain: []string{"core.A", "core.B"}}},
	}
	for _, c := range cases {
		got, ok := summaryOf(t, sums, c.fn)
		if !ok {
			t.Fatalf("%s: no summary computed", c.fn)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: summary = %+v, want %+v", c.fn, got, c.want)
		}
	}
	if s, ok := summaryOf(t, sums, "Quiet"); ok {
		t.Errorf("Quiet: unexpected summary %+v", s)
	}
}

// TestDynamicCallCensus pins the soundness-hole accounting: dynamic
// call sites (interface methods, function values) are counted per
// function, dyn-only entries carry no rank, and the count never
// propagates through static call edges.
func TestDynamicCallCensus(t *testing.T) {
	pkg := loadFixture(t)
	sums := latchsum.Summaries(pkg, nil)

	dyn, ok := summaryOf(t, sums, "Dyn")
	if !ok {
		t.Fatal("Dyn: no entry; dynamic sites must earn a dyn-only summary")
	}
	// len(), int() and int64() are builtins/conversions, not dynamic.
	if dyn.Site != "" || dyn.Rank != 0 || dyn.DynCalls != 2 {
		t.Errorf("Dyn: summary = %+v, want dyn-only with DynCalls=2", dyn)
	}

	holder, ok := summaryOf(t, sums, "DynHolder")
	if !ok || holder.Site != "core.Engine.mu" || holder.DynCalls != 1 {
		t.Errorf("DynHolder: summary = %+v ok=%v, want core.Engine.mu with DynCalls=1", holder, ok)
	}

	// CallsDyn's only callee is dyn-only: no rank may leak out of it
	// (Rank 0 would read as the outermost tier) and the per-function
	// count stays with Dyn.
	if s, ok := summaryOf(t, sums, "CallsDyn"); ok {
		t.Errorf("CallsDyn: unexpected summary %+v", s)
	}

	// Static-call-only functions are untouched by the census.
	if top, _ := summaryOf(t, sums, "Top"); top.DynCalls != 0 {
		t.Errorf("Top: DynCalls = %d, want 0", top.DynCalls)
	}
}

// TestFixedPointDeterministic recomputes the closure and demands
// identical summaries — chains included — so repeated runs (and CI
// baselines) never churn.
func TestFixedPointDeterministic(t *testing.T) {
	pkg := loadFixture(t)
	a := latchsum.Summaries(pkg, nil)
	b := latchsum.Summaries(pkg, nil)
	if len(a) != len(b) {
		t.Fatalf("summary count differs across runs: %d vs %d", len(a), len(b))
	}
	for fn, sa := range a {
		sb, ok := b[fn]
		if !ok {
			t.Fatalf("%s: present in one run only", fn.FullName())
		}
		if !reflect.DeepEqual(sa, sb) {
			t.Errorf("%s: %+v vs %+v across runs", fn.FullName(), sa, sb)
		}
	}
}
