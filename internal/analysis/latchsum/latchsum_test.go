package latchsum_test

import (
	"go/types"
	"path/filepath"
	"reflect"
	"testing"

	"hydra/internal/analysis"
	"hydra/internal/analysis/latchsum"
)

func loadFixture(t *testing.T) *analysis.Package {
	t.Helper()
	ld, err := analysis.NewLoader(filepath.Join("testdata", "src"), "")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.Load("core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

func summaryOf(t *testing.T, sums map[*types.Func]latchsum.FuncSummary, name string) (latchsum.FuncSummary, bool) {
	t.Helper()
	for fn, s := range sums {
		if fn.Name() == name {
			return s, true
		}
	}
	return latchsum.FuncSummary{}, false
}

// TestFixedPointConvergesOnRecursiveCycle pins the closure's behavior
// on a mutually recursive call cycle: it terminates, carries the
// minimum rank through the cycle, and renders the witness chain.
func TestFixedPointConvergesOnRecursiveCycle(t *testing.T) {
	pkg := loadFixture(t)
	sums := latchsum.Summaries(pkg, nil)

	cases := []struct {
		fn   string
		want latchsum.FuncSummary
	}{
		{"B", latchsum.FuncSummary{Site: "core.Engine.mu", Rank: 20}},
		{"A", latchsum.FuncSummary{Site: "core.Engine.mu", Rank: 20, Chain: []string{"core.B"}}},
		{"Self", latchsum.FuncSummary{Site: "core.Engine.mu", Rank: 20}},
		{"Top", latchsum.FuncSummary{Site: "core.Engine.mu", Rank: 20, Chain: []string{"core.A", "core.B"}}},
	}
	for _, c := range cases {
		got, ok := summaryOf(t, sums, c.fn)
		if !ok {
			t.Fatalf("%s: no summary computed", c.fn)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: summary = %+v, want %+v", c.fn, got, c.want)
		}
	}
	if s, ok := summaryOf(t, sums, "Quiet"); ok {
		t.Errorf("Quiet: unexpected summary %+v", s)
	}
}

// TestFixedPointDeterministic recomputes the closure and demands
// identical summaries — chains included — so repeated runs (and CI
// baselines) never churn.
func TestFixedPointDeterministic(t *testing.T) {
	pkg := loadFixture(t)
	a := latchsum.Summaries(pkg, nil)
	b := latchsum.Summaries(pkg, nil)
	if len(a) != len(b) {
		t.Fatalf("summary count differs across runs: %d vs %d", len(a), len(b))
	}
	for fn, sa := range a {
		sb, ok := b[fn]
		if !ok {
			t.Fatalf("%s: present in one run only", fn.FullName())
		}
		if !reflect.DeepEqual(sa, sb) {
			t.Errorf("%s: %+v vs %+v across runs", fn.FullName(), sa, sb)
		}
	}
}
