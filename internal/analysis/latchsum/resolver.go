package latchsum

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"hydra/internal/analysis"
	"hydra/internal/analysis/lockflow"
)

// Resolver turns packages into summary maps, memoizing per type-
// checked package and falling back to a disk cache for dependencies
// whose source is not loaded (the go vet -vettool unit protocol ships
// export data only).
//
// Default is the process-wide resolver the analyzers use; drivers
// configure its disk cache before running (cmd/hydra-vet's -summaries
// flag, the HYDRA_VET_SUMMARIES environment variable in vet-tool
// mode).
type Resolver struct {
	mu   sync.Mutex
	memo map[*types.Package]map[string]FuncSummary
	disk *Cache
}

// Default is the shared resolver.
var Default = &Resolver{}

// SetDisk installs (or clears) the disk-cache fallback.
func (r *Resolver) SetDisk(c *Cache) {
	r.mu.Lock()
	r.disk = c
	r.mu.Unlock()
}

// PkgSummaries is one package's computed summaries plus the
// resolution context to look up any callee — same-package or
// imported — that a call site in the package can name.
type PkgSummaries struct {
	pkg *analysis.Package
	r   *Resolver
	// Funcs maps every function declared in the package to its
	// fixed-point summary; functions with no reachable ranked
	// acquisition are absent — unless they contain dynamic-dispatch
	// call sites, which earn a dyn-only entry (Site == "", DynCalls >
	// 0) recording where the closure is blind.
	Funcs map[*types.Func]FuncSummary
}

// ForPackage computes the complete summary map for pkg (exported and
// unexported functions alike), resolving tree-local imports from
// source when pkg.Imports carries them and from the disk cache
// otherwise.
func (r *Resolver) ForPackage(pkg *analysis.Package) *PkgSummaries {
	return &PkgSummaries{
		pkg:   pkg,
		r:     r,
		Funcs: Summaries(pkg, r.depResolver(pkg)),
	}
}

// Callee returns the summary of a function a call site in this
// package statically invokes, whether declared here or in an import.
// Dyn-only entries (Site == "": a dynamic-dispatch census with no
// known acquisition) are filtered — their Rank 0 would otherwise read
// as "acquires the outermost tier" and fabricate inversions.
func (ps *PkgSummaries) Callee(fn *types.Func) (FuncSummary, bool) {
	s, ok := ps.callee(fn)
	if !ok || s.Site == "" {
		return FuncSummary{}, false
	}
	return s, true
}

func (ps *PkgSummaries) callee(fn *types.Func) (FuncSummary, bool) {
	if fn.Pkg() == ps.pkg.Types {
		s, ok := ps.Funcs[fn]
		return s, ok
	}
	if fn.Pkg() == nil {
		return FuncSummary{}, false
	}
	if m := ps.r.depResolver(ps.pkg)(fn.Pkg().Path()); m != nil {
		s, ok := m[fn.FullName()]
		return s, ok
	}
	return FuncSummary{}, false
}

// NodeSummary computes the synchronous latch footprint of an
// arbitrary subtree — a deferred function literal's body, say — the
// same way Summaries treats a function body: direct ranked
// acquisitions plus the summaries of statically-resolved callees.
func (ps *PkgSummaries) NodeSummary(info *types.Info, n ast.Node) (FuncSummary, bool) {
	var best FuncSummary
	have := false
	improve := func(s FuncSummary) {
		if !have || s.Rank < best.Rank {
			best, have = s, true
		}
	}
	WalkSync(n, func(c *ast.CallExpr) {
		act, _, class := lockflow.ClassifyLockCall(info, c)
		if act == lockflow.Acquire && class != lockflow.ClassNone {
			site := lockflow.LockSite(info, c)
			if rank, ranked := Hierarchy[site]; ranked {
				improve(FuncSummary{Site: site, Rank: rank})
			}
			return
		}
		if callee := CalleeOf(info, c); callee != nil {
			if s, ok := ps.Callee(callee); ok {
				chain := make([]string, 0, len(s.Chain)+1)
				chain = append(chain, ShortName(callee))
				chain = append(chain, s.Chain...)
				improve(FuncSummary{Site: s.Site, Rank: s.Rank, Chain: chain})
			}
		}
	})
	return best, have
}

// ByName computes pkg's summaries keyed by FullName — the shape a
// dependent package's closure consumes and the shape the disk cache
// stores. Memoized on the type-checked package identity.
func (r *Resolver) ByName(pkg *analysis.Package) map[string]FuncSummary {
	r.mu.Lock()
	if m, ok := r.memo[pkg.Types]; ok {
		r.mu.Unlock()
		return m
	}
	r.mu.Unlock()

	// Compute outside the lock: the recursion below re-enters ByName
	// for imports, and Go's import graph is acyclic so it terminates.
	sums := r.ForPackage(pkg)
	byName := make(map[string]FuncSummary, len(sums.Funcs))
	for fn, s := range sums.Funcs {
		// Methods of unexported types are reachable from other packages
		// through exported constructors, so everything is published —
		// the map is small and completeness beats guessing visibility.
		byName[fn.FullName()] = s
	}
	r.mu.Lock()
	if r.memo == nil {
		r.memo = make(map[*types.Package]map[string]FuncSummary)
	}
	r.memo[pkg.Types] = byName
	r.mu.Unlock()
	return byName
}

func (r *Resolver) depResolver(pkg *analysis.Package) DepResolver {
	return func(importPath string) map[string]FuncSummary {
		if dep, ok := pkg.Imports[importPath]; ok && dep != nil {
			return r.ByName(dep)
		}
		r.mu.Lock()
		disk := r.disk
		r.mu.Unlock()
		if disk != nil {
			return disk.Lookup(importPath)
		}
		return nil
	}
}

// Cache is the JSON disk form of cross-package summaries. A
// standalone hydra-vet run (whole source tree loaded) computes every
// package's summaries and writes them here; a subsequent go vet
// -vettool run, which sees one package's source at a time, reads them
// back so dora → core → lock chains stay visible. Entries carry a
// source fingerprint so the writer refreshes stale packages. The
// dynamic-dispatch census persists too: dyn-only entries serialize
// with an empty site ("site": "") and a dyn_calls count, and readers
// must keep filtering them from rank lookups (Callee does).
type Cache struct {
	path string

	mu   sync.Mutex
	data cacheFile
}

type cacheFile struct {
	Packages map[string]PkgEntry `json:"packages"`
}

// PkgEntry is one package's cached summaries.
type PkgEntry struct {
	Fingerprint string                 `json:"fingerprint"`
	Funcs       map[string]FuncSummary `json:"funcs"`
}

// LoadCache opens (or initializes) the cache at path. A missing or
// corrupt file yields an empty cache, not an error: the cache is an
// accelerator, never a source of truth.
func LoadCache(path string) *Cache {
	c := &Cache{path: path}
	c.data.Packages = make(map[string]PkgEntry)
	if raw, err := os.ReadFile(path); err == nil {
		var f cacheFile
		if json.Unmarshal(raw, &f) == nil && f.Packages != nil {
			c.data = f
		}
	}
	return c
}

// Lookup returns the cached summaries for pkgPath, or nil.
func (c *Cache) Lookup(pkgPath string) map[string]FuncSummary {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.data.Packages[pkgPath]; ok {
		return e.Funcs
	}
	return nil
}

// Store records pkgPath's summaries under fingerprint.
func (c *Cache) Store(pkgPath, fingerprint string, funcs map[string]FuncSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Packages[pkgPath] = PkgEntry{Fingerprint: fingerprint, Funcs: funcs}
}

// Fresh reports whether pkgPath is cached under fingerprint.
func (c *Cache) Fresh(pkgPath, fingerprint string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.data.Packages[pkgPath]
	return ok && e.Fingerprint == fingerprint
}

// Save writes the cache back to its path, creating parent directories
// as needed.
func (c *Cache) Save() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dir := filepath.Dir(c.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	raw, err := json.MarshalIndent(&c.data, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(c.path, append(raw, '\n'), 0o644)
}

// Fingerprint hashes a package's source files (names and contents) so
// cache writers can skip packages that have not changed.
func Fingerprint(dir string, fileNames []string) string {
	h := sha256.New()
	names := append([]string(nil), fileNames...)
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte(name))
		h.Write([]byte{0})
		if raw, err := os.ReadFile(filepath.Join(dir, name)); err == nil {
			h.Write(raw)
		}
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
