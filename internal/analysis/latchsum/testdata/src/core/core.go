// Package core gives the latchsum closure a recursive call cycle
// around a ranked acquisition: core.Engine.mu is rank 20, core.Txn.mu
// rank 30 in the shared hierarchy table.
package core

import "sync"

type Engine struct{ mu sync.Mutex }

type Txn struct{ mu sync.Mutex }

// A and B are mutually recursive; only B touches the hierarchy. The
// fixed point must terminate and give A the chain through B.
func A(e *Engine, n int) {
	if n > 0 {
		B(e, n-1)
	}
}

func B(e *Engine, n int) {
	e.mu.Lock()
	e.mu.Unlock()
	if n > 0 {
		A(e, n-1)
	}
}

// Self is directly recursive around its own acquisition.
func Self(e *Engine, n int) {
	if n > 0 {
		Self(e, n-1)
	}
	e.mu.Lock()
	e.mu.Unlock()
}

// Top acquires rank 30 directly and reaches rank 20 through the
// cycle; the summary keeps the minimum with its witness chain.
func Top(e *Engine, t *Txn) {
	t.mu.Lock()
	t.mu.Unlock()
	A(e, 1)
}

// Quiet never touches the hierarchy and must have no summary.
func Quiet(n int) int {
	if n <= 0 {
		return 0
	}
	return Quiet(n - 1)
}

// Closer is the dynamic-dispatch fixture interface.
type Closer interface{ Close() error }

// Dyn has only dynamic call sites: an interface method and a function
// value. Neither resolves statically, so Dyn's summary is dyn-only
// (no site, DynCalls = 2); the builtin and conversions below must not
// count.
func Dyn(c Closer, f func(), xs []int) int {
	_ = c.Close()
	f()
	return len(xs) + int(int64(0))
}

// DynHolder acquires rank 20 directly and also has one dynamic site;
// the summary keeps the acquisition and carries the count.
func DynHolder(e *Engine, c Closer) {
	e.mu.Lock()
	e.mu.Unlock()
	_ = c.Close()
}

// CallsDyn reaches no acquisition: Dyn's dyn-only summary must not
// propagate a rank (and the count is per-function, so CallsDyn itself
// has none).
func CallsDyn(c Closer, f func(), xs []int) {
	Dyn(c, f, xs)
}
