// HTTP observability surface: a stdlib-only listener exposing the
// engine's counters and contention profiles while a workload runs.
//
//	GET /metrics    Prometheus text exposition (counters + histograms)
//	GET /stats      the same snapshot as JSON (hydra-top's feed)
//	GET /trace      retained transaction events as JSON;
//	                ?enable=on|off toggles recording,
//	                ?txn=<id> filters to one transaction,
//	                ?max=<n> caps the response (default 4096 events)
//	GET /slow       the worst-K slow-transaction reservoir with phase
//	                breakdowns and captured traces
//	GET /incidents  the stall flight recorder's diagnostic bundles
//
// The handlers live in this package (not internal/obs) deliberately:
// obs must stay import-free of the engine so every subsystem can
// depend on it, while the snapshot here needs *core.Engine to reach
// the per-engine counters. Scraping is read-only and touches only
// atomic loads, so it can run at any frequency against a loaded
// server.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"hydra/internal/core"
	"hydra/internal/dora"
	"hydra/internal/hist"
	"hydra/internal/obs"
)

// HistJSON is the wire form of one latency distribution.
type HistJSON struct {
	Count   uint64 `json:"count"`
	MeanNs  int64  `json:"mean_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P90Ns   int64  `json:"p90_ns"`
	P99Ns   int64  `json:"p99_ns"`
	MaxNs   int64  `json:"max_ns"`
	Summary string `json:"summary"`
}

func histJSON(h hist.H) HistJSON {
	return HistJSON{
		Count:   h.Count(),
		MeanNs:  int64(h.Mean()),
		P50Ns:   int64(h.Quantile(0.50)),
		P90Ns:   int64(h.Quantile(0.90)),
		P99Ns:   int64(h.Quantile(0.99)),
		MaxNs:   int64(h.Max()),
		Summary: h.String(),
	}
}

// TierJSON is one latch tier's acquisition profile.
type TierJSON struct {
	Tier    string   `json:"tier"`
	Ops     uint64   `json:"ops"`
	Acquire HistJSON `json:"acquire"`
}

// StatsJSON is the full snapshot served at /stats and by STATS FULL.
type StatsJSON struct {
	UptimeSec    float64         `json:"uptime_sec"`
	Commits      uint64          `json:"commits"`
	Aborts       uint64          `json:"aborts"`
	Lock         lockStatsJSON   `json:"lock"`
	LockWait     HistJSON        `json:"lock_wait"`
	Log          logStatsJSON    `json:"log"`
	Buffer       bufStatsJSON    `json:"buffer"`
	Mvcc         mvccStatsJSON   `json:"mvcc"`
	Dora         doraStatsJSON   `json:"dora"`
	Latches      []TierJSON      `json:"latches"`
	Phases       []PhaseCellJSON `json:"phases"`
	Slow         SlowJSON        `json:"slow"`
	Incidents    int             `json:"incidents"`
	TraceEnabled bool            `json:"trace_enabled"`
	TraceEvents  int             `json:"trace_events"`
}

// PhaseCellJSON is one (path, outcome) cell of the transaction phase
// profile: the total wall-time distribution plus each phase's
// distribution over the transactions where that phase was non-zero.
type PhaseCellJSON struct {
	Path    string              `json:"path"`
	Outcome string              `json:"outcome"`
	Count   uint64              `json:"count"`
	Total   HistJSON            `json:"total"`
	Phase   map[string]HistJSON `json:"phase"`
}

// phaseCells collects the non-empty profile cells.
func phaseCells() []PhaseCellJSON {
	out := make([]PhaseCellJSON, 0, int(obs.NumPaths)*int(obs.NumOutcomes))
	for p := obs.TxnPath(0); p < obs.NumPaths; p++ {
		for oc := obs.TxnOutcome(0); oc < obs.NumOutcomes; oc++ {
			s := obs.TxnPhases.Snapshot(p, oc)
			if s.Count == 0 {
				continue
			}
			cell := PhaseCellJSON{
				Path:    p.String(),
				Outcome: oc.String(),
				Count:   s.Count,
				Total:   histJSON(s.Total),
				Phase:   make(map[string]HistJSON, int(obs.NumPhases)),
			}
			for i := range s.Phase {
				if s.Phase[i].Count() == 0 {
					continue
				}
				cell.Phase[obs.Phase(i).String()] = histJSON(s.Phase[i])
			}
			out = append(out, cell)
		}
	}
	return out
}

// SlowTxnJSON is one retained slow transaction on the wire.
type SlowTxnJSON struct {
	Txn     uint64           `json:"txn"`
	Path    string           `json:"path"`
	Outcome string           `json:"outcome"`
	StartNs int64            `json:"start_ns"`
	TotalNs int64            `json:"total_ns"`
	Phase   map[string]int64 `json:"phase_ns"`
	Trace   []TraceEventJSON `json:"trace,omitempty"`
}

// TraceEventJSON is one tracer event on the wire (shared by /trace,
// /slow and incident bundles).
type TraceEventJSON struct {
	TSNs int64  `json:"ts_ns"`
	Txn  uint64 `json:"txn"`
	Kind string `json:"kind"`
	Arg  uint64 `json:"arg"`
	Arg2 uint64 `json:"arg2"`
}

func traceEventsJSON(events []obs.Event) []TraceEventJSON {
	out := make([]TraceEventJSON, 0, len(events))
	for _, ev := range events {
		out = append(out, TraceEventJSON{
			TSNs: ev.TS, Txn: ev.Txn, Kind: ev.Kind.String(),
			Arg: ev.Arg, Arg2: ev.Arg2,
		})
	}
	return out
}

func slowTxnsJSON(entries []obs.SlowTxn) []SlowTxnJSON {
	out := make([]SlowTxnJSON, 0, len(entries))
	for i := range entries {
		e := &entries[i]
		j := SlowTxnJSON{
			Txn: e.Txn, Path: e.Path.String(), Outcome: e.Outcome.String(),
			StartNs: e.Start, TotalNs: e.Total,
			Phase: make(map[string]int64, int(obs.NumPhases)),
		}
		for p := range e.Phase {
			if e.Phase[p] != 0 {
				j.Phase[obs.Phase(p).String()] = e.Phase[p]
			}
		}
		if len(e.Trace) > 0 {
			j.Trace = traceEventsJSON(e.Trace)
		}
		out = append(out, j)
	}
	return out
}

// SlowJSON is the /slow response body.
type SlowJSON struct {
	Admitted uint64        `json:"admitted"`
	Rotated  uint64        `json:"rotated"`
	WindowNs int64         `json:"window_ns"`
	Entries  []SlowTxnJSON `json:"entries"`
}

func slowJSON() SlowJSON {
	s := obs.SlowTxns.Snapshot()
	return SlowJSON{
		Admitted: s.Admitted, Rotated: s.Rotated, WindowNs: s.WindowNs,
		Entries: slowTxnsJSON(s.Entries),
	}
}

// The subsystem Stats structs carry doc comments, not JSON tags;
// mirror them here so the wire names are stable snake_case regardless
// of how the internal structs evolve.
type lockStatsJSON struct {
	Acquires      uint64 `json:"acquires"`
	TableOps      uint64 `json:"table_ops"`
	Inherited     uint64 `json:"inherited"`
	Waits         uint64 `json:"waits"`
	Deadlocks     uint64 `json:"deadlocks"`
	Timeouts      uint64 `json:"timeouts"`
	Upgrades      uint64 `json:"upgrades"`
	ReleaseAll    uint64 `json:"release_all"`
	Escalations   uint64 `json:"escalations"`
	EscalatedAcqs uint64 `json:"escalated_acquires"`
	HeadAllocs    uint64 `json:"head_allocs"`
	HeadRecycles  uint64 `json:"head_recycles"`
	HeadRetires   uint64 `json:"head_retires"`
	HeatEvictions uint64 `json:"heat_evictions"`
	Bypasses      uint64 `json:"bypasses"`
}

// mvccStatsJSON mirrors core.MvccStats (version chains and the
// snapshot-read path).
type mvccStatsJSON struct {
	SnapshotBegins      uint64 `json:"snapshot_begins"`
	SnapshotReads       uint64 `json:"snapshot_reads"`
	ChainReads          uint64 `json:"chain_reads"`
	Installs            uint64 `json:"installs"`
	GCNodes             uint64 `json:"gc_nodes"`
	GCSweeps            uint64 `json:"gc_sweeps"`
	LiveNodes           int64  `json:"live_nodes"`
	SnapshotFloor       uint64 `json:"snapshot_floor"`
	ActiveSnapshots     int    `json:"active_snapshots"`
	OldestSnapshotAgeNs int64  `json:"oldest_snapshot_age_ns"`

	// Snapshot-isolation writer path.
	SIBegins         uint64 `json:"si_begins"`
	SICommits        uint64 `json:"si_commits"`
	SIConflictAborts uint64 `json:"si_conflict_aborts"`
	SnapshotsExpired uint64 `json:"snapshots_expired"`
}

type logStatsJSON struct {
	Inserts       uint64 `json:"inserts"`
	InsertedBytes uint64 `json:"inserted_bytes"`
	Flushes       uint64 `json:"flushes"`
	FlushedBytes  uint64 `json:"flushed_bytes"`
	MutexAcquires uint64 `json:"mutex_acquires"`
	GroupInserts  uint64 `json:"group_inserts"`
	FlushWrites   uint64 `json:"flush_writes"`
	FlushSyncs    uint64 `json:"flush_syncs"`
	// Device-side submission counters (zero when the device does not
	// report stats): the per-flush syscall budget the batched flush
	// path is judged on.
	DevWrites       uint64 `json:"dev_writes"`
	DevVecWrites    uint64 `json:"dev_vec_writes"`
	DevSyncs        uint64 `json:"dev_syncs"`
	DevSegSyncs     uint64 `json:"dev_seg_syncs"`
	DevSegSyncSkips uint64 `json:"dev_seg_sync_skips"`
}

type bufStatsJSON struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Writebacks uint64 `json:"writebacks"`
}

// doraStatsJSON aggregates every live DORA engine in the process (the
// executors belong to the DORA layer above the core engine, so they
// register in a process-global registry rather than hanging off e).
type doraStatsJSON struct {
	ActionsExecuted   uint64   `json:"actions_executed"`
	RendezvousCrossed uint64   `json:"rendezvous_crossed"`
	LocalWaits        uint64   `json:"local_waits"`
	Timeouts          uint64   `json:"timeouts"`
	SinglePartition   uint64   `json:"single_partition_txns"`
	CrossPartition    uint64   `json:"cross_partition_txns"`
	Batches           uint64   `json:"batches"`
	BatchedJobs       uint64   `json:"batched_jobs"`
	QueueDepths       []int    `json:"queue_depths"`
	Service           HistJSON `json:"action_service"`
	Wait              HistJSON `json:"action_wait"`
}

// Snapshot collects one consistent-enough view of the engine's
// observability state. Counters are striped atomics, so the view is
// racy across counters but each value is a real point-in-time sum.
// fr may be nil (no flight recorder running).
func Snapshot(e *core.Engine, fr *FlightRecorder) StatsJSON {
	st := e.StatsSnapshot()
	tiers := obs.LatchSnapshot()
	out := StatsJSON{
		UptimeSec: time.Duration(obs.Now()).Seconds(),
		Commits:   st.Commits,
		Aborts:    st.Aborts,
		Lock: lockStatsJSON{
			Acquires: st.Lock.Acquires, TableOps: st.Lock.TableOps,
			Inherited: st.Lock.Inherited, Waits: st.Lock.Waits,
			Deadlocks: st.Lock.Deadlocks, Timeouts: st.Lock.Timeouts,
			Upgrades: st.Lock.Upgrades, ReleaseAll: st.Lock.ReleaseAll,
			Escalations: st.Lock.Escalations, EscalatedAcqs: st.Lock.EscalatedAcqs,
			HeadAllocs: st.Lock.HeadAllocs, HeadRecycles: st.Lock.HeadRecycles,
			HeadRetires: st.Lock.HeadRetires, HeatEvictions: st.Lock.HeatEvictions,
			Bypasses: st.Lock.Bypasses,
		},
		LockWait: histJSON(e.Locks().WaitHist()),
		Log: logStatsJSON{
			Inserts: st.Log.Inserts, InsertedBytes: st.Log.InsertedBytes,
			Flushes: st.Log.Flushes, FlushedBytes: st.Log.FlushedBytes,
			MutexAcquires: st.Log.MutexAcquires, GroupInserts: st.Log.GroupInserts,
			FlushWrites: st.Log.FlushWrites, FlushSyncs: st.Log.FlushSyncs,
			DevWrites: st.Log.Dev.Writes, DevVecWrites: st.Log.Dev.VecWrites,
			DevSyncs: st.Log.Dev.Syncs, DevSegSyncs: st.Log.Dev.SegSyncs,
			DevSegSyncSkips: st.Log.Dev.SegSyncSkips,
		},
		Buffer: bufStatsJSON{
			Hits: st.Buffer.Hits, Misses: st.Buffer.Misses,
			Evictions: st.Buffer.Evictions, Writebacks: st.Buffer.Writebacks,
		},
		Mvcc: mvccStatsJSON{
			SnapshotBegins: st.Mvcc.SnapshotBegins, SnapshotReads: st.Mvcc.SnapshotReads,
			ChainReads: st.Mvcc.ChainReads, Installs: st.Mvcc.Installs,
			GCNodes: st.Mvcc.GCNodes, GCSweeps: st.Mvcc.GCSweeps,
			LiveNodes: st.Mvcc.LiveNodes, SnapshotFloor: st.Mvcc.SnapshotFloor,
			ActiveSnapshots:     st.Mvcc.ActiveSnapshots,
			OldestSnapshotAgeNs: st.Mvcc.OldestSnapshotAgeNs,
			SIBegins:            st.Mvcc.SIBegins,
			SICommits:           st.Mvcc.SICommits,
			SIConflictAborts:    st.Mvcc.SIConflictAborts,
			SnapshotsExpired:    st.Mvcc.SnapshotsExpired,
		},
		Latches:      make([]TierJSON, 0, len(tiers)),
		Phases:       phaseCells(),
		Slow:         slowJSON(),
		TraceEnabled: obs.Trace.Enabled(),
		TraceEvents:  obs.Trace.Len(),
	}
	if fr != nil {
		out.Incidents = len(fr.Snapshot())
	}
	ds := dora.GlobalStats()
	out.Dora = doraStatsJSON{
		ActionsExecuted: ds.ActionsExecuted, RendezvousCrossed: ds.RendezvousCrossed,
		LocalWaits: ds.LocalWaits, Timeouts: ds.Timeouts,
		SinglePartition: ds.SinglePartition, CrossPartition: ds.CrossPartition,
		Batches: ds.Batches, BatchedJobs: ds.BatchedJobs,
		QueueDepths: ds.QueueDepths,
		Service:     histJSON(ds.Service), Wait: histJSON(ds.Wait),
	}
	for _, t := range tiers {
		out.Latches = append(out.Latches, TierJSON{
			Tier: t.Tier, Ops: t.Ops, Acquire: histJSON(t.Acquire),
		})
	}
	return out
}

// writePromCounter emits one counter in Prometheus text form.
func writePromCounter(w io.Writer, name string, v uint64) {
	fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
}

// writePromHist emits one histogram in Prometheus text form. Bucket
// edges are the power-of-two nanosecond upper bounds converted to
// seconds; empty buckets are elided (cumulative counts stay monotone)
// and +Inf closes the series per the exposition format.
func writePromHist(w io.Writer, name, labels string, h *hist.H) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum uint64
	for i := 0; i < hist.NumBuckets-1; i++ {
		c := h.Bucket(i)
		if c == 0 {
			continue
		}
		cum += c
		le := strconv.FormatFloat(hist.BucketUpper(i).Seconds(), 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%s\"} %d\n", name, labels, sep, le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count())
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.Sum().Seconds(), name, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n",
			name, labels, h.Sum().Seconds(), name, labels, h.Count())
	}
}

// writeMetrics renders the whole exposition. Factored out of the
// handler so tests can render to a buffer. fr may be nil.
func writeMetrics(w io.Writer, e *core.Engine, fr *FlightRecorder) {
	st := e.StatsSnapshot()
	writePromCounter(w, "hydra_commits_total", st.Commits)
	writePromCounter(w, "hydra_aborts_total", st.Aborts)

	writePromCounter(w, "hydra_lock_acquires_total", st.Lock.Acquires)
	writePromCounter(w, "hydra_lock_table_ops_total", st.Lock.TableOps)
	writePromCounter(w, "hydra_lock_inherited_total", st.Lock.Inherited)
	writePromCounter(w, "hydra_lock_waits_total", st.Lock.Waits)
	writePromCounter(w, "hydra_lock_deadlocks_total", st.Lock.Deadlocks)
	writePromCounter(w, "hydra_lock_timeouts_total", st.Lock.Timeouts)
	writePromCounter(w, "hydra_lock_upgrades_total", st.Lock.Upgrades)
	writePromCounter(w, "hydra_lock_escalations_total", st.Lock.Escalations)
	writePromCounter(w, "hydra_lock_head_allocs_total", st.Lock.HeadAllocs)
	writePromCounter(w, "hydra_lock_head_recycles_total", st.Lock.HeadRecycles)
	writePromCounter(w, "hydra_lock_head_retires_total", st.Lock.HeadRetires)
	writePromCounter(w, "hydra_lock_heat_evictions_total", st.Lock.HeatEvictions)
	writePromCounter(w, "hydra_lock_bypasses_total", st.Lock.Bypasses)

	// MVCC snapshot-read path: hydra_lock_bypasses_total above climbs
	// with hydra_mvcc_snapshot_reads_total while hydra_lock_acquires
	// stays flat — the "zero lock traffic" signature.
	writePromCounter(w, "hydra_mvcc_snapshot_begins_total", st.Mvcc.SnapshotBegins)
	writePromCounter(w, "hydra_mvcc_snapshot_reads_total", st.Mvcc.SnapshotReads)
	writePromCounter(w, "hydra_mvcc_chain_reads_total", st.Mvcc.ChainReads)
	writePromCounter(w, "hydra_mvcc_installs_total", st.Mvcc.Installs)
	writePromCounter(w, "hydra_mvcc_gc_nodes_total", st.Mvcc.GCNodes)
	writePromCounter(w, "hydra_mvcc_gc_sweeps_total", st.Mvcc.GCSweeps)
	// SI writer path: si_commits / (si_commits + si_conflict_aborts)
	// is the first-committer-wins win rate; snapshots_expired counts
	// pins the MaxSnapshotAge remedy cut loose.
	writePromCounter(w, "hydra_mvcc_si_begins_total", st.Mvcc.SIBegins)
	writePromCounter(w, "hydra_mvcc_si_commits_total", st.Mvcc.SICommits)
	writePromCounter(w, "hydra_mvcc_si_conflict_aborts_total", st.Mvcc.SIConflictAborts)
	writePromCounter(w, "hydra_mvcc_snapshots_expired_total", st.Mvcc.SnapshotsExpired)
	fmt.Fprintf(w, "# TYPE hydra_mvcc_live_nodes gauge\nhydra_mvcc_live_nodes %d\n", st.Mvcc.LiveNodes)
	fmt.Fprintf(w, "# TYPE hydra_mvcc_active_snapshots gauge\nhydra_mvcc_active_snapshots %d\n", st.Mvcc.ActiveSnapshots)
	fmt.Fprintf(w, "# TYPE hydra_mvcc_oldest_snapshot_age_seconds gauge\nhydra_mvcc_oldest_snapshot_age_seconds %g\n",
		time.Duration(st.Mvcc.OldestSnapshotAgeNs).Seconds())

	writePromCounter(w, "hydra_log_inserts_total", st.Log.Inserts)
	writePromCounter(w, "hydra_log_inserted_bytes_total", st.Log.InsertedBytes)
	writePromCounter(w, "hydra_log_flushes_total", st.Log.Flushes)
	writePromCounter(w, "hydra_log_flushed_bytes_total", st.Log.FlushedBytes)
	writePromCounter(w, "hydra_log_mutex_acquires_total", st.Log.MutexAcquires)
	writePromCounter(w, "hydra_log_group_inserts_total", st.Log.GroupInserts)
	writePromCounter(w, "hydra_log_flush_writes_total", st.Log.FlushWrites)
	writePromCounter(w, "hydra_log_flush_syncs_total", st.Log.FlushSyncs)
	writePromCounter(w, "hydra_wal_dev_writes_total", st.Log.Dev.Writes)
	writePromCounter(w, "hydra_wal_dev_vec_writes_total", st.Log.Dev.VecWrites)
	writePromCounter(w, "hydra_wal_dev_syncs_total", st.Log.Dev.Syncs)
	writePromCounter(w, "hydra_wal_dev_seg_syncs_total", st.Log.Dev.SegSyncs)
	writePromCounter(w, "hydra_wal_dev_seg_sync_skips_total", st.Log.Dev.SegSyncSkips)

	writePromCounter(w, "hydra_buffer_hits_total", st.Buffer.Hits)
	writePromCounter(w, "hydra_buffer_misses_total", st.Buffer.Misses)
	writePromCounter(w, "hydra_buffer_evictions_total", st.Buffer.Evictions)
	writePromCounter(w, "hydra_buffer_writebacks_total", st.Buffer.Writebacks)

	ds := dora.GlobalStats()
	writePromCounter(w, "hydra_dora_actions_total", ds.ActionsExecuted)
	writePromCounter(w, "hydra_dora_rendezvous_total", ds.RendezvousCrossed)
	writePromCounter(w, "hydra_dora_local_waits_total", ds.LocalWaits)
	writePromCounter(w, "hydra_dora_timeouts_total", ds.Timeouts)
	writePromCounter(w, "hydra_dora_batches_total", ds.Batches)
	writePromCounter(w, "hydra_dora_batched_jobs_total", ds.BatchedJobs)
	fmt.Fprintf(w, "# TYPE hydra_dora_txns_total counter\n")
	fmt.Fprintf(w, "hydra_dora_txns_total{path=\"single\"} %d\n", ds.SinglePartition)
	fmt.Fprintf(w, "hydra_dora_txns_total{path=\"cross\"} %d\n", ds.CrossPartition)
	fmt.Fprintf(w, "# TYPE hydra_dora_queue_depth gauge\n")
	for i, depth := range ds.QueueDepths {
		fmt.Fprintf(w, "hydra_dora_queue_depth{executor=\"%d\"} %d\n", i, depth)
	}
	writePromHist(w, "hydra_dora_action_service_seconds", "", &ds.Service)
	writePromHist(w, "hydra_dora_action_wait_seconds", "", &ds.Wait)

	lw := e.Locks().WaitHist()
	writePromHist(w, "hydra_lock_wait_seconds", "", &lw)

	tiers := obs.LatchSnapshot()
	// One TYPE line then every tier's series, as the format requires
	// grouped families.
	fmt.Fprintf(w, "# TYPE hydra_latch_acquires_total counter\n")
	for _, t := range tiers {
		fmt.Fprintf(w, "hydra_latch_acquires_total{tier=%q} %d\n", t.Tier, t.Ops)
	}
	for i, t := range tiers {
		name := "hydra_latch_acquire_seconds"
		if i > 0 {
			// writePromHist emits a TYPE line; only the first may.
			var b strings.Builder
			writePromHist(&b, name, fmt.Sprintf("tier=%q", t.Tier), &tiers[i].Acquire)
			io.WriteString(w, strings.TrimPrefix(b.String(), "# TYPE "+name+" histogram\n"))
			continue
		}
		writePromHist(w, name, fmt.Sprintf("tier=%q", t.Tier), &tiers[i].Acquire)
	}

	// Transaction critical-path accounting: total wall time and the
	// per-phase distributions, labelled by execution path and outcome.
	// Families always emit a TYPE line; cells appear once they have
	// observations (the exposition stays bounded: at most
	// paths × outcomes × (1 + phases) series).
	writePhaseFamily(w, "hydra_txn_total_seconds", func(s *obs.PhaseSnapshot, emit func(labels string, h *hist.H)) {
		emit("", &s.Total)
	})
	writePhaseFamily(w, "hydra_txn_phase_seconds", func(s *obs.PhaseSnapshot, emit func(labels string, h *hist.H)) {
		for i := range s.Phase {
			if s.Phase[i].Count() == 0 {
				continue
			}
			emit(fmt.Sprintf("phase=%q,", obs.Phase(i).String()), &s.Phase[i])
		}
	})

	writePromCounter(w, "hydra_slow_admitted_total", obs.SlowTxns.Admitted())
	writePromCounter(w, "hydra_slow_rotations_total", obs.SlowTxns.Rotations())

	fmt.Fprintf(w, "# TYPE hydra_incidents_total counter\n")
	for k := StallKind(0); k < numStallKinds; k++ {
		var v uint64
		if fr != nil {
			v = fr.Count(k)
		}
		fmt.Fprintf(w, "hydra_incidents_total{kind=%q} %d\n", k.String(), v)
	}

	fmt.Fprintf(w, "# TYPE hydra_trace_events gauge\nhydra_trace_events %d\n", obs.Trace.Len())
}

// writePhaseFamily renders one histogram family over the non-empty
// (path, outcome) cells of the phase profile. fill receives each cell
// and an emit callback that prefixes the family's extra labels.
func writePhaseFamily(w io.Writer, name string, fill func(s *obs.PhaseSnapshot, emit func(labels string, h *hist.H))) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for p := obs.TxnPath(0); p < obs.NumPaths; p++ {
		for oc := obs.TxnOutcome(0); oc < obs.NumOutcomes; oc++ {
			s := obs.TxnPhases.Snapshot(p, oc)
			if s.Count == 0 {
				continue
			}
			fill(&s, func(labels string, h *hist.H) {
				full := fmt.Sprintf("%spath=%q,outcome=%q", labels, p.String(), oc.String())
				// writePromHist emits its own TYPE line; the family
				// already has one above, so strip every repeat.
				var b strings.Builder
				writePromHist(&b, name, full, h)
				io.WriteString(w, strings.TrimPrefix(b.String(), "# TYPE "+name+" histogram\n"))
			})
		}
	}
}

// traceMaxDefault caps a /trace response when the caller does not pass
// an explicit ?max=: the retained ring can hold far more events than a
// dashboard wants in one response body.
const traceMaxDefault = 4096

// NewMetricsMux returns the observability mux: /metrics, /stats,
// /trace, /slow, /incidents. Mount it on any listener; it holds only
// references to e and fr. fr may be nil — /incidents then serves an
// empty list and the incident counters read zero.
func NewMetricsMux(e *core.Engine, fr *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, e, fr)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Snapshot(e, fr))
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if v := q.Get("enable"); v != "" {
			on := v == "on" || v == "true" || v == "1"
			obs.Trace.SetEnabled(on)
		}
		var txn uint64
		if v := q.Get("txn"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad txn: "+err.Error(), http.StatusBadRequest)
				return
			}
			txn = n
		}
		max := traceMaxDefault
		if v := q.Get("max"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad max", http.StatusBadRequest)
				return
			}
			max = n
		}
		events := obs.Trace.DumpFiltered(txn, max)
		out := struct {
			Enabled bool             `json:"enabled"`
			Txn     uint64           `json:"txn,omitempty"`
			Capped  bool             `json:"capped"`
			Events  []TraceEventJSON `json:"events"`
		}{
			Enabled: obs.Trace.Enabled(),
			Txn:     txn,
			Capped:  max > 0 && len(events) == max,
			Events:  traceEventsJSON(events),
		}
		sort.SliceStable(out.Events, func(a, b int) bool { return out.Events[a].TSNs < out.Events[b].TSNs })
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(slowJSON())
	})
	mux.HandleFunc("/incidents", func(w http.ResponseWriter, r *http.Request) {
		incidents := []Incident{}
		if fr != nil {
			incidents = fr.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Incidents []Incident `json:"incidents"`
		}{incidents})
	})
	return mux
}

// ServeMetrics listens on addr and serves the observability mux until
// the listener fails, with a stall flight recorder running alongside.
// It is a convenience for cmd/hydra-server; tests use httptest.Server
// around NewMetricsMux.
func ServeMetrics(addr string, e *core.Engine) error {
	fr := NewFlightRecorder(e, FlightOptions{})
	fr.Start()
	defer fr.Stop()
	srv := &http.Server{Addr: addr, Handler: NewMetricsMux(e, fr), ReadHeaderTimeout: 5 * time.Second}
	return srv.ListenAndServe()
}
