package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/buffer"
	"hydra/internal/core"
	"hydra/internal/wal"
)

// gateDevice wraps a MemDevice with a switchable stall: while gated,
// WriteAt blocks until released. It simulates a log device that stops
// completing IO — the flusher wedges, the durable LSN stops advancing,
// and every SyncCommit transaction parks in WaitFlushed.
type gateDevice struct {
	*wal.MemDevice
	gated   atomic.Bool
	release chan struct{}
}

func newGateDevice() *gateDevice {
	return &gateDevice{MemDevice: wal.NewMem(), release: make(chan struct{})}
}

func (d *gateDevice) WriteAt(b []byte, off int64) (int, error) {
	if d.gated.Load() {
		<-d.release
	}
	return d.MemDevice.WriteAt(b, off)
}

// WriteVec gates the vectored flush path too — the flusher prefers it
// when the device supports batched submission.
func (d *gateDevice) WriteVec(offs []int64, bufs [][]byte) (int, error) {
	if d.gated.Load() {
		<-d.release
	}
	return d.MemDevice.WriteVec(offs, bufs)
}

// TestFlightRecorderWALStall wedges the log device under a committing
// transaction and asserts the watchdog captures a wal_stall incident
// with the commit-pipeline evidence in the bundle.
func TestFlightRecorderWALStall(t *testing.T) {
	dev := newGateDevice()
	cfg := core.Scalable()
	e, err := core.OpenWith(cfg, buffer.NewMemStore(), dev)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("stall")
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: one committed transaction proves the pipeline works.
	if err := e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, 1, []byte("v")) }); err != nil {
		t.Fatal(err)
	}

	fr := NewFlightRecorder(e, FlightOptions{
		Poll:     2 * time.Millisecond,
		Confirm:  3,
		Cooldown: time.Minute,
	})
	fr.Start()

	// Gate the device, then commit in the background: the commit
	// record's flush never completes, so the committer parks.
	dev.gated.Store(true)
	done := make(chan error, 1)
	go func() {
		done <- e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, 2, []byte("w")) })
	}()

	deadline := time.After(5 * time.Second)
	for fr.Count(StallWAL) == 0 {
		select {
		case <-deadline:
			t.Fatal("no wal_stall incident within deadline")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Release the device; the stalled commit must now complete.
	dev.gated.Store(false)
	close(dev.release)
	if err := <-done; err != nil {
		t.Fatalf("stalled commit failed after release: %v", err)
	}
	fr.Stop()

	incs := fr.Snapshot()
	if len(incs) == 0 {
		t.Fatal("no incidents retained")
	}
	inc := incs[0]
	if inc.Kind != "wal_stall" {
		t.Fatalf("incident kind = %q, want wal_stall", inc.Kind)
	}
	if inc.CommitWaiters == 0 {
		t.Error("bundle did not capture the parked commit waiter")
	}
	if inc.Detail == "" || !strings.Contains(inc.Detail, "durable LSN stuck") {
		t.Errorf("unexpected detail %q", inc.Detail)
	}
	if inc.Seq == 0 {
		t.Error("incident missing sequence number")
	}

	// The cooldown must have suppressed repeats: a multi-second stall
	// at a 2ms poll would otherwise record hundreds.
	if got := fr.Count(StallWAL); got != 1 {
		t.Errorf("wal_stall count = %d, want 1 (cooldown)", got)
	}

	// /incidents serves the same bundle.
	mux := NewMetricsMux(e, fr)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	var out struct {
		Incidents []Incident `json:"incidents"`
	}
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/incidents")), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Incidents) == 0 || out.Incidents[0].Kind != "wal_stall" {
		t.Errorf("/incidents = %+v", out.Incidents)
	}

	// And /metrics counts it.
	body := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, `hydra_incidents_total{kind="wal_stall"} 1`) {
		t.Error("/metrics missing incremented wal_stall counter")
	}

	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFlightRecorderLockWaiter parks one transaction behind another's
// row lock past a tiny horizon and asserts the lock_waiter_stuck
// incident fires with the waits-for evidence.
func TestFlightRecorderLockWaiter(t *testing.T) {
	cfg := core.Scalable()
	cfg.LockTimeout = 5 * time.Second // longer than the detection horizon
	e, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl, err := e.CreateTable("lw")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, 1, []byte("v")) }); err != nil {
		t.Fatal(err)
	}

	fr := NewFlightRecorder(e, FlightOptions{
		Poll:              2 * time.Millisecond,
		Confirm:           3,
		Cooldown:          time.Minute,
		LockWaiterHorizon: 20 * time.Millisecond,
	})
	fr.Start()
	defer fr.Stop()

	holder := e.Begin()
	if _, err := holder.ReadForUpdate(tbl, 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		waiter := e.Begin()
		if _, err := waiter.ReadForUpdate(tbl, 1); err == nil {
			waiter.Commit()
		} else {
			waiter.Abort()
		}
	}()

	deadline := time.After(5 * time.Second)
	for fr.Count(StallLockWaiter) == 0 {
		select {
		case <-deadline:
			t.Fatal("no lock_waiter_stuck incident within deadline")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	<-done

	incs := fr.Snapshot()
	found := false
	for _, inc := range incs {
		if inc.Kind == "lock_waiter_stuck" {
			found = true
			if inc.OldestLockWaitNs <= 0 || inc.LockWaiters == 0 {
				t.Errorf("bundle missing waiter evidence: %+v", inc)
			}
		}
	}
	if !found {
		t.Error("lock_waiter_stuck incident not retained")
	}
}

// TestFlightRecorderMVCCGCStall pins a snapshot past the age horizon
// while writers keep growing the version chains and asserts the
// watchdog captures a mvcc_gc_stalled incident with the pin-age and
// live-node evidence.
func TestFlightRecorderMVCCGCStall(t *testing.T) {
	cfg := core.Scalable()
	cfg.MVCC = true
	e, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl, err := e.CreateTable("gc")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, 1, []byte("v")) }); err != nil {
		t.Fatal(err)
	}

	fr := NewFlightRecorder(e, FlightOptions{
		Poll:               2 * time.Millisecond,
		Confirm:            3,
		Cooldown:           time.Minute,
		SnapshotAgeHorizon: 10 * time.Millisecond,
	})
	fr.Start()
	defer fr.Stop()

	// The long snapshot: pinned and never released until the incident
	// fires. Writers keep the chains growing the whole time, so every
	// poll sees {old pin, growth} together.
	snap, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	stopWriters := make(chan struct{})
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		for i := 0; ; i++ {
			select {
			case <-stopWriters:
				return
			default:
			}
			e.Exec(func(tx *core.Txn) error { return tx.Update(tbl, 1, []byte{byte(i)}) })
		}
	}()

	deadline := time.After(5 * time.Second)
	for fr.Count(StallMVCCGC) == 0 {
		select {
		case <-deadline:
			t.Fatal("no mvcc_gc_stalled incident within deadline")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stopWriters)
	<-writersDone
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}

	found := false
	for _, inc := range fr.Snapshot() {
		if inc.Kind == "mvcc_gc_stalled" {
			found = true
			if inc.OldestSnapshotAgeNs <= 0 || inc.ActiveSnapshots == 0 || inc.MvccLiveNodes <= 0 {
				t.Errorf("bundle missing MVCC evidence: %+v", inc)
			}
			if !strings.Contains(inc.Detail, "pins GC watermark") {
				t.Errorf("unexpected detail %q", inc.Detail)
			}
		}
	}
	if !found {
		t.Error("mvcc_gc_stalled incident not retained")
	}
}
