package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dora"
	"hydra/internal/obs"
)

func startMetrics(t *testing.T) (*core.Engine, *httptest.Server) {
	t.Helper()
	e, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFlightRecorder(e, FlightOptions{})
	fr.Start()
	ts := httptest.NewServer(NewMetricsMux(e, fr))
	t.Cleanup(func() {
		ts.Close()
		fr.Stop()
		e.Close()
	})
	return e, ts
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// checkExposition validates the Prometheus text format line by line:
// every non-comment line must be `name[{labels}] value` with a
// parseable value, histogram buckets must be cumulative, and every
// family must carry a TYPE line.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	lastBucket := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			base = name[:i]
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("unterminated labels in %q", line)
			}
		}
		family := base
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(base, suf) && typed[strings.TrimSuffix(base, suf)] {
				family = strings.TrimSuffix(base, suf)
			}
		}
		if !typed[family] {
			t.Fatalf("sample %q has no TYPE line (family %q)", line, family)
		}
		if strings.HasSuffix(base, "_bucket") {
			// Cumulative within one labeled series: key by full name
			// minus the le label.
			series := name[:strings.Index(name, "le=")]
			v, _ := strconv.ParseUint(val, 10, 64)
			if v < lastBucket[series] {
				t.Fatalf("non-cumulative bucket in %q", line)
			}
			lastBucket[series] = v
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	e, ts := startMetrics(t)

	// Generate traffic so counters and per-tier histograms are live.
	tbl, err := e.CreateTable("m")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		if err := e.Exec(func(tx *core.Txn) error {
			return tx.Insert(tbl, i, []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}

	body := get(t, ts.URL+"/metrics")
	checkExposition(t, body)
	for _, want := range []string{
		"hydra_commits_total",
		"hydra_log_inserts_total",
		"hydra_buffer_hits_total",
		"hydra_lock_head_allocs_total",
		"hydra_lock_head_recycles_total",
		"hydra_lock_head_retires_total",
		"hydra_lock_heat_evictions_total",
		"hydra_latch_acquires_total{tier=",
		"hydra_latch_acquire_seconds_bucket{tier=",
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPhaseMetricsExposition drives committed traffic and asserts the
// transaction critical-path accounting families — phase histograms,
// the slow-transaction reservoir, and the incident counters — appear
// in the Prometheus exposition. CI's bench-smoke target runs this to
// guard the observability contract.
func TestPhaseMetricsExposition(t *testing.T) {
	e, ts := startMetrics(t)
	tbl, err := e.CreateTable("ph")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := e.Exec(func(tx *core.Txn) error {
			return tx.Insert(tbl, i, []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}

	body := get(t, ts.URL+"/metrics")
	checkExposition(t, body)
	for _, want := range []string{
		`hydra_txn_total_seconds_bucket{path="conv",outcome="commit"`,
		`hydra_txn_total_seconds_count{path="conv",outcome="commit"}`,
		`hydra_txn_phase_seconds_bucket{phase="flush_wait",path="conv",outcome="commit"`,
		"hydra_slow_admitted_total",
		"hydra_slow_rotations_total",
		`hydra_incidents_total{kind="wal_stall"}`,
		`hydra_incidents_total{kind="dora_queue_pinned"}`,
		`hydra_incidents_total{kind="lock_waiter_stuck"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The same accounting shows on /stats for hydra-top.
	var st StatsJSON
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/stats")), &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Phases) == 0 {
		t.Fatal("/stats has no phase cells after committed traffic")
	}
}

// TestDoraMetricsExposition drives live single- and cross-partition
// DORA load and asserts the hydra_dora_* families show it on both
// /metrics and /stats.
func TestDoraMetricsExposition(t *testing.T) {
	e, ts := startMetrics(t)
	tbl, err := e.CreateTable("d")
	if err != nil {
		t.Fatal(err)
	}
	d := dora.New(e, dora.Options{Executors: 4})
	defer d.Close()
	for i := uint64(0); i < 64; i++ {
		i := i
		if err := d.ExecSingle(dora.Action{Table: tbl, Key: i, Fn: func(tx *core.Txn) error {
			return tx.Insert(tbl, i, []byte("v"))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	// One guaranteed cross-partition transaction: two keys on
	// different executors.
	k1 := uint64(1)
	k2 := uint64(2)
	for ; d.Route(tbl, k2) == d.Route(tbl, k1); k2++ {
	}
	if err := d.Exec([]dora.Phase{{
		{Table: tbl, Key: k1, Fn: func(tx *core.Txn) error { _, err := tx.Read(tbl, k1); return err }},
		{Table: tbl, Key: k2, Fn: func(tx *core.Txn) error { _, err := tx.Read(tbl, k2); return err }},
	}}); err != nil {
		t.Fatal(err)
	}

	body := get(t, ts.URL+"/metrics")
	checkExposition(t, body)
	for _, want := range []string{
		"hydra_dora_actions_total",
		"hydra_dora_rendezvous_total",
		"hydra_dora_local_waits_total",
		"hydra_dora_timeouts_total",
		"hydra_dora_batches_total",
		"hydra_dora_batched_jobs_total",
		`hydra_dora_txns_total{path="single"}`,
		`hydra_dora_txns_total{path="cross"}`,
		`hydra_dora_queue_depth{executor="0"}`,
		"hydra_dora_action_service_seconds_bucket",
		"hydra_dora_action_wait_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var st StatsJSON
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/stats")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Dora.ActionsExecuted < 66 {
		t.Errorf("dora actions = %d, want >= 66", st.Dora.ActionsExecuted)
	}
	if st.Dora.SinglePartition != 64 || st.Dora.CrossPartition != 1 {
		t.Errorf("dora txns: single=%d cross=%d", st.Dora.SinglePartition, st.Dora.CrossPartition)
	}
	if len(st.Dora.QueueDepths) != 4 {
		t.Errorf("queue depths = %v", st.Dora.QueueDepths)
	}
	if st.Dora.Service.Count == 0 {
		t.Error("dora service histogram empty")
	}
}

func TestStatsJSONEndpoint(t *testing.T) {
	e, ts := startMetrics(t)
	tbl, err := e.CreateTable("s")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, 1, []byte("v")) }); err != nil {
		t.Fatal(err)
	}

	var st StatsJSON
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/stats")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Commits == 0 {
		t.Error("commits not reported")
	}
	if st.Log.Inserts == 0 {
		t.Error("log inserts not reported")
	}
	// The committed insert took and released row/table locks, so the
	// lock-head lifecycle counters must be live on the wire.
	if st.Lock.HeadAllocs == 0 {
		t.Error("lock head allocs not reported")
	}
	if st.Lock.HeadRetires == 0 {
		t.Error("lock head retires not reported")
	}
	if len(st.Latches) == 0 {
		t.Error("no latch tiers reported")
	}
	for _, tier := range st.Latches {
		if tier.Ops == 0 {
			t.Errorf("tier %q reported with zero ops", tier.Tier)
		}
	}
}

func TestTraceEndpointToggle(t *testing.T) {
	e, ts := startMetrics(t)
	defer obs.Trace.SetEnabled(false)

	get(t, ts.URL+"/trace?enable=on")
	if !obs.Trace.Enabled() {
		t.Fatal("enable=on did not enable the tracer")
	}
	tbl, err := e.CreateTable("tr")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, 1, []byte("v")) }); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Enabled bool `json:"enabled"`
		Events  []struct {
			Kind string `json:"kind"`
			Txn  uint64 `json:"txn"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/trace?enable=off")), &out); err != nil {
		t.Fatal(err)
	}
	if out.Enabled {
		t.Fatal("enable=off did not disable the tracer")
	}
	kinds := map[string]bool{}
	for _, ev := range out.Events {
		kinds[ev.Kind] = true
	}
	for _, want := range []string{"begin", "log-append", "commit"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events (got %v)", want, kinds)
		}
	}
}

// TestScrapeUnderLoad hammers /metrics and /stats while a write/abort
// workload runs — the concurrency contract of the whole surface. Run
// with -race this is the PR's required scrape-safety proof.
func TestScrapeUnderLoad(t *testing.T) {
	e, ts := startMetrics(t)
	obs.Trace.SetEnabled(true)
	defer obs.Trace.SetEnabled(false)

	tbl, err := e.CreateTable("load")
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers  = 4
		scrapers = 4
		txns     = 150
		scrapes  = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				key := id*txns + uint64(i)
				if i%5 == 4 {
					tx := e.Begin()
					_ = tx.Insert(tbl, key, []byte("doomed"))
					if err := tx.Abort(); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if err := e.Exec(func(tx *core.Txn) error {
					return tx.Insert(tbl, key, []byte(fmt.Sprintf("v%d", key)))
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(w))
	}
	for s := 0; s < scrapers; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < scrapes; i++ {
				switch (id + i) % 3 {
				case 0:
					checkExposition(t, get(t, ts.URL+"/metrics"))
				case 1:
					var st StatsJSON
					if err := json.Unmarshal([]byte(get(t, ts.URL+"/stats")), &st); err != nil {
						t.Error(err)
						return
					}
				case 2:
					get(t, ts.URL+"/trace")
				}
			}
		}(s)
	}
	wg.Wait()

	// After the dust settles the counters must reconcile exactly.
	var st StatsJSON
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/stats")), &st); err != nil {
		t.Fatal(err)
	}
	wantAborts := uint64(writers * txns / 5)
	if st.Aborts < wantAborts {
		t.Errorf("aborts = %d, want >= %d", st.Aborts, wantAborts)
	}
	if st.Commits < uint64(writers*txns)-wantAborts {
		t.Errorf("commits = %d, want >= %d", st.Commits, uint64(writers*txns)-wantAborts)
	}
}

func TestStatsFullProtocolCommand(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.CreateTable("f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("f", 1, "x"); err != nil {
		t.Fatal(err)
	}
	st, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if st.Commits == 0 {
		t.Error("STATS FULL reported zero commits")
	}
	if len(st.Latches) == 0 {
		t.Error("STATS FULL reported no latch tiers")
	}
}

// TestMVCCMetricsExposition drives snapshot-read traffic on an
// MVCC-enabled engine and asserts the hydra_mvcc_* families (and the
// lock bypass counter) appear in the exposition, with the zero-lock
// signature: snapshot reads climb while lock acquires stay flat.
// CI's bench-smoke target runs this to guard the observability
// contract.
func TestMVCCMetricsExposition(t *testing.T) {
	cfg := core.Scalable()
	cfg.MVCC = true
	e, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFlightRecorder(e, FlightOptions{})
	fr.Start()
	ts := httptest.NewServer(NewMetricsMux(e, fr))
	t.Cleanup(func() {
		ts.Close()
		fr.Stop()
		e.Close()
	})

	tbl, err := e.CreateTable("mv")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		if err := e.Exec(func(tx *core.Txn) error {
			return tx.Insert(tbl, i, []byte("v"))
		}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := e.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		if _, err := s.Read(tbl, i); err != nil {
			t.Fatal(err)
		}
	}
	// Hold the snapshot across an update so a chain read happens and
	// the active-snapshot gauge is non-zero at scrape time.
	if err := e.Exec(func(tx *core.Txn) error { return tx.Update(tbl, 1, []byte("w")) }); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Read(tbl, 1); err != nil || string(v) != "v" {
		t.Fatalf("chain read %q, %v", v, err)
	}
	// SI writer traffic: one commit and one deterministic
	// first-committer-wins abort, so both si counters are non-zero.
	if err := e.ExecSI(func(tx *core.Txn) error { return tx.Update(tbl, 2, []byte("si")) }); err != nil {
		t.Fatal(err)
	}
	loser, err := e.BeginSnapshotRW()
	if err != nil {
		t.Fatal(err)
	}
	if err := loser.Update(tbl, 3, []byte("l")); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *core.Txn) error { return tx.Update(tbl, 3, []byte("w")) }); err != nil {
		t.Fatal(err)
	}
	if err := loser.Commit(); !errors.Is(err, core.ErrWriteConflict) {
		t.Fatalf("loser commit: %v, want ErrWriteConflict", err)
	}

	body := get(t, ts.URL+"/metrics")
	checkExposition(t, body)
	for _, want := range []string{
		"hydra_mvcc_snapshot_begins_total",
		"hydra_mvcc_snapshot_reads_total",
		"hydra_mvcc_chain_reads_total",
		"hydra_mvcc_installs_total",
		"hydra_mvcc_gc_nodes_total",
		"hydra_mvcc_gc_sweeps_total",
		"hydra_mvcc_live_nodes",
		"hydra_mvcc_active_snapshots 1",
		"hydra_mvcc_oldest_snapshot_age_seconds",
		"hydra_mvcc_si_begins_total",
		"hydra_mvcc_si_commits_total 1",
		"hydra_mvcc_si_conflict_aborts_total 1",
		"hydra_mvcc_snapshots_expired_total",
		"hydra_lock_bypasses_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var st StatsJSON
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/stats")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Mvcc.SnapshotReads < 65 {
		t.Errorf("snapshot reads = %d, want >= 65", st.Mvcc.SnapshotReads)
	}
	if st.Mvcc.ChainReads == 0 {
		t.Error("no chain reads recorded")
	}
	if st.Mvcc.SnapshotBegins != 1 || st.Mvcc.ActiveSnapshots != 1 {
		t.Errorf("snapshot registry: begins=%d active=%d", st.Mvcc.SnapshotBegins, st.Mvcc.ActiveSnapshots)
	}
	if st.Lock.Bypasses < 65 {
		t.Errorf("lock bypasses = %d, want >= 65", st.Lock.Bypasses)
	}
	if st.Mvcc.SIBegins != 2 || st.Mvcc.SICommits != 1 || st.Mvcc.SIConflictAborts != 1 {
		t.Errorf("si counters: begins=%d commits=%d conflicts=%d",
			st.Mvcc.SIBegins, st.Mvcc.SICommits, st.Mvcc.SIConflictAborts)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}
