// Stall flight recorder: a watchdog goroutine that polls cheap engine
// gauges for sustained no-progress conditions and, when one confirms,
// captures a diagnostic bundle into a bounded ring. The bundles are
// served at /incidents and counted in /metrics, so a hung commit
// pipeline or a wedged executor leaves evidence even if the operator
// only looks after the fact.
//
// Detection is deliberately conservative: a condition must hold for
// Confirm consecutive polls before an incident fires, and each kind
// then cools down for Cooldown so a persistent stall produces one
// bundle, not one per poll.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/core"
	"hydra/internal/dora"
	"hydra/internal/obs"
)

// StallKind identifies one watchdog condition.
type StallKind int

const (
	// StallWAL fires when the durable LSN has not advanced across
	// consecutive polls while commit waiters are parked on it: the
	// group-commit pipeline is wedged (dead flusher, stuck device).
	StallWAL StallKind = iota
	// StallDoraQueue fires when a DORA executor queue sits at capacity
	// across consecutive polls: the partition is not draining and
	// every producer into it is blocked.
	StallDoraQueue
	// StallLockWaiter fires when the oldest lock waiter exceeds the
	// configured horizon: admission is stalled behind a lock that is
	// not being released (leaked holder, undetected cycle).
	StallLockWaiter
	// StallMVCCGC fires when the oldest pinned snapshot exceeds the
	// configured horizon WHILE the version store keeps growing: the
	// pin is holding the GC watermark and chains accumulate without
	// bound (the long-snapshot stall; Config.MaxSnapshotAge is the
	// opt-in remedy, this incident is the evidence either way).
	StallMVCCGC

	numStallKinds
)

var stallKindNames = [numStallKinds]string{
	StallWAL:        "wal_stall",
	StallDoraQueue:  "dora_queue_pinned",
	StallLockWaiter: "lock_waiter_stuck",
	StallMVCCGC:     "mvcc_gc_stalled",
}

// String returns the kind label used in /metrics and /incidents.
func (k StallKind) String() string {
	if k >= 0 && k < numStallKinds {
		return stallKindNames[k]
	}
	return "unknown"
}

// FlightOptions configures the recorder. The zero value picks
// production defaults; tests shrink the horizons to milliseconds.
type FlightOptions struct {
	// Poll is the watchdog period. Default 250ms.
	Poll time.Duration
	// Confirm is how many consecutive positive polls arm an incident.
	// Default 3 (i.e. a stall must hold for ~750ms).
	Confirm int
	// Cooldown suppresses repeat incidents of one kind. Default 10s.
	Cooldown time.Duration
	// LockWaiterHorizon is the oldest-waiter age that counts as a
	// stall. Default 2s (beyond any configured lock timeout).
	LockWaiterHorizon time.Duration
	// SnapshotAgeHorizon is the oldest-pinned-snapshot age beyond
	// which a still-growing version store counts as a GC stall.
	// Default 5s.
	SnapshotAgeHorizon time.Duration
}

func (o *FlightOptions) fill() {
	if o.Poll <= 0 {
		o.Poll = 250 * time.Millisecond
	}
	if o.Confirm <= 0 {
		o.Confirm = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 10 * time.Second
	}
	if o.LockWaiterHorizon <= 0 {
		o.LockWaiterHorizon = 2 * time.Second
	}
	if o.SnapshotAgeHorizon <= 0 {
		o.SnapshotAgeHorizon = 5 * time.Second
	}
}

// incidentRing bounds retained bundles; older incidents fall off.
const incidentRing = 8

// maxWaitsForEdges bounds the waits-for graph copied into a bundle.
const maxWaitsForEdges = 64

// Incident is one captured diagnostic bundle.
type Incident struct {
	Seq      uint64    `json:"seq"`
	Kind     string    `json:"kind"`
	Wall     time.Time `json:"wall_time"`
	MonoNs   int64     `json:"mono_ns"`
	Detail   string    `json:"detail"`
	Polls    int       `json:"confirming_polls"`
	Cooldown bool      `json:"cooldown_suppressed_since_last"`

	// Commit-pipeline state at capture.
	FlushedLSN    uint64 `json:"flushed_lsn"`
	CommitWaiters int    `json:"commit_waiters"`
	LogInserts    uint64 `json:"log_inserts"`
	LogFlushes    uint64 `json:"log_flushes"`

	// Executor state at capture.
	QueueDepths []int `json:"queue_depths,omitempty"`
	QueueCaps   []int `json:"queue_caps,omitempty"`

	// Lock state at capture. WaitsFor maps waiting txn -> blockers and
	// is truncated to maxWaitsForEdges entries.
	OldestLockWaitNs int64               `json:"oldest_lock_wait_ns"`
	LockWaiters      int                 `json:"lock_waiters"`
	WaitsFor         map[uint64][]uint64 `json:"waits_for,omitempty"`
	WaitsForTrunc    bool                `json:"waits_for_truncated,omitempty"`

	// MVCC state at capture: the pin holding the watermark and the
	// growth it is causing.
	OldestSnapshotAgeNs int64  `json:"oldest_snapshot_age_ns,omitempty"`
	ActiveSnapshots     int    `json:"active_snapshots,omitempty"`
	MvccLiveNodes       int64  `json:"mvcc_live_nodes,omitempty"`
	MvccGCNodes         uint64 `json:"mvcc_gc_nodes,omitempty"`

	// The slowest retained transactions with their phase breakdowns:
	// where the time of the transactions that did finish went.
	SlowTop []SlowTxnJSON `json:"slow_top,omitempty"`
}

// FlightRecorder owns the watchdog goroutine and the incident ring.
type FlightRecorder struct {
	e    *core.Engine
	opts FlightOptions

	counts [numStallKinds]atomic.Uint64

	mu   sync.Mutex
	ring [incidentRing]Incident
	n    int // valid entries in ring (<= incidentRing)
	next int // ring cursor
	seq  uint64

	// per-kind detector state, watchdog goroutine only
	lastFlushed   uint64
	lastLiveNodes int64
	streak        [numStallKinds]int
	lastFire      [numStallKinds]int64

	stop chan struct{}
	done chan struct{}
}

// NewFlightRecorder builds a recorder for e. Call Start to launch the
// watchdog and Stop to halt it; a recorder that is never started still
// serves empty snapshots.
func NewFlightRecorder(e *core.Engine, opts FlightOptions) *FlightRecorder {
	opts.fill()
	return &FlightRecorder{
		e:    e,
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the watchdog goroutine.
func (fr *FlightRecorder) Start() {
	go fr.run()
}

// Stop halts the watchdog and waits for it to exit.
func (fr *FlightRecorder) Stop() {
	close(fr.stop)
	<-fr.done
}

func (fr *FlightRecorder) run() {
	defer close(fr.done)
	t := time.NewTicker(fr.opts.Poll)
	defer t.Stop()
	fr.lastFlushed = uint64(fr.e.Log().FlushedLSN())
	for {
		select {
		case <-fr.stop:
			return
		case <-t.C:
			fr.poll()
		}
	}
}

// poll evaluates every condition once and fires confirmed incidents.
func (fr *FlightRecorder) poll() {
	now := obs.Now()

	// WAL: durable frontier stuck with committers parked on it.
	flushed := uint64(fr.e.Log().FlushedLSN())
	waiters := fr.e.Log().CommitWaiters()
	if flushed == fr.lastFlushed && waiters > 0 {
		fr.bump(StallWAL, now, func() string {
			return fmt.Sprintf("durable LSN stuck at %d with %d commit waiter(s)", flushed, waiters)
		})
	} else {
		fr.streak[StallWAL] = 0
	}
	fr.lastFlushed = flushed

	// DORA: an executor queue pinned at capacity.
	ds := dora.GlobalStats()
	pinned := -1
	for i, d := range ds.QueueDepths {
		if i < len(ds.QueueCaps) && ds.QueueCaps[i] > 0 && d >= ds.QueueCaps[i] {
			pinned = i
			break
		}
	}
	if pinned >= 0 {
		fr.bump(StallDoraQueue, now, func() string {
			return fmt.Sprintf("executor %d queue pinned at capacity %d", pinned, ds.QueueCaps[pinned])
		})
	} else {
		fr.streak[StallDoraQueue] = 0
	}

	// Locks: a waiter older than the horizon.
	age, nw := fr.e.Locks().OldestWaiterAge()
	if nw > 0 && age > int64(fr.opts.LockWaiterHorizon) {
		fr.bump(StallLockWaiter, now, func() string {
			return fmt.Sprintf("oldest lock waiter %.1fms old (%d waiting)", float64(age)/1e6, nw)
		})
	} else {
		fr.streak[StallLockWaiter] = 0
	}

	// MVCC: an old pin holding the watermark while chains still grow.
	// Both halves matter: an old pin over a quiet store holds nothing
	// live, and growth without an old pin is normal write traffic the
	// next release will sweep.
	mv := fr.e.StatsSnapshot().Mvcc
	if mv.ActiveSnapshots > 0 && mv.OldestSnapshotAgeNs > int64(fr.opts.SnapshotAgeHorizon) &&
		mv.LiveNodes > fr.lastLiveNodes {
		grown := mv.LiveNodes - fr.lastLiveNodes
		fr.bump(StallMVCCGC, now, func() string {
			return fmt.Sprintf("oldest snapshot %.1fms old pins GC watermark; %d live version nodes (+%d since last poll)",
				float64(mv.OldestSnapshotAgeNs)/1e6, mv.LiveNodes, grown)
		})
	} else {
		fr.streak[StallMVCCGC] = 0
	}
	fr.lastLiveNodes = mv.LiveNodes
}

// bump advances one kind's confirmation streak and captures an
// incident when it confirms outside the cooldown. detail is a thunk so
// unconfirmed polls never format strings.
func (fr *FlightRecorder) bump(k StallKind, now int64, detail func() string) {
	fr.streak[k]++
	if fr.streak[k] < fr.opts.Confirm {
		return
	}
	cooled := fr.lastFire[k] != 0
	if cooled && now-fr.lastFire[k] < int64(fr.opts.Cooldown) {
		return
	}
	fr.lastFire[k] = now
	fr.counts[k].Add(1)
	fr.capture(k, now, detail(), fr.streak[k], cooled)
	fr.streak[k] = 0
}

// capture assembles the diagnostic bundle and pushes it on the ring.
func (fr *FlightRecorder) capture(k StallKind, now int64, detail string, polls int, cooled bool) {
	st := fr.e.StatsSnapshot()
	ds := dora.GlobalStats()
	age, nw := fr.e.Locks().OldestWaiterAge()
	wf := fr.e.Locks().WaitsForSnapshot()
	trunc := false
	if len(wf) > maxWaitsForEdges {
		cut := make(map[uint64][]uint64, maxWaitsForEdges)
		for txn, bl := range wf {
			cut[txn] = bl
			if len(cut) == maxWaitsForEdges {
				break
			}
		}
		wf, trunc = cut, true
	}
	slow := obs.SlowTxns.Snapshot()
	top := slow.Entries
	if len(top) > 5 {
		top = top[:5]
	}
	inc := Incident{
		Kind:          k.String(),
		Wall:          time.Now(),
		MonoNs:        now,
		Detail:        detail,
		Polls:         polls,
		Cooldown:      cooled,
		FlushedLSN:    uint64(fr.e.Log().FlushedLSN()),
		CommitWaiters: fr.e.Log().CommitWaiters(),
		LogInserts:    st.Log.Inserts,
		LogFlushes:    st.Log.Flushes,
		QueueDepths:   ds.QueueDepths,
		QueueCaps:     ds.QueueCaps,

		OldestLockWaitNs: age,
		LockWaiters:      nw,
		WaitsFor:         wf,
		WaitsForTrunc:    trunc,

		OldestSnapshotAgeNs: st.Mvcc.OldestSnapshotAgeNs,
		ActiveSnapshots:     st.Mvcc.ActiveSnapshots,
		MvccLiveNodes:       st.Mvcc.LiveNodes,
		MvccGCNodes:         st.Mvcc.GCNodes,

		SlowTop: slowTxnsJSON(top),
	}
	fr.mu.Lock()
	fr.seq++
	inc.Seq = fr.seq
	fr.ring[fr.next] = inc
	fr.next = (fr.next + 1) % incidentRing
	if fr.n < incidentRing {
		fr.n++
	}
	fr.mu.Unlock()
}

// Count returns the cumulative incidents of one kind.
func (fr *FlightRecorder) Count(k StallKind) uint64 {
	if k < 0 || k >= numStallKinds {
		return 0
	}
	return fr.counts[k].Load()
}

// Snapshot returns the retained incidents, newest first.
func (fr *FlightRecorder) Snapshot() []Incident {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]Incident, 0, fr.n)
	for i := 0; i < fr.n; i++ {
		// next-1 is the newest entry; walk backwards.
		idx := (fr.next - 1 - i + 2*incidentRing) % incidentRing
		out = append(out, fr.ring[idx])
	}
	return out
}
