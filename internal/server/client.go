package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"strings"
)

// Client is a minimal client for the text protocol, used by the
// cluster example and the tests.
type Client struct {
	conn net.Conn
	r    *bufio.Scanner
	w    *bufio.Writer
}

// Dial connects to a hydra server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewScanner(conn), w: bufio.NewWriter(conn)}
	c.r.Buffer(make([]byte, 64*1024), 1024*1024)
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one command and reads a single-line reply.
func (c *Client) roundTrip(cmd string) (string, error) {
	if _, err := fmt.Fprintf(c.w, "%s\n", cmd); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("server: connection closed")
	}
	return c.r.Text(), nil
}

func expectOK(reply string) error {
	if strings.HasPrefix(reply, "+") {
		return nil
	}
	return fmt.Errorf("server: %s", strings.TrimPrefix(reply, "-ERR "))
}

// Ping checks liveness.
func (c *Client) Ping() error {
	reply, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	return expectOK(reply)
}

// CreateTable creates a table.
func (c *Client) CreateTable(name string) error {
	reply, err := c.roundTrip("CREATE " + name)
	if err != nil {
		return err
	}
	return expectOK(reply)
}

// Set upserts a value.
func (c *Client) Set(table string, key uint64, value string) error {
	reply, err := c.roundTrip(fmt.Sprintf("SET %s %d %s", table, key, value))
	if err != nil {
		return err
	}
	return expectOK(reply)
}

// Get reads a value.
func (c *Client) Get(table string, key uint64) (string, error) {
	reply, err := c.roundTrip(fmt.Sprintf("GET %s %d", table, key))
	if err != nil {
		return "", err
	}
	if err := expectOK(reply); err != nil {
		return "", err
	}
	return strings.TrimPrefix(reply, "+VALUE "), nil
}

// Del deletes a key.
func (c *Client) Del(table string, key uint64) error {
	reply, err := c.roundTrip(fmt.Sprintf("DEL %s %d", table, key))
	if err != nil {
		return err
	}
	return expectOK(reply)
}

// Row is one SCAN result.
type Row struct {
	Key   uint64
	Value string
}

// Scan returns up to max rows in [lo, hi].
func (c *Client) Scan(table string, lo, hi uint64, max int) ([]Row, error) {
	if _, err := fmt.Fprintf(c.w, "SCAN %s %d %d %d\n", table, lo, hi, max); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	var rows []Row
	for c.r.Scan() {
		line := c.r.Text()
		switch {
		case line == "+END":
			return rows, nil
		case strings.HasPrefix(line, "+ROW "):
			rest := strings.TrimPrefix(line, "+ROW ")
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				return nil, fmt.Errorf("server: malformed row %q", line)
			}
			k, err := strconv.ParseUint(rest[:sp], 10, 64)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{Key: k, Value: rest[sp+1:]})
		default:
			return nil, fmt.Errorf("server: %s", strings.TrimPrefix(line, "-ERR "))
		}
	}
	return nil, fmt.Errorf("server: connection closed mid-scan")
}

// Begin / Commit / Abort manage an explicit transaction on this
// connection.
func (c *Client) Begin() error { return c.simple("BEGIN") }

// Commit commits the open transaction.
func (c *Client) Commit() error { return c.simple("COMMIT") }

// Abort rolls back the open transaction.
func (c *Client) Abort() error { return c.simple("ABORT") }

func (c *Client) simple(cmd string) error {
	reply, err := c.roundTrip(cmd)
	if err != nil {
		return err
	}
	return expectOK(reply)
}

// Raw sends one verbatim command line and returns the single-line
// reply (without the +/- status prefix); -ERR replies become errors.
func (c *Client) Raw(line string) (string, error) {
	reply, err := c.roundTrip(line)
	if err != nil {
		return "", err
	}
	if err := expectOK(reply); err != nil {
		return "", err
	}
	return strings.TrimPrefix(strings.TrimPrefix(reply, "+VALUE "), "+"), nil
}

// Stats fetches the server counters line.
func (c *Client) Stats() (string, error) {
	reply, err := c.roundTrip("STATS")
	if err != nil {
		return "", err
	}
	if err := expectOK(reply); err != nil {
		return "", err
	}
	return strings.TrimPrefix(reply, "+VALUE "), nil
}

// StatsFull fetches and decodes the full observability snapshot.
func (c *Client) StatsFull() (StatsJSON, error) {
	var st StatsJSON
	reply, err := c.roundTrip("STATS FULL")
	if err != nil {
		return st, err
	}
	if err := expectOK(reply); err != nil {
		return st, err
	}
	err = json.Unmarshal([]byte(strings.TrimPrefix(reply, "+VALUE ")), &st)
	return st, err
}
