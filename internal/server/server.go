// Package server exposes the storage manager over TCP with a small
// line-oriented text protocol, so the engine can serve the scale-out
// role the keynote's title gestures at. One goroutine per connection;
// each connection may run explicit transactions or autocommit.
//
// Protocol (requests are single lines, space separated):
//
//	PING                         -> +PONG
//	CREATE <table>               -> +OK
//	SET <table> <key> <value...> -> +OK          (value = rest of line)
//	GET <table> <key>            -> +VALUE <value> | -ERR not found
//	DEL <table> <key>            -> +OK
//	SCAN <table> <lo> <hi> <max> -> +ROW <key> <value> ... +END
//	BEGIN / COMMIT / ABORT       -> +OK          (explicit transaction)
//	CHECKPOINT                   -> +OK          (fuzzy checkpoint)
//	BACKUP <path>                -> +OK          (online backup to a server-side file)
//	STATS                        -> +VALUE <counters>
//	STATS FULL                   -> +VALUE <one-line JSON snapshot>
//	QUIT                         -> +BYE, closes the connection
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"

	"hydra/internal/core"
)

// Server serves engine over a listener.
type Server struct {
	engine *core.Engine
	fr     *FlightRecorder // optional; feeds STATS FULL incident counts

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New returns a server over e.
func New(e *core.Engine) *Server {
	return &Server{engine: e, conns: make(map[net.Conn]struct{})}
}

// SetFlightRecorder attaches a running stall flight recorder so STATS
// FULL reports incident counts. Call before Serve.
func (s *Server) SetFlightRecorder(fr *FlightRecorder) { s.fr = fr }

// Serve accepts connections until Close. It returns after the
// listener fails or is closed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the bound address (after Serve starts).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes live connections, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewScanner(conn)
	r.Buffer(make([]byte, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	var txn *core.Txn
	defer func() {
		if txn != nil {
			txn.Abort()
		}
	}()
	for r.Scan() {
		line := strings.TrimRight(r.Text(), "\r")
		reply, quit := s.dispatch(line, &txn)
		fmt.Fprintf(w, "%s\n", reply)
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// dispatch executes one command line and returns the reply (which may
// contain embedded newlines for multi-row responses).
func (s *Server) dispatch(line string, txn **core.Txn) (string, bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "-ERR empty command", false
	}
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "PING":
		return "+PONG", false
	case "QUIT":
		return "+BYE", false
	case "CREATE":
		if len(fields) != 2 {
			return "-ERR usage: CREATE <table>", false
		}
		if _, err := s.engine.CreateTable(fields[1]); err != nil {
			return errReply(err), false
		}
		return "+OK", false
	case "BEGIN":
		if *txn != nil {
			return "-ERR transaction already open", false
		}
		*txn = s.engine.Begin()
		return "+OK", false
	case "COMMIT":
		if *txn == nil {
			return "-ERR no transaction", false
		}
		err := (*txn).Commit()
		*txn = nil
		if err != nil {
			return errReply(err), false
		}
		return "+OK", false
	case "ABORT":
		if *txn == nil {
			return "-ERR no transaction", false
		}
		err := (*txn).Abort()
		*txn = nil
		if err != nil {
			return errReply(err), false
		}
		return "+OK", false
	case "CHECKPOINT":
		if err := s.engine.Checkpoint(); err != nil {
			return errReply(err), false
		}
		return "+OK", false
	case "BACKUP":
		if len(fields) != 2 {
			return "-ERR usage: BACKUP <server-side-path>", false
		}
		f, err := os.Create(fields[1])
		if err != nil {
			return errReply(err), false
		}
		if err := s.engine.Backup(f); err != nil {
			f.Close()
			return errReply(err), false
		}
		if err := f.Close(); err != nil {
			return errReply(err), false
		}
		return "+OK", false
	case "STATS":
		if len(fields) == 2 && strings.ToUpper(fields[1]) == "FULL" {
			// One-line JSON so the line protocol stays line-oriented.
			b, err := json.Marshal(Snapshot(s.engine, s.fr))
			if err != nil {
				return errReply(err), false
			}
			return "+VALUE " + string(b), false
		}
		st := s.engine.StatsSnapshot()
		return fmt.Sprintf("+VALUE commits=%d aborts=%d lock_acquires=%d log_inserts=%d buf_hits=%d buf_misses=%d",
			st.Commits, st.Aborts, st.Lock.Acquires, st.Log.Inserts, st.Buffer.Hits, st.Buffer.Misses), false
	case "SET", "GET", "DEL", "SCAN":
		return s.data(cmd, fields, txn), false
	default:
		return fmt.Sprintf("-ERR unknown command %q", cmd), false
	}
}

func (s *Server) data(cmd string, fields []string, txn **core.Txn) string {
	if len(fields) < 3 {
		return "-ERR missing table/key"
	}
	tbl, err := s.engine.Table(fields[1])
	if err != nil {
		return errReply(err)
	}
	key, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return "-ERR bad key"
	}

	// Run within the open transaction, or autocommit. Autocommitted
	// reads ride the MVCC snapshot path when the engine has it: a wire
	// GET/SCAN then takes zero lock-manager traffic.
	run := func(fn func(tx *core.Txn) error) error {
		if *txn != nil {
			return fn(*txn)
		}
		if s.engine.MVCCEnabled() && (cmd == "GET" || cmd == "SCAN") {
			return s.engine.ExecSnapshot(fn)
		}
		return s.engine.Exec(fn)
	}

	switch cmd {
	case "SET":
		if len(fields) < 4 {
			return "-ERR usage: SET <table> <key> <value>"
		}
		val := []byte(strings.Join(fields[3:], " "))
		err := run(func(tx *core.Txn) error {
			err := tx.Update(tbl, key, val)
			if errors.Is(err, core.ErrNotFound) {
				return tx.Insert(tbl, key, val)
			}
			return err
		})
		if err != nil {
			return errReply(err)
		}
		return "+OK"
	case "GET":
		var val []byte
		err := run(func(tx *core.Txn) error {
			v, err := tx.Read(tbl, key)
			val = v
			return err
		})
		if err != nil {
			return errReply(err)
		}
		return "+VALUE " + string(val)
	case "DEL":
		if err := run(func(tx *core.Txn) error { return tx.Delete(tbl, key) }); err != nil {
			return errReply(err)
		}
		return "+OK"
	case "SCAN":
		if len(fields) != 5 {
			return "-ERR usage: SCAN <table> <lo> <hi> <max>"
		}
		hi, err1 := strconv.ParseUint(fields[3], 10, 64)
		max, err2 := strconv.Atoi(fields[4])
		if err1 != nil || err2 != nil || max <= 0 {
			return "-ERR bad range"
		}
		var sb strings.Builder
		err := run(func(tx *core.Txn) error {
			n := 0
			return tx.Scan(tbl, key, hi, func(k uint64, v []byte) bool {
				fmt.Fprintf(&sb, "+ROW %d %s\n", k, v)
				n++
				return n < max
			})
		})
		if err != nil {
			return errReply(err)
		}
		return sb.String() + "+END"
	}
	return "-ERR unreachable"
}

func errReply(err error) string {
	return "-ERR " + strings.ReplaceAll(err.Error(), "\n", " ")
}
