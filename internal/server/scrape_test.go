package server

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"hydra/internal/buffer"
	"hydra/internal/core"
	"hydra/internal/obs"
	"hydra/internal/wal"
)

// scrapeAll hits every observability surface once and fails the test
// if any call takes longer than the prompt-return budget. The budget
// is generous (scrapes are atomic loads; seconds mean a deadlock).
func scrapeAll(t *testing.T, ts *httptest.Server, timeout time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		get(t, ts.URL+"/metrics")
		get(t, ts.URL+"/stats")
		get(t, ts.URL+"/slow")
		get(t, ts.URL+"/incidents")
		get(t, ts.URL+"/trace")
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		t.Fatal("scrape did not return promptly")
	}
}

// TestScrapeDuringWALPoison poisons the log mid-workload (failing
// device) and asserts every observability endpoint still returns
// promptly: the surface must never wait on a dead flusher. Run with
// -race this also proves the scrape path is race-free against the
// poison machinery.
func TestScrapeDuringWALPoison(t *testing.T) {
	dev := wal.NewMem()
	e, err := core.OpenWith(core.Scalable(), buffer.NewMemStore(), dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tbl, err := e.CreateTable("p")
	if err != nil {
		t.Fatal(err)
	}
	fr := NewFlightRecorder(e, FlightOptions{Poll: 2 * time.Millisecond})
	fr.Start()
	defer fr.Stop()
	ts := httptest.NewServer(NewMetricsMux(e, fr))
	defer ts.Close()

	if err := e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, 1, []byte("v")) }); err != nil {
		t.Fatal(err)
	}
	// Kill the device: the next flush poisons the log, and every
	// subsequent commit fails rather than hangs.
	dev.FailAfter(1, errors.New("injected device death"))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(2); i < 50; i++ {
			if err := e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, i, []byte("w")) }); err != nil {
				return // poison surfaced, as designed
			}
		}
	}()
	for i := 0; i < 10; i++ {
		scrapeAll(t, ts, 5*time.Second)
	}
	wg.Wait()
	// Commits against a poisoned log must report the injected error.
	if err := e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, 999, []byte("x")) }); err == nil {
		t.Fatal("commit succeeded against a poisoned log")
	}
}

// TestScrapeDuringShutdown scrapes concurrently with engine Close and
// requires both to return promptly. STATS FULL over the line protocol
// participates too: the TCP server shares the snapshot path.
func TestScrapeDuringShutdown(t *testing.T) {
	e, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := e.CreateTable("s")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if err := e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, i, []byte("v")) }); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFlightRecorder(e, FlightOptions{Poll: 2 * time.Millisecond})
	fr.Start()
	ts := httptest.NewServer(NewMetricsMux(e, fr))
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			scrapeAll(t, ts, 5*time.Second)
		}
	}()
	closed := make(chan error, 1)
	go func() { closed <- e.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Errorf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("engine close did not return while scraping")
	}
	wg.Wait()
	fr.Stop()
}

// TestStatsFullDuringLoad exercises STATS FULL over the line protocol
// while a workload runs; the response must carry the phase-accounting
// sections.
func TestStatsFullDuringLoad(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.CreateTable("sf"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c2 := dial(t, addr)
		for i := 0; i < 100; i++ {
			if err := c2.Set("sf", uint64(i), "v"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		st, err := c.StatsFull()
		if err != nil {
			t.Fatal(err)
		}
		_ = st
	}
	wg.Wait()
	st, err := c.StatsFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Phases) == 0 {
		t.Fatal("STATS FULL carries no phase cells after committed traffic")
	}
	cell := st.Phases[0]
	if cell.Path != "conv" || cell.Outcome != "commit" || cell.Count == 0 {
		t.Fatalf("unexpected first phase cell: %+v", cell)
	}
	if cell.Total.Count == 0 {
		t.Fatal("phase cell total histogram empty")
	}
}

// TestTraceTxnFilter drives two transactions with tracing on and
// asserts ?txn= returns only the requested transaction's events and
// ?max= caps the response.
func TestTraceTxnFilter(t *testing.T) {
	e, ts := startMetrics(t)
	obs.Trace.SetEnabled(true)
	defer obs.Trace.SetEnabled(false)
	tbl, err := e.CreateTable("tf")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if err := e.Exec(func(tx *core.Txn) error { return tx.Insert(tbl, i, []byte("v")) }); err != nil {
			t.Fatal(err)
		}
	}
	var all struct {
		Events []TraceEventJSON `json:"events"`
	}
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/trace")), &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Events) == 0 {
		t.Fatal("no trace events recorded")
	}
	// Pick a txn that has events and filter to it.
	want := all.Events[len(all.Events)/2].Txn
	var filtered struct {
		Txn    uint64           `json:"txn"`
		Events []TraceEventJSON `json:"events"`
	}
	body := get(t, ts.URL+"/trace?txn="+strconv.FormatUint(want, 10))
	if err := json.Unmarshal([]byte(body), &filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered.Events) == 0 {
		t.Fatalf("filter for txn %d returned nothing", want)
	}
	for _, ev := range filtered.Events {
		if ev.Txn != want {
			t.Fatalf("filter leaked txn %d (wanted %d)", ev.Txn, want)
		}
	}
	// Cap the response to one event.
	var capped struct {
		Capped bool             `json:"capped"`
		Events []TraceEventJSON `json:"events"`
	}
	if err := json.Unmarshal([]byte(get(t, ts.URL+"/trace?max=1")), &capped); err != nil {
		t.Fatal(err)
	}
	if len(capped.Events) != 1 || !capped.Capped {
		t.Fatalf("max=1: got %d events, capped=%v", len(capped.Events), capped.Capped)
	}
}
