package server

import (
	"net"
	"os"
	"strings"
	"sync"
	"testing"

	"hydra/internal/buffer"
	"hydra/internal/core"
	"hydra/internal/wal"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	e, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	s := New(e)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		s.Close()
		e.Close()
	})
	return s, ln.Addr().String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPingAndCRUD(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("kv", 1, "hello world"); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("kv", 1)
	if err != nil || v != "hello world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := c.Set("kv", 1, "updated"); err != nil {
		t.Fatal(err)
	}
	if v, _ := c.Get("kv", 1); v != "updated" {
		t.Fatalf("after upsert: %q", v)
	}
	if err := c.Del("kv", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("kv", 1); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("get deleted: %v", err)
	}
}

func TestScanProtocol(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.CreateTable("kv")
	for i := uint64(0); i < 20; i++ {
		if err := c.Set("kv", i, "v"); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := c.Scan("kv", 5, 15, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 || rows[0].Key != 5 || rows[10].Key != 15 {
		t.Fatalf("scan rows: %+v", rows)
	}
	// Max cap honored.
	rows, err = c.Scan("kv", 0, 19, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("capped scan returned %d", len(rows))
	}
}

func TestExplicitTransactions(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.CreateTable("kv")

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("kv", 1, "in-txn"); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("kv", 1); err == nil {
		t.Fatal("aborted write visible")
	}

	if err := c.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("kv", 2, "committed"); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get("kv", 2); err != nil || v != "committed" {
		t.Fatalf("committed read: %q, %v", v, err)
	}
}

func TestProtocolErrors(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("kv"); err == nil {
		t.Fatal("duplicate create accepted")
	}
	if _, err := c.Get("nope", 1); err == nil {
		t.Fatal("missing table accepted")
	}
	if err := c.Commit(); err == nil {
		t.Fatal("commit without begin accepted")
	}
	reply, err := c.roundTrip("GIBBERISH")
	if err != nil || !strings.HasPrefix(reply, "-ERR") {
		t.Fatalf("gibberish reply: %q, %v", reply, err)
	}
	reply, _ = c.roundTrip("SET kv notanumber x")
	if !strings.HasPrefix(reply, "-ERR") {
		t.Fatalf("bad key accepted: %q", reply)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	admin := dial(t, addr)
	if err := admin.CreateTable("kv"); err != nil {
		t.Fatal(err)
	}
	const clients, per = 8, 50
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			base := uint64(cl * 1000)
			for i := uint64(0); i < per; i++ {
				if err := c.Set("kv", base+i, "x"); err != nil {
					t.Errorf("client %d: %v", cl, err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	rows, err := admin.Scan("kv", 0, ^uint64(0), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != clients*per {
		t.Fatalf("rows = %d, want %d", len(rows), clients*per)
	}
	stats, err := admin.Stats()
	if err != nil || !strings.Contains(stats, "commits=") {
		t.Fatalf("stats: %q, %v", stats, err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s, addr := startServer(t)
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded after server close")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestCheckpointCommand(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.CreateTable("kv")
	for i := uint64(0); i < 10; i++ {
		c.Set("kv", i, "x")
	}
	reply, err := c.roundTrip("CHECKPOINT")
	if err != nil || reply != "+OK" {
		t.Fatalf("CHECKPOINT reply = %q, %v", reply, err)
	}
	// Data still readable afterwards.
	if v, err := c.Get("kv", 3); err != nil || v != "x" {
		t.Fatalf("get after checkpoint: %q, %v", v, err)
	}
}

func TestClientRaw(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	reply, err := c.Raw("PING")
	if err != nil || reply != "PONG" {
		t.Fatalf("Raw(PING) = %q, %v", reply, err)
	}
	if _, err := c.Raw("NONSENSE"); err == nil {
		t.Fatal("Raw accepted nonsense")
	}
	reply, err = c.Raw("CHECKPOINT")
	if err != nil || reply != "OK" {
		t.Fatalf("Raw(CHECKPOINT) = %q, %v", reply, err)
	}
}

func TestBackupCommand(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.CreateTable("kv")
	for i := uint64(0); i < 25; i++ {
		c.Set("kv", i, "x")
	}
	path := t.TempDir() + "/backup.hydra"
	if _, err := c.Raw("BACKUP " + path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	store := buffer.NewMemStore()
	dev := wal.NewMem()
	if err := core.RestoreInto(f, store, dev); err != nil {
		t.Fatal(err)
	}
	e2, err := core.OpenWith(core.Scalable(), store, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	tbl, err := e2.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	e2.Exec(func(tx *core.Txn) error {
		n := 0
		tx.Scan(tbl, 0, ^uint64(0), func(uint64, []byte) bool { n++; return true })
		if n != 25 {
			t.Fatalf("restored rows = %d", n)
		}
		return nil
	})
}
