package dora

import (
	"encoding/binary"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/core"
)

func newDora(t *testing.T, executors int) (*Engine, *core.Engine, *core.Table) {
	t.Helper()
	c, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	d := New(c, Options{Executors: executors})
	t.Cleanup(func() {
		d.Close()
		c.Close()
	})
	return d, c, tbl
}

func enc(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func dec(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// crossKeys returns two keys that route to different executors, so
// tests exercising the cross-partition path don't depend on hash luck.
func crossKeys(t *testing.T, d *Engine, tbl *core.Table) (uint64, uint64) {
	t.Helper()
	k1 := uint64(1)
	for k2 := uint64(2); k2 < 100_000; k2++ {
		if d.Route(tbl, k2) != d.Route(tbl, k1) {
			return k1, k2
		}
	}
	t.Fatal("no cross-partition key pair found")
	return 0, 0
}

func TestSingleActionTxn(t *testing.T) {
	d, c, tbl := newDora(t, 4)
	err := d.ExecSingle(Action{Table: tbl, Key: 1, Fn: func(tx *core.Txn) error {
		return tx.Insert(tbl, 1, enc(100))
	}})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Exec(func(tx *core.Txn) error {
		v, err := tx.Read(tbl, 1)
		if err != nil || dec(v) != 100 {
			t.Fatalf("read %v, %v", v, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := d.StatsSnapshot()
	if st.SinglePartition != 1 || st.CrossPartition != 0 {
		t.Fatalf("fast-path counters: single=%d cross=%d", st.SinglePartition, st.CrossPartition)
	}
}

func TestMultiPhaseTxn(t *testing.T) {
	d, c, tbl := newDora(t, 4)
	k1, k2 := crossKeys(t, d, tbl)
	// Phase 1: two inserts in parallel; phase 2 (after RVP): an
	// update that depends on phase 1 having completed.
	err := d.Exec([]Phase{
		{
			{Table: tbl, Key: k1, Fn: func(tx *core.Txn) error { return tx.Insert(tbl, k1, enc(10)) }},
			{Table: tbl, Key: k2, Fn: func(tx *core.Txn) error { return tx.Insert(tbl, k2, enc(20)) }},
		},
		{
			{Table: tbl, Key: k1, Fn: func(tx *core.Txn) error { return tx.Update(tbl, k1, enc(11)) }},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Exec(func(tx *core.Txn) error {
		if v, _ := tx.Read(tbl, k1); dec(v) != 11 {
			t.Fatalf("key 1 = %d", dec(v))
		}
		if v, _ := tx.Read(tbl, k2); dec(v) != 20 {
			t.Fatalf("key 2 = %d", dec(v))
		}
		return nil
	})
	st := d.StatsSnapshot()
	if st.ActionsExecuted != 3 || st.RendezvousCrossed != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SinglePartition != 0 || st.CrossPartition != 1 {
		t.Fatalf("fast-path counters: single=%d cross=%d", st.SinglePartition, st.CrossPartition)
	}
}

// A multi-phase transaction whose every action routes to one executor
// must take the fast path: shipped whole, no rendezvous crossed.
func TestSamePartitionMultiPhaseFastPath(t *testing.T) {
	d, c, tbl := newDora(t, 4)
	// RouteShift 0: the same key always routes identically, so phases
	// over one key are single-partition by construction.
	k := uint64(42)
	err := d.Exec([]Phase{
		{{Table: tbl, Key: k, Fn: func(tx *core.Txn) error { return tx.Insert(tbl, k, enc(1)) }}},
		{{Table: tbl, Key: k, Fn: func(tx *core.Txn) error { return tx.Update(tbl, k, enc(2)) }}},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Exec(func(tx *core.Txn) error {
		if v, _ := tx.Read(tbl, k); dec(v) != 2 {
			t.Fatalf("key = %d", dec(v))
		}
		return nil
	})
	st := d.StatsSnapshot()
	if st.SinglePartition != 1 || st.CrossPartition != 0 || st.RendezvousCrossed != 0 {
		t.Fatalf("fast path not taken: %+v", st)
	}
	if st.ActionsExecuted != 2 {
		t.Fatalf("actions = %d", st.ActionsExecuted)
	}
}

func TestFailedActionAbortsWholeTxn(t *testing.T) {
	d, c, tbl := newDora(t, 4)
	boom := errors.New("boom")
	err := d.Exec([]Phase{{
		{Table: tbl, Key: 1, Fn: func(tx *core.Txn) error { return tx.Insert(tbl, 1, enc(1)) }},
		{Table: tbl, Key: 2, Fn: func(tx *core.Txn) error { return boom }},
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The successful sibling action must have been rolled back.
	c.Exec(func(tx *core.Txn) error {
		if _, err := tx.Read(tbl, 1); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("aborted insert visible: %v", err)
		}
		return nil
	})
}

func TestPartitionSerialization(t *testing.T) {
	// Concurrent increments of the same key through DORA must not
	// lose updates even with no locks: the owning executor serializes
	// them.
	d, c, tbl := newDora(t, 4)
	if err := d.ExecSingle(Action{Table: tbl, Key: 7, Fn: func(tx *core.Txn) error {
		return tx.Insert(tbl, 7, enc(0))
	}}); err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				err := d.ExecSingle(Action{Table: tbl, Key: 7, Fn: func(tx *core.Txn) error {
					v, err := tx.Read(tbl, 7)
					if err != nil {
						return err
					}
					return tx.Update(tbl, 7, enc(dec(v)+1))
				}})
				if err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	c.Exec(func(tx *core.Txn) error {
		v, err := tx.Read(tbl, 7)
		if err != nil {
			return err
		}
		if dec(v) != workers*per {
			t.Fatalf("lost updates: counter = %d, want %d", dec(v), workers*per)
		}
		return nil
	})
}

func TestRouteStability(t *testing.T) {
	d, _, tbl := newDora(t, 8)
	for key := uint64(0); key < 100; key++ {
		a, b := d.Route(tbl, key), d.Route(tbl, key)
		if a != b {
			t.Fatalf("routing unstable for key %d", key)
		}
		if a < 0 || a >= 8 {
			t.Fatalf("route out of range: %d", a)
		}
	}
}

func TestDisjointKeysParallelThroughput(t *testing.T) {
	d, c, tbl := newDora(t, 8)
	const n = 2000
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 1_000_000
			for i := uint64(0); i < n/8; i++ {
				key := base + i
				if err := d.ExecSingle(Action{Table: tbl, Key: key, Fn: func(tx *core.Txn) error {
					return tx.Insert(tbl, key, enc(key))
				}}); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	count := 0
	c.Exec(func(tx *core.Txn) error {
		return tx.Scan(tbl, 0, ^uint64(0), func(uint64, []byte) bool {
			count++
			return true
		})
	})
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func TestClosedEngineRejects(t *testing.T) {
	c, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl, _ := c.CreateTable("t")
	d := New(c, Options{Executors: 2})
	d.Close()
	d.Close() // idempotent
	if err := d.ExecSingle(Action{Table: tbl, Key: 1, Fn: func(*core.Txn) error { return nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

// Two multi-phase transactions with crossing key pairs: partition-
// local strict 2PL must serialize them (no write skew). Keys are
// chosen to land on different executors.
func TestMultiPhaseLocalLockSerialization(t *testing.T) {
	d, c, tbl := newDora(t, 4)
	k1, k2 := crossKeys(t, d, tbl)
	if err := d.Exec([]Phase{{
		{Table: tbl, Key: k1, Fn: func(tx *core.Txn) error { return tx.Insert(tbl, k1, enc(0)) }},
		{Table: tbl, Key: k2, Fn: func(tx *core.Txn) error { return tx.Insert(tbl, k2, enc(0)) }},
	}}); err != nil {
		t.Fatal(err)
	}
	// Each transaction reads key 1 in phase 1 and adds the value to
	// key 2 in phase 2 (and vice versa), concurrently. Under
	// serializable execution the final values stay consistent with a
	// serial order: total increments = number of committed txns.
	const loops = 30
	var committed int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				var v uint64
				err := d.Exec([]Phase{
					{{Table: tbl, Key: k1, Fn: func(tx *core.Txn) error {
						b, err := tx.Read(tbl, k1)
						if err != nil {
							return err
						}
						v = dec(b)
						return tx.Update(tbl, k1, enc(v+1))
					}}},
					{{Table: tbl, Key: k2, Fn: func(tx *core.Txn) error {
						b, err := tx.Read(tbl, k2)
						if err != nil {
							return err
						}
						return tx.Update(tbl, k2, enc(dec(b)+1))
					}}},
				})
				if err == nil {
					atomic.AddInt64(&committed, 1)
				} else if !errors.Is(err, ErrTimeout) {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c.Exec(func(tx *core.Txn) error {
		v1, err := tx.Read(tbl, k1)
		if err != nil {
			return err
		}
		v2, err := tx.Read(tbl, k2)
		if err != nil {
			return err
		}
		n := atomic.LoadInt64(&committed) // wg.Wait orders this, but stay atomic-everywhere
		if dec(v1) != uint64(n) || dec(v2) != uint64(n) {
			t.Fatalf("lost updates under local locking: k1=%d k2=%d committed=%d",
				dec(v1), dec(v2), n)
		}
		return nil
	})
}

// A genuine cross-partition deadlock must be broken by the rendezvous
// timeout, with both victims' effects rolled back.
func TestCrossPartitionDeadlockTimeout(t *testing.T) {
	c, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl, _ := c.CreateTable("t")
	d := New(c, Options{Executors: 4, LockTimeout: 100 * time.Millisecond})
	defer d.Close()
	k1, k2 := crossKeys(t, d, tbl)
	if err := d.Exec([]Phase{{
		{Table: tbl, Key: k1, Fn: func(tx *core.Txn) error { return tx.Insert(tbl, k1, enc(0)) }},
		{Table: tbl, Key: k2, Fn: func(tx *core.Txn) error { return tx.Insert(tbl, k2, enc(0)) }},
	}}); err != nil {
		t.Fatal(err)
	}

	// Txn A locks k1 then wants k2; txn B locks k2 then wants k1. Gate
	// phase 1 completion so both phase-1 grabs happen before either
	// phase 2 is submitted.
	gate := make(chan struct{})
	run := func(first, second uint64, ready chan<- struct{}) error {
		return d.Exec([]Phase{
			{{Table: tbl, Key: first, Fn: func(tx *core.Txn) error {
				ready <- struct{}{}
				<-gate
				return tx.Update(tbl, first, enc(111))
			}}},
			{{Table: tbl, Key: second, Fn: func(tx *core.Txn) error {
				return tx.Update(tbl, second, enc(222))
			}}},
		})
	}
	errs := make(chan error, 2)
	ready := make(chan struct{}, 2)
	go func() { errs <- run(k1, k2, ready) }()
	go func() { errs <- run(k2, k1, ready) }()
	<-ready
	<-ready
	close(gate)
	deadlocked := 0
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if errors.Is(err, ErrTimeout) {
				deadlocked++
			} else if err != nil {
				t.Fatalf("unexpected: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("deadlock never broken")
		}
	}
	if deadlocked == 0 {
		t.Fatal("no timeout fired for a real cross-partition deadlock")
	}
	// Aborted effects must be rolled back; survivors consistent.
	c.Exec(func(tx *core.Txn) error {
		v1, _ := tx.Read(tbl, k1)
		v2, _ := tx.Read(tbl, k2)
		// Each key is either untouched (0) or carries a committed
		// txn's full effect (111 for its first key, 222 for second).
		for _, v := range []uint64{dec(v1), dec(v2)} {
			if v != 0 && v != 111 && v != 222 {
				t.Fatalf("partial effect leaked: k1=%d k2=%d", dec(v1), dec(v2))
			}
		}
		return nil
	})
}
