// Package dora implements Data-ORiented Architecture transaction
// execution: instead of assigning a worker thread to a transaction
// and letting it roam over shared data through the centralized lock
// manager ("thread-to-transaction"), the key space of every table is
// split into logical partitions, each owned by exactly one executor
// goroutine ("thread-to-data"). A transaction is decomposed into
// actions, each routed to the executor owning the data it touches;
// rendezvous points separate phases whose actions depend on earlier
// results. Because an executor serializes all actions on its
// partition, no lock-table interaction is needed at all — the
// decoupling of transaction data access from process assignment the
// paper calls for.
//
// Two execution paths share the machinery:
//
//   - Single-partition fast path: when every action of the transaction
//     routes to one executor (the bulk of OLTP), the whole transaction
//     ships as ONE job. The owning executor runs begin→actions→commit
//     back to back with no lock registration at all — the transaction
//     is one indivisible partition-local critical section, and its
//     "locks" vanish the moment it finishes, with no release
//     round-trip. The executor appends the commit record and releases
//     immediately (core.Txn.CommitAsync); only the coordinator blocks
//     on group-commit durability (CommitWait), so executors never
//     stall on a flush.
//
//   - Cross-partition path: each phase's actions fan out to their
//     executors and a pooled countdown rendezvous (atomic pending
//     count + one reusable wake channel) joins them — no per-phase
//     channel or timer allocation.
//
// Isolation: each executor keeps a *local* lock table over its
// routing keys (see locallock.go) and holds a cross-partition
// transaction's keys until its commit or abort, so arbitrary
// multi-phase transactions are serializable — strict two-phase
// locking at partition granularity, with no shared lock-manager state
// whatsoever. Cross-partition deadlocks are broken by the
// coordinator's rendezvous timeout.
//
// Executor inboxes are bounded sync2.Queues drained in batches (the
// WAL flusher's kick-coalescing pattern): a hot partition pays one
// consumer wakeup per backlog, not per action.
package dora

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/core"
	"hydra/internal/invariant"
	"hydra/internal/obs"
	"hydra/internal/sync2"
	"hydra/internal/wal"
)

// Action is one unit of a decomposed transaction: work against a
// single routing key of a single table.
type Action struct {
	// Table routes the action (with Key) to an executor.
	Table *core.Table
	// Key is the routing key: the primary key the action touches.
	Key uint64
	// Fn runs on the owning executor. It must confine its data access
	// to keys that route identically to Key (same table, same key
	// family under Options.RouteShift).
	Fn func(tx *core.Txn) error
}

// Phase is a set of actions with no mutual dependencies; a rendezvous
// point follows each phase.
type Phase []Action

// Options configures a DORA engine.
type Options struct {
	// Executors is the number of partition-owning goroutines.
	// Default GOMAXPROCS-style 8.
	Executors int
	// QueueDepth is each executor's inbox capacity. Default 128.
	QueueDepth int
	// LockTimeout bounds an action's wait for a partition-local lock;
	// expiry cancels the transaction (the cross-partition deadlock
	// breaker). Default 2s.
	LockTimeout time.Duration
	// RouteShift coarsens routing: keys are shifted right by this
	// many bits before hashing, so each partition owns aligned key
	// families of size 2^RouteShift. Workloads whose transactions
	// scan a small aligned range (e.g. TATP call-forwarding rows of
	// one subscriber) set it so the whole range co-locates. Default 0.
	RouteShift uint
}

func (o *Options) fill() {
	if o.Executors <= 0 {
		o.Executors = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 128
	}
	if o.LockTimeout <= 0 {
		o.LockTimeout = 2 * time.Second
	}
}

// Engine dispatches decomposed transactions over partition executors.
type Engine struct {
	core *core.Engine
	opts Options
	exec []*executor

	closed  atomic.Bool
	wg      sync.WaitGroup
	ctxPool sync.Pool // *txnCtx, sized for this engine's executor count

	executed    obs.Counter // actions executed
	rvps        obs.Counter // rendezvous points crossed (cross path)
	localWaits  obs.Counter // jobs parked on a partition-local lock
	timeouts    obs.Counter // transactions canceled at a rendezvous
	singleTxns  obs.Counter // transactions shipped whole (fast path)
	crossTxns   obs.Counter // transactions through the coordinator
	batches     obs.Counter // executor drain batches
	batchedJobs obs.Counter // jobs moved by those batches
	service     obs.Hist    // action body runtime on the executor
	wait        obs.Hist    // enqueue -> dispatch inbox delay
}

type jobKind uint8

const (
	// jobAction is one action of a cross-partition transaction.
	jobAction jobKind = iota
	// jobTxn is a whole single-partition transaction (fast path).
	jobTxn
	// jobRelease surrenders tid's partition-local locks.
	jobRelease
	// jobCancel sweeps tid's parked jobs out of the waiting lists.
	jobCancel
)

// job is one executor inbox message. Control messages (release,
// cancel) carry only the stable core-transaction id, never the pooled
// txnCtx: a late control message must not be able to alias a recycled
// context. Data jobs (action, txn) do carry ctx — safe because the
// coordinator cannot recycle it until every data job has replied.
type job struct {
	kind   jobKind
	ctx    *txnCtx
	tid    uint64                   // core txn id: lock-table identity
	key    lockKey                  // jobAction, or single-action jobTxn
	fn     func(tx *core.Txn) error // jobAction, or single-action jobTxn
	phases []Phase                  // multi-action jobTxn payload
	enq    int64                    // obs.Now() at enqueue (wait hist)
}

type executor struct {
	id    int
	queue *sync2.Queue[job]
}

// txnCtx is the pooled per-transaction coordination block. One lives
// for the duration of one Exec call and is recycled through the
// engine's pool; the countdown protocol below makes recycling safe.
//
// Rendezvous lifecycle: the coordinator sets pending to the number of
// outstanding jobs before submitting them; every job replies exactly
// once (by running, by being swept on cancel, or by the executor's
// exit sweep), and the replier that decrements pending to zero sends
// on wake. The coordinator blocks on wake — even after a timeout — so
// by the time it proceeds, no executor holds a reference to the
// context and it can go back in the pool.
type txnCtx struct {
	tx       *core.Txn
	canceled atomic.Bool
	pending  atomic.Int32
	wake     chan struct{} // cap 1; signaled on the 1->0 transition

	// errMu guards firstErr on the cross path, where several executors
	// and a coordinator timeout may report concurrently.
	errMu    sync.Mutex
	firstErr error

	// Fast-path reply, written by the single owning executor before
	// its countdown decrement (the wake send publishes the writes).
	commitLSN wal.LSN
	finished  bool // executor already committed/aborted the core txn

	touched []uint64    // executor bitmask (cross path)
	timer   *time.Timer // reused across phases and transactions
}

// Errors returned by Exec.
var (
	// ErrClosed is returned after Close. A transaction that was
	// in flight when the engine closed is aborted cleanly.
	ErrClosed = errors.New("dora: engine closed")
	// ErrTimeout cancels a transaction whose action waited too long
	// for a partition-local lock (the deadlock breaker).
	ErrTimeout = errors.New("dora: local lock wait timed out")
	// errCanceled is delivered to parked actions of a transaction the
	// coordinator already gave up on.
	errCanceled = errors.New("dora: transaction canceled")
)

// New starts the executor set over a core engine.
func New(c *core.Engine, opts Options) *Engine {
	opts.fill()
	d := &Engine{core: c, opts: opts}
	words := (opts.Executors + 63) / 64
	d.ctxPool.New = func() any {
		return &txnCtx{
			wake:    make(chan struct{}, 1),
			touched: make([]uint64, words),
		}
	}
	for i := 0; i < opts.Executors; i++ {
		ex := &executor{id: i, queue: sync2.NewQueue[job](opts.QueueDepth)}
		d.exec = append(d.exec, ex)
		d.wg.Add(1)
		go d.run(ex)
	}
	register(d)
	return d
}

// run is one executor's loop: drain the inbox in batches, dispatch
// each job, and on close sweep every parked job so no coordinator is
// left counting down forever.
func (d *Engine) run(ex *executor) {
	defer d.wg.Done()
	ls := newLocalState()
	buf := make([]job, 0, d.opts.QueueDepth)
	for {
		var ok bool
		buf, ok = ex.queue.Drain(buf[:0])
		if len(buf) > 0 {
			d.batches.Inc()
			d.batchedJobs.Add(uint64(len(buf)))
			now := obs.Now()
			for i := range buf {
				j := buf[i]
				buf[i] = job{} // drop refs; the batch buffer is reused
				if j.kind == jobAction || j.kind == jobTxn {
					d.wait.ObserveNanos(now - j.enq)
					// The same stamp feeds the transaction's phase
					// clock: inbox delay is DORA's queue-wait phase.
					j.ctx.tx.Clock().Add(obs.PhaseQueueWait, now-j.enq)
				}
				d.dispatch(ls, j)
			}
		}
		if !ok {
			d.sweepAll(ls)
			return
		}
	}
}

// Route returns the executor index owning (table, key). Partitioning
// is by hash of the key family (key >> RouteShift), so a table's rows
// spread across all executors while aligned families co-locate.
func (d *Engine) Route(table *core.Table, key uint64) int {
	h := (uint64(table.ID)<<32 ^ (key >> d.opts.RouteShift)) * 0x9e3779b97f4a7c15
	return int(h % uint64(len(d.exec)))
}

// getCtx draws a recycled coordination block from the pool.
func (d *Engine) getCtx() *txnCtx {
	c := d.ctxPool.Get().(*txnCtx)
	invariant.PoolGot("dora.getCtx", c)
	c.canceled.Store(false)
	c.firstErr = nil
	c.commitLSN = wal.NilLSN
	c.finished = false
	clear(c.touched)
	return c
}

// putCtx recycles c. Only legal once pending has drained to zero: no
// executor may still hold a reference.
func (d *Engine) putCtx(c *txnCtx) {
	c.tx = nil
	invariant.PoolPut("dora.putCtx", c)
	d.ctxPool.Put(c)
}

// arm starts (or restarts) the context's reusable timeout timer.
func (c *txnCtx) arm(d time.Duration) <-chan time.Time {
	if c.timer == nil {
		c.timer = time.NewTimer(d)
	} else {
		c.timer.Reset(d)
	}
	return c.timer.C
}

func (c *txnCtx) setErr(err error) {
	c.errMu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.errMu.Unlock()
}

func (c *txnCtx) loadErr() error {
	c.errMu.Lock()
	err := c.firstErr
	c.errMu.Unlock()
	return err
}

// actionDone reports one cross-path action's outcome; the reply that
// empties the countdown wakes the coordinator. The buffered send
// never blocks: at most one zero transition happens per armed phase.
func (c *txnCtx) actionDone(err error) {
	if err != nil {
		c.setErr(err)
	}
	if c.pending.Add(-1) == 0 {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
}

// wholeDone is the fast path's single authoritative reply. finished
// reports whether the executor retired the core transaction itself
// (commit or abort); if not, the coordinator still owns an active
// transaction and must abort it. lsn carries the commit record
// position when the coordinator owes a durability wait.
func (c *txnCtx) wholeDone(err error, finished bool, lsn wal.LSN) {
	c.firstErr = err
	c.finished = finished
	c.commitLSN = lsn
	if c.pending.Add(-1) == 0 {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
}

// touch marks executor id in the context's bitmask.
func (c *txnCtx) touch(id int) {
	c.touched[id>>6] |= 1 << (uint(id) & 63)
}

// forEachTouched visits the marked executor ids in ascending order.
func (c *txnCtx) forEachTouched(fn func(id int)) {
	for w, word := range c.touched {
		for word != 0 {
			fn(w<<6 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// Exec runs a decomposed transaction. A transaction confined to one
// executor ships whole (fast path); otherwise each phase's actions
// execute in parallel on their owning executors with a rendezvous
// point (barrier) between phases. The transaction commits when every
// phase succeeded and aborts otherwise.
func (d *Engine) Exec(phases []Phase) error {
	if d.closed.Load() {
		return ErrClosed
	}
	home, n := -1, 0
	single := true
	for _, ph := range phases {
		for _, a := range ph {
			id := d.Route(a.Table, a.Key)
			if home == -1 {
				home = id
			} else if id != home {
				single = false
			}
			n++
		}
	}
	if n == 0 {
		return nil
	}
	if single {
		if n == 1 {
			for _, ph := range phases {
				if len(ph) == 1 {
					return d.ExecSingle(ph[0])
				}
			}
		}
		return d.runWholeTxn(home, job{kind: jobTxn, phases: phases}, n)
	}
	return d.execCross(phases)
}

// ExecSingle is the fast path for one-action transactions (the bulk
// of OLTP): the action ships as a whole-transaction job with no
// phase-slice indirection and no allocation beyond the pools.
func (d *Engine) ExecSingle(a Action) error {
	if d.closed.Load() {
		return ErrClosed
	}
	return d.runWholeTxn(d.Route(a.Table, a.Key), job{
		kind: jobTxn,
		key:  lockKey{table: a.Table.ID, key: a.Key},
		fn:   a.Fn,
	}, 1)
}

// runWholeTxn submits a whole single-partition transaction to its
// owning executor and waits for the authoritative reply. The executor
// runs every action and the commit-record append; the coordinator
// only waits for durability (CommitWait), keeping the executor free
// to serve its partition while the group commit flushes.
func (d *Engine) runWholeTxn(home int, j job, n int) error {
	c := d.getCtx()
	c.tx = d.core.BeginNoLock()
	tx := c.tx
	tx.SetPath(obs.PathDoraSingle)
	c.pending.Store(1)
	j.ctx = c
	j.tid = tx.ID()
	j.enq = obs.Now()
	if !d.exec[home].queue.Put(j) {
		// Closed before the job was accepted; nothing ran.
		d.putCtx(c)
		if aerr := tx.Abort(); aerr != nil {
			return fmt.Errorf("dora: abort after %v: %w", ErrClosed, aerr)
		}
		return ErrClosed
	}
	d.singleTxns.Inc()
	timeoutC := c.arm(d.opts.LockTimeout)
	timedOut := false
	for done := false; !done; {
		select {
		case <-c.wake:
			done = true
		case <-timeoutC:
			// The job is likely parked behind a cross-partition
			// holder. Mark the transaction canceled and sweep: if the
			// job is still parked (or queued) the executor replies
			// canceled; if it already started, it runs to completion
			// and the reply reports what actually happened.
			c.canceled.Store(true)
			d.timeouts.Inc()
			timedOut = true
			d.exec[home].queue.Put(job{kind: jobCancel, tid: j.tid})
			timeoutC = nil
		}
	}
	c.timer.Stop()
	err := c.firstErr
	finished := c.finished
	lsn := c.commitLSN
	d.putCtx(c)
	if err != nil {
		if !finished {
			if aerr := tx.Abort(); aerr != nil {
				return fmt.Errorf("dora: abort after %v: %w", err, aerr)
			}
		}
		if timedOut && errors.Is(err, errCanceled) {
			return fmt.Errorf("%w (single-partition txn of %d actions)", ErrTimeout, n)
		}
		return err
	}
	if lsn != wal.NilLSN {
		return tx.CommitWait(lsn)
	}
	return nil // read-only: the executor committed it fully
}

// execCross coordinates a multi-partition transaction: fan out each
// phase, join at the pooled countdown rendezvous, then split-commit —
// the commit record is appended and the partition locks surrendered
// before the durability wait (partition-level early lock release).
func (d *Engine) execCross(phases []Phase) error {
	c := d.getCtx()
	c.tx = d.core.BeginNoLock()
	tx := c.tx
	tx.SetPath(obs.PathDoraCross)
	tid := tx.ID()
	d.crossTxns.Inc()
	var result error
	for _, ph := range phases {
		if len(ph) == 0 {
			continue
		}
		c.pending.Store(int32(len(ph)))
		for i, a := range ph {
			id := d.Route(a.Table, a.Key)
			c.touch(id)
			ok := d.exec[id].queue.Put(job{
				kind: jobAction,
				ctx:  c,
				tid:  tid,
				key:  lockKey{table: a.Table.ID, key: a.Key},
				fn:   a.Fn,
				enq:  obs.Now(),
			})
			if !ok {
				// Engine closed mid-submission: account for this and
				// every unsent sibling ourselves so the countdown
				// still drains to zero.
				c.canceled.Store(true)
				for range ph[i:] {
					c.actionDone(ErrClosed)
				}
				break
			}
		}
		timeoutC := c.arm(d.opts.LockTimeout)
		for done := false; !done; {
			select {
			case <-c.wake:
				done = true
			case <-timeoutC:
				// Likely a cross-partition deadlock. Cancel the
				// transaction and sweep its parked actions out of the
				// executors' waiting lists: parked actions never
				// touched data, so removing them breaks the wait
				// cycle without exposing uncommitted state. Every
				// outstanding action then reports in — swept and
				// still-queued ones as canceled, running ones when
				// their body returns — so the countdown drains fully.
				c.canceled.Store(true)
				d.timeouts.Inc()
				c.setErr(fmt.Errorf("%w (phase of %d actions)", ErrTimeout, len(ph)))
				c.forEachTouched(func(id int) {
					d.exec[id].queue.Put(job{kind: jobCancel, tid: tid})
				})
				timeoutC = nil
			}
		}
		c.timer.Stop()
		d.rvps.Inc()
		if err := c.loadErr(); err != nil {
			c.canceled.Store(true)
			result = err
			break
		}
	}
	if result == nil {
		lsn, err := tx.CommitAsync()
		switch {
		case err != nil:
			result = err // still active; abort below
		case lsn == wal.NilLSN:
			d.releaseTouched(c, tid) // read-only: fully committed
			d.putCtx(c)
			return nil
		default:
			// Commit record is in the log: surrender the partition
			// locks now, wait durability after (early lock release at
			// partition granularity).
			d.releaseTouched(c, tid)
			err := tx.CommitWait(lsn)
			d.putCtx(c)
			return err
		}
	}
	if aerr := tx.Abort(); aerr != nil {
		result = fmt.Errorf("dora: abort after %v: %w", result, aerr)
	}
	d.releaseTouched(c, tid)
	d.putCtx(c)
	return result
}

// releaseTouched surrenders the transaction's partition-local locks;
// parked actions of other transactions resume behind these control
// messages. A Put refused by a closing queue is fine: the executor's
// exit sweep cancels whatever was parked behind the locks.
func (d *Engine) releaseTouched(c *txnCtx, tid uint64) {
	c.forEachTouched(func(id int) {
		d.exec[id].queue.Put(job{kind: jobRelease, tid: tid})
	})
}

// Close stops the executors. In-flight Exec calls complete or return
// ErrClosed; every accepted job is drained before the executors exit.
func (d *Engine) Close() {
	if d.closed.Swap(true) {
		return
	}
	unregister(d)
	for _, ex := range d.exec {
		ex.queue.Close()
	}
	d.wg.Wait()
}
