// Package dora implements Data-ORiented Architecture transaction
// execution: instead of assigning a worker thread to a transaction
// and letting it roam over shared data through the centralized lock
// manager ("thread-to-transaction"), the key space of every table is
// split into logical partitions, each owned by exactly one executor
// goroutine ("thread-to-data"). A transaction is decomposed into
// actions, each routed to the executor owning the data it touches;
// rendezvous points separate phases whose actions depend on earlier
// results. Because an executor serializes all actions on its
// partition, no lock-table interaction is needed at all — the
// decoupling of transaction data access from process assignment the
// paper calls for.
//
// Isolation: each executor keeps a *local* lock table over its
// routing keys (see locallock.go) and holds a transaction's keys
// until its commit or abort, so arbitrary multi-phase transactions
// are serializable — strict two-phase locking at partition
// granularity, with no shared lock-manager state whatsoever.
// Cross-partition deadlocks are broken by the coordinator's
// rendezvous timeout.
package dora

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/core"
)

// Action is one unit of a decomposed transaction: work against a
// single routing key of a single table.
type Action struct {
	// Table routes the action (with Key) to an executor.
	Table *core.Table
	// Key is the routing key: the primary key the action touches.
	Key uint64
	// Fn runs on the owning executor. It must confine its data access
	// to keys that route identically to Key (same table, same key
	// family under Options.RouteShift).
	Fn func(tx *core.Txn) error
}

// Phase is a set of actions with no mutual dependencies; a rendezvous
// point follows each phase.
type Phase []Action

// Options configures a DORA engine.
type Options struct {
	// Executors is the number of partition-owning goroutines.
	// Default GOMAXPROCS-style 8.
	Executors int
	// QueueDepth is each executor's action queue capacity. Default 128.
	QueueDepth int
	// LockTimeout bounds an action's wait for a partition-local lock;
	// expiry cancels the transaction (the cross-partition deadlock
	// breaker). Default 2s.
	LockTimeout time.Duration
	// RouteShift coarsens routing: keys are shifted right by this
	// many bits before hashing, so each partition owns aligned key
	// families of size 2^RouteShift. Workloads whose transactions
	// scan a small aligned range (e.g. TATP call-forwarding rows of
	// one subscriber) set it so the whole range co-locates. Default 0.
	RouteShift uint
}

func (o *Options) fill() {
	if o.Executors <= 0 {
		o.Executors = 8
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 128
	}
	if o.LockTimeout <= 0 {
		o.LockTimeout = 2 * time.Second
	}
}

// Engine dispatches decomposed transactions over partition executors.
type Engine struct {
	core *core.Engine
	opts Options
	exec []*executor

	closed atomic.Bool
	wg     sync.WaitGroup

	executed   atomic.Uint64 // actions executed
	rvps       atomic.Uint64 // rendezvous points crossed
	localWaits atomic.Uint64 // actions parked on a partition-local lock
	timeouts   atomic.Uint64 // transactions canceled at a rendezvous
}

type jobKind int

const (
	jobAction jobKind = iota
	jobRelease
	jobCancel
)

type job struct {
	kind jobKind
	txn  *txnCtx
	key  lockKey
	fn   func(tx *core.Txn) error
	done chan<- error
}

type executor struct {
	id    int
	queue chan job
}

// New starts the executor set over a core engine.
func New(c *core.Engine, opts Options) *Engine {
	opts.fill()
	d := &Engine{core: c, opts: opts}
	for i := 0; i < opts.Executors; i++ {
		ex := &executor{id: i, queue: make(chan job, opts.QueueDepth)}
		d.exec = append(d.exec, ex)
		d.wg.Add(1)
		go d.run(ex)
	}
	return d
}

func (d *Engine) run(ex *executor) {
	defer d.wg.Done()
	ls := newLocalState()
	for j := range ex.queue {
		d.dispatch(ls, j)
	}
}

// Route returns the executor index owning (table, key). Partitioning
// is by hash of the key family (key >> RouteShift), so a table's rows
// spread across all executors while aligned families co-locate.
func (d *Engine) Route(table *core.Table, key uint64) int {
	h := (uint64(table.ID)<<32 ^ (key >> d.opts.RouteShift)) * 0x9e3779b97f4a7c15
	return int(h % uint64(len(d.exec)))
}

// Errors returned by Exec.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("dora: engine closed")
	// ErrTimeout cancels a transaction whose action waited too long
	// for a partition-local lock (the deadlock breaker).
	ErrTimeout = errors.New("dora: local lock wait timed out")
	// errCanceled is delivered to parked actions of a transaction the
	// coordinator already gave up on.
	errCanceled = errors.New("dora: transaction canceled")
)

// Exec runs a decomposed transaction: each phase's actions execute in
// parallel on their owning executors, with a rendezvous point (barrier)
// between phases; the transaction commits when every phase succeeded
// and aborts otherwise.
func (d *Engine) Exec(phases []Phase) error {
	if d.closed.Load() {
		return ErrClosed
	}
	dtx := &txnCtx{tx: d.core.BeginNoLock()}
	touched := make(map[int]bool)
	finish := func(result error) error {
		// Surrender the transaction's partition-local locks; parked
		// actions of other transactions resume behind this control
		// message.
		for id := range touched {
			d.exec[id].queue <- job{kind: jobRelease, txn: dtx}
		}
		return result
	}
	for _, ph := range phases {
		done := make(chan error, len(ph))
		for _, a := range ph {
			id := d.Route(a.Table, a.Key)
			touched[id] = true
			d.exec[id].queue <- job{
				kind: jobAction,
				txn:  dtx,
				key:  lockKey{table: a.Table.ID, key: a.Key},
				fn:   a.Fn,
				done: done,
			}
		}
		var firstErr error
		timeout := time.NewTimer(d.opts.LockTimeout)
		timeoutC := timeout.C
		for pending := len(ph); pending > 0; {
			select {
			case err := <-done:
				pending--
				if err != nil && firstErr == nil {
					firstErr = err
				}
			case <-timeoutC:
				// Likely a cross-partition deadlock. Cancel the
				// transaction and sweep its parked actions out of the
				// executors' waiting lists: parked actions never
				// touched data, so removing them breaks the wait
				// cycle without exposing uncommitted state. Every
				// outstanding action then reports in — swept and
				// still-queued ones as canceled, running ones when
				// their body returns — so the loop drains fully.
				dtx.canceled.Store(true)
				d.timeouts.Add(1)
				if firstErr == nil {
					firstErr = fmt.Errorf("%w (phase of %d actions)", ErrTimeout, len(ph))
				}
				for id := range touched {
					d.exec[id].queue <- job{kind: jobCancel, txn: dtx, done: done}
				}
				timeoutC = nil
			}
		}
		timeout.Stop()
		d.rvps.Add(1)
		if firstErr != nil {
			dtx.canceled.Store(true)
			if aerr := dtx.tx.Abort(); aerr != nil {
				return finish(fmt.Errorf("dora: abort after %v: %w", firstErr, aerr))
			}
			return finish(firstErr)
		}
	}
	return finish(dtx.tx.Commit())
}

// ExecSingle is the fast path for one-action transactions (the bulk
// of OLTP): no barrier allocation beyond the reply channel.
func (d *Engine) ExecSingle(a Action) error {
	return d.Exec([]Phase{{a}})
}

// Stats reports executor activity.
type Stats struct {
	ActionsExecuted   uint64
	RendezvousCrossed uint64
}

// StatsSnapshot returns cumulative counters.
func (d *Engine) StatsSnapshot() Stats {
	return Stats{ActionsExecuted: d.executed.Load(), RendezvousCrossed: d.rvps.Load()}
}

// Close drains and stops the executors. In-flight Exec calls must
// have returned.
func (d *Engine) Close() {
	if d.closed.Swap(true) {
		return
	}
	for _, ex := range d.exec {
		close(ex.queue)
	}
	d.wg.Wait()
}
