package dora

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/core"
)

// TestStressMixedPaths mixes fast-path, cross-partition, and
// timeout-canceled transactions over few executors with tiny inbox
// depths, so queue-full blocking, deadlock timeouts, and pooled-context
// recycling all fire under load (run with -race). Every committed
// transaction's increments are counted after Exec returns, so the
// final counter values detect both lost updates and phantom commits
// (a transaction that reported failure but actually committed).
func TestStressMixedPaths(t *testing.T) {
	c, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl, _ := c.CreateTable("t")
	d := New(c, Options{Executors: 2, QueueDepth: 4, LockTimeout: 250 * time.Millisecond})
	defer d.Close()
	k1, k2 := crossKeys(t, d, tbl)
	for _, k := range []uint64{k1, k2} {
		k := k
		if err := d.ExecSingle(Action{Table: tbl, Key: k, Fn: func(tx *core.Txn) error {
			return tx.Insert(tbl, k, enc(0))
		}}); err != nil {
			t.Fatal(err)
		}
	}
	inc := func(key uint64) func(tx *core.Txn) error {
		return func(tx *core.Txn) error {
			v, err := tx.ReadForUpdate(tbl, key)
			if err != nil {
				return err
			}
			return tx.Update(tbl, key, enc(dec(v)+1))
		}
	}
	const workers, iters = 6, 50
	var k1Incs, k2Incs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var err error
				var dk1, dk2 int64
				switch (w + i) % 3 {
				case 0: // single-partition fast path on the hot key
					err = d.ExecSingle(Action{Table: tbl, Key: k1, Fn: inc(k1)})
					dk1 = 1
				case 1: // one-phase cross-partition: both keys at once
					err = d.Exec([]Phase{{
						{Table: tbl, Key: k1, Fn: inc(k1)},
						{Table: tbl, Key: k2, Fn: inc(k2)},
					}})
					dk1, dk2 = 1, 1
				case 2: // two-phase, opposite lock order: deadlock fodder
					err = d.Exec([]Phase{
						{{Table: tbl, Key: k2, Fn: inc(k2)}},
						{{Table: tbl, Key: k1, Fn: inc(k1)}},
					})
					dk1, dk2 = 1, 1
				}
				if err == nil {
					k1Incs.Add(dk1)
					k2Incs.Add(dk2)
				} else if !errors.Is(err, ErrTimeout) {
					t.Errorf("worker %d iter %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	c.Exec(func(tx *core.Txn) error {
		v1, err := tx.Read(tbl, k1)
		if err != nil {
			return err
		}
		v2, err := tx.Read(tbl, k2)
		if err != nil {
			return err
		}
		if dec(v1) != uint64(k1Incs.Load()) || dec(v2) != uint64(k2Incs.Load()) {
			t.Fatalf("counter drift: k1=%d want %d, k2=%d want %d",
				dec(v1), k1Incs.Load(), dec(v2), k2Incs.Load())
		}
		return nil
	})
	st := d.StatsSnapshot()
	if st.SinglePartition == 0 || st.CrossPartition == 0 {
		t.Fatalf("stress did not exercise both paths: %+v", st)
	}
}

// TestCanceledParkedActionNeverRuns pins the cancel-sweep guarantee:
// once a timed-out transaction's parked actions are swept from an
// executor's waiting list, their bodies never execute — not even when
// the blocking holder later releases the keys.
func TestCanceledParkedActionNeverRuns(t *testing.T) {
	c, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl, _ := c.CreateTable("t")
	d := New(c, Options{Executors: 4, LockTimeout: 150 * time.Millisecond})
	defer d.Close()
	k1, k2 := crossKeys(t, d, tbl)
	if err := d.Exec([]Phase{{
		{Table: tbl, Key: k1, Fn: func(tx *core.Txn) error { return tx.Insert(tbl, k1, enc(0)) }},
		{Table: tbl, Key: k2, Fn: func(tx *core.Txn) error { return tx.Insert(tbl, k2, enc(0)) }},
	}}); err != nil {
		t.Fatal(err)
	}

	// Txn A grabs both keys cross-partition; its k2 action blocks on
	// the gate so the phase never completes while we probe. Txn B then
	// touches the same keys: its k1 action parks behind A's local lock
	// and its k2 action queues behind A's blocked executor. B times
	// out; the cancel sweep must guarantee neither body ever runs.
	gate := make(chan struct{})
	readyA := make(chan struct{}, 2)
	aDone := make(chan error, 1)
	go func() {
		aDone <- d.Exec([]Phase{{
			{Table: tbl, Key: k1, Fn: func(tx *core.Txn) error {
				readyA <- struct{}{}
				return tx.Update(tbl, k1, enc(1))
			}},
			{Table: tbl, Key: k2, Fn: func(tx *core.Txn) error {
				readyA <- struct{}{}
				<-gate
				return tx.Update(tbl, k2, enc(1))
			}},
		}})
	}()
	<-readyA
	<-readyA // both of A's actions dispatched; k1 and k2 locked by A

	var ran1, ran2 atomic.Int64
	bDone := make(chan error, 1)
	go func() {
		bDone <- d.Exec([]Phase{{
			{Table: tbl, Key: k1, Fn: func(*core.Txn) error { ran1.Add(1); return nil }},
			{Table: tbl, Key: k2, Fn: func(*core.Txn) error { ran2.Add(1); return nil }},
		}})
	}()

	// Both A and B will trip the lock timeout (A's gated action
	// outlives it too). Wait until both timeouts have fired and B's
	// parked action has therefore been swept, then open the gate.
	deadline := time.Now().Add(10 * time.Second)
	for d.StatsSnapshot().Timeouts < 2 {
		if time.Now().After(deadline) {
			t.Fatal("timeouts never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)

	if err := <-bDone; !errors.Is(err, ErrTimeout) {
		t.Fatalf("B: want timeout, got %v", err)
	}
	if err := <-aDone; err != nil && !errors.Is(err, ErrTimeout) {
		t.Fatalf("A: %v", err)
	}
	if n1, n2 := ran1.Load(), ran2.Load(); n1 != 0 || n2 != 0 {
		t.Fatalf("canceled actions executed after sweep: k1 body %d times, k2 body %d times", n1, n2)
	}
	// Liveness: the partitions serve new transactions afterwards.
	if err := d.ExecSingle(Action{Table: tbl, Key: k1, Fn: func(tx *core.Txn) error {
		return tx.Update(tbl, k1, enc(7))
	}}); err != nil {
		t.Fatalf("partition wedged after cancel sweep: %v", err)
	}
}

// TestCloseUnderLoad closes the engine while workers are mid-Exec:
// every call must return nil or ErrClosed — never panic on a closed
// inbox, never hang on a countdown that cannot drain.
func TestCloseUnderLoad(t *testing.T) {
	c, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tbl, _ := c.CreateTable("t")
	d := New(c, Options{Executors: 2, QueueDepth: 2})
	k1, k2 := crossKeys(t, d, tbl)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := uint64(w*1000 + i%50)
				var err error
				if i%4 == 0 {
					err = d.Exec([]Phase{{
						{Table: tbl, Key: k1, Fn: func(*core.Txn) error { return nil }},
						{Table: tbl, Key: k2, Fn: func(*core.Txn) error { return nil }},
					}})
				} else {
					err = d.ExecSingle(Action{Table: tbl, Key: key, Fn: func(tx *core.Txn) error {
						_, rerr := tx.Read(tbl, key)
						if errors.Is(rerr, core.ErrNotFound) {
							return tx.Insert(tbl, key, enc(1))
						}
						return rerr
					}})
				}
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	d.Close()
	close(stop)
	wg.Wait()
	if err := d.ExecSingle(Action{Table: tbl, Key: 1, Fn: func(*core.Txn) error { return nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close: %v", err)
	}
}
