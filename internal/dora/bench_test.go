package dora

import (
	"sync/atomic"
	"testing"

	"hydra/internal/core"
)

func benchEngine(b *testing.B, executors int) (*Engine, *core.Engine, *core.Table) {
	b.Helper()
	c, err := core.Open(core.Scalable())
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := c.CreateTable("t")
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Exec(func(tx *core.Txn) error {
		for k := uint64(0); k < 4096; k++ {
			if err := tx.Insert(tbl, k, enc(k)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		b.Fatal(err)
	}
	d := New(c, Options{Executors: executors})
	b.Cleanup(func() {
		d.Close()
		c.Close()
	})
	return d, c, tbl
}

// BenchmarkDoraExecSingle measures the single-partition fast path:
// one read-modify-write action shipped whole to its owning executor.
// The allocs/op figure is the headline number of EXPERIMENTS.md E13.
func BenchmarkDoraExecSingle(b *testing.B) {
	d, _, tbl := benchEngine(b, 4)
	var key atomic.Uint64
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k := key.Add(1) % 4096
			err := d.ExecSingle(Action{Table: tbl, Key: k, Fn: func(tx *core.Txn) error {
				v, err := tx.ReadForUpdate(tbl, k)
				if err != nil {
					return err
				}
				return tx.Update(tbl, k, v)
			}})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDoraExecCross measures the coordinator path: a two-phase
// transaction whose actions land on different executors.
func BenchmarkDoraExecCross(b *testing.B) {
	d, _, tbl := benchEngine(b, 4)
	var key atomic.Uint64
	b.ResetTimer()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			k1 := key.Add(2) % 4096
			k2 := (k1 + 1) % 4096
			err := d.Exec([]Phase{
				{{Table: tbl, Key: k1, Fn: func(tx *core.Txn) error {
					_, err := tx.Read(tbl, k1)
					return err
				}}},
				{{Table: tbl, Key: k2, Fn: func(tx *core.Txn) error {
					v, err := tx.ReadForUpdate(tbl, k2)
					if err != nil {
						return err
					}
					return tx.Update(tbl, k2, v)
				}}},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
