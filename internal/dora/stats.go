package dora

import (
	"sync"

	"hydra/internal/hist"
)

// Stats reports executor activity.
type Stats struct {
	// ActionsExecuted counts action bodies run on executors.
	ActionsExecuted uint64
	// RendezvousCrossed counts phase barriers joined (cross path).
	RendezvousCrossed uint64
	// LocalWaits counts jobs parked on a partition-local lock.
	LocalWaits uint64
	// Timeouts counts transactions canceled at a rendezvous.
	Timeouts uint64
	// SinglePartition counts transactions shipped whole (fast path).
	SinglePartition uint64
	// CrossPartition counts transactions through the coordinator.
	CrossPartition uint64
	// Batches counts executor inbox drains; BatchedJobs the jobs they
	// moved. BatchedJobs/Batches is the amortization factor.
	Batches     uint64
	BatchedJobs uint64
	// QueueDepths is the instantaneous backlog per executor;
	// QueueCaps the matching inbox capacities (the flight recorder
	// compares them to detect executors pinned at capacity).
	QueueDepths []int
	QueueCaps   []int
	// Service is the distribution of action body runtimes; Wait the
	// enqueue-to-dispatch inbox delay.
	Service hist.H
	Wait    hist.H
}

// StatsSnapshot returns cumulative counters.
func (d *Engine) StatsSnapshot() Stats {
	s := Stats{
		ActionsExecuted:   d.executed.Load(),
		RendezvousCrossed: d.rvps.Load(),
		LocalWaits:        d.localWaits.Load(),
		Timeouts:          d.timeouts.Load(),
		SinglePartition:   d.singleTxns.Load(),
		CrossPartition:    d.crossTxns.Load(),
		Batches:           d.batches.Load(),
		BatchedJobs:       d.batchedJobs.Load(),
		QueueDepths:       make([]int, len(d.exec)),
		QueueCaps:         make([]int, len(d.exec)),
		Service:           d.service.Snapshot(),
		Wait:              d.wait.Snapshot(),
	}
	for i, ex := range d.exec {
		s.QueueDepths[i] = ex.queue.Len()
		s.QueueCaps[i] = ex.queue.Cap()
	}
	return s
}

// merge folds other into s (for the process-global aggregate).
func (s *Stats) merge(other Stats) {
	s.ActionsExecuted += other.ActionsExecuted
	s.RendezvousCrossed += other.RendezvousCrossed
	s.LocalWaits += other.LocalWaits
	s.Timeouts += other.Timeouts
	s.SinglePartition += other.SinglePartition
	s.CrossPartition += other.CrossPartition
	s.Batches += other.Batches
	s.BatchedJobs += other.BatchedJobs
	for i, dep := range other.QueueDepths {
		if i < len(s.QueueDepths) {
			s.QueueDepths[i] += dep
		} else {
			s.QueueDepths = append(s.QueueDepths, dep)
		}
	}
	for i, c := range other.QueueCaps {
		if i < len(s.QueueCaps) {
			s.QueueCaps[i] += c
		} else {
			s.QueueCaps = append(s.QueueCaps, c)
		}
	}
	s.Service.Merge(&other.Service)
	s.Wait.Merge(&other.Wait)
}

// The process-global engine registry, the Prometheus model the latch
// profiler already uses: the metrics endpoint is wired to a
// *core.Engine, not to whatever DORA engines the process happens to
// run, so the exposition aggregates every live engine registered
// here. New registers, Close unregisters.
var (
	regMu   sync.Mutex
	engines = map[*Engine]struct{}{}
)

func register(d *Engine) {
	regMu.Lock()
	engines[d] = struct{}{}
	regMu.Unlock()
}

func unregister(d *Engine) {
	regMu.Lock()
	delete(engines, d)
	regMu.Unlock()
}

// GlobalStats aggregates the stats of every live engine. With no
// engine running it returns zeros, so metric families stay present
// (and zero) in the exposition rather than appearing mid-flight.
func GlobalStats() Stats {
	regMu.Lock()
	list := make([]*Engine, 0, len(engines))
	for d := range engines {
		list = append(list, d)
	}
	regMu.Unlock()
	var out Stats
	for _, d := range list {
		out.merge(d.StatsSnapshot())
	}
	return out
}
