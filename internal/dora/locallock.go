package dora

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/obs"
	"hydra/internal/wal"
)

// Per-partition local locking, the full DORA design: each executor
// owns a private lock table over its routing keys. A cross-partition
// action whose key is held by another transaction parks in the
// executor's waiting list — the executor itself never blocks — and
// runs when the holder commits or aborts (strict two-phase at
// partition granularity). Because local lock tables are touched by
// exactly one goroutine, they need no synchronization at all: the
// centralized lock-manager critical section simply ceases to exist.
//
// Whole single-partition transactions (jobTxn) never register in the
// table: they run only when every key they touch is free, execute
// atomically within one dispatch, and are gone before the executor
// looks at another job — implicit locks with zero bookkeeping and
// zero release traffic.
//
// The table is keyed by the stable core-transaction id, not by the
// pooled *txnCtx: ids are never reused, so a stale release or cancel
// message can at worst refer to a transaction that no longer owns
// anything, never to a recycled context.
//
// Cross-partition deadlocks (transaction A holds k1 waiting for k2
// while B holds k2 waiting for k1) cannot be seen by any single
// executor, so they are broken by timeout at the rendezvous point:
// the coordinator cancels the transaction, and its parked actions
// complete as no-ops when eventually dequeued.

// lockKey identifies a routing key within one executor.
type lockKey struct {
	table uint32
	key   uint64
}

// localState is an executor's private lock table. Accessed only by
// the owning goroutine.
type localState struct {
	owner   map[lockKey]uint64
	waiting map[lockKey][]job
	owned   map[uint64][]lockKey
}

func newLocalState() *localState {
	return &localState{
		owner:   make(map[lockKey]uint64),
		waiting: make(map[lockKey][]job),
		owned:   make(map[uint64][]lockKey),
	}
}

// dispatch handles one incoming job on the executor goroutine.
func (d *Engine) dispatch(ls *localState, j job) {
	switch j.kind {
	case jobAction:
		d.tryRun(ls, j)
	case jobTxn:
		d.runWhole(ls, j)
	case jobRelease:
		d.release(ls, j.tid)
	case jobCancel:
		d.cancelParked(ls, j.tid)
	}
}

// runAction times and counts one action body. The service stamp also
// feeds the transaction's exec-run phase (an overlay over whatever
// lock/latch/IO phases the body itself attributes).
func (d *Engine) runAction(fn func(*core.Txn) error, tx *core.Txn) error {
	start := obs.Now()
	err := fn(tx)
	dur := obs.Now() - start
	d.service.ObserveNanos(dur)
	tx.Clock().Add(obs.PhaseExecRun, dur)
	d.executed.Inc()
	return err
}

// jobSwept replies for a job removed from a waiting list without
// running (cancel sweep or executor shutdown).
func jobSwept(w job, err error) {
	if w.kind == jobTxn {
		w.ctx.wholeDone(err, false, wal.NilLSN)
	} else {
		w.ctx.actionDone(err)
	}
}

// cancelParked removes every parked job of tid from the waiting
// lists, replying canceled for each. Parked jobs hold no locks and
// made no changes, so this is always safe — and it is the guarantee
// the regression tests pin: once swept, a canceled transaction's
// actions never execute.
func (d *Engine) cancelParked(ls *localState, tid uint64) {
	for k, queue := range ls.waiting {
		kept := queue[:0]
		for _, w := range queue {
			if w.tid == tid {
				jobSwept(w, errCanceled)
			} else {
				kept = append(kept, w)
			}
		}
		if len(kept) == 0 {
			delete(ls.waiting, k)
		} else {
			ls.waiting[k] = kept
		}
	}
}

// sweepAll cancels every parked job at executor shutdown, so no
// coordinator is left waiting on a countdown that can no longer
// drain. Runs after the inbox backlog has been fully dispatched.
func (d *Engine) sweepAll(ls *localState) {
	for k, queue := range ls.waiting {
		for _, w := range queue {
			jobSwept(w, ErrClosed)
		}
		delete(ls.waiting, k)
	}
}

// tryRun executes a cross-partition action now if its key is free or
// owned by the same transaction; otherwise it parks.
func (d *Engine) tryRun(ls *localState, j job) {
	if j.ctx.canceled.Load() {
		j.ctx.actionDone(errCanceled)
		return
	}
	if holder, held := ls.owner[j.key]; held && holder != j.tid {
		ls.waiting[j.key] = append(ls.waiting[j.key], j)
		d.localWaits.Inc()
		return
	}
	if _, held := ls.owner[j.key]; !held {
		ls.owner[j.key] = j.tid
		ls.owned[j.tid] = append(ls.owned[j.tid], j.key)
	}
	j.ctx.actionDone(d.runAction(j.fn, j.ctx.tx))
}

// blockedKey returns the first of the whole-transaction job's routing
// keys that another transaction holds, if any.
func blockedKey(ls *localState, j job) (lockKey, bool) {
	if j.fn != nil {
		if holder, held := ls.owner[j.key]; held && holder != j.tid {
			return j.key, true
		}
		return lockKey{}, false
	}
	for _, ph := range j.phases {
		for _, a := range ph {
			k := lockKey{table: a.Table.ID, key: a.Key}
			if holder, held := ls.owner[k]; held && holder != j.tid {
				return k, true
			}
		}
	}
	return lockKey{}, false
}

// runWhole executes a single-partition transaction end to end: all
// actions, then the commit-record append and immediate lock release
// (CommitAsync) — or a full abort on failure — all on the executor.
// The reply is authoritative: it tells the coordinator whether the
// core transaction was retired here and whether a durability wait is
// still owed.
func (d *Engine) runWhole(ls *localState, j job) {
	c := j.ctx
	if c.canceled.Load() {
		c.wholeDone(errCanceled, false, wal.NilLSN)
		return
	}
	// Every routing key must be free: the transaction's implicit locks
	// are the executor's undivided attention. If any key is held by a
	// cross-partition transaction, park on it and retry at release.
	if k, blocked := blockedKey(ls, j); blocked {
		ls.waiting[k] = append(ls.waiting[k], j)
		d.localWaits.Inc()
		return
	}
	tx := c.tx
	var err error
	if j.fn != nil {
		err = d.runAction(j.fn, tx)
	} else {
	run:
		for _, ph := range j.phases {
			for _, a := range ph {
				if err = d.runAction(a.Fn, tx); err != nil {
					break run
				}
			}
		}
	}
	if err == nil && c.canceled.Load() {
		// The coordinator timed out while we were queued or running;
		// honor the cancellation rather than committing behind it.
		err = errCanceled
	}
	if err != nil {
		// Roll back here, before touching any other job: the partition
		// must never see this transaction's uncommitted effects.
		if aerr := tx.Abort(); aerr != nil {
			err = fmt.Errorf("dora: abort after %v: %w", err, aerr)
		}
		c.wholeDone(err, true, wal.NilLSN)
		return
	}
	lsn, cerr := tx.CommitAsync()
	if cerr != nil {
		if aerr := tx.Abort(); aerr != nil {
			cerr = fmt.Errorf("dora: abort after %v: %w", cerr, aerr)
		}
		c.wholeDone(cerr, true, wal.NilLSN)
		return
	}
	// Committed (or, for NilLSN, fully finished read-only). The
	// coordinator completes the durability wait; this executor moves
	// straight to the next job.
	c.wholeDone(nil, true, lsn)
}

// release frees every key tid owns on this executor and runs any
// now-unblocked parked jobs.
func (d *Engine) release(ls *localState, tid uint64) {
	keys := ls.owned[tid]
	delete(ls.owned, tid)
	for _, k := range keys {
		if ls.owner[k] == tid {
			delete(ls.owner, k)
		}
	}
	// Drain waiters whose keys are now free. Running a waiter can
	// only lock keys, not release them, so one pass per freed key
	// suffices; waiters for still-held keys stay parked.
	for _, k := range keys {
		queue := ls.waiting[k]
		if len(queue) == 0 {
			delete(ls.waiting, k)
			continue
		}
		// Grant in FIFO order until a waiter of a different
		// transaction takes the lock.
		var rest []job
		for i, w := range queue {
			if holder, held := ls.owner[k]; held && holder != w.tid {
				rest = append(rest, queue[i:]...)
				break
			}
			if w.kind == jobTxn {
				d.runWhole(ls, w)
			} else {
				d.tryRun(ls, w)
			}
		}
		if len(rest) > 0 {
			ls.waiting[k] = rest
		} else {
			delete(ls.waiting, k)
		}
	}
}
