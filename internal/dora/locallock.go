package dora

import (
	"sync/atomic"

	"hydra/internal/core"
)

// Per-partition local locking, the full DORA design: each executor
// owns a private lock table over its routing keys. An action whose
// key is held by another transaction parks in the executor's waiting
// list — the executor itself never blocks — and runs when the holder
// commits or aborts (strict two-phase at partition granularity).
// Because local lock tables are touched by exactly one goroutine,
// they need no synchronization at all: the centralized lock-manager
// critical section simply ceases to exist.
//
// Cross-partition deadlocks (transaction A holds k1 waiting for k2
// while B holds k2 waiting for k1) cannot be seen by any single
// executor, so they are broken by timeout at the rendezvous point:
// the coordinator cancels the transaction, and its parked actions
// complete as no-ops when eventually dequeued.

// lockKey identifies a routing key within one executor.
type lockKey struct {
	table uint32
	key   uint64
}

// txnCtx is the coordinator-side handle shared with parked jobs.
type txnCtx struct {
	tx       *core.Txn
	canceled atomic.Bool
}

// localState is an executor's private lock table. Accessed only by
// the owning goroutine.
type localState struct {
	owner   map[lockKey]*txnCtx
	waiting map[lockKey][]job
	owned   map[*txnCtx][]lockKey
}

func newLocalState() *localState {
	return &localState{
		owner:   make(map[lockKey]*txnCtx),
		waiting: make(map[lockKey][]job),
		owned:   make(map[*txnCtx][]lockKey),
	}
}

// dispatch handles one incoming job on the executor goroutine.
func (d *Engine) dispatch(ls *localState, j job) {
	switch j.kind {
	case jobAction:
		d.tryRun(ls, j)
	case jobRelease:
		d.release(ls, j.txn)
	case jobCancel:
		d.cancelParked(ls, j.txn)
	}
}

// cancelParked removes every parked action of txn from the waiting
// lists, replying canceled for each. Parked actions hold no locks and
// made no changes, so this is always safe.
func (d *Engine) cancelParked(ls *localState, txn *txnCtx) {
	for k, queue := range ls.waiting {
		kept := queue[:0]
		for _, w := range queue {
			if w.txn == txn {
				w.done <- errCanceled
			} else {
				kept = append(kept, w)
			}
		}
		if len(kept) == 0 {
			delete(ls.waiting, k)
		} else {
			ls.waiting[k] = kept
		}
	}
}

// tryRun executes the action now if its key is free or owned by the
// same transaction; otherwise it parks.
func (d *Engine) tryRun(ls *localState, j job) {
	if j.txn.canceled.Load() {
		j.done <- errCanceled
		return
	}
	if holder, held := ls.owner[j.key]; held && holder != j.txn {
		ls.waiting[j.key] = append(ls.waiting[j.key], j)
		d.localWaits.Add(1)
		return
	}
	if _, held := ls.owner[j.key]; !held {
		ls.owner[j.key] = j.txn
		ls.owned[j.txn] = append(ls.owned[j.txn], j.key)
	}
	err := j.fn(j.txn.tx)
	d.executed.Add(1)
	j.done <- err
}

// release frees every key txn owns on this executor and runs any
// now-unblocked parked actions.
func (d *Engine) release(ls *localState, txn *txnCtx) {
	keys := ls.owned[txn]
	delete(ls.owned, txn)
	for _, k := range keys {
		if ls.owner[k] == txn {
			delete(ls.owner, k)
		}
	}
	// Drain waiters whose keys are now free. Running a waiter can
	// only lock keys, not release them, so one pass per freed key
	// suffices; waiters for still-held keys stay parked.
	for _, k := range keys {
		queue := ls.waiting[k]
		if len(queue) == 0 {
			delete(ls.waiting, k)
			continue
		}
		// Grant in FIFO order until a waiter of a different
		// transaction takes the lock.
		var rest []job
		for i, w := range queue {
			if _, held := ls.owner[k]; held && ls.owner[k] != w.txn {
				rest = append(rest, queue[i:]...)
				break
			}
			d.tryRun(ls, w)
		}
		if len(rest) > 0 {
			ls.waiting[k] = rest
		} else {
			delete(ls.waiting, k)
		}
	}
}
