package buffer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hydra/internal/latch"
	"hydra/internal/page"
)

// TestReadErrorReturnsFrameToCirculation is the regression test for
// the Fetch error path: a failed ReadPage must put the reserved frame
// back into circulation immediately, not strand it until a victim
// scan happens to pass by.
func TestReadErrorReturnsFrameToCirculation(t *testing.T) {
	p, st := newMemPool(t, 2, 1)
	ids := make([]page.ID, 4)
	for i := range ids {
		f, err := p.NewPage(page.TypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		f.Latch.Acquire(latch.Exclusive)
		f.Page.Insert([]byte{byte(i)})
		f.Latch.Release(latch.Exclusive)
		p.Unpin(f, true)
	}
	// The two frames now hold ids[2] and ids[3]; ids[0] and ids[1]
	// were evicted and live only in the store.
	bang := errors.New("disk gone")
	st.FailReads(bang)
	for round := 0; round < 5; round++ {
		for _, id := range ids[:2] {
			if _, err := p.Fetch(id); !errors.Is(err, bang) {
				t.Fatalf("round %d: err = %v, want injected error", round, err)
			}
		}
	}
	st.FailReads(nil)
	// Every failing fetch reserved a frame; if any reservation leaked,
	// pinning two pages at once would hit ErrNoFrames.
	a, err := p.Fetch(ids[0])
	if err != nil {
		t.Fatalf("fetch after heal: %v", err)
	}
	b, err := p.Fetch(ids[1])
	if err != nil {
		t.Fatalf("second fetch after heal: %v (frame lost from circulation?)", err)
	}
	for i, f := range []*Frame{a, b} {
		f.Latch.Acquire(latch.Shared)
		var got byte
		f.Page.LiveRecords(func(_ int, rec []byte) bool {
			got = rec[0]
			return false
		})
		f.Latch.Release(latch.Shared)
		if got != byte(i) {
			t.Fatalf("page %d returned content %d", i, got)
		}
		p.Unpin(f, false)
	}
}

// gatedStore blocks reads of one page id until released, counting how
// many store reads that id actually receives.
type gatedStore struct {
	*MemStore
	blockID atomic.Uint64 // +1 so zero means "nothing gated"
	entered chan struct{} // one token per blocked read that started
	release chan struct{}
	reads   atomic.Int64 // reads of the gated id
}

func (s *gatedStore) ReadPage(id page.ID, p *page.Page) error {
	if uint64(id)+1 == s.blockID.Load() {
		s.reads.Add(1)
		s.entered <- struct{}{}
		<-s.release
	}
	return s.MemStore.ReadPage(id, p)
}

// TestFetchReadOutsideShardLock verifies the two properties of the
// in-flight load protocol: a slow read does not hold the shard mutex
// (other pages in the same shard remain fetchable), and concurrent
// fetchers of the loading page coalesce onto a single store read.
func TestFetchReadOutsideShardLock(t *testing.T) {
	st := &gatedStore{
		MemStore: NewMemStore(),
		entered:  make(chan struct{}, 16),
		release:  make(chan struct{}),
	}
	p := NewPool(st, Options{Frames: 4, Shards: 1})
	ids := make([]page.ID, 6)
	for i := range ids {
		f, err := p.NewPage(page.TypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		f.Latch.Acquire(latch.Exclusive)
		f.Page.Insert([]byte{byte(i)})
		f.Latch.Release(latch.Exclusive)
		p.Unpin(f, true)
	}
	// ids[0] and ids[1] have been evicted; gate reads of ids[0].
	st.blockID.Store(uint64(ids[0]) + 1)

	fetched := func(id page.ID, want byte) func() error {
		return func() error {
			f, err := p.Fetch(id)
			if err != nil {
				return err
			}
			f.Latch.Acquire(latch.Shared)
			var got byte
			f.Page.LiveRecords(func(_ int, rec []byte) bool {
				got = rec[0]
				return false
			})
			f.Latch.Release(latch.Shared)
			p.Unpin(f, false)
			if got != want {
				t.Errorf("page %d returned content %d, want %d", id, got, want)
			}
			return nil
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs <- fetched(ids[0], 0)()
	}()
	<-st.entered // the load of ids[0] is now parked inside ReadPage

	// Property 1: the shard is not blocked. Fetching a different
	// evicted page of the same (only) shard must complete while the
	// gated read is still in flight.
	other := make(chan error, 1)
	go func() { other <- fetched(ids[1], 1)() }()
	select {
	case err := <-other:
		if err != nil {
			t.Fatalf("fetch of other page during in-flight read: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard mutex held across ReadPage: other fetch stalled")
	}

	// Property 2: late fetchers of the loading page wait on the frame,
	// not on a fresh store read.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- fetched(ids[0], 0)()
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the waiters park
	close(st.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("fetch: %v", err)
		}
	}
	if n := st.reads.Load(); n != 1 {
		t.Fatalf("gated page read %d times from the store, want 1", n)
	}
}

// gatedWriteStore blocks every WritePage while armed, reporting the
// id being written so the test learns which frame the clock chose as
// victim.
type gatedWriteStore struct {
	*MemStore
	armed   atomic.Bool
	entered chan page.ID // one token per gated write that started
	release chan struct{}
}

func (s *gatedWriteStore) WritePage(pg *page.Page) error {
	if s.armed.Load() {
		s.entered <- pg.ID()
		<-s.release
	}
	return s.MemStore.WritePage(pg)
}

// TestEvictionWriteBackOutsideShardLock is the regression test for
// the dirty-victim write-back protocol (the first real hydra-vet
// lockscope catch): evicting a dirty page must not hold the shard
// mutex across the store write. While a write-back is parked inside
// the store, a hit on another resident page of the same shard must
// complete, and a fetcher of the page being evicted must wait on the
// reservation and succeed once the eviction settles.
func TestEvictionWriteBackOutsideShardLock(t *testing.T) {
	st := &gatedWriteStore{
		MemStore: NewMemStore(),
		entered:  make(chan page.ID, 8),
		release:  make(chan struct{}),
	}
	p := NewPool(st, Options{Frames: 2, Shards: 1})
	ids := make([]page.ID, 4)
	for i := range ids {
		f, err := p.NewPage(page.TypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		f.Latch.Acquire(latch.Exclusive)
		f.Page.Insert([]byte{byte(i)})
		f.Latch.Release(latch.Exclusive)
		p.Unpin(f, true)
	}
	content := map[page.ID]byte{}
	for i, id := range ids {
		content[id] = byte(i)
	}
	fetched := func(id page.ID) func() error {
		return func() error {
			f, err := p.Fetch(id)
			if err != nil {
				return err
			}
			f.Latch.Acquire(latch.Shared)
			var got byte
			f.Page.LiveRecords(func(_ int, rec []byte) bool {
				got = rec[0]
				return false
			})
			f.Latch.Release(latch.Shared)
			p.Unpin(f, false)
			if got != content[id] {
				t.Errorf("page %d returned content %d, want %d", id, got, content[id])
			}
			return nil
		}
	}

	// The two frames hold ids[2] and ids[3], both dirty. Arm the gate
	// and force an eviction by fetching an absent page: the victim's
	// write-back parks inside WritePage with the shard lock released.
	st.armed.Store(true)
	missDone := make(chan error, 1)
	go func() { missDone <- fetched(ids[0])() }()
	victim := <-st.entered
	resident := ids[2]
	if victim == resident {
		resident = ids[3]
	}

	// Property 1: the shard is not blocked. A hit on the still-resident
	// page must complete while the write-back is in flight. (Pre-fix,
	// the write happened under the shard mutex and this stalled.)
	hit := make(chan error, 1)
	go func() { hit <- fetched(resident)() }()
	select {
	case err := <-hit:
		if err != nil {
			t.Fatalf("hit during in-flight write-back: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shard mutex held across eviction write-back: hit on resident page stalled")
	}

	// Property 2: a fetcher of the page mid-eviction waits on the
	// reservation rather than returning a frame whose content is still
	// being written out.
	victimFetch := make(chan error, 1)
	go func() { victimFetch <- fetched(victim)() }()
	time.Sleep(20 * time.Millisecond) // let it park on the shard cond
	select {
	case err := <-victimFetch:
		t.Fatalf("fetch of mid-eviction page returned early (err=%v)", err)
	default:
	}

	close(st.release)
	for _, ch := range []chan error{missDone, victimFetch} {
		if err := <-ch; err != nil {
			t.Fatalf("fetch after release: %v", err)
		}
	}
}
