package buffer

import (
	"sync/atomic"
	"testing"

	"hydra/internal/page"
)

// BenchmarkPoolFetchParallel measures concurrent Fetch/Unpin over a
// working set twice the pool size, so roughly half the fetches miss
// and go through victim selection plus a store read. Allocations per
// op expose any per-fetch bookkeeping garbage.
func BenchmarkPoolFetchParallel(b *testing.B) {
	const (
		frames = 256
		pages  = 512
		shards = 16
	)
	store := NewMemStore()
	for i := 0; i < pages; i++ {
		id, err := store.Allocate()
		if err != nil {
			b.Fatal(err)
		}
		var p page.Page
		p.Format(id, page.TypeHeap)
		if err := store.WritePage(&p); err != nil {
			b.Fatal(err)
		}
	}
	pool := NewPool(store, Options{Frames: frames, Shards: shards})
	var seq atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine xorshift stream over the page set.
		state := seq.Add(1)*0x9e3779b97f4a7c15 + 1
		for pb.Next() {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			f, err := pool.Fetch(page.ID(state % pages))
			if err != nil {
				b.Error(err)
				return
			}
			pool.Unpin(f, false)
		}
	})
}
