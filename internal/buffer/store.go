// Package buffer implements the buffer pool: the cache of database
// pages between the storage manager and stable storage. It supports a
// conventional configuration (a single shard, i.e. one global mutex —
// the classic scalability choke point) and a scalable configuration
// (hash-partitioned shards with per-shard clock replacement).
package buffer

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"hydra/internal/page"
)

// PageStore is the stable storage pages are read from and written to.
type PageStore interface {
	// ReadPage fills p with the stored image of page id.
	ReadPage(id page.ID, p *page.Page) error
	// WritePage persists p's current image.
	WritePage(p *page.Page) error
	// Allocate extends the store by one page and returns its id.
	Allocate() (page.ID, error)
	// NumPages returns the number of allocated pages.
	NumPages() (uint64, error)
	// Sync makes preceding writes durable.
	Sync() error
	// Close releases the store.
	Close() error
}

// ErrBadPage is returned when a page read fails verification.
var ErrBadPage = errors.New("buffer: page failed checksum verification")

// FileStore is a PageStore over a single file of page.Size pages.
// Page ids are file offsets divided by the page size.
type FileStore struct {
	// mu guards npages during Allocate, which extends the file while
	// holding it — allocation order and file length must agree.
	//hydra:vet:coarse -- Allocate must extend the file under the lock so page ids and file length stay consistent
	mu sync.Mutex
	f  *os.File
	n  uint64
}

// OpenFileStore opens (creating if necessary) a file-backed store.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("buffer: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%page.Size != 0 {
		f.Close()
		return nil, fmt.Errorf("buffer: %s is not page aligned (%d bytes)", path, st.Size())
	}
	return &FileStore{f: f, n: uint64(st.Size()) / page.Size}, nil
}

// ReadPage implements PageStore, verifying the checksum.
func (s *FileStore) ReadPage(id page.ID, p *page.Page) error {
	if _, err := s.f.ReadAt(p.Bytes(), int64(id)*page.Size); err != nil {
		return fmt.Errorf("buffer: read page %d: %w", id, err)
	}
	if err := p.Verify(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPage, err)
	}
	return nil
}

// WritePage implements PageStore, sealing the checksum first.
func (s *FileStore) WritePage(p *page.Page) error {
	p.Seal()
	if _, err := s.f.WriteAt(p.Bytes(), int64(p.ID())*page.Size); err != nil {
		return fmt.Errorf("buffer: write page %d: %w", p.ID(), err)
	}
	return nil
}

// Allocate implements PageStore. The new page is zeroed on disk.
func (s *FileStore) Allocate() (page.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := page.ID(s.n)
	var zero [page.Size]byte
	if _, err := s.f.WriteAt(zero[:], int64(id)*page.Size); err != nil {
		return 0, fmt.Errorf("buffer: allocate page %d: %w", id, err)
	}
	s.n++
	return id, nil
}

// NumPages implements PageStore.
func (s *FileStore) NumPages() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n, nil
}

// Sync implements PageStore.
func (s *FileStore) Sync() error { return s.f.Sync() }

// Close implements PageStore.
func (s *FileStore) Close() error { return s.f.Close() }

// MemStore is an in-memory PageStore for tests and CPU-bound
// experiments.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte
	// FailReads, when set, makes every ReadPage return this error
	// (fault injection).
	failRead error
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// FailReads arranges for subsequent reads to fail with err; pass nil
// to heal.
func (s *MemStore) FailReads(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failRead = err
}

// ReadPage implements PageStore.
func (s *MemStore) ReadPage(id page.ID, p *page.Page) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.failRead != nil {
		return s.failRead
	}
	if uint64(id) >= uint64(len(s.pages)) {
		return fmt.Errorf("buffer: read unallocated page %d", id)
	}
	if err := p.Load(s.pages[id]); err != nil {
		return err
	}
	if err := p.Verify(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPage, err)
	}
	return nil
}

// WritePage implements PageStore.
func (s *MemStore) WritePage(p *page.Page) error {
	p.Seal()
	s.mu.Lock()
	defer s.mu.Unlock()
	id := uint64(p.ID())
	if id >= uint64(len(s.pages)) {
		return fmt.Errorf("buffer: write unallocated page %d", id)
	}
	copy(s.pages[id], p.Bytes())
	return nil
}

// Allocate implements PageStore.
func (s *MemStore) Allocate() (page.ID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pages = append(s.pages, make([]byte, page.Size))
	return page.ID(len(s.pages) - 1), nil
}

// NumPages implements PageStore.
func (s *MemStore) NumPages() (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return uint64(len(s.pages)), nil
}

// Sync implements PageStore.
func (s *MemStore) Sync() error { return nil }

// Close implements PageStore.
func (s *MemStore) Close() error { return nil }
