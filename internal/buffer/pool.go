package buffer

import (
	"errors"
	"fmt"
	"sync"

	"hydra/internal/invariant"
	"hydra/internal/latch"
	"hydra/internal/obs"
	"hydra/internal/page"
)

// Frame is a buffer slot holding one resident page. Content access
// must be bracketed by Latch acquisition; residency (pin/unpin) is
// managed by the pool.
type Frame struct {
	Page  *page.Page
	Latch latch.Latch

	id    page.ID // current occupant; pool-internal, guarded by shard mutex
	pins  int32
	ref   bool // clock reference bit
	dirty bool
	// loading marks in-flight store IO on the frame: a read filling it
	// on a miss, or the write-back evicting its dirty occupant.
	// Concurrent fetchers of the page wait on the shard condition
	// variable instead of blocking the whole shard; victim scans skip
	// the frame (it is also pinned for the duration). Guarded by the
	// shard mutex. No allocation per miss: waiters park on shard.cond.
	loading bool
	// recLSN is the LSN of the first update that dirtied the page
	// since it was last flushed; feeds the dirty-page table at
	// checkpoints.
	recLSN uint64
}

// ID returns the id of the page currently in the frame.
func (f *Frame) ID() page.ID { return f.id }

// Options configures a Pool.
type Options struct {
	// Frames is the pool capacity in pages. Default 1024.
	Frames int
	// Shards partitions the pool; 1 reproduces the conventional
	// single-mutex design. Default 16.
	Shards int
	// LatchKind selects the per-frame latch implementation.
	LatchKind latch.Kind
	// FlushLog, when set, is invoked with a page's LSN before that
	// page is written back (the WAL rule). It must block until the
	// log is durable up to that LSN.
	FlushLog func(pageLSN uint64) error
}

func (o *Options) fill() {
	if o.Frames <= 0 {
		o.Frames = 1024
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.Shards > o.Frames {
		o.Shards = o.Frames
	}
}

// Stats are cumulative pool counters.
type Stats struct {
	Hits, Misses, Evictions, Writebacks uint64
}

// ErrNoFrames is returned when every frame in the target shard is
// pinned and no victim exists.
var ErrNoFrames = errors.New("buffer: all frames pinned")

// Pool is the buffer pool.
type Pool struct {
	opts   Options
	store  PageStore
	shards []shard

	// Striped counters: hits in particular are bumped by every reader
	// on the Fetch fast path, so a single shared word would serialize
	// the very path the sharded table decentralizes.
	hits, misses, evictions, writebacks obs.Counter
}

type shard struct {
	mu sync.Mutex
	// cond (Wait releases mu) is broadcast whenever in-flight frame IO
	// settles: fetchers of a loading page and victim scans starved by
	// transient IO pins park here.
	cond   sync.Cond
	table  map[page.ID]*Frame
	frames []*Frame
	hand   int
	// ioBusy counts frames with loading set. A victim scan that comes
	// up empty while ioBusy > 0 waits and rescans instead of reporting
	// a spurious ErrNoFrames.
	ioBusy int
	_      [32]byte // avoid false sharing between shard headers
}

// NewPool creates a pool of opts.Frames frames over store.
func NewPool(store PageStore, opts Options) *Pool {
	opts.fill()
	p := &Pool{opts: opts, store: store, shards: make([]shard, opts.Shards)}
	for i := range p.shards {
		p.shards[i].table = make(map[page.ID]*Frame)
		p.shards[i].cond.L = &p.shards[i].mu
	}
	for i := 0; i < opts.Frames; i++ {
		f := &Frame{Page: &page.Page{}, Latch: latch.New(opts.LatchKind), id: page.InvalidID}
		s := &p.shards[i%opts.Shards]
		s.frames = append(s.frames, f)
	}
	return p
}

func (p *Pool) shardFor(id page.ID) *shard {
	// Fibonacci hashing spreads sequential ids across shards.
	h := uint64(id) * 0x9e3779b97f4a7c15
	return &p.shards[h%uint64(len(p.shards))]
}

// Fetch pins the page with the given id, reading it from the store on
// a miss, and returns its frame. The caller must Unpin exactly once.
// Content access requires acquiring the frame latch.
//
// All store IO happens outside the shard mutex. On a miss the frame is
// reserved (pinned, tabled, marked loading) under the lock, then
// filled without it, so one slow read stalls only fetchers of that
// page, not the whole shard. Evicting a dirty victim follows the same
// shape: the victim is reserved under the lock and written back
// outside it (see victimLocked).
func (p *Pool) Fetch(id page.ID) (*Frame, error) { return p.fetch(id, nil) }

// FetchC is Fetch with a phase clock: contended shard-mutex
// acquisition is attributed to the latch-wait phase, and miss-path
// work (store read, dirty-victim write-back, waiting out another
// fetcher's in-flight IO) to the buffer-miss phase. The hit path with
// an uncontended shard mutex performs no clock reads; a nil clock
// makes FetchC identical to Fetch.
func (p *Pool) FetchC(id page.ID, c *obs.PhaseClock) (*Frame, error) {
	return p.fetch(id, c)
}

// lockShard takes the shard mutex, feeding contended acquisition time
// to the clock's latch-wait phase via a try-first probe.
//
//hydra:vet:nonpropagating -- returns holding s.mu for the caller's critical section
func lockShard(s *shard, c *obs.PhaseClock) {
	ps := obs.LatchStart(obs.TierPoolShard)
	if c == nil {
		s.mu.Lock()
	} else if !s.mu.TryLock() {
		t0 := obs.Now()
		s.mu.Lock()
		c.Add(obs.PhaseLatchWait, obs.Now()-t0)
	}
	obs.LatchDone(obs.TierPoolShard, ps)
	invariant.Acquired(invariant.TierPoolShard, "buffer.shard.mu")
}

func (p *Pool) fetch(id page.ID, c *obs.PhaseClock) (*Frame, error) {
	s := p.shardFor(id)
	lockShard(s, c)
	for {
		if f, ok := s.table[id]; ok {
			if f.loading {
				// In-flight IO on this entry: another fetcher's read
				// fill, or the write-back evicting the page. Wait for
				// it to settle and re-examine: a completed fill is a
				// hit; a completed eviction or failed fill leaves no
				// entry and this fetcher (re)reads the page itself.
				if c != nil {
					t0 := obs.Now()
					s.cond.Wait()
					c.Add(obs.PhaseBufMissIO, obs.Now()-t0)
				} else {
					s.cond.Wait()
				}
				continue
			}
			f.pins++
			f.ref = true
			invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
			s.mu.Unlock()
			p.hits.Add(1)
			return f, nil
		}
		p.misses.Add(1)
		f, needsWB, err := p.victimLocked(s, c)
		if err != nil {
			invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
			s.mu.Unlock()
			return nil, err
		}
		if needsWB {
			invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
			s.mu.Unlock()
			werr := p.flushFrameC(f, c)
			s.mu.Lock()
			invariant.Acquired(invariant.TierPoolShard, "buffer.shard.mu")
			p.evictReserved(s, f, werr)
			if werr != nil {
				invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
				s.mu.Unlock()
				return nil, werr
			}
			if _, ok := s.table[id]; ok {
				// Another fetcher tabled the target while the victim
				// write-back was in flight. Hand the frame back to
				// circulation and take the hit path.
				f.pins = 0
				f.ref = false
				s.cond.Broadcast()
				continue
			}
		}
		f.id = id
		f.pins = 1 // reservation: excludes the frame from victim scans
		f.ref = true
		f.dirty = false
		f.recLSN = 0
		f.loading = true
		s.ioBusy++
		s.table[id] = f
		invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
		s.mu.Unlock()

		if c != nil {
			t0 := obs.Now()
			err = p.store.ReadPage(id, f.Page)
			c.Add(obs.PhaseBufMissIO, obs.Now()-t0)
		} else {
			err = p.store.ReadPage(id, f.Page)
		}

		s.mu.Lock()
		invariant.Acquired(invariant.TierPoolShard, "buffer.shard.mu")
		f.loading = false
		s.ioBusy--
		if err != nil {
			// Return the frame to circulation explicitly: drop the
			// table entry and clear occupancy so the next victim scan
			// can reuse it immediately.
			delete(s.table, id)
			f.id = page.InvalidID
			f.pins = 0
			f.ref = false
		}
		s.cond.Broadcast()
		invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		return f, nil
	}
}

// NewPage allocates a fresh page in the store, formats it with the
// given type, pins it, and returns its frame.
func (p *Pool) NewPage(t page.Type) (*Frame, error) { return p.newPage(t, nil) }

// NewPageC is NewPage with a phase clock (see FetchC for the
// attribution rules).
func (p *Pool) NewPageC(t page.Type, c *obs.PhaseClock) (*Frame, error) {
	return p.newPage(t, c)
}

func (p *Pool) newPage(t page.Type, c *obs.PhaseClock) (*Frame, error) {
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	s := p.shardFor(id)
	lockShard(s, c)
	f, needsWB, err := p.victimLocked(s, c)
	if err != nil {
		invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
		s.mu.Unlock()
		return nil, err
	}
	if needsWB {
		invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
		s.mu.Unlock()
		werr := p.flushFrameC(f, c)
		s.mu.Lock()
		invariant.Acquired(invariant.TierPoolShard, "buffer.shard.mu")
		p.evictReserved(s, f, werr)
		if werr != nil {
			invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
			s.mu.Unlock()
			return nil, werr
		}
		// No table recheck needed: id was freshly allocated, so no
		// concurrent fetcher can have tabled it meanwhile.
	}
	f.Page.Format(id, t)
	f.id = id
	f.pins = 1
	f.ref = true
	f.dirty = true // a formatted page must reach disk eventually
	f.recLSN = 0
	s.table[id] = f
	invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
	s.mu.Unlock()
	return f, nil
}

// victimLocked returns an evictable frame in s. A clean (or empty)
// victim comes back detached — table entry and occupancy already
// cleared — with needsWriteBack false. A dirty victim cannot be
// written back here, because store IO must not happen under the shard
// mutex; it is instead reserved in place: pinned and marked loading
// under its old id, so fetchers of that page wait and victim scans
// skip it. The caller must then drop s.mu, write the page out
// (flushFrame), retake s.mu, and complete or abort the eviction with
// evictReserved. Caller holds s.mu.
func (p *Pool) victimLocked(s *shard, c *obs.PhaseClock) (f *Frame, needsWriteBack bool, err error) {
	for {
		// Clock sweep: up to two full passes (first pass clears ref
		// bits).
		for pass := 0; pass < 2*len(s.frames); pass++ {
			f := s.frames[s.hand]
			s.hand = (s.hand + 1) % len(s.frames)
			if f.pins > 0 {
				continue
			}
			if f.ref {
				f.ref = false
				continue
			}
			if f.id == page.InvalidID {
				return f, false, nil
			}
			if f.dirty {
				f.pins = 1
				f.loading = true
				s.ioBusy++
				return f, true, nil
			}
			delete(s.table, f.id)
			f.id = page.InvalidID
			p.evictions.Add(1)
			return f, false, nil
		}
		if s.ioBusy == 0 {
			return nil, false, ErrNoFrames
		}
		// Every unpinned frame is tied up in transient IO (a fill or a
		// write-back that may fail and return its frame). Wait for one
		// to settle and rescan rather than reporting a spurious
		// ErrNoFrames.
		if c != nil {
			t0 := obs.Now()
			s.cond.Wait()
			c.Add(obs.PhaseBufMissIO, obs.Now()-t0)
		} else {
			s.cond.Wait()
		}
	}
}

// evictReserved completes (or, on write-back failure, aborts) the
// eviction of a dirty victim reserved by victimLocked. werr is the
// flushFrame result obtained outside the lock. On success the frame
// is detached like a clean victim but keeps its reservation pin; on
// failure it returns to circulation still dirty and tabled. Caller
// holds s.mu.
func (p *Pool) evictReserved(s *shard, f *Frame, werr error) {
	invariant.Assert(f.loading, "buffer: evictReserved on a frame that is not reserved")
	invariant.Assert(f.pins == 1, "buffer: reserved victim's pin count drifted during write-back")
	f.loading = false
	s.ioBusy--
	if werr != nil {
		f.pins = 0
		f.ref = false
		s.cond.Broadcast()
		return
	}
	f.dirty = false
	f.recLSN = 0
	p.writebacks.Add(1)
	delete(s.table, f.id)
	f.id = page.InvalidID
	p.evictions.Add(1)
	s.cond.Broadcast()
}

// flushFrame makes f's content durable: the WAL-first flush, then the
// page write. It touches no pool bookkeeping — callers clear
// dirty/recLSN under the shard mutex according to their protocol —
// and must be called with the frame's content stable (latched shared,
// or reserved and unpinned) and the shard mutex NOT held.
func (p *Pool) flushFrame(f *Frame) error { return p.flushFrameC(f, nil) }

// flushFrameC is flushFrame with the write-back time (WAL-first flush
// included) attributed to the clock's buffer-miss phase.
func (p *Pool) flushFrameC(f *Frame, c *obs.PhaseClock) error {
	var t0 int64
	if c != nil {
		t0 = obs.Now()
	}
	err := p.flushFrameIO(f)
	if c != nil {
		c.Add(obs.PhaseBufMissIO, obs.Now()-t0)
	}
	return err
}

func (p *Pool) flushFrameIO(f *Frame) error {
	if p.opts.FlushLog != nil {
		if err := p.opts.FlushLog(f.Page.LSN()); err != nil {
			return fmt.Errorf("buffer: WAL flush before writeback: %w", err)
		}
	}
	return p.store.WritePage(f.Page)
}

// Unpin releases one pin. If dirty is true the page is marked for
// writeback; recLSN records the earliest dirtying update for the
// dirty-page table.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	s := p.shardFor(f.id)
	ps := obs.LatchStart(obs.TierPoolShard)
	s.mu.Lock()
	obs.LatchDone(obs.TierPoolShard, ps)
	defer s.mu.Unlock()
	invariant.Acquired(invariant.TierPoolShard, "buffer.shard.mu")
	defer invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned page %d", f.id))
	}
	if dirty {
		if !f.dirty {
			f.dirty = true
			f.recLSN = f.Page.LSN()
		} else if f.recLSN == 0 && f.Page.LSN() != 0 {
			// The frame was born dirty (NewPage) before any logged
			// update reached it; adopt the first real LSN so the
			// dirty-page table bounds redo correctly.
			f.recLSN = f.Page.LSN()
		}
	}
	f.pins--
}

// FlushAll writes back every dirty page (checkpoint helper). Pages
// pinned by concurrent users are flushed too: their frame latch is
// taken shared to get a consistent image.
func (p *Pool) FlushAll() error {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		invariant.Acquired(invariant.TierPoolShard, "buffer.shard.mu")
		var dirty []*Frame
		for _, f := range s.frames {
			if f.id != page.InvalidID && f.dirty {
				f.pins++ // hold residency while we flush outside the shard lock
				dirty = append(dirty, f)
			}
		}
		invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
		s.mu.Unlock()
		for _, f := range dirty {
			f.Latch.Acquire(latch.Shared)
			err := p.flushFrame(f)
			// Clear the dirty flag under the shard mutex but before
			// the latch drops: the moment the latch is released a
			// writer can re-dirty the frame, and that later update
			// must not be masked by this flush's bookkeeping.
			s.mu.Lock()
			invariant.Acquired(invariant.TierPoolShard, "buffer.shard.mu")
			if err == nil {
				f.dirty = false
				f.recLSN = 0
				p.writebacks.Add(1)
			}
			f.pins--
			invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
			s.mu.Unlock()
			f.Latch.Release(latch.Shared)
			if err != nil {
				return err
			}
		}
	}
	return p.store.Sync()
}

// FlushPage writes back one pinned frame immediately (used for the
// checkpoint master record). The caller must hold a pin; the frame
// latch is taken shared for a consistent image.
func (p *Pool) FlushPage(f *Frame) error {
	f.Latch.Acquire(latch.Shared)
	defer f.Latch.Release(latch.Shared)
	err := p.flushFrame(f)
	if err == nil {
		s := p.shardFor(f.id) // id is stable: the caller holds a pin
		s.mu.Lock()
		invariant.Acquired(invariant.TierPoolShard, "buffer.shard.mu")
		f.dirty = false
		f.recLSN = 0
		p.writebacks.Add(1)
		invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
		s.mu.Unlock()
	}
	return err
}

// DirtyPageTable returns (pageID -> recLSN) for every dirty resident
// page, the DPT snapshot a fuzzy checkpoint logs.
func (p *Pool) DirtyPageTable() map[uint64]uint64 {
	dpt := make(map[uint64]uint64)
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		invariant.Acquired(invariant.TierPoolShard, "buffer.shard.mu")
		for _, f := range s.frames {
			if f.id != page.InvalidID && f.dirty {
				dpt[uint64(f.id)] = f.recLSN
			}
		}
		invariant.Released(invariant.TierPoolShard, "buffer.shard.mu")
		s.mu.Unlock()
	}
	return dpt
}

// StatsSnapshot returns a copy of the cumulative counters.
func (p *Pool) StatsSnapshot() Stats {
	return Stats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		Evictions:  p.evictions.Load(),
		Writebacks: p.writebacks.Load(),
	}
}

// Store exposes the underlying page store (used by recovery, which
// bypasses the pool).
func (p *Pool) Store() PageStore { return p.store }
