package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hydra/internal/latch"
	"hydra/internal/page"
)

// Frame is a buffer slot holding one resident page. Content access
// must be bracketed by Latch acquisition; residency (pin/unpin) is
// managed by the pool.
type Frame struct {
	Page  *page.Page
	Latch latch.Latch

	id    page.ID // current occupant; pool-internal, guarded by shard mutex
	pins  int32
	ref   bool // clock reference bit
	dirty bool
	// loading, when non-nil, marks an in-flight store read filling the
	// frame: concurrent fetchers of the same page wait on it instead of
	// blocking the whole shard. Guarded by the shard mutex.
	loading *loadState
	// recLSN is the LSN of the first update that dirtied the page
	// since it was last flushed; feeds the dirty-page table at
	// checkpoints.
	recLSN uint64
}

// ID returns the id of the page currently in the frame.
func (f *Frame) ID() page.ID { return f.id }

// loadState tracks one in-flight ReadPage. done is closed when the
// read finishes (successfully or not).
type loadState struct {
	done chan struct{}
}

// Options configures a Pool.
type Options struct {
	// Frames is the pool capacity in pages. Default 1024.
	Frames int
	// Shards partitions the pool; 1 reproduces the conventional
	// single-mutex design. Default 16.
	Shards int
	// LatchKind selects the per-frame latch implementation.
	LatchKind latch.Kind
	// FlushLog, when set, is invoked with a page's LSN before that
	// page is written back (the WAL rule). It must block until the
	// log is durable up to that LSN.
	FlushLog func(pageLSN uint64) error
}

func (o *Options) fill() {
	if o.Frames <= 0 {
		o.Frames = 1024
	}
	if o.Shards <= 0 {
		o.Shards = 16
	}
	if o.Shards > o.Frames {
		o.Shards = o.Frames
	}
}

// Stats are cumulative pool counters.
type Stats struct {
	Hits, Misses, Evictions, Writebacks uint64
}

// ErrNoFrames is returned when every frame in the target shard is
// pinned and no victim exists.
var ErrNoFrames = errors.New("buffer: all frames pinned")

// Pool is the buffer pool.
type Pool struct {
	opts   Options
	store  PageStore
	shards []shard

	hits, misses, evictions, writebacks atomic.Uint64
}

type shard struct {
	mu     sync.Mutex
	table  map[page.ID]*Frame
	frames []*Frame
	hand   int
	_      [32]byte // avoid false sharing between shard headers
}

// NewPool creates a pool of opts.Frames frames over store.
func NewPool(store PageStore, opts Options) *Pool {
	opts.fill()
	p := &Pool{opts: opts, store: store, shards: make([]shard, opts.Shards)}
	for i := range p.shards {
		p.shards[i].table = make(map[page.ID]*Frame)
	}
	for i := 0; i < opts.Frames; i++ {
		f := &Frame{Page: &page.Page{}, Latch: latch.New(opts.LatchKind), id: page.InvalidID}
		s := &p.shards[i%opts.Shards]
		s.frames = append(s.frames, f)
	}
	return p
}

func (p *Pool) shardFor(id page.ID) *shard {
	// Fibonacci hashing spreads sequential ids across shards.
	h := uint64(id) * 0x9e3779b97f4a7c15
	return &p.shards[h%uint64(len(p.shards))]
}

// Fetch pins the page with the given id, reading it from the store on
// a miss, and returns its frame. The caller must Unpin exactly once.
// Content access requires acquiring the frame latch.
//
// The store read happens outside the shard mutex: the frame is
// reserved (pinned, tabled, marked loading) under the lock, then
// filled without it, so one slow read stalls only fetchers of that
// page, not the whole shard.
func (p *Pool) Fetch(id page.ID) (*Frame, error) {
	s := p.shardFor(id)
	for {
		s.mu.Lock()
		if f, ok := s.table[id]; ok {
			if ld := f.loading; ld != nil {
				// Another fetcher is reading this page. Wait for its
				// read to settle, then re-examine the table: on success
				// the next pass hits; on failure the entry is gone and
				// this fetcher retries the read itself.
				s.mu.Unlock()
				<-ld.done
				continue
			}
			f.pins++
			f.ref = true
			s.mu.Unlock()
			p.hits.Add(1)
			return f, nil
		}
		p.misses.Add(1)
		f, err := p.victimLocked(s)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		ld := &loadState{done: make(chan struct{})}
		f.id = id
		f.pins = 1 // reservation: excludes the frame from victim scans
		f.ref = true
		f.dirty = false
		f.recLSN = 0
		f.loading = ld
		s.table[id] = f
		s.mu.Unlock()

		err = p.store.ReadPage(id, f.Page)
		s.mu.Lock()
		f.loading = nil
		if err != nil {
			// Return the frame to circulation explicitly: drop the
			// table entry and clear occupancy so the next victim scan
			// can reuse it immediately.
			delete(s.table, id)
			f.id = page.InvalidID
			f.pins = 0
			f.ref = false
		}
		s.mu.Unlock()
		close(ld.done)
		if err != nil {
			return nil, err
		}
		return f, nil
	}
}

// NewPage allocates a fresh page in the store, formats it with the
// given type, pins it, and returns its frame.
func (p *Pool) NewPage(t page.Type) (*Frame, error) {
	id, err := p.store.Allocate()
	if err != nil {
		return nil, err
	}
	s := p.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := p.victimLocked(s)
	if err != nil {
		return nil, err
	}
	f.Page.Format(id, t)
	f.id = id
	f.pins = 1
	f.ref = true
	f.dirty = true // a formatted page must reach disk eventually
	f.recLSN = 0
	s.table[id] = f
	return f, nil
}

// victimLocked returns an unoccupied or evictable frame in s,
// evicting (and writing back if dirty) as needed. Caller holds s.mu.
func (p *Pool) victimLocked(s *shard) (*Frame, error) {
	// Clock sweep: up to two full passes (first pass clears ref bits).
	for pass := 0; pass < 2*len(s.frames); pass++ {
		f := s.frames[s.hand]
		s.hand = (s.hand + 1) % len(s.frames)
		if f.pins > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		if f.id != page.InvalidID {
			if f.dirty {
				if err := p.writeBack(f); err != nil {
					return nil, err
				}
			}
			delete(s.table, f.id)
			f.id = page.InvalidID
			p.evictions.Add(1)
		}
		return f, nil
	}
	return nil, ErrNoFrames
}

func (p *Pool) writeBack(f *Frame) error {
	if p.opts.FlushLog != nil {
		if err := p.opts.FlushLog(f.Page.LSN()); err != nil {
			return fmt.Errorf("buffer: WAL flush before writeback: %w", err)
		}
	}
	if err := p.store.WritePage(f.Page); err != nil {
		return err
	}
	f.dirty = false
	f.recLSN = 0
	p.writebacks.Add(1)
	return nil
}

// Unpin releases one pin. If dirty is true the page is marked for
// writeback; recLSN records the earliest dirtying update for the
// dirty-page table.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	s := p.shardFor(f.id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: unpin of unpinned page %d", f.id))
	}
	if dirty {
		if !f.dirty {
			f.dirty = true
			f.recLSN = f.Page.LSN()
		} else if f.recLSN == 0 && f.Page.LSN() != 0 {
			// The frame was born dirty (NewPage) before any logged
			// update reached it; adopt the first real LSN so the
			// dirty-page table bounds redo correctly.
			f.recLSN = f.Page.LSN()
		}
	}
	f.pins--
}

// FlushAll writes back every dirty page (checkpoint helper). Pages
// pinned by concurrent users are flushed too: their frame latch is
// taken shared to get a consistent image.
func (p *Pool) FlushAll() error {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		var dirty []*Frame
		for _, f := range s.frames {
			if f.id != page.InvalidID && f.dirty {
				f.pins++ // hold residency while we flush outside the shard lock
				dirty = append(dirty, f)
			}
		}
		s.mu.Unlock()
		for _, f := range dirty {
			f.Latch.Acquire(latch.Shared)
			err := p.writeBack(f)
			f.Latch.Release(latch.Shared)
			s.mu.Lock()
			f.pins--
			s.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	return p.store.Sync()
}

// FlushPage writes back one pinned frame immediately (used for the
// checkpoint master record). The caller must hold a pin; the frame
// latch is taken shared for a consistent image.
func (p *Pool) FlushPage(f *Frame) error {
	f.Latch.Acquire(latch.Shared)
	defer f.Latch.Release(latch.Shared)
	s := p.shardFor(f.id)
	s.mu.Lock()
	defer s.mu.Unlock()
	return p.writeBack(f)
}

// DirtyPageTable returns (pageID -> recLSN) for every dirty resident
// page, the DPT snapshot a fuzzy checkpoint logs.
func (p *Pool) DirtyPageTable() map[uint64]uint64 {
	dpt := make(map[uint64]uint64)
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, f := range s.frames {
			if f.id != page.InvalidID && f.dirty {
				dpt[uint64(f.id)] = f.recLSN
			}
		}
		s.mu.Unlock()
	}
	return dpt
}

// StatsSnapshot returns a copy of the cumulative counters.
func (p *Pool) StatsSnapshot() Stats {
	return Stats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		Evictions:  p.evictions.Load(),
		Writebacks: p.writebacks.Load(),
	}
}

// Store exposes the underlying page store (used by recovery, which
// bypasses the pool).
func (p *Pool) Store() PageStore { return p.store }
