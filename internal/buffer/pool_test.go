package buffer

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"hydra/internal/latch"
	"hydra/internal/page"
)

func newMemPool(t *testing.T, frames, shards int) (*Pool, *MemStore) {
	t.Helper()
	st := NewMemStore()
	return NewPool(st, Options{Frames: frames, Shards: shards}), st
}

func TestNewPageFetchRoundTrip(t *testing.T) {
	p, _ := newMemPool(t, 8, 2)
	f, err := p.NewPage(page.TypeHeap)
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	f.Latch.Acquire(latch.Exclusive)
	slot, err := f.Page.Insert([]byte("hello"))
	f.Latch.Release(latch.Exclusive)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, true)

	g, err := p.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	g.Latch.Acquire(latch.Shared)
	rec, err := g.Page.Read(slot)
	g.Latch.Release(latch.Shared)
	if err != nil || string(rec) != "hello" {
		t.Fatalf("read back %q, %v", rec, err)
	}
	p.Unpin(g, false)
}

func TestEvictionWritesBackDirty(t *testing.T) {
	p, st := newMemPool(t, 4, 1)
	// Create 4 dirty pages filling the pool.
	ids := make([]page.ID, 8)
	for i := 0; i < 4; i++ {
		f, err := p.NewPage(page.TypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		f.Latch.Acquire(latch.Exclusive)
		f.Page.Insert([]byte(fmt.Sprintf("page-%d", i)))
		f.Latch.Release(latch.Exclusive)
		p.Unpin(f, true)
	}
	// Four more pages force evictions of the first four.
	for i := 4; i < 8; i++ {
		f, err := p.NewPage(page.TypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = f.ID()
		p.Unpin(f, true)
	}
	if st := p.StatsSnapshot(); st.Evictions == 0 || st.Writebacks == 0 {
		t.Fatalf("expected evictions and writebacks, got %+v", st)
	}
	// The evicted pages must be readable from the store directly.
	var pg page.Page
	if err := st.ReadPage(ids[0], &pg); err != nil {
		t.Fatal(err)
	}
	found := false
	pg.LiveRecords(func(_ int, rec []byte) bool {
		found = string(rec) == "page-0"
		return false
	})
	if !found {
		t.Fatal("evicted page content not written back")
	}
	// And fetching them again must return the stored content.
	f, err := p.Fetch(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != ids[1] {
		t.Fatal("fetched wrong page")
	}
	p.Unpin(f, false)
}

func TestAllPinnedErrors(t *testing.T) {
	p, _ := newMemPool(t, 2, 1)
	a, err := p.NewPage(page.TypeHeap)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.NewPage(page.TypeHeap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NewPage(page.TypeHeap); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("err = %v, want ErrNoFrames", err)
	}
	p.Unpin(a, false)
	c, err := p.NewPage(page.TypeHeap)
	if err != nil {
		t.Fatalf("after unpin: %v", err)
	}
	p.Unpin(b, false)
	p.Unpin(c, false)
}

func TestPinnedPagesNotEvicted(t *testing.T) {
	p, _ := newMemPool(t, 2, 1)
	a, _ := p.NewPage(page.TypeHeap)
	idA := a.ID()
	// Cycle several other pages through the remaining frame.
	for i := 0; i < 5; i++ {
		f, err := p.NewPage(page.TypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f, false)
	}
	// a must still be resident and hold the same page.
	if a.ID() != idA {
		t.Fatal("pinned frame was reassigned")
	}
	p.Unpin(a, false)
}

func TestUnpinUnpinnedPanics(t *testing.T) {
	p, _ := newMemPool(t, 2, 1)
	f, _ := p.NewPage(page.TypeHeap)
	p.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin did not panic")
		}
	}()
	p.Unpin(f, false)
}

func TestFetchMissingPageFails(t *testing.T) {
	p, _ := newMemPool(t, 2, 1)
	if _, err := p.Fetch(42); err == nil {
		t.Fatal("fetch of unallocated page succeeded")
	}
}

func TestReadFaultInjection(t *testing.T) {
	p, st := newMemPool(t, 4, 1)
	f, _ := p.NewPage(page.TypeHeap)
	id := f.ID()
	p.Unpin(f, true)
	// Evict it.
	for i := 0; i < 4; i++ {
		g, err := p.NewPage(page.TypeHeap)
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(g, false)
	}
	bang := errors.New("io error")
	st.FailReads(bang)
	if _, err := p.Fetch(id); !errors.Is(err, bang) {
		t.Fatalf("err = %v, want injected io error", err)
	}
	st.FailReads(nil)
	g, err := p.Fetch(id)
	if err != nil {
		t.Fatalf("after healing: %v", err)
	}
	p.Unpin(g, false)
}

func TestWALRuleHookInvoked(t *testing.T) {
	st := NewMemStore()
	var flushedUpTo []uint64
	p := NewPool(st, Options{Frames: 1, Shards: 1, FlushLog: func(lsn uint64) error {
		flushedUpTo = append(flushedUpTo, lsn)
		return nil
	}})
	f, _ := p.NewPage(page.TypeHeap)
	f.Latch.Acquire(latch.Exclusive)
	f.Page.SetLSN(777)
	f.Latch.Release(latch.Exclusive)
	p.Unpin(f, true)
	// Force eviction via another page.
	g, err := p.NewPage(page.TypeHeap)
	if err != nil {
		t.Fatal(err)
	}
	p.Unpin(g, false)
	found := false
	for _, lsn := range flushedUpTo {
		if lsn == 777 {
			found = true
		}
	}
	if !found {
		t.Fatalf("WAL rule hook not invoked with pageLSN 777: %v", flushedUpTo)
	}
}

func TestWALRuleFailureBlocksEviction(t *testing.T) {
	st := NewMemStore()
	bang := errors.New("wal stuck")
	p := NewPool(st, Options{Frames: 1, Shards: 1, FlushLog: func(uint64) error { return bang }})
	f, _ := p.NewPage(page.TypeHeap)
	p.Unpin(f, true)
	if _, err := p.NewPage(page.TypeHeap); !errors.Is(err, bang) {
		t.Fatalf("eviction proceeded despite WAL failure: %v", err)
	}
}

func TestFlushAllAndDirtyPageTable(t *testing.T) {
	p, st := newMemPool(t, 8, 4)
	var ids []page.ID
	for i := 0; i < 5; i++ {
		f, _ := p.NewPage(page.TypeHeap)
		f.Latch.Acquire(latch.Exclusive)
		f.Page.Insert([]byte("dirty"))
		f.Page.SetLSN(uint64(100 + i))
		f.Latch.Release(latch.Exclusive)
		ids = append(ids, f.ID())
		p.Unpin(f, true)
	}
	dpt := p.DirtyPageTable()
	if len(dpt) != 5 {
		t.Fatalf("DPT has %d entries, want 5", len(dpt))
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if dpt := p.DirtyPageTable(); len(dpt) != 0 {
		t.Fatalf("DPT non-empty after FlushAll: %v", dpt)
	}
	// All images durable.
	for _, id := range ids {
		var pg page.Page
		if err := st.ReadPage(id, &pg); err != nil {
			t.Fatal(err)
		}
		if pg.LiveCount() != 1 {
			t.Fatalf("page %d lost its record", id)
		}
	}
}

func TestConcurrentFetchStress(t *testing.T) {
	for _, shards := range []int{1, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			st := NewMemStore()
			p := NewPool(st, Options{Frames: 32, Shards: shards})
			// 128 pages, each seeded with its id as a record.
			var ids []page.ID
			for i := 0; i < 128; i++ {
				f, err := p.NewPage(page.TypeHeap)
				if err != nil {
					t.Fatal(err)
				}
				f.Latch.Acquire(latch.Exclusive)
				f.Page.Insert([]byte{byte(i)})
				f.Latch.Release(latch.Exclusive)
				ids = append(ids, f.ID())
				p.Unpin(f, true)
			}
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						idx := (w*131 + i*17) % len(ids)
						f, err := p.Fetch(ids[idx])
						if err != nil {
							t.Errorf("fetch: %v", err)
							return
						}
						f.Latch.Acquire(latch.Shared)
						var got byte
						f.Page.LiveRecords(func(_ int, rec []byte) bool {
							got = rec[0]
							return false
						})
						f.Latch.Release(latch.Shared)
						if got != byte(idx) {
							t.Errorf("page %d returned content %d", idx, got)
							p.Unpin(f, false)
							return
						}
						p.Unpin(f, false)
					}
				}(w)
			}
			wg.Wait()
			st2 := p.StatsSnapshot()
			if st2.Hits+st2.Misses == 0 {
				t.Fatal("no fetch traffic recorded")
			}
		})
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	st, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(st, Options{Frames: 4, Shards: 2})
	f, err := p.NewPage(page.TypeHeap)
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	f.Latch.Acquire(latch.Exclusive)
	f.Page.Insert([]byte("durable"))
	f.Latch.Release(latch.Exclusive)
	p.Unpin(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	n, err := st2.NumPages()
	if err != nil || n != 1 {
		t.Fatalf("NumPages = %d, %v", n, err)
	}
	var pg page.Page
	if err := st2.ReadPage(id, &pg); err != nil {
		t.Fatal(err)
	}
	ok := false
	pg.LiveRecords(func(_ int, rec []byte) bool {
		ok = string(rec) == "durable"
		return false
	})
	if !ok {
		t.Fatal("file store lost the record")
	}
}

func TestFileStoreChecksumDetection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	st, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	id, err := st.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pg := page.New(id, page.TypeHeap)
	pg.Insert([]byte("x"))
	if err := st.WritePage(pg); err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte on disk.
	st.f.WriteAt([]byte{0xFF}, int64(id)*page.Size+1000)
	var back page.Page
	if err := st.ReadPage(id, &back); !errors.Is(err, ErrBadPage) {
		t.Fatalf("err = %v, want ErrBadPage", err)
	}
}

func BenchmarkFetchHit(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st := NewMemStore()
			p := NewPool(st, Options{Frames: 64, Shards: shards})
			var ids []page.ID
			for i := 0; i < 64; i++ {
				f, _ := p.NewPage(page.TypeHeap)
				ids = append(ids, f.ID())
				p.Unpin(f, false)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					f, err := p.Fetch(ids[i%len(ids)])
					if err != nil {
						b.Fatal(err)
					}
					p.Unpin(f, false)
					i++
				}
			})
		})
	}
}
