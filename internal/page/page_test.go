package page

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hydra/internal/rng"
)

func TestFormatHeader(t *testing.T) {
	p := New(7, TypeHeap)
	if p.ID() != 7 {
		t.Errorf("ID = %d, want 7", p.ID())
	}
	if p.Type() != TypeHeap {
		t.Errorf("Type = %v, want heap", p.Type())
	}
	if p.SlotCount() != 0 {
		t.Errorf("SlotCount = %d, want 0", p.SlotCount())
	}
	if p.Next() != InvalidID {
		t.Errorf("Next = %d, want InvalidID", p.Next())
	}
	if p.LSN() != 0 {
		t.Errorf("LSN = %d, want 0", p.LSN())
	}
	if got := p.FreeSpace(); got != Size-HeaderSize-slotSize {
		t.Errorf("FreeSpace = %d, want %d", got, Size-HeaderSize-slotSize)
	}
}

func TestInsertRead(t *testing.T) {
	p := New(1, TypeHeap)
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma-gamma")}
	var slots []int
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Read(s)
		if err != nil {
			t.Fatalf("Read(%d): %v", s, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Errorf("Read(%d) = %q, want %q", s, got, recs[i])
		}
	}
	if p.LiveCount() != 3 {
		t.Errorf("LiveCount = %d, want 3", p.LiveCount())
	}
}

func TestDeleteAndSlotReuse(t *testing.T) {
	p := New(1, TypeHeap)
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	if err := p.Delete(s0); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := p.Read(s0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Read(deleted) err = %v, want ErrBadSlot", err)
	}
	if err := p.Delete(s0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("double Delete err = %v, want ErrBadSlot", err)
	}
	// Reinsertion must reuse the tombstoned slot.
	s2, err := p.Insert([]byte("three"))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if s2 != s0 {
		t.Errorf("tombstone not reused: got slot %d, want %d", s2, s0)
	}
	if got, _ := p.Read(s1); !bytes.Equal(got, []byte("two")) {
		t.Errorf("neighbor record corrupted: %q", got)
	}
}

func TestUpdateInPlaceAndRelocate(t *testing.T) {
	p := New(1, TypeHeap)
	s, _ := p.Insert([]byte("0123456789"))
	if err := p.Update(s, []byte("short")); err != nil {
		t.Fatalf("shrink update: %v", err)
	}
	if got, _ := p.Read(s); string(got) != "short" {
		t.Fatalf("after shrink: %q", got)
	}
	long := bytes.Repeat([]byte("x"), 100)
	if err := p.Update(s, long); err != nil {
		t.Fatalf("grow update: %v", err)
	}
	if got, _ := p.Read(s); !bytes.Equal(got, long) {
		t.Fatalf("after grow: %d bytes", len(got))
	}
}

func TestUpdateGrowViaCompaction(t *testing.T) {
	p := New(1, TypeHeap)
	// Nearly fill the page with two large records, delete one, then
	// grow the other into the space that only compaction can reclaim.
	half := (Size - HeaderSize) / 2
	a := bytes.Repeat([]byte("a"), half-100)
	b := bytes.Repeat([]byte("b"), 3000)
	sa, err := p.Insert(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := p.Insert(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(sa); err != nil {
		t.Fatal(err)
	}
	grown := bytes.Repeat([]byte("B"), 4500)
	if err := p.Update(sb, grown); err != nil {
		t.Fatalf("grow via compaction: %v", err)
	}
	if got, _ := p.Read(sb); !bytes.Equal(got, grown) {
		t.Fatal("grown record corrupted")
	}
}

func TestUpdateTooBigRestoresOriginal(t *testing.T) {
	p := New(1, TypeHeap)
	filler := bytes.Repeat([]byte("f"), 4000)
	if _, err := p.Insert(filler); err != nil {
		t.Fatal(err)
	}
	s, err := p.Insert([]byte("victim"))
	if err != nil {
		t.Fatal(err)
	}
	huge := bytes.Repeat([]byte("h"), 5000)
	if err := p.Update(s, huge); !errors.Is(err, ErrPageFull) {
		t.Fatalf("err = %v, want ErrPageFull", err)
	}
	if got, _ := p.Read(s); string(got) != "victim" {
		t.Fatalf("original record not restored: %q", got)
	}
}

func TestInsertUntilFull(t *testing.T) {
	p := New(1, TypeHeap)
	rec := bytes.Repeat([]byte("r"), 100)
	n := 0
	for {
		_, err := p.Insert(rec)
		if errors.Is(err, ErrPageFull) {
			break
		}
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		n++
		if n > Size {
			t.Fatal("page never filled")
		}
	}
	// 100B + 4B slot per record out of ~8150 usable.
	if n < 70 || n > 82 {
		t.Errorf("fit %d 100-byte records; expected ~78", n)
	}
	if p.FreeSpace() >= 104 {
		t.Errorf("page claims %d free after fill", p.FreeSpace())
	}
}

func TestRecordTooBig(t *testing.T) {
	p := New(1, TypeHeap)
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("err = %v, want ErrRecordTooBig", err)
	}
	if _, err := p.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Fatalf("max-size insert failed: %v", err)
	}
}

func TestChecksumRoundTrip(t *testing.T) {
	p := New(3, TypeHeap)
	p.Insert([]byte("payload"))
	p.SetLSN(123)
	p.Seal()
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify after Seal: %v", err)
	}
	// Corrupt one byte and verify detection.
	p.Bytes()[HeaderSize+100] ^= 0xFF
	if err := p.Verify(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted page verified: %v", err)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	p := New(9, TypeBTreeLeaf)
	p.Insert([]byte("k1v1"))
	p.Seal()
	img := append([]byte(nil), p.Bytes()...)

	q := &Page{}
	if err := q.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := q.Verify(); err != nil {
		t.Fatal(err)
	}
	if q.ID() != 9 || q.Type() != TypeBTreeLeaf || q.LiveCount() != 1 {
		t.Fatal("loaded page header mismatch")
	}
	if err := q.Load(img[:100]); err == nil {
		t.Fatal("Load accepted short buffer")
	}
}

func TestReadBadSlots(t *testing.T) {
	p := New(1, TypeHeap)
	if _, err := p.Read(-1); !errors.Is(err, ErrBadSlot) {
		t.Error("Read(-1) should fail")
	}
	if _, err := p.Read(0); !errors.Is(err, ErrBadSlot) {
		t.Error("Read past slot count should fail")
	}
	if err := p.Delete(0); !errors.Is(err, ErrBadSlot) {
		t.Error("Delete past slot count should fail")
	}
	if err := p.Update(5, []byte("x")); !errors.Is(err, ErrBadSlot) {
		t.Error("Update past slot count should fail")
	}
}

func TestLiveRecordsIterationAndEarlyStop(t *testing.T) {
	p := New(1, TypeHeap)
	for i := 0; i < 5; i++ {
		p.Insert([]byte{byte('a' + i)})
	}
	p.Delete(2)
	var seen []byte
	p.LiveRecords(func(slot int, rec []byte) bool {
		seen = append(seen, rec[0])
		return true
	})
	if string(seen) != "abde" {
		t.Fatalf("LiveRecords order = %q, want abde", seen)
	}
	count := 0
	p.LiveRecords(func(slot int, rec []byte) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d records", count)
	}
}

// Property: any sequence of inserts/deletes/updates on a page agrees
// with a map-based reference model.
func TestPageAgainstReferenceModel(t *testing.T) {
	src := rng.New(99)
	p := New(1, TypeHeap)
	ref := map[int][]byte{} // slot -> record
	for op := 0; op < 20000; op++ {
		switch src.Intn(4) {
		case 0, 1: // insert
			rec := make([]byte, src.IntRange(1, 300))
			src.Bytes(rec)
			s, err := p.Insert(rec)
			if errors.Is(err, ErrPageFull) {
				continue
			}
			if err != nil {
				t.Fatalf("op %d Insert: %v", op, err)
			}
			if _, exists := ref[s]; exists {
				t.Fatalf("op %d: slot %d double-allocated", op, s)
			}
			ref[s] = rec
		case 2: // delete a random live slot
			for s := range ref {
				if err := p.Delete(s); err != nil {
					t.Fatalf("op %d Delete(%d): %v", op, s, err)
				}
				delete(ref, s)
				break
			}
		case 3: // update a random live slot
			for s := range ref {
				rec := make([]byte, src.IntRange(1, 300))
				src.Bytes(rec)
				err := p.Update(s, rec)
				if errors.Is(err, ErrPageFull) {
					break
				}
				if err != nil {
					t.Fatalf("op %d Update(%d): %v", op, s, err)
				}
				ref[s] = rec
				break
			}
		}
		if op%1000 == 0 {
			p.Compact()
		}
	}
	if p.LiveCount() != len(ref) {
		t.Fatalf("LiveCount = %d, ref has %d", p.LiveCount(), len(ref))
	}
	for s, want := range ref {
		got, err := p.Read(s)
		if err != nil {
			t.Fatalf("Read(%d): %v", s, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("slot %d mismatch", s)
		}
	}
}

func TestSealVerifyQuick(t *testing.T) {
	f := func(id uint64, lsn uint64, payload []byte) bool {
		if len(payload) > MaxRecordSize {
			payload = payload[:MaxRecordSize]
		}
		p := New(ID(id), TypeHeap)
		p.SetLSN(lsn)
		if len(payload) > 0 {
			p.Insert(payload)
		}
		p.Seal()
		return p.Verify() == nil && p.LSN() == lsn && p.ID() == ID(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeFree: "free", TypeMeta: "meta", TypeHeap: "heap",
		TypeBTreeLeaf: "btree-leaf", TypeBTreeInner: "btree-inner",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Errorf("%d.String() = %q want %q", typ, typ.String(), want)
		}
	}
	if Type(200).String() != "type(200)" {
		t.Error("unknown type string")
	}
}

func BenchmarkInsert100B(b *testing.B) {
	rec := bytes.Repeat([]byte("r"), 100)
	p := New(1, TypeHeap)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Insert(rec); err != nil {
			p.Format(1, TypeHeap)
		}
	}
}

func BenchmarkSeal(b *testing.B) {
	p := New(1, TypeHeap)
	p.Insert(bytes.Repeat([]byte("x"), 1000))
	b.SetBytes(Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Seal()
	}
}
