// Package page defines the on-disk page format shared by heap files
// and B+-trees: a fixed-size slotted page with a header carrying the
// pageLSN required by ARIES-style recovery and a checksum verified on
// every read from stable storage.
//
// Layout (little endian):
//
//	offset size field
//	0      8    pageLSN   (LSN of the last log record applied)
//	8      8    page id
//	16     2    page type
//	18     2    slot count
//	20     2    free-space pointer (start of the record heap)
//	22     2    reserved
//	24     8    next page id (heap chain / B+-tree right sibling)
//	32     4    checksum (CRC-32C over the rest of the page)
//	36     4    version epoch (bumped by versioned heap writes)
//	40     ...  slot array (4 bytes/slot), growing up
//	...    ...  record heap, growing down from Size
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Size is the page size in bytes. 8 KiB matches common storage
// manager defaults (Shore uses 8K pages).
const Size = 8192

// HeaderSize is the number of bytes reserved before the slot array.
const HeaderSize = 40

const slotSize = 4

// ID identifies a page within a store. ID 0 is reserved for store
// metadata; InvalidID marks "no page".
type ID uint64

// InvalidID is the nil page id (used e.g. as the next pointer of the
// last page in a chain).
const InvalidID ID = ^ID(0)

// Type tags what a page holds so recovery and debugging tools can
// interpret it.
type Type uint16

const (
	// TypeFree marks an unformatted or deallocated page.
	TypeFree Type = iota
	// TypeMeta is the store metadata page.
	TypeMeta
	// TypeHeap is a slotted heap-file data page.
	TypeHeap
	// TypeBTreeLeaf is a B+-tree leaf.
	TypeBTreeLeaf
	// TypeBTreeInner is a B+-tree interior node.
	TypeBTreeInner
)

var typeNames = [...]string{"free", "meta", "heap", "btree-leaf", "btree-inner"}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint16(t))
}

// Tombstone marks a deleted slot in the slot array.
const tombstone = 0xFFFF

// Errors returned by page operations.
var (
	ErrPageFull     = errors.New("page: not enough free space")
	ErrBadSlot      = errors.New("page: slot out of range or deleted")
	ErrChecksum     = errors.New("page: checksum mismatch")
	ErrRecordTooBig = errors.New("page: record exceeds maximum size")
)

// MaxRecordSize is the largest record a single page can hold.
const MaxRecordSize = Size - HeaderSize - slotSize

// Page is a fixed-size slotted page. The zero value is not usable;
// call New or Load.
type Page struct {
	buf [Size]byte
}

// New formats an empty page of the given type and id.
func New(id ID, t Type) *Page {
	p := &Page{}
	p.Format(id, t)
	return p
}

// Format (re)initializes the page in place.
func (p *Page) Format(id ID, t Type) {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.SetID(id)
	p.SetType(t)
	p.setFreePtr(Size)
	p.SetNext(InvalidID)
}

// Bytes exposes the raw page image. Callers must treat it as
// ephemeral and must not retain it across page mutations.
func (p *Page) Bytes() []byte { return p.buf[:] }

// LSN returns the pageLSN.
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.buf[0:8]) }

// SetLSN records the LSN of the last update applied to the page.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.buf[0:8], lsn) }

// ID returns the page id stored in the header.
func (p *Page) ID() ID { return ID(binary.LittleEndian.Uint64(p.buf[8:16])) }

// SetID stores the page id.
func (p *Page) SetID(id ID) { binary.LittleEndian.PutUint64(p.buf[8:16], uint64(id)) }

// Type returns the page type tag.
func (p *Page) Type() Type { return Type(binary.LittleEndian.Uint16(p.buf[16:18])) }

// SetType stores the page type tag.
func (p *Page) SetType(t Type) { binary.LittleEndian.PutUint16(p.buf[16:18], uint16(t)) }

// SlotCount returns the number of slots, including tombstones.
func (p *Page) SlotCount() int { return int(binary.LittleEndian.Uint16(p.buf[18:20])) }

func (p *Page) setSlotCount(n int) { binary.LittleEndian.PutUint16(p.buf[18:20], uint16(n)) }

func (p *Page) freePtr() int     { return int(binary.LittleEndian.Uint16(p.buf[20:22])) }
func (p *Page) setFreePtr(v int) { binary.LittleEndian.PutUint16(p.buf[20:22], uint16(v%65536)) }
func (p *Page) freePtrRaw() int { // Size (8192) fits in uint16, so no wrap in practice
	v := p.freePtr()
	if v == 0 && p.SlotCount() == 0 {
		return Size
	}
	return v
}

// Next returns the successor page id (heap chain or right sibling).
func (p *Page) Next() ID { return ID(binary.LittleEndian.Uint64(p.buf[24:32])) }

// SetNext stores the successor page id.
func (p *Page) SetNext(id ID) { binary.LittleEndian.PutUint64(p.buf[24:32], uint64(id)) }

// VerEpoch returns the page's version epoch: a counter bumped by every
// versioned (MVCC-tracked) write to the page. Zero proves no versioned
// write ever touched the page, letting snapshot readers skip the
// version-chain lookup. The value is advisory — after a crash it may
// read lower than writes that were logged but not flushed, which only
// costs a spurious chain lookup, never a wrong read (the chains
// themselves are volatile and rebuilt empty).
func (p *Page) VerEpoch() uint32 { return binary.LittleEndian.Uint32(p.buf[36:40]) }

// BumpVerEpoch increments the version epoch; call under the page
// X latch alongside SetLSN.
func (p *Page) BumpVerEpoch() {
	binary.LittleEndian.PutUint32(p.buf[36:40], binary.LittleEndian.Uint32(p.buf[36:40])+1)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal computes and stores the checksum; call before writing the page
// to stable storage.
func (p *Page) Seal() {
	binary.LittleEndian.PutUint32(p.buf[32:36], 0)
	sum := crc32.Checksum(p.buf[:], castagnoli)
	binary.LittleEndian.PutUint32(p.buf[32:36], sum)
}

// Verify recomputes the checksum and returns ErrChecksum on mismatch.
// A page whose stored checksum is zero is treated as never sealed
// (freshly allocated) and verifies successfully; Seal never stores a
// zero checksum in practice, so the ambiguity window is 2^-32.
func (p *Page) Verify() error {
	stored := binary.LittleEndian.Uint32(p.buf[32:36])
	if stored == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(p.buf[32:36], 0)
	sum := crc32.Checksum(p.buf[:], castagnoli)
	binary.LittleEndian.PutUint32(p.buf[32:36], stored)
	if stored != sum {
		return fmt.Errorf("%w: page %d: stored %#x computed %#x", ErrChecksum, p.ID(), stored, sum)
	}
	return nil
}

func (p *Page) slotOffset(i int) int { return HeaderSize + i*slotSize }

func (p *Page) slot(i int) (off, length int) {
	so := p.slotOffset(i)
	return int(binary.LittleEndian.Uint16(p.buf[so : so+2])),
		int(binary.LittleEndian.Uint16(p.buf[so+2 : so+4]))
}

func (p *Page) setSlot(i, off, length int) {
	so := p.slotOffset(i)
	binary.LittleEndian.PutUint16(p.buf[so:so+2], uint16(off))
	binary.LittleEndian.PutUint16(p.buf[so+2:so+4], uint16(length))
}

// FreeSpace returns the number of payload bytes a new record may use,
// accounting for its slot entry.
func (p *Page) FreeSpace() int {
	free := p.freePtrRaw() - (HeaderSize + p.SlotCount()*slotSize) - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Insert appends a record and returns its slot number. A tombstoned
// slot is reused if one exists. Returns ErrPageFull when the record
// (plus slot overhead) does not fit, and ErrRecordTooBig when it can
// never fit on any page.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecordSize {
		return 0, ErrRecordTooBig
	}
	// Find a reusable tombstone first: it costs no new slot space.
	slot := -1
	for i := 0; i < p.SlotCount(); i++ {
		if off, _ := p.slot(i); off == tombstone {
			slot = i
			break
		}
	}
	needSlot := 0
	if slot == -1 {
		needSlot = slotSize
	}
	if p.freePtrRaw()-(HeaderSize+p.SlotCount()*slotSize)-needSlot < len(rec) {
		return 0, ErrPageFull
	}
	newFree := p.freePtrRaw() - len(rec)
	copy(p.buf[newFree:], rec)
	p.setFreePtr(newFree)
	if slot == -1 {
		slot = p.SlotCount()
		p.setSlotCount(slot + 1)
	}
	p.setSlot(slot, newFree, len(rec))
	return slot, nil
}

// Read returns the record in the given slot. The returned slice
// aliases the page buffer; callers that retain it must copy.
func (p *Page) Read(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.SlotCount() {
		return nil, ErrBadSlot
	}
	off, length := p.slot(slot)
	if off == tombstone {
		return nil, ErrBadSlot
	}
	return p.buf[off : off+length], nil
}

// Delete tombstones the slot. The record bytes are reclaimed by the
// next Compact.
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.SlotCount() {
		return ErrBadSlot
	}
	if off, _ := p.slot(slot); off == tombstone {
		return ErrBadSlot
	}
	p.setSlot(slot, tombstone, 0)
	return nil
}

// Update replaces the record in slot. If the new record does not fit
// in place, it is relocated within the page; ErrPageFull is returned
// when even compaction would not make room (the caller then deletes
// and re-inserts elsewhere).
func (p *Page) Update(slot int, rec []byte) error {
	if slot < 0 || slot >= p.SlotCount() {
		return ErrBadSlot
	}
	off, length := p.slot(slot)
	if off == tombstone {
		return ErrBadSlot
	}
	if len(rec) <= length {
		copy(p.buf[off:], rec)
		p.setSlot(slot, off, len(rec))
		return nil
	}
	if len(rec) > MaxRecordSize {
		return ErrRecordTooBig
	}
	// Relocate within the page. The old copy's bytes are dead the
	// moment we succeed, so tombstone first and compact to reclaim
	// them; keep a copy so we can restore the record if the new one
	// still does not fit.
	if p.freePtrRaw()-(HeaderSize+p.SlotCount()*slotSize) < len(rec) {
		old := append([]byte(nil), p.buf[off:off+length]...)
		p.setSlot(slot, tombstone, 0)
		p.Compact()
		if p.freePtrRaw()-(HeaderSize+p.SlotCount()*slotSize) < len(rec) {
			// Restore the original record and report no space.
			restore := p.freePtrRaw() - len(old)
			copy(p.buf[restore:], old)
			p.setFreePtr(restore)
			p.setSlot(slot, restore, len(old))
			return ErrPageFull
		}
	}
	newFree := p.freePtrRaw() - len(rec)
	copy(p.buf[newFree:], rec)
	p.setFreePtr(newFree)
	p.setSlot(slot, newFree, len(rec))
	return nil
}

// Compact rewrites the record heap to squeeze out space freed by
// deletions and relocations. Slot numbers are stable across Compact.
func (p *Page) Compact() {
	type live struct{ slot, off, length int }
	var recs []live
	for i := 0; i < p.SlotCount(); i++ {
		off, length := p.slot(i)
		if off != tombstone {
			recs = append(recs, live{i, off, length})
		}
	}
	// Copy live records into a scratch area, then lay them back down
	// from the page tail.
	var scratch [Size]byte
	pos := Size
	for i := range recs {
		r := &recs[i]
		pos -= r.length
		copy(scratch[pos:], p.buf[r.off:r.off+r.length])
		r.off = pos
	}
	copy(p.buf[pos:], scratch[pos:])
	for _, r := range recs {
		p.setSlot(r.slot, r.off, r.length)
	}
	p.setFreePtr(pos)
}

// LiveRecords calls fn for every non-deleted slot in slot order. The
// record slice aliases the page buffer.
func (p *Page) LiveRecords(fn func(slot int, rec []byte) bool) {
	for i := 0; i < p.SlotCount(); i++ {
		off, length := p.slot(i)
		if off == tombstone {
			continue
		}
		if !fn(i, p.buf[off:off+length]) {
			return
		}
	}
}

// LiveCount returns the number of non-deleted records.
func (p *Page) LiveCount() int {
	n := 0
	for i := 0; i < p.SlotCount(); i++ {
		if off, _ := p.slot(i); off != tombstone {
			n++
		}
	}
	return n
}

// Load copies a raw page image into p. It returns an error if b is
// not exactly Size bytes; checksum verification is the caller's
// choice (see Verify).
func (p *Page) Load(b []byte) error {
	if len(b) != Size {
		return fmt.Errorf("page: Load with %d bytes, want %d", len(b), Size)
	}
	copy(p.buf[:], b)
	return nil
}
