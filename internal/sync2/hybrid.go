package sync2

import (
	"sync"
	"sync/atomic"
)

// HybridLock spins for a bounded budget and then blocks on the
// runtime scheduler. This is the compromise the paper's reference on
// spinning vs blocking arrives at: short critical sections are
// usually handed off within the spin budget (avoiding the park/unpark
// round trip), while long waits deschedule the waiter instead of
// burning a hardware context.
type HybridLock struct {
	state   uint32 // 0 free, 1 held
	waiters int32  // count of parked or parking waiters
	mu      sync.Mutex
	cond    *sync.Cond
	budget  int
}

// NewHybrid returns a hybrid lock that spins spinBudget iterations
// before parking. A budget of 0 makes it purely blocking.
func NewHybrid(spinBudget int) *HybridLock {
	l := &HybridLock{budget: spinBudget}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Lock acquires the lock, spinning briefly before blocking.
func (l *HybridLock) Lock() {
	// Fast path and spin phase.
	for i := 0; i <= l.budget; i++ {
		if atomic.LoadUint32(&l.state) == 0 &&
			atomic.CompareAndSwapUint32(&l.state, 0, 1) {
			return
		}
		spinYield()
	}
	// Slow path: park on the condition variable.
	atomic.AddInt32(&l.waiters, 1)
	l.mu.Lock()
	for !atomic.CompareAndSwapUint32(&l.state, 0, 1) {
		l.cond.Wait()
	}
	l.mu.Unlock()
	atomic.AddInt32(&l.waiters, -1)
}

// Unlock releases the lock and wakes one parked waiter, if any.
func (l *HybridLock) Unlock() {
	atomic.StoreUint32(&l.state, 0)
	if atomic.LoadInt32(&l.waiters) > 0 {
		l.mu.Lock()
		l.cond.Signal()
		l.mu.Unlock()
	}
}

// SpinRWLock is a writer-preference reader-writer spinlock built on a
// single state word: bit 31 flags a writer, the low bits count
// readers. Page latches use a bounded-spin variant of this shape.
type SpinRWLock struct {
	state uint32 // bit31: writer held; bit30: writer waiting; low bits: reader count
}

const (
	rwWriterHeld    = 1 << 31
	rwWriterWaiting = 1 << 30
	rwReaderMask    = rwWriterWaiting - 1
)

// RLock acquires the lock in shared mode. Readers defer to a waiting
// writer so writers cannot starve.
func (l *SpinRWLock) RLock() {
	for {
		s := atomic.LoadUint32(&l.state)
		if s&(rwWriterHeld|rwWriterWaiting) == 0 {
			if atomic.CompareAndSwapUint32(&l.state, s, s+1) {
				return
			}
			continue
		}
		spinYield()
	}
}

// RUnlock releases a shared hold.
func (l *SpinRWLock) RUnlock() {
	atomic.AddUint32(&l.state, ^uint32(0)) // -1
}

// Lock acquires the lock exclusively.
func (l *SpinRWLock) Lock() {
	// Claim the writer-waiting flag; it both serializes writers and
	// makes new readers stand aside.
	for {
		s := atomic.LoadUint32(&l.state)
		if s&(rwWriterWaiting|rwWriterHeld) == 0 {
			if atomic.CompareAndSwapUint32(&l.state, s, s|rwWriterWaiting) {
				break
			}
			continue
		}
		spinYield()
	}
	// Wait for readers to drain, then convert waiting -> held.
	for {
		s := atomic.LoadUint32(&l.state)
		if s&rwReaderMask == 0 {
			if atomic.CompareAndSwapUint32(&l.state, s, rwWriterHeld) {
				return
			}
			continue
		}
		spinYield()
	}
}

// Unlock releases an exclusive hold.
func (l *SpinRWLock) Unlock() {
	atomic.AndUint32(&l.state, ^uint32(rwWriterHeld))
}

// TryRLock attempts a shared acquisition without spinning. It may
// fail spuriously when the state word is churning; callers use it as
// a contention probe before a timed slow-path RLock.
func (l *SpinRWLock) TryRLock() bool {
	s := atomic.LoadUint32(&l.state)
	return s&(rwWriterHeld|rwWriterWaiting) == 0 &&
		atomic.CompareAndSwapUint32(&l.state, s, s+1)
}

// TryLock attempts an exclusive acquisition without spinning: it
// succeeds only from the fully-free state.
func (l *SpinRWLock) TryLock() bool {
	return atomic.CompareAndSwapUint32(&l.state, 0, rwWriterHeld)
}

// TryUpgrade attempts to convert a shared hold into an exclusive hold
// without releasing. It succeeds only if the caller is the sole
// reader and no writer is pending; on failure the shared hold is
// retained and the caller must release and re-acquire.
func (l *SpinRWLock) TryUpgrade() bool {
	return atomic.CompareAndSwapUint32(&l.state, 1, rwWriterHeld)
}
