package sync2

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"hydra/internal/invariant"
)

// MCSLock is the Mellor-Crummey/Scott queue lock. Each waiter enqueues
// a node and spins on a flag in its own node, so waiting generates no
// traffic on the lock word; release touches only the successor's node.
// This is the canonical "scalable spinlock" the storage-manager
// literature reaches for when a critical section must stay a spinlock
// under high contention.
type MCSLock struct {
	tail       unsafe.Pointer // *mcsNode
	holderSlot unsafe.Pointer // node of the current holder; see setHolder
}

type mcsNode struct {
	next   unsafe.Pointer // *mcsNode
	locked uint32
	_      [40]byte // pad to a cache line so waiters don't false-share
}

var mcsPool = sync.Pool{New: func() any { return new(mcsNode) }}

// Lock acquires the lock, spinning on a private node.
func (l *MCSLock) Lock() {
	n := mcsPool.Get().(*mcsNode)
	invariant.PoolGot("sync2.MCSLock.Lock", n)
	// next must be cleared atomically: the previous cycle's enqueuer
	// published into this word with StorePointer, and mixing a plain
	// store with those atomics is a race under the memory model even
	// though the pool hand-off orders them in practice (hydra-vet
	// atomicmix catch).
	atomic.StorePointer(&n.next, nil)
	atomic.StoreUint32(&n.locked, 1)
	prev := (*mcsNode)(atomic.SwapPointer(&l.tail, unsafe.Pointer(n)))
	if prev != nil {
		atomic.StorePointer(&prev.next, unsafe.Pointer(n))
		for atomic.LoadUint32(&n.locked) == 1 {
			spinYield()
		}
	}
	// Stash our node so Unlock (same goroutine, by contract) can find
	// it. A per-lock slot suffices because only the holder reads it.
	l.setHolder(n)
}

// Unlock releases the lock to the queued successor, if any.
func (l *MCSLock) Unlock() {
	n := l.holder()
	next := (*mcsNode)(atomic.LoadPointer(&n.next))
	if next == nil {
		// No known successor: try to swing tail back to nil.
		if atomic.CompareAndSwapPointer(&l.tail, unsafe.Pointer(n), nil) {
			invariant.PoolPut("sync2.MCSLock.Unlock(no successor)", n)
			mcsPool.Put(n)
			return
		}
		// A waiter is mid-enqueue; wait for it to link itself.
		for {
			next = (*mcsNode)(atomic.LoadPointer(&n.next))
			if next != nil {
				break
			}
			spinYield()
		}
	}
	atomic.StoreUint32(&next.locked, 0)
	invariant.PoolPut("sync2.MCSLock.Unlock", n)
	mcsPool.Put(n)
}

// holderSlot holds the current owner's queue node. Only the lock
// holder accesses it between Lock and Unlock, but it is stored
// atomically to keep the race detector satisfied across handoffs.
func (l *MCSLock) setHolder(n *mcsNode) {
	atomic.StorePointer(&l.holderSlot, unsafe.Pointer(n))
}

func (l *MCSLock) holder() *mcsNode {
	return (*mcsNode)(atomic.LoadPointer(&l.holderSlot))
}
