// Package sync2 implements the critical-section primitives whose
// behavior the paper calls "crucial" for scalable storage managers:
// pure spinning locks (low handoff latency, wasted cycles under
// contention), blocking locks (no wasted cycles, expensive parking),
// and the spin-then-block hybrids that try to track the best of both.
//
// All locks implement Locker so experiments and the storage manager
// can swap implementations freely. Reader-writer variants implement
// RWLocker.
package sync2

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Locker is the minimal mutual-exclusion interface shared by every
// primitive in this package. sync.Mutex satisfies it too.
type Locker interface {
	Lock()
	Unlock()
}

// RWLocker adds shared (reader) acquisition.
type RWLocker interface {
	Locker
	RLock()
	RUnlock()
}

// Kind names a lock implementation, used by experiments to sweep over
// primitives.
type Kind int

const (
	// KindTAS is a naive test-and-set spinlock: every waiter hammers
	// the lock word with atomic swaps.
	KindTAS Kind = iota
	// KindTATAS is test-and-test-and-set with exponential backoff:
	// waiters spin on a read-only load and only attempt the swap when
	// the lock looks free.
	KindTATAS
	// KindTicket is a fair FIFO ticket lock.
	KindTicket
	// KindMCS is the MCS queue lock: each waiter spins on its own
	// cache line, the canonical scalable spinlock.
	KindMCS
	// KindBlocking is the OS/runtime blocking mutex (sync.Mutex);
	// waiters are descheduled.
	KindBlocking
	// KindHybrid spins briefly and then parks, the compromise the
	// paper's reference [3] recommends for oversubscribed systems.
	KindHybrid
)

var kindNames = map[Kind]string{
	KindTAS:      "tas",
	KindTATAS:    "tatas",
	KindTicket:   "ticket",
	KindMCS:      "mcs",
	KindBlocking: "block",
	KindHybrid:   "hybrid",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Kinds lists every primitive, in sweep order.
func Kinds() []Kind {
	return []Kind{KindTAS, KindTATAS, KindTicket, KindMCS, KindBlocking, KindHybrid}
}

// New returns a fresh lock of the given kind.
func New(k Kind) Locker {
	switch k {
	case KindTAS:
		return new(TASLock)
	case KindTATAS:
		return new(TATASLock)
	case KindTicket:
		return new(TicketLock)
	case KindMCS:
		return new(MCSLock)
	case KindBlocking:
		return new(sync.Mutex)
	case KindHybrid:
		return NewHybrid(defaultSpinBudget)
	default:
		panic("sync2: unknown lock kind")
	}
}

// TASLock is a test-and-set spinlock. Each acquisition attempt is a
// full atomic swap, so under contention every waiter generates
// coherence traffic on every iteration — the pathology the paper's
// "spinning wastes cycles" refers to.
type TASLock struct {
	state uint32
}

// Lock spins until the lock is acquired.
func (l *TASLock) Lock() {
	for !atomic.CompareAndSwapUint32(&l.state, 0, 1) {
		spinYield()
	}
}

// Unlock releases the lock. It must only be called by the holder.
func (l *TASLock) Unlock() {
	atomic.StoreUint32(&l.state, 0)
}

// TryLock acquires the lock if it is free and reports success.
func (l *TASLock) TryLock() bool {
	return atomic.CompareAndSwapUint32(&l.state, 0, 1)
}

// TATASLock is test-and-test-and-set with exponential backoff:
// waiters spin on a plain load (local cache hit once the line is
// shared) and attempt the expensive swap only when the lock appears
// free, backing off multiplicatively on failure.
type TATASLock struct {
	state uint32
}

// Lock spins until the lock is acquired.
func (l *TATASLock) Lock() {
	backoff := 1
	for {
		if atomic.LoadUint32(&l.state) == 0 &&
			atomic.CompareAndSwapUint32(&l.state, 0, 1) {
			return
		}
		for i := 0; i < backoff; i++ {
			spinYield()
		}
		if backoff < 256 {
			backoff <<= 1
		}
	}
}

// Unlock releases the lock.
func (l *TATASLock) Unlock() {
	atomic.StoreUint32(&l.state, 0)
}

// TryLock acquires the lock if it is free and reports success.
func (l *TATASLock) TryLock() bool {
	return atomic.LoadUint32(&l.state) == 0 &&
		atomic.CompareAndSwapUint32(&l.state, 0, 1)
}

// TicketLock is a fair FIFO spinlock: arrivals take a ticket and wait
// for the serving counter to reach it. Fairness prevents starvation
// but couples every waiter to a single hot cache line.
type TicketLock struct {
	next    uint64
	serving uint64
}

// Lock takes the next ticket and spins until served.
func (l *TicketLock) Lock() {
	t := atomic.AddUint64(&l.next, 1) - 1
	for atomic.LoadUint64(&l.serving) != t {
		spinYield()
	}
}

// Unlock passes the lock to the next ticket holder.
func (l *TicketLock) Unlock() {
	atomic.AddUint64(&l.serving, 1)
}

// spinYield is one iteration of polite busy-waiting. On a machine
// with free hardware contexts this approximates a PAUSE; when the
// runtime is oversubscribed Gosched lets another goroutine run, which
// keeps spin-based tests meaningful even on small CI hosts.
func spinYield() {
	runtime.Gosched()
}

const defaultSpinBudget = 64
