package sync2

import (
	"sync"
	"sync/atomic"
	"time"
)

// StressResult reports one cell of the spin-vs-block experiment (E3).
type StressResult struct {
	Kind       Kind
	Goroutines int
	// Acquisitions is the total number of lock/unlock cycles completed
	// within the measurement window.
	Acquisitions uint64
	// Duration is the wall-clock measurement window.
	Duration time.Duration
	// CSWork and OutWork are the number of units of synthetic work
	// performed inside and outside the critical section per cycle.
	CSWork, OutWork int
}

// Throughput returns completed critical sections per second.
func (r StressResult) Throughput() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Acquisitions) / r.Duration.Seconds()
}

// Stress hammers a lock of the given kind with n goroutines for the
// given duration. Each cycle performs csWork units of work while
// holding the lock and outWork units outside it, modelling a storage
// manager whose threads alternate between a short shared critical
// section (e.g. a latch or the lock-manager table) and private work.
func Stress(kind Kind, n int, d time.Duration, csWork, outWork int) StressResult {
	l := New(kind)
	var (
		stop  uint32
		total uint64
		wg    sync.WaitGroup
		start = make(chan struct{})
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			<-start
			var local uint64
			sink := seed
			for atomic.LoadUint32(&stop) == 0 {
				l.Lock()
				for j := 0; j < csWork; j++ {
					sink = sink*6364136223846793005 + 1442695040888963407
				}
				l.Unlock()
				for j := 0; j < outWork; j++ {
					sink = sink*6364136223846793005 + 1442695040888963407
				}
				local++
			}
			if sink == 42 { // defeat dead-code elimination
				panic("unreachable")
			}
			atomic.AddUint64(&total, local)
		}(uint64(i))
	}
	t0 := time.Now()
	close(start)
	time.Sleep(d)
	atomic.StoreUint32(&stop, 1)
	wg.Wait()
	elapsed := time.Since(t0)
	return StressResult{
		Kind:         kind,
		Goroutines:   n,
		Acquisitions: atomic.LoadUint64(&total), // wg.Wait orders this, but stay atomic-everywhere
		Duration:     elapsed,
		CSWork:       csWork,
		OutWork:      outWork,
	}
}
