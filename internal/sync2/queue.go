package sync2

import (
	"sync"

	"hydra/internal/invariant"
	"hydra/internal/obs"
)

// Queue is a bounded multi-producer single-consumer queue whose
// consumer drains every queued item in one lock acquisition. It is
// the channel replacement for executor inboxes (DORA): a channel
// charges one synchronized handoff per item, so a hot partition pays
// a wakeup per action; Drain amortizes the mutex and the consumer
// wakeup over the whole backlog, the same kick-coalescing idea the
// WAL flusher uses for commit batches.
//
// Close semantics are what a shutdown path wants: Put reports false
// instead of panicking once the queue is closed, and the consumer
// keeps draining until the backlog is empty before Drain reports
// closed — no item accepted by Put is ever dropped.
type Queue[T any] struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	buf      []T // ring storage
	head     int // index of the oldest element
	n        int // elements queued
	closed   bool
}

// NewQueue returns a queue holding at most capacity items.
func NewQueue[T any](capacity int) *Queue[T] {
	if capacity <= 0 {
		capacity = 1
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	return q
}

// Put enqueues v, blocking while the queue is full. It reports false
// when the queue has been closed, in which case v was not enqueued.
func (q *Queue[T]) Put(v T) bool {
	s := obs.LatchStart(obs.TierDoraQueue)
	q.mu.Lock()
	obs.LatchDone(obs.TierDoraQueue, s)
	invariant.Acquired(invariant.TierDoraQueue, "sync2.Queue.mu")
	for q.n == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		invariant.Released(invariant.TierDoraQueue, "sync2.Queue.mu")
		q.mu.Unlock()
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
	if q.n == 1 {
		q.notEmpty.Signal()
	}
	invariant.Released(invariant.TierDoraQueue, "sync2.Queue.mu")
	q.mu.Unlock()
	return true
}

// Drain appends every queued item to into and returns the extended
// slice, blocking while the queue is empty and open. ok is false only
// when the queue is closed AND empty; a closed queue keeps yielding
// its backlog first, so the consumer sees every accepted item.
func (q *Queue[T]) Drain(into []T) (_ []T, ok bool) {
	s := obs.LatchStart(obs.TierDoraQueue)
	q.mu.Lock()
	obs.LatchDone(obs.TierDoraQueue, s)
	invariant.Acquired(invariant.TierDoraQueue, "sync2.Queue.mu")
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		invariant.Released(invariant.TierDoraQueue, "sync2.Queue.mu")
		q.mu.Unlock()
		return into, false
	}
	wasFull := q.n == len(q.buf)
	var zero T
	for ; q.n > 0; q.n-- {
		into = append(into, q.buf[q.head])
		q.buf[q.head] = zero // drop the reference so the ring doesn't pin it
		q.head = (q.head + 1) % len(q.buf)
	}
	q.head = 0
	if wasFull {
		q.notFull.Broadcast()
	}
	invariant.Released(invariant.TierDoraQueue, "sync2.Queue.mu")
	q.mu.Unlock()
	return into, true
}

// Len returns the current backlog (racy by nature; a gauge).
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	n := q.n
	q.mu.Unlock()
	return n
}

// Cap returns the queue capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Close rejects further Puts and wakes every blocked producer and the
// consumer. Items already queued remain drainable.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Signal()
	q.mu.Unlock()
}
