package sync2

import (
	"sync"
	"testing"
	"time"
)

// exercise asserts mutual exclusion: n goroutines each increment a
// plain (non-atomic) counter iters times under the lock. Any mutual
// exclusion failure shows up as a lost update (and as a race under
// -race).
func exercise(t *testing.T, l Locker, n, iters int) {
	t.Helper()
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != n*iters {
		t.Fatalf("lost updates: counter = %d, want %d", counter, n*iters)
	}
}

func TestMutualExclusionAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			exercise(t, New(k), 8, 2000)
		})
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindTAS: "tas", KindTATAS: "tatas", KindTicket: "ticket",
		KindMCS: "mcs", KindBlocking: "block", KindHybrid: "hybrid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Errorf("unknown kind should stringify to unknown")
	}
}

func TestNewUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(unknown) did not panic")
		}
	}()
	New(Kind(99))
}

func TestTryLock(t *testing.T) {
	var l TASLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()

	var tl TATASLock
	if !tl.TryLock() || tl.TryLock() {
		t.Fatal("TATAS TryLock semantics wrong")
	}
	tl.Unlock()
}

func TestTicketFairnessOrdering(t *testing.T) {
	// With a ticket lock, a queued waiter must get the lock before a
	// later arrival. We serialize arrivals with channels to make the
	// arrival order deterministic.
	var l TicketLock
	l.Lock()
	order := make(chan int, 2)
	arrived := make(chan struct{})
	go func() {
		close(arrived)
		l.Lock()
		//hydra:vet:ignore lockscope -- buffered (cap 2) report channel; send cannot block
		order <- 1 //hydra:blockok -- buffered (cap 2) report channel, one send per goroutine; cannot park
		l.Unlock()
	}()
	//hydra:vet:ignore lockscope -- fairness test: main goroutine deliberately parks arrivals behind its lock
	<-arrived //hydra:blockok -- fairness test: main goroutine deliberately parks arrivals behind its lock
	//hydra:vet:ignore lockscope -- fairness test: main goroutine deliberately parks arrivals behind its lock
	time.Sleep(10 * time.Millisecond) //hydra:blockok -- fairness test: bounded sleep to order ticket arrivals
	go func() {
		l.Lock()
		//hydra:vet:ignore lockscope -- buffered (cap 2) report channel; send cannot block
		order <- 2 //hydra:blockok -- buffered (cap 2) report channel, one send per goroutine; cannot park
		l.Unlock()
	}()
	//hydra:vet:ignore lockscope -- fairness test: main goroutine deliberately parks arrivals behind its lock
	time.Sleep(10 * time.Millisecond) //hydra:blockok -- fairness test: bounded sleep to order ticket arrivals
	l.Unlock()
	if first := <-order; first != 1 {
		t.Fatalf("ticket lock served arrival %d first", first)
	}
	<-order
}

func TestHybridZeroBudgetBlocks(t *testing.T) {
	exercise(t, NewHybrid(0), 4, 1000)
}

func TestSpinRWLockReadersShareWritersExclude(t *testing.T) {
	var l SpinRWLock
	l.RLock()
	l.RLock() // two concurrent readers must be fine
	done := make(chan struct{})
	go func() {
		l.Lock() // writer must wait for both readers
		close(done)
		l.Unlock()
	}()
	//hydra:vet:ignore lockscope -- exclusion test: waits (bounded) under RLock to assert the writer stays out
	select { //hydra:blockok -- exclusion test: 20ms-bounded select under RLock is the assertion itself
	case <-done:
		t.Fatal("writer acquired lock while readers held it")
	case <-time.After(20 * time.Millisecond):
	}
	l.RUnlock()
	l.RUnlock()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("writer never acquired lock after readers released")
	}
}

func TestSpinRWLockWriterBlocksReaders(t *testing.T) {
	var l SpinRWLock
	l.Lock()
	got := make(chan struct{})
	go func() {
		l.RLock()
		close(got)
		l.RUnlock()
	}()
	//hydra:vet:ignore lockscope -- exclusion test: waits (bounded) under Lock to assert readers stay out
	select { //hydra:blockok -- exclusion test: 20ms-bounded select under Lock is the assertion itself
	case <-got:
		t.Fatal("reader acquired lock while writer held it")
	case <-time.After(20 * time.Millisecond):
	}
	l.Unlock()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("reader never acquired lock after writer released")
	}
}

func TestSpinRWLockCounterIntegrity(t *testing.T) {
	var l SpinRWLock
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() { // writer
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
		go func() { // reader
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.RLock()
				_ = counter
				l.RUnlock()
			}
		}()
	}
	wg.Wait()
	if counter != 2000 {
		t.Fatalf("counter = %d, want 2000", counter)
	}
}

func TestTryUpgrade(t *testing.T) {
	var l SpinRWLock
	l.RLock()
	if !l.TryUpgrade() {
		t.Fatal("sole reader failed to upgrade")
	}
	l.Unlock()

	l.RLock()
	l.RLock()
	if l.TryUpgrade() {
		t.Fatal("upgrade succeeded with two readers")
	}
	l.RUnlock()
	l.RUnlock()
}

func TestStressProducesWork(t *testing.T) {
	for _, k := range []Kind{KindTATAS, KindBlocking, KindHybrid} {
		r := Stress(k, 4, 30*time.Millisecond, 5, 20)
		if r.Acquisitions == 0 {
			t.Errorf("%v: no acquisitions in stress window", k)
		}
		if r.Throughput() <= 0 {
			t.Errorf("%v: non-positive throughput", k)
		}
	}
}

func TestStressResultThroughputZeroDuration(t *testing.T) {
	r := StressResult{Acquisitions: 10}
	if r.Throughput() != 0 {
		t.Fatal("zero-duration throughput should be 0")
	}
}

func BenchmarkUncontended(b *testing.B) {
	for _, k := range Kinds() {
		b.Run(k.String(), func(b *testing.B) {
			l := New(k)
			for i := 0; i < b.N; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}

func BenchmarkContended(b *testing.B) {
	for _, k := range Kinds() {
		b.Run(k.String(), func(b *testing.B) {
			l := New(k)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					l.Unlock()
				}
			})
		})
	}
}
