package sync2

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue[int](4)
	for i := 0; i < 4; i++ {
		if !q.Put(i) {
			t.Fatalf("put %d refused", i)
		}
	}
	if q.Len() != 4 || q.Cap() != 4 {
		t.Fatalf("len=%d cap=%d", q.Len(), q.Cap())
	}
	got, ok := q.Drain(nil)
	if !ok {
		t.Fatal("drain reported closed")
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: got %v", got)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len after drain = %d", q.Len())
	}
}

func TestQueuePutBlocksUntilDrain(t *testing.T) {
	q := NewQueue[int](1)
	q.Put(0)
	unblocked := make(chan struct{})
	go func() {
		q.Put(1) // must block: queue full
		close(unblocked)
	}()
	select {
	case <-unblocked:
		t.Fatal("Put did not block on a full queue")
	case <-time.After(20 * time.Millisecond):
	}
	if got, _ := q.Drain(nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("drain = %v", got)
	}
	select {
	case <-unblocked:
	case <-time.After(2 * time.Second):
		t.Fatal("Put never unblocked after drain")
	}
}

// Close must (a) refuse new Puts, (b) release Puts blocked on a full
// queue, (c) let the consumer drain the accepted backlog before
// reporting closed. This is the shutdown contract the DORA engine's
// Close/Exec race fix depends on.
func TestQueueClose(t *testing.T) {
	q := NewQueue[int](2)
	q.Put(1)
	q.Put(2)
	blockedResult := make(chan bool, 1)
	go func() {
		blockedResult <- q.Put(3) // blocks on full, then fails at close
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	if ok := <-blockedResult; ok {
		t.Fatal("Put blocked across Close reported success")
	}
	if q.Put(4) {
		t.Fatal("Put accepted after Close")
	}
	// The accepted backlog survives the close...
	got, ok := q.Drain(nil)
	if !ok {
		t.Fatal("backlog dropped: Drain reported closed before yielding it")
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("backlog = %v", got)
	}
	// ...and only then does Drain report closed.
	if got, ok := q.Drain(nil); ok || len(got) != 0 {
		t.Fatalf("after backlog: got=%v ok=%v", got, ok)
	}
}

func TestQueueDrainBlocksUntilPut(t *testing.T) {
	q := NewQueue[int](4)
	got := make(chan []int, 1)
	go func() {
		v, _ := q.Drain(nil)
		got <- v
	}()
	select {
	case v := <-got:
		t.Fatalf("drain returned %v from an empty queue", v)
	case <-time.After(20 * time.Millisecond):
	}
	q.Put(42)
	select {
	case v := <-got:
		if len(v) != 1 || v[0] != 42 {
			t.Fatalf("drain = %v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("drain never woke")
	}
}

// Many producers, one batching consumer: nothing lost, nothing
// duplicated, and the consumer sees Close only after the full backlog.
func TestQueueProducersConsumer(t *testing.T) {
	const producers, per = 8, 500
	q := NewQueue[int](16)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if !q.Put(p*per + i) {
					t.Errorf("put refused before close")
					return
				}
			}
		}(p)
	}
	seen := make([]bool, producers*per)
	var total, batches atomic.Int64
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		var buf []int
		for {
			var ok bool
			buf, ok = q.Drain(buf[:0])
			for _, v := range buf {
				if seen[v] {
					t.Errorf("duplicate %d", v)
					return
				}
				seen[v] = true
				total.Add(1)
			}
			if len(buf) > 0 {
				batches.Add(1)
			}
			if !ok {
				return
			}
		}
	}()
	wg.Wait()
	q.Close()
	select {
	case <-consumerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("consumer never saw close")
	}
	if total.Load() != producers*per {
		t.Fatalf("consumed %d of %d", total.Load(), producers*per)
	}
	if batches.Load() > total.Load() {
		t.Fatal("batch accounting broken")
	}
}
