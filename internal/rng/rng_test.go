package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/1000 times", same)
	}
}

func TestZeroSeedNotStuck(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1, c2 := parent.Split(0), parent.Split(1)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling child streams produced identical first value")
	}
	// Splitting must not perturb the parent.
	p1 := New(7)
	p1.Split(0)
	p2 := New(7)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("Split disturbed parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := s.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	s := New(4)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(10, 20)
		if v < 10 || v > 20 {
			t.Fatalf("IntRange(10,20) = %d", v)
		}
	}
	if got := s.IntRange(5, 5); got != 5 {
		t.Fatalf("IntRange(5,5) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniform draws = %v, want ~0.5", mean)
	}
}

func TestPerm(t *testing.T) {
	s := New(8)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid or duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(9)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestBytesDeterministicAndFull(t *testing.T) {
	a := make([]byte, 37)
	b := make([]byte, 37)
	New(11).Bytes(a)
	New(11).Bytes(b)
	if string(a) != string(b) {
		t.Fatal("Bytes not deterministic")
	}
	zero := 0
	for _, v := range a {
		if v == 0 {
			zero++
		}
	}
	if zero > 10 {
		t.Fatalf("suspiciously many zero bytes: %d/37", zero)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(12)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestZipfBoundsProperty(t *testing.T) {
	s := New(13)
	z := NewZipf(s, 1000, 0.9)
	f := func(uint8) bool {
		v := z.Next()
		return v < 1000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(14)
	z := NewZipf(s, 10000, 0.99)
	const n = 200000
	counts := map[uint64]int{}
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Item 0 must be the hottest by a wide margin, and the top item
	// should absorb a noticeable share of all draws.
	if counts[0] < counts[1] {
		t.Fatalf("zipf not skewed: count[0]=%d < count[1]=%d", counts[0], counts[1])
	}
	if frac := float64(counts[0]) / n; frac < 0.03 {
		t.Fatalf("hottest item only %.4f of draws; want heavy skew", frac)
	}
}

func TestZipfUniformish(t *testing.T) {
	// Low theta should spread mass broadly: the hottest item takes a
	// far smaller share than under high theta.
	s := New(15)
	lo := NewZipf(s.Split(0), 1000, 0.1)
	hi := NewZipf(s.Split(1), 1000, 0.99)
	count := func(z *Zipf) int {
		c := 0
		for i := 0; i < 50000; i++ {
			if z.Next() == 0 {
				c++
			}
		}
		return c
	}
	if clo, chi := count(lo), count(hi); clo >= chi {
		t.Fatalf("theta=0.1 hottest share (%d) >= theta=0.99 share (%d)", clo, chi)
	}
}

func TestZipfPanics(t *testing.T) {
	s := New(16)
	for _, tc := range []struct {
		n     uint64
		theta float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.theta)
				}
			}()
			NewZipf(s, tc.n, tc.theta)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(New(1), 1<<20, 0.99)
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
