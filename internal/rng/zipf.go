package rng

import "math"

// Zipf draws integers in [0, n) with a zipfian distribution of
// exponent theta, the standard skewed-access model for OLTP
// benchmarks (YCSB uses theta ≈ 0.99). Item 0 is the hottest.
//
// The implementation uses the rejection-inversion free, closed-form
// approximation of Gray et al. ("Quickly generating billion-record
// synthetic databases", SIGMOD'94), precomputing the two constants
// that make Next O(1).
type Zipf struct {
	src   *Source
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // zeta(2, theta)
}

// NewZipf returns a zipfian generator over [0, n) with exponent
// theta in (0, 1). It panics if n == 0 or theta is out of range.
func NewZipf(src *Source, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with n == 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("rng: NewZipf theta must be in (0, 1)")
	}
	z := &Zipf{src: src, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.half = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.half/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Exact summation up to a cap, then the Euler–Maclaurin integral
	// tail; the error is far below the distribution distortion any
	// workload would notice, and construction stays O(1)-ish for the
	// billion-key tables the generators use.
	const cap = 1 << 20
	sum := 0.0
	m := n
	if m > cap {
		m = cap
	}
	for i := uint64(1); i <= m; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > m {
		// integral of x^-theta from m to n
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(m), 1-theta)) / (1 - theta)
	}
	return sum
}

// Next returns the next zipf-distributed value in [0, n).
func (z *Zipf) Next() uint64 {
	u := z.src.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// N returns the size of the domain.
func (z *Zipf) N() uint64 { return z.n }
