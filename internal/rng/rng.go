// Package rng provides small, fast, deterministic random number
// generators for workload generation and experiments.
//
// The standard library's math/rand is avoided in hot paths for two
// reasons: the global source is mutex-protected, which would itself
// become a contended critical section and pollute scalability
// measurements, and we need bit-for-bit reproducible per-worker
// streams so experiment runs are repeatable.
package rng

// Source is a xorshift128+ generator. It is not safe for concurrent
// use; create one Source per worker (see Split).
type Source struct {
	s0, s1 uint64
}

// New returns a Source seeded from seed. Any seed, including zero, is
// valid: the state is scrambled through splitmix64 so that nearby
// seeds produce unrelated streams.
func New(seed uint64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the generator to the stream identified by seed.
func (s *Source) Seed(seed uint64) {
	// splitmix64 expansion, recommended seeding for xorshift family.
	z := seed
	z, s.s0 = splitmix64(z)
	_, s.s1 = splitmix64(z)
	if s.s0 == 0 && s.s1 == 0 {
		s.s1 = 0x9e3779b97f4a7c15 // all-zero state is a fixed point
	}
}

func splitmix64(x uint64) (next, out uint64) {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return x, z ^ (z >> 31)
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	x, y := s.s0, s.s1
	s.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	s.s1 = x
	return x + y
}

// Split derives the i-th child stream from s without disturbing the
// parent. Children of distinct indices are statistically independent.
func (s *Source) Split(i uint64) *Source {
	return New(s.s0 ^ (s.s1 * 0x9e3779b97f4a7c15) ^ (i+1)*0xd1342543de82ef95)
}

// Intn returns a value uniform in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a value uniform in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// IntRange returns a value uniform in [lo, hi] inclusive. It panics
// if hi < lo.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Bytes fills b with pseudo-random bytes.
func (s *Source) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := s.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := s.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
