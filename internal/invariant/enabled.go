//go:build hydradebug

package invariant

import (
	"fmt"
	"runtime"
	"sync"
)

// Enabled reports whether the assertions are compiled in.
const Enabled = true

type hold struct {
	tier int
	site string
}

var (
	mu sync.Mutex
	// stacks tracks, per goroutine, the tiers currently held.
	stacks = map[uint64][]hold{}
	// owned maps a pooled object to the site that took it from its
	// pool and has not yet put it back.
	owned = map[any]string{}
)

// gid parses the calling goroutine's id out of the runtime.Stack
// header ("goroutine N [...]"). Slow, which is fine: this file only
// exists under the hydradebug tag.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id uint64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Acquired records that the calling goroutine is taking the lock at
// the given tier. It panics if the goroutine already holds a lock with
// a strictly higher tier: that acquisition order can deadlock against
// a goroutine locking in the declared order. Call it adjacent to the
// Lock call; equal tiers nest freely (latch crabbing).
func Acquired(tier int, site string) {
	g := gid()
	mu.Lock()
	defer mu.Unlock()
	for _, h := range stacks[g] {
		if h.tier > tier {
			panic(fmt.Sprintf("invariant: latch-order violation: acquiring %s (tier %d) while holding %s (tier %d)",
				site, tier, h.site, h.tier))
		}
	}
	stacks[g] = append(stacks[g], hold{tier: tier, site: site})
}

// Released drops the most recent matching hold. Releases may happen in
// any order (crabbing releases the parent first). It panics if the
// goroutine does not hold the named lock.
func Released(tier int, site string) {
	g := gid()
	mu.Lock()
	defer mu.Unlock()
	st := stacks[g]
	for i := len(st) - 1; i >= 0; i-- {
		if st[i].tier == tier && st[i].site == site {
			stacks[g] = append(st[:i], st[i+1:]...)
			if len(stacks[g]) == 0 {
				delete(stacks, g)
			}
			return
		}
	}
	panic(fmt.Sprintf("invariant: releasing %s (tier %d) that this goroutine does not hold", site, tier))
}

// PoolGot records ownership of an object taken from a sync.Pool (or
// created fresh on a pool miss). It panics if the object is already
// outstanding — two holders of one pooled object is the double-Get
// aliasing bug poolcycle cannot see across goroutines.
func PoolGot(site string, obj any) {
	mu.Lock()
	defer mu.Unlock()
	if prev, ok := owned[obj]; ok {
		panic(fmt.Sprintf("invariant: pooled object got at %s is already outstanding from %s", site, prev))
	}
	owned[obj] = site
}

// PoolPut ends ownership of a pooled object. It panics on a Put of an
// object that is not outstanding: a double Put, or a Put of something
// that never went through PoolGot.
func PoolPut(site string, obj any) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := owned[obj]; !ok {
		panic(fmt.Sprintf("invariant: %s puts a pooled object that is not outstanding (double Put?)", site))
	}
	delete(owned, obj)
}

// Assert panics with the message if cond is false.
func Assert(cond bool, msg string) {
	if !cond {
		panic("invariant: " + msg)
	}
}
