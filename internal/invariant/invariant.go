// Package invariant is hydra's runtime assertion layer. It checks, in
// running code, the same concurrency invariants that the hydra-vet
// analyzers (internal/analysis) enforce statically: latches must be
// acquired in ascending tier order, and sync.Pool objects must be
// owned by exactly one holder between Get and Put.
//
// The checks are compiled in only under the `hydradebug` build tag
// (`go test -tags hydradebug ...`, see `make stress`); without the tag
// every function in this package is an empty no-op that the compiler
// inlines away, so instrumented hot paths pay nothing in release
// builds. Violations panic immediately with the offending sites, which
// turns a once-in-a-million-schedules deadlock or double-free into a
// deterministic test failure at the first wrong acquisition.
package invariant

// Latch tiers. Lower tiers must be acquired first; acquiring a lower
// tier while holding a higher one is an ordering violation. Equal
// tiers may nest (hand-over-hand crabbing on frame latches).
//
// These constants are the single source of truth for the hierarchy:
// the latchorder analyzer builds its declared ranking from them, and
// the table in DESIGN.md documents them. Adding a lock means adding a
// tier here and a site entry in latchorder.Hierarchy.
const (
	TierEngineCkpt  = 10 // core.Engine.ckptMu
	TierEngineMu    = 20 // core.Engine.mu
	TierTxnMu       = 30 // core.Txn.mu
	TierMVCCPublish = 32 // core.verTable.publishMu (commit publish; ascends into the WAL tiers)
	TierMVCCSnap    = 34 // core.verTable.snapMu (snapshot registry; ascends into verShard.mu via sweep)
	TierTreeCoarse  = 40 // btree.Tree.coarse
	TierTreeRoot    = 42 // btree.Tree.rootMu
	TierLockPart    = 50 // lock.partition.mu
	TierFrameLatch  = 60 // buffer.Frame.Latch
	TierMVCCShard   = 62 // core.verShard.mu (version chains; acquired under page latches on install)
	TierPoolShard   = 70 // buffer.shard.mu
	TierFileStore   = 72 // buffer.FileStore.mu
	TierWALLog      = 80 // wal.Log.mu
	TierWALWait     = 82 // wal.Log.waitMu
	TierWALDevice   = 84 // wal.SegmentedDevice.mu
	TierDoraQueue   = 90 // sync2.Queue.mu (DORA executor inboxes)
)
