//go:build !hydradebug

package invariant

import "testing"

// The release-build stubs must be callable in any pattern without
// side effects — including ones that would panic under hydradebug.
func TestStubsAreInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the hydradebug tag")
	}
	Acquired(TierPoolShard, "shard")
	Acquired(TierTxnMu, "txn") // inversion: ignored without the tag
	Released(TierFrameLatch, "never held")
	obj := new(int)
	PoolPut("never got", obj)
	PoolGot("a", obj)
	PoolGot("b", obj)
	Assert(false, "ignored")
}
