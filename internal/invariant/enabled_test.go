//go:build hydradebug

package invariant

import "testing"

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestTierOrderEnforced(t *testing.T) {
	Acquired(TierFrameLatch, "latch")
	Acquired(TierPoolShard, "shard") // ascending: fine
	Acquired(TierPoolShard, "shard") // equal: crabbing, fine
	Released(TierPoolShard, "shard")
	mustPanic(t, "descending acquire", func() {
		Acquired(TierTxnMu, "txn") // 30 under held 70: inversion
	})
	Released(TierPoolShard, "shard")
	Released(TierFrameLatch, "latch")
	mustPanic(t, "release of unheld", func() {
		Released(TierFrameLatch, "latch")
	})
}

func TestTierStacksArePerGoroutine(t *testing.T) {
	Acquired(TierWALLog, "wal")
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The other goroutine holds tier 80; this one holds nothing,
		// so a low-tier acquire here must be fine.
		Acquired(TierEngineCkpt, "ckpt")
		Released(TierEngineCkpt, "ckpt")
	}()
	<-done
	Released(TierWALLog, "wal")
}

func TestPoolOwnership(t *testing.T) {
	obj := new(int)
	PoolGot("test.get", obj)
	mustPanic(t, "double get", func() { PoolGot("test.get2", obj) })
	PoolPut("test.put", obj)
	mustPanic(t, "double put", func() { PoolPut("test.put2", obj) })
}

func TestAssert(t *testing.T) {
	Assert(true, "unreachable")
	mustPanic(t, "failed assert", func() { Assert(false, "boom") })
}
