//go:build !hydradebug

package invariant

// Enabled reports whether the assertions are compiled in.
const Enabled = false

// The release-build stubs are empty so instrumented call sites inline
// to nothing.

func Acquired(tier int, site string) {}
func Released(tier int, site string) {}
func PoolGot(site string, obj any)   {}
func PoolPut(site string, obj any)   {}
func Assert(cond bool, msg string)   {}
