// Package staged implements a staged, service-oriented query engine
// in the StagedDB/QPipe tradition: relational work is organized into
// stages with work queues rather than one thread per query plan. The
// centerpiece is the scan stage's *shared scan* (circular attach): at
// any moment at most one physical scan per table is in flight, and
// queries that arrive while it runs attach at the current position,
// receive tuples until the scan wraps back to their attach point, and
// detach — converting N concurrent table scans into one.
//
// The baseline mode (sharing disabled) runs one full private scan per
// query, the conventional query-at-a-time design.
package staged

import (
	"encoding/binary"
	"sync"
	"time"

	"hydra/internal/core"
	"hydra/internal/obs"
)

// Tuple is one row delivered by the scan stage.
type Tuple struct {
	Key   uint64
	Value []byte
}

// Query is a scan-filter-aggregate request.
type Query struct {
	Table *core.Table
	// Filter, if set, keeps only matching tuples.
	Filter func(Tuple) bool
	// GroupBy, if set, partitions tuples into groups and the result
	// carries one aggregate per group.
	GroupBy func(Tuple) uint64
}

// GroupAgg is the aggregate of one group.
type GroupAgg struct {
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
}

func (g *GroupAgg) add(measure uint64) {
	if g.Count == 0 || measure < g.Min {
		g.Min = measure
	}
	if g.Count == 0 || measure > g.Max {
		g.Max = measure
	}
	g.Count++
	g.Sum += measure
}

// Result aggregates the tuples a query saw.
type Result struct {
	Count uint64
	// Sum adds the first 8 bytes of each value (little endian), the
	// conventional measure column of the experiments' tables.
	Sum uint64
	// Groups holds per-group aggregates when Query.GroupBy is set.
	Groups map[uint64]*GroupAgg
}

func measureOf(t Tuple) uint64 {
	if len(t.Value) >= 8 {
		return binary.LittleEndian.Uint64(t.Value)
	}
	return 0
}

func (r *Result) add(q *Query, t Tuple) {
	m := measureOf(t)
	r.Count++
	r.Sum += m
	if q.GroupBy != nil {
		if r.Groups == nil {
			r.Groups = make(map[uint64]*GroupAgg)
		}
		key := q.GroupBy(t)
		g := r.Groups[key]
		if g == nil {
			g = &GroupAgg{}
			r.Groups[key] = g
		}
		g.add(m)
	}
}

// Options configures the engine.
type Options struct {
	// SharedScans enables circular-attach scan sharing.
	SharedScans bool
	// ChunkSize is the number of tuples scanned per latching window.
	// Default 256.
	ChunkSize int
	// AttachWindow is how long a scan round's first consumer waits
	// for contemporaries to attach before the physical scan starts —
	// the scan stage's analogue of a group-commit window. Queries
	// issued together should share a round, but a round over a cached
	// table can finish before a contemporaneous query's goroutine is
	// even scheduled; the window absorbs that scheduling skew.
	// Default 1ms; negative disables.
	AttachWindow time.Duration
}

func (o *Options) fill() {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 256
	}
	if o.AttachWindow == 0 {
		o.AttachWindow = time.Millisecond
	}
}

// Engine is the staged query engine.
type Engine struct {
	core *core.Engine
	opts Options

	mu       sync.Mutex
	scanners map[uint32]*scanner

	physicalScans obs.Counter // full table passes actually performed
	queries       obs.Counter
}

// New returns a staged engine over c.
func New(c *core.Engine, opts Options) *Engine {
	opts.fill()
	return &Engine{core: c, opts: opts, scanners: make(map[uint32]*scanner)}
}

// Stats reports scan-sharing effectiveness.
type Stats struct {
	Queries       uint64
	PhysicalScans uint64 // with sharing, PhysicalScans << Queries
}

// StatsSnapshot returns cumulative counters.
func (e *Engine) StatsSnapshot() Stats {
	return Stats{Queries: e.queries.Load(), PhysicalScans: e.physicalScans.Load()}
}

// Execute runs q to completion and returns its aggregate.
func (e *Engine) Execute(q Query) (Result, error) {
	e.queries.Add(1)
	if !e.opts.SharedScans {
		return e.executePrivate(q)
	}
	return e.executeShared(q)
}

// executePrivate is the query-at-a-time baseline: one full physical
// scan per query.
func (e *Engine) executePrivate(q Query) (Result, error) {
	var res Result
	e.physicalScans.Add(1)
	err := e.core.Exec(func(tx *core.Txn) error {
		return tx.Scan(q.Table, 0, ^uint64(0), func(key uint64, value []byte) bool {
			t := Tuple{Key: key, Value: value}
			if q.Filter == nil || q.Filter(t) {
				res.add(&q, t)
			}
			return true
		})
	})
	return res, err
}

func (e *Engine) executeShared(q Query) (Result, error) {
	s := e.scannerFor(q.Table)
	ch := make(chan Tuple, 512)
	s.attach <- ch
	var res Result
	for t := range ch {
		if q.Filter == nil || q.Filter(t) {
			res.add(&q, t)
		}
	}
	return res, nil
}

func (e *Engine) scannerFor(tbl *core.Table) *scanner {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.scanners[tbl.ID]
	if !ok {
		s = &scanner{
			engine: e,
			table:  tbl,
			attach: make(chan chan Tuple, 64),
		}
		e.scanners[tbl.ID] = s
		go s.run()
	}
	return s
}

// scanner is the per-table scan stage: one goroutine performing a
// circular scan whenever consumers are attached.
type scanner struct {
	engine *Engine
	table  *core.Table
	attach chan chan Tuple
}

// consumer tracks one attached query's progress around the circle.
type consumer struct {
	ch        chan Tuple
	attachKey uint64
	wrapped   bool // scan has wrapped past the end since attach
}

func (s *scanner) run() {
	for first := range s.attach {
		// A scan round starts when the first consumer attaches —
		// after a short admission window, so queries issued together
		// share the round even when it would complete faster than the
		// goroutine-scheduling skew between them.
		consumers := []*consumer{{ch: first, attachKey: 0}}
		if w := s.engine.opts.AttachWindow; w > 0 {
			timer := time.NewTimer(w)
		gather:
			for {
				select {
				case ch := <-s.attach:
					consumers = append(consumers, &consumer{ch: ch, attachKey: 0})
				case <-timer.C:
					break gather
				}
			}
			timer.Stop()
		}
		pos := uint64(0)
		for len(consumers) > 0 {
			// Admit late arrivals at the current position.
			for {
				select {
				case ch := <-s.attach:
					consumers = append(consumers, &consumer{ch: ch, attachKey: pos})
				default:
					goto admitted
				}
			}
		admitted:
			chunk, nextPos, atEnd := s.readChunk(pos)
			for _, t := range chunk {
				for _, c := range consumers {
					if c.wants(t.Key) {
						c.ch <- t
					}
				}
			}
			if atEnd {
				s.engine.physicalScans.Add(1)
				live := consumers[:0]
				for _, c := range consumers {
					if c.wrapped || c.attachKey == 0 {
						// Completed its full circle.
						close(c.ch)
					} else {
						c.wrapped = true
						live = append(live, c)
					}
				}
				consumers = live
				pos = 0
				continue
			}
			// Consumers whose attach point the wrapped scan has now
			// reached are done.
			live := consumers[:0]
			for _, c := range consumers {
				if c.wrapped && nextPos > c.attachKey {
					close(c.ch)
				} else {
					live = append(live, c)
				}
			}
			consumers = live
			pos = nextPos
		}
	}
}

// wants reports whether the consumer still needs the tuple at key
// given its position on the circle.
func (c *consumer) wants(key uint64) bool {
	if !c.wrapped {
		return key >= c.attachKey
	}
	return key < c.attachKey
}

// readChunk returns up to ChunkSize tuples with keys >= pos, the next
// scan position, and whether the table end was reached.
func (s *scanner) readChunk(pos uint64) ([]Tuple, uint64, bool) {
	limit := s.engine.opts.ChunkSize
	var chunk []Tuple
	s.engine.core.Exec(func(tx *core.Txn) error {
		return tx.Scan(s.table, pos, ^uint64(0), func(key uint64, value []byte) bool {
			chunk = append(chunk, Tuple{Key: key, Value: value})
			return len(chunk) < limit
		})
	})
	if len(chunk) < limit {
		return chunk, 0, true
	}
	return chunk, chunk[len(chunk)-1].Key + 1, false
}
