package staged

import (
	"hydra/internal/core"
)

// JoinQuery is a hash equi-join between two tables: the build side is
// loaded into a hash table keyed by BuildKey, then the probe side
// streams through it. Both sides ride the scan stage, so concurrent
// joins of the same tables share physical scans exactly like plain
// aggregates.
type JoinQuery struct {
	// Build is the (smaller) side materialized into the hash table.
	Build *core.Table
	// Probe streams against the hash table.
	Probe *core.Table
	// BuildKey extracts the join key from a build-side tuple; when
	// nil, the primary key is used.
	BuildKey func(Tuple) uint64
	// ProbeKey extracts the join key from a probe-side tuple; when
	// nil, the primary key is used.
	ProbeKey func(Tuple) uint64
	// On, if set, filters matched pairs.
	On func(build, probe Tuple) bool
}

// JoinResult summarizes the matched pairs.
type JoinResult struct {
	// Matches is the number of (build, probe) pairs that joined.
	Matches uint64
	// ProbeRows and BuildRows are the input cardinalities.
	ProbeRows, BuildRows uint64
}

// ExecuteJoin runs a hash join to completion.
func (e *Engine) ExecuteJoin(q JoinQuery) (JoinResult, error) {
	buildKey := q.BuildKey
	if buildKey == nil {
		buildKey = func(t Tuple) uint64 { return t.Key }
	}
	probeKey := q.ProbeKey
	if probeKey == nil {
		probeKey = func(t Tuple) uint64 { return t.Key }
	}

	var res JoinResult
	// Build phase: one pass over the build table through the scan
	// stage. Values are copied: scan-stage tuples are only valid
	// during delivery.
	ht := make(map[uint64][]Tuple)
	err := e.scanAll(q.Build, func(t Tuple) {
		res.BuildRows++
		k := buildKey(t)
		ht[k] = append(ht[k], Tuple{Key: t.Key, Value: append([]byte(nil), t.Value...)})
	})
	if err != nil {
		return res, err
	}
	// Probe phase.
	err = e.scanAll(q.Probe, func(t Tuple) {
		res.ProbeRows++
		for _, b := range ht[probeKey(t)] {
			if q.On == nil || q.On(b, t) {
				res.Matches++
			}
		}
	})
	return res, err
}

// scanAll delivers every tuple of tbl through the configured scan
// mode (shared or private).
func (e *Engine) scanAll(tbl *core.Table, fn func(Tuple)) error {
	e.queries.Add(1)
	if !e.opts.SharedScans {
		e.physicalScans.Add(1)
		return e.core.Exec(func(tx *core.Txn) error {
			return tx.Scan(tbl, 0, ^uint64(0), func(key uint64, value []byte) bool {
				fn(Tuple{Key: key, Value: value})
				return true
			})
		})
	}
	s := e.scannerFor(tbl)
	ch := make(chan Tuple, 512)
	s.attach <- ch
	for t := range ch {
		fn(t)
	}
	return nil
}
