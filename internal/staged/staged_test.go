package staged

import (
	"encoding/binary"
	"sync"
	"testing"

	"hydra/internal/core"
)

func setup(t *testing.T, rows uint64, shared bool) (*Engine, *core.Table) {
	t.Helper()
	c, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	tbl, err := c.CreateTable("facts")
	if err != nil {
		t.Fatal(err)
	}
	err = c.Exec(func(tx *core.Txn) error {
		for i := uint64(0); i < rows; i++ {
			v := make([]byte, 8)
			binary.LittleEndian.PutUint64(v, i)
			if err := tx.Insert(tbl, i, v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, Options{SharedScans: shared, ChunkSize: 64}), tbl
}

func wantSum(n uint64) uint64 { return n * (n - 1) / 2 }

func TestSingleQueryBothModes(t *testing.T) {
	for _, shared := range []bool{false, true} {
		e, tbl := setup(t, 1000, shared)
		res, err := e.Execute(Query{Table: tbl})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 1000 || res.Sum != wantSum(1000) {
			t.Fatalf("shared=%v: count=%d sum=%d", shared, res.Count, res.Sum)
		}
	}
}

func TestFilter(t *testing.T) {
	e, tbl := setup(t, 1000, true)
	res, err := e.Execute(Query{Table: tbl, Filter: func(tp Tuple) bool { return tp.Key%2 == 0 }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 500 {
		t.Fatalf("filtered count = %d", res.Count)
	}
}

func TestConcurrentSharedQueriesAllComplete(t *testing.T) {
	e, tbl := setup(t, 2000, true)
	const n = 16
	var wg sync.WaitGroup
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Execute(Query{Table: tbl})
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.Count != 2000 || res.Sum != wantSum(2000) {
			t.Fatalf("query %d saw count=%d sum=%d; circular attach lost tuples", i, res.Count, res.Sum)
		}
	}
}

func TestSharingReducesPhysicalScans(t *testing.T) {
	e, tbl := setup(t, 5000, true)
	const n = 12
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Execute(Query{Table: tbl}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := e.StatsSnapshot()
	if st.Queries != n {
		t.Fatalf("queries = %d", st.Queries)
	}
	if st.PhysicalScans >= n {
		t.Fatalf("no sharing: %d physical scans for %d queries", st.PhysicalScans, n)
	}
}

func TestPrivateModeOneScanPerQuery(t *testing.T) {
	e, tbl := setup(t, 500, false)
	for i := 0; i < 5; i++ {
		if _, err := e.Execute(Query{Table: tbl}); err != nil {
			t.Fatal(err)
		}
	}
	st := e.StatsSnapshot()
	if st.PhysicalScans != 5 {
		t.Fatalf("private scans = %d, want 5", st.PhysicalScans)
	}
}

func TestSequentialSharedQueries(t *testing.T) {
	// Back-to-back queries (no overlap) must each still see the full
	// table: the scanner round terminates and restarts cleanly.
	e, tbl := setup(t, 800, true)
	for i := 0; i < 4; i++ {
		res, err := e.Execute(Query{Table: tbl})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 800 {
			t.Fatalf("round %d count = %d", i, res.Count)
		}
	}
}

func TestGroupByAggregation(t *testing.T) {
	for _, shared := range []bool{false, true} {
		e, tbl := setup(t, 1000, shared)
		res, err := e.Execute(Query{
			Table:   tbl,
			GroupBy: func(tp Tuple) uint64 { return tp.Key % 4 },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Groups) != 4 {
			t.Fatalf("shared=%v: %d groups", shared, len(res.Groups))
		}
		var total uint64
		for g, agg := range res.Groups {
			if agg.Count != 250 {
				t.Fatalf("group %d count = %d", g, agg.Count)
			}
			if agg.Min != g { // smallest key in group g is g itself (value = key)
				t.Fatalf("group %d min = %d", g, agg.Min)
			}
			if agg.Max != 996+g {
				t.Fatalf("group %d max = %d", g, agg.Max)
			}
			total += agg.Sum
		}
		if total != res.Sum || total != wantSum(1000) {
			t.Fatalf("group sums %d != total %d", total, res.Sum)
		}
	}
}

func TestGroupByWithFilter(t *testing.T) {
	e, tbl := setup(t, 400, true)
	res, err := e.Execute(Query{
		Table:   tbl,
		Filter:  func(tp Tuple) bool { return tp.Key < 100 },
		GroupBy: func(tp Tuple) uint64 { return tp.Key / 50 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 || res.Groups[0].Count != 50 || res.Groups[1].Count != 50 {
		t.Fatalf("groups = %+v", res.Groups)
	}
}

func setupJoin(t *testing.T, shared bool) (*Engine, *core.Table, *core.Table) {
	t.Helper()
	c, err := core.Open(core.Scalable())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	orders, err := c.CreateTable("orders")
	if err != nil {
		t.Fatal(err)
	}
	customers, err := c.CreateTable("customers")
	if err != nil {
		t.Fatal(err)
	}
	err = c.Exec(func(tx *core.Txn) error {
		for cu := uint64(0); cu < 100; cu++ {
			if err := tx.Insert(customers, cu, u64(cu)); err != nil {
				return err
			}
		}
		for o := uint64(0); o < 1000; o++ {
			// order o belongs to customer o%100
			if err := tx.Insert(orders, o, u64(o%100)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(c, Options{SharedScans: shared, ChunkSize: 64}), customers, orders
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestHashJoin(t *testing.T) {
	for _, shared := range []bool{false, true} {
		e, customers, orders := setupJoin(t, shared)
		res, err := e.ExecuteJoin(JoinQuery{
			Build: customers,
			Probe: orders,
			ProbeKey: func(tp Tuple) uint64 {
				return binary.LittleEndian.Uint64(tp.Value) // customer id column
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.BuildRows != 100 || res.ProbeRows != 1000 {
			t.Fatalf("shared=%v: inputs %d/%d", shared, res.BuildRows, res.ProbeRows)
		}
		if res.Matches != 1000 { // every order matches exactly one customer
			t.Fatalf("shared=%v: matches = %d", shared, res.Matches)
		}
	}
}

func TestHashJoinWithPredicate(t *testing.T) {
	e, customers, orders := setupJoin(t, true)
	res, err := e.ExecuteJoin(JoinQuery{
		Build: customers,
		Probe: orders,
		ProbeKey: func(tp Tuple) uint64 {
			return binary.LittleEndian.Uint64(tp.Value)
		},
		On: func(build, probe Tuple) bool { return build.Key < 10 }, // customers 0..9
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 100 { // 10 orders per customer x 10 customers
		t.Fatalf("matches = %d", res.Matches)
	}
}

func TestConcurrentJoinsShareScans(t *testing.T) {
	e, customers, orders := setupJoin(t, true)
	const n = 8
	var wg sync.WaitGroup
	before := e.StatsSnapshot()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.ExecuteJoin(JoinQuery{
				Build: customers,
				Probe: orders,
				ProbeKey: func(tp Tuple) uint64 {
					return binary.LittleEndian.Uint64(tp.Value)
				},
			})
			if err != nil || res.Matches != 1000 {
				t.Errorf("join: %d, %v", res.Matches, err)
			}
		}()
	}
	wg.Wait()
	after := e.StatsSnapshot()
	// 8 joins = 16 logical scans; sharing must have collapsed them.
	if scans := after.PhysicalScans - before.PhysicalScans; scans >= 16 {
		t.Fatalf("no sharing across joins: %d physical scans", scans)
	}
}
