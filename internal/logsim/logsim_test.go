package logsim

import "testing"

const (
	records = 20000
	size    = 120
)

func TestSingleCoreAllProtocolsComparable(t *testing.T) {
	p := DefaultParams()
	var tput []float64
	for _, proto := range Protocols() {
		r := Simulate(p, proto, 1, records, size)
		if r.InsertsPerMCycle <= 0 {
			t.Fatalf("%v: non-positive throughput", proto)
		}
		tput = append(tput, r.InsertsPerMCycle)
	}
	// With no concurrency the three designs are within a few percent:
	// the same total work runs on one core.
	for i := 1; i < len(tput); i++ {
		ratio := tput[i] / tput[0]
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("single-core protocols diverge: %v", tput)
		}
	}
}

// The Aether shape: serial saturates at the critical-section rate;
// decoupled saturates later (copy outside); consolidated keeps
// scaling because mutex acquisitions per insert fall with load.
func TestScalingOrdering(t *testing.T) {
	p := DefaultParams()
	cores := 64
	serial := Simulate(p, Serial, cores, records, size)
	dec := Simulate(p, Decoupled, cores, records, size)
	cons := Simulate(p, Consolidated, cores, records, size)
	if !(serial.InsertsPerMCycle < dec.InsertsPerMCycle) {
		t.Fatalf("serial (%f) not below decoupled (%f) at %d cores",
			serial.InsertsPerMCycle, dec.InsertsPerMCycle, cores)
	}
	if !(dec.InsertsPerMCycle < cons.InsertsPerMCycle) {
		t.Fatalf("decoupled (%f) not below consolidated (%f) at %d cores",
			dec.InsertsPerMCycle, cons.InsertsPerMCycle, cores)
	}
}

func TestSerialSaturates(t *testing.T) {
	p := DefaultParams()
	r16 := Simulate(p, Serial, 16, records, size)
	r64 := Simulate(p, Serial, 64, records, size)
	// Saturated: quadrupling cores gains under 10%.
	if r64.InsertsPerMCycle > r16.InsertsPerMCycle*1.1 {
		t.Fatalf("serial still scaling past 16 cores: %f -> %f",
			r16.InsertsPerMCycle, r64.InsertsPerMCycle)
	}
}

func TestConsolidationGroupsUnderLoad(t *testing.T) {
	p := DefaultParams()
	r1 := Simulate(p, Consolidated, 1, records, size)
	if r1.MutexAcqPerInsert != 1 || r1.MeanGroupSize != 1 {
		t.Fatalf("uncontended consolidation should not group: %+v", r1)
	}
	r64 := Simulate(p, Consolidated, 64, records, size)
	if r64.MutexAcqPerInsert >= 0.5 {
		t.Fatalf("no grouping at 64 cores: %f acq/insert", r64.MutexAcqPerInsert)
	}
	if r64.MeanGroupSize <= 2 {
		t.Fatalf("mean group size %f at 64 cores", r64.MeanGroupSize)
	}
	if r64.MeanGroupSize > float64(p.GroupCap) {
		t.Fatalf("group size %f exceeds cap %d", r64.MeanGroupSize, p.GroupCap)
	}
}

func TestLargeRecordsHurtSerialMost(t *testing.T) {
	p := DefaultParams()
	cores := 32
	small := Simulate(p, Serial, cores, records, 64)
	large := Simulate(p, Serial, cores, records, 4096)
	ratioSerial := small.InsertsPerMCycle / large.InsertsPerMCycle
	smallD := Simulate(p, Decoupled, cores, records, 64)
	largeD := Simulate(p, Decoupled, cores, records, 4096)
	ratioDec := smallD.InsertsPerMCycle / largeD.InsertsPerMCycle
	// The serial design's critical section grows with record size, so
	// its large-record penalty must exceed the decoupled design's.
	if ratioSerial <= ratioDec {
		t.Fatalf("serial size penalty %.2f not worse than decoupled %.2f", ratioSerial, ratioDec)
	}
}

func TestSweepShape(t *testing.T) {
	out := Sweep(DefaultParams(), []int{1, 4, 16}, 5000, 120)
	if len(out) != 3 {
		t.Fatalf("sweep protocols = %d", len(out))
	}
	for proto, rs := range out {
		if len(rs) != 3 {
			t.Fatalf("%v: %d results", proto, len(rs))
		}
		// Throughput must never *fall* with cores in this cost model
		// by more than noise (it saturates, not collapses, since the
		// model has no cache-thrash term).
		if rs[2].InsertsPerMCycle < rs[0].InsertsPerMCycle*0.8 {
			t.Fatalf("%v: throughput fell with cores: %v", proto, rs)
		}
	}
}

func TestProtocolString(t *testing.T) {
	if Serial.String() != "serial" || Consolidated.String() != "consolidated" || Protocol(9).String() != "unknown" {
		t.Fatal("Protocol.String mismatch")
	}
}

func TestDeterminism(t *testing.T) {
	a := Simulate(DefaultParams(), Consolidated, 8, 10000, 120)
	b := Simulate(DefaultParams(), Consolidated, 8, 10000, 120)
	if a != b {
		t.Fatal("simulation not deterministic")
	}
}
