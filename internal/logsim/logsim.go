// Package logsim is a deterministic discrete-event simulator of
// concurrent log insertion on a chip multiprocessor. The measured
// experiment (E2) exercises the real wal package, but its contention
// phenomena — the serial buffer's collapse, consolidation's group
// formation — only materialize when insert critical sections actually
// overlap, i.e. on two or more hardware contexts. On single-context
// hosts this simulator substitutes for the missing hardware: it
// replays the three insert protocols over virtual cores with explicit
// costs for allocation, buffer fill, and lock handoff, reproducing
// the throughput-vs-cores shape of the Aether study.
package logsim

import "sort"

// Params are the cost model, in abstract cycles.
type Params struct {
	// AllocCycles is the LSN/space allocation work (a few arithmetic
	// ops and bounds checks) performed while holding the mutex.
	AllocCycles float64
	// CopyCyclesPerByte is the memcpy cost of the buffer fill.
	CopyCyclesPerByte float64
	// HandoffCycles is the cost of transferring a contended mutex
	// between cores (cache-line transfer + wakeup).
	HandoffCycles float64
	// WorkCycles is the non-logging transaction work between inserts
	// (generating the record, updating pages).
	WorkCycles float64
	// GroupCap bounds how many requests one consolidation group can
	// absorb (the slot size cap).
	GroupCap int
}

// DefaultParams returns costs roughly proportioned like a 2010-era
// x86 (mutex handoff ~ two cache-line transfers, memcpy ~ 0.25 B/cy).
func DefaultParams() Params {
	return Params{
		AllocCycles:       60,
		CopyCyclesPerByte: 0.25,
		HandoffCycles:     400,
		WorkCycles:        3000,
		GroupCap:          24,
	}
}

// Protocol selects the insert algorithm being simulated; mirrors
// wal.BufferKind.
type Protocol int

const (
	// Serial holds the mutex across allocation and copy.
	Serial Protocol = iota
	// Decoupled holds the mutex for allocation only.
	Decoupled
	// Consolidated adds group formation in front of the mutex.
	Consolidated
)

func (p Protocol) String() string {
	switch p {
	case Serial:
		return "serial"
	case Decoupled:
		return "decoupled"
	case Consolidated:
		return "consolidated"
	}
	return "unknown"
}

// Protocols lists the simulated algorithms in sweep order.
func Protocols() []Protocol { return []Protocol{Serial, Decoupled, Consolidated} }

// Result summarizes one simulated configuration.
type Result struct {
	Protocol Protocol
	Cores    int
	// InsertsPerMCycle is aggregate records inserted per million
	// cycles (the scale-free throughput measure).
	InsertsPerMCycle float64
	// MutexAcqPerInsert is mutex acquisitions per record (< 1 under
	// consolidation).
	MutexAcqPerInsert float64
	// MeanGroupSize is the average consolidation group (1 elsewhere).
	MeanGroupSize float64
}

// Simulate runs records inserts of recordSize bytes spread over cores
// and returns aggregate statistics.
func Simulate(p Params, proto Protocol, cores, records, recordSize int) Result {
	copyCost := p.CopyCyclesPerByte * float64(recordSize)
	// coreTime[i] is the virtual clock of core i.
	coreTime := make([]float64, cores)
	mutexFree := 0.0 // time the mutex becomes available
	acquisitions := 0
	groups := 0

	switch proto {
	case Serial, Decoupled:
		for done := 0; done < records; done++ {
			// The earliest-finishing core issues the next insert.
			c := argmin(coreTime)
			arrive := coreTime[c] + p.WorkCycles
			start := arrive
			if mutexFree > arrive {
				start = mutexFree + p.HandoffCycles
			}
			acquisitions++
			var release, finish float64
			if proto == Serial {
				release = start + p.AllocCycles + copyCost
				finish = release
			} else {
				release = start + p.AllocCycles
				finish = release + copyCost
			}
			mutexFree = release
			coreTime[c] = finish
		}
	case Consolidated:
		// Cores whose request arrives while the mutex is busy join
		// the forming group instead of queueing, up to the cap. The
		// group leader performs one allocation; members then copy in
		// parallel on their own cores.
		type req struct {
			core   int
			arrive float64
		}
		done := 0
		for done < records {
			// Collect the next batch: the leader is the earliest
			// arrival; everyone arriving before the leader's mutex
			// release joins (cap permitting).
			reqs := make([]req, 0, p.GroupCap)
			order := coreOrder(coreTime)
			leader := order[0]
			leadArrive := coreTime[leader] + p.WorkCycles
			start := leadArrive
			if mutexFree > leadArrive {
				start = mutexFree + p.HandoffCycles
			}
			release := start + p.AllocCycles
			reqs = append(reqs, req{leader, leadArrive})
			for _, c := range order[1:] {
				if len(reqs) >= p.GroupCap || done+len(reqs) >= records {
					break
				}
				a := coreTime[c] + p.WorkCycles
				if a <= release {
					reqs = append(reqs, req{c, a})
				}
			}
			acquisitions++
			groups++
			for _, r := range reqs {
				begin := release
				if r.arrive > begin {
					begin = r.arrive
				}
				coreTime[r.core] = begin + copyCost
			}
			mutexFree = release
			done += len(reqs)
		}
	}

	end := 0.0
	for _, t := range coreTime {
		if t > end {
			end = t
		}
	}
	res := Result{
		Protocol:          proto,
		Cores:             cores,
		InsertsPerMCycle:  float64(records) / end * 1e6,
		MutexAcqPerInsert: float64(acquisitions) / float64(records),
		MeanGroupSize:     1,
	}
	if groups > 0 {
		res.MeanGroupSize = float64(records) / float64(groups)
	}
	return res
}

// Sweep simulates all protocols across core counts.
func Sweep(p Params, coreCounts []int, records, recordSize int) map[Protocol][]Result {
	out := make(map[Protocol][]Result)
	for _, proto := range Protocols() {
		for _, n := range coreCounts {
			out[proto] = append(out[proto], Simulate(p, proto, n, records, recordSize))
		}
	}
	return out
}

func argmin(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v < xs[best] {
			best = i
		}
	}
	return best
}

// coreOrder returns core indices sorted by their clocks.
func coreOrder(coreTime []float64) []int {
	order := make([]int, len(coreTime))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return coreTime[order[a]] < coreTime[order[b]] })
	return order
}
