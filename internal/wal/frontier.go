package wal

import (
	"sync"
	"sync/atomic"
)

// frontier tracks the contiguously-filled prefix of the log buffer
// when records are copied in out of order (decoupled buffer fill).
// Writers complete arbitrary [start, end) intervals; Filled() is the
// highest LSN below which every byte has been copied.
type frontier struct {
	mu      sync.Mutex
	filled  atomic.Uint64
	pending map[uint64]uint64 // start -> end of completed, detached intervals
}

func newFrontier() *frontier {
	return &frontier{pending: make(map[uint64]uint64)}
}

// complete marks [start, end) as filled and returns true if the
// contiguous frontier advanced.
func (f *frontier) complete(start, end uint64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.filled.Load()
	if start != cur {
		f.pending[start] = end
		return false
	}
	// Advance through any now-contiguous pending intervals.
	for {
		if next, ok := f.pending[end]; ok {
			delete(f.pending, end)
			end = next
			continue
		}
		break
	}
	f.filled.Store(end)
	return true
}

// Filled returns the contiguously-filled LSN frontier.
func (f *frontier) Filled() uint64 { return f.filled.Load() }
