package wal

import (
	"bytes"
	"os"
	"testing"
)

// benchWrapFlush measures one wrap-around flush (the worst case for
// submission count: two ring regions) through either the vectored or
// the sequential device path, and reports the measured per-flush
// write-submission count as writes/flush.
func benchWrapFlush(b *testing.B, vectored bool) {
	mem := NewMem()
	var dev Device = mem
	if !vectored {
		dev = &plainDev{d: mem}
	}
	l := newStoppedLog(b, dev, Options{Kind: Serial, SyncOnFlush: true})

	ringSize := uint64(l.opts.BufferSize)
	startAt := ringSize - 64 // every iteration's region wraps here
	payload := bytes.Repeat([]byte("b"), 4096)
	rec := make([]byte, EncodedSize(len(payload)))
	if _, err := Encode(&Record{Type: RecUpdate, TxnID: 1, Payload: payload}, rec); err != nil {
		b.Fatal(err)
	}
	if _, err := mem.WriteAt(make([]byte, startAt), 0); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Rewind the log to the same wrapped region each iteration so
		// the flush shape is identical and the device never grows.
		l.next = startAt
		l.fr.filled.Store(startAt)
		l.flushed.Store(startAt)
		if _, err := l.insertSerial(rec, nil); err != nil {
			b.Fatal(err)
		}
		select {
		case <-l.kick:
		default:
		}
		if err := l.flushOnce(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := l.StatsSnapshot()
	b.ReportMetric(float64(mem.Writes())/float64(b.N), "writes/flush")
	b.ReportMetric(float64(st.FlushSyncs)/float64(b.N), "syncs/flush")
}

// BenchmarkFlushWrapVectored: the batched path — one WriteVec
// submission carries both ring regions of a wrapped flush.
func BenchmarkFlushWrapVectored(b *testing.B) { benchWrapFlush(b, true) }

// BenchmarkFlushWrapSequential: the before shape — one WriteAt per
// ring region (2 writes per wrapped flush).
func BenchmarkFlushWrapSequential(b *testing.B) { benchWrapFlush(b, false) }

// benchSegSync measures Sync over a segmented device with liveSegs
// segments of which exactly one is dirtied per iteration, reporting
// how many files were actually fsynced per Sync. The dirty-only path
// fsyncs 1; the pre-change behavior fsynced all liveSegs.
func benchSegSync(b *testing.B, liveSegs int, dirtyAll bool) {
	dir, err := os.MkdirTemp("", "hydra-bench-seg")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	const segSize = 1 << 16
	d, err := OpenSegmented(dir, segSize)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	if _, err := d.WriteAt(make([]byte, segSize*int64(liveSegs)), 0); err != nil {
		b.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		b.Fatal(err)
	}
	pre := d.DeviceStats()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dirtyAll {
			// Simulate the pre-change all-segments sync cost: touch
			// every live segment so Sync must fsync each one.
			for s := 0; s < liveSegs; s++ {
				if _, err := d.WriteAt([]byte{1}, int64(s)*segSize); err != nil {
					b.Fatal(err)
				}
			}
		} else if _, err := d.WriteAt([]byte{1}, 0); err != nil {
			b.Fatal(err)
		}
		if err := d.Sync(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := d.DeviceStats()
	b.ReportMetric(float64(st.SegSyncs-pre.SegSyncs)/float64(b.N), "segsyncs/sync")
	b.ReportMetric(float64(st.SegSyncSkips-pre.SegSyncSkips)/float64(b.N), "skipped/sync")
}

// BenchmarkSegmentedSyncDirtyOnly: 64 live segments, one dirtied per
// round — Sync fsyncs exactly the dirty one.
func BenchmarkSegmentedSyncDirtyOnly(b *testing.B) { benchSegSync(b, 64, false) }

// BenchmarkSegmentedSyncAllDirty: all 64 segments dirtied per round —
// the O(live segments) fsync cost the dirty set avoids.
func BenchmarkSegmentedSyncAllDirty(b *testing.B) { benchSegSync(b, 64, true) }

// BenchmarkSegmentedWriteVec measures a flush-shaped vectored write
// (two buffers, crossing one segment boundary) against issuing the
// same bytes as two WriteAt calls.
func BenchmarkSegmentedWriteVec(b *testing.B) {
	for _, vectored := range []bool{true, false} {
		name := "vec"
		if !vectored {
			name = "seq"
		}
		b.Run(name, func(b *testing.B) {
			dir, err := os.MkdirTemp("", "hydra-bench-vec")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			d, err := OpenSegmented(dir, 1<<20)
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			b1 := bytes.Repeat([]byte("x"), 8192)
			b2 := bytes.Repeat([]byte("y"), 8192)
			off := int64(1<<20) - 4096 // straddles the boundary
			offs := []int64{off, off + int64(len(b1))}
			b.SetBytes(int64(len(b1) + len(b2)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if vectored {
					if _, err := d.WriteVec(offs, [][]byte{b1, b2}); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, err := d.WriteAt(b1, offs[0]); err != nil {
						b.Fatal(err)
					}
					if _, err := d.WriteAt(b2, offs[1]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkLogAppendSegmented drives the full insert→flush→sync
// pipeline over a SegmentedDevice for each buffer kind, the
// end-to-end number behind the EXPERIMENTS entry.
func BenchmarkLogAppendSegmented(b *testing.B) {
	for _, kind := range BufferKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			dir, err := os.MkdirTemp("", "hydra-bench-log")
			if err != nil {
				b.Fatal(err)
			}
			defer os.RemoveAll(dir)
			d, err := OpenSegmented(dir, 1<<22)
			if err != nil {
				b.Fatal(err)
			}
			l, err := New(d, Options{Kind: kind, BufferSize: 1 << 22, SyncOnFlush: true})
			if err != nil {
				b.Fatal(err)
			}
			payload := bytes.Repeat([]byte("p"), 128)
			b.SetBytes(int64(EncodedSize(len(payload))))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.AppendFields(RecUpdate, 1, NilLSN, 0, NilLSN, payload); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
			st := l.StatsSnapshot()
			if st.Flushes > 0 {
				b.ReportMetric(float64(st.FlushWrites)/float64(st.Flushes), "writes/flush")
				b.ReportMetric(float64(st.Dev.SegSyncs)/float64(st.Flushes), "segsyncs/flush")
			}
			d.Close()
		})
	}
}
