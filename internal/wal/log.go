package wal

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/invariant"
	"hydra/internal/obs"
)

// BufferKind selects the log-insert algorithm, the subject of
// experiment E2 (claim C6: extracting parallelism from logging).
type BufferKind int

const (
	// Serial is the conventional design: one mutex protects both LSN
	// allocation and the copy into the log buffer, so the critical
	// section grows with record size.
	Serial BufferKind = iota
	// Decoupled holds the mutex only to allocate the LSN range; the
	// copy happens outside, with out-of-order completion tracking
	// (Aether's "D" variant).
	Decoupled
	// Consolidated adds the consolidation array in front of the
	// decoupled path: concurrent inserters combine into a single
	// allocation, so mutex acquisitions per record approach zero
	// under load (Aether's "CD" variant).
	Consolidated
)

var bufferKindNames = map[BufferKind]string{
	Serial: "serial", Decoupled: "decoupled", Consolidated: "consolidated",
}

func (k BufferKind) String() string {
	if s, ok := bufferKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// BufferKinds lists the insert algorithms in sweep order.
func BufferKinds() []BufferKind { return []BufferKind{Serial, Decoupled, Consolidated} }

// Options configures a Log.
type Options struct {
	// Kind selects the insert algorithm. Default Serial.
	Kind BufferKind
	// BufferSize is the ring buffer capacity in bytes; rounded up to
	// a power of two. Default 8 MiB.
	BufferSize int
	// FlushInterval is the longest a filled record may wait before a
	// background flush. Default 1ms.
	FlushInterval time.Duration
	// SyncOnFlush forces Device.Sync after each flush write (needed
	// for durability; disable only in CPU-bound experiments).
	SyncOnFlush bool
	// Slots is the consolidation array width. Default 8.
	Slots int
}

func (o *Options) fill() {
	if o.BufferSize <= 0 {
		o.BufferSize = 8 << 20
	}
	// Round to power of two.
	n := 1
	for n < o.BufferSize {
		n <<= 1
	}
	o.BufferSize = n
	if o.FlushInterval <= 0 {
		o.FlushInterval = time.Millisecond
	}
	if o.Slots <= 0 {
		o.Slots = 8
	}
}

// Stats are cumulative log-manager counters.
type Stats struct {
	Inserts       uint64 // records inserted
	InsertedBytes uint64
	Flushes       uint64 // flush IOs issued
	FlushedBytes  uint64
	MutexAcquires uint64 // allocation-mutex acquisitions (consolidation wins show here)
	GroupInserts  uint64 // records that joined a consolidation group led by another
	FlushWrites   uint64 // write submissions issued by the flusher (a vectored submission counts once)
	FlushSyncs    uint64 // Device.Sync calls issued by the flusher

	// Dev carries the device-side submission counters when the device
	// reports them (FileDevice, MemDevice, SegmentedDevice): the
	// syscall-shaped ground truth behind FlushWrites/FlushSyncs.
	Dev DeviceStats
}

// Log is the log manager: an in-memory ring buffer filled by Insert
// and drained to a Device by a background flusher, with group commit.
type Log struct {
	opts Options
	dev  Device
	vw   VectorWriter  // l.dev's batched path, nil when unsupported
	dsr  StatsReporter // l.dev's counter surface, nil when unsupported

	mu    sync.Mutex // guards next and space accounting
	space *sync.Cond // signaled when flushed advances
	next  uint64     // next LSN to allocate (logical byte offset)

	ring ringBuf
	fr   *frontier
	ca   *consArray

	flushed atomic.Uint64 // durable LSN frontier

	// Group-commit waiters, ordered by target LSN. Each committer is
	// woken exactly once — when the durable frontier passes its own
	// record — instead of every waiter waking (and mostly going back
	// to sleep) on every flush advance of a shared condvar.
	waitMu  sync.Mutex
	waiters waiterHeap

	kick        chan struct{}
	done        chan struct{}
	closed      atomic.Bool
	flushOnceMu sync.Mutex   // serializes flushOnce (flusher vs Close)
	flusherErr  atomic.Value // error from a failed flush, poisons the log

	// Vectored-submission scratch, reused across flushes (guarded by
	// flushOnceMu).
	vecOffs []int64
	vecBufs [][]byte

	// stats are striped cumulative counters (obs.Counter): the log is
	// the construct the consolidation array decentralizes, so its own
	// bookkeeping must not reintroduce a shared hot word.
	stats struct {
		inserts, insertedBytes  obs.Counter
		flushes, flushedBytes   obs.Counter
		mutexAcquires, groupIns obs.Counter
		flushWrites, flushSyncs obs.Counter
	}
}

type ringBuf struct {
	buf  []byte
	mask uint64
}

func (r *ringBuf) copyIn(off uint64, b []byte) {
	i := off & r.mask
	n := copy(r.buf[i:], b)
	if n < len(b) {
		copy(r.buf, b[n:])
	}
}

// slices returns the one or two contiguous ring regions covering
// [start, end).
func (r *ringBuf) slices(start, end uint64) ([]byte, []byte) {
	if start == end {
		return nil, nil
	}
	i, j := start&r.mask, end&r.mask
	if i < j {
		return r.buf[i:j], nil
	}
	return r.buf[i:], r.buf[:j]
}

// New creates a log manager over dev, resuming at the device's
// current size (i.e. the next LSN continues the existing log).
func New(dev Device, opts Options) (*Log, error) {
	opts.fill()
	if opts.BufferSize < EncodedSize(MaxPayload) {
		return nil, fmt.Errorf("wal: buffer %d smaller than max record", opts.BufferSize)
	}
	size, err := dev.Size()
	if err != nil {
		return nil, fmt.Errorf("wal: device size: %w", err)
	}
	l := &Log{
		opts: opts,
		dev:  dev,
		next: uint64(size),
		ring: ringBuf{buf: make([]byte, opts.BufferSize), mask: uint64(opts.BufferSize) - 1},
		fr:   newFrontier(),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	l.vw, _ = dev.(VectorWriter)
	l.dsr, _ = dev.(StatsReporter)
	l.space = sync.NewCond(&l.mu)
	l.fr.filled.Store(l.next)
	l.flushed.Store(l.next)
	if opts.Kind == Consolidated {
		l.ca = newConsArray(opts.Slots)
	}
	go l.flusher()
	return l, nil
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Append encodes and inserts a record, returning its LSN. It does not
// wait for durability; use WaitFlushed for commit semantics.
func (l *Log) Append(r *Record) (LSN, error) {
	return l.AppendFields(r.Type, r.TxnID, r.PrevLSN, r.PageID, r.UndoNext, r.Payload)
}

// AppendFields encodes and inserts a record given directly by its
// fields, sparing hot paths the per-record *Record allocation.
func (l *Log) AppendFields(typ RecType, txnID uint64, prev LSN, pageID uint64, undoNext LSN, payload []byte) (LSN, error) {
	return l.AppendFieldsC(typ, txnID, prev, pageID, undoNext, payload, nil)
}

// AppendFieldsC is AppendFields with a phase clock: time the insert
// spends blocked (ring full, allocation-mutex contention,
// consolidation-group waits) is attributed to the clock's log-insert
// phase. A nil clock makes it identical to AppendFields.
func (l *Log) AppendFieldsC(typ RecType, txnID uint64, prev LSN, pageID uint64, undoNext LSN, payload []byte, c *obs.PhaseClock) (LSN, error) {
	size := EncodedSize(len(payload))
	buf := encBufPool.Get().(*[]byte)
	invariant.PoolGot("wal.encBufPool", buf)
	if cap(*buf) < size {
		*buf = make([]byte, size)
	}
	b := (*buf)[:size]
	if _, err := encodeFields(b, typ, txnID, prev, pageID, undoNext, payload); err != nil {
		invariant.PoolPut("wal.AppendFields(encode error)", buf)
		encBufPool.Put(buf)
		return 0, err
	}
	lsn, err := l.insert(b, c)
	invariant.PoolPut("wal.AppendFields", buf)
	encBufPool.Put(buf)
	obs.TraceEvent(obs.EvLogAppend, txnID, uint64(typ), uint64(size))
	return lsn, err
}

var encBufPool = sync.Pool{New: func() any {
	b := make([]byte, 4096)
	return &b
}}

// Insert places an already-encoded record into the log and returns
// its LSN. The insert algorithm is chosen by Options.Kind.
func (l *Log) Insert(rec []byte) (LSN, error) { return l.insert(rec, nil) }

func (l *Log) insert(rec []byte, c *obs.PhaseClock) (LSN, error) {
	if l.closed.Load() {
		return 0, ErrClosed
	}
	if err := l.poisoned(); err != nil {
		// A dead flusher can never drain the ring: refusing new
		// records here keeps inserters from filling it and hanging.
		return 0, err
	}
	if len(rec) == 0 || len(rec) > l.opts.BufferSize/2 {
		return 0, fmt.Errorf("wal: record size %d out of range", len(rec))
	}
	switch l.opts.Kind {
	case Serial:
		return l.insertSerial(rec, c)
	case Decoupled:
		return l.insertDecoupled(rec, c)
	case Consolidated:
		return l.insertConsolidated(rec, c)
	default:
		panic("wal: unknown buffer kind")
	}
}

// poisoned returns the flusher's fatal error, if it died.
func (l *Log) poisoned() error {
	if err, ok := l.flusherErr.Load().(error); ok && err != nil {
		return err
	}
	return nil
}

// poison records the log's fatal error. Only the first poisoner's
// error sticks (CompareAndSwap from nil), which also keeps the
// atomic.Value single-typed however many paths race to report death.
func (l *Log) poison(err error) {
	l.flusherErr.CompareAndSwap(nil, err)
}

// allocate reserves n bytes of log space, blocking while the ring is
// full. Caller must hold l.mu. It fails instead of waiting when the
// flusher has died or the log is closing: the durable frontier the
// wait depends on will never advance again (the flusher broadcasts
// l.space on its way out so blocked allocators observe the death).
//
// When clocking (c != nil), a ring-full wait stamps *t0 if the caller
// arrived with an uncontended stamp (0), extending the span the caller
// finalizes with noteInsertWait after Unlock — this keeps every clock
// read out of the allocation critical section.
func (l *Log) allocateLocked(n uint64, c *obs.PhaseClock, t0 *int64) (uint64, error) {
	for l.next+n-l.flushed.Load() > uint64(l.opts.BufferSize) {
		if err := l.poisoned(); err != nil {
			return 0, err
		}
		if l.closed.Load() {
			return 0, ErrClosed
		}
		l.kickFlusher()
		if c != nil && *t0 == 0 {
			*t0 = obs.Now()
		}
		l.space.Wait()
	}
	lsn := l.next
	l.next += n
	return lsn, nil
}

func (l *Log) insertSerial(rec []byte, c *obs.PhaseClock) (LSN, error) {
	n := uint64(len(rec))
	ls := obs.LatchStart(obs.TierWALLog)
	t0 := l.lockInsertMu(c)
	obs.LatchDone(obs.TierWALLog, ls)
	invariant.Acquired(invariant.TierWALLog, "wal.Log.mu")
	l.stats.mutexAcquires.Inc()
	lsn, err := l.allocateLocked(n, c, &t0)
	if err != nil {
		invariant.Released(invariant.TierWALLog, "wal.Log.mu")
		l.mu.Unlock()
		l.noteInsertWait(c, t0)
		return 0, err
	}
	l.ring.copyIn(lsn, rec) // copy under the mutex: the serial pathology
	l.fr.complete(lsn, lsn+n)
	invariant.Released(invariant.TierWALLog, "wal.Log.mu")
	l.mu.Unlock()
	l.noteInsertWait(c, t0)
	l.noteInsert(n)
	l.kickFlusher()
	return LSN(lsn), nil
}

func (l *Log) insertDecoupled(rec []byte, c *obs.PhaseClock) (LSN, error) {
	n := uint64(len(rec))
	ls := obs.LatchStart(obs.TierWALLog)
	t0 := l.lockInsertMu(c)
	obs.LatchDone(obs.TierWALLog, ls)
	invariant.Acquired(invariant.TierWALLog, "wal.Log.mu")
	l.stats.mutexAcquires.Inc()
	lsn, err := l.allocateLocked(n, c, &t0)
	invariant.Released(invariant.TierWALLog, "wal.Log.mu")
	l.mu.Unlock()
	l.noteInsertWait(c, t0)
	if err != nil {
		return 0, err
	}
	l.ring.copyIn(lsn, rec) // outside the mutex
	l.fr.complete(lsn, lsn+n)
	l.noteInsert(n)
	l.kickFlusher()
	return LSN(lsn), nil
}

// lockInsertMu acquires the allocation mutex for an insert path. With
// a clock, the try-first fast path costs one extra branch when the
// mutex is free; a contended acquisition returns its start stamp so
// the caller can finalize the attribution with noteInsertWait AFTER
// releasing the mutex — no clock read ever executes inside the
// allocation critical section, which is the log's serialization
// bottleneck under load. Returns 0 when there is nothing to attribute.
//
//hydra:vet:nonpropagating -- returns holding l.mu for the caller's insert critical section
func (l *Log) lockInsertMu(c *obs.PhaseClock) int64 {
	if c == nil {
		l.mu.Lock()
		return 0
	}
	if l.mu.TryLock() {
		return 0
	}
	t0 := obs.Now()
	l.mu.Lock()
	return t0
}

// noteInsertWait attributes a contended insert-mutex acquisition that
// lockInsertMu stamped. Called after l.mu.Unlock(), so the measured
// span covers wait plus the caller's (short) critical section; the
// uncontended path attributes nothing.
func (l *Log) noteInsertWait(c *obs.PhaseClock, t0 int64) {
	if t0 != 0 {
		c.Add(obs.PhaseLogInsert, obs.Now()-t0)
	}
}

func (l *Log) noteInsert(n uint64) {
	l.stats.inserts.Add(1)
	l.stats.insertedBytes.Add(n)
}

func (l *Log) kickFlusher() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// FlushedLSN returns the durable frontier: every record with
// LSN+len <= FlushedLSN survives a crash.
func (l *Log) FlushedLSN() LSN { return LSN(l.flushed.Load()) }

// FilledLSN returns the contiguously-filled buffer frontier.
func (l *Log) FilledLSN() LSN { return LSN(l.fr.Filled()) }

// NextLSN returns the next LSN to be allocated (the current end of
// the log stream).
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	invariant.Acquired(invariant.TierWALLog, "wal.Log.mu")
	defer invariant.Released(invariant.TierWALLog, "wal.Log.mu")
	return LSN(l.next)
}

// commitWaiter is one blocked committer: ch receives exactly one
// value when the durable frontier reaches target (nil) or the log
// dies first (the error).
type commitWaiter struct {
	target uint64
	ch     chan error
}

// waiterHeap is a min-heap of commit waiters keyed by target LSN, so
// each flush advance pops only the waiters it actually satisfies.
type waiterHeap []commitWaiter

func (h *waiterHeap) push(w commitWaiter) {
	*h = append(*h, w)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].target <= s[i].target {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *waiterHeap) pop() commitWaiter {
	s := *h
	w := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = commitWaiter{} // drop the channel reference
	s = s[:n]
	*h = s
	i := 0
	for {
		least, left, right := i, 2*i+1, 2*i+2
		if left < n && s[left].target < s[least].target {
			least = left
		}
		if right < n && s[right].target < s[least].target {
			least = right
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return w
}

// waiterChPool recycles the one-shot channels committers block on.
var waiterChPool = sync.Pool{New: func() any { return make(chan error, 1) }}

// WaitFlushed blocks until the log is durable up to and including the
// record that starts at lsn (group commit). It returns early with an
// error if the log is closed or the flusher failed.
func (l *Log) WaitFlushed(lsn LSN) error { return l.WaitFlushedC(lsn, nil) }

// WaitFlushedC is WaitFlushed with a phase clock: time parked waiting
// for the durable frontier is attributed to the flush-wait phase. The
// already-durable fast path performs no clock reads at all.
func (l *Log) WaitFlushedC(lsn LSN, c *obs.PhaseClock) error {
	target := uint64(lsn) + 1 // any byte past the record start implies record scheduling order; callers pass end-1 semantics via RecordEnd
	if l.flushed.Load() >= target {
		// Already durable: no registration, no mutex beyond this load.
		if err, ok := l.flusherErr.Load().(error); ok && err != nil {
			return err
		}
		return nil
	}
	if c == nil {
		return l.waitFlushedSlow(target)
	}
	// The span's closing stamp is deferred to the transaction fold:
	// commit durability is the last wait a transaction performs, so the
	// fold's end-of-transaction Now closes it microseconds late — noise
	// against a group-commit wait — and the commit path saves one clock
	// read.
	t0 := obs.Now()
	err := l.waitFlushedSlow(target)
	c.Defer(obs.PhaseFlushWait, t0)
	return err
}

// waitFlushedSlow registers as a group-commit waiter and parks until
// the durable frontier passes target or the log dies.
func (l *Log) waitFlushedSlow(target uint64) error {
	l.kickFlusher()
	ws := obs.LatchStart(obs.TierWALWait)
	l.waitMu.Lock()
	obs.LatchDone(obs.TierWALWait, ws)
	invariant.Acquired(invariant.TierWALWait, "wal.Log.waitMu")
	if err, ok := l.flusherErr.Load().(error); ok && err != nil {
		invariant.Released(invariant.TierWALWait, "wal.Log.waitMu")
		l.waitMu.Unlock()
		return err
	}
	if l.closed.Load() {
		invariant.Released(invariant.TierWALWait, "wal.Log.waitMu")
		l.waitMu.Unlock()
		return ErrClosed
	}
	if l.flushed.Load() >= target {
		invariant.Released(invariant.TierWALWait, "wal.Log.waitMu")
		l.waitMu.Unlock()
		return nil
	}
	ch := waiterChPool.Get().(chan error)
	invariant.PoolGot("wal.waiterChPool", ch)
	l.waiters.push(commitWaiter{target: target, ch: ch})
	invariant.Released(invariant.TierWALWait, "wal.Log.waitMu")
	l.waitMu.Unlock()
	err := <-ch
	invariant.PoolPut("wal.WaitFlushed", ch)
	waiterChPool.Put(ch)
	return err
}

// wakeFlushed wakes exactly the waiters whose target the durable
// frontier has reached. The sends cannot block: each waiter channel
// has capacity 1 and is popped from the heap exactly once.
//
//hydra:vet:nonpropagating -- wakeup sends go to capacity-1 channels, one send per popped waiter
func (l *Log) wakeFlushed(upTo uint64) {
	l.waitMu.Lock()
	invariant.Acquired(invariant.TierWALWait, "wal.Log.waitMu")
	for len(l.waiters) > 0 && l.waiters[0].target <= upTo {
		//hydra:vet:ignore lockscope -- capacity-1 waiter channel, popped once; send cannot block
		l.waiters.pop().ch <- nil //hydra:blockok -- capacity-1 waiter channel, popped once; send cannot park
	}
	invariant.Released(invariant.TierWALWait, "wal.Log.waitMu")
	l.waitMu.Unlock()
}

// failWaiters wakes every registered waiter with err (flusher death
// or close). As in wakeFlushed, the sends cannot block.
//
//hydra:vet:nonpropagating -- wakeup sends go to capacity-1 channels, one send per popped waiter
func (l *Log) failWaiters(err error) {
	l.waitMu.Lock()
	invariant.Acquired(invariant.TierWALWait, "wal.Log.waitMu")
	for len(l.waiters) > 0 {
		//hydra:vet:ignore lockscope -- capacity-1 waiter channel, popped once; send cannot block
		l.waiters.pop().ch <- err //hydra:blockok -- capacity-1 waiter channel, popped once; send cannot park
	}
	invariant.Released(invariant.TierWALWait, "wal.Log.waitMu")
	l.waitMu.Unlock()
}

// CommitWaiters returns the number of committers currently parked on
// the durable frontier. The stall flight recorder polls it together
// with FlushedLSN: waiters present while the frontier stands still is
// the signature of a stuck flusher.
func (l *Log) CommitWaiters() int {
	l.waitMu.Lock()
	invariant.Acquired(invariant.TierWALWait, "wal.Log.waitMu")
	n := len(l.waiters)
	invariant.Released(invariant.TierWALWait, "wal.Log.waitMu")
	l.waitMu.Unlock()
	return n
}

// Flush forces all filled records to stable storage before returning.
func (l *Log) Flush() error {
	l.mu.Lock()
	invariant.Acquired(invariant.TierWALLog, "wal.Log.mu")
	target := l.next
	invariant.Released(invariant.TierWALLog, "wal.Log.mu")
	l.mu.Unlock()
	if target == 0 {
		return nil
	}
	return l.WaitFlushed(LSN(target - 1))
}

// Close flushes and stops the background flusher.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	flushErr := l.flushOnce() // final synchronous drain
	if flushErr != nil {
		// The drain failed: records still in the ring will never become
		// durable. Poison and wake any ring-full inserter that raced
		// past the closed check, exactly as flusher death does.
		l.poison(flushErr)
	}
	// Wake allocators parked on ring space: either the drain freed the
	// ring or the poisoning above tells them it never will.
	l.mu.Lock()
	invariant.Acquired(invariant.TierWALLog, "wal.Log.mu")
	l.space.Broadcast()
	invariant.Released(invariant.TierWALLog, "wal.Log.mu")
	l.mu.Unlock()
	close(l.done)
	// Any waiter the final drain did not satisfy can never be: fail
	// it with the flusher's error, or ErrClosed.
	werr := flushErr
	if err, ok := l.flusherErr.Load().(error); ok && err != nil {
		werr = err
	}
	if werr == nil {
		werr = ErrClosed
	}
	l.failWaiters(werr)
	if err, ok := l.flusherErr.Load().(error); ok && err != nil {
		return err
	}
	return flushErr
}

// StatsSnapshot returns a copy of the cumulative counters.
func (l *Log) StatsSnapshot() Stats {
	s := Stats{
		Inserts:       l.stats.inserts.Load(),
		InsertedBytes: l.stats.insertedBytes.Load(),
		Flushes:       l.stats.flushes.Load(),
		FlushedBytes:  l.stats.flushedBytes.Load(),
		MutexAcquires: l.stats.mutexAcquires.Load(),
		GroupInserts:  l.stats.groupIns.Load(),
		FlushWrites:   l.stats.flushWrites.Load(),
		FlushSyncs:    l.stats.flushSyncs.Load(),
	}
	if l.dsr != nil {
		s.Dev = l.dsr.DeviceStats()
	}
	return s
}

func (l *Log) flusher() {
	ticker := time.NewTicker(l.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-l.kick:
		case <-ticker.C:
		}
		// Coalesce every wakeup signal that is already pending: the
		// flush about to run covers whatever those kicks announced, so
		// consuming them now spares redundant no-op flush cycles.
		l.drainWakeups(ticker)
		if err := l.flushOnce(); err != nil {
			l.poison(err)
			// Ring-full inserters parked in allocateLocked wait on a
			// frontier that will never advance again; wake them so
			// they observe the poisoning instead of hanging forever.
			l.mu.Lock()
			invariant.Acquired(invariant.TierWALLog, "wal.Log.mu")
			l.space.Broadcast()
			invariant.Released(invariant.TierWALLog, "wal.Log.mu")
			l.mu.Unlock()
			l.failWaiters(err)
			return
		}
	}
}

// drainWakeups consumes pending kick and tick signals without
// blocking.
func (l *Log) drainWakeups(ticker *time.Ticker) {
	for {
		select {
		case <-l.kick:
		case <-ticker.C:
		default:
			return
		}
	}
}

// flushOnce writes [flushed, filled) to the device and advances the
// durable frontier. With a VectorWriter device, both wrap-around ring
// slices go down as one vectored submission; otherwise they are two
// sequential writes.
func (l *Log) flushOnce() error {
	l.flushOnceMu.Lock()
	defer l.flushOnceMu.Unlock()
	start := l.flushed.Load()
	end := l.fr.Filled()
	if end <= start {
		return nil
	}
	a, b := l.ring.slices(start, end)
	if l.vw != nil {
		l.vecOffs = append(l.vecOffs[:0], int64(start))
		l.vecBufs = append(l.vecBufs[:0], a)
		if len(b) > 0 {
			l.vecOffs = append(l.vecOffs, int64(start)+int64(len(a)))
			l.vecBufs = append(l.vecBufs, b)
		}
		l.stats.flushWrites.Inc()
		if _, err := l.vw.WriteVec(l.vecOffs, l.vecBufs); err != nil {
			return fmt.Errorf("wal: flush write: %w", err)
		}
	} else {
		l.stats.flushWrites.Inc()
		if _, err := l.dev.WriteAt(a, int64(start)); err != nil {
			return fmt.Errorf("wal: flush write: %w", err)
		}
		if len(b) > 0 {
			l.stats.flushWrites.Inc()
			if _, err := l.dev.WriteAt(b, int64(start)+int64(len(a))); err != nil {
				return fmt.Errorf("wal: flush write (wrap): %w", err)
			}
		}
	}
	if l.opts.SyncOnFlush {
		l.stats.flushSyncs.Inc()
		if err := l.dev.Sync(); err != nil {
			return fmt.Errorf("wal: flush sync: %w", err)
		}
	}
	l.flushed.Store(end)
	l.stats.flushes.Add(1)
	l.stats.flushedBytes.Add(end - start)
	// Wake space waiters, and exactly the commit waiters this flush
	// satisfied.
	l.mu.Lock()
	invariant.Acquired(invariant.TierWALLog, "wal.Log.mu")
	l.space.Broadcast()
	invariant.Released(invariant.TierWALLog, "wal.Log.mu")
	l.mu.Unlock()
	l.wakeFlushed(end)
	return nil
}
