package wal

import (
	"errors"
	"fmt"
)

// Scanner iterates the records of a log device from a starting LSN.
// A torn tail (crash mid-write) terminates iteration cleanly; true
// corruption below the torn point surfaces as an error.
type Scanner struct {
	dev Device
	pos int64
	end int64
	rec Record
	err error
	buf []byte
}

// NewScanner returns a Scanner positioned at start.
func NewScanner(dev Device, start LSN) (*Scanner, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, fmt.Errorf("wal: scanner: %w", err)
	}
	return &Scanner{dev: dev, pos: int64(start), end: size}, nil
}

// Next advances to the next record, reporting false at end of log,
// at a torn tail, or on error (see Err).
func (s *Scanner) Next() bool {
	if s.err != nil || s.pos >= s.end {
		return false
	}
	remaining := s.end - s.pos
	if remaining < headerSize {
		return false // torn tail shorter than a header
	}
	// Read the fixed header to learn the record length, then the rest.
	var hdr [headerSize]byte
	if n, err := s.dev.ReadAt(hdr[:], s.pos); n < headerSize {
		if err != nil {
			s.err = fmt.Errorf("wal: scan read header at %d: %w", s.pos, err)
		}
		return false
	}
	total := int64(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if total < headerSize || total > headerSize+MaxPayload {
		s.err = fmt.Errorf("wal: scan at %d: %w: implausible length %d", s.pos, ErrCorrupt, total)
		return false
	}
	if total > remaining {
		return false // torn tail mid-record
	}
	if int64(cap(s.buf)) < total {
		s.buf = make([]byte, total)
	}
	b := s.buf[:total]
	if n, err := s.dev.ReadAt(b, s.pos); int64(n) < total {
		if err != nil {
			s.err = fmt.Errorf("wal: scan read at %d: %w", s.pos, err)
		}
		return false
	}
	rec, length, derr := Decode(b)
	if derr != nil {
		if errors.Is(derr, ErrTorn) {
			// Legitimate crash artifact; stop silently.
			return false
		}
		s.err = fmt.Errorf("wal: scan at %d: %w", s.pos, derr)
		return false
	}
	rec.LSN = LSN(s.pos)
	// Detach payload from the scratch buffer so callers may retain it.
	rec.Payload = append([]byte(nil), rec.Payload...)
	s.rec = rec
	s.pos += int64(length)
	return true
}

// Record returns the current record. Valid after Next reports true.
func (s *Scanner) Record() Record { return s.rec }

// Err returns the first error encountered, excluding torn tails.
func (s *Scanner) Err() error { return s.err }

// Pos returns the LSN the scanner will read next (after the last
// record returned); on a torn tail this is the usable end of log.
func (s *Scanner) Pos() LSN { return LSN(s.pos) }

// ReadRecordAt decodes the single record starting at lsn. Restart
// undo uses it to follow PrevLSN chains below the analysis window.
func ReadRecordAt(dev Device, lsn LSN) (Record, error) {
	sc, err := NewScanner(dev, lsn)
	if err != nil {
		return Record{}, err
	}
	if !sc.Next() {
		if sc.Err() != nil {
			return Record{}, sc.Err()
		}
		return Record{}, fmt.Errorf("wal: no record at %d", lsn)
	}
	return sc.Record(), nil
}

// ScanAll decodes every record in [start, end-of-log). Convenience
// wrapper over Scanner for recovery and tools.
func ScanAll(dev Device, start LSN) ([]Record, error) {
	sc, err := NewScanner(dev, start)
	if err != nil {
		return nil, err
	}
	var recs []Record
	for sc.Next() {
		recs = append(recs, sc.Record())
	}
	return recs, sc.Err()
}
