package wal

import (
	"runtime"
	"sync/atomic"
	"time"

	"hydra/internal/invariant"
	"hydra/internal/obs"
)

// consArray is the consolidation array of the Aether log protocol.
// Concurrent inserters that would otherwise queue on the allocation
// mutex instead combine their requests in a slot: the first arrival
// (the group leader) acquires the mutex once and allocates space for
// the whole group; every member then copies its record into its own
// sub-range concurrently. Mutex acquisitions per record approach
// 1/group-size under load.
type consArray struct {
	slots []caslot
	rr    atomic.Uint64 // round-robin slot cursor
}

// caslot packs the group state into atomics:
//
//	word: bits 63..62 status (0 free, 1 open, 2 closed), bits 61..0
//	      accumulated group size in bytes
//	base: published base LSN + 1 (0 = not yet published)
//	done: bytes copied by finished members; when done == size the
//	      last member recycles the slot
type caslot struct {
	word atomic.Uint64
	base atomic.Uint64
	done atomic.Uint64
	_    [40]byte // keep slots on separate cache lines
}

const (
	caStatusShift = 62
	caSizeMask    = (uint64(1) << caStatusShift) - 1
	caFree        = uint64(0)
	caOpen        = uint64(1)
	caClosed      = uint64(2)
)

func caPack(status, size uint64) uint64 { return status<<caStatusShift | size }
func caStatus(w uint64) uint64          { return w >> caStatusShift }
func caSize(w uint64) uint64            { return w & caSizeMask }

func newConsArray(n int) *consArray {
	return &consArray{slots: make([]caslot, n)}
}

// join attempts to enter a consolidation group with a request of n
// bytes. It returns (slot, offset, leader): offset is the caller's
// displacement within the group allocation; leader reports whether
// the caller must perform the group's allocation.
// max bounds the group size so one group can always fit in the ring.
func (ca *consArray) join(n, max uint64) (s *caslot, offset uint64, leader bool) {
	i := ca.rr.Add(1)
	for {
		s = &ca.slots[i%uint64(len(ca.slots))]
		w := s.word.Load()
		switch {
		case caStatus(w) == caFree:
			if s.word.CompareAndSwap(w, caPack(caOpen, n)) {
				return s, 0, true
			}
		case caStatus(w) == caOpen && caSize(w)+n <= max:
			if s.word.CompareAndSwap(w, caPack(caOpen, caSize(w)+n)) {
				return s, caSize(w), false
			}
		default: // closed or full: move to the next slot
			i++
		}
	}
}

// close transitions the leader's slot to closed and returns the final
// group size. Only the leader calls it, exactly once, while holding
// the allocation mutex.
func (ca *consArray) close(s *caslot) uint64 {
	for {
		w := s.word.Load()
		if s.word.CompareAndSwap(w, caPack(caClosed, caSize(w))) {
			return caSize(w)
		}
	}
}

// publish makes the group's base LSN visible to waiting members.
func (ca *consArray) publish(s *caslot, base uint64) {
	s.base.Store(base + 1)
}

// caPoisonBase is the published base marking a failed allocation: the
// leader could not reserve ring space (flusher death or close), so
// the group has no LSNs. Members must not copy, and every member
// still calls finish so the slot recycles.
const caPoisonBase = ^uint64(0)

// publishPoison releases waiting members with the poison marker.
func (ca *consArray) publishPoison(s *caslot) {
	s.base.Store(caPoisonBase)
}

// waitBase spins until the leader publishes the group base LSN,
// backing off to short sleeps when yields alone make no progress
// (relevant when goroutines far outnumber hardware contexts). ok is
// false when the leader published poison instead of a base.
func (ca *consArray) waitBase(s *caslot) (base uint64, ok bool) {
	for i := 0; ; i++ {
		if b := s.base.Load(); b != 0 {
			if b == caPoisonBase {
				return 0, false
			}
			return b - 1, true
		}
		if i < 64 {
			runtime.Gosched()
		} else {
			time.Sleep(time.Microsecond)
		}
	}
}

// finish records that a member has copied n bytes; the member that
// completes the group recycles the slot.
func (ca *consArray) finish(s *caslot, groupSize, n uint64) {
	if s.done.Add(n) == groupSize {
		s.done.Store(0)
		s.base.Store(0)
		s.word.Store(caPack(caFree, 0))
	}
}

// insertConsolidated is the CD insert path: consolidation array in
// front of a decoupled (copy-outside-mutex) buffer fill.
func (l *Log) insertConsolidated(rec []byte, c *obs.PhaseClock) (LSN, error) {
	n := uint64(len(rec))
	s, offset, leader := l.ca.join(n, uint64(l.opts.BufferSize)/4)
	var base uint64
	var groupSize uint64
	if leader {
		ls := obs.LatchStart(obs.TierWALLog)
		t0 := l.lockInsertMu(c)
		obs.LatchDone(obs.TierWALLog, ls)
		invariant.Acquired(invariant.TierWALLog, "wal.Log.mu")
		l.stats.mutexAcquires.Inc()
		groupSize = l.ca.close(s) // no more joiners past this point
		var err error
		base, err = l.allocateLocked(groupSize, c, &t0)
		invariant.Released(invariant.TierWALLog, "wal.Log.mu")
		l.mu.Unlock()
		l.noteInsertWait(c, t0)
		if err != nil {
			// The group got no ring space. Members are spinning in
			// waitBase: a plain return would leave them spinning
			// forever, so publish the poison marker, account for our
			// own share so the slot recycles, and surface the error.
			l.ca.publishPoison(s)
			l.ca.finish(s, groupSize, n)
			return 0, err
		}
		l.ca.publish(s, base)
	} else {
		l.stats.groupIns.Add(1)
		var ok bool
		if b := s.base.Load(); b != 0 {
			// Leader already published: no wait to attribute.
			base, ok = b-1, b != caPoisonBase
			if !ok {
				base = 0
			}
		} else if c != nil {
			// Group-member spin for the leader's base publication is
			// the consolidated path's insert wait; attribute it.
			t0 := obs.Now()
			base, ok = l.ca.waitBase(s)
			c.Add(obs.PhaseLogInsert, obs.Now()-t0)
		} else {
			base, ok = l.ca.waitBase(s)
		}
		// groupSize is only needed by finish for recycling; members
		// other than the leader learn it from the closed word.
		groupSize = caSize(s.word.Load())
		if !ok {
			l.ca.finish(s, groupSize, n)
			if err := l.poisoned(); err != nil {
				return 0, err
			}
			return 0, ErrClosed
		}
	}
	lsn := base + offset
	l.ring.copyIn(lsn, rec)
	l.fr.complete(lsn, lsn+n)
	l.ca.finish(s, groupSize, n)
	l.noteInsert(n)
	l.kickFlusher()
	return LSN(lsn), nil
}
